package coyote

import (
	"math"
	"testing"
)

// runningExample builds the paper's Fig. 1a topology.
func runningExample(t *testing.T) (*Topology, map[string]NodeID) {
	t.Helper()
	topo := NewTopology()
	ids := map[string]NodeID{
		"s1": topo.AddNode("s1"),
		"s2": topo.AddNode("s2"),
		"v":  topo.AddNode("v"),
		"t":  topo.AddNode("t"),
	}
	topo.AddLink(ids["s1"], ids["s2"], 1, 1)
	topo.AddLink(ids["s1"], ids["v"], 1, 1)
	topo.AddLink(ids["s2"], ids["v"], 1, 1)
	topo.AddLink(ids["s2"], ids["t"], 1, 1)
	topo.AddLink(ids["v"], ids["t"], 1, 1)
	return topo, ids
}

func TestComputeRunningExample(t *testing.T) {
	topo, ids := runningExample(t)
	base := NewDemandMatrix(topo)
	base.Set(ids["s1"], ids["t"], 1)
	base.Set(ids["s2"], ids["t"], 1)
	bounds := MarginBounds(base, 2)
	cfg, err := New(topo, bounds, Options{OptimizerIters: 400, AdversarialIters: 3, Seed: 1}).Compute()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Perf > cfg.ECMPPerf+1e-9 {
		t.Fatalf("COYOTE PERF %g worse than ECMP %g", cfg.Perf, cfg.ECMPPerf)
	}
	if err := cfg.Routing.Validate(); err != nil {
		t.Fatalf("invalid routing: %v", err)
	}
	if cfg.Perf <= 0 || math.IsInf(cfg.Perf, 0) {
		t.Fatalf("implausible PERF %g", cfg.Perf)
	}
}

func TestComputeRejectsDisconnected(t *testing.T) {
	topo := NewTopology()
	topo.AddNode("a")
	topo.AddNode("b")
	base := NewDemandMatrix(topo)
	if _, err := New(topo, MarginBounds(base, 1)).Compute(); err == nil {
		t.Fatal("disconnected topology must be rejected")
	}
}

func TestComputeNilBounds(t *testing.T) {
	topo, _ := runningExample(t)
	if _, err := New(topo, nil).Compute(); err == nil {
		t.Fatal("nil bounds must be rejected")
	}
}

func TestLiesEndToEnd(t *testing.T) {
	topo, ids := runningExample(t)
	base := NewDemandMatrix(topo)
	base.Set(ids["s1"], ids["t"], 1)
	base.Set(ids["s2"], ids["t"], 1)
	cfg, err := New(topo, MarginBounds(base, 2), Options{OptimizerIters: 300, AdversarialIters: 2, Seed: 1}).Compute()
	if err != nil {
		t.Fatal(err)
	}
	lies, err := cfg.Lies(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := lies.Quantized.Validate(); err != nil {
		t.Fatalf("quantized routing invalid: %v", err)
	}
	// Verified synthesis is part of Lies; reaching here means the LSDB
	// reproduces the quantized routing.
	if lies.FakeNodes < 0 || lies.VirtualLinks < 0 {
		t.Fatal("negative lie counts")
	}
}

func TestGravityDemands(t *testing.T) {
	topo, _ := runningExample(t)
	m := GravityDemands(topo, 1)
	if m.MaxEntry() != 1 {
		t.Fatalf("peak = %g, want 1", m.MaxEntry())
	}
}

func TestObliviousBounds(t *testing.T) {
	topo, _ := runningExample(t)
	b := ObliviousBounds(topo, 5)
	if b.Min.Total() != 0 {
		t.Fatal("oblivious bounds must have zero lower bounds")
	}
}

func TestLocalSearchOption(t *testing.T) {
	topo, ids := runningExample(t)
	base := NewDemandMatrix(topo)
	base.Set(ids["s1"], ids["t"], 1)
	cfg, err := New(topo, MarginBounds(base, 2), Options{
		OptimizerIters: 150, AdversarialIters: 2, LocalSearchWeights: true, Seed: 1,
	}).Compute()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Weights) != topo.NumLinks() {
		t.Fatalf("%d weights, want %d", len(cfg.Weights), topo.NumLinks())
	}
}

func TestLoadTopologyCorpus(t *testing.T) {
	names := TopologyNames()
	if len(names) != 16 {
		t.Fatalf("%d corpus topologies, want 16", len(names))
	}
	topo, err := LoadTopology("Abilene")
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumNodes() != 12 {
		t.Fatalf("Abilene has %d nodes, want 12", topo.NumNodes())
	}
	if _, err := LoadTopology("nope"); err == nil {
		t.Fatal("unknown topology must error")
	}
}
