// Package coyote is a from-scratch Go implementation of COYOTE
// ("Lying Your Way to Better Traffic Engineering", Chiesa, Rétvári and
// Schapira, CoNEXT 2016): readily deployable traffic engineering for
// legacy OSPF/ECMP networks that is robust to demand uncertainty.
//
// COYOTE computes, for every destination, a forwarding DAG (an augmented
// shortest-path DAG) and traffic-splitting ratios optimized against every
// demand matrix within operator-specified uncertainty bounds — then
// realizes the configuration on unmodified routers by injecting "lies"
// (fake nodes and links) into the OSPF link-state database, à la Fibbing.
//
// Typical use:
//
//	t := coyote.NewTopology()
//	a, b := t.AddNode("a"), t.AddNode("b")
//	t.AddLink(a, b, 10, 1)
//	...
//	bounds := coyote.MarginBounds(coyote.GravityDemands(t, 1), 2.0) // 2× uncertainty
//	cfg, err := coyote.New(t, bounds).Compute()
//	// cfg.Routing: per-destination DAGs + splitting ratios
//	// cfg.Perf: worst-case normalized utilization (oblivious performance)
//	lies, err := cfg.Lies(3) // realize with ≤3 virtual next-hops per interface
//
// The heavy lifting lives in internal packages: the GP-style splitting
// optimizer (internal/gpopt), the worst-case-demand adversary and
// adversarial loop (internal/oblivious), exact LP and FPTAS
// multicommodity solvers (internal/lp, internal/mcf), the OSPF/Fibbing
// machinery (internal/ospf, internal/fibbing, internal/wcmp), and the
// experiment harness reproducing the paper's evaluation (internal/exp).
package coyote

import (
	"errors"
	"fmt"
	"io"

	"github.com/coyote-te/coyote/internal/dagx"
	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/fibbing"
	"github.com/coyote-te/coyote/internal/gpopt"
	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/localsearch"
	"github.com/coyote-te/coyote/internal/oblivious"
	"github.com/coyote-te/coyote/internal/pdrouting"
	"github.com/coyote-te/coyote/internal/wcmp"
)

// NodeID identifies a router in a Topology.
type NodeID = graph.NodeID

// EdgeID identifies a directed link in a Topology.
type EdgeID = graph.EdgeID

// Topology is a capacitated, weighted network. Create one with
// NewTopology (or load a corpus topology with LoadTopology), add nodes
// and links, then hand it to New.
type Topology struct {
	g *graph.Graph
}

// NewTopology returns an empty topology.
func NewTopology() *Topology { return &Topology{g: graph.New()} }

// AddNode adds (or finds) a router by name.
func (t *Topology) AddNode(name string) NodeID { return t.g.AddNode(name) }

// AddLink adds a bidirectional link with the given capacity and OSPF
// weight (both must be positive) and returns the forward edge ID.
func (t *Topology) AddLink(a, b NodeID, capacity, weight float64) EdgeID {
	return t.g.AddLink(a, b, capacity, weight)
}

// AddDirectedLink adds a one-way link.
func (t *Topology) AddDirectedLink(a, b NodeID, capacity, weight float64) EdgeID {
	return t.g.AddEdge(a, b, capacity, weight)
}

// NumNodes reports the router count.
func (t *Topology) NumNodes() int { return t.g.NumNodes() }

// NumLinks reports the directed-edge count.
func (t *Topology) NumLinks() int { return t.g.NumEdges() }

// NodeName returns a router's name.
func (t *Topology) NodeName(id NodeID) string { return t.g.Name(id) }

// Node finds a router by name.
func (t *Topology) Node(name string) (NodeID, bool) { return t.g.NodeByName(name) }

// Link finds the directed edge from a to b, if one exists — the handle
// Session.Fail and Session.Recover take (either direction of a
// bidirectional link identifies it).
func (t *Topology) Link(a, b NodeID) (EdgeID, bool) { return t.g.FindEdge(a, b) }

// Validate checks structural invariants (positive capacities and weights,
// consistent reverse links) and strong connectivity.
func (t *Topology) Validate() error {
	if err := t.g.Validate(); err != nil {
		return err
	}
	if !t.g.Connected() {
		return errors.New("coyote: topology is not strongly connected")
	}
	return nil
}

// DemandMatrix is a point estimate of the traffic demands: entry (s, t) is
// the rate from s to t.
type DemandMatrix = demand.Matrix

// Bounds is the operator's uncertainty set: per-pair demand intervals
// (§III of the paper).
type Bounds = demand.Box

// GravityDemands builds the gravity base model over a topology: demand
// between two routers proportional to the product of their total outgoing
// capacities, normalized so the peak entry equals peak.
func GravityDemands(t *Topology, peak float64) *DemandMatrix {
	return demand.Gravity(t.g, peak)
}

// MarginBounds builds the uncertainty set around a base matrix: each
// demand may range within [base/margin, base·margin].
func MarginBounds(base *DemandMatrix, margin float64) *Bounds {
	return demand.MarginBox(base, margin)
}

// ObliviousBounds is the "assume nothing" uncertainty set: every pair may
// send between 0 and cap. COYOTE's performance ratio is invariant to
// demand rescaling, so the cap only anchors the numeric scale.
func ObliviousBounds(t *Topology, cap float64) *Bounds {
	return demand.ObliviousBox(t.g.NumNodes(), cap)
}

// Options tunes Compute. The zero value uses sensible defaults.
type Options struct {
	// OptimizerIters is the number of gradient steps per inner
	// optimization (default 400).
	OptimizerIters int
	// AdversarialIters is the number of worst-case-demand refinement
	// rounds (default 6).
	AdversarialIters int
	// Samples is the number of random corner adversaries per evaluation
	// (default 8).
	Samples int
	// Eps is the FPTAS accuracy for normalization on larger networks
	// (default 0.1).
	Eps float64
	// LocalSearchWeights, when true, first optimizes OSPF link weights
	// with the Fortz–Thorup-style local search (§V-B) instead of using
	// the topology's configured weights.
	LocalSearchWeights bool
	// Seed makes runs reproducible.
	Seed int64
	// Workers bounds the evaluation engine's worker pool (the concurrent
	// per-destination flow propagation, corner-adversary sampling, and
	// optimizer passes; see DESIGN.md §4). Zero or negative means one
	// worker per available CPU. For a fixed Seed the computed
	// configuration is bit-identical for every Workers value.
	Workers int
	// PrecomputeFailover (sessions only, ignored by Compute) precomputes
	// a configuration for every single-link failure at session start, so
	// Session.Fail swaps it in and merely refines instead of
	// re-optimizing the survivor from scratch.
	PrecomputeFailover bool
}

// Engine computes COYOTE configurations for one topology and uncertainty
// set.
type Engine struct {
	topo   *Topology
	bounds *Bounds
	opts   Options
}

// New creates an Engine. Compute may be called repeatedly.
func New(t *Topology, bounds *Bounds, opts ...Options) *Engine {
	e := &Engine{topo: t, bounds: bounds}
	if len(opts) > 0 {
		e.opts = opts[0]
	}
	return e
}

// Config is a computed COYOTE configuration.
type Config struct {
	// Routing holds the per-destination DAGs and splitting ratios.
	Routing *pdrouting.Routing
	// Perf is the worst-case normalized link utilization (the oblivious
	// performance ratio estimate) of Routing over the uncertainty set.
	Perf float64
	// ECMPPerf is the same metric for traditional ECMP under the same
	// weights, for comparison.
	ECMPPerf float64
	// Weights are the OSPF weights the DAGs derive from (either the
	// topology's own or the local-search result).
	Weights []float64

	topo *Topology
}

// Compute runs the full COYOTE pipeline (Fig. 5 of the paper): DAG
// construction, in-DAG splitting optimization, and evaluation.
func (e *Engine) Compute() (*Config, error) {
	if err := e.topo.Validate(); err != nil {
		return nil, err
	}
	if e.bounds == nil {
		return nil, errors.New("coyote: nil uncertainty bounds")
	}
	g := e.topo.g
	if e.opts.LocalSearchWeights {
		ls, err := localsearch.Optimize(g, e.bounds, localsearch.Config{
			OuterIters: maxInt(e.opts.AdversarialIters, 3),
			InnerMoves: 10 * g.NumEdges(),
			Seed:       e.opts.Seed,
		})
		if err != nil {
			return nil, err
		}
		g = g.Clone()
		g.SetWeights(ls.Weights)
	}
	dags := dagx.BuildAll(g, dagx.Augmented)
	evalCfg := oblivious.EvalConfig{
		Eps:     e.opts.Eps,
		Samples: e.opts.Samples,
		Seed:    e.opts.Seed,
		Workers: e.opts.Workers,
	}
	ev := oblivious.NewEvaluator(g, dags, e.bounds, evalCfg)
	routing, rep := oblivious.OptimizeWithEvaluator(g, dags, ev, oblivious.Options{
		Optimizer: gpopt.Config{Iters: e.opts.OptimizerIters},
		Eval:      evalCfg,
		AdvIters:  e.opts.AdversarialIters,
		Workers:   e.opts.Workers,
	})
	return &Config{
		Routing: routing,
		Perf:    rep.Perf.Ratio,
		// The no-worse-than-ECMP guarantee already evaluated ECMP with the
		// same adversary; reusing that value keeps Perf ≤ ECMPPerf exact
		// even when the ECMP fallback was taken.
		ECMPPerf: rep.ECMPPerf,
		Weights:  g.Weights(),
		topo:     &Topology{g: g},
	}, nil
}

// Lies realizes the configuration on legacy OSPF/ECMP routers:
// splitting ratios are quantized to at most extraPerInterface virtual
// next-hops per interface (per [18]) and translated into fake-node LSAs
// (per Fibbing [8,9]); the synthesized LSDB is verified to reproduce the
// quantized forwarding exactly before being returned.
func (c *Config) Lies(extraPerInterface int) (*LieSet, error) {
	q, err := wcmp.Apply(c.Routing, extraPerInterface)
	if err != nil {
		return nil, err
	}
	syn, err := fibbing.Synthesize(c.topo.g, q)
	if err != nil {
		return nil, err
	}
	if err := fibbing.Verify(c.topo.g, q, syn); err != nil {
		return nil, fmt.Errorf("coyote: lie verification failed: %w", err)
	}
	return &LieSet{
		Quantized:        q.Routing,
		VirtualLinks:     q.VirtualLinks,
		FakeNodes:        syn.FakeNodes,
		LiedDestinations: len(syn.LiedDestinations),
		synthesis:        syn,
		topo:             c.topo,
	}, nil
}

// LieSet is a verified OSPF lie configuration.
type LieSet struct {
	// Quantized is the routing the lies actually realize (ratios are
	// integer-multiplicity approximations of the ideal ones).
	Quantized *pdrouting.Routing
	// VirtualLinks counts next-hop replicas beyond the first.
	VirtualLinks int
	// FakeNodes counts injected fake-node LSAs.
	FakeNodes int
	// LiedDestinations counts destinations that needed any lies.
	LiedDestinations int

	synthesis *fibbing.Synthesis
	topo      *Topology
}

// WriteMessages emits the fake-node LSAs ("OSPF messages", the final stage
// of the paper's Fig. 5 pipeline) as JSON.
func (l *LieSet) WriteMessages(w io.Writer) error {
	return l.synthesis.WriteJSON(w, l.topo.g)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
