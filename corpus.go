package coyote

import (
	"io"

	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/topo"
)

// TopologyNames lists the built-in topology corpus (synthetic stand-ins
// for the Internet Topology Zoo backbones of the paper's evaluation; see
// DESIGN.md).
func TopologyNames() []string { return topo.Names() }

// LoadTopology builds a corpus topology by name.
func LoadTopology(name string) (*Topology, error) {
	g, err := topo.Load(name)
	if err != nil {
		return nil, err
	}
	return &Topology{g: g}, nil
}

// NewDemandMatrix returns an all-zero demand matrix sized for t.
func NewDemandMatrix(t *Topology) *DemandMatrix {
	return demand.NewMatrix(t.g.NumNodes())
}

// WriteText serializes the topology in the line-oriented text format
// understood by ReadTopology (node/link/edge directives).
func (t *Topology) WriteText(w io.Writer) error { return t.g.WriteText(w) }

// WriteDOT emits a Graphviz rendering of the topology.
func (t *Topology) WriteDOT(w io.Writer) error { return t.g.WriteDOT(w) }

// ReadTopology parses the text format produced by WriteText.
func ReadTopology(r io.Reader) (*Topology, error) {
	g, err := graph.ReadText(r)
	if err != nil {
		return nil, err
	}
	return &Topology{g: g}, nil
}
