package coyote

import (
	"bytes"
	"io"

	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/scen"
	"github.com/coyote-te/coyote/internal/topo"
)

// TopologyNames lists the built-in topology corpus (synthetic stand-ins
// for the Internet Topology Zoo backbones of the paper's evaluation; see
// DESIGN.md).
func TopologyNames() []string { return topo.Names() }

// LoadTopology builds a corpus topology by name.
func LoadTopology(name string) (*Topology, error) {
	g, err := topo.Load(name)
	if err != nil {
		return nil, err
	}
	return &Topology{g: g}, nil
}

// NewDemandMatrix returns an all-zero demand matrix sized for t.
func NewDemandMatrix(t *Topology) *DemandMatrix {
	return demand.NewMatrix(t.g.NumNodes())
}

// WriteText serializes the topology in the line-oriented text format
// understood by ReadTopology (node/link/edge directives).
func (t *Topology) WriteText(w io.Writer) error { return t.g.WriteText(w) }

// CanonicalBytes returns the canonical text serialization of the topology
// — the exact byte string the corpus-scale sweep harness (cmd/coyote-sweep,
// DESIGN.md §8) hashes into content-addressed cache keys. Two topologies
// with equal CanonicalBytes are byte-for-byte the same network, so their
// sweep results are interchangeable cache entries.
func (t *Topology) CanonicalBytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := t.g.WriteText(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// WriteDOT emits a Graphviz rendering of the topology.
func (t *Topology) WriteDOT(w io.Writer) error { return t.g.WriteDOT(w) }

// ReadTopology parses the text format produced by WriteText.
func ReadTopology(r io.Reader) (*Topology, error) {
	g, err := graph.ReadText(r)
	if err != nil {
		return nil, err
	}
	return &Topology{g: g}, nil
}

// ReadGraphML parses a GraphML topology (the Internet Topology Zoo
// format), inferring link capacities from the file's speed annotations
// and OSPF weights from the inverse-capacity rule. See
// internal/scen.ReadGraphML for the inference details.
func ReadGraphML(r io.Reader) (*Topology, error) {
	g, err := scen.ReadGraphML(r)
	if err != nil {
		return nil, err
	}
	return &Topology{g: g}, nil
}

// ReadSNDlib parses a network in the SNDlib native format. When the file
// carries a DEMANDS section the second return is its demand matrix;
// otherwise it is nil.
func ReadSNDlib(r io.Reader) (*Topology, *DemandMatrix, error) {
	g, dm, err := scen.ReadSNDlib(r)
	if err != nil {
		return nil, nil, err
	}
	return &Topology{g: g}, dm, nil
}

// ReadTopologyAuto parses a topology whose format is detected from the
// content: GraphML (XML), SNDlib native, or the line-oriented text format.
func ReadTopologyAuto(r io.Reader) (*Topology, error) {
	g, err := scen.ReadAuto(r)
	if err != nil {
		return nil, err
	}
	return &Topology{g: g}, nil
}

// ReadTopologyFile loads a topology from a file, picking the parser from
// the extension (.graphml/.gml/.xml, .snd/.sndlib/.native, else text
// format) with content sniffing as the fallback for unknown extensions.
func ReadTopologyFile(path string) (*Topology, error) {
	g, err := scen.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return &Topology{g: g}, nil
}
