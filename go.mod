module github.com/coyote-te/coyote

go 1.24
