# COYOTE build/test/bench entry points. Everything is plain `go` under the
# hood; the targets just record the blessed invocations.

GO ?= go

.PHONY: all build test race bench smoke-examples

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench regenerates BENCH_PR2.json, the machine-readable perf trajectory:
# BenchmarkCompute* (the headline end-to-end pipeline benchmarks) at 1 and
# 4 workers, parsed into JSON by internal/tools/benchjson. CI runs this on
# every push; commit the refreshed file when the numbers move materially.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkCompute' -benchtime 2x -cpu 1,4 . \
		| tee /dev/stderr \
		| $(GO) run ./internal/tools/benchjson -out BENCH_PR2.json

# smoke-examples builds and runs every examples/* binary (CI does the same
# so examples cannot silently rot). gravitysweep is the slow one; the
# timeout is generous for 1-CPU runners.
smoke-examples:
	@set -e; for d in examples/*/; do \
		echo "== $$d"; \
		timeout 900 $(GO) run "./$$d" >/dev/null; \
	done; echo "examples OK"
