# COYOTE build/test/bench entry points. Everything is plain `go` under the
# hood; the targets just record the blessed invocations.

GO ?= go

.PHONY: all build test vet race cover bench fuzz-smoke smoke-examples sweep

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# cover prints the per-package coverage summary (the CI test job runs this
# so coverage is visible on every push).
cover:
	$(GO) test -cover ./...

# sweep is the cached corpus-sweep gate (DESIGN.md §8): run the golden
# campaign fresh through the content-addressed cache, re-run it (must be
# all cache hits and byte-identical), and diff the results against the
# checked-in golden corpus — any numeric drift fails the target. CI runs
# this on every push and uploads sweep.jsonl as the machine-readable
# campaign artifact.
sweep:
	$(GO) run ./cmd/coyote-sweep run -campaign golden -cache .sweep-cache -out sweep.jsonl -v
	$(GO) run ./cmd/coyote-sweep run -campaign golden -cache .sweep-cache -out sweep-rerun.jsonl
	cmp sweep.jsonl sweep-rerun.jsonl
	$(GO) run ./cmd/coyote-sweep status -campaign golden -cache .sweep-cache
	$(GO) run ./cmd/coyote-sweep diff -golden testdata/golden sweep.jsonl

# bench regenerates BENCH_PR6.json, the machine-readable perf trajectory
# (BENCH_PR2/PR3/PR4.json are kept as the historical record):
# BenchmarkCompute* (the headline end-to-end pipeline benchmarks) and the
# online controller's warm-vs-cold recompute pair at 1 and 4 workers,
# plus the sparse-LP core trio — BenchmarkExactOPT (sparse vs dense exact
# OPTDAG on the largest corpus topology), BenchmarkSlaveLP (per-link
# basis-chain warm start vs cold), and BenchmarkDualRestart (RHS-edit
# re-solve via the dual simplex vs a cold rebuild, with pivots/op
# metrics backing the <0.6× warm-iteration target) — parsed into JSON by
# internal/tools/benchjson (which also records the host CPU count — the
# key to reading per-worker numbers on small runners). CI runs this on
# every push; commit the refreshed file when the numbers move materially.
bench:
	( $(GO) test -run '^$$' -bench 'BenchmarkCompute' -benchtime 2x -cpu 1,4 . && \
	  $(GO) test -run '^$$' -bench 'Benchmark(Warm|Cold)Recompute' -benchtime 4x -cpu 1,4 . && \
	  $(GO) test -run '^$$' -bench 'Benchmark(ExactOPT|SlaveLP)' -benchtime 2x . && \
	  $(GO) test -run '^$$' -bench 'BenchmarkDualRestart' -benchtime 20x . ) \
		| tee /dev/stderr \
		| $(GO) run ./internal/tools/benchjson -o BENCH_PR6.json

# fuzz-smoke runs each native fuzz target briefly — the CI gate that
# malformed real-world topology and MPS files error instead of panicking
# (and, for MPS, that everything parseable round-trips byte-stably).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzReadGraphML$$' -fuzztime 15s ./internal/scen
	$(GO) test -run '^$$' -fuzz '^FuzzReadSNDlib$$' -fuzztime 15s ./internal/scen
	$(GO) test -run '^$$' -fuzz '^FuzzReadText$$' -fuzztime 15s ./internal/scen
	$(GO) test -run '^$$' -fuzz '^FuzzReadAuto$$' -fuzztime 15s ./internal/scen
	$(GO) test -run '^$$' -fuzz '^FuzzReadMPS$$' -fuzztime 15s ./internal/lp

# smoke-examples builds and runs every examples/* binary (CI does the same
# so examples cannot silently rot). gravitysweep is the slow one; the
# timeout is generous for 1-CPU runners.
smoke-examples:
	@set -e; for d in examples/*/; do \
		echo "== $$d"; \
		timeout 900 $(GO) run "./$$d" >/dev/null; \
	done; echo "examples OK"
