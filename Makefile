# COYOTE build/test/bench entry points. Everything is plain `go` under the
# hood; the targets just record the blessed invocations.

GO ?= go

.PHONY: all build test vet race cover bench bench-compare fuzz-smoke smoke-examples sweep metrics-smoke fleet-smoke

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# cover prints the per-package coverage summary (the CI test job runs this
# so coverage is visible on every push).
cover:
	$(GO) test -cover ./...

# sweep is the cached corpus-sweep gate (DESIGN.md §8): run the golden
# campaign fresh through the content-addressed cache, re-run it (must be
# all cache hits and byte-identical), and diff the results against the
# checked-in golden corpus — any numeric drift fails the target. CI runs
# this on every push and uploads sweep.jsonl as the machine-readable
# campaign artifact.
sweep:
	$(GO) run ./cmd/coyote-sweep run -campaign golden -cache .sweep-cache -out sweep.jsonl -trace sweep-trace.json -v
	$(GO) run ./cmd/coyote-sweep run -campaign golden -cache .sweep-cache -out sweep-rerun.jsonl
	cmp sweep.jsonl sweep-rerun.jsonl
	$(GO) run ./cmd/coyote-sweep status -campaign golden -cache .sweep-cache
	$(GO) run ./cmd/coyote-sweep diff -golden testdata/golden sweep.jsonl

# metrics-smoke is the live end-to-end observability gate: boot
# coyote-serve, warm it with one /state request, then scrape /metrics with
# the strict exposition parser and require the family every subsystem is
# expected to export. Fails if the page is malformed or a family has gone
# missing. CI runs this on every push.
METRICS_ADDR ?= localhost:18080
metrics-smoke: build
	$(GO) build -o /tmp/coyote-serve ./cmd/coyote-serve
	/tmp/coyote-serve -addr $(METRICS_ADDR) -topo NSF -quick & \
	SERVE_PID=$$!; \
	trap 'kill $$SERVE_PID 2>/dev/null' EXIT; \
	$(GO) run ./internal/tools/promcheck \
		-url http://$(METRICS_ADDR)/metrics \
		-warm http://$(METRICS_ADDR)/state \
		-require coyote_lp_solves_total,coyote_lp_iterations_total,coyote_session_events_total,coyote_session_recomputes_total,coyote_par_loops_total,coyote_http_requests_total,coyote_http_request_seconds,coyote_fleet_heartbeats_total,coyote_fleet_shards,coyote_fleet_merged_results_total,coyote_log_records_total \
		-require-samples coyote_lp_solves_total,coyote_session_events_total,coyote_http_requests_total \
		-v

# fleet-smoke is the live fleet-control-room gate (DESIGN.md §11): boot
# coyote-serve as the controller, run the golden campaign as two
# sequential coyote-sweep shards posting heartbeats and results to it,
# then (a) have fleetcheck assert both shards reported final with the
# controller's incrementally merged /fleet/results byte-identical to the
# merge-at-end `coyote-sweep merge` output, and (b) snapshot /fleet and
# /dashboard for CI artifact upload. Shards run sequentially so the
# target behaves on 1-CPU runners; the protocol is the same either way.
FLEET_ADDR ?= localhost:18090
fleet-smoke: build
	$(GO) build -o /tmp/coyote-serve ./cmd/coyote-serve
	$(GO) build -o /tmp/coyote-sweep ./cmd/coyote-sweep
	$(GO) build -o /tmp/fleetcheck ./internal/tools/fleetcheck
	/tmp/coyote-serve -addr $(FLEET_ADDR) -topo NSF -quick & \
	SERVE_PID=$$!; \
	trap 'kill $$SERVE_PID 2>/dev/null' EXIT; \
	/tmp/coyote-sweep run -campaign golden -shard 0/2 -cache .sweep-cache \
		-controller http://$(FLEET_ADDR) -hb 500ms -out fleet-shard0.jsonl -log fleet-shard0.log.jsonl && \
	/tmp/coyote-sweep run -campaign golden -shard 1/2 -cache .sweep-cache \
		-controller http://$(FLEET_ADDR) -hb 500ms -out fleet-shard1.jsonl -log fleet-shard1.log.jsonl && \
	/tmp/coyote-sweep merge -out fleet-merged.jsonl fleet-shard0.jsonl fleet-shard1.jsonl && \
	/tmp/fleetcheck -url http://$(FLEET_ADDR) -shards 2 -merged fleet-merged.jsonl \
		-fleet-out fleet-report.json -dashboard-out fleet-dashboard.html

# bench regenerates $(BENCH_OUT), the machine-readable perf trajectory
# (BENCH_PR2..PR7.json are kept as the historical record):
# BenchmarkCompute* (the headline end-to-end pipeline benchmarks, with
# BenchmarkComputeEndToEnd swept at 1/2/4 workers for the
# proportional-overhead guarantee), the online controller's warm-vs-cold
# recompute pair, the PR-9 reaction-latency pair —
# BenchmarkSessionFailRecover (warm Fail/Recover session updates) and
# BenchmarkSPFRepair (incremental repair vs cold all-destination
# Dijkstras) — plus the sparse-LP core trio: BenchmarkExactOPT,
# BenchmarkSlaveLP, BenchmarkDualRestart (pivots/op metrics backing the
# <0.6× warm-iteration target), and BenchmarkOptimizerStep (the gpopt
# inner loop, whose allocs/op column must read 0). Everything runs with
# -benchmem so bytes/op / allocs/op land in the JSON next to ns/op,
# parsed by internal/tools/benchjson (which also records the host CPU
# count — the key to reading per-worker numbers on small runners). CI
# runs this on every push; commit the refreshed file when the numbers
# move materially.
BENCH_OUT ?= BENCH_PR10.json
bench:
	( $(GO) test -run '^$$' -bench '^BenchmarkCompute(NSF)?$$' -benchtime 2x -benchmem -cpu 1,4 . && \
	  $(GO) test -run '^$$' -bench '^BenchmarkComputeEndToEnd$$' -benchtime 20x -benchmem -cpu 1,2,4 . && \
	  $(GO) test -run '^$$' -bench 'Benchmark(Warm|Cold)Recompute' -benchtime 4x -benchmem -cpu 1,4 . && \
	  $(GO) test -run '^$$' -bench 'BenchmarkSessionFailRecover' -benchtime 10x -benchmem . && \
	  $(GO) test -run '^$$' -bench 'BenchmarkSPFRepair' -benchtime 200x -benchmem . && \
	  $(GO) test -run '^$$' -bench 'Benchmark(ExactOPT|SlaveLP)' -benchtime 2x -benchmem . && \
	  $(GO) test -run '^$$' -bench 'BenchmarkDualRestart' -benchtime 20x -benchmem . && \
	  $(GO) test -run '^$$' -bench 'BenchmarkOptimizerStep' -benchtime 100x -benchmem ./internal/gpopt && \
	  $(GO) test -run '^$$' -bench 'BenchmarkStrategyBuild' -benchtime 2x -benchmem ./internal/strategy && \
	  $(GO) test -run '^$$' -bench 'BenchmarkSemiObliviousAdapt' -benchtime 20x -benchmem ./internal/strategy ) \
		| tee /dev/stderr \
		| $(GO) run ./internal/tools/benchjson -o $(BENCH_OUT)

# bench-compare measures the suite fresh and diffs it against the last
# committed trajectory point, then prints the full PR-over-PR table.
# Advisory by default (shared runners are noisy); pass
# BENCH_COMPARE_FLAGS=-fail to gate on it.
BENCH_BASELINE ?= BENCH_PR9.json
BENCH_COMPARE_FLAGS ?=
bench-compare:
	$(MAKE) bench BENCH_OUT=bench-fresh.json
	$(GO) run ./internal/tools/benchjson compare $(BENCH_COMPARE_FLAGS) $(BENCH_BASELINE) bench-fresh.json
	$(GO) run ./internal/tools/benchjson trajectory $(wildcard BENCH_PR*.json) bench-fresh.json

# fuzz-smoke runs each native fuzz target briefly — the CI gate that
# malformed real-world topology and MPS files error instead of panicking
# (and, for MPS, that everything parseable round-trips byte-stably; for
# the Prometheus exposition parser, that accepted pages keep coherent
# histograms).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzReadGraphML$$' -fuzztime 15s ./internal/scen
	$(GO) test -run '^$$' -fuzz '^FuzzReadSNDlib$$' -fuzztime 15s ./internal/scen
	$(GO) test -run '^$$' -fuzz '^FuzzReadText$$' -fuzztime 15s ./internal/scen
	$(GO) test -run '^$$' -fuzz '^FuzzReadAuto$$' -fuzztime 15s ./internal/scen
	$(GO) test -run '^$$' -fuzz '^FuzzReadMPS$$' -fuzztime 15s ./internal/lp
	$(GO) test -run '^$$' -fuzz '^FuzzParseProm$$' -fuzztime 15s ./internal/obs

# smoke-examples builds and runs every examples/* binary (CI does the same
# so examples cannot silently rot). gravitysweep is the slow one; the
# timeout is generous for 1-CPU runners.
smoke-examples:
	@set -e; for d in examples/*/; do \
		echo "== $$d"; \
		timeout 900 $(GO) run "./$$d" >/dev/null; \
	done; echo "examples OK"
