package coyote_test

import (
	"testing"

	coyote "github.com/coyote-te/coyote"
)

func newTestSession(t *testing.T) (*coyote.Session, *coyote.Topology, *coyote.DemandMatrix) {
	t.Helper()
	topo, err := coyote.LoadTopology("NSF")
	if err != nil {
		t.Fatal(err)
	}
	base := coyote.GravityDemands(topo, 1)
	s, err := coyote.NewSession(topo, coyote.MarginBounds(base, 2), coyote.Options{
		OptimizerIters:   150,
		AdversarialIters: 2,
		Samples:          3,
		Seed:             1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, topo, base
}

func TestSessionRejectsLocalSearchWeights(t *testing.T) {
	topo, err := coyote.LoadTopology("NSF")
	if err != nil {
		t.Fatal(err)
	}
	bounds := coyote.MarginBounds(coyote.GravityDemands(topo, 1), 2)
	if _, err := coyote.NewSession(topo, bounds, coyote.Options{LocalSearchWeights: true}); err == nil {
		t.Fatal("NewSession must reject LocalSearchWeights")
	}
}

func TestSessionLifecycle(t *testing.T) {
	s, topo, base := newTestSession(t)

	cfg := s.Config()
	if !(cfg.Perf >= 1-1e-9) || cfg.Perf > cfg.ECMPPerf+1e-9 {
		t.Fatalf("initial Perf %v (ECMP %v)", cfg.Perf, cfg.ECMPPerf)
	}
	if err := cfg.Routing.Validate(); err != nil {
		t.Fatal(err)
	}

	// Demand drift → warm update.
	ev, err := s.UpdateBounds(coyote.MarginBounds(base, 2.5))
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Warm {
		t.Fatal("UpdateBounds should be warm")
	}

	// Lies: first emission is a full injection; an immediate second one is
	// a no-op.
	l1, err := s.Lies(3)
	if err != nil {
		t.Fatal(err)
	}
	if l1.Churn() != l1.Added || l1.Removed != 0 || l1.Updated != 0 {
		t.Fatalf("first lie emission: added %d removed %d updated %d", l1.Added, l1.Removed, l1.Updated)
	}
	l2, err := s.Lies(3)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Churn() != 0 {
		t.Fatalf("steady-state churn %d, want 0", l2.Churn())
	}

	// Failure / recovery round-trip.
	a, ok := topo.Node("NSF-00")
	if !ok {
		t.Fatal("node NSF-00 missing")
	}
	b, ok := topo.Node("NSF-01")
	if !ok {
		t.Fatal("node NSF-01 missing")
	}
	link, ok := topo.Link(a, b)
	if !ok {
		t.Fatal("link NSF-00–NSF-01 missing")
	}
	if _, err := s.Fail(link); err != nil {
		t.Fatal(err)
	}
	if n := len(s.FailedLinks()); n != 1 {
		t.Fatalf("%d failed links, want 1", n)
	}
	if _, err := s.Recover(link); err != nil {
		t.Fatal(err)
	}
	if n := len(s.FailedLinks()); n != 0 {
		t.Fatalf("%d failed links after recovery, want 0", n)
	}

	events := s.Events()
	if len(events) < 5 {
		t.Fatalf("only %d events recorded", len(events))
	}
	if events[0].Kind != "init" {
		t.Fatalf("first event %q", events[0].Kind)
	}
}
