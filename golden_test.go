// The golden regression corpus: testdata/golden pins the full output of
// the golden sweep campaign (every unit kind — registry experiments,
// corpus topologies, generated scenarios — under the Quick configuration),
// making the repo's entire numeric output a tier-1-testable artifact. Any
// change that moves an MLU, stretch, or churn number anywhere in the
// corpus fails this test; intentional changes regenerate the corpus with
//
//	go test -run TestGoldenCorpus -update .
//
// and land the refreshed testdata/golden files in the same commit, where
// the diff review shows exactly which numbers moved.
package coyote_test

import (
	"flag"
	"testing"

	"github.com/coyote-te/coyote/internal/sweep"
)

var update = flag.Bool("update", false, "regenerate testdata/golden from a fresh golden-campaign run")

func TestGoldenCorpus(t *testing.T) {
	campaign, err := sweep.Golden()
	if err != nil {
		t.Fatal(err)
	}
	// No cache: the corpus must pin what the code computes today, not
	// what some cache directory remembers.
	rep, err := sweep.Run(campaign, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != len(campaign.Units) {
		t.Fatalf("golden campaign ran %d of %d units", len(rep.Results), len(campaign.Units))
	}

	const dir = "testdata/golden"
	if *update {
		if err := sweep.WriteGolden(dir, rep.Results); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d units", dir, len(rep.Results))
		return
	}

	golden, err := sweep.ReadGolden(dir)
	if err != nil {
		t.Fatalf("reading golden corpus (regenerate with -update): %v", err)
	}
	drifts := sweep.Diff(golden, rep.Results, 0)
	for _, d := range drifts {
		t.Errorf("golden drift: %s", d)
	}
	if len(drifts) > 0 {
		t.Fatalf("%d golden drift(s) — if intentional, regenerate with: go test -run TestGoldenCorpus -update .", len(drifts))
	}
}
