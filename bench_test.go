// Benchmarks regenerating every table and figure of the paper's
// evaluation (one benchmark per artifact, per DESIGN.md §3), plus
// micro-benchmarks of the pipeline stages. The benchmarks run the reduced
// (Quick) experiment configuration so that `go test -bench=.` finishes in
// minutes; `cmd/coyote-eval` runs the full configurations recorded in
// EXPERIMENTS.md.
package coyote_test

import (
	"io"
	"testing"

	coyote "github.com/coyote-te/coyote"
	"github.com/coyote-te/coyote/internal/dagx"
	"github.com/coyote-te/coyote/internal/delta"
	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/exp"
	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/lp"
	"github.com/coyote-te/coyote/internal/mcf"
	"github.com/coyote-te/coyote/internal/oblivious"
	"github.com/coyote-te/coyote/internal/spf"
	"github.com/coyote-te/coyote/internal/topo"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := exp.Quick()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := exp.Run(id, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tab.WriteTo(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunningExample regenerates the Fig. 1 / Appendix B numbers.
func BenchmarkRunningExample(b *testing.B) { benchExperiment(b, "running") }

// BenchmarkFig6Geant regenerates Fig. 6 (Geant, gravity).
func BenchmarkFig6Geant(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7Digex regenerates Fig. 7 (Digex, gravity).
func BenchmarkFig7Digex(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8AS1755 regenerates Fig. 8 (AS1755, bimodal).
func BenchmarkFig8AS1755(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9Abilene regenerates Fig. 9 (local-search heuristic). The
// quick configuration trims the margin range.
func BenchmarkFig9Abilene(b *testing.B) {
	cfg := exp.Quick()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := exp.Fig9(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tab.WriteTo(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10Approx regenerates Fig. 10 (virtual next-hop quantization).
func BenchmarkFig10Approx(b *testing.B) {
	cfg := exp.Quick()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := exp.Fig10(cfg, []int{3, 5, 10})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tab.WriteTo(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11Stretch regenerates Fig. 11 (path stretch) on a corpus
// subset.
func BenchmarkFig11Stretch(b *testing.B) {
	cfg := exp.Quick()
	names := []string{"NSF", "Abilene", "Germany"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := exp.Fig11(cfg, names)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tab.WriteTo(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12Prototype regenerates the §VII prototype emulation.
func BenchmarkFig12Prototype(b *testing.B) { benchExperiment(b, "fig12") }

// BenchmarkTable1 regenerates Table I rows on a corpus subset (the full
// 14-topology table is produced by cmd/coyote-eval -run table1).
func BenchmarkTable1(b *testing.B) {
	cfg := exp.Quick()
	names := []string{"NSF", "Abilene"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := exp.Table1(cfg, names)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tab.WriteTo(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDAGAug measures the DAG-augmentation ablation.
func BenchmarkAblationDAGAug(b *testing.B) {
	cfg := exp.Quick()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := exp.AblationDAG("NSF", cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tab.WriteTo(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAdversary measures sampled-vs-exact adversary accuracy.
func BenchmarkAblationAdversary(b *testing.B) { benchExperiment(b, "ablation-adv") }

// BenchmarkNPGadget runs the Theorem 1 reduction demonstration.
func BenchmarkNPGadget(b *testing.B) { benchExperiment(b, "negative-np") }

// BenchmarkPathLowerBound runs the Theorem 4 demonstration.
func BenchmarkPathLowerBound(b *testing.B) { benchExperiment(b, "negative-path") }

// benchCompute measures the full public-API pipeline (DAG construction,
// splitting optimization, adversarial evaluation) on a corpus topology at
// Quick-configuration effort. Options.Workers is left at zero so the
// evaluation engine sizes its worker pool to GOMAXPROCS — running with
// `-cpu=1,4` therefore contrasts serial and 4-worker wall-clock directly.
func benchCompute(b *testing.B, name string) {
	b.Helper()
	quick := exp.Quick()
	topo, err := coyote.LoadTopology(name)
	if err != nil {
		b.Fatal(err)
	}
	bounds := coyote.MarginBounds(coyote.GravityDemands(topo, 1), 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coyote.New(topo, bounds, coyote.Options{
			OptimizerIters:   quick.OptIters,
			AdversarialIters: quick.AdvIters,
			Samples:          quick.Samples,
			Eps:              quick.Eps,
			Seed:             1,
		}).Compute(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompute is the headline scaling benchmark of the concurrent
// evaluation engine (DESIGN.md §4): Geant, gravity demands, margin 2.
// Run `go test -bench=BenchmarkCompute -cpu=1,4` to see the worker-pool
// speedup recorded in EXPERIMENTS.md; the parity test guarantees the
// results themselves are identical at every -cpu value.
func BenchmarkCompute(b *testing.B) { benchCompute(b, "Geant") }

// BenchmarkComputeNSF is the same measurement on the small NSF backbone,
// where the per-destination fan-out (rather than the candidate fan-out)
// carries most of the parallelism.
func BenchmarkComputeNSF(b *testing.B) { benchCompute(b, "NSF") }

// BenchmarkComputeEndToEnd measures the public-API pipeline on the
// running-example network.
func BenchmarkComputeEndToEnd(b *testing.B) {
	t := coyote.NewTopology()
	s1 := t.AddNode("s1")
	s2 := t.AddNode("s2")
	v := t.AddNode("v")
	tt := t.AddNode("t")
	t.AddLink(s1, s2, 1, 1)
	t.AddLink(s1, v, 1, 1)
	t.AddLink(s2, v, 1, 1)
	t.AddLink(s2, tt, 1, 1)
	t.AddLink(v, tt, 1, 1)
	base := coyote.NewDemandMatrix(t)
	base.Set(s1, tt, 1)
	base.Set(s2, tt, 1)
	bounds := coyote.MarginBounds(base, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coyote.New(t, bounds, coyote.Options{
			OptimizerIters: 200, AdversarialIters: 2, Seed: 1,
		}).Compute(); err != nil {
			b.Fatal(err)
		}
	}
}

// warmBenchBoxes builds the two demand boxes the recompute benchmarks
// alternate between, simulating a drifting operator view on Geant.
func warmBenchBoxes(b *testing.B) (*coyote.Topology, [2]*coyote.Bounds) {
	b.Helper()
	topo, err := coyote.LoadTopology("Geant")
	if err != nil {
		b.Fatal(err)
	}
	base := coyote.GravityDemands(topo, 1)
	shifted := coyote.GravityDemands(topo, 1.15)
	return topo, [2]*coyote.Bounds{
		coyote.MarginBounds(base, 2),
		coyote.MarginBounds(shifted, 2.2),
	}
}

// BenchmarkWarmRecompute measures the online controller's incremental
// path: one Session absorbing alternating demand-box updates, each
// recompute warm-starting from the previous log-ratio/Adam state with the
// adversary's critical matrices carried over and OPTDAG normalizations
// cached. Compare with BenchmarkColdRecompute — the same sequence of
// boxes, each paying the full batch pipeline from scratch.
func BenchmarkWarmRecompute(b *testing.B) {
	quick := exp.Quick()
	topo, boxes := warmBenchBoxes(b)
	s, err := coyote.NewSession(topo, boxes[0], coyote.Options{
		OptimizerIters:   quick.OptIters,
		AdversarialIters: quick.AdvIters,
		Samples:          quick.Samples,
		Eps:              quick.Eps,
		Seed:             1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.UpdateBounds(boxes[(i+1)%2]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColdRecompute is the batch-pipeline reference for
// BenchmarkWarmRecompute: the identical alternating boxes, recomputed cold
// (full Compute) every time.
func BenchmarkColdRecompute(b *testing.B) {
	quick := exp.Quick()
	topo, boxes := warmBenchBoxes(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coyote.New(topo, boxes[(i+1)%2], coyote.Options{
			OptimizerIters:   quick.OptIters,
			AdversarialIters: quick.AdvIters,
			Samples:          quick.Samples,
			Eps:              quick.Eps,
			Seed:             1,
		}).Compute(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionFailRecover measures the online controller's warm
// reaction latency to a link event on Geant: each op is one session
// update — alternately failing and recovering the same link — where the
// epoch's shortest-path DAGs come from incrementally repaired distance
// fields (spf.Incremental) and the optimizer refines the carried
// configuration for a few warm iterations (the paper's §VI-A operating
// point: failure reactions refine precomputed state, they don't
// recompute). The <100ms/op target is the PR-9 acceptance number.
func BenchmarkSessionFailRecover(b *testing.B) {
	quick := exp.Quick()
	g, err := topo.Load("Geant")
	if err != nil {
		b.Fatal(err)
	}
	s, err := delta.NewSession(g, demand.MarginBox(demand.Gravity(g, 1), 2), delta.Config{
		OptIters: quick.OptIters,
		AdvIters: quick.AdvIters,
		Samples:  quick.Samples,
		Eps:      quick.Eps,
		Seed:     1,
		// The failover plan is what makes Fail a warm swap-and-refine
		// instead of a cold survivor recompute; the warm budget is a
		// handful of gradient steps on the swapped-in configuration.
		PrecomputeFailover: true,
		WarmOptIters:       8,
		WarmAdvIters:       2,
	})
	if err != nil {
		b.Fatal(err)
	}
	// First link whose failure the session accepts (doesn't partition);
	// the probe pair also warms the session so b.N measures steady state.
	link := graph.EdgeID(-1)
	for _, l := range g.Links() {
		if _, err := s.Fail(l); err == nil {
			if _, err := s.Recover(l); err != nil {
				b.Fatal(err)
			}
			link = l
			break
		}
	}
	if link < 0 {
		b.Fatal("no non-partitioning link on Geant")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			if _, err := s.Fail(link); err != nil {
				b.Fatal(err)
			}
		} else {
			if _, err := s.Recover(link); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSPFRepair isolates the dynamic-SPF layer under the session
// benchmark: one op is a link fail + recover repaired across every
// destination's distance field on Geant. The cold reference pays what a
// cold session pays for the same pair — two full all-destination Dijkstra
// rebuilds. The incremental/cold ratio is the near-O(affected) claim in
// DESIGN.md §12 made measurable (and, with -benchmem, the repair path's
// zero-allocation contract).
func BenchmarkSPFRepair(b *testing.B) {
	g, err := topo.Load("Geant")
	if err != nil {
		b.Fatal(err)
	}
	// First link whose removal keeps the topology connected, so the
	// repaired fields never degenerate to unreachable-everywhere.
	link := graph.EdgeID(-1)
	for _, l := range g.Links() {
		if g.WithoutLinks([]graph.EdgeID{l}).Connected() {
			link = l
			break
		}
	}
	if link < 0 {
		b.Fatal("no non-bridge link on Geant")
	}
	b.Run("incremental", func(b *testing.B) {
		incs := make([]*spf.Incremental, g.NumNodes())
		for t := range incs {
			incs[t] = spf.NewIncremental(g, graph.NodeID(t))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, inc := range incs {
				inc.FailLink(link)
			}
			for _, inc := range incs {
				inc.RecoverLink(link)
			}
		}
	})
	b.Run("cold", func(b *testing.B) {
		survivor := g.WithoutLinks([]graph.EdgeID{link})
		n := g.NumNodes()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for t := 0; t < n; t++ {
				spf.ToDestination(survivor, graph.NodeID(t))
			}
			for t := 0; t < n; t++ {
				spf.ToDestination(g, graph.NodeID(t))
			}
		}
	})
}

// BenchmarkExactOPT is the sparse-core acceptance benchmark: exact OPTDAG
// (min-MLU within the augmented DAGs, gravity demands) on the largest
// corpus topology, BICS (33 nodes, 96 directed edges), solved by the
// sparse revised simplex versus the dense full-tableau reference. The
// sparse core is what lets ExactNodeLimit cover the entire corpus.
func BenchmarkExactOPT(b *testing.B) {
	g, err := topo.Load("BICS")
	if err != nil {
		b.Fatal(err)
	}
	D := demand.Gravity(g, 1)
	dags := dagx.BuildAll(g, dagx.Augmented)
	b.Run("sparse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, _, err := mcf.MinMLUExactBasis(g, dags, D, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dense", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := mcf.MinMLUExactDense(g, dags, D); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDualRestart measures the PR-6 headline: re-solving the exact
// OPTDAG LP after demand (RHS) edits from the carried basis, where the
// dual simplex repairs primal infeasibility in place, versus rebuilding
// and cold-solving the edited instance. The pivots/op metric exposes the
// iteration ratio behind the wall-clock gap (ROADMAP target: warm well
// under 0.6× cold).
func BenchmarkDualRestart(b *testing.B) {
	g, err := topo.Load("NSF")
	if err != nil {
		b.Fatal(err)
	}
	n := g.NumNodes()
	D := demand.Gravity(g, 1)
	dags := dagx.BuildAll(g, dagx.Augmented)
	// A deterministic drift cycle: each step rescales one source's demand
	// toward one destination, the bound-only edit the dual restart targets.
	type edit struct {
		s, t  int
		scale float64
	}
	var edits []edit
	for i := 0; i < 8; i++ {
		edits = append(edits, edit{
			s:     (i * 5) % n,
			t:     (i*3 + 1) % n,
			scale: []float64{1.7, 0.6, 2.3, 0.45}[i%4],
		})
	}
	b.Run("dual-warm", func(b *testing.B) {
		mm := mcf.NewMinMLUModel(g, dags, D)
		_, _, basis, err := mm.Solve(nil)
		if err != nil {
			b.Fatal(err)
		}
		cur := D.Clone()
		lp.ResetGlobalStats()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e := edits[i%len(edits)]
			if e.s == e.t || cur.D[e.s*n+e.t] <= 0 {
				e.s = (e.s + 1) % n
			}
			if e.s == e.t || cur.D[e.s*n+e.t] <= 0 {
				continue
			}
			d := cur.D[e.s*n+e.t] * e.scale
			cur.D[e.s*n+e.t] = d
			if err := mm.SetDemand(graph.NodeID(e.s), graph.NodeID(e.t), d); err != nil {
				b.Fatal(err)
			}
			_, _, nb, err := mm.Solve(&lp.SolveOptions{Basis: basis})
			if err != nil {
				b.Fatal(err)
			}
			basis = nb
		}
		b.StopTimer()
		st := lp.GlobalStats()
		b.ReportMetric(float64(st.Iterations)/float64(b.N), "pivots/op")
		b.ReportMetric(float64(st.DualIterations)/float64(b.N), "dual-pivots/op")
	})
	b.Run("cold", func(b *testing.B) {
		cur := D.Clone()
		lp.ResetGlobalStats()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e := edits[i%len(edits)]
			if e.s == e.t || cur.D[e.s*n+e.t] <= 0 {
				e.s = (e.s + 1) % n
			}
			if e.s == e.t || cur.D[e.s*n+e.t] <= 0 {
				continue
			}
			cur.D[e.s*n+e.t] *= e.scale
			if _, _, _, err := mcf.MinMLUExactBasis(g, dags, cur, nil); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		st := lp.GlobalStats()
		b.ReportMetric(float64(st.Iterations)/float64(b.N), "pivots/op")
	})
}

// BenchmarkSlaveLP measures the Appendix-C exact adversary (one slave LP
// per link, shared rows) on Abilene with and without the per-link
// basis-chain warm start — the warm/cold contrast isolates what carrying
// the previous link's vertex saves.
func BenchmarkSlaveLP(b *testing.B) {
	g, err := topo.Load("Abilene")
	if err != nil {
		b.Fatal(err)
	}
	box := demand.MarginBox(demand.Gravity(g, 1), 2)
	dags := dagx.BuildAll(g, dagx.Augmented)
	ev := oblivious.NewEvaluator(g, dags, box, oblivious.EvalConfig{Samples: 2, Seed: 1})
	r := oblivious.ECMPOnDAGs(g, dags)
	b.Run("warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ev.PerfExact(r); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ev.PerfExactNoWarm(r); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFailover measures precomputing per-link failure configurations
// (§VI-A) on NSF.
func BenchmarkFailover(b *testing.B) {
	cfg := exp.Quick()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := exp.Failover("NSF", cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tab.WriteTo(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
