package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"runtime/debug"
	"strconv"
	"sync"

	"github.com/coyote-te/coyote/internal/exp"
)

// Fingerprint identifies the code that produced a cache entry. Results are
// pure functions of (unit, config, code), so the fingerprint is the cache
// key's third coordinate: rebuild the binary and previous entries simply
// stop matching instead of serving stale numbers. By default it is the
// SHA-256 of the running executable (stable within a build, changed by any
// recompile); the COYOTE_SWEEP_FINGERPRINT environment variable overrides
// it for workflows that pin cache validity to something coarser (a release
// tag, a CI cache epoch).
func Fingerprint() string {
	fingerprintOnce.Do(func() {
		fingerprint = computeFingerprint()
	})
	return fingerprint
}

var (
	fingerprintOnce sync.Once
	fingerprint     string
)

func computeFingerprint() string {
	if env := os.Getenv("COYOTE_SWEEP_FINGERPRINT"); env != "" {
		return env
	}
	if path, err := os.Executable(); err == nil {
		if f, err := os.Open(path); err == nil {
			defer f.Close()
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				return "exe-" + hex.EncodeToString(h.Sum(nil))[:32]
			}
		}
	}
	// Last resort (e.g. the executable is unreadable): the module build
	// info, which still changes with the toolchain and dependency set.
	if bi, ok := debug.ReadBuildInfo(); ok {
		h := sha256.Sum256([]byte(bi.String()))
		return "buildinfo-" + hex.EncodeToString(h[:])[:32]
	}
	return "unknown"
}

// Key derives the unit's content-addressed cache key under cfg and a code
// fingerprint: the hex SHA-256 of a framed serialization of every input
// that can change the result — topology bytes, unit identity, demand
// model, the full configuration, and the fingerprint. Length prefixes
// frame each field, so no concatenation of distinct inputs can collide.
func (u Unit) Key(cfg exp.Config, fingerprint string) (string, error) {
	cfgJSON, err := json.Marshal(cfg)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	for _, field := range [][]byte{
		[]byte("coyote-sweep-key-v1"),
		[]byte(fingerprint),
		[]byte(u.ID),
		[]byte(u.Kind),
		[]byte(u.Exp),
		[]byte(u.Model),
		cfgJSON,
		u.Topo,
	} {
		io.WriteString(h, strconv.Itoa(len(field)))
		h.Write([]byte{'\n'})
		h.Write(field)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Entry is one cached unit result. Table is the deterministic payload;
// CreatedUnix and ElapsedMS are bookkeeping (cache-age reporting, the
// resume-time table in EXPERIMENTS.md) and never feed result comparison.
type Entry struct {
	Key         string     `json:"key"`
	Unit        string     `json:"unit"`
	Table       *exp.Table `json:"table"`
	CreatedUnix int64      `json:"created_unix"`
	ElapsedMS   int64      `json:"elapsed_ms"`
}

// Cache is a content-addressed result store: one JSON file per key under
// dir, fanned out over 256 two-hex-digit subdirectories. Writers are
// atomic (temp file + rename), so an interrupted campaign never leaves a
// half-written entry for resume to trip over, and concurrent shards may
// share a directory.
type Cache struct {
	dir string
}

// Open creates (if needed) and opens a cache directory.
func Open(dir string) (*Cache, error) {
	if dir == "" {
		return nil, errors.New("sweep: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key[:2], key+".json")
}

// Get loads the entry for key; the second return reports whether it
// existed. A malformed or mis-keyed entry is an error, not a miss — silent
// recomputation would mask cache corruption.
func (c *Cache) Get(key string) (*Entry, bool, error) {
	data, err := os.ReadFile(c.path(key))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	var e Entry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, false, fmt.Errorf("sweep: corrupt cache entry %s: %w", c.path(key), err)
	}
	if e.Key != key {
		return nil, false, fmt.Errorf("sweep: cache entry %s claims key %s", c.path(key), e.Key)
	}
	if e.Table == nil {
		return nil, false, fmt.Errorf("sweep: cache entry %s has no table", c.path(key))
	}
	return &e, true, nil
}

// Has reports whether key is present without decoding it.
func (c *Cache) Has(key string) bool {
	_, err := os.Stat(c.path(key))
	return err == nil
}

// Put stores an entry atomically.
func (c *Cache) Put(e *Entry) error {
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return err
	}
	path := c.path(e.Key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Len counts the entries in the cache.
func (c *Cache) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(c.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".json" {
			n++
		}
		return nil
	})
	return n, err
}
