package sweep

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"github.com/coyote-te/coyote/internal/exp"
	"github.com/coyote-te/coyote/internal/obs"
)

// TestAggregatorIncrementalEqualsMergeAtEnd is the incremental-merge
// invariant (DESIGN.md §11): folding a 2-shard run's results into an
// Aggregator one at a time, in stream order and interleaved across shards,
// must produce the byte-identical JSONL that MergeResults over the
// complete shard outputs produces at the end.
func TestAggregatorIncrementalEqualsMergeAtEnd(t *testing.T) {
	c := tinyCampaign(t)

	// Capture each shard's results in stream order via the Result hook.
	shardStreams := make([][]Result, 2)
	for s := 0; s < 2; s++ {
		_, err := Run(c, Options{
			Shard: s, Shards: 2, Workers: 2,
			Result: func(r Result) { shardStreams[s] = append(shardStreams[s], r) },
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	// Merge-at-end artifact.
	merged, err := MergeResults(shardStreams...)
	if err != nil {
		t.Fatal(err)
	}
	var atEnd bytes.Buffer
	if err := WriteJSONL(&atEnd, merged); err != nil {
		t.Fatal(err)
	}

	// Incremental: interleave the two streams in several deterministic
	// patterns (alternating, shard-0-heavy, random but seeded), asserting
	// the aggregate is byte-identical every time.
	interleavings := [][]int{}
	alt := make([]int, 0, len(c.Units))
	for i := 0; i < len(c.Units); i++ {
		alt = append(alt, i%2)
	}
	interleavings = append(interleavings, alt)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 3; trial++ {
		order := make([]int, 0, len(c.Units))
		for i := 0; i < len(c.Units); i++ {
			order = append(order, rng.Intn(2))
		}
		interleavings = append(interleavings, order)
	}
	for trial, order := range interleavings {
		agg := NewAggregator()
		next := []int{0, 0}
		for _, s := range order {
			if next[s] >= len(shardStreams[s]) {
				s = 1 - s // that stream is drained; take from the other
			}
			if next[s] >= len(shardStreams[s]) {
				continue
			}
			if err := agg.Add(shardStreams[s][next[s]]); err != nil {
				t.Fatalf("trial %d: Add: %v", trial, err)
			}
			next[s]++
		}
		// Drain leftovers (interleaving pattern may not cover everything).
		for s := 0; s < 2; s++ {
			for ; next[s] < len(shardStreams[s]); next[s]++ {
				if err := agg.Add(shardStreams[s][next[s]]); err != nil {
					t.Fatalf("trial %d: drain Add: %v", trial, err)
				}
			}
		}
		if agg.Len() != len(c.Units) {
			t.Fatalf("trial %d: aggregated %d units, want %d", trial, agg.Len(), len(c.Units))
		}
		var inc bytes.Buffer
		if err := agg.WriteJSONL(&inc); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(inc.Bytes(), atEnd.Bytes()) {
			t.Errorf("trial %d: incremental merge differs from merge-at-end", trial)
		}
	}
}

func TestAggregatorRejectsBadInput(t *testing.T) {
	tbl := &exp.Table{Title: "t", Columns: []string{"c"}, Rows: [][]string{{"1"}}}
	agg := NewAggregator()
	if err := agg.Add(Result{Unit: "u1", Table: tbl}); err != nil {
		t.Fatal(err)
	}
	if err := agg.Add(Result{Unit: "u1", Table: tbl}); err == nil {
		t.Error("duplicate unit accepted")
	}
	if err := agg.Add(Result{Unit: "", Table: tbl}); err == nil {
		t.Error("empty unit accepted")
	}
	if err := agg.Add(Result{Unit: "u2"}); err == nil {
		t.Error("missing table accepted")
	}
	// Batch atomicity: a batch with one bad result must not half-apply.
	if err := agg.Add(Result{Unit: "u3", Table: tbl}, Result{Unit: "u1", Table: tbl}); err == nil {
		t.Error("batch with duplicate accepted")
	}
	if agg.Len() != 1 {
		t.Errorf("failed batch mutated the aggregate: len=%d, want 1", agg.Len())
	}
}

// TestFleetHooksPreserveParity is the acceptance criterion that results
// stay bit-identical with the event log and heartbeat reporter enabled at
// every worker count: a full fleet-instrumented run (verbose logging, a
// Reporter posting to a live fake controller) must stream the same bytes a
// bare serial run does.
func TestFleetHooksPreserveParity(t *testing.T) {
	c := tinyCampaign(t)

	var baseline bytes.Buffer
	if _, err := Run(c, Options{Workers: 1, Stream: &baseline}); err != nil {
		t.Fatal(err)
	}

	// Fake controller accepting heartbeats and result batches.
	var mu sync.Mutex
	var beats []Heartbeat
	agg := NewAggregator()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/fleet/heartbeat":
			var hb Heartbeat
			if err := json.NewDecoder(r.Body).Decode(&hb); err != nil {
				http.Error(w, err.Error(), 400)
				return
			}
			mu.Lock()
			beats = append(beats, hb)
			mu.Unlock()
		case "/fleet/results":
			var batch ResultBatch
			if err := json.NewDecoder(r.Body).Decode(&batch); err != nil {
				http.Error(w, err.Error(), 400)
				return
			}
			if err := agg.Add(batch.Results...); err != nil {
				http.Error(w, err.Error(), 409)
				return
			}
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()

	// Verbose logging into a buffer for the whole run (exercises the
	// sweep-scope debug path without touching stderr).
	var logBuf bytes.Buffer
	obs.SetLogOutput(&logBuf)
	obs.SetLogLevel(obs.LevelDebug)
	defer func() {
		obs.SetLogOutput(nil)
		obs.SetLogLevel(obs.LevelInfo)
	}()

	for _, workers := range []int{1, 2, 4} {
		rp := NewReporter(srv.URL, c.Name, 0, 1, 0)
		opts := Options{Workers: workers}
		var stream bytes.Buffer
		opts.Stream = &stream
		rp.Hook(&opts, PlannedUnits(c, 0, 1))
		rp.Start()
		_, err := Run(c, opts)
		if cerr := rp.Close(err == nil); cerr != nil {
			t.Fatalf("workers=%d: controller delivery failed: %v", workers, cerr)
		}
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(stream.Bytes(), baseline.Bytes()) {
			t.Errorf("workers=%d: instrumented stream differs from bare serial baseline", workers)
		}
		// Every run re-posts the full campaign; clear between runs so the
		// aggregator's duplicate rejection doesn't fire.
		var aggBytes bytes.Buffer
		if err := agg.WriteJSONL(&aggBytes); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(aggBytes.Bytes(), baseline.Bytes()) {
			t.Errorf("workers=%d: controller aggregate differs from baseline", workers)
		}
		agg = NewAggregator()
	}

	mu.Lock()
	defer mu.Unlock()
	if len(beats) < 3 { // at least one initial + one final per run
		t.Errorf("want heartbeats from every run, got %d", len(beats))
	}
	final := 0
	for _, hb := range beats {
		if hb.Final {
			final++
			if hb.Done != len(c.Units) || hb.Failed != 0 {
				t.Errorf("final heartbeat wrong: %+v (want done=%d)", hb, len(c.Units))
			}
		}
	}
	if final != 3 {
		t.Errorf("want 3 final heartbeats, got %d", final)
	}
}

// TestReporterRetriesUndeliveredResults pins the late-controller story: a
// controller that refuses the first result posts (e.g. still computing
// its initial configuration when the shards launch) must still converge
// on the complete merge, because the reporter queues undelivered batches
// and retries them — at the latest from Close's final flush.
func TestReporterRetriesUndeliveredResults(t *testing.T) {
	c := tinyCampaign(t)

	var baseline bytes.Buffer
	if _, err := Run(c, Options{Workers: 1, Stream: &baseline}); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	refusals := 2
	agg := NewAggregator()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/fleet/results" {
			return // swallow heartbeats
		}
		mu.Lock()
		refuse := refusals > 0
		if refuse {
			refusals--
		}
		mu.Unlock()
		if refuse {
			http.Error(w, "still starting up", http.StatusServiceUnavailable)
			return
		}
		var batch ResultBatch
		if err := json.NewDecoder(r.Body).Decode(&batch); err != nil {
			http.Error(w, err.Error(), 400)
			return
		}
		if err := agg.Add(batch.Results...); err != nil {
			http.Error(w, err.Error(), 409)
			return
		}
	}))
	defer srv.Close()

	rp := NewReporter(srv.URL, c.Name, 0, 1, 0)
	opts := Options{Workers: 2}
	rp.Hook(&opts, PlannedUnits(c, 0, 1))
	rp.Start()
	_, err := Run(c, opts)
	rp.Close(err == nil) // delivery error expected from the refused posts
	if err != nil {
		t.Fatal(err)
	}

	var aggBytes bytes.Buffer
	if err := agg.WriteJSONL(&aggBytes); err != nil {
		t.Fatal(err)
	}
	if agg.Len() != len(c.Units) {
		t.Fatalf("controller merged %d/%d units despite retries", agg.Len(), len(c.Units))
	}
	if !bytes.Equal(aggBytes.Bytes(), baseline.Bytes()) {
		t.Error("controller aggregate differs from baseline after retried delivery")
	}
}

// TestReporterToleratesDeadController pins the advisory contract: a
// reporter pointed at nothing must never fail the sweep.
func TestReporterToleratesDeadController(t *testing.T) {
	c := tinyCampaign(t)
	rp := NewReporter("http://127.0.0.1:1", c.Name, 0, 1, 0)
	opts := Options{Workers: 2}
	rp.Hook(&opts, PlannedUnits(c, 0, 1))
	rp.Start()
	rep, err := Run(c, opts)
	if err != nil {
		t.Fatalf("sweep failed because the controller is dead: %v", err)
	}
	if len(rep.Results) != len(c.Units) {
		t.Fatalf("short run: %d units", len(rep.Results))
	}
	if cerr := rp.Close(true); cerr == nil {
		t.Error("Close should report the delivery error")
	}
}
