package sweep

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The golden corpus is the campaign result set checked into
// testdata/golden: one indented JSON file per unit, named by the unit ID
// with '/' mangled to '__' so IDs stay filesystem-safe. The root
// golden_test.go compares a fresh golden-campaign run against it (exact,
// tol 0) and regenerates it under -update; the CI sweep job does the same
// comparison through `coyote-sweep diff -golden`.

// goldenFile maps a unit ID to its file name inside the golden directory.
func goldenFile(unit string) string {
	return strings.ReplaceAll(unit, "/", "__") + ".json"
}

// goldenUnit inverts goldenFile.
func goldenUnit(name string) string {
	return strings.ReplaceAll(strings.TrimSuffix(name, ".json"), "__", "/")
}

// WriteGolden replaces dir's contents with one JSON file per result. Stale
// files from units no longer in the campaign are removed, so the directory
// always mirrors exactly one campaign run.
func WriteGolden(dir string, results []Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	keep := make(map[string]bool, len(results))
	for _, r := range results {
		keep[goldenFile(r.Unit)] = true
	}
	for _, ent := range entries {
		if !ent.IsDir() && strings.HasSuffix(ent.Name(), ".json") && !keep[ent.Name()] {
			if err := os.Remove(filepath.Join(dir, ent.Name())); err != nil {
				return err
			}
		}
	}
	for _, r := range results {
		data, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(dir, goldenFile(r.Unit))
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// ReadGolden loads every golden file in dir, sorted by unit ID.
func ReadGolden(dir string) ([]Result, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var results []Result
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			return nil, err
		}
		var r Result
		if err := json.Unmarshal(data, &r); err != nil {
			return nil, fmt.Errorf("sweep: golden file %s: %w", ent.Name(), err)
		}
		if want := goldenUnit(ent.Name()); r.Unit != want {
			return nil, fmt.Errorf("sweep: golden file %s records unit %q", ent.Name(), r.Unit)
		}
		results = append(results, r)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Unit < results[j].Unit })
	return results, nil
}
