package sweep

import (
	"bytes"
	"context"
	"testing"

	"github.com/coyote-te/coyote/internal/obs"
)

// TestRunTraced checks the runner's span tree and the determinism contract
// at once: a traced run must stream bytes identical to an untraced run,
// record exactly one sweep.unit span per unit, and give every unit a
// cache_probe and (on a cold cache) a compute child.
func TestRunTraced(t *testing.T) {
	c := tinyCampaign(t)
	cache, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var plain bytes.Buffer
	if _, err := Run(c, Options{Cache: cache, Stream: &plain}); err != nil {
		t.Fatal(err)
	}

	tracer := obs.NewTracer()
	ctx := obs.WithTracer(context.Background(), tracer)
	var traced bytes.Buffer
	rep, err := Run(c, Options{Stream: &traced, Ctx: ctx}) // no cache: every unit computes
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Bytes(), traced.Bytes()) {
		t.Fatal("traced run is not byte-identical to the untraced run")
	}

	units, probes, computes, puts := 0, 0, 0, 0
	unitIDs := make(map[uint64]bool)
	children := make(map[uint64]map[string]int)
	for _, r := range tracer.Records() {
		switch r.Name {
		case "sweep.unit":
			units++
			unitIDs[r.ID] = true
		case "sweep.cache_probe":
			probes++
		case "sweep.compute":
			computes++
		case "sweep.cache_put":
			puts++
		}
		if r.Parent != 0 {
			if children[r.Parent] == nil {
				children[r.Parent] = make(map[string]int)
			}
			children[r.Parent][r.Name]++
		}
	}
	if units != len(c.Units) {
		t.Fatalf("%d sweep.unit spans, want %d", units, len(c.Units))
	}
	if computes != len(c.Units) {
		t.Fatalf("%d sweep.compute spans, want %d (cold run computes everything)", computes, len(c.Units))
	}
	if probes != 0 || puts != 0 {
		t.Fatalf("cache spans without a cache: %d probes, %d puts", probes, puts)
	}
	for id := range unitIDs {
		if children[id]["sweep.compute"] != 1 {
			t.Fatalf("sweep.unit %d has %d compute children, want 1", id, children[id]["sweep.compute"])
		}
	}
	if rep.Misses != len(c.Units) {
		t.Fatalf("cacheless run reported %d misses, want %d", rep.Misses, len(c.Units))
	}

	// With a warm cache every unit's span carries probe + hit, no compute.
	warmTracer := obs.NewTracer()
	warmCtx := obs.WithTracer(context.Background(), warmTracer)
	var warm bytes.Buffer
	if _, err := Run(c, Options{Cache: cache, Stream: &warm, Ctx: warmCtx}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Bytes(), warm.Bytes()) {
		t.Fatal("traced warm run is not byte-identical")
	}
	warmProbes, warmComputes := 0, 0
	for _, r := range warmTracer.Records() {
		switch r.Name {
		case "sweep.cache_probe":
			warmProbes++
		case "sweep.compute":
			warmComputes++
		}
	}
	if warmProbes != len(c.Units) || warmComputes != 0 {
		t.Fatalf("warm run: %d probes, %d computes; want %d probes, 0 computes",
			warmProbes, warmComputes, len(c.Units))
	}
}
