package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/coyote-te/coyote/internal/exp"
	"github.com/coyote-te/coyote/internal/obs"
	"github.com/coyote-te/coyote/internal/par"
)

// Sweep progress metrics (obs.Default, DESIGN.md §10). Units are coarse —
// seconds each — so per-unit counter updates are free; the per-shard
// planned/done gauges give a scraper live campaign progress. The shard
// label is "shard/shards" ("0/1" for an unsharded run), a bounded
// cardinality: one series per process.
var (
	mUnits = obs.Default.NewCounterVec("coyote_sweep_units_total",
		"Sweep units finished, by result (computed, cached, failed).", "result")
	mUnitsPlanned = obs.Default.NewGaugeVec("coyote_sweep_units_planned",
		"Units this shard will execute in the current campaign.", "shard")
	mUnitsDone = obs.Default.NewGaugeVec("coyote_sweep_units_done",
		"Units this shard has completed in the current campaign.", "shard")
	mUnitSeconds = obs.Default.NewHistogramVec("coyote_sweep_unit_seconds",
		"Wall time per completed sweep unit in seconds (cache hits included).",
		obs.ExpBuckets(0.001, 4, 10), // 1ms .. ~4.7h
		"shard")
)

// sweepLog carries the sweep unit lifecycle: campaign start/end at info,
// per-unit completions at debug, failures at error.
var sweepLog = obs.Scope("sweep")

// Options configures one Run.
type Options struct {
	// Cache, when non-nil, is consulted before and updated after every
	// unit — the mechanism behind resume (interrupted campaigns skip
	// finished units) and warm re-runs (unchanged units are instant hits).
	Cache *Cache
	// Fingerprint overrides the code fingerprint in cache keys; empty
	// means Fingerprint().
	Fingerprint string
	// Shard/Shards split the campaign across processes: this run executes
	// exactly the units whose campaign index i satisfies i % Shards ==
	// Shard. Shards ≤ 1 means the whole campaign.
	Shard, Shards int
	// Workers sizes the unit-level par pool (0 = one per CPU). Every
	// unit's table is worker-count-invariant, so this only changes wall
	// time, never bytes.
	Workers int
	// Verify recomputes every cache hit and fails unless the fresh table
	// is byte-identical to the cached one.
	Verify bool
	// Stream, when non-nil, receives each unit's Result as one compact
	// JSON line, flushed in campaign order as units finish (a unit's line
	// is held until every earlier unit of this shard has been written).
	Stream io.Writer
	// Progress, when non-nil, is called serially after each unit
	// completes, in completion order.
	Progress func(UnitStatus)
	// Starting, when non-nil, is called as each unit begins executing, in
	// scheduling order (concurrent-safe on the caller's side is not
	// required: calls are serialized). Fleet reporters use it to label the
	// shard's "current unit" in heartbeats.
	Starting func(unit string)
	// Result, when non-nil, receives each unit's Result in strict campaign
	// order, immediately after (and under the same serialization as) the
	// Stream write — the hook fleet reporters use to forward completed
	// units to a controller as they finish. Like Stream, it observes
	// exactly the bytes-determining Result; it must not mutate the table.
	Result func(Result)
	// Ctx, when it carries an obs.Tracer, records one sweep.unit span per
	// unit with cache-probe/compute/cache-put/verify children (and the
	// full adversarial-loop span tree beneath compute). Tracing never
	// reaches the cache key or the result bytes.
	Ctx context.Context
}

// Result is the deterministic record of one unit: exactly the bytes the
// JSONL stream, the merge protocol, and the golden corpus compare. Runtime
// facts (cache state, elapsed time, keys — which embed the code
// fingerprint) deliberately live elsewhere, in UnitStatus.
type Result struct {
	Unit  string     `json:"unit"`
	Table *exp.Table `json:"table"`
}

// MarshalLine renders the result as its canonical compact JSON line.
func (r Result) MarshalLine() ([]byte, error) {
	if r.Table == nil {
		return nil, fmt.Errorf("sweep: result %s has no table", r.Unit)
	}
	var buf bytes.Buffer
	buf.WriteString(`{"unit":`)
	name, err := json.Marshal(r.Unit)
	if err != nil {
		return nil, err
	}
	buf.Write(name)
	buf.WriteString(`,"table":`)
	if err := r.Table.WriteJSONLine(&buf); err != nil {
		return nil, err
	}
	// WriteJSONLine ends with '\n'; move it outside the object.
	b := buf.Bytes()
	b[len(b)-1] = '}'
	return append(b, '\n'), nil
}

// UnitStatus is the runtime record of one completed unit.
type UnitStatus struct {
	Unit    string        `json:"unit"`
	Key     string        `json:"key"`
	Cached  bool          `json:"cached"`
	Elapsed time.Duration `json:"elapsed_ns"`
}

// Report summarizes one Run over a shard.
type Report struct {
	Campaign string
	// Results holds this shard's units in campaign order.
	Results  []Result
	Statuses []UnitStatus
	Hits     int
	Misses   int
	Elapsed  time.Duration
}

// Run executes the campaign's shard under opts. Units run across the
// internal/par pool; results come back in campaign order regardless of
// scheduling. The first failing unit (by campaign index) aborts the run
// with its error after every in-flight unit finishes — completed units are
// already in the cache, so a re-run resumes instead of recomputing.
func Run(c Campaign, opts Options) (*Report, error) {
	start := time.Now()
	if opts.Shards <= 1 {
		opts.Shard, opts.Shards = 0, 1
	}
	if opts.Shard < 0 || opts.Shard >= opts.Shards {
		return nil, fmt.Errorf("sweep: shard %d/%d out of range", opts.Shard, opts.Shards)
	}
	fp := opts.Fingerprint
	if fp == "" {
		fp = Fingerprint()
	}
	for i := 1; i < len(c.Units); i++ {
		if c.Units[i].ID <= c.Units[i-1].ID {
			return nil, fmt.Errorf("sweep: campaign units not sorted/unique at %q", c.Units[i].ID)
		}
	}

	var mine []int
	for i := range c.Units {
		if i%opts.Shards == opts.Shard {
			mine = append(mine, i)
		}
	}

	shardLabel := fmt.Sprintf("%d/%d", opts.Shard, opts.Shards)
	mUnitsPlanned.With(shardLabel).Set(float64(len(mine)))
	mUnitsDone.With(shardLabel).Set(0)

	runCtx := opts.Ctx
	if runCtx == nil {
		runCtx = context.Background()
	}

	results := make([]Result, len(mine))
	statuses := make([]UnitStatus, len(mine))
	st := &streamer{w: opts.Stream, progress: opts.Progress, result: opts.Result, starting: opts.Starting, results: results, statuses: statuses, done: make([]bool, len(mine)), shard: shardLabel}

	sweepLog.Info("campaign start", "campaign", c.Name, "shard", shardLabel,
		"units", len(mine), "workers", opts.Workers)

	err := par.ForErr(opts.Workers, len(mine), func(i int) error {
		if err := runCtx.Err(); err != nil {
			// Canceled (signal or controller abort): stop scheduling new
			// units; finished units are already cached and streamed, so the
			// campaign resumes from here.
			return fmt.Errorf("sweep: unit %s not started: %w", c.Units[mine[i]].ID, err)
		}
		u := c.Units[mine[i]]
		st.begin(u.ID)
		unitCtx, unitSpan := obs.StartSpan(runCtx, "sweep.unit")
		unitSpan.Attr("unit", u.ID)
		defer unitSpan.End()
		key, err := u.Key(c.Cfg, fp)
		if err != nil {
			mUnits.With("failed").Inc()
			return fmt.Errorf("sweep: unit %s: %w", u.ID, err)
		}
		unitStart := time.Now()
		var table *exp.Table
		cached := false
		if opts.Cache != nil {
			_, probeSpan := obs.StartSpan(unitCtx, "sweep.cache_probe")
			entry, hit, err := opts.Cache.Get(key)
			probeSpan.Attr("hit", hit).End()
			if err != nil {
				mUnits.With("failed").Inc()
				return err
			}
			if hit {
				if entry.Unit != u.ID {
					mUnits.With("failed").Inc()
					return fmt.Errorf("sweep: cache entry %s belongs to unit %s, wanted %s (key collision?)", key, entry.Unit, u.ID)
				}
				table, cached = entry.Table, true
				if opts.Verify {
					_, verifySpan := obs.StartSpan(unitCtx, "sweep.verify")
					err := verifyHit(u, c.Cfg, entry)
					verifySpan.End()
					if err != nil {
						mUnits.With("failed").Inc()
						return err
					}
				}
			}
		}
		if table == nil {
			computeCtx, computeSpan := obs.StartSpan(unitCtx, "sweep.compute")
			runCfg := c.Cfg
			runCfg.Ctx = computeCtx
			table, err = u.Run(runCfg)
			computeSpan.End()
			if err != nil {
				mUnits.With("failed").Inc()
				return fmt.Errorf("sweep: unit %s: %w", u.ID, err)
			}
			if opts.Cache != nil {
				_, putSpan := obs.StartSpan(unitCtx, "sweep.cache_put")
				err := opts.Cache.Put(&Entry{
					Key:         key,
					Unit:        u.ID,
					Table:       table,
					CreatedUnix: time.Now().Unix(),
					ElapsedMS:   time.Since(unitStart).Milliseconds(),
				})
				putSpan.End()
				if err != nil {
					mUnits.With("failed").Inc()
					return err
				}
			}
		}
		unitSpan.Attr("cached", cached)
		return st.complete(i, Result{Unit: u.ID, Table: table}, UnitStatus{
			Unit:    u.ID,
			Key:     key,
			Cached:  cached,
			Elapsed: time.Since(unitStart),
		})
	})
	if err != nil {
		sweepLog.Error("campaign failed", "campaign", c.Name, "shard", shardLabel,
			"elapsed", time.Since(start), "err", err)
		return nil, err
	}

	rep := &Report{
		Campaign: c.Name,
		Results:  results,
		Statuses: statuses,
		Elapsed:  time.Since(start),
	}
	for _, s := range statuses {
		if s.Cached {
			rep.Hits++
		} else {
			rep.Misses++
		}
	}
	sweepLog.Info("campaign done", "campaign", c.Name, "shard", shardLabel,
		"units", len(rep.Results), "hits", rep.Hits, "misses", rep.Misses,
		"elapsed", rep.Elapsed)
	return rep, nil
}

// verifyHit recomputes a cache hit and demands bit-identical bytes — the
// proof that cached and fresh results are interchangeable.
func verifyHit(u Unit, cfg exp.Config, entry *Entry) error {
	fresh, err := u.Run(cfg)
	if err != nil {
		return fmt.Errorf("sweep: verify %s: %w", u.ID, err)
	}
	want, err := Result{Unit: u.ID, Table: entry.Table}.MarshalLine()
	if err != nil {
		return err
	}
	got, err := Result{Unit: u.ID, Table: fresh}.MarshalLine()
	if err != nil {
		return err
	}
	if !bytes.Equal(want, got) {
		return fmt.Errorf("sweep: verify %s: cached result differs from fresh recomputation\ncached: %sfresh:  %s", u.ID, want, got)
	}
	return nil
}

// streamer serializes completion handling: it stores each unit's result in
// its slot and flushes the JSONL stream strictly in campaign order, holding
// back finished units until their predecessors are written.
type streamer struct {
	w        io.Writer
	progress func(UnitStatus)
	result   func(Result)
	starting func(unit string)
	shard    string // "shard/shards" metric label of this run

	mu       sync.Mutex
	results  []Result
	statuses []UnitStatus
	done     []bool
	next     int // first index not yet flushed
}

func (s *streamer) begin(unit string) {
	if s.starting == nil {
		return
	}
	s.mu.Lock()
	s.starting(unit)
	s.mu.Unlock()
}

func (s *streamer) complete(i int, r Result, us UnitStatus) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.results[i] = r
	s.statuses[i] = us
	s.done[i] = true
	if us.Cached {
		mUnits.With("cached").Inc()
	} else {
		mUnits.With("computed").Inc()
	}
	mUnitsDone.With(s.shard).Add(1)
	mUnitSeconds.With(s.shard).Observe(us.Elapsed.Seconds())
	sweepLog.Debug("unit done", "unit", us.Unit, "shard", s.shard,
		"cached", us.Cached, "elapsed", us.Elapsed)
	if s.progress != nil {
		s.progress(us)
	}
	for s.next < len(s.done) && s.done[s.next] {
		if s.w != nil {
			line, err := s.results[s.next].MarshalLine()
			if err != nil {
				return err
			}
			if _, err := s.w.Write(line); err != nil {
				return err
			}
		}
		if s.result != nil {
			s.result(s.results[s.next])
		}
		s.next++
	}
	return nil
}
