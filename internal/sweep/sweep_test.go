package sweep

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/coyote-te/coyote/internal/exp"
)

// tinyConfig is deliberately cheaper than exp.Quick so the harness's own
// machinery can be exercised many times per test run.
func tinyConfig() exp.Config {
	return exp.Config{
		Margins:  []float64{1, 2},
		Samples:  2,
		OptIters: 40,
		AdvIters: 1,
		Eps:      0.25,
		Seed:     1,
	}
}

// tinyCampaign covers every unit kind with the cheapest member of each.
func tinyCampaign(t *testing.T) Campaign {
	t.Helper()
	units := Experiments("negative-np", "negative-path", "running")
	corpus, err := Corpus([]string{"Gambia"}, []string{"gravity"})
	if err != nil {
		t.Fatal(err)
	}
	units = append(units, corpus...)
	suite, err := Scenarios(1, "ring-12-flash")
	if err != nil {
		t.Fatal(err)
	}
	units = append(units, suite...)
	c, err := finalize("tiny", tinyConfig(), units)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCampaignsEnumerateDeterministically(t *testing.T) {
	for _, name := range []string{"golden", "quick"} {
		a, err := Named(name, "")
		if err != nil {
			t.Fatal(err)
		}
		b, err := Named(name, "")
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Units) == 0 {
			t.Fatalf("%s: empty campaign", name)
		}
		if len(a.Units) != len(b.Units) {
			t.Fatalf("%s: %d units vs %d units", name, len(a.Units), len(b.Units))
		}
		for i := range a.Units {
			if a.Units[i].ID != b.Units[i].ID {
				t.Fatalf("%s: unit %d ID %q vs %q", name, i, a.Units[i].ID, b.Units[i].ID)
			}
			if !bytes.Equal(a.Units[i].Topo, b.Units[i].Topo) {
				t.Fatalf("%s: unit %s topology bytes differ between enumerations", name, a.Units[i].ID)
			}
			if i > 0 && a.Units[i].ID <= a.Units[i-1].ID {
				t.Fatalf("%s: units not sorted/unique at %q", name, a.Units[i].ID)
			}
		}
	}
	if _, err := Named("bogus", ""); err == nil {
		t.Fatal("unknown campaign name accepted")
	}
}

// TestKeyDiscriminates pins the cache-key semantics: every coordinate of
// (topology bytes, unit identity, config, fingerprint) must change the
// key, and equal inputs must reproduce it.
func TestKeyDiscriminates(t *testing.T) {
	base := Unit{ID: "corpus/X/gravity", Kind: "corpus", Topo: []byte("node a\nnode b\nlink a b 1 1\n"), Model: "gravity"}
	cfg := tinyConfig()
	k0, err := base.Key(cfg, "fp")
	if err != nil {
		t.Fatal(err)
	}
	if k1, _ := base.Key(cfg, "fp"); k1 != k0 {
		t.Fatal("key not reproducible for identical inputs")
	}
	mutations := map[string]func() (string, error){
		"topology bytes": func() (string, error) {
			u := base
			u.Topo = []byte("node a\nnode b\nlink a b 2 1\n")
			return u.Key(cfg, "fp")
		},
		"unit ID": func() (string, error) {
			u := base
			u.ID = "corpus/Y/gravity"
			return u.Key(cfg, "fp")
		},
		"model": func() (string, error) {
			u := base
			u.Model = "hotspot"
			return u.Key(cfg, "fp")
		},
		"config": func() (string, error) {
			c := cfg
			c.OptIters++
			return base.Key(c, "fp")
		},
		"seed": func() (string, error) {
			c := cfg
			c.Seed++
			return base.Key(c, "fp")
		},
		"fingerprint": func() (string, error) {
			return base.Key(cfg, "fp2")
		},
	}
	for name, mutate := range mutations {
		k, err := mutate()
		if err != nil {
			t.Fatal(err)
		}
		if k == k0 {
			t.Errorf("changing %s did not change the cache key", name)
		}
	}
	// Framing: moving a byte across a field boundary must not collide.
	a := Unit{ID: "ab", Kind: "exp", Exp: "c"}
	b := Unit{ID: "a", Kind: "exp", Exp: "bc"}
	ka, _ := a.Key(cfg, "fp")
	kb, _ := b.Key(cfg, "fp")
	if ka == kb {
		t.Error("field framing collision: ab/c and a/bc share a key")
	}
}

func TestCacheRoundTrip(t *testing.T) {
	cache, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := &Entry{
		Key:         strings.Repeat("ab", 32),
		Unit:        "exp/running",
		Table:       &exp.Table{Title: "t", Columns: []string{"a"}, Rows: [][]string{{"1"}}},
		CreatedUnix: 123,
		ElapsedMS:   7,
	}
	if _, hit, err := cache.Get(e.Key); err != nil || hit {
		t.Fatalf("Get on empty cache: hit=%v err=%v", hit, err)
	}
	if cache.Has(e.Key) {
		t.Fatal("Has on empty cache")
	}
	if err := cache.Put(e); err != nil {
		t.Fatal(err)
	}
	if !cache.Has(e.Key) {
		t.Fatal("Has after Put = false")
	}
	got, hit, err := cache.Get(e.Key)
	if err != nil || !hit {
		t.Fatalf("Get after Put: hit=%v err=%v", hit, err)
	}
	if got.Unit != e.Unit || got.Table.Title != "t" || got.CreatedUnix != 123 {
		t.Fatalf("round trip mangled entry: %+v", got)
	}
	if n, err := cache.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v", n, err)
	}
	// A corrupt entry must be an error, never a silent miss.
	path := filepath.Join(cache.Dir(), e.Key[:2], e.Key+".json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cache.Get(e.Key); err == nil {
		t.Fatal("corrupt cache entry read back without error")
	}
	// Valid JSON with a null table is equally corrupt: serving it as a hit
	// would silently recompute while reporting a cache hit.
	null := `{"key":"` + e.Key + `","unit":"exp/running","table":null}`
	if err := os.WriteFile(path, []byte(null), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cache.Get(e.Key); err == nil {
		t.Fatal("null-table cache entry read back without error")
	}
}

// TestRunCachedBitIdenticalAndFaster is the harness's core acceptance
// check in miniature: a warm re-run must be all cache hits, byte-identical
// to the fresh run, and at least 10× faster.
func TestRunCachedBitIdenticalAndFaster(t *testing.T) {
	c := tinyCampaign(t)
	cache, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var fresh bytes.Buffer
	repFresh, err := Run(c, Options{Cache: cache, Stream: &fresh})
	if err != nil {
		t.Fatal(err)
	}
	if repFresh.Hits != 0 || repFresh.Misses != len(c.Units) {
		t.Fatalf("fresh run: %d hits, %d misses", repFresh.Hits, repFresh.Misses)
	}
	var warm bytes.Buffer
	repWarm, err := Run(c, Options{Cache: cache, Stream: &warm})
	if err != nil {
		t.Fatal(err)
	}
	if repWarm.Hits != len(c.Units) || repWarm.Misses != 0 {
		t.Fatalf("warm run: %d hits, %d misses", repWarm.Hits, repWarm.Misses)
	}
	if !bytes.Equal(fresh.Bytes(), warm.Bytes()) {
		t.Fatal("cached re-run is not byte-identical to the fresh run")
	}
	if repWarm.Elapsed*10 > repFresh.Elapsed {
		t.Errorf("cached run not ≥10× faster: fresh %v, cached %v", repFresh.Elapsed, repWarm.Elapsed)
	}
	// Verify mode recomputes hits and must agree.
	if _, err := Run(c, Options{Cache: cache, Verify: true}); err != nil {
		t.Fatalf("verify over valid cache: %v", err)
	}
}

// TestResumeSkipsFinishedUnits simulates an interrupted campaign: half the
// units are already cached (a prior shard run), and the follow-up full run
// must recompute exactly the other half.
func TestResumeSkipsFinishedUnits(t *testing.T) {
	c := tinyCampaign(t)
	cache, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rep0, err := Run(c, Options{Cache: cache, Shard: 0, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	done := make(map[string]bool)
	for _, s := range rep0.Statuses {
		done[s.Unit] = true
	}
	rep, err := Run(c, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Hits != len(rep0.Statuses) || rep.Misses != len(c.Units)-len(rep0.Statuses) {
		t.Fatalf("resume: %d hits %d misses, want %d hits %d misses",
			rep.Hits, rep.Misses, len(rep0.Statuses), len(c.Units)-len(rep0.Statuses))
	}
	for _, s := range rep.Statuses {
		if s.Cached != done[s.Unit] {
			t.Errorf("unit %s: cached=%v, want %v", s.Unit, s.Cached, done[s.Unit])
		}
	}
}

// TestVerifyCatchesTamperedCache pins the bit-identical guarantee from the
// other side: corrupt a cached number and Verify must refuse it.
func TestVerifyCatchesTamperedCache(t *testing.T) {
	units := Experiments("running")
	c, err := finalize("tamper", tinyConfig(), units)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(c, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	key := rep.Statuses[0].Key
	entry, hit, err := cache.Get(key)
	if err != nil || !hit {
		t.Fatalf("cached entry missing: %v", err)
	}
	entry.Table.Rows[0][0] = "drifted"
	if err := cache.Put(entry); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(c, Options{Cache: cache, Verify: true}); err == nil {
		t.Fatal("Verify accepted a tampered cache entry")
	}
	// Without Verify the tampered entry is served as-is (that is the
	// documented trade: Verify is the audit mode).
	if _, err := Run(c, Options{Cache: cache}); err != nil {
		t.Fatalf("non-verify run: %v", err)
	}
}

func TestStreamFlushesInCampaignOrder(t *testing.T) {
	c := tinyCampaign(t)
	var serial bytes.Buffer
	repSerial, err := Run(c, Options{Workers: 1, Stream: &serial})
	if err != nil {
		t.Fatal(err)
	}
	var parallel bytes.Buffer
	if _, err := Run(c, Options{Workers: 4, Stream: &parallel}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Fatal("streamed JSONL differs between 1 and 4 workers")
	}
	// The stream is the canonical WriteJSONL encoding of the results.
	var whole bytes.Buffer
	if err := WriteJSONL(&whole, repSerial.Results); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.Bytes(), whole.Bytes()) {
		t.Fatal("streamed JSONL differs from WriteJSONL of the report")
	}
	// And it round-trips.
	back, err := ReadJSONL(bytes.NewReader(serial.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(repSerial.Results) {
		t.Fatalf("round trip lost results: %d vs %d", len(back), len(repSerial.Results))
	}
	for i := range back {
		if back[i].Unit != repSerial.Results[i].Unit {
			t.Fatalf("round trip reordered results at %d", i)
		}
	}
}

func TestRunRejectsBadShardSpec(t *testing.T) {
	c := tinyCampaign(t)
	if _, err := Run(c, Options{Shard: 2, Shards: 2}); err == nil {
		t.Fatal("shard 2/2 accepted")
	}
	if _, err := Run(c, Options{Shard: -1, Shards: 2}); err == nil {
		t.Fatal("shard -1/2 accepted")
	}
}

func TestDiff(t *testing.T) {
	tab := func(cells ...string) *exp.Table {
		return &exp.Table{Title: "t", Columns: []string{"a", "b"}, Rows: [][]string{cells}}
	}
	a := []Result{{Unit: "u1", Table: tab("1.00", "x")}, {Unit: "u2", Table: tab("2.00", "y")}}

	if d := Diff(a, a, 0); len(d) != 0 {
		t.Fatalf("self-diff drifts: %v", d)
	}
	b := []Result{{Unit: "u1", Table: tab("1.01", "x")}, {Unit: "u2", Table: tab("2.00", "y")}}
	if d := Diff(a, b, 0); len(d) != 1 || d[0].Unit != "u1" || !strings.Contains(d[0].Field, "row 0 col 0") {
		t.Fatalf("exact diff = %v", d)
	}
	if d := Diff(a, b, 0.05); len(d) != 0 {
		t.Fatalf("tolerant diff = %v", d)
	}
	// Non-numeric cells never pass on tolerance.
	bStr := []Result{{Unit: "u1", Table: tab("1.00", "z")}, {Unit: "u2", Table: tab("2.00", "y")}}
	if d := Diff(a, bStr, 100); len(d) != 1 {
		t.Fatalf("string drift under tolerance = %v", d)
	}
	// Missing and extra units.
	if d := Diff(a, a[:1], 0); len(d) != 1 || d[0].Field != "missing" {
		t.Fatalf("missing-unit diff = %v", d)
	}
	if d := Diff(a[:1], a, 0); len(d) != 1 || d[0].Field != "extra" {
		t.Fatalf("extra-unit diff = %v", d)
	}
	// Shape changes.
	ragged := []Result{{Unit: "u1", Table: &exp.Table{Title: "t", Columns: []string{"a", "b"}, Rows: [][]string{{"1.00"}}}}, a[1]}
	if d := Diff(a, ragged, 0); len(d) != 1 || !strings.Contains(d[0].Field, "row 0") {
		t.Fatalf("ragged diff = %v", d)
	}
}

func TestGoldenReadWrite(t *testing.T) {
	dir := t.TempDir()
	res := []Result{
		{Unit: "corpus/NSF/gravity", Table: &exp.Table{Title: "n", Columns: []string{"c"}, Rows: [][]string{{"1"}}}},
		{Unit: "exp/running", Table: &exp.Table{Title: "r", Columns: []string{"c"}, Rows: [][]string{{"2"}}}},
	}
	if err := WriteGolden(dir, res); err != nil {
		t.Fatal(err)
	}
	names, _ := os.ReadDir(dir)
	if len(names) != 2 {
		t.Fatalf("golden dir has %d files", len(names))
	}
	for _, f := range names {
		if strings.Contains(f.Name(), "/") {
			t.Fatalf("unsafe golden file name %q", f.Name())
		}
		var r Result
		data, err := os.ReadFile(filepath.Join(dir, f.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(data, &r); err != nil {
			t.Fatalf("golden file %s not valid JSON: %v", f.Name(), err)
		}
	}
	back, err := ReadGolden(dir)
	if err != nil {
		t.Fatal(err)
	}
	if d := Diff(res, back, 0); len(d) != 0 {
		t.Fatalf("golden round trip drifted: %v", d)
	}
	// Rewriting with fewer units removes stale files.
	if err := WriteGolden(dir, res[:1]); err != nil {
		t.Fatal(err)
	}
	back, err = ReadGolden(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Unit != res[0].Unit {
		t.Fatalf("stale golden files not removed: %v", back)
	}
}

func TestMergeRejectsDuplicates(t *testing.T) {
	r := Result{Unit: "u", Table: &exp.Table{}}
	if _, err := MergeResults([]Result{r}, []Result{r}); err == nil {
		t.Fatal("duplicate unit merged silently")
	}
}

func TestFingerprintStable(t *testing.T) {
	a, b := Fingerprint(), Fingerprint()
	if a == "" || a != b {
		t.Fatalf("Fingerprint unstable: %q vs %q", a, b)
	}
}

// TestElapsedRecorded keeps the bookkeeping honest enough for the
// resume-time table: statuses carry wall time and cache entries carry
// their compute cost.
func TestElapsedRecorded(t *testing.T) {
	units := Experiments("running")
	c, err := finalize("t", tinyConfig(), units)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(c, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Statuses[0].Elapsed <= 0 {
		t.Error("fresh unit has no elapsed time")
	}
	if rep.Elapsed <= 0 || rep.Elapsed < rep.Statuses[0].Elapsed {
		t.Errorf("report elapsed %v inconsistent with unit elapsed %v", rep.Elapsed, rep.Statuses[0].Elapsed)
	}
	entry, hit, err := cache.Get(rep.Statuses[0].Key)
	if err != nil || !hit {
		t.Fatal("entry missing after run")
	}
	if entry.CreatedUnix == 0 {
		t.Error("cache entry has no creation time")
	}
	_ = time.Unix(entry.CreatedUnix, 0)
}
