package sweep

import (
	"bytes"
	"testing"
)

// TestShardParity is the cross-process determinism contract in one
// process: a campaign split into n shards for n ∈ {1, 2, 4}, at several
// worker counts, with and without a shared cache, must merge to the
// byte-identical JSONL a serial 1-shard run produces. Run under -race in
// CI, this also vets the runner's concurrency (shared cache directory,
// in-order stream flushing) under the race detector.
func TestShardParity(t *testing.T) {
	c := tinyCampaign(t)

	var baseline bytes.Buffer
	if _, err := Run(c, Options{Workers: 1, Stream: &baseline}); err != nil {
		t.Fatal(err)
	}

	// The informative corners of (shards × workers × cache): parallel
	// workers at one shard, every shard count at least once, and shared
	// caches exercised under worker concurrency.
	cases := []struct {
		shards, workers int
		withCache       bool
	}{
		{shards: 1, workers: 3, withCache: false},
		{shards: 2, workers: 3, withCache: true},
		{shards: 4, workers: 1, withCache: false},
		{shards: 4, workers: 3, withCache: true},
	}
	for _, tc := range cases {
		var cache *Cache
		if tc.withCache {
			var err error
			cache, err = Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
		}
		shardResults := make([][]Result, tc.shards)
		for s := 0; s < tc.shards; s++ {
			rep, err := Run(c, Options{
				Cache:   cache,
				Shard:   s,
				Shards:  tc.shards,
				Workers: tc.workers,
			})
			if err != nil {
				t.Fatalf("shards=%d workers=%d cache=%v shard %d: %v", tc.shards, tc.workers, tc.withCache, s, err)
			}
			shardResults[s] = rep.Results
		}
		merged, err := MergeResults(shardResults...)
		if err != nil {
			t.Fatalf("shards=%d: merge: %v", tc.shards, err)
		}
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, merged); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), baseline.Bytes()) {
			t.Errorf("shards=%d workers=%d cache=%v: merged JSONL differs from serial baseline",
				tc.shards, tc.workers, tc.withCache)
		}
	}
}

// TestShardPartition pins the shard protocol itself: every unit lands in
// exactly one shard, for any shard count.
func TestShardPartition(t *testing.T) {
	c := tinyCampaign(t)
	for _, shards := range []int{2, 3, len(c.Units) + 3} {
		seen := make(map[string]int)
		for s := 0; s < shards; s++ {
			rep, err := Run(c, Options{Shard: s, Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range rep.Results {
				seen[r.Unit]++
			}
		}
		if len(seen) != len(c.Units) {
			t.Fatalf("shards=%d: %d distinct units ran, want %d", shards, len(seen), len(c.Units))
		}
		for unit, n := range seen {
			if n != 1 {
				t.Fatalf("shards=%d: unit %s ran %d times", shards, unit, n)
			}
		}
	}
}
