// Package sweep is the corpus-scale evaluation harness (DESIGN.md §8): it
// turns a full campaign — every registered experiment × every corpus /
// Topology Zoo / SNDlib topology × the generated-scenario suite — into a
// deterministic list of independent work units, runs them across the
// internal/par pool and across processes via a shard i/n protocol, and
// persists every unit's result in a content-addressed on-disk cache keyed
// by (topology bytes, unit identity, configuration, code fingerprint).
//
// The determinism contract extends the repo-wide one: a campaign's unit
// list is a pure function of its inputs, every unit's table is a pure
// function of (unit, Config), and the merged result stream is byte-
// identical for any shard count, worker count, or cache state. That is
// what makes the cache sound (hits are provably the bytes a fresh run
// would produce — Verify mode re-derives and compares them) and what
// makes the golden regression corpus (testdata/golden, the root
// golden_test.go) a tier-1-testable artifact.
package sweep

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/coyote-te/coyote/internal/exp"
	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/scen"
	"github.com/coyote-te/coyote/internal/topo"
)

// Unit is one independent work unit of a campaign. A unit is self-
// contained: it carries everything needed to run it (and to key its cache
// entry) so a shard process needs only the unit list, not the loaders that
// built it.
type Unit struct {
	// ID is the unit's stable identity: "exp/<id>" for registry
	// experiments, "corpus/<topology>/<model>", "scen/<suite entry>", or
	// "file/<base name>/<model>". IDs are unique within a campaign and
	// campaigns keep units sorted by ID, so shard assignment and merged
	// output order are reproducible everywhere.
	ID string
	// Kind is "exp", "corpus", "scen", or "file".
	Kind string
	// Exp is the experiment registry ID (Kind "exp" only).
	Exp string
	// Topo is the canonical text serialization of the unit's topology
	// (sweep kinds only) — both the runnable input and the content-
	// addressed part of the cache key.
	Topo []byte
	// Model is the demand model swept over Topo (sweep kinds only).
	Model string
}

// Run executes the unit under cfg and returns its table.
func (u Unit) Run(cfg exp.Config) (*exp.Table, error) {
	if u.Kind == "exp" {
		return exp.Run(u.Exp, cfg)
	}
	g, err := graph.ReadText(bytes.NewReader(u.Topo))
	if err != nil {
		return nil, fmt.Errorf("sweep: unit %s: bad topology bytes: %w", u.ID, err)
	}
	return exp.SweepGraph(u.ID, g, u.Model, cfg)
}

// Campaign is a named, fully enumerated sweep: a configuration plus the
// sorted unit list it applies to.
type Campaign struct {
	Name  string
	Cfg   exp.Config
	Units []Unit
}

// finalize sorts units by ID and rejects duplicates — the invariant the
// shard protocol and MergeResults rely on.
func finalize(name string, cfg exp.Config, units []Unit) (Campaign, error) {
	sort.Slice(units, func(i, j int) bool { return units[i].ID < units[j].ID })
	for i := 1; i < len(units); i++ {
		if units[i].ID == units[i-1].ID {
			return Campaign{}, fmt.Errorf("sweep: duplicate unit ID %q", units[i].ID)
		}
	}
	return Campaign{Name: name, Cfg: cfg, Units: units}, nil
}

// Experiments enumerates registry-experiment units. With no arguments it
// covers every registered experiment ID.
func Experiments(ids ...string) []Unit {
	if len(ids) == 0 {
		ids = exp.IDs()
	}
	units := make([]Unit, 0, len(ids))
	for _, id := range ids {
		units = append(units, Unit{ID: "exp/" + id, Kind: "exp", Exp: id})
	}
	return units
}

// Corpus enumerates margin-sweep units over built-in corpus topologies ×
// demand models. With nil names it covers the whole corpus.
func Corpus(names, models []string) ([]Unit, error) {
	if len(names) == 0 {
		names = topo.Names()
	}
	if len(models) == 0 {
		models = []string{"gravity"}
	}
	var units []Unit
	for _, name := range names {
		g, err := topo.Load(name)
		if err != nil {
			return nil, err
		}
		text, err := canonical(g)
		if err != nil {
			return nil, err
		}
		for _, model := range models {
			units = append(units, Unit{
				ID:    "corpus/" + name + "/" + model,
				Kind:  "corpus",
				Topo:  text,
				Model: model,
			})
		}
	}
	return units, nil
}

// Scenarios enumerates the generated-scenario suite (scen.StandardSuite)
// as units, materializing each generator's topology so the unit is
// self-contained. Optional names restrict the suite to the listed entries.
func Scenarios(seed int64, names ...string) ([]Unit, error) {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	var units []Unit
	for _, e := range scen.StandardSuite(seed) {
		if len(want) > 0 && !want[e.Name] {
			continue
		}
		g, err := scen.Generate(e.Gen, e.Params)
		if err != nil {
			return nil, fmt.Errorf("sweep: suite entry %s: %w", e.Name, err)
		}
		text, err := canonical(g)
		if err != nil {
			return nil, err
		}
		units = append(units, Unit{
			ID:    "scen/" + e.Name,
			Kind:  "scen",
			Topo:  text,
			Model: e.Model,
		})
	}
	if len(want) > 0 && len(units) != len(want) {
		return nil, fmt.Errorf("sweep: unknown suite entries in %v", names)
	}
	return units, nil
}

// Files enumerates units for every real-format topology file (Topology Zoo
// GraphML, SNDlib native, text) directly under dir, crossed with the given
// demand models. Files are taken in sorted name order; unknown formats are
// errors so a corpus directory cannot silently shrink.
func Files(dir string, models []string) ([]Unit, error) {
	if len(models) == 0 {
		models = []string{"gravity"}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var units []Unit
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		path := filepath.Join(dir, ent.Name())
		g, err := scen.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("sweep: %s: %w", path, err)
		}
		text, err := canonical(g)
		if err != nil {
			return nil, err
		}
		base := strings.TrimSuffix(ent.Name(), filepath.Ext(ent.Name()))
		for _, model := range models {
			units = append(units, Unit{
				ID:    "file/" + base + "/" + model,
				Kind:  "file",
				Topo:  text,
				Model: model,
			})
		}
	}
	return units, nil
}

func canonical(g *graph.Graph) ([]byte, error) {
	var buf bytes.Buffer
	if err := g.WriteText(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// goldenExperiments is the registry subset cheap enough for the golden
// campaign (sub-second each under Quick); the corpus subset below sticks
// to the small backbones for the same reason.
var goldenExperiments = []string{
	"negative-np", "negative-path", "portfolio", "portfolio-failures",
	"running", "scen-grid-day", "scen-srlg", "scen-waxman",
}

var goldenCorpusTopos = []string{"Abilene", "Gambia", "NSF"}

var goldenSuiteEntries = []string{"grid-3x4-uniform", "ring-12-flash", "waxman-16-gravity"}

// Golden is the checked-in regression campaign: the Quick configuration
// over a fast cross-section of every unit kind. Its results live in
// testdata/golden and are pinned by the root golden_test.go; CI re-derives
// them on every push and fails on any numeric drift.
func Golden() (Campaign, error) {
	cfg := exp.Quick()
	units := Experiments(goldenExperiments...)
	corpus, err := Corpus(goldenCorpusTopos, []string{"gravity"})
	if err != nil {
		return Campaign{}, err
	}
	units = append(units, corpus...)
	suite, err := Scenarios(cfg.Seed, goldenSuiteEntries...)
	if err != nil {
		return Campaign{}, err
	}
	units = append(units, suite...)
	return finalize("golden", cfg, units)
}

// Quick is the smoke-scale campaign: every registered experiment, the
// whole corpus under the gravity model, and the full generated suite, all
// under the Quick configuration.
func Quick() (Campaign, error) {
	cfg := exp.Quick()
	units := Experiments()
	corpus, err := Corpus(nil, []string{"gravity"})
	if err != nil {
		return Campaign{}, err
	}
	units = append(units, corpus...)
	suite, err := Scenarios(cfg.Seed)
	if err != nil {
		return Campaign{}, err
	}
	units = append(units, suite...)
	return finalize("quick", cfg, units)
}

// Full is the paper-fidelity campaign: every experiment, the corpus under
// both §VI-B demand models, and the generated suite, under the Default
// configuration. topoDir, when non-empty, adds every real topology file in
// it (Topology Zoo / SNDlib) as file units.
func Full(topoDir string) (Campaign, error) {
	cfg := exp.Default()
	units := Experiments()
	corpus, err := Corpus(nil, []string{"gravity", "bimodal"})
	if err != nil {
		return Campaign{}, err
	}
	units = append(units, corpus...)
	suite, err := Scenarios(cfg.Seed)
	if err != nil {
		return Campaign{}, err
	}
	units = append(units, suite...)
	if topoDir != "" {
		files, err := Files(topoDir, []string{"gravity"})
		if err != nil {
			return Campaign{}, err
		}
		units = append(units, files...)
	}
	return finalize("full", cfg, units)
}

// Portfolio is the TE-strategy head-to-head campaign: the portfolio
// experiments (strategy × topology × demand regime × failure suite, every
// cell normalized by the OPT oracle) under the Quick configuration.
func Portfolio() (Campaign, error) {
	return finalize("portfolio", exp.Quick(), Experiments("portfolio", "portfolio-failures"))
}

// Named resolves a campaign by name ("golden", "quick", "full",
// "portfolio"); topoDir feeds the full campaign's file units.
func Named(name, topoDir string) (Campaign, error) {
	switch name {
	case "golden":
		return Golden()
	case "quick":
		return Quick()
	case "full":
		return Full(topoDir)
	case "portfolio":
		return Portfolio()
	default:
		return Campaign{}, fmt.Errorf("sweep: unknown campaign %q (golden, quick, full, portfolio)", name)
	}
}
