package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"github.com/coyote-te/coyote/internal/obs"
)

// The fleet progress protocol (DESIGN.md §11). A sharded campaign is a set
// of `coyote-sweep -shard i/n` workers plus one controller (coyote-serve).
// Each worker POSTs two kinds of JSON messages:
//
//   - Heartbeat → POST /fleet/heartbeat: shard identity, unit counters
//     (planned/done/cached/failed), the unit currently executing, and a
//     few registry snapshot deltas — sent every interval and once more,
//     with Final set, when the shard exits.
//   - ResultBatch → POST /fleet/results: completed unit Results, in
//     campaign order, as they stream off the shard's runner.
//
// The controller folds batches into an Aggregator — MergeResults applied
// incrementally — so the merged campaign artifact exists the moment the
// last unit lands, byte-identical to a merge-at-end of the shard files
// (fleet_test.go proves the invariant). Delivery is strictly advisory:
// failure to reach the controller never fails the sweep (undelivered
// result batches are retried on later heartbeat ticks), and nothing the
// controller returns feeds back into unit execution, so results stay
// bit-identical with the fleet plane on or off.

// Heartbeat is one worker progress report.
type Heartbeat struct {
	Campaign string `json:"campaign"`
	Shard    int    `json:"shard"`
	Shards   int    `json:"shards"`
	Planned  int    `json:"planned"`
	Done     int    `json:"done"`
	Cached   int    `json:"cached"`
	Failed   int    `json:"failed"`
	// Current is the unit most recently started and not yet finished
	// (empty between units and after the run).
	Current string `json:"current,omitempty"`
	// UnitP50 estimates the shard's median unit wall time (seconds) from
	// its local coyote_sweep_unit_seconds histogram — the controller's
	// fallback ETA basis before a rate is observable.
	UnitP50 float64 `json:"unit_p50_seconds,omitempty"`
	// Elapsed is seconds since the shard's run started.
	Elapsed float64 `json:"elapsed_seconds"`
	// Final marks the shard's last heartbeat (run finished or aborted).
	Final bool `json:"final,omitempty"`
	// Counters carries registry snapshot deltas worth surfacing fleet-wide
	// (LP solves, simplex iterations, ...): family name → total since the
	// shard process started.
	Counters map[string]float64 `json:"counters,omitempty"`
}

// ResultBatch is a set of completed unit results from one shard.
type ResultBatch struct {
	Campaign string   `json:"campaign"`
	Shard    int      `json:"shard"`
	Results  []Result `json:"results"`
}

// Aggregator is MergeResults applied incrementally: Add folds in completed
// units as they stream off the shards, maintaining the canonical campaign
// order (sorted by unit ID) and rejecting duplicates, so at any instant
// Results() equals MergeResults over everything added so far — and after
// the last unit, byte-for-byte the merge-at-end artifact.
type Aggregator struct {
	mu      sync.Mutex
	results []Result
	seen    map[string]bool
}

// NewAggregator returns an empty aggregator.
func NewAggregator() *Aggregator {
	return &Aggregator{seen: make(map[string]bool)}
}

// Add folds results in. A duplicate unit, an empty unit ID, or a missing
// table rejects the whole call without mutating the aggregate (batches are
// atomic: re-POSTing a failed batch cannot half-apply).
func (a *Aggregator) Add(results ...Result) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, r := range results {
		if r.Unit == "" || r.Table == nil {
			return fmt.Errorf("sweep: aggregate: result missing unit or table")
		}
		if a.seen[r.Unit] {
			return fmt.Errorf("sweep: aggregate: unit %q already merged", r.Unit)
		}
	}
	for _, r := range results {
		a.seen[r.Unit] = true
		i := sort.Search(len(a.results), func(i int) bool { return a.results[i].Unit >= r.Unit })
		a.results = append(a.results, Result{})
		copy(a.results[i+1:], a.results[i:])
		a.results[i] = r
	}
	return nil
}

// Len returns the number of units merged so far.
func (a *Aggregator) Len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.results)
}

// Results returns a copy of the merged results in canonical campaign
// order.
func (a *Aggregator) Results() []Result {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Result(nil), a.results...)
}

// WriteJSONL writes the current aggregate as the canonical JSONL stream —
// the same bytes WriteJSONL(MergeResults(shard files...)) would produce.
func (a *Aggregator) WriteJSONL(w io.Writer) error {
	return WriteJSONL(w, a.Results())
}

// counterFamilies are the registry families a Reporter samples into
// Heartbeat.Counters — the fleet-wide work indicators.
var counterFamilies = []string{
	"coyote_lp_solves_total",
	"coyote_lp_iterations_total",
	"coyote_sweep_units_total",
}

// Reporter is the worker-side fleet client: it hooks a Run's Options, POSTs
// heartbeats on a ticker, and forwards each completed Result to the
// controller as it streams. All delivery is advisory — a dead controller
// costs log lines, never the campaign. Results the controller could not be
// reached for are queued and retried on later ticks (and once more at
// Close), so a controller that comes up mid-campaign still converges on
// the complete merge; only a controller that stays down loses them.
type Reporter struct {
	controller string // base URL, e.g. http://host:8080
	campaign   string
	shard      int
	shards     int
	interval   time.Duration
	client     *http.Client
	log        *obs.Logger
	start      time.Time

	mu      sync.Mutex
	planned int
	done    int
	cached  int
	failed  int
	current string
	lastErr error
	pending []Result // results not yet accepted by the controller

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewReporter builds a reporter for one shard of a campaign against the
// controller base URL ("http://host:port"). Call Hook to attach it to the
// run's Options, Start to begin heartbeating, and Close when the run ends.
func NewReporter(controller, campaign string, shard, shards int, interval time.Duration) *Reporter {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	return &Reporter{
		controller: controller,
		campaign:   campaign,
		shard:      shard,
		shards:     shards,
		interval:   interval,
		client:     &http.Client{Timeout: 10 * time.Second},
		log:        obs.Scope("fleet"),
		start:      time.Now(),
		stop:       make(chan struct{}),
	}
}

// Hook chains the reporter into opts: Starting/Progress/Result wrap any
// callbacks already present. It also records the shard's planned unit
// count for heartbeats.
func (rp *Reporter) Hook(opts *Options, planned int) {
	rp.mu.Lock()
	rp.planned = planned
	rp.mu.Unlock()

	prevStarting := opts.Starting
	opts.Starting = func(unit string) {
		rp.mu.Lock()
		rp.current = unit
		rp.mu.Unlock()
		if prevStarting != nil {
			prevStarting(unit)
		}
	}
	prevProgress := opts.Progress
	opts.Progress = func(us UnitStatus) {
		rp.mu.Lock()
		rp.done++
		if us.Cached {
			rp.cached++
		}
		if rp.current == us.Unit {
			rp.current = ""
		}
		rp.mu.Unlock()
		if prevProgress != nil {
			prevProgress(us)
		}
	}
	prevResult := opts.Result
	opts.Result = func(r Result) {
		rp.flushResults(r)
		if prevResult != nil {
			prevResult(r)
		}
	}
}

// flushResults posts any queued results plus fresh ones as one batch. On a
// transport error or 5xx the batch is re-queued for the next tick; a 4xx
// means the controller rejected the batch (e.g. already merged) and
// retrying cannot help, so it is dropped.
func (rp *Reporter) flushResults(fresh ...Result) {
	rp.mu.Lock()
	batch := append(rp.pending, fresh...)
	rp.pending = nil
	rp.mu.Unlock()
	if len(batch) == 0 {
		return
	}
	status, err := rp.post("/fleet/results", ResultBatch{
		Campaign: rp.campaign, Shard: rp.shard, Results: batch,
	})
	if err != nil && (status == 0 || status >= 500) {
		rp.mu.Lock()
		rp.pending = append(batch, rp.pending...)
		rp.mu.Unlock()
	}
}

// PlannedUnits computes how many units of the campaign fall on one shard
// under the i % shards == shard protocol.
func PlannedUnits(c Campaign, shard, shards int) int {
	if shards <= 1 {
		return len(c.Units)
	}
	n := 0
	for i := range c.Units {
		if i%shards == shard {
			n++
		}
	}
	return n
}

// Start launches the heartbeat ticker.
func (rp *Reporter) Start() {
	rp.wg.Add(1)
	go func() {
		defer rp.wg.Done()
		t := time.NewTicker(rp.interval)
		defer t.Stop()
		rp.beat(false)
		for {
			select {
			case <-t.C:
				rp.flushResults()
				rp.beat(false)
			case <-rp.stop:
				return
			}
		}
	}()
}

// Close stops the ticker, makes a last delivery attempt for any queued
// results, and sends the final heartbeat. ok reports whether the run
// succeeded (a failed run's last heartbeat keeps Failed > 0). It returns
// the last delivery error, if any — advisory, for the exit log.
func (rp *Reporter) Close(ok bool) error {
	close(rp.stop)
	rp.wg.Wait()
	if !ok {
		rp.mu.Lock()
		rp.failed++
		rp.mu.Unlock()
	}
	rp.flushResults()
	rp.beat(true)
	rp.mu.Lock()
	defer rp.mu.Unlock()
	return rp.lastErr
}

func (rp *Reporter) beat(final bool) {
	rp.mu.Lock()
	hb := Heartbeat{
		Campaign: rp.campaign,
		Shard:    rp.shard,
		Shards:   rp.shards,
		Planned:  rp.planned,
		Done:     rp.done,
		Cached:   rp.cached,
		Failed:   rp.failed,
		Current:  rp.current,
		Elapsed:  time.Since(rp.start).Seconds(),
		Final:    final,
	}
	rp.mu.Unlock()
	snap := obs.Default.Snapshot()
	if p50, ok := snap.Quantile("coyote_sweep_unit_seconds", 0.5); ok {
		hb.UnitP50 = p50
	}
	for _, fam := range counterFamilies {
		if v, ok := snap.Total(fam); ok && v > 0 {
			if hb.Counters == nil {
				hb.Counters = make(map[string]float64, len(counterFamilies))
			}
			hb.Counters[fam] = v
		}
	}
	rp.post("/fleet/heartbeat", hb)
}

// post delivers one JSON message. Errors are remembered and logged, never
// surfaced to the sweep path; the returned status (0 on transport
// failure) lets flushResults decide whether a retry can help.
func (rp *Reporter) post(path string, msg any) (status int, err error) {
	body, err := json.Marshal(msg)
	if err == nil {
		var resp *http.Response
		req, rerr := http.NewRequestWithContext(context.Background(), "POST",
			rp.controller+path, bytes.NewReader(body))
		if rerr != nil {
			err = rerr
		} else {
			req.Header.Set("Content-Type", "application/json")
			resp, err = rp.client.Do(req)
		}
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			status = resp.StatusCode
			if resp.StatusCode >= 300 {
				err = fmt.Errorf("POST %s: status %s", path, resp.Status)
			}
		}
	}
	if err != nil {
		rp.mu.Lock()
		first := rp.lastErr == nil
		rp.lastErr = err
		rp.mu.Unlock()
		if first {
			rp.log.Warn("controller delivery failing (advisory; sweep continues)",
				"controller", rp.controller, "err", err)
		}
	}
	return status, err
}
