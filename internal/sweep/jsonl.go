package sweep

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteJSONL writes results as the canonical JSONL stream: one compact
// line per unit, in the order given.
func WriteJSONL(w io.Writer, results []Result) error {
	bw := bufio.NewWriter(w)
	for _, r := range results {
		line, err := r.MarshalLine()
		if err != nil {
			return err
		}
		if _, err := bw.Write(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL result stream.
func ReadJSONL(r io.Reader) ([]Result, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	var out []Result
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var res Result
		if err := json.Unmarshal([]byte(line), &res); err != nil {
			return nil, fmt.Errorf("sweep: jsonl line %d: %w", lineno, err)
		}
		if res.Unit == "" || res.Table == nil {
			return nil, fmt.Errorf("sweep: jsonl line %d: missing unit or table", lineno)
		}
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// MergeResults reunites shard outputs into the canonical campaign order
// (sorted by unit ID — the order a 1-shard run emits), rejecting duplicate
// units. Serializing the merge of any shard partition of a campaign
// therefore yields byte-identical JSONL regardless of the shard count.
func MergeResults(shards ...[]Result) ([]Result, error) {
	var all []Result
	for _, s := range shards {
		all = append(all, s...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Unit < all[j].Unit })
	for i := 1; i < len(all); i++ {
		if all[i].Unit == all[i-1].Unit {
			return nil, fmt.Errorf("sweep: merge: unit %q appears in more than one shard", all[i].Unit)
		}
	}
	return all, nil
}

// Drift is one divergence between two result sets.
type Drift struct {
	Unit  string `json:"unit"`
	Field string `json:"field"` // "missing", "extra", "title", "columns", or "row R col C"
	A     string `json:"a"`
	B     string `json:"b"`
}

func (d Drift) String() string {
	return fmt.Sprintf("%s: %s: %q != %q", d.Unit, d.Field, d.A, d.B)
}

// Diff compares two result sets unit by unit and cell by cell. Numeric
// cells compare within tol (0 demands exactness, the golden-corpus
// policy); everything else compares as strings. The returned drifts are
// sorted by unit then field.
func Diff(a, b []Result, tol float64) []Drift {
	am, bm := index(a), index(b)
	var drifts []Drift
	for unit, ra := range am {
		rb, ok := bm[unit]
		if !ok {
			drifts = append(drifts, Drift{Unit: unit, Field: "missing", A: "present", B: "absent"})
			continue
		}
		drifts = append(drifts, diffTables(unit, ra, rb, tol)...)
	}
	for unit := range bm {
		if _, ok := am[unit]; !ok {
			drifts = append(drifts, Drift{Unit: unit, Field: "extra", A: "absent", B: "present"})
		}
	}
	sort.Slice(drifts, func(i, j int) bool {
		if drifts[i].Unit != drifts[j].Unit {
			return drifts[i].Unit < drifts[j].Unit
		}
		return drifts[i].Field < drifts[j].Field
	})
	return drifts
}

func index(results []Result) map[string]Result {
	m := make(map[string]Result, len(results))
	for _, r := range results {
		m[r.Unit] = r
	}
	return m
}

func diffTables(unit string, a, b Result, tol float64) []Drift {
	var drifts []Drift
	if a.Table.Title != b.Table.Title {
		drifts = append(drifts, Drift{Unit: unit, Field: "title", A: a.Table.Title, B: b.Table.Title})
	}
	if ca, cb := strings.Join(a.Table.Columns, "|"), strings.Join(b.Table.Columns, "|"); ca != cb {
		drifts = append(drifts, Drift{Unit: unit, Field: "columns", A: ca, B: cb})
	}
	if la, lb := len(a.Table.Rows), len(b.Table.Rows); la != lb {
		drifts = append(drifts, Drift{Unit: unit, Field: "rows", A: strconv.Itoa(la), B: strconv.Itoa(lb)})
		return drifts
	}
	for r := range a.Table.Rows {
		ra, rb := a.Table.Rows[r], b.Table.Rows[r]
		if len(ra) != len(rb) {
			drifts = append(drifts, Drift{
				Unit: unit, Field: fmt.Sprintf("row %d", r),
				A: strconv.Itoa(len(ra)) + " cells", B: strconv.Itoa(len(rb)) + " cells",
			})
			continue
		}
		for col := range ra {
			if cellsEqual(ra[col], rb[col], tol) {
				continue
			}
			drifts = append(drifts, Drift{
				Unit: unit, Field: fmt.Sprintf("row %d col %d", r, col),
				A: ra[col], B: rb[col],
			})
		}
	}
	return drifts
}

func cellsEqual(a, b string, tol float64) bool {
	if a == b {
		return true
	}
	if tol <= 0 {
		return false
	}
	fa, errA := strconv.ParseFloat(a, 64)
	fb, errB := strconv.ParseFloat(b, 64)
	if errA != nil || errB != nil {
		return false
	}
	d := fa - fb
	if d < 0 {
		d = -d
	}
	return d <= tol
}
