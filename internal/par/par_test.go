package par

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(3); got != 3 {
		t.Errorf("Resolve(3) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if got := Resolve(0); got != want {
		t.Errorf("Resolve(0) = %d, want GOMAXPROCS %d", got, want)
	}
	if got := Resolve(-5); got != want {
		t.Errorf("Resolve(-5) = %d, want GOMAXPROCS %d", got, want)
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		for _, n := range []int{0, 1, 2, 5, 100, 1000} {
			counts := make([]int32, n)
			For(workers, n, func(i int) {
				atomic.AddInt32(&counts[i], 1)
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestForInlineOrderWithOneWorker(t *testing.T) {
	var order []int
	For(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("single-worker order = %v, want ascending", order)
		}
	}
}

// TestForDeterministicReduction exercises the determinism contract: leaves
// write index-addressed slots, the caller reduces in index order, and the
// result must be bit-identical for every worker count.
func TestForDeterministicReduction(t *testing.T) {
	n := 500
	reduce := func(workers int) float64 {
		slots := make([]float64, n)
		For(workers, n, func(i int) {
			x := float64(i)
			slots[i] = (x*1.000001 + 0.3) / (x + 7)
		})
		sum := 0.0
		for _, v := range slots {
			sum += v
		}
		return sum
	}
	want := reduce(1)
	for _, w := range []int{2, 3, 8, 33} {
		if got := reduce(w); got != want {
			t.Errorf("workers=%d: sum %v != serial %v", w, got, want)
		}
	}
}

func TestForErr(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		// No failures: every index runs, nil error.
		var ran atomic.Int32
		if err := ForErr(workers, 50, func(i int) error {
			ran.Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
		if ran.Load() != 50 {
			t.Fatalf("workers=%d: ran %d of 50 leaves", workers, ran.Load())
		}
		// Failures at several indices: every leaf still runs, and the
		// reported error is the lowest failing index regardless of
		// scheduling.
		ran.Store(0)
		err := ForErr(workers, 50, func(i int) error {
			ran.Add(1)
			if i == 7 || i == 33 {
				return fmt.Errorf("leaf %d", i)
			}
			return nil
		})
		if ran.Load() != 50 {
			t.Fatalf("workers=%d: failure stopped leaves early (%d of 50)", workers, ran.Load())
		}
		if err == nil || err.Error() != "leaf 7" {
			t.Fatalf("workers=%d: err = %v, want leaf 7", workers, err)
		}
	}
	if err := ForErr(4, 0, func(i int) error { return fmt.Errorf("leaf %d", i) }); err != nil {
		t.Fatalf("n=0: err = %v", err)
	}
}

func TestPoolZeroesOnGet(t *testing.T) {
	p := NewPool(4)
	s := p.Get()
	if len(s) != 4 {
		t.Fatalf("len = %d", len(s))
	}
	for i := range s {
		s[i] = 42
	}
	p.Put(s)
	s2 := p.Get()
	for i, v := range s2 {
		if v != 0 {
			t.Fatalf("reused slice not zeroed at %d: %v", i, v)
		}
	}
}

func TestPoolRejectsWrongLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Put of wrong-length slice should panic")
		}
	}()
	NewPool(4).Put(make([]float64, 3))
}
