// Package par provides the deterministic worker-pool primitives behind the
// concurrent evaluation engine (DESIGN.md §4): a bounded parallel for-loop
// whose results are reproducible for any worker count, and a sync.Pool of
// fixed-length float64 scratch slices for reusing flow buffers across
// workers.
//
// The determinism contract is structural, not accidental: For runs
// independent leaf computations addressed by index, and callers perform any
// floating-point reduction serially in index order after For returns.
// Because no leaf reads another leaf's output and the reduction order is
// fixed, the results are bit-identical whether the loop ran on one
// goroutine or sixteen.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/coyote-te/coyote/internal/obs"
)

// Pool activity metrics (obs.Default, DESIGN.md §10). Counters cost two
// atomic adds per For call — not per leaf — and the queue-wait histogram
// is only touched on the parallel path (one observation per worker per
// loop: the delay between scheduling the loop and the worker pulling its
// first chunk, i.e. goroutine startup + run-queue pressure). None of this
// reads back into the computation, so the determinism contract is
// untouched.
var (
	mLoops = obs.Default.NewCounter("coyote_par_loops_total",
		"Parallel for-loops executed (including inline single-worker runs).")
	mTasks = obs.Default.NewCounter("coyote_par_tasks_total",
		"Loop leaves (work items) executed across all loops.")
	mQueueWait = obs.Default.NewHistogram("coyote_par_queue_wait_seconds",
		"Delay between loop start and each worker grabbing its first chunk.",
		obs.ExpBuckets(1e-6, 4, 10)) // 1µs .. ~0.26s
)

// Resolve maps a Workers configuration value to an effective worker count:
// positive values pass through, anything else means "one worker per
// available CPU" (GOMAXPROCS).
func Resolve(workers int) int {
	if workers > 0 {
		return workers
	}
	return runtime.GOMAXPROCS(0)
}

// effective bounds a resolved worker count by what can actually run in
// parallel: never more workers than leaves, and never more than physical
// CPUs. The second cap is what keeps "workers=4" proportional on a 1-CPU
// machine (or under an inflated GOMAXPROCS): extra goroutines there only
// time-slice the same core and pay spawn/switch overhead for nothing.
// Scheduling-only — the determinism contract makes results identical at
// every worker count, so capping never changes output.
func effective(workers, n int) int {
	if workers > n {
		workers = n
	}
	if c := runtime.NumCPU(); workers > c {
		workers = c
	}
	return workers
}

// For invokes fn(i) exactly once for every i in [0, n), using at most
// effective(Resolve(workers), n) concurrent workers (never more than
// runtime.NumCPU()). Leaves are handed out in contiguous chunks to amortize
// scheduling overhead on fine-grained loops, and the calling goroutine
// participates as one of the workers, so a w-way loop spawns only w−1
// goroutines and a 1-way (or 1-CPU) loop spawns none — fn then runs inline
// on the calling goroutine in index order with zero allocations. That
// proportional-overhead guarantee is what keeps "workers>1" configurations
// from losing to serial runs on small inputs or small machines.
//
// fn must treat distinct indices as independent: write results only into
// the slot for i, never read a sibling's slot, and take any shared scratch
// through a Pool. Under that contract the observable results do not depend
// on the worker count.
func For(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	mLoops.Inc()
	mTasks.Add(uint64(n))
	workers = effective(Resolve(workers), n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	// Chunked work-stealing: each worker grabs a span of indices at a
	// time, so loops with tiny leaf bodies (the optimizer's per-iteration
	// passes) don't pay one atomic op per leaf.
	chunk := n / (workers * 4)
	if chunk < 1 {
		chunk = 1
	}
	spawned := time.Now()
	var next atomic.Int64
	run := func(observeWait bool) {
		first := true
		for {
			start := int(next.Add(int64(chunk))) - chunk
			if start >= n {
				return
			}
			if first {
				if observeWait {
					mQueueWait.ObserveSince(spawned)
				}
				first = false
			}
			end := start + chunk
			if end > n {
				end = n
			}
			for i := start; i < end; i++ {
				fn(i)
			}
		}
	}
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go func() {
			defer wg.Done()
			run(true)
		}()
	}
	run(false) // the caller is worker 0; its queue wait is always ~0
	wg.Wait()
}

// ForErr is For for fallible leaves: fn(i) runs exactly once for every i
// in [0, n) under the same determinism contract, every leaf runs to
// completion even after a failure, and ForErr returns the error of the
// lowest failing index (so the reported error does not depend on worker
// count or scheduling).
func ForErr(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	For(workers, n, func(i int) {
		errs[i] = fn(i)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Pool recycles float64 scratch slices of a fixed length. It exists so the
// evaluator's and optimizer's per-destination flow buffers are reused
// across worker goroutines instead of reallocated per leaf.
type Pool struct {
	size int
	pool sync.Pool
}

// NewPool returns a pool of slices of the given length.
func NewPool(size int) *Pool {
	p := &Pool{size: size}
	p.pool.New = func() any {
		s := make([]float64, size)
		return &s
	}
	return p
}

// Get returns a zeroed slice of the pool's length.
func (p *Pool) Get() []float64 {
	s := *p.pool.Get().(*[]float64)
	for i := range s {
		s[i] = 0
	}
	return s
}

// Put returns a slice obtained from Get to the pool.
func (p *Pool) Put(s []float64) {
	if len(s) != p.size {
		panic("par: returning slice of wrong length to Pool")
	}
	p.pool.Put(&s)
}
