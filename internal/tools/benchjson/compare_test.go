package main

import (
	"strings"
	"testing"
)

func rep(numCPU int, results ...Result) Report {
	return Report{NumCPU: numCPU, Results: results}
}

func TestCompareReportsStatuses(t *testing.T) {
	old := rep(4,
		Result{Benchmark: "BenchmarkCompute", Workers: 1, NsPerOp: 1000},
		Result{Benchmark: "BenchmarkCompute", Workers: 4, NsPerOp: 400},
		Result{Benchmark: "BenchmarkSlaveLP/warm", Workers: 1, NsPerOp: 50},
		Result{Benchmark: "BenchmarkGone", Workers: 1, NsPerOp: 7},
	)
	cur := rep(4,
		Result{Benchmark: "BenchmarkCompute", Workers: 1, NsPerOp: 1800},    // +80% > 50%
		Result{Benchmark: "BenchmarkCompute", Workers: 4, NsPerOp: 440},     // +10% ok
		Result{Benchmark: "BenchmarkSlaveLP/warm", Workers: 1, NsPerOp: 20}, // -60% improved
		Result{Benchmark: "BenchmarkNew", Workers: 1, NsPerOp: 3},
	)
	diffs := compareReports(old, cur, 0.5)
	want := map[string]string{
		"BenchmarkCompute/1":      "REGRESSION",
		"BenchmarkCompute/4":      "ok",
		"BenchmarkSlaveLP/warm/1": "improved",
		"BenchmarkNew/1":          "new",
		"BenchmarkGone/1":         "gone",
	}
	if len(diffs) != len(want) {
		t.Fatalf("got %d diffs, want %d: %+v", len(diffs), len(want), diffs)
	}
	for _, d := range diffs {
		key := d.Benchmark + "/" + string(rune('0'+d.Workers))
		if want[key] != d.Status {
			t.Errorf("%s workers=%d: status %q, want %q", d.Benchmark, d.Workers, d.Status, want[key])
		}
	}
}

func TestCompareReportsSorted(t *testing.T) {
	old := rep(1,
		Result{Benchmark: "B", Workers: 4, NsPerOp: 1},
		Result{Benchmark: "A", Workers: 1, NsPerOp: 1},
	)
	cur := rep(1,
		Result{Benchmark: "B", Workers: 1, NsPerOp: 1},
		Result{Benchmark: "B", Workers: 4, NsPerOp: 1},
		Result{Benchmark: "A", Workers: 1, NsPerOp: 1},
	)
	diffs := compareReports(old, cur, 0.5)
	for i := 1; i < len(diffs); i++ {
		a, b := diffs[i-1], diffs[i]
		if a.Benchmark > b.Benchmark || (a.Benchmark == b.Benchmark && a.Workers > b.Workers) {
			t.Fatalf("diffs not sorted: %+v before %+v", a, b)
		}
	}
}

func TestCompareThresholdBoundary(t *testing.T) {
	old := rep(1, Result{Benchmark: "B", Workers: 1, NsPerOp: 100})
	// Exactly at the threshold is NOT a regression (strictly past it is).
	cur := rep(1, Result{Benchmark: "B", Workers: 1, NsPerOp: 150})
	if d := compareReports(old, cur, 0.5)[0]; d.Status != "ok" {
		t.Errorf("exactly +50%% at threshold 0.5: status %q, want ok", d.Status)
	}
	cur = rep(1, Result{Benchmark: "B", Workers: 1, NsPerOp: 151})
	if d := compareReports(old, cur, 0.5)[0]; d.Status != "REGRESSION" {
		t.Errorf("+51%% at threshold 0.5: status %q, want REGRESSION", d.Status)
	}
}

func TestWriteCompareCPUNote(t *testing.T) {
	old := rep(1, Result{Benchmark: "B", Workers: 1, NsPerOp: 100})
	cur := rep(8, Result{Benchmark: "B", Workers: 1, NsPerOp: 100})
	var sb strings.Builder
	n := writeCompare(&sb, old, cur, compareReports(old, cur, 0.5))
	if n != 0 {
		t.Errorf("regressions = %d, want 0", n)
	}
	if !strings.Contains(sb.String(), "different hosts") {
		t.Errorf("output missing num_cpu mismatch note:\n%s", sb.String())
	}

	sb.Reset()
	same := rep(1, Result{Benchmark: "B", Workers: 1, NsPerOp: 500})
	n = writeCompare(&sb, old, same, compareReports(old, same, 0.5))
	if n != 1 {
		t.Errorf("regressions = %d, want 1", n)
	}
	if strings.Contains(sb.String(), "different hosts") {
		t.Errorf("unexpected host note when num_cpu matches:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "REGRESSION") {
		t.Errorf("output missing REGRESSION row:\n%s", sb.String())
	}
}

func TestWriteTrajectory(t *testing.T) {
	r1 := rep(4, Result{Benchmark: "BenchmarkCompute", Workers: 1, NsPerOp: 1000})
	r2 := rep(4,
		Result{Benchmark: "BenchmarkCompute", Workers: 1, NsPerOp: 900},
		Result{Benchmark: "BenchmarkNew", Workers: 1, NsPerOp: 5},
	)
	var sb strings.Builder
	writeTrajectory(&sb, []string{"PR6.json", "PR7.json"}, []Report{r1, r2})
	out := sb.String()
	for _, want := range []string{"PR6.json", "PR7.json", "BenchmarkCompute", "1000", "900", "BenchmarkNew"} {
		if !strings.Contains(out, want) {
			t.Errorf("trajectory output missing %q:\n%s", want, out)
		}
	}
	// BenchmarkNew is absent from the first report: its PR6 cell is "-".
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "BenchmarkNew") && !strings.Contains(line, "-") {
			t.Errorf("BenchmarkNew row should mark the missing report with '-': %q", line)
		}
	}
}
