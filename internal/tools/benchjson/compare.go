package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"text/tabwriter"
)

// Diff is one benchmark's old-vs-new comparison. Status is "ok",
// "REGRESSION", "improved", "new" (only in the new report), or "gone"
// (only in the old one). Status is driven by ns/op alone; the -benchmem
// columns ride along purely advisorily (nil when a side lacked them).
type Diff struct {
	Benchmark string
	Workers   int
	OldNs     float64
	NewNs     float64
	Delta     float64 // (new-old)/old; 0 for new/gone rows
	Status    string
	OldAllocs *float64
	NewAllocs *float64
	OldBytes  *float64
	NewBytes  *float64
}

// seriesKey identifies a measurement across reports: same benchmark at
// the same worker count.
type seriesKey struct {
	bench   string
	workers int
}

// compareReports diffs two reports benchmark-by-benchmark. threshold is
// the relative ns/op growth past which a slowdown counts as a
// regression (0.5 = 50% slower); improvements past the same threshold
// are labeled "improved". Rows come back sorted by benchmark name then
// worker count so output is stable.
func compareReports(old, cur Report, threshold float64) []Diff {
	oldBy := make(map[seriesKey]Result, len(old.Results))
	for _, r := range old.Results {
		oldBy[seriesKey{r.Benchmark, r.Workers}] = r
	}
	curBy := make(map[seriesKey]Result, len(cur.Results))
	for _, r := range cur.Results {
		curBy[seriesKey{r.Benchmark, r.Workers}] = r
	}

	var diffs []Diff
	for k, nr := range curBy {
		or, ok := oldBy[k]
		if !ok {
			diffs = append(diffs, Diff{Benchmark: k.bench, Workers: k.workers, NewNs: nr.NsPerOp, Status: "new",
				NewAllocs: nr.AllocsPerOp, NewBytes: nr.BytesPerOp})
			continue
		}
		d := Diff{Benchmark: k.bench, Workers: k.workers, OldNs: or.NsPerOp, NewNs: nr.NsPerOp,
			OldAllocs: or.AllocsPerOp, NewAllocs: nr.AllocsPerOp,
			OldBytes: or.BytesPerOp, NewBytes: nr.BytesPerOp}
		if or.NsPerOp > 0 {
			d.Delta = (nr.NsPerOp - or.NsPerOp) / or.NsPerOp
		}
		switch {
		case d.Delta > threshold:
			d.Status = "REGRESSION"
		case d.Delta < -threshold:
			d.Status = "improved"
		default:
			d.Status = "ok"
		}
		diffs = append(diffs, d)
	}
	for k, or := range oldBy {
		if _, ok := curBy[k]; !ok {
			diffs = append(diffs, Diff{Benchmark: k.bench, Workers: k.workers, OldNs: or.NsPerOp, Status: "gone",
				OldAllocs: or.AllocsPerOp, OldBytes: or.BytesPerOp})
		}
	}
	sort.Slice(diffs, func(i, j int) bool {
		if diffs[i].Benchmark != diffs[j].Benchmark {
			return diffs[i].Benchmark < diffs[j].Benchmark
		}
		return diffs[i].Workers < diffs[j].Workers
	})
	return diffs
}

func readReport(path string) (Report, error) {
	var rep Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// writeCompare renders the diff table and returns the regression count.
// The allocs/op columns are advisory context, never a gate: the status
// column remains purely ns/op-driven.
func writeCompare(w io.Writer, old, cur Report, diffs []Diff) int {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\tworkers\told ns/op\tnew ns/op\tdelta\told allocs/op\tnew allocs/op\tstatus")
	regressions := 0
	for _, d := range diffs {
		if d.Status == "REGRESSION" {
			regressions++
		}
		oldNs, newNs, delta := fmtNs(d.OldNs), fmtNs(d.NewNs), "-"
		if d.Status != "new" && d.Status != "gone" {
			delta = fmt.Sprintf("%+.1f%%", 100*d.Delta)
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\t%s\t%s\t%s\n", d.Benchmark, d.Workers, oldNs, newNs, delta,
			fmtAllocs(d.OldAllocs), fmtAllocs(d.NewAllocs), d.Status)
	}
	tw.Flush()
	if old.NumCPU != cur.NumCPU {
		fmt.Fprintf(w, "note: reports measured on different hosts (old num_cpu=%d, new num_cpu=%d); deltas are not like-for-like\n",
			old.NumCPU, cur.NumCPU)
	}
	return regressions
}

func fmtNs(ns float64) string {
	if ns == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f", ns)
}

// fmtAllocs renders an allocs/op cell: "-" when the report lacked
// -benchmem data, the number otherwise (a measured 0 prints as 0).
func fmtAllocs(v *float64) string {
	if v == nil {
		return "-"
	}
	return fmt.Sprintf("%.0f", *v)
}

func compareMain(argv []string) {
	fs := flag.NewFlagSet("benchjson compare", flag.ExitOnError)
	threshold := fs.Float64("threshold", 0.5, "relative ns/op growth that counts as a regression (0.5 = 50% slower)")
	failOnRegression := fs.Bool("fail", false, "exit nonzero when any benchmark regressed (default advisory)")
	fs.Parse(argv)
	if fs.NArg() != 2 {
		fatal(fmt.Errorf("compare wants exactly two report files: OLD.json NEW.json"))
	}
	old, err := readReport(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	cur, err := readReport(fs.Arg(1))
	if err != nil {
		fatal(err)
	}
	diffs := compareReports(old, cur, *threshold)
	regressions := writeCompare(os.Stdout, old, cur, diffs)
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed past %.0f%%\n", regressions, 100**threshold)
		if *failOnRegression {
			os.Exit(1)
		}
	}
}

// trajectoryMain prints one ns/op table across many reports in argument
// order (oldest first), one column per file.
func trajectoryMain(argv []string) {
	fs := flag.NewFlagSet("benchjson trajectory", flag.ExitOnError)
	fs.Parse(argv)
	if fs.NArg() < 1 {
		fatal(fmt.Errorf("trajectory wants one or more report files, oldest first"))
	}
	reps := make([]Report, fs.NArg())
	for i, path := range fs.Args() {
		var err error
		if reps[i], err = readReport(path); err != nil {
			fatal(err)
		}
	}
	writeTrajectory(os.Stdout, fs.Args(), reps)
}

func writeTrajectory(w io.Writer, names []string, reps []Report) {
	// Collect the union of series, keeping first-seen order stable via sort.
	set := make(map[seriesKey]bool)
	for _, rep := range reps {
		for _, r := range rep.Results {
			set[seriesKey{r.Benchmark, r.Workers}] = true
		}
	}
	keys := make([]seriesKey, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].bench != keys[j].bench {
			return keys[i].bench < keys[j].bench
		}
		return keys[i].workers < keys[j].workers
	})

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "benchmark\tworkers")
	for _, n := range names {
		fmt.Fprintf(tw, "\t%s", n)
	}
	fmt.Fprintln(tw)
	for _, k := range keys {
		fmt.Fprintf(tw, "%s\t%d", k.bench, k.workers)
		for _, rep := range reps {
			ns := 0.0
			for _, r := range rep.Results {
				if r.Benchmark == k.bench && r.Workers == k.workers {
					ns = r.NsPerOp
					break
				}
			}
			fmt.Fprintf(tw, "\t%s", fmtNs(ns))
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}
