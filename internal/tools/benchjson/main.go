// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON perf-trajectory file. `make bench` pipes the
// headline benchmark suite through it into BENCH_PR6.json so the repo's
// performance record is diffable across PRs:
//
//	go test -run '^$' -bench 'Benchmark(Compute|WarmRecompute|ColdRecompute|ExactOPT|SlaveLP)' -cpu 1,4 . \
//	    | benchjson -o BENCH_PR6.json
//
// Each result records the benchmark name, the corpus topology it
// computes (when derivable from the name), the worker count (the -cpu
// value, which the benchmarks map one-to-one onto the evaluation
// engine's worker pool), iterations, ns/op, and — when the run used
// `-benchmem` — bytes/op and allocs/op, so the allocation-free hot-path
// guarantees are part of the diffable record. The report also records
// the host's runtime.NumCPU: on a 1-CPU runner a workers=4 measurement is
// pure scheduling overhead, and the recorded CPU count is what makes such
// numbers interpretable after the fact.
//
// Two subcommands consume the files the default mode produces:
//
//	benchjson compare [-threshold 0.5] [-fail] OLD.json NEW.json
//	benchjson trajectory BENCH_PR6.json BENCH_PR7.json ...
//
// compare diffs two reports benchmark-by-benchmark and flags relative
// ns/op regressions past -threshold (0.5 = 50% slower); it exits nonzero
// on regression only with -fail, because CI treats perf as advisory —
// shared runners are too noisy to gate merges on. trajectory prints a
// ns/op table across many reports, oldest to newest, so the repo's perf
// record reads as one table.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark measurement.
type Result struct {
	Benchmark  string  `json:"benchmark"`
	Topology   string  `json:"topology,omitempty"`
	Workers    int     `json:"workers"`
	Iterations int     `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp / AllocsPerOp are the `-benchmem` columns. Pointers so a
	// measured zero — the allocation-free hot paths' whole point — is
	// distinguishable from a run without -benchmem.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics carries any custom b.ReportMetric values on the line
	// (e.g. BenchmarkDualRestart's pivots/op) keyed by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the BENCH_PR6.json shape.
type Report struct {
	GeneratedAt string `json:"generated_at"`
	Goos        string `json:"goos,omitempty"`
	Goarch      string `json:"goarch,omitempty"`
	CPU         string `json:"cpu,omitempty"`
	// NumCPU is the host's runtime.NumCPU at measurement time — the
	// context that makes per-worker-count numbers interpretable.
	NumCPU  int      `json:"num_cpu"`
	Pkg     string   `json:"pkg,omitempty"`
	Results []Result `json:"results"`
}

// benchTopologies maps benchmark base names to the corpus topology they
// measure (see bench_test.go).
var benchTopologies = map[string]string{
	"BenchmarkCompute":               "Geant",
	"BenchmarkComputeNSF":            "NSF",
	"BenchmarkComputeEndToEnd":       "running-example",
	"BenchmarkWarmRecompute":         "Geant",
	"BenchmarkColdRecompute":         "Geant",
	"BenchmarkSessionFailRecover":    "Geant",
	"BenchmarkSPFRepair/incremental": "Geant",
	"BenchmarkSPFRepair/cold":        "Geant",
	"BenchmarkOptimizerStep":         "Geant",
	"BenchmarkExactOPT/sparse":       "BICS",
	"BenchmarkExactOPT/dense":        "BICS",
	"BenchmarkSlaveLP/warm":          "Abilene",
	"BenchmarkSlaveLP/cold":          "Abilene",
	"BenchmarkDualRestart/dual-warm": "NSF",
	"BenchmarkDualRestart/cold":      "NSF",
}

// benchLine tolerates dashes inside sub-benchmark names (dual-warm): the
// name is lazy so a trailing -N is still claimed by the GOMAXPROCS group.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)

// metricPair matches the custom b.ReportMetric values trailing ns/op.
var metricPair = regexp.MustCompile(`([0-9.eE+-]+) ([^\s]+)`)

func main() {
	// Subcommand dispatch: every convert-mode argument is a flag, so a
	// bare first word can only be a subcommand.
	if len(os.Args) > 1 && !strings.HasPrefix(os.Args[1], "-") {
		switch os.Args[1] {
		case "compare":
			compareMain(os.Args[2:])
		case "trajectory":
			trajectoryMain(os.Args[2:])
		default:
			fatal(fmt.Errorf("unknown subcommand %q (want compare or trajectory)", os.Args[1]))
		}
		return
	}

	var out string
	flag.StringVar(&out, "out", "", "write JSON here (default stdout)")
	flag.StringVar(&out, "o", "", "shorthand for -out")
	flag.Parse()

	rep := Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		NumCPU:      runtime.NumCPU(),
	}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		workers := 1
		if m[2] != "" {
			workers, _ = strconv.Atoi(m[2])
		}
		iters, _ := strconv.Atoi(m[3])
		ns, _ := strconv.ParseFloat(m[4], 64)
		var metrics map[string]float64
		var bytesPer, allocsPer *float64
		for _, mm := range metricPair.FindAllStringSubmatch(m[5], -1) {
			v, err := strconv.ParseFloat(mm[1], 64)
			if err != nil {
				continue
			}
			// The -benchmem columns are first-class fields, not Metrics:
			// compare diffs them by name, and a pointer keeps a measured
			// zero distinguishable from "not run with -benchmem".
			switch mm[2] {
			case "B/op":
				w := v
				bytesPer = &w
			case "allocs/op":
				w := v
				allocsPer = &w
			default:
				if metrics == nil {
					metrics = make(map[string]float64)
				}
				metrics[mm[2]] = v
			}
		}
		rep.Results = append(rep.Results, Result{
			Benchmark:   m[1],
			Topology:    benchTopologies[m[1]],
			Workers:     workers,
			Iterations:  iters,
			NsPerOp:     ns,
			BytesPerOp:  bytesPer,
			AllocsPerOp: allocsPer,
			Metrics:     metrics,
		})
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(rep.Results) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin (expected `go test -bench` output)"))
	}

	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
