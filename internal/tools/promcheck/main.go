// Command promcheck scrapes a /metrics endpoint and validates it with the
// strict parser from internal/obs: exposition-format violations (bad
// escaping, duplicate series, histograms whose cumulative buckets decrease
// or lack a +Inf bound) fail loudly, and every histogram family gets an
// explicit _bucket/_sum/_count coherence pass. CI boots coyote-serve,
// points promcheck at it, and requires the families every subsystem is
// expected to export — LP solver, HTTP plane, sweep, fleet controller,
// and event-log counters — a live end-to-end check that the
// observability plane stays both present and well-formed.
//
// Usage:
//
//	promcheck -url http://localhost:8080/metrics \
//	    -warm http://localhost:8080/state \
//	    -require coyote_lp_solves_total,coyote_http_requests_total
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/coyote-te/coyote/internal/obs"
)

func main() {
	var (
		url     = flag.String("url", "http://localhost:8080/metrics", "metrics endpoint to scrape")
		warm    = flag.String("warm", "", "comma-separated URLs to GET before scraping (so HTTP families have samples)")
		require = flag.String("require", "", "comma-separated metric family names that must be present")
		samples = flag.String("require-samples", "", "comma-separated family names that must have at least one sample")
		timeout = flag.Duration("timeout", 30*time.Second, "total time to wait for the endpoint to come up")
		verbose = flag.Bool("v", false, "list every family scraped")
	)
	flag.Parse()

	client := &http.Client{Timeout: 5 * time.Second}
	deadline := time.Now().Add(*timeout)

	for _, w := range splitList(*warm) {
		if err := hitUntil(client, w, deadline); err != nil {
			fatal(fmt.Errorf("warm-up GET %s: %w", w, err))
		}
	}

	resp, err := getUntil(client, *url, deadline)
	if err != nil {
		fatal(fmt.Errorf("GET %s: %w", *url, err))
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("GET %s: status %s", *url, resp.Status))
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		fatal(fmt.Errorf("GET %s: content type %q, want text/plain", *url, ct))
	}

	families, err := obs.ParseProm(resp.Body)
	if err != nil {
		fatal(fmt.Errorf("invalid exposition from %s: %w", *url, err))
	}
	// ParseProm already validates histograms; re-run the coherence check
	// explicitly so the report names it (cumulative buckets monotone,
	// +Inf present, _count == +Inf bucket) and counts what it covered.
	if err := obs.ValidateHistograms(families); err != nil {
		fatal(fmt.Errorf("histogram coherence from %s: %w", *url, err))
	}

	histograms := 0
	byName := make(map[string]obs.ParsedFamily, len(families))
	for _, f := range families {
		byName[f.Name] = f
		if f.Type == "histogram" {
			histograms++
		}
		if *verbose {
			fmt.Printf("%-50s %-9s %d samples\n", f.Name, f.Type, len(f.Samples))
		}
	}

	var missing []string
	for _, name := range splitList(*require) {
		if _, ok := byName[name]; !ok {
			missing = append(missing, name)
		}
	}
	for _, name := range splitList(*samples) {
		f, ok := byName[name]
		if !ok {
			missing = append(missing, name)
		} else if len(f.Samples) == 0 {
			fatal(fmt.Errorf("family %s is exposed but has no samples", name))
		}
	}
	if len(missing) > 0 {
		fatal(fmt.Errorf("missing families: %s", strings.Join(missing, ", ")))
	}
	fmt.Printf("promcheck: %s OK — %d families valid, %d histograms coherent\n", *url, len(families), histograms)
}

// getUntil retries the GET until it succeeds or the deadline passes, so the
// scrape can start while the server is still computing its initial
// configuration.
func getUntil(client *http.Client, url string, deadline time.Time) (*http.Response, error) {
	for {
		resp, err := client.Get(url)
		if err == nil {
			return resp, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(250 * time.Millisecond)
	}
}

func hitUntil(client *http.Client, url string, deadline time.Time) error {
	resp, err := getUntil(client, url, deadline)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "promcheck:", err)
	os.Exit(1)
}
