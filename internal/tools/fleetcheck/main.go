// Command fleetcheck asserts that a coyote-serve fleet controller saw a
// sharded sweep campaign through to the end. CI boots coyote-serve, runs
// the golden campaign as N coyote-sweep shards pointed at it, then runs
// fleetcheck, which polls GET /fleet until every expected shard has
// posted its final heartbeat and verifies:
//
//   - all -shards shards reported, all final, none failed;
//   - the campaign is complete (done == planned, ETA 0);
//   - GET /fleet/results — the controller's *incrementally merged*
//     result stream — is byte-identical to the -merged JSONL file the
//     merge-at-end path produced (the DESIGN.md §11 invariant, checked
//     against a live fleet rather than an in-process test);
//   - optionally snapshots /dashboard and /fleet to files for CI
//     artifact upload.
//
// Usage:
//
//	fleetcheck -url http://localhost:8080 -shards 2 \
//	    -merged merged.jsonl -fleet-out fleet.json -dashboard-out dashboard.html
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"
)

// fleetReport mirrors the wire shape of GET /fleet (internal/serve).
type fleetReport struct {
	Campaign string        `json:"campaign"`
	Shards   int           `json:"shards"`
	Planned  int           `json:"planned"`
	Done     int           `json:"done"`
	Failed   int           `json:"failed"`
	Merged   int           `json:"merged"`
	ETA      float64       `json:"eta_seconds"`
	Complete bool          `json:"complete"`
	Status   []shardStatus `json:"shard_status"`
}

type shardStatus struct {
	Shard  int  `json:"shard"`
	Final  bool `json:"final"`
	Failed int  `json:"failed"`
}

func main() {
	var (
		base         = flag.String("url", "http://localhost:8080", "fleet controller base URL")
		shards       = flag.Int("shards", 2, "number of shards that must report final heartbeats")
		merged       = flag.String("merged", "", "merge-at-end JSONL file that /fleet/results must match byte-for-byte")
		fleetOut     = flag.String("fleet-out", "", "save the final /fleet JSON here (CI artifact)")
		dashboardOut = flag.String("dashboard-out", "", "save /dashboard HTML here (CI artifact)")
		timeout      = flag.Duration("timeout", 60*time.Second, "total time to wait for the campaign to complete")
	)
	flag.Parse()

	client := &http.Client{Timeout: 5 * time.Second}
	deadline := time.Now().Add(*timeout)

	rep, raw, err := awaitComplete(client, *base+"/fleet", *shards, deadline)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("fleetcheck: campaign %q complete — %d/%d units done across %d shards, %d merged\n",
		rep.Campaign, rep.Done, rep.Planned, rep.Shards, rep.Merged)

	if *merged != "" {
		want, err := os.ReadFile(*merged)
		if err != nil {
			fatal(err)
		}
		got, err := get(client, *base+"/fleet/results")
		if err != nil {
			fatal(err)
		}
		if !bytes.Equal(got, want) {
			fatal(fmt.Errorf("incremental merge mismatch: /fleet/results (%d bytes) != %s (%d bytes)",
				len(got), *merged, len(want)))
		}
		fmt.Printf("fleetcheck: /fleet/results byte-identical to %s (%d bytes)\n", *merged, len(want))
	}

	if *fleetOut != "" {
		if err := os.WriteFile(*fleetOut, raw, 0o644); err != nil {
			fatal(err)
		}
	}
	if *dashboardOut != "" {
		html, err := get(client, *base+"/dashboard")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*dashboardOut, html, 0o644); err != nil {
			fatal(err)
		}
	}
}

// awaitComplete polls /fleet until the campaign is complete with every
// shard final, or the deadline passes (reporting the last state seen).
func awaitComplete(client *http.Client, url string, shards int, deadline time.Time) (fleetReport, []byte, error) {
	var lastErr error
	var rep fleetReport
	for {
		raw, err := get(client, url)
		if err == nil {
			err = json.Unmarshal(raw, &rep)
		}
		if err == nil {
			if bad := check(rep, shards); bad == nil {
				return rep, raw, nil
			} else {
				err = bad
			}
		}
		lastErr = err
		if time.Now().After(deadline) {
			return rep, nil, fmt.Errorf("campaign did not complete in time: %w", lastErr)
		}
		time.Sleep(250 * time.Millisecond)
	}
}

func check(rep fleetReport, shards int) error {
	finals := 0
	for _, s := range rep.Status {
		if s.Failed > 0 {
			return fmt.Errorf("shard %d reported %d failed units", s.Shard, s.Failed)
		}
		if s.Final {
			finals++
		}
	}
	switch {
	case rep.Campaign == "":
		return fmt.Errorf("no campaign reported yet")
	case rep.Shards != shards:
		return fmt.Errorf("controller saw %d shards, want %d", rep.Shards, shards)
	case finals != shards:
		return fmt.Errorf("%d/%d shards final", finals, shards)
	case !rep.Complete:
		return fmt.Errorf("campaign not complete: %d/%d done", rep.Done, rep.Planned)
	case rep.Merged != rep.Planned:
		return fmt.Errorf("controller merged %d/%d results", rep.Merged, rep.Planned)
	case rep.ETA != 0:
		return fmt.Errorf("complete campaign reports ETA %v, want 0", rep.ETA)
	}
	return nil
}

func get(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: status %s", url, resp.Status)
	}
	return io.ReadAll(resp.Body)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fleetcheck:", err)
	os.Exit(1)
}
