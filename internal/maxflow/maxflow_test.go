package maxflow

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/coyote-te/coyote/internal/graph"
)

func TestSimplePath(t *testing.T) {
	net := NewNetwork(3)
	net.AddArc(0, 1, 5)
	net.AddArc(1, 2, 3)
	if f := net.MaxFlow(0, 2); math.Abs(f-3) > 1e-9 {
		t.Fatalf("flow = %g, want 3", f)
	}
}

func TestParallelPaths(t *testing.T) {
	net := NewNetwork(4)
	net.AddArc(0, 1, 2)
	net.AddArc(0, 2, 3)
	net.AddArc(1, 3, 4)
	net.AddArc(2, 3, 1)
	if f := net.MaxFlow(0, 3); math.Abs(f-3) > 1e-9 {
		t.Fatalf("flow = %g, want 3", f)
	}
}

func TestClassicCLRS(t *testing.T) {
	// CLRS figure 26.6 instance; max flow 23.
	net := NewNetwork(6)
	net.AddArc(0, 1, 16)
	net.AddArc(0, 2, 13)
	net.AddArc(1, 2, 10)
	net.AddArc(2, 1, 4)
	net.AddArc(1, 3, 12)
	net.AddArc(3, 2, 9)
	net.AddArc(2, 4, 14)
	net.AddArc(4, 3, 7)
	net.AddArc(3, 5, 20)
	net.AddArc(4, 5, 4)
	if f := net.MaxFlow(0, 5); math.Abs(f-23) > 1e-9 {
		t.Fatalf("flow = %g, want 23", f)
	}
}

func TestMinCutMatchesFlow(t *testing.T) {
	net := NewNetwork(4)
	net.AddArc(0, 1, 2)
	net.AddArc(0, 2, 3)
	net.AddArc(1, 3, 4)
	net.AddArc(2, 3, 1)
	v, side := net.MinCut(0, 3)
	if math.Abs(v-3) > 1e-9 {
		t.Fatalf("cut value = %g, want 3", v)
	}
	if !side[0] || side[3] {
		t.Fatalf("cut side wrong: %v", side)
	}
}

// integerGadget builds the paper's INTEGER gadget (Fig. 2) for weight w:
// s1→x1 (2w), s2→x2 (2w), bidirectional x1–x2, x1–m, x2–m each capacity w,
// and m→t capacity 2w. The gadget admits exactly 2w units from either
// source (Theorem 1's proof).
func integerGadget(g *graph.Graph, s1, s2, t graph.NodeID, i int, w float64) {
	x1 := g.AddNode(nodeName("x1", i))
	x2 := g.AddNode(nodeName("x2", i))
	m := g.AddNode(nodeName("m", i))
	g.AddLink(x1, x2, w, 1)
	g.AddLink(x1, m, w, 1)
	g.AddLink(x2, m, w, 1)
	g.AddEdge(s1, x1, 2*w, 1)
	g.AddEdge(s2, x2, 2*w, 1)
	g.AddEdge(m, t, 2*w, 1)
}

func nodeName(prefix string, i int) string {
	return prefix + "_" + string(rune('a'+i))
}

// TestIntegerGadgetMinCut verifies the structural claim in the proof of
// Theorem 1: mincut(s1,t) = mincut(s2,t) = mincut({s1,s2},t) = 2·SUM.
func TestIntegerGadgetMinCut(t *testing.T) {
	weights := []float64{3, 5, 8}
	sum := 0.0
	for _, w := range weights {
		sum += w
	}
	g := graph.New()
	s1 := g.AddNode("s1")
	s2 := g.AddNode("s2")
	tt := g.AddNode("t")
	for i, w := range weights {
		integerGadget(g, s1, s2, tt, i, w)
	}
	if got := MinCutValue(g, []graph.NodeID{s1}, tt); math.Abs(got-2*sum) > 1e-9 {
		t.Fatalf("mincut(s1,t) = %g, want %g", got, 2*sum)
	}
	if got := MinCutValue(g, []graph.NodeID{s2}, tt); math.Abs(got-2*sum) > 1e-9 {
		t.Fatalf("mincut(s2,t) = %g, want %g", got, 2*sum)
	}
	if got := MinCutValue(g, []graph.NodeID{s1, s2}, tt); math.Abs(got-2*sum) > 1e-9 {
		t.Fatalf("mincut({s1,s2},t) = %g, want %g", got, 2*sum)
	}
}

func TestSingleDestMLU(t *testing.T) {
	// Fig. 4 of the paper (Theorem 4): n sources on an infinite-capacity
	// path, each with a unit edge to t. Demand n at x0 can be balanced so
	// every t-edge carries 1 unit: optimal MLU 1.
	n := 5
	g := graph.New()
	xs := make([]graph.NodeID, n)
	for i := 0; i < n; i++ {
		xs[i] = g.AddNode(nodeName("x", i))
	}
	tt := g.AddNode("t")
	for i := 0; i+1 < n; i++ {
		g.AddLink(xs[i], xs[i+1], 1e9, 1)
	}
	for i := 0; i < n; i++ {
		g.AddEdge(xs[i], tt, 1, 1)
	}
	demand := make([]float64, g.NumNodes())
	demand[xs[0]] = float64(n)
	mlu := SingleDestMLU(g, demand, tt)
	if math.Abs(mlu-1) > 1e-6 {
		t.Fatalf("optimal single-dest MLU = %g, want 1", mlu)
	}
}

func TestSingleDestMLUUnreachable(t *testing.T) {
	g := graph.New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	g.AddNode("c") // isolated
	g.AddEdge(a, b, 1, 1)
	demand := make([]float64, 3)
	demand[2] = 1
	if mlu := SingleDestMLU(g, demand, b); !math.IsInf(mlu, 1) {
		t.Fatalf("MLU = %g, want +Inf for unreachable demand", mlu)
	}
}

func TestSingleDestMLUZeroDemand(t *testing.T) {
	g := graph.New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	g.AddEdge(a, b, 1, 1)
	if mlu := SingleDestMLU(g, make([]float64, 2), b); mlu != 0 {
		t.Fatalf("MLU = %g, want 0 for zero demand", mlu)
	}
}

// Property: max-flow value equals min-cut capacity on random graphs.
func TestPropertyMaxFlowMinCut(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(10)
		build := func() *Network {
			net := NewNetwork(n)
			for i := 0; i < 3*n; i++ {
				a, b := rng.Intn(n), rng.Intn(n)
				if a != b {
					net.AddArc(a, b, float64(1+rng.Intn(10)))
				}
			}
			return net
		}
		// Build twice with the same stream by re-seeding.
		rngState := rng.Int63()
		rng1 := rand.New(rand.NewSource(rngState))
		rng2 := rand.New(rand.NewSource(rngState))
		_ = rng1
		_ = rng2
		net := build()
		// Copy of the network for cut-capacity evaluation.
		capOf := make([][]float64, n)
		for i := range capOf {
			capOf[i] = make([]float64, n)
		}
		for u := range net.adj {
			for _, a := range net.adj[u] {
				if a.cap > 0 {
					capOf[u][a.to] += a.cap
				}
			}
		}
		s, t2 := 0, n-1
		v, side := net.MinCut(s, t2)
		cut := 0.0
		for u := 0; u < n; u++ {
			for w := 0; w < n; w++ {
				if side[u] && !side[w] {
					cut += capOf[u][w]
				}
			}
		}
		return math.Abs(v-cut) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: flow is monotone in capacity scaling: doubling all capacities
// doubles the max flow.
func TestPropertyFlowScales(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(8)
		type e struct {
			a, b int
			c    float64
		}
		var edges []e
		for i := 0; i < 3*n; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				edges = append(edges, e{a, b, float64(1 + rng.Intn(10))})
			}
		}
		build := func(scale float64) *Network {
			net := NewNetwork(n)
			for _, ed := range edges {
				net.AddArc(ed.a, ed.b, ed.c*scale)
			}
			return net
		}
		f1 := build(1).MaxFlow(0, n-1)
		f2 := build(2).MaxFlow(0, n-1)
		return math.Abs(f2-2*f1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
