// Package maxflow implements Dinic's maximum-flow algorithm on the network
// model. COYOTE uses it for the min-cut arguments of the paper's Theorem 1
// reduction (the min-cut between the sources and the target of an INTEGER
// gadget instance is 2·SUM), for quick demand-admissibility checks, and for
// single-destination optimal-utilization computations (via capacity scaling
// with a super-source).
package maxflow

import (
	"math"

	"github.com/coyote-te/coyote/internal/graph"
)

// arc is an internal residual edge.
type arc struct {
	to  int
	rev int // index of the reverse arc in net[to]
	cap float64
}

// Network is a residual-flow network built from a graph. Extra nodes (super
// sources/sinks) may be added beyond the graph's own.
type Network struct {
	adj [][]arc
}

// NewNetwork returns an empty flow network with n nodes.
func NewNetwork(n int) *Network {
	return &Network{adj: make([][]arc, n)}
}

// FromGraph builds a flow network mirroring g's directed edges and
// capacities.
func FromGraph(g *graph.Graph) *Network {
	net := NewNetwork(g.NumNodes())
	for _, e := range g.Edges() {
		net.AddArc(int(e.From), int(e.To), e.Capacity)
	}
	return net
}

// AddNode appends a node and returns its index.
func (n *Network) AddNode() int {
	n.adj = append(n.adj, nil)
	return len(n.adj) - 1
}

// AddArc adds a directed arc with the given capacity (and a zero-capacity
// residual reverse arc).
func (n *Network) AddArc(from, to int, capacity float64) {
	n.adj[from] = append(n.adj[from], arc{to: to, rev: len(n.adj[to]), cap: capacity})
	n.adj[to] = append(n.adj[to], arc{to: from, rev: len(n.adj[from]) - 1, cap: 0})
}

const flowEps = 1e-12

// MaxFlow computes the maximum s→t flow value with Dinic's algorithm. The
// network's residual capacities are consumed; build a fresh Network per
// query.
func (n *Network) MaxFlow(s, t int) float64 {
	if s == t {
		return math.Inf(1)
	}
	total := 0.0
	level := make([]int, len(n.adj))
	iter := make([]int, len(n.adj))
	for n.bfs(s, t, level) {
		for i := range iter {
			iter[i] = 0
		}
		for {
			f := n.dfs(s, t, math.Inf(1), level, iter)
			if f <= flowEps {
				break
			}
			total += f
		}
	}
	return total
}

func (n *Network) bfs(s, t int, level []int) bool {
	for i := range level {
		level[i] = -1
	}
	level[s] = 0
	queue := []int{s}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, a := range n.adj[u] {
			if a.cap > flowEps && level[a.to] < 0 {
				level[a.to] = level[u] + 1
				queue = append(queue, a.to)
			}
		}
	}
	return level[t] >= 0
}

func (n *Network) dfs(u, t int, f float64, level, iter []int) float64 {
	if u == t {
		return f
	}
	for ; iter[u] < len(n.adj[u]); iter[u]++ {
		a := &n.adj[u][iter[u]]
		if a.cap > flowEps && level[a.to] == level[u]+1 {
			d := n.dfs(a.to, t, math.Min(f, a.cap), level, iter)
			if d > flowEps {
				a.cap -= d
				n.adj[a.to][a.rev].cap += d
				return d
			}
		}
	}
	return 0
}

// MinCut computes the s→t max-flow and returns its value together with the
// source-side node set of a minimum cut.
func (n *Network) MinCut(s, t int) (float64, []bool) {
	v := n.MaxFlow(s, t)
	side := make([]bool, len(n.adj))
	stack := []int{s}
	side[s] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range n.adj[u] {
			if a.cap > flowEps && !side[a.to] {
				side[a.to] = true
				stack = append(stack, a.to)
			}
		}
	}
	return v, side
}

// MinCutValue computes the min-cut value between node sets in g. Multiple
// sources are merged through a super-source with infinite-capacity arcs.
func MinCutValue(g *graph.Graph, sources []graph.NodeID, sink graph.NodeID) float64 {
	net := FromGraph(g)
	s := net.AddNode()
	for _, src := range sources {
		net.AddArc(s, int(src), math.Inf(1))
	}
	return net.MaxFlow(s, int(sink))
}

// SingleDestMLU computes the optimal (minimum) maximum link utilization for
// routing the given per-source demands toward a single destination t in g:
// the smallest λ such that all demands fit with capacities scaled by λ.
// Because all traffic shares the destination this is a single-commodity
// problem, solved exactly by one max-flow: λ* = (total demand) / (max flow
// with a demand-capped super-source) inverted through bisection on λ.
//
// It returns +Inf if some positive demand has no path to t.
func SingleDestMLU(g *graph.Graph, demand []float64, t graph.NodeID) float64 {
	total := 0.0
	for _, d := range demand {
		total += d
	}
	if total <= 0 {
		return 0
	}
	feasible := func(lambda float64) bool {
		net := NewNetwork(g.NumNodes())
		for _, e := range g.Edges() {
			net.AddArc(int(e.From), int(e.To), e.Capacity*lambda)
		}
		s := net.AddNode()
		for v, d := range demand {
			if d > 0 {
				net.AddArc(s, v, d)
			}
		}
		return net.MaxFlow(s, int(t)) >= total-1e-9*total
	}
	// Exponential search for an upper bound, then bisect.
	hi := 1.0
	for i := 0; i < 60 && !feasible(hi); i++ {
		hi *= 2
	}
	if !feasible(hi) {
		return math.Inf(1)
	}
	lo := 0.0
	for i := 0; i < 50; i++ {
		mid := (lo + hi) / 2
		if feasible(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}
