package demand

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/coyote-te/coyote/internal/graph"
)

func smallGraph() *graph.Graph {
	g := graph.New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	g.AddLink(a, b, 10, 1)
	g.AddLink(b, c, 5, 1)
	g.AddLink(a, c, 2, 1)
	return g
}

func TestMatrixSetAt(t *testing.T) {
	m := NewMatrix(3)
	m.Set(0, 1, 2.5)
	if m.At(0, 1) != 2.5 {
		t.Fatalf("At(0,1) = %g, want 2.5", m.At(0, 1))
	}
	if m.At(1, 0) != 0 {
		t.Fatalf("At(1,0) should be 0")
	}
}

func TestMatrixSetPanics(t *testing.T) {
	m := NewMatrix(3)
	for _, fn := range []func(){
		func() { m.Set(1, 1, 1) },
		func() { m.Set(0, 1, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestTotalAndScale(t *testing.T) {
	m := NewMatrix(3)
	m.Set(0, 1, 1)
	m.Set(1, 2, 2)
	if m.Total() != 3 {
		t.Fatalf("Total = %g, want 3", m.Total())
	}
	m.Scale(2)
	if m.Total() != 6 {
		t.Fatalf("after Scale(2) Total = %g, want 6", m.Total())
	}
}

func TestPairsVisitsPositive(t *testing.T) {
	m := NewMatrix(3)
	m.Set(0, 1, 1)
	m.Set(2, 0, 4)
	count := 0
	m.Pairs(func(s, tt graph.NodeID, d float64) {
		count++
		if d <= 0 {
			t.Error("Pairs visited non-positive entry")
		}
	})
	if count != 2 {
		t.Fatalf("Pairs visited %d entries, want 2", count)
	}
}

func TestToDestination(t *testing.T) {
	m := NewMatrix(3)
	m.Set(0, 2, 5)
	m.Set(1, 2, 7)
	col := m.ToDestination(2)
	if col[0] != 5 || col[1] != 7 || col[2] != 0 {
		t.Fatalf("ToDestination = %v", col)
	}
}

func TestMarginBox(t *testing.T) {
	base := NewMatrix(2)
	base.Set(0, 1, 4)
	box := MarginBox(base, 2)
	if box.Min.At(0, 1) != 2 || box.Max.At(0, 1) != 8 {
		t.Fatalf("MarginBox bounds [%g, %g], want [2, 8]", box.Min.At(0, 1), box.Max.At(0, 1))
	}
	if !box.Contains(base) {
		t.Fatal("box must contain its base")
	}
	outside := base.Clone().Scale(3)
	if box.Contains(outside) {
		t.Fatal("box must not contain 3x base")
	}
}

func TestMarginBoxPanicsBelowOne(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MarginBox(0.5) should panic")
		}
	}()
	MarginBox(NewMatrix(2), 0.5)
}

func TestObliviousBox(t *testing.T) {
	box := ObliviousBox(3, 10)
	if box.Min.Total() != 0 {
		t.Fatal("oblivious box lower bound should be zero")
	}
	// 6 off-diagonal pairs, each capped at 10.
	if box.Max.Total() != 60 {
		t.Fatalf("oblivious box upper total = %g, want 60", box.Max.Total())
	}
}

func TestCorner(t *testing.T) {
	base := NewMatrix(2)
	base.Set(0, 1, 4)
	base.Set(1, 0, 6)
	box := MarginBox(base, 2)
	corner := box.Corner(func(s, tt graph.NodeID) bool { return s == 0 })
	if corner.At(0, 1) != 8 || corner.At(1, 0) != 3 {
		t.Fatalf("corner = [%g, %g], want [8, 3]", corner.At(0, 1), corner.At(1, 0))
	}
	if !box.Contains(corner) {
		t.Fatal("corner must lie in box")
	}
}

func TestSinglePair(t *testing.T) {
	m := SinglePair(4, 1, 3, 9)
	if m.At(1, 3) != 9 || m.Total() != 9 {
		t.Fatalf("SinglePair wrong: %v", m.D)
	}
}

func TestGravityProportionality(t *testing.T) {
	g := smallGraph()
	m := Gravity(g, 1)
	// outCap: a = 12, b = 15, c = 7. The largest product is a↔b = 180 → 1.0.
	if math.Abs(m.At(0, 1)-1) > 1e-12 {
		t.Fatalf("peak entry = %g, want 1", m.At(0, 1))
	}
	// Gravity symmetry: d_ab/d_ac = capB/capC.
	ratio := m.At(0, 1) / m.At(0, 2)
	if math.Abs(ratio-15.0/7.0) > 1e-9 {
		t.Fatalf("gravity ratio = %g, want %g", ratio, 15.0/7.0)
	}
	for s := 0; s < 3; s++ {
		if m.At(graph.NodeID(s), graph.NodeID(s)) != 0 {
			t.Fatal("diagonal must be zero")
		}
	}
}

func TestBimodalShape(t *testing.T) {
	g := smallGraph()
	big := graph.New()
	big.AddNodes(20)
	for i := 0; i < 20; i++ {
		big.AddLink(graph.NodeID(i), graph.NodeID((i+1)%20), 10, 1)
	}
	_ = g
	rng := rand.New(rand.NewSource(1))
	m := Bimodal(big, DefaultBimodal(), rng)
	var large, small int
	m.Pairs(func(s, tt graph.NodeID, d float64) {
		if d > 10 {
			large++
		} else {
			small++
		}
	})
	frac := float64(large) / float64(large+small)
	if frac < 0.03 || frac > 0.25 {
		t.Fatalf("elephant fraction = %g, want ≈0.1", frac)
	}
}

// Property: every random corner of a margin box lies inside the box, and
// scaling a matrix scales its total linearly.
func TestPropertyBoxCorners(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(sz%8)
		base := NewMatrix(n)
		for s := 0; s < n; s++ {
			for tt := 0; tt < n; tt++ {
				if s != tt {
					base.Set(graph.NodeID(s), graph.NodeID(tt), rng.Float64()*10)
				}
			}
		}
		margin := 1 + rng.Float64()*4
		box := MarginBox(base, margin)
		for i := 0; i < 5; i++ {
			if !box.Contains(box.Corner(func(s, t graph.NodeID) bool { return rng.Intn(2) == 1 })) {
				return false
			}
		}
		k := rng.Float64() * 3
		scaled := base.Clone().Scale(k)
		return math.Abs(scaled.Total()-k*base.Total()) < 1e-6*(1+base.Total())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
