// Package demand models traffic demand matrices and the operator-specified
// uncertainty sets of §III and §VI of the paper.
//
// A demand matrix D assigns a non-negative rate d_st to every ordered node
// pair. Uncertainty is captured by a Box: per-pair intervals
// [dmin_st, dmax_st]; the paper's "uncertainty margin" x around a base
// matrix is Box[d_st/x, x·d_st]. The evaluation also uses the two base
// traffic models of §VI-B: gravity [22] and bimodal [23].
package demand

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/coyote-te/coyote/internal/graph"
)

// Matrix is a dense demand matrix over n nodes, stored row-major: entry
// (s, t) is At(s, t). Diagonal entries are always zero.
type Matrix struct {
	N int
	D []float64
}

// NewMatrix returns a zero demand matrix for n nodes.
func NewMatrix(n int) *Matrix {
	return &Matrix{N: n, D: make([]float64, n*n)}
}

// At returns d_st.
func (m *Matrix) At(s, t graph.NodeID) float64 { return m.D[int(s)*m.N+int(t)] }

// Set assigns d_st. Setting a diagonal entry or a negative rate panics.
func (m *Matrix) Set(s, t graph.NodeID, d float64) {
	if s == t {
		panic("demand: diagonal demand entry")
	}
	if d < 0 || math.IsNaN(d) {
		panic(fmt.Sprintf("demand: negative demand %v", d))
	}
	m.D[int(s)*m.N+int(t)] = d
}

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	return &Matrix{N: m.N, D: append([]float64(nil), m.D...)}
}

// Scale multiplies every entry by k and returns the receiver.
func (m *Matrix) Scale(k float64) *Matrix {
	for i := range m.D {
		m.D[i] *= k
	}
	return m
}

// Total returns the sum of all demands.
func (m *Matrix) Total() float64 {
	s := 0.0
	for _, d := range m.D {
		s += d
	}
	return s
}

// MaxEntry returns the largest demand.
func (m *Matrix) MaxEntry() float64 {
	mx := 0.0
	for _, d := range m.D {
		if d > mx {
			mx = d
		}
	}
	return mx
}

// Pairs invokes fn for every pair with positive demand.
func (m *Matrix) Pairs(fn func(s, t graph.NodeID, d float64)) {
	for s := 0; s < m.N; s++ {
		for t := 0; t < m.N; t++ {
			if d := m.D[s*m.N+t]; d > 0 {
				fn(graph.NodeID(s), graph.NodeID(t), d)
			}
		}
	}
}

// ToDestination returns the per-source demand vector toward destination t
// (a column of the matrix).
func (m *Matrix) ToDestination(t graph.NodeID) []float64 {
	out := make([]float64, m.N)
	for s := 0; s < m.N; s++ {
		out[s] = m.D[s*m.N+int(t)]
	}
	return out
}

// Box is a per-pair interval uncertainty set: every matrix D with
// Min.At(s,t) ≤ d_st ≤ Max.At(s,t) for all pairs belongs to the set.
type Box struct {
	Min, Max *Matrix
}

// NewBox builds a box from explicit bounds. It panics if the bounds cross.
func NewBox(min, max *Matrix) *Box {
	if min.N != max.N {
		panic("demand: box dimension mismatch")
	}
	for i := range min.D {
		if min.D[i] > max.D[i]+1e-15 {
			panic("demand: box lower bound exceeds upper bound")
		}
	}
	return &Box{Min: min, Max: max}
}

// MarginBox builds the paper's uncertainty set around a base matrix: each
// d_st may range in [base/margin, base·margin]. Margin must be ≥ 1.
func MarginBox(base *Matrix, margin float64) *Box {
	if margin < 1 {
		panic(fmt.Sprintf("demand: margin %v < 1", margin))
	}
	min := base.Clone().Scale(1 / margin)
	max := base.Clone().Scale(margin)
	return &Box{Min: min, Max: max}
}

// ObliviousBox builds the "no knowledge whatsoever" set used by
// COYOTE-oblivious: every pair may send anywhere between 0 and cap. A
// finite cap stands in for the unbounded set; the performance ratio is
// invariant to demand rescaling (§III), so any positive cap yields the same
// optimization landscape.
func ObliviousBox(n int, cap float64) *Box {
	min := NewMatrix(n)
	max := NewMatrix(n)
	for s := 0; s < n; s++ {
		for t := 0; t < n; t++ {
			if s != t {
				max.D[s*n+t] = cap
			}
		}
	}
	return &Box{Min: min, Max: max}
}

// Contains reports whether D lies inside the box (within tolerance).
func (b *Box) Contains(d *Matrix) bool {
	for i := range d.D {
		if d.D[i] < b.Min.D[i]-1e-9 || d.D[i] > b.Max.D[i]+1e-9 {
			return false
		}
	}
	return true
}

// Corner materializes the box corner selected by pick: entry (s,t) takes
// Max if pick(s,t) is true, Min otherwise.
func (b *Box) Corner(pick func(s, t graph.NodeID) bool) *Matrix {
	n := b.Min.N
	out := NewMatrix(n)
	for s := 0; s < n; s++ {
		for t := 0; t < n; t++ {
			if s == t {
				continue
			}
			if pick(graph.NodeID(s), graph.NodeID(t)) {
				out.D[s*n+t] = b.Max.D[s*n+t]
			} else {
				out.D[s*n+t] = b.Min.D[s*n+t]
			}
		}
	}
	return out
}

// SinglePair returns the matrix with demand d on pair (s,t) and zero
// elsewhere; the adversaries of Theorem 4 use these.
func SinglePair(n int, s, t graph.NodeID, d float64) *Matrix {
	m := NewMatrix(n)
	m.Set(s, t, d)
	return m
}

// Gravity builds the gravity-model base matrix of §VI-B: the flow from i to
// j is proportional to the product of i's and j's total outgoing capacity.
// The matrix is normalized so its largest entry equals peak.
func Gravity(g *graph.Graph, peak float64) *Matrix {
	n := g.NumNodes()
	outCap := make([]float64, n)
	for _, e := range g.Edges() {
		outCap[e.From] += e.Capacity
	}
	m := NewMatrix(n)
	for s := 0; s < n; s++ {
		for t := 0; t < n; t++ {
			if s != t {
				m.D[s*n+t] = outCap[s] * outCap[t]
			}
		}
	}
	if mx := m.MaxEntry(); mx > 0 {
		m.Scale(peak / mx)
	}
	return m
}

// BimodalParams configures the bimodal traffic model of §VI-B: a small
// fraction of node pairs exchange large flows and the rest exchange small
// flows.
type BimodalParams struct {
	LargeFraction float64 // fraction of pairs drawing from the large mode
	LargeMean     float64 // mean of the large mode
	SmallMean     float64 // mean of the small mode
	Sigma         float64 // relative standard deviation of both modes
}

// DefaultBimodal mirrors the common parameterization in [23]: 10% elephant
// pairs, 20:1 elephant-to-mouse ratio.
func DefaultBimodal() BimodalParams {
	return BimodalParams{LargeFraction: 0.1, LargeMean: 20, SmallMean: 1, Sigma: 0.2}
}

// Bimodal samples a bimodal base matrix. Negative draws clamp to zero.
func Bimodal(g *graph.Graph, p BimodalParams, rng *rand.Rand) *Matrix {
	n := g.NumNodes()
	m := NewMatrix(n)
	for s := 0; s < n; s++ {
		for t := 0; t < n; t++ {
			if s == t {
				continue
			}
			mean := p.SmallMean
			if rng.Float64() < p.LargeFraction {
				mean = p.LargeMean
			}
			d := mean * (1 + p.Sigma*rng.NormFloat64())
			if d < 0 {
				d = 0
			}
			m.D[s*n+t] = d
		}
	}
	return m
}
