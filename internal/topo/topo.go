// Package topo provides the topology corpus for the evaluation: synthetic,
// deterministic stand-ins for the 16 Internet Topology Zoo backbones used
// in §VI of the paper (the ITZ GraphML archive is unavailable offline; see
// DESIGN.md §2 for the substitution rationale). Each topology matches the
// published node count scale, degree profile (backbone mesh vs tree-like
// access network) and a realistic capacity mix, and is generated from a
// fixed per-name seed so experiments are reproducible.
//
// Link weights follow the Cisco-recommended default the paper cites [16]:
// inversely proportional to capacity.
package topo

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"

	"github.com/coyote-te/coyote/internal/graph"
)

// style describes the generator family for a topology.
type style int

const (
	backbone style = iota // ring + random chords (well-meshed ISP core)
	treeish               // random tree + a few shortcut links
)

// spec describes one corpus entry.
type spec struct {
	nodes int
	extra int // chords beyond the base structure
	style style
	// capacity classes sampled for links (weighted toward the first).
	caps []float64
}

// Rocketfuel-inferred ASes are scaled to ~25 nodes (see DESIGN.md); the
// smaller research/enterprise backbones use their published sizes.
var corpus = map[string]spec{
	"AS1221":      {nodes: 22, extra: 18, style: backbone, caps: []float64{10, 2.5, 2.5, 1}},
	"AS1755":      {nodes: 23, extra: 17, style: backbone, caps: []float64{10, 2.5, 1}},
	"AS3257":      {nodes: 25, extra: 20, style: backbone, caps: []float64{10, 10, 2.5, 1}},
	"Abilene":     {nodes: 12, extra: 4, style: backbone, caps: []float64{10}},
	"ATT":         {nodes: 25, extra: 22, style: backbone, caps: []float64{10, 2.5, 2.5, 1}},
	"BBNPlanet":   {nodes: 27, extra: 2, style: treeish, caps: []float64{2.5, 1}},
	"BICS":        {nodes: 33, extra: 15, style: backbone, caps: []float64{10, 2.5, 1}},
	"BtEurope":    {nodes: 24, extra: 13, style: backbone, caps: []float64{10, 2.5}},
	"Digex":       {nodes: 31, extra: 4, style: treeish, caps: []float64{2.5, 1}},
	"Gambia":      {nodes: 10, extra: 1, style: treeish, caps: []float64{1}},
	"Geant":       {nodes: 22, extra: 14, style: backbone, caps: []float64{10, 10, 2.5}},
	"Germany":     {nodes: 17, extra: 9, style: backbone, caps: []float64{10, 2.5}},
	"GRNet":       {nodes: 22, extra: 3, style: treeish, caps: []float64{2.5, 1}},
	"InternetMCI": {nodes: 19, extra: 14, style: backbone, caps: []float64{10, 2.5}},
	"Italy":       {nodes: 20, extra: 12, style: backbone, caps: []float64{10, 2.5, 1}},
	"NSF":         {nodes: 14, extra: 7, style: backbone, caps: []float64{1}},
}

// Names returns the corpus topology names, sorted.
func Names() []string {
	out := make([]string, 0, len(corpus))
	for name := range corpus {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// TableNames returns the 14 topologies of Table I (the full corpus minus
// the near-tree BBNPlanet and Gambia, which the paper excludes).
func TableNames() []string {
	var out []string
	for _, name := range Names() {
		if name == "BBNPlanet" || name == "Gambia" {
			continue
		}
		out = append(out, name)
	}
	return out
}

// Load builds the named topology.
func Load(name string) (*graph.Graph, error) {
	sp, ok := corpus[name]
	if !ok {
		return nil, fmt.Errorf("topo: unknown topology %q (have %v)", name, Names())
	}
	return generate(name, sp), nil
}

// MustLoad is Load for known-good names; it panics on error.
func MustLoad(name string) *graph.Graph {
	g, err := Load(name)
	if err != nil {
		panic(err)
	}
	return g
}

func seedFor(name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return int64(h.Sum64() & math.MaxInt64)
}

func generate(name string, sp spec) *graph.Graph {
	rng := rand.New(rand.NewSource(seedFor(name)))
	g := graph.New()
	for i := 0; i < sp.nodes; i++ {
		g.AddNode(fmt.Sprintf("%s-%02d", name, i))
	}
	pickCap := func() float64 { return sp.caps[rng.Intn(len(sp.caps))] }
	addLink := func(a, b graph.NodeID) {
		if a == b {
			return
		}
		if _, dup := g.FindEdge(a, b); dup {
			return
		}
		c := pickCap()
		w := math.Max(1, math.Round(10/c))
		g.AddLink(a, b, c, w)
	}
	switch sp.style {
	case backbone:
		// Ring guarantees biconnectivity; chords add the mesh.
		for i := 0; i < sp.nodes; i++ {
			addLink(graph.NodeID(i), graph.NodeID((i+1)%sp.nodes))
		}
		for added := 0; added < sp.extra; {
			a := graph.NodeID(rng.Intn(sp.nodes))
			b := graph.NodeID(rng.Intn(sp.nodes))
			if a == b {
				continue
			}
			if _, dup := g.FindEdge(a, b); dup {
				continue
			}
			addLink(a, b)
			added++
		}
	case treeish:
		// Preferential-attachment tree plus a few shortcuts.
		for i := 1; i < sp.nodes; i++ {
			// Bias toward low-index (older, higher-degree) nodes.
			p := rng.Intn(i*(i+1)/2) + 1
			parent := 0
			for acc := 0; parent < i; parent++ {
				acc += i - parent
				if p <= acc {
					break
				}
			}
			if parent >= i {
				parent = i - 1
			}
			addLink(graph.NodeID(i), graph.NodeID(parent))
		}
		for added := 0; added < sp.extra; {
			a := graph.NodeID(rng.Intn(sp.nodes))
			b := graph.NodeID(rng.Intn(sp.nodes))
			if a == b {
				continue
			}
			if _, dup := g.FindEdge(a, b); dup {
				continue
			}
			addLink(a, b)
			added++
		}
	}
	return g
}
