package topo

import (
	"testing"

	"github.com/coyote-te/coyote/internal/graph"
)

func TestAllTopologiesLoadAndValidate(t *testing.T) {
	for _, name := range Names() {
		g, err := Load(name)
		if err != nil {
			t.Fatalf("Load(%s): %v", name, err)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if !g.Connected() {
			t.Errorf("%s: not strongly connected", name)
		}
	}
}

func TestDeterministic(t *testing.T) {
	a := MustLoad("Geant")
	b := MustLoad("Geant")
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatal("Geant generation not deterministic in size")
	}
	for i := range a.Edges() {
		ea, eb := a.Edge(graph.EdgeID(i)), b.Edge(graph.EdgeID(i))
		if ea != eb {
			t.Fatalf("edge %d differs between generations: %+v vs %+v", i, ea, eb)
		}
	}
}

func TestExpectedSizes(t *testing.T) {
	cases := map[string]int{"NSF": 14, "Abilene": 12, "Geant": 22, "BICS": 33}
	for name, nodes := range cases {
		g := MustLoad(name)
		if g.NumNodes() != nodes {
			t.Errorf("%s: %d nodes, want %d", name, g.NumNodes(), nodes)
		}
	}
	// NSF: ring(14) + 7 chords = 21 links = 42 directed edges.
	if g := MustLoad("NSF"); g.NumEdges() != 42 {
		t.Errorf("NSF: %d directed edges, want 42", g.NumEdges())
	}
}

func TestWeightsInverseCapacity(t *testing.T) {
	g := MustLoad("AS1755")
	for _, e := range g.Edges() {
		if e.Capacity >= 10 && e.Weight != 1 {
			t.Fatalf("10G link has weight %g, want 1", e.Weight)
		}
		if e.Capacity == 1 && e.Weight != 10 {
			t.Fatalf("1G link has weight %g, want 10", e.Weight)
		}
	}
}

func TestTableNamesExcludesTrees(t *testing.T) {
	names := TableNames()
	if len(names) != 14 {
		t.Fatalf("TableNames has %d entries, want 14", len(names))
	}
	for _, n := range names {
		if n == "BBNPlanet" || n == "Gambia" {
			t.Fatalf("TableNames must exclude %s", n)
		}
	}
}

func TestLoadUnknown(t *testing.T) {
	if _, err := Load("nope"); err == nil {
		t.Fatal("Load(nope) should fail")
	}
}

func TestTreeishSparser(t *testing.T) {
	tree := MustLoad("Digex")
	mesh := MustLoad("BICS")
	treeDeg := float64(tree.NumEdges()) / float64(tree.NumNodes())
	meshDeg := float64(mesh.NumEdges()) / float64(mesh.NumNodes())
	if treeDeg >= meshDeg {
		t.Fatalf("tree-like Digex (deg %g) should be sparser than BICS (deg %g)", treeDeg, meshDeg)
	}
}
