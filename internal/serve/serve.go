// Package serve wraps a delta.Session behind an HTTP/JSON API — the
// long-running controller face of the online TE subsystem (DESIGN.md §6).
//
// Endpoints:
//
//	GET  /state     current topology, failed links, PERF/ECMP, event count
//	GET  /routing   per-destination splitting ratios of the live routing
//	GET  /lies      synthesize lies for the current configuration; reports
//	                the LSA diff vs the previously emitted set (?extra=N
//	                tunes virtual next-hops per interface, default 3)
//	GET  /stats     the full event log (recompute cost, warm/cold, churn)
//	GET  /events    Server-Sent Events stream of session events
//	GET  /metrics   Prometheus text exposition of the obs.Default registry
//	                (lp solver, session, par pool, sweep, HTTP families)
//	POST /update    demand-box update: {"scale":1.2} scales the current
//	                bounds; {"margin":2,"entries":[{"from":"a","to":"b",
//	                "rate":1.5},...]} rebuilds them around an explicit base
//	POST /fail      {"from":"a","to":"b"} fails the named link
//	POST /recover   {"from":"a","to":"b"} recovers it
//
// The fleet control room (DESIGN.md §11) is always on:
//
//	GET  /dashboard        embedded zero-dependency HTML control room
//	GET  /metrics.json     registry snapshot as JSON with histogram
//	                       quantile estimates (the dashboard's feed)
//	GET  /logtail          recent structured log records
//	GET  /fleet            sharded-campaign status: per-shard progress,
//	                       ETA, straggler flags
//	GET  /fleet/results    the incrementally merged campaign as JSONL
//	GET  /fleet/events     SSE stream of heartbeat/merge updates
//	POST /fleet/heartbeat  worker progress report
//	POST /fleet/results    completed unit results, merged as they arrive
//
// With EnableSweep, the server additionally exposes the corpus-scale
// sweep harness (internal/sweep, DESIGN.md §8):
//
//	GET  /sweep     campaign status: units, cached count, run counters
//	POST /sweep     run the campaign through the content-addressed result
//	                cache and return the report
//
// Mutations recompute synchronously and return the resulting event, so a
// client sees the post-transition PERF in the response. The controller
// inherits the repo's determinism contract: for a fixed seed and mutation
// sequence, results are bit-identical for any worker count.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"github.com/coyote-te/coyote/internal/delta"
	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/obs"
)

// Server exposes one Session over HTTP.
type Server struct {
	ses   *delta.Session
	mux   *http.ServeMux
	fleet *fleetState
}

// New wraps a session.
func New(ses *delta.Session) *Server {
	s := &Server{ses: ses, mux: http.NewServeMux(), fleet: newFleetState()}
	s.mux.HandleFunc("GET /state", s.handleState)
	s.mux.HandleFunc("GET /routing", s.handleRouting)
	s.mux.HandleFunc("GET /lies", s.handleLies)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /events", s.handleEvents)
	s.mux.Handle("GET /metrics", obs.Default.Handler())
	s.mux.Handle("GET /metrics.json", obs.Default.JSONHandler())
	s.mux.Handle("GET /logtail", obs.LogTailHandler())
	s.mux.Handle("GET /dashboard", obs.DashboardHandler())
	s.mux.HandleFunc("POST /update", s.handleUpdate)
	s.mux.HandleFunc("POST /fail", s.handleFail)
	s.mux.HandleFunc("POST /recover", s.handleRecover)
	s.mux.HandleFunc("GET /fleet", s.handleFleet)
	s.mux.HandleFunc("GET /fleet/results", s.handleFleetDownload)
	s.mux.HandleFunc("GET /fleet/events", s.handleFleetEvents)
	s.mux.HandleFunc("POST /fleet/heartbeat", s.handleFleetHeartbeat)
	s.mux.HandleFunc("POST /fleet/results", s.handleFleetResults)
	return s
}

// Handler returns the route table, wrapped with request-count/latency
// instrumentation (coyote_http_* — labeled by route pattern, not raw URL,
// so cardinality stays bounded).
func (s *Server) Handler() http.Handler { return obs.InstrumentHTTP(s.mux) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// linkJSON is one physical link of the state report.
type linkJSON struct {
	From     string  `json:"from"`
	To       string  `json:"to"`
	Capacity float64 `json:"capacity"`
	Weight   float64 `json:"weight"`
	Failed   bool    `json:"failed"`
}

func (s *Server) handleState(w http.ResponseWriter, r *http.Request) {
	base := s.ses.Base()
	failed := make(map[graph.EdgeID]bool)
	for _, id := range s.ses.FailedLinks() {
		failed[id] = true
	}
	links := make([]linkJSON, 0, len(base.Links()))
	for _, id := range base.Links() {
		e := base.Edge(id)
		links = append(links, linkJSON{
			From:     base.Name(e.From),
			To:       base.Name(e.To),
			Capacity: e.Capacity,
			Weight:   e.Weight,
			Failed:   failed[id],
		})
	}
	cur := s.ses.Graph()
	writeJSON(w, http.StatusOK, map[string]any{
		"nodes":          base.NumNodes(),
		"links":          links,
		"failed":         len(failed),
		"live_edges":     cur.NumEdges(),
		"perf":           s.ses.Perf(),
		"ecmp_perf":      s.ses.ECMPPerf(),
		"event_count":    len(s.ses.Events()),
		"dropped_events": s.ses.Dropped(),
	})
}

// ratioJSON is one splitting-ratio entry of the routing report.
type ratioJSON struct {
	From  string  `json:"from"`
	To    string  `json:"to"`
	Ratio float64 `json:"ratio"`
}

func (s *Server) handleRouting(w http.ResponseWriter, r *http.Request) {
	routing := s.ses.Routing()
	g := routing.G
	out := make(map[string][]ratioJSON, g.NumNodes())
	for t := range routing.Phi {
		var entries []ratioJSON
		for e, phi := range routing.Phi[t] {
			if phi <= 0 {
				continue
			}
			edge := g.Edge(graph.EdgeID(e))
			entries = append(entries, ratioJSON{
				From:  g.Name(edge.From),
				To:    g.Name(edge.To),
				Ratio: phi,
			})
		}
		out[g.Name(graph.NodeID(t))] = entries
	}
	writeJSON(w, http.StatusOK, map[string]any{"destinations": out})
}

func (s *Server) handleLies(w http.ResponseWriter, r *http.Request) {
	extra := 3
	if v := r.URL.Query().Get("extra"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad extra %q", v))
			return
		}
		extra = n
	}
	res, err := s.ses.Lies(extra)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"fake_nodes":        res.FakeNodes,
		"virtual_links":     res.VirtualLinks,
		"lied_destinations": res.LiedDestinations,
		"churn": map[string]int{
			"added":   len(res.Diff.Add),
			"removed": len(res.Diff.Remove),
			"updated": len(res.Diff.Update),
			"total":   res.Diff.Churn(),
		},
		"messages": res.Synthesis.Messages(s.ses.Graph()),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"events": s.ses.Events()})
}

// handleEvents streams session events as Server-Sent Events until the
// client disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	ch, cancel := s.ses.Subscribe()
	defer cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case e, ok := <-ch:
			if !ok {
				return
			}
			data, err := json.Marshal(e)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Kind, data)
			fl.Flush()
		}
	}
}

// updateRequest is the body of POST /update. Exactly one of Scale or
// Entries must be provided.
type updateRequest struct {
	// Scale multiplies both bounds of the current box (demand growth).
	Scale float64 `json:"scale,omitempty"`
	// Entries, with Margin, rebuild the box around an explicit base
	// matrix: every listed pair gets [rate/margin, rate·margin]; unlisted
	// pairs drop to zero.
	Margin  float64 `json:"margin,omitempty"`
	Entries []struct {
		From string  `json:"from"`
		To   string  `json:"to"`
		Rate float64 `json:"rate"`
	} `json:"entries,omitempty"`
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var req updateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.Scale != 0 && len(req.Entries) > 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf(`provide either "scale" or "entries", not both`))
		return
	}
	var box *demand.Box
	switch {
	case len(req.Entries) == 0 && req.Scale != 0:
		if req.Scale < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("scale %g must be positive", req.Scale))
			return
		}
		cur := s.ses.Bounds()
		box = demand.NewBox(cur.Min.Clone().Scale(req.Scale), cur.Max.Clone().Scale(req.Scale))
	case len(req.Entries) > 0:
		margin := req.Margin
		if margin == 0 {
			margin = 2
		}
		if margin < 1 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("margin %g < 1", margin))
			return
		}
		g := s.ses.Base()
		base := demand.NewMatrix(g.NumNodes())
		for _, en := range req.Entries {
			from, ok := g.NodeByName(en.From)
			if !ok {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown node %q", en.From))
				return
			}
			to, ok := g.NodeByName(en.To)
			if !ok {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown node %q", en.To))
				return
			}
			if from == to || en.Rate < 0 {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("bad entry %s→%s rate %g", en.From, en.To, en.Rate))
				return
			}
			base.Set(from, to, base.At(from, to)+en.Rate)
		}
		box = demand.MarginBox(base, margin)
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf(`provide "scale" or "entries"`))
		return
	}
	ev, err := s.ses.UpdateBounds(box)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, ev)
}

// linkRequest names a physical link by its endpoints.
type linkRequest struct {
	From string `json:"from"`
	To   string `json:"to"`
}

func (s *Server) resolveLink(req linkRequest) (graph.EdgeID, error) {
	g := s.ses.Base()
	from, ok := g.NodeByName(req.From)
	if !ok {
		return 0, fmt.Errorf("unknown node %q", req.From)
	}
	to, ok := g.NodeByName(req.To)
	if !ok {
		return 0, fmt.Errorf("unknown node %q", req.To)
	}
	if id, ok := g.FindEdge(from, to); ok {
		return id, nil
	}
	if id, ok := g.FindEdge(to, from); ok {
		return id, nil
	}
	return 0, fmt.Errorf("no link %s–%s", req.From, req.To)
}

func (s *Server) handleLinkMutation(w http.ResponseWriter, r *http.Request,
	apply func(graph.EdgeID) (delta.Event, error)) {
	var req linkRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	id, err := s.resolveLink(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ev, err := apply(id)
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, ev)
}

func (s *Server) handleFail(w http.ResponseWriter, r *http.Request) {
	s.handleLinkMutation(w, r, s.ses.Fail)
}

func (s *Server) handleRecover(w http.ResponseWriter, r *http.Request) {
	s.handleLinkMutation(w, r, s.ses.Recover)
}
