package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/coyote-te/coyote/internal/delta"
	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/topo"
)

func newTestServer(t *testing.T) (*httptest.Server, *delta.Session) {
	t.Helper()
	g, err := topo.Load("NSF")
	if err != nil {
		t.Fatal(err)
	}
	ses, err := delta.NewSession(g, demand.MarginBox(demand.Gravity(g, 1), 2), delta.Config{
		OptIters: 120,
		AdvIters: 2,
		Samples:  2,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(ses).Handler())
	t.Cleanup(ts.Close)
	return ts, ses
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out)
	return resp, out
}

func TestStateRoutingStats(t *testing.T) {
	ts, ses := newTestServer(t)

	var state struct {
		Nodes    int     `json:"nodes"`
		Perf     float64 `json:"perf"`
		ECMPPerf float64 `json:"ecmp_perf"`
		Links    []struct {
			Failed bool `json:"failed"`
		} `json:"links"`
	}
	getJSON(t, ts.URL+"/state", &state)
	if state.Nodes != ses.Base().NumNodes() {
		t.Fatalf("state nodes %d, want %d", state.Nodes, ses.Base().NumNodes())
	}
	if state.Perf != ses.Perf() {
		t.Fatalf("state perf %v, want %v", state.Perf, ses.Perf())
	}
	if len(state.Links) != len(ses.Base().Links()) {
		t.Fatalf("state has %d links, want %d", len(state.Links), len(ses.Base().Links()))
	}

	var routing struct {
		Destinations map[string][]struct {
			From  string  `json:"from"`
			Ratio float64 `json:"ratio"`
		} `json:"destinations"`
	}
	getJSON(t, ts.URL+"/routing", &routing)
	if len(routing.Destinations) != ses.Base().NumNodes() {
		t.Fatalf("routing has %d destinations, want %d", len(routing.Destinations), ses.Base().NumNodes())
	}

	var stats struct {
		Events []delta.Event `json:"events"`
	}
	getJSON(t, ts.URL+"/stats", &stats)
	if len(stats.Events) == 0 || stats.Events[0].Kind != delta.EventInit {
		t.Fatalf("stats events: %+v", stats.Events)
	}
}

func TestUpdateFailRecoverLies(t *testing.T) {
	ts, ses := newTestServer(t)

	// Demand growth via scale.
	resp, ev := postJSON(t, ts.URL+"/update", map[string]any{"scale": 1.2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update: status %d (%v)", resp.StatusCode, ev)
	}
	if ev["kind"] != "update" || ev["warm"] != true {
		t.Fatalf("update event: %v", ev)
	}

	// Fail a real link by name.
	base := ses.Base()
	link := base.Edge(base.Links()[0])
	from, to := base.Name(link.From), base.Name(link.To)
	resp, ev = postJSON(t, ts.URL+"/fail", map[string]string{"from": from, "to": to})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fail: status %d (%v)", resp.StatusCode, ev)
	}
	if ev["kind"] != "fail" {
		t.Fatalf("fail event: %v", ev)
	}
	// Double-fail conflicts.
	resp, _ = postJSON(t, ts.URL+"/fail", map[string]string{"from": from, "to": to})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("double fail: status %d, want 409", resp.StatusCode)
	}

	// Lies on the degraded topology.
	var lies struct {
		FakeNodes int `json:"fake_nodes"`
		Churn     struct {
			Total int `json:"total"`
		} `json:"churn"`
		Messages []map[string]any `json:"messages"`
	}
	getJSON(t, ts.URL+"/lies?extra=3", &lies)
	if lies.FakeNodes != len(lies.Messages) {
		t.Fatalf("lies: %d fake nodes but %d messages", lies.FakeNodes, len(lies.Messages))
	}
	if lies.Churn.Total != lies.FakeNodes {
		t.Fatalf("first lies call churn %d, want full injection %d", lies.Churn.Total, lies.FakeNodes)
	}

	// Recover.
	resp, ev = postJSON(t, ts.URL+"/recover", map[string]string{"from": from, "to": to})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recover: status %d (%v)", resp.StatusCode, ev)
	}
	if ev["kind"] != "recover" {
		t.Fatalf("recover event: %v", ev)
	}
}

func TestUpdateWithEntries(t *testing.T) {
	ts, ses := newTestServer(t)
	g := ses.Base()
	a, b := g.Name(0), g.Name(1)
	resp, ev := postJSON(t, ts.URL+"/update", map[string]any{
		"margin": 2,
		"entries": []map[string]any{
			{"from": a, "to": b, "rate": 1.0},
			{"from": b, "to": a, "rate": 0.5},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update entries: status %d (%v)", resp.StatusCode, ev)
	}
	box := ses.Bounds()
	if got := box.Max.At(0, 1); got != 2.0 {
		t.Fatalf("box max (0,1) = %v, want 2", got)
	}
}

func TestUpdateRejectsBadBodies(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, body := range []any{
		map[string]any{},
		map[string]any{"scale": -1},
		map[string]any{"entries": []map[string]any{{"from": "nope", "to": "alsono", "rate": 1}}},
		map[string]any{"scale": 1.2, "entries": []map[string]any{{"from": "a", "to": "b", "rate": 1}}},
		map[string]any{"margin": 0.5, "entries": []map[string]any{{"from": "a", "to": "b", "rate": 1}}},
	} {
		resp, _ := postJSON(t, ts.URL+"/update", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %v: status %d, want 400", body, resp.StatusCode)
		}
	}
	resp, _ := postJSON(t, ts.URL+"/fail", map[string]string{"from": "nope", "to": "x"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad fail: status %d, want 400", resp.StatusCode)
	}
}

func TestSSEStream(t *testing.T) {
	ts, ses := newTestServer(t)

	req, err := http.NewRequest("GET", ts.URL+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	lines := make(chan string, 16)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()

	// Trigger an event after the subscription is live. UpdateBounds is
	// synchronous, so the event is already queued when it returns; the
	// deadline only covers stream delivery.
	if _, err := ses.UpdateBounds(demand.MarginBox(demand.Gravity(ses.Base(), 1.1), 2)); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(30 * time.Second)

	var event, data string
	for event == "" || data == "" {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatal("stream closed before event arrived")
			}
			if strings.HasPrefix(line, "event: ") {
				event = strings.TrimPrefix(line, "event: ")
			}
			if strings.HasPrefix(line, "data: ") {
				data = strings.TrimPrefix(line, "data: ")
			}
		case <-deadline:
			t.Fatal("timed out waiting for SSE event")
		}
	}
	if event != "update" {
		t.Fatalf("SSE event %q, want update", event)
	}
	var ev delta.Event
	if err := json.Unmarshal([]byte(data), &ev); err != nil {
		t.Fatalf("SSE data %q: %v", data, err)
	}
	if ev.Kind != delta.EventUpdate {
		t.Fatalf("SSE payload kind %q", ev.Kind)
	}
}

func TestMethodRouting(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/update")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /update: status %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/state", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /state: status %d, want 405", resp.StatusCode)
	}
}
