package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"github.com/coyote-te/coyote/internal/obs"
	"github.com/coyote-te/coyote/internal/sweep"
)

// The controller half of the fleet plane (DESIGN.md §11): coyote-serve
// accepts worker heartbeats and streamed unit results, folds the results
// through sweep.Aggregator (incremental MergeResults), and exposes:
//
//	POST /fleet/heartbeat   worker progress report (sweep.Heartbeat)
//	POST /fleet/results     completed units (sweep.ResultBatch); a
//	                        duplicate unit rejects the batch with 409
//	GET  /fleet             fleet status: per-shard progress, campaign
//	                        ETA, straggler flags, merged-unit count
//	GET  /fleet/results     the incrementally merged campaign as
//	                        canonical JSONL — at campaign end these are
//	                        exactly the merge-at-end bytes
//	GET  /fleet/events      SSE stream of heartbeat/merge updates
//
// A heartbeat naming a different campaign than the one in flight resets
// the aggregate: one controller tracks one campaign at a time, matching
// the sweep CLI's one-campaign-per-run shape.

var (
	mFleetHeartbeats = obs.Default.NewCounterVec("coyote_fleet_heartbeats_total",
		"Fleet heartbeats accepted by the controller, by shard.", "shard")
	mFleetShards = obs.Default.NewGauge("coyote_fleet_shards",
		"Distinct shards that have reported in the current campaign.")
	mFleetMerged = obs.Default.NewCounter("coyote_fleet_merged_results_total",
		"Unit results incrementally merged by the controller.")
	mFleetShardPlanned = obs.Default.NewGaugeVec("coyote_fleet_shard_planned",
		"Units planned on each reporting shard of the current campaign.", "shard")
	mFleetShardDone = obs.Default.NewGaugeVec("coyote_fleet_shard_done",
		"Units completed on each reporting shard of the current campaign.", "shard")
	mFleetDropped = obs.Default.NewCounter("coyote_fleet_dropped_events_total",
		"Fleet SSE events dropped because a subscriber was slow.")
)

var fleetLog = obs.Scope("fleet")

// stragglerStaleness flags a shard whose heartbeats stopped arriving.
const stragglerStaleness = 15 * time.Second

// fleetShard is the controller's view of one worker.
type fleetShard struct {
	hb   sweep.Heartbeat
	seen time.Time
}

// fleetEvent is one SSE message of GET /fleet/events.
type fleetEvent struct {
	kind string // "heartbeat" or "merge"
	data any
}

type fleetState struct {
	mu       sync.Mutex
	campaign string
	shards   map[int]*fleetShard
	agg      *sweep.Aggregator
	subs     map[int]chan fleetEvent
	nextSub  int
	now      func() time.Time // injectable for the straggler tests
}

func newFleetState() *fleetState {
	return &fleetState{
		shards: make(map[int]*fleetShard),
		agg:    sweep.NewAggregator(),
		subs:   make(map[int]chan fleetEvent),
		now:    time.Now,
	}
}

// reset starts tracking a new campaign.
func (f *fleetState) reset(campaign string) {
	for shard := range f.shards {
		label := fmt.Sprint(shard)
		mFleetShardPlanned.With(label).Set(0)
		mFleetShardDone.With(label).Set(0)
	}
	f.campaign = campaign
	f.shards = make(map[int]*fleetShard)
	f.agg = sweep.NewAggregator()
	mFleetShards.Set(0)
	fleetLog.Info("campaign tracking started", "campaign", campaign)
}

func (f *fleetState) publish(ev fleetEvent) {
	for _, ch := range f.subs {
		select {
		case ch <- ev:
		default:
			mFleetDropped.Inc()
		}
	}
}

func (s *Server) handleFleetHeartbeat(w http.ResponseWriter, r *http.Request) {
	var hb sweep.Heartbeat
	if err := json.NewDecoder(r.Body).Decode(&hb); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad heartbeat: %w", err))
		return
	}
	if hb.Campaign == "" || hb.Shard < 0 || hb.Shards < 1 || hb.Shard >= hb.Shards {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad heartbeat identity: campaign=%q shard=%d/%d", hb.Campaign, hb.Shard, hb.Shards))
		return
	}
	f := s.fleet
	f.mu.Lock()
	if hb.Campaign != f.campaign {
		f.reset(hb.Campaign)
	}
	f.shards[hb.Shard] = &fleetShard{hb: hb, seen: f.now()}
	label := fmt.Sprint(hb.Shard)
	mFleetHeartbeats.With(label).Inc()
	mFleetShards.Set(float64(len(f.shards)))
	mFleetShardPlanned.With(label).Set(float64(hb.Planned))
	mFleetShardDone.With(label).Set(float64(hb.Done))
	f.publish(fleetEvent{kind: "heartbeat", data: shardStatus(f.shards[hb.Shard], f.now())})
	f.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleFleetResults(w http.ResponseWriter, r *http.Request) {
	var batch sweep.ResultBatch
	if err := json.NewDecoder(r.Body).Decode(&batch); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad result batch: %w", err))
		return
	}
	if batch.Campaign == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("result batch without a campaign"))
		return
	}
	f := s.fleet
	f.mu.Lock()
	if batch.Campaign != f.campaign {
		f.reset(batch.Campaign)
	}
	if err := f.agg.Add(batch.Results...); err != nil {
		f.mu.Unlock()
		fleetLog.Warn("result batch rejected", "campaign", batch.Campaign,
			"shard", batch.Shard, "err", err)
		writeErr(w, http.StatusConflict, err)
		return
	}
	mFleetMerged.Add(uint64(len(batch.Results)))
	merged := f.agg.Len()
	f.publish(fleetEvent{kind: "merge", data: map[string]any{
		"campaign": batch.Campaign, "shard": batch.Shard,
		"units": len(batch.Results), "merged": merged,
	}})
	f.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "merged": merged})
}

// shardStatusJSON is one shard's row of the GET /fleet report.
type shardStatusJSON struct {
	Shard     int     `json:"shard"`
	Shards    int     `json:"shards"`
	Planned   int     `json:"planned"`
	Done      int     `json:"done"`
	Cached    int     `json:"cached"`
	Failed    int     `json:"failed"`
	Current   string  `json:"current,omitempty"`
	Elapsed   float64 `json:"elapsed_seconds"`
	ETA       float64 `json:"eta_seconds"`
	Staleness float64 `json:"staleness_seconds"`
	Final     bool    `json:"final"`
	Straggler bool    `json:"straggler"`
	UnitP50   float64 `json:"unit_p50_seconds,omitempty"`
}

// shardStatus computes one shard's row, ETA included: remaining units over
// the observed completion rate, falling back to remaining × the shard's
// median unit time before a rate exists. Straggler detection against the
// fleet median happens later, in fleetReport, where all rows are known.
func shardStatus(fs *fleetShard, now time.Time) shardStatusJSON {
	hb := fs.hb
	st := shardStatusJSON{
		Shard: hb.Shard, Shards: hb.Shards,
		Planned: hb.Planned, Done: hb.Done, Cached: hb.Cached, Failed: hb.Failed,
		Current: hb.Current, Elapsed: hb.Elapsed,
		Staleness: now.Sub(fs.seen).Seconds(),
		Final:     hb.Final, UnitP50: hb.UnitP50,
	}
	remaining := float64(hb.Planned - hb.Done)
	switch {
	case remaining <= 0 || hb.Final:
		st.ETA = 0
	case hb.Done > 0 && hb.Elapsed > 0:
		st.ETA = remaining / (float64(hb.Done) / hb.Elapsed)
	case hb.UnitP50 > 0:
		st.ETA = remaining * hb.UnitP50
	default:
		st.ETA = -1 // unknown
	}
	return st
}

// fleetReportJSON is the GET /fleet body.
type fleetReportJSON struct {
	Campaign    string            `json:"campaign"`
	Shards      int               `json:"shards"`
	Planned     int               `json:"planned"`
	Done        int               `json:"done"`
	Cached      int               `json:"cached"`
	Failed      int               `json:"failed"`
	Merged      int               `json:"merged"`
	ETA         float64           `json:"eta_seconds"`
	Complete    bool              `json:"complete"`
	ShardStatus []shardStatusJSON `json:"shard_status"`
}

func (f *fleetState) report() fleetReportJSON {
	f.mu.Lock()
	defer f.mu.Unlock()
	now := f.now()
	rep := fleetReportJSON{Campaign: f.campaign, Shards: len(f.shards), Merged: f.agg.Len()}
	for _, fs := range f.shards {
		rep.ShardStatus = append(rep.ShardStatus, shardStatus(fs, now))
	}
	sort.Slice(rep.ShardStatus, func(i, j int) bool {
		return rep.ShardStatus[i].Shard < rep.ShardStatus[j].Shard
	})

	// Straggler detection: a live shard is a straggler when its heartbeats
	// went stale, or its ETA is more than twice the fleet median of the
	// known ETAs.
	var etas []float64
	for _, st := range rep.ShardStatus {
		if !st.Final && st.ETA > 0 {
			etas = append(etas, st.ETA)
		}
	}
	sort.Float64s(etas)
	var medianETA float64
	if len(etas) > 0 {
		medianETA = etas[len(etas)/2]
	}
	rep.Complete = len(rep.ShardStatus) > 0
	for i := range rep.ShardStatus {
		st := &rep.ShardStatus[i]
		rep.Planned += st.Planned
		rep.Done += st.Done
		rep.Cached += st.Cached
		rep.Failed += st.Failed
		if st.ETA > rep.ETA {
			rep.ETA = st.ETA // campaign finishes when its slowest shard does
		}
		if !st.Final {
			rep.Complete = false
			if st.Staleness > stragglerStaleness.Seconds() ||
				(medianETA > 0 && st.ETA > 2*medianETA) {
				st.Straggler = true
			}
		}
	}
	return rep
}

func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.fleet.report())
}

// handleFleetDownload serves the incrementally merged campaign as the
// canonical JSONL artifact — the stream CI byte-compares against the
// merge-at-end golden.
func (s *Server) handleFleetDownload(w http.ResponseWriter, r *http.Request) {
	f := s.fleet
	f.mu.Lock()
	agg := f.agg
	f.mu.Unlock()
	w.Header().Set("Content-Type", "application/jsonl")
	if err := agg.WriteJSONL(w); err != nil {
		fleetLog.Error("merged download failed", "err", err)
	}
}

// handleFleetEvents streams heartbeat and merge updates as Server-Sent
// Events until the client disconnects.
func (s *Server) handleFleetEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	f := s.fleet
	ch := make(chan fleetEvent, 16)
	f.mu.Lock()
	id := f.nextSub
	f.nextSub++
	f.subs[id] = ch
	f.mu.Unlock()
	defer func() {
		f.mu.Lock()
		delete(f.subs, id)
		f.mu.Unlock()
	}()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-ch:
			data, err := json.Marshal(ev.data)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.kind, data)
			fl.Flush()
		}
	}
}
