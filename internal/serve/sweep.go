package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"github.com/coyote-te/coyote/internal/sweep"
)

// sweepState is the controller face of the corpus-scale sweep harness
// (DESIGN.md §8): the campaign it can run, the shared options (cache,
// fingerprint, workers), and the cumulative hit/miss counters across every
// run this server performed.
type sweepState struct {
	campaign sweep.Campaign
	opts     sweep.Options
	keys     []string // per-unit cache keys, precomputed (invariant for fixed cfg+fingerprint)

	runMu sync.Mutex // serializes runs; one campaign at a time

	statsMu sync.Mutex // guards the counters so status never waits on a run
	runs    int
	hits    int
	misses  int
}

// EnableSweep registers the /sweep endpoint, wiring the server to a sweep
// campaign and its result cache:
//
//	GET  /sweep   campaign status — unit count, how many are already
//	              cached under the current fingerprint, run counters
//	POST /sweep   run the campaign through the cache and return the
//	              report; {"units":["exp/running",...]} restricts the run
//	              to the named units, ?results=0 omits the result tables
//
// Runs are synchronous and serialized: the sweep inherits the repo's
// determinism contract, so concurrent runs would only duplicate work the
// cache will deduplicate anyway. Status reads stay responsive while a run
// is in flight. Call before serving traffic.
func (s *Server) EnableSweep(c sweep.Campaign, opts sweep.Options) {
	st := &sweepState{campaign: c, opts: opts}
	st.keys = make([]string, len(c.Units))
	fp := st.fingerprint()
	for i, u := range c.Units {
		key, err := u.Key(c.Cfg, fp)
		if err != nil {
			// A unit whose key cannot be derived cannot be cached or run
			// reproducibly; surface it at setup, not per request.
			panic(fmt.Sprintf("serve: sweep unit %s: %v", u.ID, err))
		}
		st.keys[i] = key
	}
	s.mux.HandleFunc("GET /sweep", st.handleStatus)
	s.mux.HandleFunc("POST /sweep", st.handleRun)
}

func (st *sweepState) fingerprint() string {
	if st.opts.Fingerprint != "" {
		return st.opts.Fingerprint
	}
	return sweep.Fingerprint()
}

func (st *sweepState) handleStatus(w http.ResponseWriter, r *http.Request) {
	cached := 0
	if st.opts.Cache != nil {
		for _, key := range st.keys {
			if st.opts.Cache.Has(key) {
				cached++
			}
		}
	}
	units := make([]string, len(st.campaign.Units))
	for i, u := range st.campaign.Units {
		units[i] = u.ID
	}
	st.statsMu.Lock()
	runs, hits, misses := st.runs, st.hits, st.misses
	st.statsMu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"campaign":    st.campaign.Name,
		"units":       units,
		"unit_count":  len(units),
		"cached":      cached,
		"fingerprint": st.fingerprint(),
		"runs":        runs,
		"hits":        hits,
		"misses":      misses,
	})
}

// sweepRunRequest is the optional body of POST /sweep.
type sweepRunRequest struct {
	// Units restricts the run to the named unit IDs (default: all).
	Units []string `json:"units,omitempty"`
	// Verify recomputes cache hits and fails unless bit-identical.
	Verify bool `json:"verify,omitempty"`
}

func (st *sweepState) handleRun(w http.ResponseWriter, r *http.Request) {
	var req sweepRunRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
	}
	c := st.campaign
	if len(req.Units) > 0 {
		want := make(map[string]bool, len(req.Units))
		for _, id := range req.Units {
			want[id] = true
		}
		var units []sweep.Unit
		for _, u := range c.Units {
			if want[u.ID] {
				units = append(units, u)
				delete(want, u.ID)
			}
		}
		if len(want) > 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown units in request: %d of %d not in campaign %s", len(want), len(req.Units), c.Name))
			return
		}
		c = sweep.Campaign{Name: c.Name, Cfg: c.Cfg, Units: units}
	}

	st.runMu.Lock()
	defer st.runMu.Unlock()
	opts := st.opts
	opts.Verify = opts.Verify || req.Verify
	start := time.Now()
	rep, err := sweep.Run(c, opts)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	st.statsMu.Lock()
	st.runs++
	st.hits += rep.Hits
	st.misses += rep.Misses
	st.statsMu.Unlock()

	resp := map[string]any{
		"campaign":   rep.Campaign,
		"unit_count": len(rep.Results),
		"hits":       rep.Hits,
		"misses":     rep.Misses,
		"elapsed_ms": time.Since(start).Milliseconds(),
	}
	if r.URL.Query().Get("results") != "0" {
		resp["results"] = rep.Results
	}
	writeJSON(w, http.StatusOK, resp)
}
