package serve

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/coyote-te/coyote/internal/exp"
	"github.com/coyote-te/coyote/internal/sweep"
)

// syntheticResults fabricates n unit results with distinct tables; the
// exact contents don't matter, only that bytes survive the round trip.
func syntheticResults(n int) []sweep.Result {
	out := make([]sweep.Result, n)
	for i := range out {
		out[i] = sweep.Result{
			Unit: fmt.Sprintf("unit-%02d", i),
			Table: &exp.Table{
				Title:   fmt.Sprintf("synthetic %d", i),
				Columns: []string{"k", "v"},
				Rows:    [][]string{{"x", fmt.Sprintf("%d.5", i)}},
			},
		}
	}
	return out
}

// TestFleetEndpoints drives the controller like two shard workers:
// interleaved heartbeats and result batches, then asserts GET /fleet sees
// both shards and GET /fleet/results serves exactly the merge-at-end
// bytes.
func TestFleetEndpoints(t *testing.T) {
	ts, _ := newTestServer(t)

	results := syntheticResults(7)
	// Shard split by index parity, like the runner's i % shards protocol.
	var shard0, shard1 []sweep.Result
	for i, r := range results {
		if i%2 == 0 {
			shard0 = append(shard0, r)
		} else {
			shard1 = append(shard1, r)
		}
	}

	hb := func(shard, done, planned int, current string, final bool) {
		resp, body := postJSON(t, ts.URL+"/fleet/heartbeat", sweep.Heartbeat{
			Campaign: "synthetic", Shard: shard, Shards: 2,
			Planned: planned, Done: done, Current: current,
			Elapsed: float64(done) * 0.5, Final: final,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("heartbeat shard %d: status %d body %v", shard, resp.StatusCode, body)
		}
	}
	post := func(shard int, rs ...sweep.Result) {
		resp, body := postJSON(t, ts.URL+"/fleet/results", sweep.ResultBatch{
			Campaign: "synthetic", Shard: shard, Results: rs,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("results shard %d: status %d body %v", shard, resp.StatusCode, body)
		}
	}

	// Interleave: shard 1 starts first, batches arrive out of unit order
	// across shards.
	hb(1, 0, len(shard1), "unit-01", false)
	hb(0, 0, len(shard0), "unit-00", false)
	post(1, shard1[0], shard1[1])
	post(0, shard0[0])
	hb(0, 1, len(shard0), "unit-02", false)
	post(0, shard0[1], shard0[2])
	post(1, shard1[2])
	hb(1, 3, len(shard1), "", true)
	post(0, shard0[3])
	hb(0, 4, len(shard0), "", true)

	// GET /fleet must see both shards, both final, campaign complete.
	var rep struct {
		Campaign    string  `json:"campaign"`
		Shards      int     `json:"shards"`
		Planned     int     `json:"planned"`
		Done        int     `json:"done"`
		Merged      int     `json:"merged"`
		ETA         float64 `json:"eta_seconds"`
		Complete    bool    `json:"complete"`
		ShardStatus []struct {
			Shard int  `json:"shard"`
			Done  int  `json:"done"`
			Final bool `json:"final"`
		} `json:"shard_status"`
	}
	getJSON(t, ts.URL+"/fleet", &rep)
	if rep.Campaign != "synthetic" || rep.Shards != 2 || len(rep.ShardStatus) != 2 {
		t.Fatalf("fleet report: %+v", rep)
	}
	if rep.Planned != 7 || rep.Done != 7 || rep.Merged != 7 || !rep.Complete || rep.ETA != 0 {
		t.Errorf("fleet totals wrong: %+v", rep)
	}
	for _, st := range rep.ShardStatus {
		if !st.Final {
			t.Errorf("shard %d not final: %+v", st.Shard, st)
		}
	}

	// GET /fleet/results must serve exactly the merge-at-end artifact.
	merged, err := sweep.MergeResults(shard0, shard1)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := sweep.WriteJSONL(&want, merged); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/fleet/results")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("incremental /fleet/results differs from merge-at-end:\ngot:  %s\nwant: %s", got, want.Bytes())
	}

	// A duplicate unit must be rejected with 409 and leave the merge
	// untouched.
	resp2, _ := postJSON(t, ts.URL+"/fleet/results", sweep.ResultBatch{
		Campaign: "synthetic", Shard: 0, Results: []sweep.Result{shard0[0]},
	})
	if resp2.StatusCode != http.StatusConflict {
		t.Errorf("duplicate batch: status %d, want 409", resp2.StatusCode)
	}
	var rep2 struct {
		Merged int `json:"merged"`
	}
	getJSON(t, ts.URL+"/fleet", &rep2)
	if rep2.Merged != 7 {
		t.Errorf("duplicate batch mutated the merge: %d units", rep2.Merged)
	}
}

func TestFleetHeartbeatValidation(t *testing.T) {
	ts, _ := newTestServer(t)
	bad := []sweep.Heartbeat{
		{Campaign: "", Shard: 0, Shards: 1},
		{Campaign: "c", Shard: -1, Shards: 2},
		{Campaign: "c", Shard: 2, Shards: 2},
		{Campaign: "c", Shard: 0, Shards: 0},
	}
	for _, hb := range bad {
		resp, _ := postJSON(t, ts.URL+"/fleet/heartbeat", hb)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("heartbeat %+v: status %d, want 400", hb, resp.StatusCode)
		}
	}
}

// TestFleetCampaignReset pins the one-campaign-at-a-time contract: a
// heartbeat for a new campaign resets shard tracking and the aggregate.
func TestFleetCampaignReset(t *testing.T) {
	ts, _ := newTestServer(t)
	rs := syntheticResults(2)
	postJSON(t, ts.URL+"/fleet/heartbeat", sweep.Heartbeat{Campaign: "a", Shard: 0, Shards: 1, Planned: 2})
	postJSON(t, ts.URL+"/fleet/results", sweep.ResultBatch{Campaign: "a", Shard: 0, Results: rs[:1]})
	postJSON(t, ts.URL+"/fleet/heartbeat", sweep.Heartbeat{Campaign: "b", Shard: 0, Shards: 1, Planned: 2})
	var rep struct {
		Campaign string `json:"campaign"`
		Merged   int    `json:"merged"`
	}
	getJSON(t, ts.URL+"/fleet", &rep)
	if rep.Campaign != "b" || rep.Merged != 0 {
		t.Errorf("campaign switch did not reset: %+v", rep)
	}
	// The same unit may now merge again — it belongs to the new campaign.
	resp, _ := postJSON(t, ts.URL+"/fleet/results", sweep.ResultBatch{Campaign: "b", Shard: 0, Results: rs[:1]})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("re-merge after reset: status %d", resp.StatusCode)
	}
}

// TestFleetStragglerDetection feeds the state machine directly with an
// injected clock: a shard with stale heartbeats, or one whose ETA dwarfs
// the fleet median, must be flagged.
func TestFleetStragglerDetection(t *testing.T) {
	now := time.Unix(1000, 0)
	f := newFleetState()
	f.now = func() time.Time { return now }

	add := func(shard, done, planned int, elapsed float64) {
		f.shards[shard] = &fleetShard{
			hb: sweep.Heartbeat{
				Campaign: "c", Shard: shard, Shards: 3,
				Planned: planned, Done: done, Elapsed: elapsed,
			},
			seen: now,
		}
	}
	// Shards 0 and 1 complete 1 unit/s with 10 left (ETA 10s); shard 2
	// crawls at 0.1 unit/s with 10 left (ETA 100s > 2× median).
	add(0, 10, 20, 10)
	add(1, 10, 20, 10)
	add(2, 2, 12, 20)

	rep := f.report()
	if len(rep.ShardStatus) != 3 {
		t.Fatalf("want 3 shards, got %d", len(rep.ShardStatus))
	}
	if rep.ShardStatus[0].Straggler || rep.ShardStatus[1].Straggler {
		t.Errorf("healthy shards flagged: %+v", rep.ShardStatus)
	}
	if !rep.ShardStatus[2].Straggler {
		t.Errorf("slow shard not flagged: %+v", rep.ShardStatus[2])
	}
	if rep.ETA < 45 { // campaign ETA tracks the slowest shard (ETA 100s)
		t.Errorf("campaign ETA %v should track the straggler", rep.ETA)
	}

	// Staleness: move the clock 20s past the last heartbeat; every live
	// shard is now stale, hence a straggler.
	now = now.Add(20 * time.Second)
	rep = f.report()
	for _, st := range rep.ShardStatus {
		if !st.Straggler {
			t.Errorf("stale shard %d not flagged", st.Shard)
		}
	}
}

// TestFleetSSE watches /fleet/events while a heartbeat and a merge land.
func TestFleetSSE(t *testing.T) {
	ts, _ := newTestServer(t)

	req, _ := http.NewRequest("GET", ts.URL+"/fleet/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("content type %q", ct)
	}

	events := make(chan string, 8)
	go func() {
		buf := make([]byte, 4096)
		var acc string
		for {
			n, err := resp.Body.Read(buf)
			if n > 0 {
				acc += string(buf[:n])
				for {
					i := strings.Index(acc, "\n\n")
					if i < 0 {
						break
					}
					events <- acc[:i]
					acc = acc[i+2:]
				}
			}
			if err != nil {
				close(events)
				return
			}
		}
	}()

	// Give the subscriber a beat to register before publishing.
	time.Sleep(50 * time.Millisecond)
	postJSON(t, ts.URL+"/fleet/heartbeat", sweep.Heartbeat{Campaign: "sse", Shard: 0, Shards: 1, Planned: 1})
	postJSON(t, ts.URL+"/fleet/results", sweep.ResultBatch{Campaign: "sse", Shard: 0, Results: syntheticResults(1)})

	want := map[string]bool{"heartbeat": false, "merge": false}
	deadline := time.After(5 * time.Second)
	for !want["heartbeat"] || !want["merge"] {
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatalf("stream closed early; got %v", want)
			}
			for kind := range want {
				if strings.Contains(ev, "event: "+kind) {
					want[kind] = true
				}
			}
		case <-deadline:
			t.Fatalf("timed out waiting for SSE events; got %v", want)
		}
	}
}
