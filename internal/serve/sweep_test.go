package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/coyote-te/coyote/internal/delta"
	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/exp"
	"github.com/coyote-te/coyote/internal/sweep"
	"github.com/coyote-te/coyote/internal/topo"
)

// newSweepServer wires a server to a micro-campaign (the three cheapest
// registry experiments) backed by a temp-dir cache.
func newSweepServer(t *testing.T) *httptest.Server {
	t.Helper()
	g, err := topo.Load("Gambia")
	if err != nil {
		t.Fatal(err)
	}
	ses, err := delta.NewSession(g, demand.MarginBox(demand.Gravity(g, 1), 2), delta.Config{
		OptIters: 40,
		AdvIters: 1,
		Samples:  2,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cache, err := sweep.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := New(ses)
	srv.EnableSweep(sweep.Campaign{
		Name:  "micro",
		Cfg:   exp.Quick(),
		Units: sweep.Experiments("negative-np", "negative-path", "running"),
	}, sweep.Options{Cache: cache, Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestSweepEndpoint(t *testing.T) {
	ts := newSweepServer(t)

	var status map[string]any
	getJSON(t, ts.URL+"/sweep", &status)
	if status["campaign"] != "micro" || status["unit_count"].(float64) != 3 {
		t.Fatalf("status = %v", status)
	}
	if status["cached"].(float64) != 0 || status["runs"].(float64) != 0 {
		t.Fatalf("fresh server reports prior state: %v", status)
	}

	// First run computes everything.
	resp, body := postJSON(t, ts.URL+"/sweep", map[string]any{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /sweep: status %d (%v)", resp.StatusCode, body)
	}
	if body["misses"].(float64) != 3 || body["hits"].(float64) != 0 {
		t.Fatalf("first run: %v hits, %v misses", body["hits"], body["misses"])
	}
	if _, ok := body["results"]; !ok {
		t.Fatal("first run: no results in response")
	}

	// Second run is all cache hits, and verify mode agrees.
	resp, body = postJSON(t, ts.URL+"/sweep?results=0", map[string]any{"verify": true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second POST /sweep: status %d (%v)", resp.StatusCode, body)
	}
	if body["hits"].(float64) != 3 || body["misses"].(float64) != 0 {
		t.Fatalf("second run: %v hits, %v misses", body["hits"], body["misses"])
	}
	if _, ok := body["results"]; ok {
		t.Fatal("results=0 still returned tables")
	}

	// Status now reflects the cache and counters.
	getJSON(t, ts.URL+"/sweep", &status)
	if status["cached"].(float64) != 3 || status["runs"].(float64) != 2 {
		t.Fatalf("post-run status = %v", status)
	}

	// Unit filter runs a sub-campaign; unknown units are rejected.
	resp, body = postJSON(t, ts.URL+"/sweep", map[string]any{"units": []string{"exp/running"}})
	if resp.StatusCode != http.StatusOK || body["unit_count"].(float64) != 1 {
		t.Fatalf("filtered run: status %d body %v", resp.StatusCode, body)
	}
	resp, _ = postJSON(t, ts.URL+"/sweep", map[string]any{"units": []string{"exp/nope"}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown unit filter: status %d", resp.StatusCode)
	}
}
