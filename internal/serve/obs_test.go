package serve

import (
	"net/http"
	"testing"

	"github.com/coyote-te/coyote/internal/obs"
)

// TestMetricsEndpoint scrapes GET /metrics through the instrumented
// handler and validates it with the strict exposition parser — the same
// check CI runs against a live coyote-serve via promcheck. Creating the
// session above guarantees the lp, session, and par families have
// recorded samples; the scrape itself feeds the http family.
func TestMetricsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)

	// One instrumented request before the scrape so the http family exists
	// with a concrete route label.
	var st map[string]any
	getJSON(t, ts.URL+"/state", &st)
	if _, ok := st["dropped_events"]; !ok {
		t.Fatal("/state is missing dropped_events")
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}

	families, err := obs.ParseProm(resp.Body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	byName := make(map[string]obs.ParsedFamily, len(families))
	for _, f := range families {
		byName[f.Name] = f
	}
	for _, want := range []string{
		"coyote_lp_solves_total",
		"coyote_lp_iterations_total",
		"coyote_session_events_total",
		"coyote_session_recompute_seconds",
		"coyote_par_loops_total",
		"coyote_http_requests_total",
		"coyote_http_request_seconds",
	} {
		f, ok := byName[want]
		if !ok {
			t.Errorf("family %s missing from /metrics", want)
			continue
		}
		if len(f.Samples) == 0 {
			t.Errorf("family %s has no samples", want)
		}
	}

	// The instrumented request above must be attributed to its route
	// pattern, not the raw URL (bounded label cardinality).
	found := false
	for _, s := range byName["coyote_http_requests_total"].Samples {
		if s.Labels["path"] == "GET /state" && s.Labels["code"] == "200" {
			found = true
		}
	}
	if !found {
		t.Errorf("no coyote_http_requests_total sample for path=\"GET /state\" code=\"200\": %+v",
			byName["coyote_http_requests_total"].Samples)
	}
}
