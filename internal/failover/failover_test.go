package failover

import (
	"testing"

	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/graph"
)

// ringWithSpur: a 4-ring (survives any single failure) plus a spur node
// hanging off one bridge link (whose failure disconnects it).
func ringWithSpur() *graph.Graph {
	g := graph.New()
	g.AddNodes(4)
	for i := 0; i < 4; i++ {
		g.AddLink(graph.NodeID(i), graph.NodeID((i+1)%4), 1, 1)
	}
	spur := g.AddNode("spur")
	g.AddLink(graph.NodeID(0), spur, 1, 1)
	return g
}

func smallBox(g *graph.Graph) *demand.Box {
	base := demand.NewMatrix(g.NumNodes())
	for s := 0; s < g.NumNodes(); s++ {
		for t := 0; t < g.NumNodes(); t++ {
			if s != t {
				base.Set(graph.NodeID(s), graph.NodeID(t), 0.2)
			}
		}
	}
	return demand.MarginBox(base, 2)
}

func TestPrecomputePlan(t *testing.T) {
	g := ringWithSpur()
	plan, err := Precompute(g, smallBox(g), Config{OptIters: 80, AdvIters: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Normal == nil || plan.NormalPerf <= 0 {
		t.Fatal("missing normal-case routing")
	}
	if len(plan.Scenarios) != len(g.Links()) {
		t.Fatalf("%d scenarios, want %d", len(plan.Scenarios), len(g.Links()))
	}
	// Exactly one bridge: the spur link.
	if nd := plan.NumDisconnecting(); nd != 1 {
		t.Fatalf("%d disconnecting failures, want 1", nd)
	}
	for _, sc := range plan.Scenarios {
		if sc.Disconnected {
			if sc.Routing != nil {
				t.Fatal("disconnected scenario must not carry a routing")
			}
			continue
		}
		if sc.Routing == nil {
			t.Fatalf("scenario %d missing routing", sc.Failed)
		}
		if err := sc.Routing.Validate(); err != nil {
			t.Fatalf("scenario %d routing invalid: %v", sc.Failed, err)
		}
		if sc.Perf > sc.ECMPPerf+1e-9 {
			t.Fatalf("scenario %d: COYOTE %g worse than ECMP %g", sc.Failed, sc.Perf, sc.ECMPPerf)
		}
		if sc.Survivor.NumEdges() != g.NumEdges()-2 {
			t.Fatalf("scenario %d survivor has %d edges", sc.Failed, sc.Survivor.NumEdges())
		}
	}
	if plan.WorstScenario() == nil {
		t.Fatal("expected a worst scenario")
	}
}

func TestWorstScenarioSkipsDisconnected(t *testing.T) {
	g := ringWithSpur()
	plan, err := Precompute(g, smallBox(g), Config{OptIters: 60, AdvIters: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	w := plan.WorstScenario()
	if w == nil || w.Disconnected {
		t.Fatal("worst scenario must be a connected one")
	}
}

func TestPrecomputeNodes(t *testing.T) {
	g := ringWithSpur()
	scenarios, err := PrecomputeNodes(g, smallBox(g), Config{OptIters: 60, AdvIters: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) != g.NumNodes() {
		t.Fatalf("%d node scenarios, want %d", len(scenarios), g.NumNodes())
	}
	// Failing node 0 disconnects the spur (it hangs off node 0); failing
	// the spur keeps the ring intact.
	if !scenarios[0].Disconnected {
		t.Fatal("failing node 0 must disconnect the spur")
	}
	spur, _ := g.NodeByName("spur")
	sc := scenarios[spur]
	if sc.Disconnected {
		t.Fatal("failing the spur leaves the ring connected")
	}
	if sc.Routing == nil || sc.Perf <= 0 {
		t.Fatal("spur-failure scenario missing routing")
	}
	if err := sc.Routing.Validate(); err != nil {
		t.Fatalf("node scenario routing invalid: %v", err)
	}
}

func TestPrecomputeGroups(t *testing.T) {
	g := ringWithSpur()
	links := g.Links() // 4 ring links then the spur bridge
	groups := [][]graph.EdgeID{
		{links[0]},           // single ring link: survivable
		{links[0], links[2]}, // two opposite ring links: partitions the ring
		{links[4]},           // the spur bridge: disconnects
		{},                   // empty group: the normal topology
	}
	scenarios, err := PrecomputeGroups(g, smallBox(g), groups, Config{OptIters: 60, AdvIters: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) != len(groups) {
		t.Fatalf("%d scenarios, want %d", len(scenarios), len(groups))
	}
	if scenarios[0].Disconnected || scenarios[0].Routing == nil {
		t.Fatal("single ring-link group must be survivable")
	}
	if scenarios[0].Survivor.NumEdges() != g.NumEdges()-2 {
		t.Fatalf("survivor has %d edges", scenarios[0].Survivor.NumEdges())
	}
	if !scenarios[1].Disconnected {
		t.Fatal("opposite ring links must partition the network")
	}
	if !scenarios[2].Disconnected {
		t.Fatal("spur bridge group must disconnect")
	}
	if scenarios[3].Disconnected || scenarios[3].Routing == nil {
		t.Fatal("empty group is the normal topology")
	}
	if scenarios[3].Survivor.NumEdges() != g.NumEdges() {
		t.Fatal("empty group must keep every edge")
	}
	for i, sc := range scenarios {
		if sc.Disconnected {
			continue
		}
		if err := sc.Routing.Validate(); err != nil {
			t.Fatalf("group %d routing invalid: %v", i, err)
		}
		if sc.Perf > sc.ECMPPerf+1e-9 {
			t.Fatalf("group %d: COYOTE %g worse than ECMP %g", i, sc.Perf, sc.ECMPPerf)
		}
	}
}
