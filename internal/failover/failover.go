// Package failover precomputes COYOTE routing configurations for failure
// scenarios. §VI-A of the paper notes that, because COYOTE routing is
// static, "routing configurations for failure scenarios (e.g., every
// single link/node failure) can be precomputed"; this package does exactly
// that for single-link failures (Precompute) and single-node failures
// (PrecomputeNodes): for each surviving topology it rebuilds the augmented
// DAGs, re-optimizes the splitting ratios against the same uncertainty
// bounds, and records the achievable worst-case performance.
package failover

import (
	"github.com/coyote-te/coyote/internal/dagx"
	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/gpopt"
	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/oblivious"
	"github.com/coyote-te/coyote/internal/par"
	"github.com/coyote-te/coyote/internal/pdrouting"
)

// Config tunes the per-scenario optimization (kept lighter than the
// primary configuration since there is one run per link).
type Config struct {
	OptIters int // optimizer gradient steps per scenario (default 250)
	AdvIters int // adversarial rounds per scenario (default 3)
	Samples  int // adversary corner samples (default 4)
	Eps      float64
	Seed     int64
	Workers  int // worker-pool size for scenarios and evaluation (≤ 0 = GOMAXPROCS); never changes results
}

func (c Config) withDefaults() Config {
	if c.OptIters <= 0 {
		c.OptIters = 250
	}
	if c.AdvIters <= 0 {
		c.AdvIters = 3
	}
	if c.Samples <= 0 {
		c.Samples = 4
	}
	return c
}

// Scenario is one precomputed single-link-failure configuration.
type Scenario struct {
	// Failed is the representative edge ID of the failed link in the
	// original graph.
	Failed graph.EdgeID
	// Disconnected reports that the failure partitions the network; no
	// routing is computed in that case.
	Disconnected bool
	// Survivor is the topology with the link removed (its own edge IDs).
	Survivor *graph.Graph
	// Routing is the re-optimized COYOTE configuration on Survivor.
	Routing *pdrouting.Routing
	// Perf and ECMPPerf are worst-case normalized utilizations on the
	// surviving topology.
	Perf     float64
	ECMPPerf float64
}

// Plan holds the normal-case routing plus one scenario per physical link.
type Plan struct {
	Normal     *pdrouting.Routing
	NormalPerf float64
	Scenarios  []Scenario
}

// Precompute builds the failure plan: the normal-case COYOTE configuration
// plus a re-optimized configuration for every single-link failure.
// Scenarios are computed in parallel.
func Precompute(g *graph.Graph, box *demand.Box, cfg Config) (*Plan, error) {
	cfg = cfg.withDefaults()
	evalCfg := oblivious.EvalConfig{Eps: cfg.Eps, Samples: cfg.Samples, Seed: cfg.Seed, Workers: cfg.Workers}
	opts := oblivious.Options{
		Optimizer: gpopt.Config{Iters: cfg.OptIters},
		Eval:      evalCfg,
		AdvIters:  cfg.AdvIters,
		Workers:   cfg.Workers,
	}

	dags := dagx.BuildAll(g, dagx.Augmented)
	ev := oblivious.NewEvaluator(g, dags, box, evalCfg)
	normal, rep := oblivious.OptimizeWithEvaluator(g, dags, ev, opts)
	plan := &Plan{Normal: normal, NormalPerf: rep.Perf.Ratio}

	links := g.Links()
	plan.Scenarios = make([]Scenario, len(links))
	par.For(cfg.Workers, len(links), func(i int) {
		plan.Scenarios[i] = computeScenario(g, box, links[i], opts, evalCfg)
	})
	return plan, nil
}

func computeScenario(g *graph.Graph, box *demand.Box, link graph.EdgeID, opts oblivious.Options, evalCfg oblivious.EvalConfig) Scenario {
	sc := Scenario{Failed: link}
	survivor := g.WithoutLink(link)
	sc.Survivor = survivor
	if !survivor.Connected() {
		sc.Disconnected = true
		return sc
	}
	dags := dagx.BuildAll(survivor, dagx.Augmented)
	ev := oblivious.NewEvaluator(survivor, dags, box, evalCfg)
	routing, rep := oblivious.OptimizeWithEvaluator(survivor, dags, ev, opts)
	sc.Routing = routing
	sc.Perf = rep.Perf.Ratio
	sc.ECMPPerf = ev.Perf(oblivious.ECMPOnDAGs(survivor, dags)).Ratio
	return sc
}

// WorstScenario returns the scenario with the highest post-failure PERF
// (ignoring disconnecting failures), or nil if none exists.
func (p *Plan) WorstScenario() *Scenario {
	var worst *Scenario
	for i := range p.Scenarios {
		sc := &p.Scenarios[i]
		if sc.Disconnected {
			continue
		}
		if worst == nil || sc.Perf > worst.Perf {
			worst = sc
		}
	}
	return worst
}

// NumDisconnecting counts failures that partition the network (bridges).
func (p *Plan) NumDisconnecting() int {
	n := 0
	for i := range p.Scenarios {
		if p.Scenarios[i].Disconnected {
			n++
		}
	}
	return n
}

// GroupScenario is one precomputed multi-link-failure configuration: a
// whole group of links (a shared-risk link group, or a sampled k-link
// combination from the scenario engine) fails at once and the survivors
// are re-optimized.
type GroupScenario struct {
	// Failed lists the representative edge IDs (in the original graph) of
	// the links that fail together.
	Failed []graph.EdgeID
	// Disconnected reports that the group's failure partitions the
	// network; no routing is computed in that case.
	Disconnected bool
	// Survivor is the topology with the group removed (its own edge IDs).
	Survivor *graph.Graph
	// Routing is the re-optimized COYOTE configuration on Survivor.
	Routing *pdrouting.Routing
	// Perf and ECMPPerf are worst-case normalized utilizations on the
	// surviving topology.
	Perf     float64
	ECMPPerf float64
	// DAGs are the survivor's augmented shortest-path DAGs the scenario
	// was optimized over, and Ev the evaluator holding the OPTDAG and
	// max-flow normalizations (exact-LP solves) paid for while
	// precomputing it. Both depend only on (Survivor, DAGs), never on the
	// uncertainty box, so a session swapping the scenario in
	// (delta.Session.Fail) reuses them via Ev.WithBox and the failure
	// reaction re-pays no normalization — that reuse is what makes the
	// warm reaction latency near-O(affected) end to end (DESIGN.md §12).
	DAGs []*dagx.DAG
	Ev   *oblivious.Evaluator
}
// the multi-link generalization of Precompute that internal/scen's SRLG
// and k-link failure suites feed. Groups are computed in parallel; an
// empty group yields the normal-topology configuration.
func PrecomputeGroups(g *graph.Graph, box *demand.Box, groups [][]graph.EdgeID, cfg Config) ([]GroupScenario, error) {
	cfg = cfg.withDefaults()
	evalCfg := oblivious.EvalConfig{Eps: cfg.Eps, Samples: cfg.Samples, Seed: cfg.Seed, Workers: cfg.Workers}
	opts := oblivious.Options{
		Optimizer: gpopt.Config{Iters: cfg.OptIters},
		Eval:      evalCfg,
		AdvIters:  cfg.AdvIters,
		Workers:   cfg.Workers,
	}
	out := make([]GroupScenario, len(groups))
	par.For(cfg.Workers, len(groups), func(i int) {
		out[i] = computeGroupScenario(g, box, groups[i], opts, evalCfg)
	})
	return out, nil
}

func computeGroupScenario(g *graph.Graph, box *demand.Box, group []graph.EdgeID, opts oblivious.Options, evalCfg oblivious.EvalConfig) GroupScenario {
	sc := GroupScenario{Failed: append([]graph.EdgeID(nil), group...)}
	survivor := g.WithoutLinks(group)
	sc.Survivor = survivor
	if !survivor.Connected() {
		sc.Disconnected = true
		return sc
	}
	dags := dagx.BuildAll(survivor, dagx.Augmented)
	ev := oblivious.NewEvaluator(survivor, dags, box, evalCfg)
	routing, rep := oblivious.OptimizeWithEvaluator(survivor, dags, ev, opts)
	sc.Routing = routing
	sc.Perf = rep.Perf.Ratio
	sc.ECMPPerf = ev.Perf(oblivious.ECMPOnDAGs(survivor, dags)).Ratio
	sc.DAGs = dags
	sc.Ev = ev
	return sc
}

// NodeScenario is one precomputed single-node-failure configuration: the
// failed router is isolated (its links removed) and its demands drop out
// of the uncertainty set; the rest of the network is re-optimized.
type NodeScenario struct {
	Failed       graph.NodeID
	Disconnected bool // the survivors are no longer mutually reachable
	Routing      *pdrouting.Routing
	Perf         float64
}

// PrecomputeNodes builds per-node failure configurations ("every single
// link/node failure can be precomputed", §VI-A). The failed node's own
// demands are zeroed; scenarios whose survivors are partitioned are marked
// Disconnected.
func PrecomputeNodes(g *graph.Graph, box *demand.Box, cfg Config) ([]NodeScenario, error) {
	cfg = cfg.withDefaults()
	evalCfg := oblivious.EvalConfig{Eps: cfg.Eps, Samples: cfg.Samples, Seed: cfg.Seed, Workers: cfg.Workers}
	opts := oblivious.Options{
		Optimizer: gpopt.Config{Iters: cfg.OptIters},
		Eval:      evalCfg,
		AdvIters:  cfg.AdvIters,
		Workers:   cfg.Workers,
	}
	out := make([]NodeScenario, g.NumNodes())
	par.For(cfg.Workers, g.NumNodes(), func(v int) {
		out[v] = computeNodeScenario(g, box, graph.NodeID(v), opts, evalCfg)
	})
	return out, nil
}

func computeNodeScenario(g *graph.Graph, box *demand.Box, failed graph.NodeID, opts oblivious.Options, evalCfg oblivious.EvalConfig) NodeScenario {
	sc := NodeScenario{Failed: failed}
	// Remove every link incident to the failed node.
	survivor := g
	for {
		removed := false
		for _, id := range survivor.Links() {
			e := survivor.Edge(id)
			if e.From == failed || e.To == failed {
				survivor = survivor.WithoutLink(id)
				removed = true
				break
			}
		}
		if !removed {
			break
		}
	}
	if !survivorsConnected(survivor, failed) {
		sc.Disconnected = true
		return sc
	}
	// Zero the failed node's demands in the box.
	min := box.Min.Clone()
	max := box.Max.Clone()
	n := min.N
	for u := 0; u < n; u++ {
		min.D[int(failed)*n+u] = 0
		min.D[u*n+int(failed)] = 0
		max.D[int(failed)*n+u] = 0
		max.D[u*n+int(failed)] = 0
	}
	sbox := demand.NewBox(min, max)
	dags := dagx.BuildAll(survivor, dagx.Augmented)
	ev := oblivious.NewEvaluator(survivor, dags, sbox, evalCfg)
	routing, rep := oblivious.OptimizeWithEvaluator(survivor, dags, ev, opts)
	sc.Routing = routing
	sc.Perf = rep.Perf.Ratio
	return sc
}

// survivorsConnected reports whether all nodes other than failed remain
// mutually reachable.
func survivorsConnected(g *graph.Graph, failed graph.NodeID) bool {
	n := g.NumNodes()
	if n <= 2 {
		return true
	}
	start := graph.NodeID(0)
	if start == failed {
		start = 1
	}
	reach := func(forward bool) int {
		seen := make([]bool, n)
		seen[start] = true
		stack := []graph.NodeID{start}
		count := 1
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			var ids []graph.EdgeID
			if forward {
				ids = g.Out(u)
			} else {
				ids = g.In(u)
			}
			for _, id := range ids {
				var v graph.NodeID
				if forward {
					v = g.Edge(id).To
				} else {
					v = g.Edge(id).From
				}
				if v != failed && !seen[v] {
					seen[v] = true
					count++
					stack = append(stack, v)
				}
			}
		}
		return count
	}
	want := n - 1
	return reach(true) == want && reach(false) == want
}
