package ospf

import (
	"math"
	"testing"

	"github.com/coyote-te/coyote/internal/graph"
)

// fig1d reproduces the paper's Fig. 1d: inserting one fake node at s1 whose
// adjacency maps to s2 makes s1 split 2/3 toward s2 and 1/3 toward v.
func fig1d(t *testing.T) (*graph.Graph, map[string]graph.NodeID, *LSDB) {
	t.Helper()
	g := graph.New()
	ids := map[string]graph.NodeID{
		"s1": g.AddNode("s1"),
		"s2": g.AddNode("s2"),
		"v":  g.AddNode("v"),
		"t":  g.AddNode("t"),
	}
	g.AddLink(ids["s1"], ids["s2"], 1, 1)
	g.AddLink(ids["s1"], ids["v"], 1, 1)
	g.AddLink(ids["s2"], ids["v"], 1, 1)
	g.AddLink(ids["s2"], ids["t"], 1, 1)
	g.AddLink(ids["v"], ids["t"], 1, 1)
	db := NewLSDB(g)
	// s1's real shortest paths to t cost 2 (via s2 and via v). A fake node
	// at cost 1 + 1 ties with them and resolves to s2.
	err := db.Inject(FakeNode{
		Name: "f1", Attached: ids["s1"], MapsTo: ids["s2"], Dest: ids["t"],
		CostUp: 1, CostDown: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, ids, db
}

func TestFig1dSplit(t *testing.T) {
	_, ids, db := fig1d(t)
	fibs := db.SPF(ids["t"])
	fib := fibs[ids["s1"]]
	if fib == nil {
		t.Fatal("s1 has no FIB toward t")
	}
	// s2 appears twice (real + fake), v once.
	if fib[ids["s2"]] != 2 || fib[ids["v"]] != 1 {
		t.Fatalf("s1 FIB = %v, want s2:2 v:1", fib)
	}
	ratios := fib.Ratios()
	if math.Abs(ratios[ids["s2"]]-2.0/3) > 1e-12 || math.Abs(ratios[ids["v"]]-1.0/3) > 1e-12 {
		t.Fatalf("s1 ratios = %v, want 2/3 and 1/3 (paper Fig. 1d)", ratios)
	}
}

func TestSPFWithoutLiesMatchesPlainECMP(t *testing.T) {
	g, ids, _ := fig1d(t)
	db := NewLSDB(g) // no lies
	fibs := db.SPF(ids["t"])
	if fib := fibs[ids["s1"]]; fib[ids["s2"]] != 1 || fib[ids["v"]] != 1 {
		t.Fatalf("plain s1 FIB = %v, want s2:1 v:1", fib)
	}
	if fib := fibs[ids["s2"]]; fib[ids["t"]] != 1 || len(fib) != 1 {
		t.Fatalf("plain s2 FIB = %v, want t:1 only", fib)
	}
	if fibs[ids["t"]] != nil {
		t.Fatal("destination must have no FIB")
	}
}

func TestFakeShortcutAttractsRemoteTraffic(t *testing.T) {
	// A fake node that strictly shortens its router's distance also changes
	// upstream routers' paths — the LSDB must propagate that honestly.
	g := graph.New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	d := g.AddNode("d")
	g.AddLink(a, b, 1, 1)
	g.AddLink(b, d, 1, 10) // expensive
	g.AddLink(a, c, 1, 1)
	g.AddLink(c, d, 1, 2)
	db := NewLSDB(g)
	// Without lies, a routes via c (1+2=3 < 1+10=11).
	fibs := db.SPF(d)
	if fib := fibs[a]; fib[c] != 1 || len(fib) != 1 {
		t.Fatalf("a FIB = %v, want c only", fib)
	}
	// Lie at b: fake path to d at cost 1. Now a's path via b costs 2 < 3.
	if err := db.Inject(FakeNode{Name: "f", Attached: b, MapsTo: d, Dest: d, CostUp: 0.5, CostDown: 0.5}); err != nil {
		t.Fatal(err)
	}
	fibs = db.SPF(d)
	if fib := fibs[a]; fib[b] != 1 || len(fib) != 1 {
		t.Fatalf("after lie, a FIB = %v, want b only", fib)
	}
	if fib := fibs[b]; fib[d] != 1 || len(fib) != 1 {
		t.Fatalf("after lie, b FIB = %v, want d (via fake) only", fib)
	}
}

func TestInjectValidation(t *testing.T) {
	g := graph.New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	g.AddLink(a, b, 1, 1)
	db := NewLSDB(g)
	if err := db.Inject(FakeNode{Attached: a, MapsTo: c, Dest: b, CostUp: 1, CostDown: 1}); err == nil {
		t.Fatal("mapping to a non-neighbor should fail")
	}
	if err := db.Inject(FakeNode{Attached: a, MapsTo: a, Dest: b, CostUp: 1, CostDown: 1}); err == nil {
		t.Fatal("mapping to self should fail")
	}
	if err := db.Inject(FakeNode{Attached: a, MapsTo: b, Dest: b, CostUp: 0, CostDown: 1}); err == nil {
		t.Fatal("zero CostUp should fail")
	}
	if err := db.Inject(FakeNode{Attached: a, MapsTo: b, Dest: b, CostUp: 1, CostDown: 0}); err == nil {
		t.Fatal("zero CostDown should fail (error message promises non-positive costs are rejected)")
	}
	if err := db.Inject(FakeNode{Attached: a, MapsTo: b, Dest: b, CostUp: 1, CostDown: -1}); err == nil {
		t.Fatal("negative CostDown should fail")
	}
	n := graph.NodeID(g.NumNodes())
	if err := db.Inject(FakeNode{Attached: n, MapsTo: b, Dest: b, CostUp: 1, CostDown: 1}); err == nil {
		t.Fatal("out-of-range Attached should fail at injection, not panic in SPF")
	}
	if err := db.Inject(FakeNode{Attached: a, MapsTo: b, Dest: n, CostUp: 1, CostDown: 1}); err == nil {
		t.Fatal("out-of-range Dest should fail at injection, not panic in SPF")
	}
	if err := db.Inject(FakeNode{Attached: a, MapsTo: n, Dest: b, CostUp: 1, CostDown: 1}); err == nil {
		t.Fatal("out-of-range MapsTo should fail")
	}
	if err := db.Inject(FakeNode{Attached: a, MapsTo: b, Dest: -1, CostUp: 1, CostDown: 1}); err == nil {
		t.Fatal("negative Dest should fail")
	}
	if err := db.Inject(FakeNode{Attached: a, MapsTo: b, Dest: a, CostUp: 1, CostDown: 1}); err == nil {
		t.Fatal("Dest == Attached lie should fail: a router cannot be lied to about itself")
	}
	if err := db.Inject(FakeNode{Attached: a, MapsTo: b, Dest: b, CostUp: 1, CostDown: 0.5}); err != nil {
		t.Fatalf("valid fake rejected: %v", err)
	}
	if db.NumFakeNodes() != 1 {
		t.Fatalf("NumFakeNodes = %d, want 1", db.NumFakeNodes())
	}
}

func TestLiesAreDestinationScoped(t *testing.T) {
	g, ids, db := fig1d(t)
	_ = g
	// The lie targets destination t; SPF toward v must be unaffected.
	fibs := db.SPF(ids["v"])
	if fib := fibs[ids["s1"]]; fib[ids["s2"]] != 0 && fib[ids["s2"]] != 1 {
		// s1's SP to v is direct (cost 1); s2 adjacency must not gain
		// multiplicity from the t-scoped fake.
		t.Fatalf("s1 FIB toward v = %v unexpectedly altered by t-scoped lie", fib)
	}
	if fib := fibs[ids["s1"]]; fib[ids["v"]] != 1 {
		t.Fatalf("s1 FIB toward v = %v, want direct v:1", fib)
	}
}
