// Package ospf models the link-state view that COYOTE manipulates: a
// link-state database (LSDB) holding the real topology plus injected fake
// nodes and links (the "lies" of §V-D), the SPF computation every router
// runs over that database, and the resulting FIBs with ECMP next-hop
// multiplicities.
//
// A fake node f for destination t is advertised adjacent to exactly one
// real router u (cost u→f = CostUp) and claims reachability to t (cost
// f→t = CostDown). Routers treat f as any other vertex; if a path through
// f ties for shortest, u installs an extra FIB entry whose forwarding
// adjacency resolves to the real neighbor MapsTo — exactly the Fibbing
// mechanism ([8], [9]) Fig. 1d illustrates.
package ospf

import (
	"fmt"
	"math"

	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/spf"
)

// FakeNode is one injected lie, scoped to a single destination prefix.
type FakeNode struct {
	Name     string       // diagnostic label
	Attached graph.NodeID // the router being lied to
	MapsTo   graph.NodeID // real neighbor the fake adjacency resolves to
	Dest     graph.NodeID // destination (prefix owner) this lie is scoped to
	CostUp   float64      // advertised cost Attached → fake node
	CostDown float64      // advertised cost fake node → Dest
}

// LSDB is a link-state database: the real topology plus per-destination
// fake nodes.
type LSDB struct {
	G     *graph.Graph
	Fakes map[graph.NodeID][]FakeNode // keyed by destination
}

// NewLSDB wraps a real topology with an empty lie set.
func NewLSDB(g *graph.Graph) *LSDB {
	return &LSDB{G: g, Fakes: make(map[graph.NodeID][]FakeNode)}
}

// Inject adds a fake node to the database. Both advertised costs must be
// strictly positive (a zero CostDown would claim the fake node sits on the
// destination), all three node IDs must exist in the topology (an
// out-of-range Dest would otherwise only surface as an index panic deep
// inside SPF), and the lie must not target its own attachment router.
func (db *LSDB) Inject(f FakeNode) error {
	if f.CostUp <= 0 || f.CostDown <= 0 {
		return fmt.Errorf("ospf: fake node %q has non-positive costs", f.Name)
	}
	n := graph.NodeID(db.G.NumNodes())
	if f.Attached < 0 || f.Attached >= n {
		return fmt.Errorf("ospf: fake node %q attached to out-of-range router %d (topology has %d nodes)", f.Name, f.Attached, n)
	}
	if f.Dest < 0 || f.Dest >= n {
		return fmt.Errorf("ospf: fake node %q scoped to out-of-range destination %d (topology has %d nodes)", f.Name, f.Dest, n)
	}
	if f.MapsTo < 0 || f.MapsTo >= n {
		return fmt.Errorf("ospf: fake node %q maps to out-of-range router %d (topology has %d nodes)", f.Name, f.MapsTo, n)
	}
	if f.Dest == f.Attached {
		return fmt.Errorf("ospf: fake node %q lies to destination %d about itself", f.Name, f.Dest)
	}
	if f.MapsTo == f.Attached {
		return fmt.Errorf("ospf: fake node %q maps to its own router", f.Name)
	}
	if _, ok := db.G.FindEdge(f.Attached, f.MapsTo); !ok {
		return fmt.Errorf("ospf: fake node %q maps to %d, not a neighbor of %d", f.Name, f.MapsTo, f.Attached)
	}
	db.Fakes[f.Dest] = append(db.Fakes[f.Dest], f)
	return nil
}

// NumFakeNodes reports the total number of injected lies.
func (db *LSDB) NumFakeNodes() int {
	n := 0
	for _, fs := range db.Fakes {
		n += len(fs)
	}
	return n
}

// FIB is a router's forwarding table toward one destination: real next-hop
// neighbor → ECMP multiplicity (number of equal-cost adjacencies resolving
// to that neighbor, fake ones included).
type FIB map[graph.NodeID]int

// SPF runs the shortest-path-first computation every router performs over
// the augmented LSDB for destination dest, and returns each router's FIB.
// fibs[u] is nil for unreachable routers and for dest itself.
func (db *LSDB) SPF(dest graph.NodeID) []FIB {
	g := db.G
	n := g.NumNodes()
	fakes := db.Fakes[dest]

	// Distances toward dest over the augmented graph. Fake nodes only have
	// the path f → dest (CostDown), so dist(f) = CostDown, and they are
	// reachable only from their attachment router — each fake therefore
	// contributes exactly one constant-length candidate path
	// Attached → f → dest of cost CostUp+CostDown. Seeding those candidates
	// against dist[dest]=0 (final immediately) lets a single reverse
	// Dijkstra on the indexed heap cover the augmented graph without ever
	// materializing the fake vertices.
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[dest] = 0
	h := spf.NewHeap(n)
	h.DecreaseTo(dest, 0)
	for _, f := range fakes {
		if nd := f.CostUp + f.CostDown; nd < dist[f.Attached] {
			dist[f.Attached] = nd
			h.DecreaseTo(f.Attached, nd)
		}
	}
	for h.Len() > 0 {
		v, d := h.Pop()
		for _, id := range g.In(v) {
			e := g.Edge(id)
			if nd := e.Weight + d; nd < dist[e.From] {
				dist[e.From] = nd
				h.DecreaseTo(e.From, nd)
			}
		}
	}

	const tol = 1e-9
	fibs := make([]FIB, n)
	for u := 0; u < n; u++ {
		if graph.NodeID(u) == dest || math.IsInf(dist[u], 1) {
			continue
		}
		fib := make(FIB)
		for _, id := range g.Out(graph.NodeID(u)) {
			e := g.Edge(id)
			if math.Abs(dist[u]-(e.Weight+dist[e.To])) <= tol*math.Max(1, dist[u]) {
				fib[e.To]++
			}
		}
		for _, f := range fakes {
			if f.Attached != graph.NodeID(u) {
				continue
			}
			if math.Abs(dist[u]-(f.CostUp+f.CostDown)) <= tol*math.Max(1, dist[u]) {
				fib[f.MapsTo]++
			}
		}
		if len(fib) > 0 {
			fibs[u] = fib
		}
	}
	return fibs
}

// Ratios converts a FIB into splitting ratios per real next-hop.
func (f FIB) Ratios() map[graph.NodeID]float64 {
	total := 0
	for _, m := range f {
		total += m
	}
	out := make(map[graph.NodeID]float64, len(f))
	for nh, m := range f {
		out[nh] = float64(m) / float64(total)
	}
	return out
}
