package obs

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// The structured event log (DESIGN.md §11): a leveled, key-value JSONL
// logger with per-subsystem scopes. It obeys the same two contracts as the
// metrics registry — instrumentation never touches the numeric path, and
// emitting a record is cheap (one level check when filtered out, one short
// critical section when kept). Every record also lands in a fixed-size
// ring, so the last few hundred events are always available to the
// dashboard and GET /logtail even when no sink is configured.

// Level orders log records by severity.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the lowercase level name used in the JSONL records.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return "level(" + strconv.Itoa(int(l)) + ")"
	}
}

// ParseLevel resolves a level name ("debug", "info", "warn", "error").
func ParseLevel(s string) (Level, error) {
	switch s {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown log level %q (debug, info, warn, error)", s)
}

// Record is one structured log entry. KV holds alternating key/value
// pairs; keys must be strings.
type Record struct {
	Time  time.Time
	Level Level
	Scope string
	Msg   string
	KV    []any
}

// MarshalJSON renders the record as the flat JSONL object the sink writes:
// {"ts":...,"level":...,"scope":...,"msg":...,<kv pairs>}.
func (r Record) MarshalJSON() ([]byte, error) {
	return r.appendJSON(make([]byte, 0, 128)), nil
}

func (r Record) appendJSON(b []byte) []byte {
	b = append(b, `{"ts":`...)
	b = strconv.AppendQuote(b, r.Time.UTC().Format(time.RFC3339Nano))
	b = append(b, `,"level":`...)
	b = strconv.AppendQuote(b, r.Level.String())
	if r.Scope != "" {
		b = append(b, `,"scope":`...)
		b = strconv.AppendQuote(b, r.Scope)
	}
	b = append(b, `,"msg":`...)
	b = strconv.AppendQuote(b, r.Msg)
	for i := 0; i+1 < len(r.KV); i += 2 {
		key, ok := r.KV[i].(string)
		if !ok {
			key = fmt.Sprintf("%v", r.KV[i])
		}
		b = append(b, ',')
		b = strconv.AppendQuote(b, key)
		b = append(b, ':')
		b = appendLogValue(b, r.KV[i+1])
	}
	if len(r.KV)%2 != 0 {
		// A dangling key is a programming error; surface it rather than
		// silently dropping the value-less key.
		b = append(b, `,"!dangling":`...)
		b = strconv.AppendQuote(b, fmt.Sprintf("%v", r.KV[len(r.KV)-1]))
	}
	return append(b, '}')
}

func appendLogValue(b []byte, v any) []byte {
	switch x := v.(type) {
	case string:
		return strconv.AppendQuote(b, x)
	case bool:
		return strconv.AppendBool(b, x)
	case int:
		return strconv.AppendInt(b, int64(x), 10)
	case int64:
		return strconv.AppendInt(b, x, 10)
	case uint64:
		return strconv.AppendUint(b, x, 10)
	case float64:
		return appendJSONFloat(b, x)
	case float32:
		return appendJSONFloat(b, float64(x))
	case time.Duration:
		return strconv.AppendQuote(b, x.String())
	case error:
		return strconv.AppendQuote(b, x.Error())
	case fmt.Stringer:
		return strconv.AppendQuote(b, x.String())
	case nil:
		return append(b, "null"...)
	default:
		return strconv.AppendQuote(b, fmt.Sprintf("%v", x))
	}
}

// appendJSONFloat renders a float; JSON has no Inf/NaN, so those become
// strings (the record stays parseable).
func appendJSONFloat(b []byte, v float64) []byte {
	if v != v || v > maxJSONFloat || v < -maxJSONFloat {
		return strconv.AppendQuote(b, strconv.FormatFloat(v, 'g', -1, 64))
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

const maxJSONFloat = 1.797693134862315708145274237317043567981e308

// logRingSize bounds the in-memory tail kept for LogTail / GET /logtail.
const logRingSize = 256

// logCore is the shared state behind a set of scoped Loggers: the sink,
// the level filter, and the ring of recent records.
type logCore struct {
	level atomic.Int32

	mu   sync.Mutex
	w    io.Writer // nil: ring only
	ring [logRingSize]Record
	head int // next write slot
	n    int // records currently held
}

func (c *logCore) emit(r Record) {
	c.mu.Lock()
	c.ring[c.head] = r
	c.head = (c.head + 1) % logRingSize
	if c.n < logRingSize {
		c.n++
	}
	if c.w != nil {
		buf := r.appendJSON(make([]byte, 0, 192))
		buf = append(buf, '\n')
		c.w.Write(buf)
	}
	c.mu.Unlock()
}

func (c *logCore) tail(n int) []Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n <= 0 || n > c.n {
		n = c.n
	}
	out := make([]Record, n)
	start := c.head - n
	if start < 0 {
		start += logRingSize
	}
	for i := 0; i < n; i++ {
		out[i] = c.ring[(start+i)%logRingSize]
	}
	return out
}

// defaultLog is the process-wide core every Scope logger shares — the one
// the CLIs point at a file with -log and the one GET /logtail serves.
var defaultLog = newLogCore()

func newLogCore() *logCore {
	c := &logCore{}
	c.level.Store(int32(LevelInfo))
	return c
}

var mLogRecords = Default.NewCounterVec("coyote_log_records_total",
	"Structured log records emitted (past the level filter), by scope and level.",
	"scope", "level")

// Logger is a leveled, scoped handle onto a log core. The zero of *Logger
// (nil) is safe: every method no-ops, so instrumented code never needs a
// nil check.
type Logger struct {
	core  *logCore
	scope string
}

// Scope returns a logger bound to the process-wide sink under the given
// subsystem name ("sweep", "session", "lp", "http", "fleet", ...). Create
// once at package level; records carry the scope in every line.
func Scope(name string) *Logger { return &Logger{core: defaultLog, scope: name} }

// NewLogger returns a logger with its own isolated core (tests); w may be
// nil for ring-only capture.
func NewLogger(w io.Writer, level Level) *Logger {
	c := newLogCore()
	c.w = w
	c.level.Store(int32(level))
	return &Logger{core: c}
}

// Scope derives a sub-scoped logger sharing this logger's core.
func (l *Logger) Scope(name string) *Logger {
	if l == nil {
		return nil
	}
	return &Logger{core: l.core, scope: name}
}

// SetLogOutput points the process-wide log sink at w (nil disables the
// sink; the ring keeps recording either way).
func SetLogOutput(w io.Writer) {
	defaultLog.mu.Lock()
	defaultLog.w = w
	defaultLog.mu.Unlock()
}

// SetLogLevel sets the process-wide level filter.
func SetLogLevel(l Level) { defaultLog.level.Store(int32(l)) }

// LogTail returns up to n of the most recent records (oldest first) from
// the process-wide ring; n ≤ 0 means all retained records.
func LogTail(n int) []Record { return defaultLog.tail(n) }

// Tail returns up to n recent records from this logger's own core.
func (l *Logger) Tail(n int) []Record {
	if l == nil {
		return nil
	}
	return l.core.tail(n)
}

// Enabled reports whether records at the given level pass the filter —
// for guarding expensive attribute computation, not required otherwise.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && level >= Level(l.core.level.Load())
}

// Log emits one record. kv is alternating key/value pairs.
func (l *Logger) Log(level Level, msg string, kv ...any) {
	if !l.Enabled(level) {
		return
	}
	mLogRecords.With(l.scope, level.String()).Inc()
	l.core.emit(Record{Time: time.Now(), Level: level, Scope: l.scope, Msg: msg, KV: kv})
}

// Debug emits a debug-level record.
func (l *Logger) Debug(msg string, kv ...any) { l.Log(LevelDebug, msg, kv...) }

// Info emits an info-level record.
func (l *Logger) Info(msg string, kv ...any) { l.Log(LevelInfo, msg, kv...) }

// Warn emits a warn-level record.
func (l *Logger) Warn(msg string, kv ...any) { l.Log(LevelWarn, msg, kv...) }

// Error emits an error-level record.
func (l *Logger) Error(msg string, kv ...any) { l.Log(LevelError, msg, kv...) }

// LogTailHandler serves the process-wide ring as {"records":[...]} — the
// dashboard's event tail.
func LogTailHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := 0
		if v := r.URL.Query().Get("n"); v != "" {
			n, _ = strconv.Atoi(v)
		}
		records := LogTail(n)
		w.Header().Set("Content-Type", "application/json")
		buf := make([]byte, 0, 256*len(records)+32)
		buf = append(buf, `{"records":[`...)
		for i, rec := range records {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = rec.appendJSON(buf)
		}
		buf = append(buf, "]}\n"...)
		w.Write(buf)
	})
}
