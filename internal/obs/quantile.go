package obs

import "math"

// Histogram quantile estimation (DESIGN.md §11): the standard Prometheus
// histogram_quantile estimator over a snapshot's cumulative buckets —
// find the bucket containing the target rank and interpolate linearly
// inside it. Estimates are derived from snapshots only; the live atomics
// are never read back by any algorithm, so the determinism contract is
// untouched.

// Quantile estimates the p-quantile (p in [0, 1]) of a histogram metric
// snapshot. It returns NaN for non-histogram metrics and for histograms
// with no observations. Rank falling in the +Inf bucket returns the
// highest finite bucket bound (the estimator cannot extrapolate past it).
func (m MetricSnapshot) Quantile(p float64) float64 {
	if len(m.Buckets) == 0 || m.Count == 0 {
		return math.NaN()
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(m.Count)
	prevUpper, prevCount := 0.0, uint64(0)
	for _, b := range m.Buckets {
		if float64(b.Count) >= rank && b.Count > prevCount {
			if math.IsInf(b.Upper, 1) {
				// Everything at or past the rank sits beyond the last
				// finite bound; the bound itself is the best estimate.
				return prevUpper
			}
			span := float64(b.Count - prevCount)
			return prevUpper + (b.Upper-prevUpper)*((rank-float64(prevCount))/span)
		}
		prevUpper, prevCount = b.Upper, b.Count
	}
	return prevUpper
}

// Family finds a family snapshot by name.
func (s Snapshot) Family(name string) (FamilySnapshot, bool) {
	for _, f := range s {
		if f.Name == name {
			return f, true
		}
	}
	return FamilySnapshot{}, false
}

// Quantile estimates the p-quantile of a histogram family, aggregating
// the buckets of every child (all children of a family share bucket
// bounds). The boolean is false when the family is absent, not a
// histogram, or empty.
func (s Snapshot) Quantile(family string, p float64) (float64, bool) {
	f, ok := s.Family(family)
	if !ok || f.Type != HistogramType || len(f.Metrics) == 0 {
		return math.NaN(), false
	}
	agg := f.Metrics[0]
	if len(f.Metrics) > 1 {
		buckets := append([]Bucket(nil), f.Metrics[0].Buckets...)
		count := f.Metrics[0].Count
		for _, m := range f.Metrics[1:] {
			if len(m.Buckets) != len(buckets) {
				return math.NaN(), false
			}
			for i := range buckets {
				buckets[i].Count += m.Buckets[i].Count
			}
			count += m.Count
		}
		agg = MetricSnapshot{Buckets: buckets, Count: count}
	}
	if agg.Count == 0 {
		return math.NaN(), false
	}
	return agg.Quantile(p), true
}

// Total sums a family's children: counter/gauge values, or histogram
// observation counts. The boolean is false when the family is absent.
func (s Snapshot) Total(family string) (float64, bool) {
	f, ok := s.Family(family)
	if !ok {
		return 0, false
	}
	var total float64
	for _, m := range f.Metrics {
		if f.Type == HistogramType {
			total += float64(m.Count)
		} else {
			total += m.Value
		}
	}
	return total, true
}
