package obs

import (
	"strings"
	"testing"
)

func TestParsePromValid(t *testing.T) {
	in := `# HELP up whether the target is up
# TYPE up gauge
up 1
# TYPE reqs_total counter
reqs_total{path="/state",code="200"} 12
reqs_total{path="/fail",code="409"} 1
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.1"} 3
lat_seconds_bucket{le="+Inf"} 5
lat_seconds_sum 1.25
lat_seconds_count 5
`
	fams, err := ParseProm(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 3 {
		t.Fatalf("got %d families, want 3", len(fams))
	}
	if fams[1].Samples[0].Labels["path"] != "/state" {
		t.Fatalf("labels: %+v", fams[1].Samples[0])
	}
}

func TestParsePromRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no TYPE header":              "orphan_total 1\n",
		"bad type keyword":            "# TYPE x countr\nx 1\n",
		"TYPE after samples":          "# TYPE x counter\nx 1\n# TYPE x gauge\n",
		"duplicate series":            "# TYPE x counter\nx{a=\"1\"} 1\nx{a=\"1\"} 2\n",
		"bad metric name":             "# TYPE 9x counter\n",
		"bad label name":              "# TYPE x counter\nx{9a=\"1\"} 1\n",
		"unterminated label value":    "# TYPE x counter\nx{a=\"1} 1\n",
		"bad escape":                  `# TYPE x counter` + "\n" + `x{a="\q"} 1` + "\n",
		"bad value":                   "# TYPE x counter\nx one\n",
		"histogram without +Inf":      "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_sum 1\nh_count 2\n",
		"histogram non-cumulative":    "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"histogram count mismatch":    "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n",
		"histogram missing sum":       "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_count 3\n",
		"histogram bucket without le": "# TYPE h histogram\nh_bucket 3\nh_sum 1\nh_count 3\n",
	}
	for name, in := range cases {
		if _, err := ParseProm(strings.NewReader(in)); err == nil {
			t.Errorf("%s: parsed without error:\n%s", name, in)
		}
	}
}

func TestParsePromTolerates(t *testing.T) {
	// Free-form comments, blank lines, timestamps, and summary families
	// from other exporters must not be rejected.
	in := `# a comment

# TYPE x counter
x 1 1712345678000
# TYPE s summary
s{quantile="0.5"} 0.1
s_sum 10
s_count 100
`
	if _, err := ParseProm(strings.NewReader(in)); err != nil {
		t.Fatal(err)
	}
}
