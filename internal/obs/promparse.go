package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// ParsedFamily is one family of a parsed Prometheus text exposition.
type ParsedFamily struct {
	Name    string
	Help    string
	Type    string // counter, gauge, histogram, summary, untyped
	Samples []ParsedSample
}

// ParsedSample is one sample line.
type ParsedSample struct {
	Name   string // full sample name, including _bucket/_sum/_count suffixes
	Labels map[string]string
	Value  float64
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// ParseProm parses and validates Prometheus text exposition format
// (version 0.0.4). It is strict where the format's consumers are:
//
//   - metric and label names must be well-formed;
//   - samples must follow a # TYPE header for their family, with a
//     recognized type keyword, and match the declared name (histogram
//     samples may carry the _bucket/_sum/_count suffixes);
//   - no duplicate series (same name and label set twice);
//   - every histogram must have ascending le bounds ending in +Inf,
//     cumulative (non-decreasing) bucket counts, and a _count equal to
//     its +Inf bucket.
//
// It backs the CI scrape gate (internal/tools/promcheck) and the obs unit
// tests, so the exposition writer and its validator cannot drift apart.
func ParseProm(r io.Reader) ([]ParsedFamily, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var out []ParsedFamily
	byName := make(map[string]*ParsedFamily)
	seen := make(map[string]bool) // duplicate-series detection
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free-form comment
			}
			name := fields[2]
			if !metricNameRe.MatchString(name) {
				return nil, fmt.Errorf("line %d: bad metric name %q", lineNo, name)
			}
			f := byName[name]
			if f == nil {
				out = append(out, ParsedFamily{Name: name, Type: "untyped"})
				f = &out[len(out)-1]
				byName[name] = f
			}
			if fields[1] == "HELP" {
				if len(fields) == 4 {
					f.Help = fields[3]
				}
			} else {
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: TYPE without a type keyword", lineNo)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
					if len(f.Samples) > 0 {
						return nil, fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, name)
					}
					f.Type = fields[3]
				default:
					return nil, fmt.Errorf("line %d: unknown TYPE %q", lineNo, fields[3])
				}
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam := byName[familyOf(s.Name, byName)]
		if fam == nil {
			return nil, fmt.Errorf("line %d: sample %s has no # TYPE header", lineNo, s.Name)
		}
		key := seriesKey(s)
		if seen[key] {
			return nil, fmt.Errorf("line %d: duplicate series %s", lineNo, key)
		}
		seen[key] = true
		fam.Samples = append(fam.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for i := range out {
		if out[i].Type == "histogram" {
			if err := validateHistogram(&out[i]); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// familyOf maps a sample name to its family name: exact match first, then
// the histogram suffixes.
func familyOf(name string, byName map[string]*ParsedFamily) string {
	if _, ok := byName[name]; ok {
		return name
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if f := byName[base]; f != nil && (f.Type == "histogram" || f.Type == "summary") {
				return base
			}
		}
	}
	return name
}

func parseSample(line string) (ParsedSample, error) {
	s := ParsedSample{Labels: map[string]string{}}
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' && line[i] != '\t' {
		i++
	}
	s.Name = line[:i]
	if !metricNameRe.MatchString(s.Name) {
		return s, fmt.Errorf("bad sample name %q", s.Name)
	}
	if i < len(line) && line[i] == '{' {
		end, err := parseLabels(line[i:], s.Labels)
		if err != nil {
			return s, err
		}
		i += end
	}
	rest := strings.TrimSpace(line[i:])
	// The value may be followed by an optional timestamp; take field one.
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("want 'name value [timestamp]', got %q", line)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, err
	}
	s.Value = v
	return s, nil
}

// parseLabels parses a {k="v",...} block starting at in[0] == '{' and
// returns the number of bytes consumed.
func parseLabels(in string, into map[string]string) (int, error) {
	i := 1
	for {
		for i < len(in) && (in[i] == ',' || in[i] == ' ') {
			i++
		}
		if i < len(in) && in[i] == '}' {
			return i + 1, nil
		}
		start := i
		for i < len(in) && in[i] != '=' {
			i++
		}
		if i >= len(in) {
			return 0, fmt.Errorf("unterminated label set")
		}
		name := in[start:i]
		if !labelNameRe.MatchString(name) {
			return 0, fmt.Errorf("bad label name %q", name)
		}
		i++ // '='
		if i >= len(in) || in[i] != '"' {
			return 0, fmt.Errorf("label %s: want quoted value", name)
		}
		i++
		var b strings.Builder
		for {
			if i >= len(in) {
				return 0, fmt.Errorf("label %s: unterminated value", name)
			}
			c := in[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				i++
				if i >= len(in) {
					return 0, fmt.Errorf("label %s: dangling escape", name)
				}
				switch in[i] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					return 0, fmt.Errorf("label %s: bad escape \\%c", name, in[i])
				}
				i++
				continue
			}
			b.WriteByte(c)
			i++
		}
		if _, dup := into[name]; dup {
			return 0, fmt.Errorf("duplicate label %s", name)
		}
		into[name] = b.String()
	}
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func seriesKey(s ParsedSample) string {
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	for _, k := range keys {
		fmt.Fprintf(&b, "{%s=%q}", k, s.Labels[k])
	}
	return b.String()
}

// ValidateHistograms re-checks the cumulative-bucket invariants of every
// histogram family in a parsed exposition: ascending le bounds ending in
// +Inf, non-decreasing cumulative counts, _sum and _count present, and
// _count equal to the +Inf bucket. ParseProm already enforces this; the
// exported form lets external validators (internal/tools/promcheck) run
// and report the coherence check explicitly.
func ValidateHistograms(families []ParsedFamily) error {
	for i := range families {
		if families[i].Type == "histogram" {
			if err := validateHistogram(&families[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// validateHistogram checks the cumulative-bucket invariants of one
// histogram family, per distinct non-le label set.
func validateHistogram(f *ParsedFamily) error {
	type series struct {
		les    []float64
		counts []float64
		sum    bool
		count  float64
		hasCnt bool
	}
	groups := map[string]*series{}
	groupOf := func(s ParsedSample) *series {
		labels := make(map[string]string, len(s.Labels))
		for k, v := range s.Labels {
			if k != "le" {
				labels[k] = v
			}
		}
		key := seriesKey(ParsedSample{Name: f.Name, Labels: labels})
		g := groups[key]
		if g == nil {
			g = &series{}
			groups[key] = g
		}
		return g
	}
	for _, s := range f.Samples {
		switch s.Name {
		case f.Name + "_bucket":
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("%s: bucket sample without le label", f.Name)
			}
			v, err := parseValue(le)
			if err != nil {
				return fmt.Errorf("%s: bad le %q", f.Name, le)
			}
			g := groupOf(s)
			g.les = append(g.les, v)
			g.counts = append(g.counts, s.Value)
		case f.Name + "_sum":
			groupOf(s).sum = true
		case f.Name + "_count":
			g := groupOf(s)
			g.count, g.hasCnt = s.Value, true
		default:
			return fmt.Errorf("%s: unexpected histogram sample %s", f.Name, s.Name)
		}
	}
	for key, g := range groups {
		if len(g.les) == 0 {
			return fmt.Errorf("%s: series %s has no buckets", f.Name, key)
		}
		for i := 1; i < len(g.les); i++ {
			if !(g.les[i] > g.les[i-1]) {
				return fmt.Errorf("%s: le bounds not ascending in %s", f.Name, key)
			}
			if g.counts[i] < g.counts[i-1] {
				return fmt.Errorf("%s: bucket counts not cumulative in %s", f.Name, key)
			}
		}
		if !math.IsInf(g.les[len(g.les)-1], 1) {
			return fmt.Errorf("%s: series %s missing the +Inf bucket", f.Name, key)
		}
		if !g.sum || !g.hasCnt {
			return fmt.Errorf("%s: series %s missing _sum or _count", f.Name, key)
		}
		if g.count != g.counts[len(g.counts)-1] {
			return fmt.Errorf("%s: series %s _count %g != +Inf bucket %g",
				f.Name, key, g.count, g.counts[len(g.counts)-1])
		}
	}
	return nil
}
