package obs

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// WriteProm renders the registry in Prometheus text exposition format
// (version 0.0.4): HELP/TYPE headers for every family (including empty
// labeled families, so scrapers and the CI validator see the full schema),
// then the samples. Histograms emit cumulative _bucket series with le
// labels, plus _sum and _count.
func (r *Registry) WriteProm(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.Snapshot() {
		if f.Help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.Name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(f.Help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.Name)
		bw.WriteByte(' ')
		bw.WriteString(f.Type.String())
		bw.WriteByte('\n')
		for _, m := range f.Metrics {
			switch f.Type {
			case HistogramType:
				for _, b := range m.Buckets {
					bw.WriteString(f.Name)
					bw.WriteString("_bucket")
					writeLabelSet(bw, f.Labels, m.LabelValues, "le", formatFloat(b.Upper))
					bw.WriteByte(' ')
					bw.WriteString(strconv.FormatUint(b.Count, 10))
					bw.WriteByte('\n')
				}
				bw.WriteString(f.Name)
				bw.WriteString("_sum")
				writeLabelSet(bw, f.Labels, m.LabelValues, "", "")
				bw.WriteByte(' ')
				bw.WriteString(formatFloat(m.Sum))
				bw.WriteByte('\n')
				bw.WriteString(f.Name)
				bw.WriteString("_count")
				writeLabelSet(bw, f.Labels, m.LabelValues, "", "")
				bw.WriteByte(' ')
				bw.WriteString(strconv.FormatUint(m.Count, 10))
				bw.WriteByte('\n')
			default:
				bw.WriteString(f.Name)
				writeLabelSet(bw, f.Labels, m.LabelValues, "", "")
				bw.WriteByte(' ')
				bw.WriteString(formatFloat(m.Value))
				bw.WriteByte('\n')
			}
		}
	}
	return bw.Flush()
}

// Handler serves the registry as text/plain; version=0.0.4 — the GET
// /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteProm(w)
	})
}

// writeLabelSet emits {k1="v1",...} (nothing when there are no labels),
// appending the extra pair (the histogram le label) when extraKey != "".
func writeLabelSet(w *bufio.Writer, names, values []string, extraKey, extraVal string) {
	if len(names) == 0 && extraKey == "" {
		return
	}
	w.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			w.WriteByte(',')
		}
		w.WriteString(n)
		w.WriteString(`="`)
		w.WriteString(escapeLabel(values[i]))
		w.WriteByte('"')
	}
	if extraKey != "" {
		if len(names) > 0 {
			w.WriteByte(',')
		}
		w.WriteString(extraKey)
		w.WriteString(`="`)
		w.WriteString(extraVal)
		w.WriteByte('"')
	}
	w.WriteByte('}')
}

// formatFloat renders a sample value; ±Inf use the Prometheus spellings.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
