package obs

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// buildRandomRegistry fills a registry from a seeded PRNG: random family
// mix, label cardinalities, values, and label values that exercise the
// escaping path (quotes, backslashes, newlines, unicode).
func buildRandomRegistry(rng *rand.Rand) *Registry {
	reg := NewRegistry()
	nastyValues := []string{
		"plain", `with"quote`, `back\slash`, "new\nline", "ünïcødé",
		"", "a=b,c=d", `{"json":"ish"}`,
	}
	nFam := 1 + rng.Intn(8)
	for fi := 0; fi < nFam; fi++ {
		name := fmt.Sprintf("fam_%d_total", fi)
		help := fmt.Sprintf("family %d with \\ and\nnewline", fi)
		nLabels := rng.Intn(3)
		labels := make([]string, nLabels)
		for i := range labels {
			labels[i] = fmt.Sprintf("l%d", i)
		}
		values := func() []string {
			vs := make([]string, nLabels)
			for i := range vs {
				vs[i] = nastyValues[rng.Intn(len(nastyValues))]
			}
			return vs
		}
		switch rng.Intn(3) {
		case 0:
			cv := reg.NewCounterVec(name, help, labels...)
			for i := 0; i < 1+rng.Intn(4); i++ {
				cv.With(values()...).Add(uint64(rng.Intn(1000)))
			}
		case 1:
			gv := reg.NewGaugeVec(name, help, labels...)
			for i := 0; i < 1+rng.Intn(4); i++ {
				gv.With(values()...).Set(rng.NormFloat64() * 100)
			}
		default:
			hv := reg.NewHistogramVec(name, help, ExpBuckets(0.001, 2, 1+rng.Intn(10)), labels...)
			for i := 0; i < 1+rng.Intn(3); i++ {
				h := hv.With(values()...)
				for j := 0; j < rng.Intn(50); j++ {
					h.Observe(rng.Float64() * 3)
				}
			}
		}
	}
	return reg
}

// TestPromRoundTripProperty is the property test for the exposition pair:
// for many seeded-random registries, ParseProm(WriteProm(reg)) must
// reproduce every family and every sample of the snapshot exactly.
func TestPromRoundTripProperty(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		reg := buildRandomRegistry(rng)

		var buf bytes.Buffer
		if err := reg.WriteProm(&buf); err != nil {
			t.Fatalf("seed %d: WriteProm: %v", seed, err)
		}
		parsed, err := ParseProm(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: ParseProm rejected our own exposition: %v\n%s", seed, err, buf.String())
		}
		compareExposition(t, seed, reg.Snapshot(), parsed)
	}
}

func compareExposition(t *testing.T, seed int64, snap Snapshot, parsed []ParsedFamily) {
	t.Helper()
	byName := make(map[string]ParsedFamily, len(parsed))
	for _, f := range parsed {
		byName[f.Name] = f
	}
	if len(parsed) != len(snap) {
		t.Errorf("seed %d: %d families parsed, want %d", seed, len(parsed), len(snap))
	}
	for _, f := range snap {
		pf, ok := byName[f.Name]
		if !ok {
			t.Errorf("seed %d: family %s lost in round trip", seed, f.Name)
			continue
		}
		if pf.Type != f.Type.String() {
			t.Errorf("seed %d: %s type %q, want %q", seed, f.Name, pf.Type, f.Type)
		}
		if want := escapeHelp(f.Help); pf.Help != want {
			t.Errorf("seed %d: %s help %q, want %q", seed, f.Name, pf.Help, want)
		}
		// Index parsed samples by name + full label set.
		samples := make(map[string]float64, len(pf.Samples))
		for _, s := range pf.Samples {
			samples[seriesKey(s)] = s.Value
		}
		lookup := func(name string, labels map[string]string) (float64, bool) {
			v, ok := samples[seriesKey(ParsedSample{Name: name, Labels: labels})]
			return v, ok
		}
		wantSamples := 0
		for _, m := range f.Metrics {
			base := make(map[string]string, len(f.Labels))
			for i, l := range f.Labels {
				base[l] = m.LabelValues[i]
			}
			if f.Type == HistogramType {
				wantSamples += len(m.Buckets) + 2
				for _, b := range m.Buckets {
					labels := make(map[string]string, len(base)+1)
					for k, v := range base {
						labels[k] = v
					}
					labels["le"] = formatFloat(b.Upper)
					if v, ok := lookup(f.Name+"_bucket", labels); !ok || v != float64(b.Count) {
						t.Errorf("seed %d: %s bucket le=%s = %v,%v want %d",
							seed, f.Name, labels["le"], v, ok, b.Count)
					}
				}
				if v, ok := lookup(f.Name+"_sum", base); !ok || v != m.Sum {
					t.Errorf("seed %d: %s_sum = %v,%v want %v", seed, f.Name, v, ok, m.Sum)
				}
				if v, ok := lookup(f.Name+"_count", base); !ok || v != float64(m.Count) {
					t.Errorf("seed %d: %s_count = %v,%v want %d", seed, f.Name, v, ok, m.Count)
				}
			} else {
				wantSamples++
				v, ok := lookup(f.Name, base)
				if !ok {
					t.Errorf("seed %d: %s%v sample lost", seed, f.Name, m.LabelValues)
					continue
				}
				same := v == m.Value || (math.IsNaN(v) && math.IsNaN(m.Value))
				if !same {
					t.Errorf("seed %d: %s%v = %v, want %v", seed, f.Name, m.LabelValues, v, m.Value)
				}
			}
		}
		if len(pf.Samples) != wantSamples {
			t.Errorf("seed %d: %s has %d samples, want %d", seed, f.Name, len(pf.Samples), wantSamples)
		}
	}
}

// FuzzParseProm asserts the strict parser never panics and that accepted
// input containing histograms still satisfies the coherence validator
// (ParseProm validates internally; ValidateHistograms must agree).
func FuzzParseProm(f *testing.F) {
	seeds := []string{
		"",
		"# HELP a_total help\n# TYPE a_total counter\na_total 1\n",
		"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1.5\nh_count 2\n",
		"# TYPE g gauge\ng{k=\"v\\\"q\",j=\"\\\\\"} -1e9\n",
		"# TYPE s summary\n",
		"a_total 1\n",
		"# TYPE h histogram\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"1\"} 1\n",
		"# TYPE c counter\nc NaN\nc +Inf\n",
		"# bare comment\n\n\n",
	}
	// Stress with a real exposition too.
	reg := buildRandomRegistry(rand.New(rand.NewSource(7)))
	var buf bytes.Buffer
	reg.WriteProm(&buf)
	seeds = append(seeds, buf.String())
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		fams, err := ParseProm(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := ValidateHistograms(fams); err != nil {
			t.Fatalf("ParseProm accepted input that ValidateHistograms rejects: %v", err)
		}
	})
}
