package obs

import (
	"encoding/json"
	"math"
	"net/http"
)

// The embedded control-room dashboard (DESIGN.md §11): one self-contained
// HTML page with zero external dependencies — no CDN scripts, fonts, or
// stylesheets — that renders live shard progress (GET /fleet + its SSE
// stream), the metrics registry (GET /metrics.json), and the structured
// event tail (GET /logtail). Sections whose endpoint is absent (a sweep
// worker's -debug-addr has no fleet plane) hide themselves.

// familyJSON is one family of the GET /metrics.json report.
type familyJSON struct {
	Name    string       `json:"name"`
	Help    string       `json:"help,omitempty"`
	Type    string       `json:"type"`
	Labels  []string     `json:"labels,omitempty"`
	Metrics []metricJSON `json:"metrics"`
}

// metricJSON is one child: counters and gauges carry Value; histograms
// carry Count/Sum and the snapshot-estimated quantiles the dashboard
// renders (Snapshot().Quantile).
type metricJSON struct {
	LabelValues []string `json:"label_values,omitempty"`
	Value       *float64 `json:"value,omitempty"`
	Count       *uint64  `json:"count,omitempty"`
	Sum         *float64 `json:"sum,omitempty"`
	Q50         *float64 `json:"q50,omitempty"`
	Q90         *float64 `json:"q90,omitempty"`
	Q99         *float64 `json:"q99,omitempty"`
}

// JSONHandler serves the registry snapshot as JSON — the dashboard's
// metrics feed (the text /metrics endpoint stays the scrape surface).
// Histogram children include q50/q90/q99 estimates so latency families
// are readable without client-side bucket math.
func (r *Registry) JSONHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		snap := r.Snapshot()
		out := make([]familyJSON, 0, len(snap))
		for _, f := range snap {
			fj := familyJSON{Name: f.Name, Help: f.Help, Type: f.Type.String(), Labels: f.Labels}
			for _, m := range f.Metrics {
				mj := metricJSON{LabelValues: m.LabelValues}
				if f.Type == HistogramType {
					count, sum := m.Count, m.Sum
					mj.Count, mj.Sum = &count, &sum
					if count > 0 {
						mj.Q50 = finitePtr(m.Quantile(0.50))
						mj.Q90 = finitePtr(m.Quantile(0.90))
						mj.Q99 = finitePtr(m.Quantile(0.99))
					}
				} else {
					v := m.Value
					mj.Value = &v
				}
				fj.Metrics = append(fj.Metrics, mj)
			}
			out = append(out, fj)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.Encode(map[string]any{"families": out})
	})
}

func finitePtr(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}

// DashboardHandler serves the embedded dashboard page.
func DashboardHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write([]byte(dashboardHTML))
	})
}

// dashboardHTML is the whole dashboard: markup, styles, and script in one
// constant so the binary serves it with no filesystem or network
// dependency. The script polls /metrics.json and /logtail, polls /fleet,
// and additionally listens on the /fleet/events SSE stream to refresh the
// fleet section the moment a heartbeat or merge lands.
const dashboardHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>coyote control room</title>
<style>
  :root { color-scheme: dark; }
  body { margin: 0; background: #11141a; color: #d7dde7;
         font: 13px/1.5 ui-monospace, SFMono-Regular, Menlo, Consolas, monospace; }
  header { padding: 10px 16px; border-bottom: 1px solid #262c38;
           display: flex; justify-content: space-between; align-items: baseline; }
  header h1 { font-size: 15px; margin: 0; color: #e8edf5; }
  header .sub { color: #7a8598; font-size: 12px; }
  main { padding: 12px 16px 40px; max-width: 1100px; margin: 0 auto; }
  section { margin-bottom: 22px; }
  section[hidden] { display: none; }
  h2 { font-size: 12px; text-transform: uppercase; letter-spacing: .08em;
       color: #8b96aa; border-bottom: 1px solid #262c38; padding-bottom: 4px; }
  .kpis { display: flex; flex-wrap: wrap; gap: 10px; margin-bottom: 10px; }
  .kpi { background: #181d26; border: 1px solid #262c38; border-radius: 6px;
         padding: 6px 12px; min-width: 90px; }
  .kpi .v { font-size: 17px; color: #e8edf5; }
  .kpi .k { font-size: 11px; color: #7a8598; }
  .shard { margin: 6px 0; }
  .shard .meta { display: flex; justify-content: space-between; color: #aab4c4; }
  .bar { height: 10px; background: #232936; border-radius: 5px; overflow: hidden; margin-top: 2px; }
  .bar i { display: block; height: 100%; background: #4c8dff; transition: width .4s; }
  .shard.straggler .bar i { background: #e0a93c; }
  .shard.final .bar i { background: #3ec46d; }
  .shard.straggler .meta::after { content: "straggler"; color: #e0a93c; }
  table { border-collapse: collapse; width: 100%; }
  td, th { text-align: left; padding: 2px 10px 2px 0; white-space: nowrap; }
  th { color: #7a8598; font-weight: normal; }
  td.num { text-align: right; font-variant-numeric: tabular-nums; }
  tr:hover td { background: #181d26; }
  #log { background: #0d1015; border: 1px solid #262c38; border-radius: 6px;
         padding: 8px 10px; max-height: 320px; overflow-y: auto; }
  #log div { white-space: pre-wrap; }
  .lv-debug { color: #667085; } .lv-info { color: #c3ccd9; }
  .lv-warn { color: #e0a93c; } .lv-error { color: #ef6a6a; }
  .muted { color: #7a8598; }
</style>
</head>
<body>
<header>
  <h1>coyote control room</h1>
  <div class="sub"><span id="status">connecting…</span></div>
</header>
<main>
  <section id="fleet-section" hidden>
    <h2>Fleet</h2>
    <div class="kpis" id="fleet-kpis"></div>
    <div id="shards"></div>
  </section>
  <section id="metrics-section" hidden>
    <h2>Metrics</h2>
    <table id="metrics"><thead>
      <tr><th>family</th><th>labels</th><th class="num">value / count</th>
          <th class="num">p50</th><th class="num">p90</th><th class="num">p99</th></tr>
    </thead><tbody></tbody></table>
  </section>
  <section id="log-section" hidden>
    <h2>Event log</h2>
    <div id="log"></div>
  </section>
</main>
<script>
"use strict";
const $ = (id) => document.getElementById(id);
async function getJSON(url) {
  const r = await fetch(url, {cache: "no-store"});
  if (!r.ok) throw new Error(url + ": " + r.status);
  return r.json();
}
function fmtSecs(s) {
  if (s == null || !isFinite(s) || s < 0) return "–";
  if (s < 1e-3) return (s * 1e6).toFixed(0) + "µs";
  if (s < 1) return (s * 1e3).toFixed(1) + "ms";
  if (s < 120) return s.toFixed(1) + "s";
  return (s / 60).toFixed(1) + "m";
}
function fmtNum(v) {
  if (v == null) return "–";
  if (Number.isInteger(v)) return String(v);
  return v.toPrecision(4);
}
function kpi(k, v) { return '<div class="kpi"><div class="v">' + v + '</div><div class="k">' + k + '</div></div>'; }
function esc(s) { return String(s).replace(/&/g, "&amp;").replace(/</g, "&lt;"); }

async function refreshFleet() {
  let f;
  try { f = await getJSON("fleet"); } catch (e) { $("fleet-section").hidden = true; return; }
  $("fleet-section").hidden = false;
  $("fleet-kpis").innerHTML =
    kpi("campaign", esc(f.campaign || "–")) + kpi("shards", f.shards) +
    kpi("done", f.done + "/" + f.planned) + kpi("merged", f.merged) +
    kpi("cached", f.cached) + kpi("failed", f.failed) +
    kpi("eta", fmtSecs(f.eta_seconds));
  const box = $("shards");
  box.innerHTML = "";
  for (const s of f.shard_status || []) {
    const d = document.createElement("div");
    d.className = "shard" + (s.straggler ? " straggler" : "") + (s.final ? " final" : "");
    const pct = s.planned > 0 ? Math.round(100 * s.done / s.planned) : 0;
    d.innerHTML = '<div class="meta"><span>shard ' + esc(s.shard) +
      (s.current ? ' · <span class="muted">' + esc(s.current) + "</span>" : "") +
      "</span><span>" + s.done + "/" + s.planned +
      " (" + s.cached + " cached, " + s.failed + " failed) · eta " + fmtSecs(s.eta_seconds) +
      "</span></div>" + '<div class="bar"><i style="width:' + pct + '%"></i></div>';
    box.appendChild(d);
  }
}

async function refreshMetrics() {
  let m;
  try { m = await getJSON("metrics.json"); } catch (e) { $("metrics-section").hidden = true; return; }
  $("metrics-section").hidden = false;
  const rows = [];
  for (const fam of m.families || []) {
    for (const c of fam.metrics || []) {
      const labels = (c.label_values || []).map((v, i) => (fam.labels[i] || "") + "=" + v).join(" ");
      if (fam.type === "histogram") {
        rows.push("<tr><td>" + esc(fam.name) + "</td><td>" + esc(labels) +
          '</td><td class="num">' + fmtNum(c.count) +
          '</td><td class="num">' + fmtSecs(c.q50) + '</td><td class="num">' + fmtSecs(c.q90) +
          '</td><td class="num">' + fmtSecs(c.q99) + "</td></tr>");
      } else {
        rows.push("<tr><td>" + esc(fam.name) + "</td><td>" + esc(labels) +
          '</td><td class="num">' + fmtNum(c.value) +
          '</td><td class="num">–</td><td class="num">–</td><td class="num">–</td></tr>');
      }
    }
  }
  $("metrics").querySelector("tbody").innerHTML = rows.join("");
}

async function refreshLog() {
  let t;
  try { t = await getJSON("logtail?n=120"); } catch (e) { $("log-section").hidden = true; return; }
  $("log-section").hidden = false;
  const el = $("log");
  const stick = el.scrollTop + el.clientHeight >= el.scrollHeight - 8;
  el.innerHTML = (t.records || []).map((r) => {
    const extra = Object.keys(r).filter((k) => !["ts", "level", "scope", "msg"].includes(k))
      .map((k) => k + "=" + JSON.stringify(r[k])).join(" ");
    return '<div class="lv-' + esc(r.level) + '">' + esc(r.ts.slice(11, 23)) + " [" +
      esc(r.scope || "-") + "] " + esc(r.msg) + (extra ? ' <span class="muted">' + esc(extra) + "</span>" : "") + "</div>";
  }).join("");
  if (stick) el.scrollTop = el.scrollHeight;
}

async function refreshAll() {
  await Promise.all([refreshFleet(), refreshMetrics(), refreshLog()]);
  $("status").textContent = "updated " + new Date().toLocaleTimeString();
}
refreshAll();
setInterval(refreshAll, 2000);
try {
  const es = new EventSource("fleet/events");
  let pending = false;
  es.onmessage = es.onerror = null;
  for (const kind of ["heartbeat", "merge"]) {
    es.addEventListener(kind, () => {
      if (pending) return;
      pending = true;
      setTimeout(() => { pending = false; refreshFleet(); }, 150);
    });
  }
} catch (e) { /* no fleet SSE on this listener */ }
</script>
</body>
</html>
`
