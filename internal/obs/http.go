package obs

import (
	"expvar"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// The HTTP family: request counts by route pattern and status code, and a
// latency histogram by pattern. Registered on Default so any handler in
// the process shares one family.
var (
	httpRequests = Default.NewCounterVec("coyote_http_requests_total",
		"HTTP requests served, by route pattern and status code.",
		"path", "code")
	httpLatency = Default.NewHistogramVec("coyote_http_request_seconds",
		"HTTP request latency in seconds, by route pattern.",
		ExpBuckets(0.001, 4, 9), // 1ms .. ~4.4m
		"path")
)

// httpLog records request failures; success traffic stays out of the log
// (the metrics carry the volume story).
var httpLog = Scope("http")

// statusWriter captures the response code. The SSE endpoint requires the
// wrapper to keep http.Flusher visible, hence the two variants.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

type flushStatusWriter struct {
	*statusWriter
	fl http.Flusher
}

func (w *flushStatusWriter) Flush() { w.fl.Flush() }

// InstrumentHTTP wraps a handler with the Default-registry HTTP metrics.
// The path label is the matched ServeMux pattern (r.Pattern), not the raw
// URL, so label cardinality stays bounded; unmatched requests label as
// "unmatched".
func InstrumentHTTP(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		var ww http.ResponseWriter = sw
		if fl, ok := w.(http.Flusher); ok {
			ww = &flushStatusWriter{statusWriter: sw, fl: fl}
		}
		next.ServeHTTP(ww, r)
		path := r.Pattern
		if path == "" {
			path = "unmatched"
		}
		httpRequests.With(path, strconv.Itoa(sw.code)).Inc()
		httpLatency.With(path).ObserveSince(start)
		if sw.code >= 400 {
			level := LevelWarn
			if sw.code >= 500 {
				level = LevelError
			}
			httpLog.Log(level, "request failed",
				"method", r.Method, "path", path, "url", r.URL.Path, "code", sw.code,
				"elapsed", time.Since(start))
		}
	})
}

// DebugMux returns the debug plane served behind -debug-addr: the pprof
// profile endpoints, expvar, the registry's /metrics (text) and
// /metrics.json, the /logtail event tail, and the embedded /dashboard.
// Mounting it on a separate listener keeps profiling off the public API
// surface.
func DebugMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/metrics.json", reg.JSONHandler())
	mux.Handle("/logtail", LogTailHandler())
	mux.Handle("/dashboard", DashboardHandler())
	return mux
}
