package obs

import (
	"math"
	"testing"
)

func TestQuantileEmpty(t *testing.T) {
	var m MetricSnapshot
	if !math.IsNaN(m.Quantile(0.5)) {
		t.Errorf("empty snapshot quantile should be NaN")
	}
	m = MetricSnapshot{Buckets: []Bucket{{Upper: 1}, {Upper: math.Inf(1)}}}
	if !math.IsNaN(m.Quantile(0.5)) {
		t.Errorf("zero-count histogram quantile should be NaN")
	}
}

func TestQuantileInterpolation(t *testing.T) {
	// 100 observations: 50 in (0, 1], 30 in (1, 2], 20 in (2, +Inf).
	m := MetricSnapshot{
		Count: 100,
		Buckets: []Bucket{
			{Upper: 1, Count: 50},
			{Upper: 2, Count: 80},
			{Upper: math.Inf(1), Count: 100},
		},
	}
	cases := []struct{ p, want float64 }{
		{0.25, 0.5}, // rank 25 → halfway through the first bucket (lower bound 0)
		{0.50, 1.0}, // rank 50 → exactly the first bound
		{0.65, 1.5}, // rank 65 → halfway through (1, 2]
		{0.80, 2.0}, // rank 80 → exactly the second bound
		{0.95, 2.0}, // rank in +Inf bucket → highest finite bound
		{-0.5, 0.0}, // clamped to p=0
		{1.50, 2.0}, // clamped to p=1 → +Inf bucket → finite bound
	}
	for _, c := range cases {
		if got := m.Quantile(c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestQuantileAgainstLiveHistogram(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewHistogram("lat", "", ExpBuckets(0.001, 2, 12))
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 1000.0) // uniform on (0, 1]
	}
	snap := reg.Snapshot()
	q50, ok := snap.Quantile("lat", 0.5)
	if !ok {
		t.Fatalf("family lookup failed")
	}
	// True median 0.5; bucket bounds near it are 0.256 and 0.512, so the
	// estimate must land within that bucket.
	if q50 <= 0.256 || q50 > 0.512 {
		t.Errorf("q50 = %v, want within (0.256, 0.512]", q50)
	}
}

func TestSnapshotQuantileAggregatesChildren(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewHistogramVec("lat", "", []float64{1, 2, 4}, "shard")
	for i := 0; i < 10; i++ {
		h.With("0").Observe(0.5) // all low
	}
	for i := 0; i < 10; i++ {
		h.With("1").Observe(3.0) // all high
	}
	q50, ok := reg.Snapshot().Quantile("lat", 0.5)
	if !ok {
		t.Fatalf("family lookup failed")
	}
	// Aggregate: 10 obs ≤ 1, 10 obs in (2, 4]; rank 10 hits the first bound.
	if math.Abs(q50-1.0) > 1e-12 {
		t.Errorf("aggregated q50 = %v, want 1.0", q50)
	}
}

func TestSnapshotQuantileMisses(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("c_total", "").Inc()
	snap := reg.Snapshot()
	if _, ok := snap.Quantile("absent", 0.5); ok {
		t.Errorf("absent family should miss")
	}
	if _, ok := snap.Quantile("c_total", 0.5); ok {
		t.Errorf("counter family should miss")
	}
}

func TestSnapshotTotal(t *testing.T) {
	reg := NewRegistry()
	cv := reg.NewCounterVec("req_total", "", "code")
	cv.With("200").Add(7)
	cv.With("500").Add(2)
	reg.NewGauge("g", "").Set(1.5)
	h := reg.NewHistogram("lat", "", []float64{1})
	h.Observe(0.5)
	h.Observe(0.7)
	snap := reg.Snapshot()
	if v, ok := snap.Total("req_total"); !ok || v != 9 {
		t.Errorf("Total(req_total) = %v, %v", v, ok)
	}
	if v, ok := snap.Total("g"); !ok || v != 1.5 {
		t.Errorf("Total(g) = %v, %v", v, ok)
	}
	if v, ok := snap.Total("lat"); !ok || v != 2 {
		t.Errorf("Total(lat) = %v, %v (want observation count)", v, ok)
	}
	if _, ok := snap.Total("absent"); ok {
		t.Errorf("Total(absent) should miss")
	}
}
