package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_events_total", "events")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	c.Reset()
	if got := c.Value(); got != 0 {
		t.Fatalf("counter after reset = %d, want 0", got)
	}

	g := r.NewGauge("test_level", "level")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}

	cv := r.NewCounterVec("test_kinds_total", "by kind", "kind")
	cv.With("a").Inc()
	cv.With("a").Inc()
	cv.With("b").Inc()
	if cv.With("a").Value() != 2 || cv.With("b").Value() != 1 {
		t.Fatalf("labeled counters: a=%d b=%d", cv.With("a").Value(), cv.With("b").Value())
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-55.65) > 1e-9 {
		t.Fatalf("sum = %v, want 55.65", h.Sum())
	}
	snap := r.Snapshot()
	if len(snap) != 1 || len(snap[0].Metrics) != 1 {
		t.Fatalf("snapshot shape: %+v", snap)
	}
	b := snap[0].Metrics[0].Buckets
	// le=0.1 gets 0.05 and 0.1 (le semantics), le=1 adds 0.5, le=10 adds 5,
	// +Inf adds 50.
	wantCounts := []uint64{2, 3, 4, 5}
	for i, want := range wantCounts {
		if b[i].Count != want {
			t.Fatalf("bucket %d (le %v) = %d, want %d", i, b[i].Upper, b[i].Count, want)
		}
	}
	if !math.IsInf(b[3].Upper, 1) {
		t.Fatalf("last bucket upper = %v, want +Inf", b[3].Upper)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.NewGauge("dup_total", "")
}

// TestPromRoundTrip is the writer/validator contract: everything the
// exposition writer emits must parse cleanly under the strict parser, with
// the values intact.
func TestPromRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("rt_solves_total", "solves so far").Add(7)
	cv := r.NewCounterVec("rt_events_total", "by kind", "kind")
	cv.With("up\"date\\n").Add(2) // hostile label value: quote, backslash
	cv.With("fail").Inc()
	r.NewGauge("rt_progress", "done fraction").Set(0.25)
	h := r.NewHistogramVec("rt_wait_seconds", "queue wait", []float64{0.001, 0.1}, "pool")
	h.With("p1").Observe(0.0005)
	h.With("p1").Observe(2)
	r.NewCounterVec("rt_empty_total", "registered but untouched", "kind")

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseProm(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("parse of own output failed: %v\n%s", err, buf.String())
	}
	byName := map[string]ParsedFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	if f := byName["rt_solves_total"]; f.Type != "counter" || len(f.Samples) != 1 || f.Samples[0].Value != 7 {
		t.Fatalf("rt_solves_total: %+v", f)
	}
	if f := byName["rt_events_total"]; len(f.Samples) != 2 {
		t.Fatalf("rt_events_total: %+v", f)
	} else {
		found := false
		for _, s := range f.Samples {
			if s.Labels["kind"] == "up\"date\\n" && s.Value == 2 {
				found = true
			}
		}
		if !found {
			t.Fatalf("escaped label value lost: %+v", f.Samples)
		}
	}
	if f := byName["rt_wait_seconds"]; f.Type != "histogram" || len(f.Samples) != 5 {
		t.Fatalf("rt_wait_seconds: %+v", f)
	}
	// The untouched family still exposes its schema.
	if f, ok := byName["rt_empty_total"]; !ok || f.Type != "counter" || len(f.Samples) != 0 {
		t.Fatalf("empty family: %+v ok=%v", f, ok)
	}
}

func TestConcurrentUpdatesAndSnapshots(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("cc_total", "")
	cv := r.NewCounterVec("cc_kinds_total", "", "kind")
	h := r.NewHistogram("cc_seconds", "", ExpBuckets(0.001, 10, 4))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				cv.With([]string{"a", "b", "c"}[i%3]).Inc()
				h.Observe(float64(i) / 100)
				if i%100 == 0 {
					var buf bytes.Buffer
					if err := r.WriteProm(&buf); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseProm(strings.NewReader(buf.String())); err != nil {
		t.Fatal(err)
	}
}
