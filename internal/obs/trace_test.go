package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestStartSpanNilSafe(t *testing.T) {
	// No tracer in the context: spans must be nil and inert.
	ctx, sp := StartSpan(context.Background(), "noop")
	if sp != nil {
		t.Fatal("span without tracer should be nil")
	}
	sp.Attr("k", 1).End() // must not panic
	if _, sp2 := StartSpan(ctx, "child"); sp2 != nil {
		t.Fatal("child span without tracer should be nil")
	}
	var nilCtxSpan *Span
	if _, s := StartSpan(nil, "x"); s != nilCtxSpan { //nolint:staticcheck // nil ctx is the documented degenerate case
		t.Fatal("nil context should yield nil span")
	}
	if TracerFrom(context.Background()) != nil {
		t.Fatal("TracerFrom on empty ctx")
	}
}

func TestSpanTreeAndRecords(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	ctx, root := StartSpan(ctx, "session.update")
	cctx, child := StartSpan(ctx, "gpopt.run")
	child.Attr("iters", 200)
	_, grand := StartSpan(cctx, "lp.solve")
	grand.End()
	child.End()
	root.End()

	recs := tr.Records()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	byName := map[string]SpanRecord{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	if byName["gpopt.run"].Parent != byName["session.update"].ID {
		t.Fatalf("child parentage: %+v", recs)
	}
	if byName["lp.solve"].Parent != byName["gpopt.run"].ID {
		t.Fatalf("grandchild parentage: %+v", recs)
	}
	if byName["session.update"].Parent != 0 {
		t.Fatalf("root should have parent 0: %+v", byName["session.update"])
	}
	if len(byName["gpopt.run"].Attrs) != 1 || byName["gpopt.run"].Attrs[0].Key != "iters" {
		t.Fatalf("attrs lost: %+v", byName["gpopt.run"])
	}
	// Records are sorted by start; the root started first.
	if recs[0].Name != "session.update" {
		t.Fatalf("sort order: %+v", recs)
	}
}

func TestWriteChromeLanesAreDisjoint(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	// A root with two overlapping children (parallel stage), plus a later
	// serial span.
	ctx, root := StartSpan(ctx, "root")
	_, a := StartSpan(ctx, "par.a")
	_, b := StartSpan(ctx, "par.b")
	time.Sleep(2 * time.Millisecond)
	a.End()
	b.End()
	root.End()
	_, tail := StartSpan(WithTracer(context.Background(), tr), "tail")
	tail.End()

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("got %d events, want 4", len(doc.TraceEvents))
	}
	// Within a lane, events must not partially overlap (Perfetto renders
	// each tid as a track of disjoint slices).
	type iv struct{ s, e float64 }
	lanes := map[int][]iv{}
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			t.Fatalf("event phase %q, want X", e.Ph)
		}
		lanes[e.Tid] = append(lanes[e.Tid], iv{e.Ts, e.Ts + e.Dur})
	}
	for tid, ivs := range lanes {
		for i := range ivs {
			for j := i + 1; j < len(ivs); j++ {
				if ivs[i].s < ivs[j].e && ivs[j].s < ivs[i].e {
					t.Fatalf("lane %d has overlapping events: %+v", tid, ivs)
				}
			}
		}
	}
}

func TestWriteFileFormats(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	_, sp := StartSpan(ctx, "unit")
	sp.Attr("unit", "exp/running").End()

	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "trace.json")
	jsonlPath := filepath.Join(dir, "trace.jsonl")
	if err := tr.WriteFile(jsonPath); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteFile(jsonlPath); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("jsonl lines = %d, want 1", len(lines))
	}
	var rec SpanRecord
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Name != "unit" || len(rec.Attrs) != 1 {
		t.Fatalf("jsonl record: %+v", rec)
	}
}
