package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer collects span records for one run. Tracing is off by default and
// nil-safe end to end: code under instrumentation calls StartSpan
// unconditionally, and when the context carries no tracer the returned
// *Span is nil and every method on it is a no-op. A Tracer only ever
// observes — it records wall time and attributes, so results are
// bit-identical with tracing on or off (enforced by parity tests).
type Tracer struct {
	epoch  time.Time
	nextID atomic.Uint64

	mu    sync.Mutex
	spans []SpanRecord
}

// SpanRecord is one finished span.
type SpanRecord struct {
	ID     uint64        `json:"id"`
	Parent uint64        `json:"parent,omitempty"` // 0 = root
	Name   string        `json:"name"`
	Start  time.Duration `json:"start_ns"` // offset from the tracer epoch
	Dur    time.Duration `json:"dur_ns"`
	Attrs  []Attr        `json:"attrs,omitempty"`
}

// Attr is one span attribute.
type Attr struct {
	Key string `json:"key"`
	Val any    `json:"val"`
}

// Span is a live (not yet ended) span. A nil *Span is valid and inert.
type Span struct {
	t      *Tracer
	id     uint64
	parent uint64
	name   string
	start  time.Time

	mu    sync.Mutex
	attrs []Attr
}

// NewTracer returns an empty tracer whose epoch is now.
func NewTracer() *Tracer { return &Tracer{epoch: time.Now()} }

type tracerKey struct{}
type spanKey struct{}

// WithTracer attaches the tracer to the context; StartSpan below it
// records into t. A nil tracer returns ctx unchanged.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFrom returns the context's tracer, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// StartSpan opens a span named name under the context's current span (if
// any) and returns a derived context carrying the new span. When the
// context is nil or carries no tracer it returns (ctx, nil) without
// allocating — the instrumentation disappears.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if ctx == nil {
		return ctx, nil
	}
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	if t == nil {
		return ctx, nil
	}
	var parent uint64
	if ps, _ := ctx.Value(spanKey{}).(*Span); ps != nil {
		parent = ps.id
	}
	s := &Span{t: t, id: t.nextID.Add(1), parent: parent, name: name, start: time.Now()}
	return context.WithValue(ctx, spanKey{}, s), s
}

// Attr attaches a key/value attribute and returns the span for chaining.
// Values should be JSON-encodable scalars. No-op on a nil span.
func (s *Span) Attr(key string, val any) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Val: val})
	s.mu.Unlock()
	return s
}

// Active reports whether the span records anywhere — the gate for
// measurement work (extra time.Now calls) that only pays off under
// tracing.
func (s *Span) Active() bool { return s != nil }

// End closes the span and records it. No-op on a nil span; ending twice
// records twice (don't).
func (s *Span) End() {
	if s == nil {
		return
	}
	rec := SpanRecord{
		ID:     s.id,
		Parent: s.parent,
		Name:   s.name,
		Start:  s.start.Sub(s.t.epoch),
		Dur:    time.Since(s.start),
		Attrs:  s.attrs,
	}
	s.t.mu.Lock()
	s.t.spans = append(s.t.spans, rec)
	s.t.mu.Unlock()
}

// Records returns the finished spans sorted by start time (ties: longer
// first, then ID).
func (t *Tracer) Records() []SpanRecord {
	t.mu.Lock()
	out := append([]SpanRecord(nil), t.spans...)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		if out[i].Dur != out[j].Dur {
			return out[i].Dur > out[j].Dur
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// WriteJSONL writes one SpanRecord JSON object per line, in start order —
// the lossless machine-readable export.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, r := range t.Records() {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one Chrome trace-event ("X" = complete event). The format
// is what chrome://tracing and Perfetto's legacy loader accept.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChrome writes the spans as Chrome trace-event JSON, loadable in
// Perfetto (ui.perfetto.dev) and chrome://tracing. Spans are laid out on
// integer "thread" lanes by greedy interval partitioning: each span takes
// the lowest lane free at its start time, so a serial pipeline reads as
// one row and nested/parallel stages stack flame-graph style below it.
// Lane assignment is presentation only; span identity and parentage ride
// in args.id/args.parent.
func (t *Tracer) WriteChrome(w io.Writer) error {
	recs := t.Records()
	events := make([]chromeEvent, 0, len(recs))
	var laneEnd []time.Duration
	for _, r := range recs {
		lane := -1
		for i, end := range laneEnd {
			if end <= r.Start {
				lane = i
				break
			}
		}
		if lane < 0 {
			lane = len(laneEnd)
			laneEnd = append(laneEnd, 0)
		}
		laneEnd[lane] = r.Start + r.Dur
		args := map[string]any{"id": r.ID}
		if r.Parent != 0 {
			args["parent"] = r.Parent
		}
		for _, a := range r.Attrs {
			args[a.Key] = a.Val
		}
		events = append(events, chromeEvent{
			Name: r.Name,
			Cat:  category(r.Name),
			Ph:   "X",
			Ts:   float64(r.Start) / float64(time.Microsecond),
			Dur:  float64(r.Dur) / float64(time.Microsecond),
			Pid:  1,
			Tid:  lane + 1,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"displayTimeUnit": "ms",
		"traceEvents":     events,
	})
}

// category derives the trace-event category from the span-name prefix
// ("lp.solve" → "lp"), so Perfetto can filter per subsystem.
func category(name string) string {
	if i := strings.IndexByte(name, '.'); i > 0 {
		return name[:i]
	}
	return name
}

// WriteFile writes the trace to path: JSONL when the name ends in .jsonl,
// Chrome trace-event JSON otherwise (the -trace contract of the CLIs).
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var werr error
	if strings.HasSuffix(path, ".jsonl") {
		werr = t.WriteJSONL(f)
	} else {
		werr = t.WriteChrome(f)
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("obs: writing trace %s: %w", path, werr)
	}
	return nil
}

// Len returns the number of finished spans.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}
