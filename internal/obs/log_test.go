package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func decodeLine(t *testing.T, line []byte) map[string]any {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(line, &m); err != nil {
		t.Fatalf("record is not valid JSON: %v\n%s", err, line)
	}
	return m
}

func TestLoggerJSONShape(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelDebug).Scope("sweep")
	l.Info("unit done", "unit", "exp1/NSF", "cached", true, "elapsed", 1500*time.Millisecond,
		"n", 42, "ratio", 1.25, "err", error(nil))

	line := bytes.TrimSpace(buf.Bytes())
	m := decodeLine(t, line)
	if m["level"] != "info" || m["scope"] != "sweep" || m["msg"] != "unit done" {
		t.Fatalf("wrong envelope: %v", m)
	}
	if m["unit"] != "exp1/NSF" || m["cached"] != true || m["elapsed"] != "1.5s" {
		t.Errorf("wrong kv rendering: %v", m)
	}
	if m["n"] != float64(42) || m["ratio"] != 1.25 || m["err"] != nil {
		t.Errorf("wrong numeric/nil rendering: %v", m)
	}
	if ts, ok := m["ts"].(string); !ok {
		t.Errorf("missing ts")
	} else if _, err := time.Parse(time.RFC3339Nano, ts); err != nil {
		t.Errorf("ts %q not RFC3339Nano: %v", ts, err)
	}
}

func TestLoggerValueKinds(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelDebug)
	l.Info("kinds",
		"err", errors.New(`boom "quoted"`),
		"stringer", LevelWarn, // fmt.Stringer
		"u", uint64(7),
		"i64", int64(-9),
		"f32", float32(0.5),
		"inf", math.Inf(1),
		"other", []int{1, 2},
	)
	m := decodeLine(t, bytes.TrimSpace(buf.Bytes()))
	if m["err"] != `boom "quoted"` || m["stringer"] != "warn" {
		t.Errorf("error/stringer rendering: %v", m)
	}
	if m["u"] != float64(7) || m["i64"] != float64(-9) || m["f32"] != 0.5 {
		t.Errorf("numeric rendering: %v", m)
	}
	if m["inf"] != "+Inf" {
		t.Errorf("inf should be quoted: %v", m["inf"])
	}
	if m["other"] != "[1 2]" {
		t.Errorf("fallback rendering: %v", m["other"])
	}
}

func TestLoggerDanglingKey(t *testing.T) {
	var buf bytes.Buffer
	NewLogger(&buf, LevelDebug).Warn("odd", "key-without-value")
	m := decodeLine(t, bytes.TrimSpace(buf.Bytes()))
	if m["!dangling"] != "key-without-value" {
		t.Errorf("dangling key not surfaced: %v", m)
	}
}

func TestLoggerLevelFilter(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelWarn)
	l.Debug("nope")
	l.Info("nope")
	l.Warn("yes")
	l.Error("also")
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("want 2 records past the filter, got %d: %s", len(lines), buf.String())
	}
	if !l.Enabled(LevelError) || l.Enabled(LevelInfo) {
		t.Errorf("Enabled disagrees with the filter")
	}
}

func TestLoggerNilSafe(t *testing.T) {
	var l *Logger
	l.Info("ignored", "k", "v") // must not panic
	l.Scope("sub").Error("ignored")
	if l.Enabled(LevelError) {
		t.Errorf("nil logger claims enabled")
	}
	if got := l.Tail(10); got != nil {
		t.Errorf("nil logger tail = %v", got)
	}
}

func TestLoggerRingTail(t *testing.T) {
	l := NewLogger(nil, LevelDebug) // ring-only
	for i := 0; i < logRingSize+10; i++ {
		l.Info(fmt.Sprintf("msg-%d", i))
	}
	all := l.Tail(0)
	if len(all) != logRingSize {
		t.Fatalf("ring holds %d, want %d", len(all), logRingSize)
	}
	if all[0].Msg != "msg-10" || all[len(all)-1].Msg != fmt.Sprintf("msg-%d", logRingSize+9) {
		t.Errorf("ring window wrong: first=%s last=%s", all[0].Msg, all[len(all)-1].Msg)
	}
	last3 := l.Tail(3)
	if len(last3) != 3 || last3[2].Msg != all[len(all)-1].Msg {
		t.Errorf("Tail(3) wrong: %v", last3)
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "warn": LevelWarn,
		"warning": LevelWarn, "error": LevelError,
	} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Errorf("ParseLevel accepted junk")
	}
}

func TestLogTailHandler(t *testing.T) {
	Scope("test-tail").Info("visible in tail", "k", 1)
	rr := httptest.NewRecorder()
	LogTailHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/logtail?n=5", nil))
	if rr.Code != 200 {
		t.Fatalf("status %d", rr.Code)
	}
	var body struct {
		Records []map[string]any `json:"records"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rr.Body.String())
	}
	found := false
	for _, r := range body.Records {
		if r["msg"] == "visible in tail" && r["scope"] == "test-tail" {
			found = true
		}
	}
	if !found {
		t.Errorf("record missing from tail: %s", rr.Body.String())
	}
}

func TestLogRecordsCounter(t *testing.T) {
	before, _ := Default.Snapshot().Total("coyote_log_records_total")
	Scope("counter-scope").Warn("counted")
	after, _ := Default.Snapshot().Total("coyote_log_records_total")
	if after != before+1 {
		t.Errorf("coyote_log_records_total %v -> %v, want +1", before, after)
	}
}

func TestDashboardHandler(t *testing.T) {
	rr := httptest.NewRecorder()
	DashboardHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/dashboard", nil))
	if rr.Code != 200 {
		t.Fatalf("status %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("content type %q", ct)
	}
	body := rr.Body.String()
	// Zero external dependencies: no scheme-qualified or protocol-relative
	// references anywhere in the page.
	for _, banned := range []string{"http://", "https://", "//cdn", "src=\"//", "@import", "url("} {
		if strings.Contains(body, banned) {
			t.Errorf("dashboard references an external resource: found %q", banned)
		}
	}
	for _, want := range []string{"fleet-section", "metrics-section", "log-section", "EventSource"} {
		if !strings.Contains(body, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
}

func TestMetricsJSONHandler(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("c_total", "a counter").Add(3)
	h := reg.NewHistogramVec("h_seconds", "a histogram", ExpBuckets(0.1, 2, 4), "k")
	for i := 0; i < 100; i++ {
		h.With("x").Observe(0.35)
	}
	rr := httptest.NewRecorder()
	reg.JSONHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics.json", nil))
	var body struct {
		Families []struct {
			Name    string   `json:"name"`
			Type    string   `json:"type"`
			Labels  []string `json:"labels"`
			Metrics []struct {
				LabelValues []string `json:"label_values"`
				Value       *float64 `json:"value"`
				Count       *uint64  `json:"count"`
				Q50         *float64 `json:"q50"`
			} `json:"metrics"`
		} `json:"families"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rr.Body.String())
	}
	if len(body.Families) != 2 {
		t.Fatalf("want 2 families, got %d", len(body.Families))
	}
	c, h2 := body.Families[0], body.Families[1]
	if c.Name != "c_total" || c.Metrics[0].Value == nil || *c.Metrics[0].Value != 3 {
		t.Errorf("counter family wrong: %+v", c)
	}
	if h2.Name != "h_seconds" || len(h2.Metrics) != 1 {
		t.Fatalf("histogram family wrong: %+v", h2)
	}
	m := h2.Metrics[0]
	if m.Count == nil || *m.Count != 100 || m.Q50 == nil {
		t.Fatalf("histogram child missing count/quantiles: %+v", m)
	}
	// All observations land in the (0.2, 0.4] bucket; the interpolated
	// median must sit inside it.
	if *m.Q50 <= 0.2 || *m.Q50 > 0.4 {
		t.Errorf("q50 = %v, want within (0.2, 0.4]", *m.Q50)
	}
}
