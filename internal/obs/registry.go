// Package obs is the repo's zero-dependency observability layer
// (DESIGN.md §10): a metrics registry of counters, gauges, and
// fixed-bucket histograms with atomic updates and Prometheus text-format
// exposition, plus lightweight tracing spans for the pipeline stages.
//
// Two contracts hold everywhere obs is used:
//
//   - Instrumentation never touches the numeric path. Metrics and spans
//     record what happened; they are never read back by the algorithms,
//     so results stay bit-identical at any worker count with observability
//     on, off, or sampled mid-run.
//   - Updates are cheap and lock-free. Counters, gauges, and histogram
//     buckets are single atomic operations, safe from any goroutine; the
//     registry's maps are only locked on family/child creation (done once,
//     at package init or first use) and on snapshot.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// MetricType discriminates the three family kinds.
type MetricType int

const (
	CounterType MetricType = iota
	GaugeType
	HistogramType
)

// String returns the Prometheus TYPE keyword.
func (t MetricType) String() string {
	switch t {
	case CounterType:
		return "counter"
	case GaugeType:
		return "gauge"
	case HistogramType:
		return "histogram"
	default:
		return "untyped"
	}
}

// Registry holds metric families. The zero value is not usable; call
// NewRegistry (or use Default).
type Registry struct {
	mu       sync.RWMutex
	families map[string]*Family
}

// Default is the process-wide registry every package-level metric lives
// in — the one /metrics serves.
var Default = NewRegistry()

// NewRegistry returns an empty registry (isolated registries are for
// tests; production metrics belong in Default).
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*Family)}
}

// Family is one named metric family: a type, a help string, a label
// schema, and the children (one per label-value tuple). A family with no
// labels has exactly one child, keyed by the empty tuple.
type Family struct {
	name    string
	help    string
	typ     MetricType
	labels  []string
	buckets []float64 // histogram upper bounds (ascending, +Inf implicit)

	mu       sync.RWMutex
	children map[string]any // joined label values → *Counter | *Gauge | *Histogram
}

// Name returns the family name.
func (f *Family) Name() string { return f.name }

func (r *Registry) register(name, help string, typ MetricType, buckets []float64, labels []string) *Family {
	if name == "" {
		panic("obs: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	f := &Family{
		name:     name,
		help:     help,
		typ:      typ,
		labels:   append([]string(nil), labels...),
		buckets:  append([]float64(nil), buckets...),
		children: make(map[string]any),
	}
	r.families[name] = f
	return f
}

// child returns (creating on demand) the metric for the given label
// values. The fast path is one RLock'd map lookup.
func (f *Family) child(values []string) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := joinLabels(values)
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	var m any
	switch f.typ {
	case CounterType:
		m = &Counter{}
	case GaugeType:
		m = &Gauge{}
	case HistogramType:
		m = newHistogram(f.buckets)
	}
	f.children[key] = m
	return m
}

// joinLabels builds the child map key. \x1f (unit separator) cannot appear
// in sane label values; escaping is not worth the hot-path cost.
func joinLabels(values []string) string {
	switch len(values) {
	case 0:
		return ""
	case 1:
		return values[0]
	}
	n := len(values) - 1
	for _, v := range values {
		n += len(v)
	}
	b := make([]byte, 0, n)
	for i, v := range values {
		if i > 0 {
			b = append(b, '\x1f')
		}
		b = append(b, v...)
	}
	return string(b)
}

// Counter is a monotone event count. Reset exists only for per-run
// accounting (lp.ResetGlobalStats); Prometheus scrapers treat a reset as a
// counter restart.
type Counter struct{ n atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.n.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n.Store(0) }

// Gauge is a value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (CAS loop; gauges are not hot-path metrics).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets (upper bounds,
// ascending; a +Inf bucket is implicit).
type Histogram struct {
	upper   []float64
	counts  []atomic.Uint64 // len(upper)+1; last is +Inf
	sumBits atomic.Uint64
}

func newHistogram(upper []float64) *Histogram {
	for i := 1; i < len(upper); i++ {
		if !(upper[i] > upper[i-1]) {
			panic(fmt.Sprintf("obs: histogram buckets not ascending at %v", upper[i]))
		}
	}
	return &Histogram{upper: upper, counts: make([]atomic.Uint64, len(upper)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v) // first bucket with upper ≥ v (le semantics)
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0).Seconds()) }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// ExpBuckets returns n exponentially growing bucket bounds starting at
// start (start, start·factor, …).
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets wants start > 0, factor > 1, n ≥ 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *Family }

// With returns the counter for the given label values, creating it on
// first use.
func (v CounterVec) With(values ...string) *Counter { return v.f.child(values).(*Counter) }

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *Family }

// With returns the gauge for the given label values.
func (v GaugeVec) With(values ...string) *Gauge { return v.f.child(values).(*Gauge) }

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *Family }

// With returns the histogram for the given label values.
func (v HistogramVec) With(values ...string) *Histogram { return v.f.child(values).(*Histogram) }

// NewCounter registers an unlabeled counter family and returns its sole
// child. Registering a name twice panics (metrics are created once, at
// package init).
func (r *Registry) NewCounter(name, help string) *Counter {
	return r.register(name, help, CounterType, nil, nil).child(nil).(*Counter)
}

// NewCounterVec registers a labeled counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) CounterVec {
	return CounterVec{r.register(name, help, CounterType, nil, labels)}
}

// NewGauge registers an unlabeled gauge family and returns its sole child.
func (r *Registry) NewGauge(name, help string) *Gauge {
	return r.register(name, help, GaugeType, nil, nil).child(nil).(*Gauge)
}

// NewGaugeVec registers a labeled gauge family.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) GaugeVec {
	return GaugeVec{r.register(name, help, GaugeType, nil, labels)}
}

// NewHistogram registers an unlabeled histogram family and returns its
// sole child.
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	return r.register(name, help, HistogramType, buckets, nil).child(nil).(*Histogram)
}

// NewHistogramVec registers a labeled histogram family.
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labels ...string) HistogramVec {
	return HistogramVec{r.register(name, help, HistogramType, buckets, labels)}
}

// Snapshot is a point-in-time copy of a registry, families sorted by name
// and children by label tuple — the typed API behind the Prometheus
// exposition and tests.
type Snapshot []FamilySnapshot

// FamilySnapshot is one family's state.
type FamilySnapshot struct {
	Name   string
	Help   string
	Type   MetricType
	Labels []string
	// Metrics holds the children, sorted by label-value tuple. A family
	// that has never been touched with labels has none (its HELP/TYPE
	// header is still exposed).
	Metrics []MetricSnapshot
}

// MetricSnapshot is one child's state.
type MetricSnapshot struct {
	LabelValues []string
	// Value is the counter count or gauge level (unused for histograms).
	Value float64
	// Buckets (histograms) hold cumulative counts per upper bound; the
	// last entry is the +Inf bucket.
	Buckets []Bucket
	Sum     float64
	Count   uint64
}

// Bucket is one cumulative histogram bucket.
type Bucket struct {
	Upper float64 // math.Inf(1) for the +Inf bucket
	Count uint64  // observations with value ≤ Upper
}

// Snapshot copies the registry. Concurrent updates may land between two
// children's reads (snapshots are consistent per atomic value, not
// globally), which is the standard scrape semantics.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	fams := make([]*Family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	out := make(Snapshot, 0, len(fams))
	for _, f := range fams {
		fs := FamilySnapshot{Name: f.name, Help: f.help, Type: f.typ, Labels: f.labels}
		f.mu.RLock()
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			ms := MetricSnapshot{}
			if len(f.labels) > 0 {
				ms.LabelValues = splitLabels(k, len(f.labels))
			}
			switch m := f.children[k].(type) {
			case *Counter:
				ms.Value = float64(m.Value())
			case *Gauge:
				ms.Value = m.Value()
			case *Histogram:
				ms.Buckets = make([]Bucket, len(m.upper)+1)
				var cum uint64
				for i := range m.counts {
					cum += m.counts[i].Load()
					up := math.Inf(1)
					if i < len(m.upper) {
						up = m.upper[i]
					}
					ms.Buckets[i] = Bucket{Upper: up, Count: cum}
				}
				ms.Sum = m.Sum()
				ms.Count = ms.Buckets[len(ms.Buckets)-1].Count
			}
			fs.Metrics = append(fs.Metrics, ms)
		}
		f.mu.RUnlock()
		out = append(out, fs)
	}
	return out
}

func splitLabels(key string, n int) []string {
	out := make([]string, 0, n)
	start := 0
	for i := 0; i < len(key); i++ {
		if key[i] == '\x1f' {
			out = append(out, key[start:i])
			start = i + 1
		}
	}
	return append(out, key[start:])
}
