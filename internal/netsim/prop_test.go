package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/scen"
	"github.com/coyote-te/coyote/internal/spf"
)

// The property-based suite: over randomized topologies, DAG routings, and
// traffic patterns, the emulator must conserve flow (Sent == Received +
// Dropped, every step), keep drop rates inside [0, 1], deliver everything
// when capacity is abundant, and drop (weakly) more as offered load grows.

// randomSim builds a simulation on a random strongly connected topology
// with randomized "downhill" DAG routings (splits over edges that strictly
// decrease hop distance to the prefix owner — loop-free by construction)
// and randomized multi-phase CBR flows. scale multiplies every flow rate.
func randomSim(t *testing.T, seed int64, scale float64) *Sim {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	gens := []struct {
		name string
		p    scen.Params
	}{
		{"waxman", scen.Params{N: 8 + rng.Intn(6), Seed: seed}},
		{"ring", scen.Params{N: 6 + rng.Intn(6), M: 2, Seed: seed}},
		{"grid", scen.Params{Rows: 2 + rng.Intn(2), Cols: 3, Seed: seed}},
	}
	pick := gens[rng.Intn(len(gens))]
	g, err := scen.Generate(pick.name, pick.p)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	sim := New(g)

	// 2–4 prefixes at distinct random owners.
	owners := rng.Perm(g.NumNodes())[:2+rng.Intn(3)]
	for pi, oi := range owners {
		owner := graph.NodeID(oi)
		dist := spf.HopDistance(g, owner)
		split := make(map[graph.NodeID]map[graph.EdgeID]float64)
		for u := 0; u < g.NumNodes(); u++ {
			node := graph.NodeID(u)
			if node == owner {
				continue
			}
			var downhill []graph.EdgeID
			for _, id := range g.Out(node) {
				if dist[g.Edge(id).To] < dist[node] {
					downhill = append(downhill, id)
				}
			}
			if len(downhill) == 0 {
				t.Fatalf("seed %d: node %d has no downhill edge toward %d", seed, u, oi)
			}
			// Random positive weights over a random nonempty subset.
			n := 1 + rng.Intn(len(downhill))
			weights := make(map[graph.EdgeID]float64, n)
			sum := 0.0
			for _, k := range rng.Perm(len(downhill))[:n] {
				w := 0.1 + rng.Float64()
				weights[downhill[k]] = w
				sum += w
			}
			for id := range weights {
				weights[id] /= sum
			}
			split[node] = weights
		}
		if err := sim.AddPrefix(&PrefixRouting{
			Prefix: fmt.Sprintf("p%d", pi),
			Owner:  owner,
			Split:  split,
		}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// 1–3 flows toward this prefix with multi-phase rates.
		for f := 0; f < 1+rng.Intn(3); f++ {
			src := graph.NodeID(rng.Intn(g.NumNodes()))
			if src == owner {
				continue
			}
			rates := make([]float64, 1+rng.Intn(3))
			for i := range rates {
				rates[i] = scale * 5 * rng.Float64()
			}
			if err := sim.AddFlow(&Flow{
				Name:   fmt.Sprintf("f%d-%d", pi, f),
				Src:    src,
				Prefix: fmt.Sprintf("p%d", pi),
				Rate:   PhaseRate(1, rates...),
			}); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
	}
	return sim
}

// offered recomputes the aggregate offered load at time t independently of
// the simulator, from the flow definitions alone.
func offered(s *Sim, t float64) float64 {
	sum := 0.0
	for _, f := range s.Flows {
		sum += f.Rate(t)
	}
	return sum
}

func TestPropFlowConservation(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		sim := randomSim(t, seed, 1)
		stats, err := sim.Run(3, 0.25)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(stats) == 0 {
			t.Fatalf("seed %d: no steps", seed)
		}
		for _, st := range stats {
			// Conservation: every offered unit is either delivered or
			// dropped, per step.
			if d := math.Abs(st.Sent - (st.Received + st.Dropped)); d > 1e-9*(1+st.Sent) {
				t.Errorf("seed %d t=%.2f: Sent %g != Received %g + Dropped %g",
					seed, st.Time, st.Sent, st.Received, st.Dropped)
			}
			// Sent must equal the independently recomputed offered load.
			if want := offered(sim, st.Time); math.Abs(st.Sent-want) > 1e-9*(1+want) {
				t.Errorf("seed %d t=%.2f: Sent %g, flows offer %g", seed, st.Time, st.Sent, want)
			}
			if st.Received < -1e-12 || st.Received > st.Sent+1e-9*(1+st.Sent) {
				t.Errorf("seed %d t=%.2f: Received %g outside [0, Sent=%g]", seed, st.Time, st.Received, st.Sent)
			}
			if r := st.DropRate(); r < 0 || r > 1+1e-12 {
				t.Errorf("seed %d t=%.2f: drop rate %g outside [0,1]", seed, st.Time, r)
			}
		}
	}
}

// TestPropAbundantCapacityLosesNothing pins the zero-congestion corner:
// with every capacity raised above the total offered load, the fluid
// fixed point must deliver everything (the routings are complete DAGs, so
// nothing can be blackholed either).
func TestPropAbundantCapacityLosesNothing(t *testing.T) {
	for seed := int64(1); seed <= 15; seed++ {
		sim := randomSim(t, seed, 1)
		peak := 0.0
		for _, st := range mustRun(t, sim, 3, 0.5) {
			if st.Sent > peak {
				peak = st.Sent
			}
		}
		// Rebuild the identical topology (same node and edge IDs: nodes
		// and directed edges re-added in ID order) with every capacity
		// above the total offered load, and rerun the same routings and
		// flows on it.
		big := graph.New()
		for u := 0; u < sim.G.NumNodes(); u++ {
			big.AddNode(sim.G.Name(graph.NodeID(u)))
		}
		for e := 0; e < sim.G.NumEdges(); e++ {
			edge := sim.G.Edge(graph.EdgeID(e))
			big.AddEdge(edge.From, edge.To, 10*peak+1, edge.Weight)
		}
		abundant := New(big)
		for _, p := range sim.Prefixes {
			cp := &PrefixRouting{Prefix: p.Prefix, Owner: p.Owner, Split: p.Split}
			if err := abundant.AddPrefix(cp); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
		abundant.Flows = sim.Flows
		for _, st := range mustRun(t, abundant, 3, 0.5) {
			if st.Dropped > 1e-9*(1+st.Sent) {
				t.Errorf("seed %d t=%.2f: dropped %g with abundant capacity", seed, st.Time, st.Dropped)
			}
		}
	}
}

// TestPropDropRateMonotoneInLoad scales every flow's rate up and checks
// the cumulative drop rate never decreases: more offered load cannot make
// the network relatively less lossy.
func TestPropDropRateMonotoneInLoad(t *testing.T) {
	for seed := int64(1); seed <= 15; seed++ {
		prev := -1.0
		for _, scale := range []float64{0.25, 0.5, 1, 2, 4, 8} {
			sim := randomSim(t, seed, scale)
			rate := CumulativeDropRate(mustRun(t, sim, 3, 0.25))
			if rate < prev-1e-6 {
				t.Errorf("seed %d: drop rate fell from %.9f to %.9f when load scaled to %g",
					seed, prev, rate, scale)
			}
			prev = rate
		}
	}
}

func mustRun(t *testing.T, s *Sim, duration, dt float64) []StepStat {
	t.Helper()
	stats, err := s.Run(duration, dt)
	if err != nil {
		t.Fatal(err)
	}
	return stats
}
