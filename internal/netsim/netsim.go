// Package netsim is a discrete-time fluid network emulator standing in for
// the paper's Mininet + iperf3 prototype evaluation (§VII, Fig. 12). Flows
// are constant-bit-rate (UDP-like) and routed by per-prefix forwarding
// configurations — per-IP-prefix DAGs with splitting ratios, the extra
// expressiveness COYOTE gains from per-prefix lies. Links drop the excess
// whenever total arrivals exceed capacity (FIFO tail drop, proportional
// across competing flows), and drops propagate downstream through a
// fixed-point iteration.
package netsim

import (
	"fmt"
	"math"

	"github.com/coyote-te/coyote/internal/graph"
)

// PrefixRouting routes one IP prefix: the prefix's owner (egress) node and
// per-node next-hop splitting ratios.
type PrefixRouting struct {
	Prefix string
	Owner  graph.NodeID
	// Split[u] maps each next-hop edge to the fraction of u's
	// prefix-traffic forwarded on it. Fractions at a node must sum to 1,
	// and the positive-fraction edges must form a DAG.
	Split map[graph.NodeID]map[graph.EdgeID]float64

	order []graph.NodeID // topological order of the split support, computed by AddPrefix
}

// Flow is a CBR traffic source toward a prefix. Rate gives the sending rate
// at an absolute time (allowing the 3-phase scenario of Fig. 12b).
type Flow struct {
	Name   string
	Src    graph.NodeID
	Prefix string
	Rate   func(t float64) float64
}

// StepStat records one simulation step.
type StepStat struct {
	Time     float64
	Sent     float64 // aggregate offered load this step
	Received float64 // aggregate traffic delivered to prefix owners
	Dropped  float64 // Sent − Received
}

// DropRate is the fraction of traffic lost this step.
func (s StepStat) DropRate() float64 {
	if s.Sent <= 0 {
		return 0
	}
	return s.Dropped / s.Sent
}

// Sim is a configured emulation.
type Sim struct {
	G        *graph.Graph
	Prefixes map[string]*PrefixRouting
	Flows    []*Flow
}

// New creates an empty simulation over g.
func New(g *graph.Graph) *Sim {
	return &Sim{G: g, Prefixes: make(map[string]*PrefixRouting)}
}

// AddPrefix registers a prefix routing configuration.
func (s *Sim) AddPrefix(p *PrefixRouting) error {
	if _, dup := s.Prefixes[p.Prefix]; dup {
		return fmt.Errorf("netsim: duplicate prefix %q", p.Prefix)
	}
	for u, split := range p.Split {
		sum := 0.0
		for id, frac := range split {
			if frac < 0 {
				return fmt.Errorf("netsim: negative split at node %d", u)
			}
			if s.G.Edge(id).From != u {
				return fmt.Errorf("netsim: split at node %d references edge %d not leaving it", u, id)
			}
			sum += frac
		}
		if math.Abs(sum-1) > 1e-6 {
			return fmt.Errorf("netsim: splits at node %d sum to %g", u, sum)
		}
	}
	order, err := s.topoOrder(p)
	if err != nil {
		return err
	}
	p.order = order
	s.Prefixes[p.Prefix] = p
	return nil
}

// topoOrder computes a topological order of the split support (Kahn's
// algorithm), rejecting cyclic configurations.
func (s *Sim) topoOrder(p *PrefixRouting) ([]graph.NodeID, error) {
	n := s.G.NumNodes()
	indeg := make([]int, n)
	for _, split := range p.Split {
		for id, frac := range split {
			if frac > 0 {
				indeg[s.G.Edge(id).To]++
			}
		}
	}
	var queue, order []graph.NodeID
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, graph.NodeID(i))
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for id, frac := range p.Split[u] {
			if frac <= 0 {
				continue
			}
			v := s.G.Edge(id).To
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("netsim: prefix %q forwarding contains a loop", p.Prefix)
	}
	return order, nil
}

// AddFlow registers a traffic source.
func (s *Sim) AddFlow(f *Flow) error {
	if _, ok := s.Prefixes[f.Prefix]; !ok {
		return fmt.Errorf("netsim: flow %q targets unknown prefix %q", f.Name, f.Prefix)
	}
	s.Flows = append(s.Flows, f)
	return nil
}

// Run simulates [0, duration) in steps of dt and returns per-step stats.
func (s *Sim) Run(duration, dt float64) ([]StepStat, error) {
	if dt <= 0 || duration <= 0 {
		return nil, fmt.Errorf("netsim: non-positive duration or dt")
	}
	var stats []StepStat
	for t := 0.0; t < duration-1e-12; t += dt {
		st, err := s.step(t)
		if err != nil {
			return nil, err
		}
		stats = append(stats, st)
	}
	return stats, nil
}

// step computes the fluid equilibrium for one instant: per-link survival
// factors are iterated to a fixed point (arrivals depend on upstream drops,
// drops depend on arrivals).
func (s *Sim) step(t float64) (StepStat, error) {
	nE := s.G.NumEdges()
	factor := make([]float64, nE)
	for e := range factor {
		factor[e] = 1
	}
	var arrivals []float64
	var received, sent float64
	for iter := 0; iter < 50; iter++ {
		var err error
		arrivals, received, sent, err = s.propagate(t, factor)
		if err != nil {
			return StepStat{}, err
		}
		worstChange := 0.0
		for e := 0; e < nE; e++ {
			cap := s.G.Edge(graph.EdgeID(e)).Capacity
			want := 1.0
			if arrivals[e] > cap {
				want = cap / arrivals[e]
			}
			// Damped update keeps the fixed point stable.
			next := factor[e] + 0.7*(want-factor[e])
			if d := math.Abs(next - factor[e]); d > worstChange {
				worstChange = d
			}
			factor[e] = next
		}
		if worstChange < 1e-9 {
			break
		}
	}
	return StepStat{Time: t, Sent: sent, Received: received, Dropped: sent - received}, nil
}

// propagate pushes all flows through their prefix DAGs applying per-link
// survival factors, returning per-link offered arrivals (before drops on
// that link) plus delivered and offered totals.
func (s *Sim) propagate(t float64, factor []float64) (arrivals []float64, received, sent float64, err error) {
	arrivals = make([]float64, s.G.NumEdges())
	for _, f := range s.Flows {
		rate := f.Rate(t)
		if rate < 0 {
			return nil, 0, 0, fmt.Errorf("netsim: flow %q has negative rate", f.Name)
		}
		if rate == 0 {
			continue
		}
		sent += rate
		p := s.Prefixes[f.Prefix]
		received += s.route(f.Src, rate, p, factor, arrivals)
	}
	return arrivals, received, sent, nil
}

// route pushes rate units from src toward the prefix owner in topological
// order, recording per-link arrivals and applying survival factors; it
// returns the delivered volume.
func (s *Sim) route(src graph.NodeID, rate float64, p *PrefixRouting, factor, arrivals []float64) float64 {
	if src == p.Owner {
		return rate
	}
	inflow := make([]float64, s.G.NumNodes())
	inflow[src] = rate
	for _, u := range p.order {
		if u == p.Owner || inflow[u] == 0 {
			continue
		}
		split := p.Split[u]
		if len(split) == 0 {
			inflow[u] = 0 // blackholed
			continue
		}
		for id, frac := range split {
			if frac == 0 {
				continue
			}
			offered := inflow[u] * frac
			arrivals[id] += offered
			inflow[s.G.Edge(id).To] += offered * factor[id]
		}
	}
	return inflow[p.Owner]
}

// PhaseRate builds a piecewise-constant rate function: rates[i] applies on
// [i·phaseLen, (i+1)·phaseLen); zero afterwards. Fig. 12's three
// 15-second traffic scenarios use this shape.
func PhaseRate(phaseLen float64, rates ...float64) func(float64) float64 {
	return func(t float64) float64 {
		i := int(t / phaseLen)
		if i < 0 || i >= len(rates) {
			return 0
		}
		return rates[i]
	}
}

// CumulativeDropRate aggregates total dropped over total sent across steps.
func CumulativeDropRate(stats []StepStat) float64 {
	var sent, dropped float64
	for _, st := range stats {
		sent += st.Sent
		dropped += st.Dropped
	}
	if sent <= 0 {
		return 0
	}
	return dropped / sent
}
