package netsim

import (
	"math"
	"testing"

	"github.com/coyote-te/coyote/internal/graph"
)

// fig12Topology builds §VII's prototype network: s1, s2, t with unit
// (1 Mb/s) links; t advertises prefixes t1 and t2.
func fig12Topology() (*graph.Graph, graph.NodeID, graph.NodeID, graph.NodeID) {
	g := graph.New()
	s1 := g.AddNode("s1")
	s2 := g.AddNode("s2")
	t := g.AddNode("t")
	g.AddLink(s1, t, 1, 1)
	g.AddLink(s2, t, 1, 1)
	g.AddLink(s1, s2, 1, 1)
	return g, s1, s2, t
}

func directSplit(g *graph.Graph, from, to graph.NodeID) map[graph.EdgeID]float64 {
	id, ok := g.FindEdge(from, to)
	if !ok {
		panic("missing edge")
	}
	return map[graph.EdgeID]float64{id: 1}
}

func halfSplit(g *graph.Graph, from, a, b graph.NodeID) map[graph.EdgeID]float64 {
	ea, _ := g.FindEdge(from, a)
	eb, _ := g.FindEdge(from, b)
	return map[graph.EdgeID]float64{ea: 0.5, eb: 0.5}
}

// addScenarioFlows wires the three 15-second phases of Fig. 12b:
// (s1→t1, s2→t2) = (0,2), (1,1), (2,0) Mb/s.
func addScenarioFlows(t *testing.T, sim *Sim, s1, s2 graph.NodeID) {
	t.Helper()
	if err := sim.AddFlow(&Flow{Name: "s1-t1", Src: s1, Prefix: "t1", Rate: PhaseRate(15, 0, 1, 2)}); err != nil {
		t.Fatal(err)
	}
	if err := sim.AddFlow(&Flow{Name: "s2-t2", Src: s2, Prefix: "t2", Rate: PhaseRate(15, 2, 1, 0)}); err != nil {
		t.Fatal(err)
	}
}

func phaseDropRates(t *testing.T, stats []StepStat) [3]float64 {
	t.Helper()
	var rates [3]float64
	for p := 0; p < 3; p++ {
		var sent, dropped float64
		for _, st := range stats {
			if st.Time >= float64(p*15) && st.Time < float64((p+1)*15) {
				sent += st.Sent
				dropped += st.Dropped
			}
		}
		if sent > 0 {
			rates[p] = dropped / sent
		}
	}
	return rates
}

// TestFig12TE1: both sources use only direct paths; phases 1 and 3
// overload one direct link each → 50% loss; phase 2 is clean.
func TestFig12TE1(t *testing.T) {
	g, s1, s2, tt := fig12Topology()
	sim := New(g)
	for _, prefix := range []string{"t1", "t2"} {
		err := sim.AddPrefix(&PrefixRouting{
			Prefix: prefix, Owner: tt,
			Split: map[graph.NodeID]map[graph.EdgeID]float64{
				s1: directSplit(g, s1, tt),
				s2: directSplit(g, s2, tt),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	addScenarioFlows(t, sim, s1, s2)
	stats, err := sim.Run(45, 1)
	if err != nil {
		t.Fatal(err)
	}
	rates := phaseDropRates(t, stats)
	want := [3]float64{0.5, 0, 0.5}
	for p := range want {
		if math.Abs(rates[p]-want[p]) > 1e-6 {
			t.Fatalf("TE1 phase %d drop rate = %g, want %g", p+1, rates[p], want[p])
		}
	}
}

// TestFig12TE2: s1 splits all its traffic between direct and via-s2; s2
// only direct. Phase drops: 50%, 25%, 0%.
func TestFig12TE2(t *testing.T) {
	g, s1, s2, tt := fig12Topology()
	sim := New(g)
	for _, prefix := range []string{"t1", "t2"} {
		err := sim.AddPrefix(&PrefixRouting{
			Prefix: prefix, Owner: tt,
			Split: map[graph.NodeID]map[graph.EdgeID]float64{
				s1: halfSplit(g, s1, tt, s2),
				s2: directSplit(g, s2, tt),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	addScenarioFlows(t, sim, s1, s2)
	stats, err := sim.Run(45, 1)
	if err != nil {
		t.Fatal(err)
	}
	rates := phaseDropRates(t, stats)
	want := [3]float64{0.5, 0.25, 0}
	for p := range want {
		if math.Abs(rates[p]-want[p]) > 1e-3 {
			t.Fatalf("TE2 phase %d drop rate = %g, want %g", p+1, rates[p], want[p])
		}
	}
}

// TestFig12Coyote: per-prefix DAGs — t1 splits at s1, t2 splits at s2 —
// eliminate drops in every phase, the paper's headline prototype result.
func TestFig12Coyote(t *testing.T) {
	g, s1, s2, tt := fig12Topology()
	sim := New(g)
	if err := sim.AddPrefix(&PrefixRouting{
		Prefix: "t1", Owner: tt,
		Split: map[graph.NodeID]map[graph.EdgeID]float64{
			s1: halfSplit(g, s1, tt, s2),
			s2: directSplit(g, s2, tt),
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := sim.AddPrefix(&PrefixRouting{
		Prefix: "t2", Owner: tt,
		Split: map[graph.NodeID]map[graph.EdgeID]float64{
			s2: halfSplit(g, s2, tt, s1),
			s1: directSplit(g, s1, tt),
		},
	}); err != nil {
		t.Fatal(err)
	}
	addScenarioFlows(t, sim, s1, s2)
	stats, err := sim.Run(45, 1)
	if err != nil {
		t.Fatal(err)
	}
	rates := phaseDropRates(t, stats)
	for p, r := range rates {
		if r > 1e-6 {
			t.Fatalf("COYOTE phase %d drop rate = %g, want 0", p+1, r)
		}
	}
	if c := CumulativeDropRate(stats); c > 1e-6 {
		t.Fatalf("COYOTE cumulative drop rate = %g, want 0", c)
	}
}

func TestAddPrefixRejectsLoop(t *testing.T) {
	g, s1, s2, tt := fig12Topology()
	e12, _ := g.FindEdge(s1, s2)
	e21, _ := g.FindEdge(s2, s1)
	err := New(g).AddPrefix(&PrefixRouting{
		Prefix: "bad", Owner: tt,
		Split: map[graph.NodeID]map[graph.EdgeID]float64{
			s1: {e12: 1},
			s2: {e21: 1},
		},
	})
	if err == nil {
		t.Fatal("looping prefix configuration must be rejected")
	}
}

func TestAddPrefixRejectsBadSplits(t *testing.T) {
	g, s1, _, tt := fig12Topology()
	e1t, _ := g.FindEdge(s1, tt)
	sim := New(g)
	err := sim.AddPrefix(&PrefixRouting{
		Prefix: "p", Owner: tt,
		Split: map[graph.NodeID]map[graph.EdgeID]float64{s1: {e1t: 0.7}},
	})
	if err == nil {
		t.Fatal("splits summing to 0.7 must be rejected")
	}
}

func TestAddFlowUnknownPrefix(t *testing.T) {
	g, s1, _, _ := fig12Topology()
	sim := New(g)
	if err := sim.AddFlow(&Flow{Name: "f", Src: s1, Prefix: "nope", Rate: PhaseRate(1, 1)}); err == nil {
		t.Fatal("flow to unknown prefix must be rejected")
	}
}

func TestBlackholedTrafficCountsAsDropped(t *testing.T) {
	g, s1, s2, tt := fig12Topology()
	sim := New(g)
	// s2 has no split entry: its traffic is blackholed.
	if err := sim.AddPrefix(&PrefixRouting{
		Prefix: "p", Owner: tt,
		Split: map[graph.NodeID]map[graph.EdgeID]float64{s1: directSplit(g, s1, tt)},
	}); err != nil {
		t.Fatal(err)
	}
	if err := sim.AddFlow(&Flow{Name: "f", Src: s2, Prefix: "p", Rate: PhaseRate(10, 1)}); err != nil {
		t.Fatal(err)
	}
	stats, err := sim.Run(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c := CumulativeDropRate(stats); math.Abs(c-1) > 1e-9 {
		t.Fatalf("blackholed drop rate = %g, want 1", c)
	}
}

func TestPhaseRate(t *testing.T) {
	r := PhaseRate(15, 0, 1, 2)
	cases := map[float64]float64{0: 0, 14.9: 0, 15: 1, 29.9: 1, 30: 2, 44.9: 2, 45: 0, 100: 0}
	for tt, want := range cases {
		if got := r(tt); got != want {
			t.Fatalf("PhaseRate(%g) = %g, want %g", tt, got, want)
		}
	}
}
