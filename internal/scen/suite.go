package scen

// SuiteEntry names one generated scenario of the standard sweep suite: a
// topology generator with pinned parameters plus the demand model to sweep
// it under. The Name is stable and unique — the corpus-scale sweep harness
// (internal/sweep) uses it as part of the work-unit identity.
type SuiteEntry struct {
	Name   string
	Gen    string
	Params Params
	Model  string
}

// StandardSuite returns the fixed generated-scenario suite of the
// corpus-scale sweep: one representative of every generator family crossed
// with a distinct demand workload, sized so the whole suite stays
// tractable under the Quick configuration. The seed threads into every
// generator, so the suite is reproducible yet refreshable (change the
// seed, get a fresh but structurally identical corpus). Entries are
// returned in a fixed, name-sorted order.
func StandardSuite(seed int64) []SuiteEntry {
	return []SuiteEntry{
		{Name: "ba-16-gravity", Gen: "ba", Params: Params{N: 16, M: 2, Seed: seed}, Model: "gravity"},
		{Name: "fattree-4-hotspot", Gen: "fattree", Params: Params{K: 4, Seed: seed}, Model: "hotspot"},
		{Name: "grid-3x4-uniform", Gen: "grid", Params: Params{Rows: 3, Cols: 4, Seed: seed}, Model: "uniform"},
		{Name: "ring-12-flash", Gen: "ring", Params: Params{N: 12, M: 3, Seed: seed}, Model: "flash"},
		{Name: "waxman-16-gravity", Gen: "waxman", Params: Params{N: 16, Seed: seed}, Model: "gravity"},
	}
}
