package scen

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/coyote-te/coyote/internal/graph"
)

// Format names a topology file format ReadAuto can detect.
type Format string

const (
	FormatText    Format = "text"    // the repo's node/link/edge format
	FormatGraphML Format = "graphml" // Internet Topology Zoo GraphML
	FormatSNDlib  Format = "sndlib"  // SNDlib native
)

// Sniff guesses a topology file's format from its leading bytes: XML means
// GraphML, an SNDlib header or NODES section means SNDlib native, anything
// else is the text format.
func Sniff(data []byte) Format {
	n := len(data)
	if n > 512 {
		n = 512
	}
	head := strings.TrimSpace(string(data[:n]))
	switch {
	case strings.HasPrefix(head, "<"):
		return FormatGraphML
	case strings.HasPrefix(head, "?SNDlib") || strings.Contains(head, "NODES ("):
		return FormatSNDlib
	default:
		return FormatText
	}
}

// FormatForExt maps a file extension (with dot, any case) to a Format,
// reporting false for extensions that need content sniffing.
func FormatForExt(ext string) (Format, bool) {
	switch strings.ToLower(ext) {
	case ".graphml", ".gml", ".xml":
		return FormatGraphML, true
	case ".snd", ".sndlib", ".native":
		return FormatSNDlib, true
	case ".txt", ".net":
		return FormatText, true
	default:
		return FormatText, false
	}
}

// Read parses a topology in the given format.
func Read(r io.Reader, f Format) (*graph.Graph, error) {
	switch f {
	case FormatGraphML:
		return ReadGraphML(r)
	case FormatSNDlib:
		g, _, err := ReadSNDlib(r)
		return g, err
	default:
		return graph.ReadText(r)
	}
}

// ReadAuto parses a topology whose format is detected from the content.
func ReadAuto(r io.Reader) (*graph.Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return Read(bytes.NewReader(data), Sniff(data))
}

// ReadFile loads a topology file, picking the parser from the extension
// and falling back to content sniffing for unknown ones.
func ReadFile(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if format, ok := FormatForExt(filepath.Ext(path)); ok {
		return Read(f, format)
	}
	return ReadAuto(f)
}
