package scen

import (
	"encoding/xml"
	"fmt"
	"io"
	"math"
	"regexp"
	"strconv"
	"strings"

	"github.com/coyote-te/coyote/internal/graph"
)

// ReadGraphML parses a GraphML topology as published by the Internet
// Topology Zoo [Knight et al. 2011] into a Graph.
//
// Node names come from the "label" attribute when present (disambiguated
// with the node id on collision), else the node id. Link capacities are
// inferred, in order of preference, from the edge attributes
// "LinkSpeedRaw" (bits/s, converted to Gbit/s units matching the
// synthetic corpus), "LinkSpeed" + "LinkSpeedUnits", or a recognizable
// "LinkLabel" such as "10 Gbps" or "OC-48"; edges with no usable
// annotation default to capacity 1. OSPF weights follow the
// inverse-capacity rule. Undirected edges (the Zoo's edgedefault) become
// bidirectional links; parallel edges between the same pair are merged by
// summing their capacities, and self-loops are dropped.
func ReadGraphML(r io.Reader) (*graph.Graph, error) {
	var doc gmlDoc
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("scen: graphml: %w", err)
	}
	if len(doc.Graphs) == 0 {
		return nil, fmt.Errorf("scen: graphml: no <graph> element")
	}
	gr := doc.Graphs[0]
	if len(gr.Nodes) == 0 {
		return nil, fmt.Errorf("scen: graphml: graph has no nodes")
	}

	// Resolve attribute keys: key/@id -> attr.name, per declared domain.
	nodeAttr := map[string]string{}
	edgeAttr := map[string]string{}
	for _, k := range doc.Keys {
		name := k.AttrName
		if name == "" {
			continue
		}
		switch k.For {
		case "node":
			nodeAttr[k.ID] = name
		case "edge":
			edgeAttr[k.ID] = name
		case "", "all", "graph":
			nodeAttr[k.ID] = name
			edgeAttr[k.ID] = name
		}
	}

	g := graph.New()
	byID := make(map[string]graph.NodeID, len(gr.Nodes))
	for _, n := range gr.Nodes {
		label := strings.TrimSpace(attrValue(n.Data, nodeAttr, "label"))
		name := label
		if name == "" {
			name = n.ID
		}
		if _, taken := g.NodeByName(name); taken {
			name = fmt.Sprintf("%s (%s)", name, n.ID)
		}
		byID[n.ID] = g.AddNode(name)
	}

	// Accumulate capacity per node pair so parallel Zoo edges merge: per
	// unordered pair for undirected graphs (the Zoo's edgedefault), per
	// ordered pair when the file declares edgedefault="directed".
	directed := gr.EdgeDefault == "directed"
	type pair struct{ a, b graph.NodeID }
	caps := make(map[pair]float64)
	var order []pair // insertion order, for deterministic edge IDs
	for i, e := range gr.Edges {
		from, ok := byID[e.Source]
		if !ok {
			return nil, fmt.Errorf("scen: graphml: edge %d references unknown node %q", i, e.Source)
		}
		to, ok := byID[e.Target]
		if !ok {
			return nil, fmt.Errorf("scen: graphml: edge %d references unknown node %q", i, e.Target)
		}
		if from == to {
			continue // Zoo files occasionally carry self-loops; drop them
		}
		p := pair{from, to}
		if !directed && p.a > p.b {
			p.a, p.b = p.b, p.a
		}
		if _, seen := caps[p]; !seen {
			order = append(order, p)
		}
		caps[p] += edgeCapacity(e.Data, edgeAttr)
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("scen: graphml: graph has no usable edges")
	}
	for _, p := range order {
		c := caps[p]
		if !(c > 0) || math.IsInf(c, 1) {
			return nil, fmt.Errorf("scen: graphml: non-finite capacity on edge %s–%s", g.Name(p.a), g.Name(p.b))
		}
		if directed {
			g.AddEdge(p.a, p.b, c, linkWeight(c))
		} else {
			g.AddLink(p.a, p.b, c, linkWeight(c))
		}
	}
	return g, nil
}

// edgeCapacity infers one edge's capacity in Gbit/s-like units.
func edgeCapacity(data []gmlData, attr map[string]string) float64 {
	if raw := attrValue(data, attr, "LinkSpeedRaw"); raw != "" {
		if v, err := strconv.ParseFloat(strings.TrimSpace(raw), 64); err == nil && v > 0 && !math.IsInf(v, 1) {
			return v / 1e9
		}
	}
	if spd := attrValue(data, attr, "LinkSpeed"); spd != "" {
		if v, err := strconv.ParseFloat(strings.TrimSpace(spd), 64); err == nil && v > 0 && !math.IsInf(v, 1) {
			return v * unitScale(attrValue(data, attr, "LinkSpeedUnits"))
		}
	}
	if lbl := attrValue(data, attr, "LinkLabel"); lbl != "" {
		if v, ok := parseLinkLabel(lbl); ok {
			return v
		}
	}
	return 1
}

func attrValue(data []gmlData, attr map[string]string, name string) string {
	for _, d := range data {
		if attr[d.Key] == name {
			return d.Value
		}
	}
	return ""
}

// unitScale converts a Topology Zoo LinkSpeedUnits value to Gbit/s.
func unitScale(units string) float64 {
	switch strings.ToUpper(strings.TrimSpace(units)) {
	case "K":
		return 1e-6
	case "M":
		return 1e-3
	case "T":
		return 1e3
	default: // "G" or unspecified
		return 1
	}
}

var (
	speedLabelRe = regexp.MustCompile(`(?i)([0-9]+(?:\.[0-9]+)?)\s*([KMGT])b`)
	ocLabelRe    = regexp.MustCompile(`(?i)OC-?([0-9]+)`)
)

// parseLinkLabel recognizes the free-text speed labels common in Zoo
// files: "10 Gbps", "155 Mbps", "OC-48", ...
func parseLinkLabel(label string) (float64, bool) {
	if m := speedLabelRe.FindStringSubmatch(label); m != nil {
		v, err := strconv.ParseFloat(m[1], 64)
		if err == nil && v > 0 {
			return v * unitScale(m[2]), true
		}
	}
	if m := ocLabelRe.FindStringSubmatch(label); m != nil {
		// OC-n is n × 51.84 Mbit/s.
		if n, err := strconv.Atoi(m[1]); err == nil && n > 0 {
			return float64(n) * 51.84e-3, true
		}
	}
	return 0, false
}

// gmlDoc et al. mirror just enough of the GraphML schema.
type gmlDoc struct {
	XMLName xml.Name   `xml:"graphml"`
	Keys    []gmlKey   `xml:"key"`
	Graphs  []gmlGraph `xml:"graph"`
}

type gmlKey struct {
	ID       string `xml:"id,attr"`
	For      string `xml:"for,attr"`
	AttrName string `xml:"attr.name,attr"`
}

type gmlGraph struct {
	EdgeDefault string    `xml:"edgedefault,attr"`
	Nodes       []gmlNode `xml:"node"`
	Edges       []gmlEdge `xml:"edge"`
}

type gmlNode struct {
	ID   string    `xml:"id,attr"`
	Data []gmlData `xml:"data"`
}

type gmlEdge struct {
	Source string    `xml:"source,attr"`
	Target string    `xml:"target,attr"`
	Data   []gmlData `xml:"data"`
}

type gmlData struct {
	Key   string `xml:"key,attr"`
	Value string `xml:",chardata"`
}
