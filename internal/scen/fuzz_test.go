package scen

import (
	"bytes"
	"os"
	"testing"

	"github.com/coyote-te/coyote/internal/graph"
)

// Native Go fuzz targets for the real-world topology loaders: malformed
// files must produce errors, never panics, and any successfully parsed
// graph must satisfy the structural invariants downstream packages assume
// (Validate, positive capacities/weights — AddEdge would have panicked on
// violations, so reaching Validate already proves them).
//
// CI runs a short `-fuzz` smoke for each target; longer local runs:
//
//	go test -run '^$' -fuzz FuzzReadGraphML -fuzztime 60s ./internal/scen

func seedFile(f *testing.F, path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
}

func FuzzReadGraphML(f *testing.F) {
	seedFile(f, "testdata/zoo5.graphml")
	f.Add([]byte(`<graphml><graph edgedefault="undirected"><node id="a"/><node id="b"/><edge source="a" target="b"/></graph></graphml>`))
	f.Add([]byte(`<graphml><key id="k" for="edge" attr.name="LinkSpeedRaw"/><graph><node id="a"/><node id="b"/><edge source="a" target="b"><data key="k">1e309</data></edge></graph></graphml>`))
	f.Add([]byte(`<graphml>`))
	f.Add([]byte(`not xml at all`))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadGraphML(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("parsed graph fails validation: %v", verr)
		}
	})
}

func FuzzReadSNDlib(f *testing.F) {
	seedFile(f, "testdata/tiny.snd")
	f.Add([]byte("?SNDlib native format; type: network\nNODES (\n a ( 0 0 )\n b ( 1 1 )\n)\nLINKS (\n l1 ( a b ) 1 0 1 0 ( )\n)\n"))
	f.Add([]byte("NODES (\n a\n)\nLINKS (\n l1 ( a a ) \n)\n"))
	f.Add([]byte("NODES ( a ) LINKS ( l1 ( a b ) NaN )"))
	f.Add([]byte("DEMANDS ("))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, dm, err := ReadSNDlib(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("parsed graph fails validation: %v", verr)
		}
		if dm != nil && dm.N != g.NumNodes() {
			t.Fatalf("demand matrix is %d×%d for a %d-node graph", dm.N, dm.N, g.NumNodes())
		}
	})
}

func FuzzReadText(f *testing.F) {
	// Seed with a real serialization plus the malformed-input corpus the
	// PR2 hardening tests cover.
	g, err := Generate("ring", Params{N: 5, Seed: 1})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteText(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("node a\nnode b\nlink a b 10 1\n"))
	f.Add([]byte("link a a 1 1\n"))
	f.Add([]byte("link a b NaN 1\n"))
	f.Add([]byte("link a b Inf 1\n"))
	f.Add([]byte("edge a b -3 1\n"))
	f.Add([]byte("garbage directive\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := graph.ReadText(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("parsed graph fails validation: %v", verr)
		}
	})
}

// FuzzReadAuto exercises the sniffing front door the CLIs use, ensuring
// dispatch itself never panics either.
func FuzzReadAuto(f *testing.F) {
	seedFile(f, "testdata/zoo5.graphml")
	seedFile(f, "testdata/tiny.snd")
	f.Add([]byte("node a\nnode b\nlink a b 10 1\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadAuto(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("parsed graph fails validation: %v", verr)
		}
	})
}
