package scen

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/coyote-te/coyote/internal/graph"
)

// linkWeight is the Cisco-recommended default the paper cites [16] and
// internal/topo uses: OSPF cost inversely proportional to capacity.
func linkWeight(c float64) float64 { return math.Max(1, math.Round(10/c)) }

// capPicker samples link capacities from the configured classes. All
// randomness flows through the generator's single rng so results are a
// pure function of the seed.
func capPicker(p Params, rng *rand.Rand) func() float64 {
	return func() float64 { return p.CapClasses[rng.Intn(len(p.CapClasses))] }
}

// addCapLink adds a bidirectional link with a sampled capacity class,
// skipping self-loops and duplicates.
func addCapLink(g *graph.Graph, a, b graph.NodeID, pick func() float64) {
	if a == b {
		return
	}
	if _, dup := g.FindEdge(a, b); dup {
		return
	}
	c := pick()
	g.AddLink(a, b, c, linkWeight(c))
}

// genWaxman builds the classic Waxman random WAN [Waxman 1988]: N nodes
// placed uniformly in the unit square, a link between u and v with
// probability Alpha·exp(-d(u,v)/(Beta·L)) where L is the square's
// diameter. Sampling can leave the graph disconnected; components are then
// joined along their geometrically closest inter-component pair, so the
// result is always connected yet still seed-deterministic.
func genWaxman(p Params) (*graph.Graph, error) {
	if p.N < 2 {
		return nil, fmt.Errorf("waxman needs n ≥ 2, got %d", p.N)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	g := graph.New()
	xs := make([]float64, p.N)
	ys := make([]float64, p.N)
	for i := 0; i < p.N; i++ {
		g.AddNode(fmt.Sprintf("wax-%02d", i))
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	dist := func(i, j int) float64 {
		return math.Hypot(xs[i]-xs[j], ys[i]-ys[j])
	}
	pick := capPicker(p, rng)
	l := math.Sqrt2 // diameter of the unit square
	for i := 0; i < p.N; i++ {
		for j := i + 1; j < p.N; j++ {
			if rng.Float64() < p.Alpha*math.Exp(-dist(i, j)/(p.Beta*l)) {
				addCapLink(g, graph.NodeID(i), graph.NodeID(j), pick)
			}
		}
	}
	// Join components along closest pairs until connected.
	comp := newUnionFind(p.N)
	for _, e := range g.Edges() {
		comp.union(int(e.From), int(e.To))
	}
	for comp.count > 1 {
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < p.N; i++ {
			for j := i + 1; j < p.N; j++ {
				if comp.find(i) != comp.find(j) && dist(i, j) < best {
					bi, bj, best = i, j, dist(i, j)
				}
			}
		}
		addCapLink(g, graph.NodeID(bi), graph.NodeID(bj), pick)
		comp.union(bi, bj)
	}
	return g, nil
}

// genBarabasiAlbert grows a scale-free graph by preferential attachment
// [Barabási & Albert 1999]: starting from an (M+1)-clique, each new node
// links to M distinct existing nodes chosen with probability proportional
// to their current degree. Always connected by construction.
func genBarabasiAlbert(p Params) (*graph.Graph, error) {
	if p.N < 2 {
		return nil, fmt.Errorf("ba needs n ≥ 2, got %d", p.N)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	g := graph.New()
	for i := 0; i < p.N; i++ {
		g.AddNode(fmt.Sprintf("ba-%02d", i))
	}
	pick := capPicker(p, rng)
	m := p.M
	if m > p.N-1 {
		m = p.N - 1
	}
	// targets holds one entry per endpoint of every link, so uniform
	// sampling from it is degree-proportional sampling.
	var targets []int
	seedSize := m + 1
	if seedSize > p.N {
		seedSize = p.N
	}
	for i := 0; i < seedSize; i++ {
		for j := i + 1; j < seedSize; j++ {
			addCapLink(g, graph.NodeID(i), graph.NodeID(j), pick)
			targets = append(targets, i, j)
		}
	}
	for v := seedSize; v < p.N; v++ {
		chosen := make(map[int]bool, m)
		for len(chosen) < m {
			u := targets[rng.Intn(len(targets))]
			chosen[u] = true
		}
		// Attach in ascending order so the rng consumption above is the
		// only randomness (map iteration order must not leak into output).
		for u := 0; u < v; u++ {
			if chosen[u] {
				addCapLink(g, graph.NodeID(v), graph.NodeID(u), pick)
				targets = append(targets, v, u)
			}
		}
	}
	return g, nil
}

// genFatTree builds the canonical k-ary fat-tree/Clos fabric [Al-Fares et
// al. 2008]: k pods of k/2 edge and k/2 aggregation switches plus (k/2)²
// core switches. Links are uniform 10-unit capacity with weight 1 (fabrics
// are run with uniform costs so ECMP spreads across all equal-cost paths);
// CapClasses is ignored. Deterministic with no randomness at all — Seed is
// unused.
func genFatTree(p Params) (*graph.Graph, error) {
	k := p.K
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("fattree needs even k ≥ 2, got %d", k)
	}
	g := graph.New()
	half := k / 2
	cores := make([]graph.NodeID, half*half)
	for i := range cores {
		cores[i] = g.AddNode(fmt.Sprintf("core-%02d", i))
	}
	const capacity, weight = 10, 1
	for pod := 0; pod < k; pod++ {
		aggs := make([]graph.NodeID, half)
		edges := make([]graph.NodeID, half)
		for j := 0; j < half; j++ {
			aggs[j] = g.AddNode(fmt.Sprintf("pod%d-agg%d", pod, j))
			edges[j] = g.AddNode(fmt.Sprintf("pod%d-edge%d", pod, j))
		}
		for _, e := range edges {
			for _, a := range aggs {
				g.AddLink(e, a, capacity, weight)
			}
		}
		for j, a := range aggs {
			for c := 0; c < half; c++ {
				g.AddLink(a, cores[j*half+c], capacity, weight)
			}
		}
	}
	return g, nil
}

// genGrid builds a Rows×Cols grid WAN (each node linked to its right and
// down neighbors), optionally wrapped into a torus. Capacities are sampled
// per link from CapClasses.
func genGrid(p Params) (*graph.Graph, error) {
	if p.Rows*p.Cols < 2 {
		return nil, errors.New("grid needs at least 2 nodes")
	}
	rng := rand.New(rand.NewSource(p.Seed))
	g := graph.New()
	id := func(r, c int) graph.NodeID { return graph.NodeID(r*p.Cols + c) }
	for r := 0; r < p.Rows; r++ {
		for c := 0; c < p.Cols; c++ {
			g.AddNode(fmt.Sprintf("grid-r%dc%d", r, c))
		}
	}
	pick := capPicker(p, rng)
	for r := 0; r < p.Rows; r++ {
		for c := 0; c < p.Cols; c++ {
			if c+1 < p.Cols {
				addCapLink(g, id(r, c), id(r, c+1), pick)
			} else if p.Wrap && p.Cols > 2 {
				addCapLink(g, id(r, c), id(r, 0), pick)
			}
			if r+1 < p.Rows {
				addCapLink(g, id(r, c), id(r+1, c), pick)
			} else if p.Wrap && p.Rows > 2 {
				addCapLink(g, id(r, c), id(0, c), pick)
			}
		}
	}
	return g, nil
}

// genRing builds an N-node ring with M extra random chords (the shape of
// many metro/national backbones; compare internal/topo's backbone style).
func genRing(p Params) (*graph.Graph, error) {
	if p.N < 3 {
		return nil, fmt.Errorf("ring needs n ≥ 3, got %d", p.N)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	g := graph.New()
	for i := 0; i < p.N; i++ {
		g.AddNode(fmt.Sprintf("ring-%02d", i))
	}
	pick := capPicker(p, rng)
	for i := 0; i < p.N; i++ {
		addCapLink(g, graph.NodeID(i), graph.NodeID((i+1)%p.N), pick)
	}
	maxChords := p.N*(p.N-1)/2 - p.N // complete graph minus the ring
	for added, want := 0, min(p.M, maxChords); added < want; {
		a := graph.NodeID(rng.Intn(p.N))
		b := graph.NodeID(rng.Intn(p.N))
		if a == b {
			continue
		}
		if _, dup := g.FindEdge(a, b); dup {
			continue
		}
		addCapLink(g, a, b, pick)
		added++
	}
	return g, nil
}

// unionFind is a minimal disjoint-set over 0..n-1 for connectivity repair.
type unionFind struct {
	parent []int
	count  int
}

func newUnionFind(n int) *unionFind {
	u := &unionFind{parent: make([]int, n), count: n}
	for i := range u.parent {
		u.parent[i] = i
	}
	return u
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[ra] = rb
		u.count--
	}
}
