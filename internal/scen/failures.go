package scen

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/coyote-te/coyote/internal/graph"
)

// FailureSet is one failure scenario: a named group of physical links
// (represented, as everywhere in the repo, by one representative EdgeID
// per bidirectional pair) that fail simultaneously. Single-link failures
// are size-1 sets; shared-risk link groups (SRLGs — links sharing a
// conduit, line card, or site) are larger.
type FailureSet struct {
	Name  string
	Links []graph.EdgeID
}

// label renders "a–b" for a representative link.
func label(g *graph.Graph, id graph.EdgeID) string {
	e := g.Edge(id)
	return g.Name(e.From) + "–" + g.Name(e.To)
}

// SingleLinkFailures enumerates every single physical-link failure of g,
// in link order — the scenario suite of §VI-A.
func SingleLinkFailures(g *graph.Graph) []FailureSet {
	links := g.Links()
	out := make([]FailureSet, len(links))
	for i, id := range links {
		out[i] = FailureSet{Name: label(g, id), Links: []graph.EdgeID{id}}
	}
	return out
}

// KLinkFailures enumerates every k-subset of physical links as a
// simultaneous failure, in lexicographic link order. The count is C(L, k);
// callers wanting a bounded suite should sample with SampleKLinkFailures
// instead.
func KLinkFailures(g *graph.Graph, k int) ([]FailureSet, error) {
	links := g.Links()
	if k < 1 || k > len(links) {
		return nil, fmt.Errorf("scen: k-link failures need 1 ≤ k ≤ %d, got %d", len(links), k)
	}
	var out []FailureSet
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		set := FailureSet{Links: make([]graph.EdgeID, k)}
		names := make([]string, k)
		for i, j := range idx {
			set.Links[i] = links[j]
			names[i] = label(g, links[j])
		}
		set.Name = joinNames(names)
		out = append(out, set)
		// Next combination.
		i := k - 1
		for i >= 0 && idx[i] == len(links)-k+i {
			i--
		}
		if i < 0 {
			break
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
	return out, nil
}

// SampleKLinkFailures draws count distinct k-subsets of physical links,
// seeded — the tractable stand-in for KLinkFailures on networks where
// C(L, k) explodes. When the whole space has at most count subsets it is
// enumerated exhaustively instead; otherwise exactly count distinct sets
// are returned (never a silent truncation).
func SampleKLinkFailures(g *graph.Graph, k, count int, seed int64) ([]FailureSet, error) {
	links := g.Links()
	if k < 1 || k > len(links) {
		return nil, fmt.Errorf("scen: k-link failures need 1 ≤ k ≤ %d, got %d", len(links), k)
	}
	if count < 1 {
		return nil, fmt.Errorf("scen: k-link sample count must be positive, got %d", count)
	}
	if binomialAtMost(len(links), k, count) {
		return KLinkFailures(g, k)
	}
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[string]bool, count)
	var out []FailureSet
	for attempts := 0; len(out) < count; attempts++ {
		if attempts >= 100*count {
			return nil, fmt.Errorf("scen: could not draw %d distinct %d-link sets after %d attempts", count, k, attempts)
		}
		perm := rng.Perm(len(links))[:k]
		sort.Ints(perm)
		key := fmt.Sprint(perm)
		if seen[key] {
			continue
		}
		seen[key] = true
		set := FailureSet{Links: make([]graph.EdgeID, k)}
		names := make([]string, k)
		for i, j := range perm {
			set.Links[i] = links[j]
			names[i] = label(g, links[j])
		}
		set.Name = joinNames(names)
		out = append(out, set)
	}
	return out, nil
}

// binomialAtMost reports whether C(n, k) ≤ limit (overflow-safe: the
// multiplicative formula is cut off as soon as it passes limit).
func binomialAtMost(n, k, limit int) bool {
	if k > n-k {
		k = n - k
	}
	c := 1
	for i := 0; i < k; i++ {
		c = c * (n - i) / (i + 1)
		if c > limit {
			return false
		}
	}
	return true
}

// SRLGPartition groups the physical links into shared-risk link groups.
// Without fiber-conduit data the grouping is synthetic but structured: each
// link joins the group of its lower-ID endpoint modulo groups, so links
// sharing a router tend to share a group (the "line card / site failure"
// pattern), and the partition is deterministic. Seed shuffles which
// endpoint bucket maps to which group.
func SRLGPartition(g *graph.Graph, groups int, seed int64) []FailureSet {
	links := g.Links()
	if groups < 1 {
		groups = 1
	}
	if groups > len(links) {
		groups = len(links)
	}
	bucketOf := rand.New(rand.NewSource(seed)).Perm(g.NumNodes())
	sets := make([]FailureSet, groups)
	for i := range sets {
		sets[i].Name = fmt.Sprintf("srlg-%d", i)
	}
	for _, id := range links {
		e := g.Edge(id)
		n := e.From
		if e.To < n {
			n = e.To
		}
		b := bucketOf[int(n)] % groups
		sets[b].Links = append(sets[b].Links, id)
	}
	// Drop empty groups (possible when groups ~ number of buckets).
	out := sets[:0]
	for _, s := range sets {
		if len(s.Links) > 0 {
			out = append(out, s)
		}
	}
	return out
}

// LinkSets strips the names off a failure suite, yielding the raw link
// groups internal/failover consumes.
func LinkSets(sets []FailureSet) [][]graph.EdgeID {
	out := make([][]graph.EdgeID, len(sets))
	for i, s := range sets {
		out[i] = s.Links
	}
	return out
}

func joinNames(names []string) string {
	s := names[0]
	for _, n := range names[1:] {
		s += " + " + n
	}
	return s
}
