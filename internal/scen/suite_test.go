package scen

import (
	"bytes"
	"sort"
	"testing"
)

// TestStandardSuite pins the suite's contract: unique sorted names, every
// generator and model resolvable, every topology deterministic for a fixed
// seed, and the seed actually threaded through to the generators.
func TestStandardSuite(t *testing.T) {
	suite := StandardSuite(7)
	if len(suite) == 0 {
		t.Fatal("empty standard suite")
	}
	seen := make(map[string]bool)
	names := make([]string, 0, len(suite))
	for _, e := range suite {
		if seen[e.Name] {
			t.Fatalf("duplicate suite entry %q", e.Name)
		}
		seen[e.Name] = true
		names = append(names, e.Name)
		if e.Params.Seed != 7 {
			t.Errorf("%s: seed not threaded (got %d)", e.Name, e.Params.Seed)
		}
		found := false
		for _, m := range Models() {
			if m == e.Model {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: unknown model %q", e.Name, e.Model)
		}
		g1, err := Generate(e.Gen, e.Params)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		g2, err := Generate(e.Gen, e.Params)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		var b1, b2 bytes.Buffer
		if err := g1.WriteText(&b1); err != nil {
			t.Fatal(err)
		}
		if err := g2.WriteText(&b2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Errorf("%s: generator not deterministic", e.Name)
		}
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("suite names not sorted: %v", names)
	}
}
