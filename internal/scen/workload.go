package scen

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/graph"
)

// Demand workload suites beyond the paper's gravity and bimodal base
// models (§VI-B). Every workload is deterministic in its seed, and every
// base matrix is normalized so its peak entry equals peak — the evaluation
// metric (PERF) is scale-invariant, so peak only anchors the numeric
// range, exactly as in demand.Gravity.

// Models lists the demand-model names BaseMatrix accepts.
func Models() []string {
	return []string{"gravity", "bimodal", "hotspot", "flash", "uniform"}
}

// BaseMatrix builds a named base demand model over g. It extends the
// original gravity/bimodal pair with the scenario-engine workloads, so
// CLIs can expose a single -demand flag:
//
//	gravity  — capacity-product gravity model [22]
//	bimodal  — elephant/mouse bimodal model [23]
//	hotspot  — gravity plus a few overloaded destination routers
//	flash    — flash crowd: one destination drawing sudden demand from
//	           a random subset of sources on top of a gravity baseline
//	uniform  — equal demand between every pair
func BaseMatrix(g *graph.Graph, model string, peak float64, seed int64) (*demand.Matrix, error) {
	switch model {
	case "gravity":
		return demand.Gravity(g, peak), nil
	case "bimodal":
		m := demand.Bimodal(g, demand.DefaultBimodal(), rand.New(rand.NewSource(seed)))
		return normalize(m, peak), nil
	case "hotspot":
		return Hotspot(g, HotspotParams{}, peak, seed), nil
	case "flash":
		return FlashCrowd(g, FlashParams{}, peak, seed), nil
	case "uniform":
		m := demand.NewMatrix(g.NumNodes())
		for s := 0; s < m.N; s++ {
			for t := 0; t < m.N; t++ {
				if s != t {
					m.Set(graph.NodeID(s), graph.NodeID(t), peak)
				}
			}
		}
		return m, nil
	default:
		return nil, fmt.Errorf("scen: unknown demand model %q (want one of %v)", model, Models())
	}
}

func normalize(m *demand.Matrix, peak float64) *demand.Matrix {
	if mx := m.MaxEntry(); mx > 0 {
		m.Scale(peak / mx)
	}
	return m
}

// HotspotParams tunes the hotspot workload.
type HotspotParams struct {
	// Hotspots is the number of overloaded destination routers (default:
	// max(1, n/8)).
	Hotspots int
	// Boost multiplies the demand toward each hotspot (default 8).
	Boost float64
}

// Hotspot builds the hotspot workload: a gravity baseline with a few
// destination routers (content caches, peering exits) drawing Boost×
// their gravity share. The hotspot set is a seeded uniform choice.
func Hotspot(g *graph.Graph, p HotspotParams, peak float64, seed int64) *demand.Matrix {
	n := g.NumNodes()
	if p.Hotspots <= 0 {
		p.Hotspots = max(1, n/8)
	}
	if p.Boost <= 0 {
		p.Boost = 8
	}
	rng := rand.New(rand.NewSource(seed))
	m := demand.Gravity(g, 1)
	for _, t := range rng.Perm(n)[:min(p.Hotspots, n)] {
		for s := 0; s < n; s++ {
			if s != t {
				m.Set(graph.NodeID(s), graph.NodeID(t), m.At(graph.NodeID(s), graph.NodeID(t))*p.Boost)
			}
		}
	}
	return normalize(m, peak)
}

// FlashParams tunes the flash-crowd workload.
type FlashParams struct {
	// SourceFraction is the fraction of routers joining the crowd
	// (default 0.5).
	SourceFraction float64
	// Surge multiplies the crowd's demand toward the event destination
	// (default 20).
	Surge float64
}

// FlashCrowd builds the flash-crowd workload: on top of a gravity
// baseline, a seeded random destination suddenly receives Surge× demand
// from a random subset of sources — the "everyone watches the same
// stream" pattern that breaks demand forecasts.
func FlashCrowd(g *graph.Graph, p FlashParams, peak float64, seed int64) *demand.Matrix {
	n := g.NumNodes()
	if p.SourceFraction <= 0 || p.SourceFraction > 1 {
		p.SourceFraction = 0.5
	}
	if p.Surge <= 0 {
		p.Surge = 20
	}
	rng := rand.New(rand.NewSource(seed))
	m := demand.Gravity(g, 1)
	perm := rng.Perm(n)
	dest := graph.NodeID(perm[0])
	crowd := perm[1 : 1+int(p.SourceFraction*float64(n-1))]
	for _, s := range crowd {
		src := graph.NodeID(s)
		m.Set(src, dest, m.At(src, dest)*p.Surge)
	}
	return normalize(m, peak)
}

// TimeOfDay samples a diurnal demand sequence inside an uncertainty box:
// step t's matrix sits at depth ½(1+sin(2πt/steps)) between box.Min and
// box.Max, jittered per entry by ±jitter of the interval (clamped to the
// box, so every returned matrix satisfies box.Contains). This is the
// workload for evaluating one static COYOTE configuration across a day of
// traffic: the box is the operator's uncertainty set, the sequence is
// what the day actually serves.
func TimeOfDay(box *demand.Box, steps int, jitter float64, seed int64) []*demand.Matrix {
	if steps <= 0 {
		steps = 24
	}
	if jitter < 0 {
		jitter = 0
	}
	rng := rand.New(rand.NewSource(seed))
	n := box.Min.N
	out := make([]*demand.Matrix, steps)
	for t := 0; t < steps; t++ {
		depth := 0.5 * (1 + math.Sin(2*math.Pi*float64(t)/float64(steps)))
		m := demand.NewMatrix(n)
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if s == d {
					continue
				}
				lo := box.Min.At(graph.NodeID(s), graph.NodeID(d))
				hi := box.Max.At(graph.NodeID(s), graph.NodeID(d))
				f := depth + jitter*(2*rng.Float64()-1)
				if f < 0 {
					f = 0
				} else if f > 1 {
					f = 1
				}
				m.Set(graph.NodeID(s), graph.NodeID(d), lo+f*(hi-lo))
			}
		}
		out[t] = m
	}
	return out
}

// SampleBox draws one uniform sample from an uncertainty box: every entry
// independently uniform in [min, max]. Adversarial corners stress the
// worst case; uniform samples stress the typical one.
func SampleBox(box *demand.Box, seed int64) *demand.Matrix {
	rng := rand.New(rand.NewSource(seed))
	n := box.Min.N
	m := demand.NewMatrix(n)
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			lo := box.Min.At(graph.NodeID(s), graph.NodeID(d))
			hi := box.Max.At(graph.NodeID(s), graph.NodeID(d))
			m.Set(graph.NodeID(s), graph.NodeID(d), lo+rng.Float64()*(hi-lo))
		}
	}
	return m
}
