package scen

import (
	"bytes"
	"testing"
)

func render(t *testing.T, name string, p Params) string {
	t.Helper()
	g, err := Generate(name, p)
	if err != nil {
		t.Fatalf("Generate(%s): %v", name, err)
	}
	var buf bytes.Buffer
	if err := g.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	return buf.String()
}

// smallParams gives each generator a quick-to-build instance.
func smallParams() map[string]Params {
	return map[string]Params{
		"waxman":  {N: 14, Seed: 7},
		"ba":      {N: 14, M: 2, Seed: 7},
		"fattree": {K: 4},
		"grid":    {Rows: 3, Cols: 4, Seed: 7},
		"ring":    {N: 10, M: 3, Seed: 7},
	}
}

// TestGeneratorsDeterministic is the core determinism guarantee: the same
// (generator, Params) must produce the byte-identical topology text, and
// a different seed must not (for the randomized generators).
func TestGeneratorsDeterministic(t *testing.T) {
	for name, p := range smallParams() {
		first := render(t, name, p)
		second := render(t, name, p)
		if first != second {
			t.Errorf("%s: same seed produced different topologies:\n%s\nvs\n%s", name, first, second)
		}
		if name == "fattree" {
			continue // seed-free by design
		}
		p2 := p
		p2.Seed = p.Seed + 1
		if other := render(t, name, p2); other == first {
			t.Errorf("%s: different seeds produced identical topologies", name)
		}
	}
}

// TestGeneratorsValidAcrossSeeds stresses each generator across seeds;
// Generate itself enforces Validate + strong connectivity, so a nil error
// is the assertion.
func TestGeneratorsValidAcrossSeeds(t *testing.T) {
	for name, p := range smallParams() {
		for seed := int64(0); seed < 12; seed++ {
			p.Seed = seed
			if _, err := Generate(name, p); err != nil {
				t.Errorf("%s seed %d: %v", name, seed, err)
			}
		}
	}
}

func TestGeneratorShapes(t *testing.T) {
	cases := []struct {
		name       string
		p          Params
		nodes      int
		minLinks   int
		exactLinks int // -1 = only check minLinks
	}{
		{"waxman", Params{N: 20, Seed: 3}, 20, 19, -1},
		{"ba", Params{N: 20, M: 2, Seed: 3}, 20, 2*20 - 5, -1},
		// k=4 fat-tree: 4 cores + 4 pods × (2 agg + 2 edge) = 20 switches,
		// 4 links inside each pod + 2 uplinks per agg = 32 links.
		{"fattree", Params{K: 4}, 20, 32, 32},
		// 3×4 grid: 3·3 horizontal + 2·4 vertical = 17 links.
		{"grid", Params{Rows: 3, Cols: 4, Seed: 3}, 12, 17, 17},
		// 3×4 torus adds a wrap link per row and column.
		{"grid+wrap", Params{Rows: 3, Cols: 4, Wrap: true, Seed: 3}, 12, 24, 24},
		{"ring", Params{N: 12, M: 3, Seed: 3}, 12, 15, 15},
	}
	for _, tc := range cases {
		name := tc.name
		if name == "grid+wrap" {
			name = "grid"
		}
		g, err := Generate(name, tc.p)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if g.NumNodes() != tc.nodes {
			t.Errorf("%s: %d nodes, want %d", tc.name, g.NumNodes(), tc.nodes)
		}
		links := len(g.Links())
		if tc.exactLinks >= 0 && links != tc.exactLinks {
			t.Errorf("%s: %d links, want %d", tc.name, links, tc.exactLinks)
		}
		if links < tc.minLinks {
			t.Errorf("%s: %d links, want ≥ %d", tc.name, links, tc.minLinks)
		}
	}
}

func TestGenerateRejectsBadInput(t *testing.T) {
	if _, err := Generate("nope", Params{}); err == nil {
		t.Error("unknown generator should fail")
	}
	if _, err := Generate("fattree", Params{K: 3}); err == nil {
		t.Error("odd fat-tree arity should fail")
	}
	if _, err := Generate("waxman", Params{N: 1}); err == nil {
		t.Error("1-node waxman should fail")
	}
	if _, err := Generate("ring", Params{N: 2}); err == nil {
		t.Error("2-node ring should fail")
	}
}

func TestNamesAndDescribe(t *testing.T) {
	names := Names()
	want := []string{"ba", "fattree", "grid", "ring", "waxman"}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names()[%d] = %s, want %s", i, names[i], want[i])
		}
	}
	for _, g := range Describe() {
		if g.Desc == "" || g.build == nil {
			t.Errorf("generator %q missing description or builder", g.Name)
		}
	}
}
