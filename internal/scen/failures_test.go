package scen

import (
	"testing"

	"github.com/coyote-te/coyote/internal/graph"
)

func TestSingleLinkFailures(t *testing.T) {
	g := testGraph(t) // ring n=8 + 2 chords = 10 links
	sets := SingleLinkFailures(g)
	if len(sets) != len(g.Links()) {
		t.Fatalf("%d sets, want %d", len(sets), len(g.Links()))
	}
	for _, s := range sets {
		if len(s.Links) != 1 || s.Name == "" {
			t.Errorf("bad set %+v", s)
		}
	}
}

func TestKLinkFailures(t *testing.T) {
	g := testGraph(t)
	l := len(g.Links())
	sets, err := KLinkFailures(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if want := l * (l - 1) / 2; len(sets) != want {
		t.Fatalf("%d pairs, want C(%d,2) = %d", len(sets), l, want)
	}
	seen := map[string]bool{}
	for _, s := range sets {
		if len(s.Links) != 2 {
			t.Fatalf("set size %d, want 2", len(s.Links))
		}
		key := s.Name
		if seen[key] {
			t.Fatalf("duplicate set %q", key)
		}
		seen[key] = true
	}
	if _, err := KLinkFailures(g, 0); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := KLinkFailures(g, l+1); err == nil {
		t.Error("k > links should fail")
	}
}

func TestSampleKLinkFailures(t *testing.T) {
	g := testGraph(t)
	sets, err := SampleKLinkFailures(g, 3, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 5 {
		t.Fatalf("%d sets, want 5", len(sets))
	}
	seen := map[string]bool{}
	for _, s := range sets {
		if len(s.Links) != 3 {
			t.Fatalf("set size %d, want 3", len(s.Links))
		}
		if seen[s.Name] {
			t.Fatalf("duplicate sampled set %q", s.Name)
		}
		seen[s.Name] = true
	}
	// Deterministic in seed.
	again, err := SampleKLinkFailures(g, 3, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sets {
		if sets[i].Name != again[i].Name {
			t.Fatalf("sample %d differs across runs", i)
		}
	}
	// Asking for at least as many sets as exist falls back to exhaustive
	// enumeration — never a silently truncated sample.
	l := len(g.Links())
	all, err := SampleKLinkFailures(g, 2, l*l, 7)
	if err != nil {
		t.Fatal(err)
	}
	if want := l * (l - 1) / 2; len(all) != want {
		t.Fatalf("%d sets, want exhaustive %d", len(all), want)
	}
	if _, err := SampleKLinkFailures(g, 2, 0, 7); err == nil {
		t.Error("count=0 should fail")
	}
}

func TestSRLGPartitionCoversEveryLinkOnce(t *testing.T) {
	g := testGraph(t)
	sets := SRLGPartition(g, 3, 7)
	count := map[graph.EdgeID]int{}
	for _, s := range sets {
		if len(s.Links) == 0 {
			t.Errorf("empty group %q survived", s.Name)
		}
		for _, id := range s.Links {
			count[id]++
		}
	}
	for _, id := range g.Links() {
		if count[id] != 1 {
			t.Errorf("link %d appears %d times, want exactly once", id, count[id])
		}
	}
	// Deterministic in seed; a different seed may regroup.
	again := SRLGPartition(g, 3, 7)
	if len(again) != len(sets) {
		t.Fatal("partition differs across runs")
	}
	for i := range sets {
		if len(sets[i].Links) != len(again[i].Links) {
			t.Fatalf("group %d differs across runs", i)
		}
	}
	// Degenerate group counts clamp instead of failing.
	if got := SRLGPartition(g, 0, 7); len(got) != 1 {
		t.Errorf("groups=0 should clamp to one group, got %d", len(got))
	}
}
