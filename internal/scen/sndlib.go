package scen

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/graph"
)

// ReadSNDlib parses a network in the SNDlib native format [Orlowski et
// al. 2010] — the `?SNDlib native format` files with NODES/LINKS/DEMANDS
// sections — into a Graph plus, when a DEMANDS section is present, the
// file's demand matrix (nil otherwise).
//
// A link's capacity is the larger of its pre-installed capacity and its
// largest installable module capacity, defaulting to 1 when the file
// specifies neither; its OSPF weight is the link's routing cost when
// positive, else the inverse-capacity rule. All links are bidirectional
// (SNDlib models undirected supply edges). Demands between the same pair
// accumulate.
func ReadSNDlib(r io.Reader) (*graph.Graph, *demand.Matrix, error) {
	toks, err := sndTokens(r)
	if err != nil {
		return nil, nil, err
	}
	p := &sndParser{toks: toks}
	g := graph.New()
	var dm *demand.Matrix
	type rawDemand struct {
		s, t graph.NodeID
		v    float64
	}
	var demands []rawDemand

	for !p.done() {
		section := p.next()
		if section == "(" || section == ")" {
			return nil, nil, fmt.Errorf("scen: sndlib: unexpected %q at top level", section)
		}
		if !p.accept("(") {
			continue // e.g. the "?SNDlib native format; ..." header tokens
		}
		switch section {
		case "NODES":
			for !p.accept(")") {
				name := p.next()
				if name == "" {
					return nil, nil, fmt.Errorf("scen: sndlib: unterminated NODES section")
				}
				g.AddNode(name)
				if p.accept("(") { // optional ( longitude latitude )
					p.skipGroup()
				}
			}
		case "LINKS":
			for !p.accept(")") {
				if err := p.parseLink(g); err != nil {
					return nil, nil, err
				}
			}
		case "DEMANDS":
			for !p.accept(")") {
				s, t, v, err := p.parseDemand(g)
				if err != nil {
					return nil, nil, err
				}
				demands = append(demands, rawDemand{s, t, v})
			}
		default: // META, LINK-CONFIG, ADMISSIBLE-PATHS, ...
			p.skipGroup()
		}
	}
	if g.NumNodes() == 0 {
		return nil, nil, fmt.Errorf("scen: sndlib: no NODES section")
	}
	if g.NumEdges() == 0 {
		return nil, nil, fmt.Errorf("scen: sndlib: no LINKS section")
	}
	if demands != nil {
		dm = demand.NewMatrix(g.NumNodes())
		for _, d := range demands {
			if d.s != d.t {
				dm.Set(d.s, d.t, dm.At(d.s, d.t)+d.v)
			}
		}
	}
	return g, dm, nil
}

// sndTokens splits the input into words and parentheses, dropping
// '#'-to-end-of-line comments.
func sndTokens(r io.Reader) ([]string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var toks []string
	for sc.Scan() {
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.ReplaceAll(line, "(", " ( ")
		line = strings.ReplaceAll(line, ")", " ) ")
		toks = append(toks, strings.Fields(line)...)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("scen: sndlib: %w", err)
	}
	return toks, nil
}

type sndParser struct {
	toks []string
	pos  int
}

func (p *sndParser) done() bool { return p.pos >= len(p.toks) }

func (p *sndParser) next() string {
	if p.done() {
		return ""
	}
	t := p.toks[p.pos]
	p.pos++
	return t
}

func (p *sndParser) peek() string {
	if p.done() {
		return ""
	}
	return p.toks[p.pos]
}

func (p *sndParser) accept(tok string) bool {
	if p.peek() == tok {
		p.pos++
		return true
	}
	return false
}

// skipGroup consumes a balanced "( ... )" group's remaining tokens,
// assuming the opening paren was already consumed.
func (p *sndParser) skipGroup() {
	depth := 1
	for depth > 0 && !p.done() {
		switch p.next() {
		case "(":
			depth++
		case ")":
			depth--
		}
	}
}

// parseLink consumes one LINKS entry:
//
//	id ( source target ) preCap preCost routingCost setupCost ( modCap modCost ... )
func (p *sndParser) parseLink(g *graph.Graph) error {
	id := p.next()
	if id == "" {
		return fmt.Errorf("scen: sndlib: unterminated LINKS section")
	}
	if !p.accept("(") {
		return fmt.Errorf("scen: sndlib: link %s: expected ( source target )", id)
	}
	src, dst := p.next(), p.next()
	if !p.accept(")") {
		return fmt.Errorf("scen: sndlib: link %s: malformed endpoint list", id)
	}
	from, ok := g.NodeByName(src)
	if !ok {
		return fmt.Errorf("scen: sndlib: link %s: unknown node %q", id, src)
	}
	to, ok := g.NodeByName(dst)
	if !ok {
		return fmt.Errorf("scen: sndlib: link %s: unknown node %q", id, dst)
	}
	// Four scalar fields, all optional in the wild (some exports stop
	// after the endpoints): preCap preCost routingCost setupCost. A
	// non-numeric token means the entry ended early and the next link id
	// follows.
	scalars := make([]float64, 0, 4)
	for len(scalars) < 4 {
		tok := p.peek()
		if tok == "" || tok == "(" || tok == ")" {
			break
		}
		v, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			break
		}
		p.next()
		scalars = append(scalars, v)
	}
	capacity := 0.0
	if len(scalars) > 0 {
		capacity = scalars[0]
	}
	routingCost := 0.0
	if len(scalars) > 2 {
		routingCost = scalars[2]
	}
	// Module list: ( cap cost cap cost ... ) — take the largest module.
	if p.accept("(") {
		idx := 0
		for !p.accept(")") {
			tok := p.next()
			if tok == "" {
				return fmt.Errorf("scen: sndlib: link %s: unterminated module list", id)
			}
			v, err := strconv.ParseFloat(tok, 64)
			if err != nil {
				return fmt.Errorf("scen: sndlib: link %s: %w", id, err)
			}
			if idx%2 == 0 && v > capacity { // even positions are capacities
				capacity = v
			}
			idx++
		}
	}
	// NaN/Inf pass ParseFloat but must surface as parse errors, not as a
	// downstream AddLink panic.
	if math.IsNaN(capacity) || math.IsInf(capacity, 0) || math.IsNaN(routingCost) || math.IsInf(routingCost, 0) {
		return fmt.Errorf("scen: sndlib: link %s: non-finite capacity or cost", id)
	}
	if capacity <= 0 {
		capacity = 1
	}
	weight := routingCost
	if weight <= 0 {
		weight = linkWeight(capacity)
	}
	if from == to {
		return nil // tolerate degenerate self-loop entries
	}
	g.AddLink(from, to, capacity, weight)
	return nil
}

// parseDemand consumes one DEMANDS entry:
//
//	id ( source target ) routingUnit demandValue maxPathLength
func (p *sndParser) parseDemand(g *graph.Graph) (graph.NodeID, graph.NodeID, float64, error) {
	id := p.next()
	if id == "" {
		return 0, 0, 0, fmt.Errorf("scen: sndlib: unterminated DEMANDS section")
	}
	if !p.accept("(") {
		return 0, 0, 0, fmt.Errorf("scen: sndlib: demand %s: expected ( source target )", id)
	}
	src, dst := p.next(), p.next()
	if !p.accept(")") {
		return 0, 0, 0, fmt.Errorf("scen: sndlib: demand %s: malformed endpoint list", id)
	}
	from, ok := g.NodeByName(src)
	if !ok {
		return 0, 0, 0, fmt.Errorf("scen: sndlib: demand %s: unknown node %q", id, src)
	}
	to, ok := g.NodeByName(dst)
	if !ok {
		return 0, 0, 0, fmt.Errorf("scen: sndlib: demand %s: unknown node %q", id, dst)
	}
	value := 0.0
	idx := 0
	for idx < 3 && p.peek() != ")" && !p.done() {
		// routingUnit demandValue maxPathLength — maxPathLength may be the
		// word UNLIMITED; only position 1 matters.
		tok := p.peek()
		if v, err := strconv.ParseFloat(tok, 64); err == nil {
			if idx == 1 {
				value = v
			}
			p.next()
			idx++
			continue
		}
		if tok == "UNLIMITED" {
			p.next()
			idx++
			continue
		}
		break // next demand id
	}
	if !(value >= 0) || math.IsInf(value, 1) { // NaN fails the comparison too
		return 0, 0, 0, fmt.Errorf("scen: sndlib: demand %s: bad value %g", id, value)
	}
	return from, to, value, nil
}
