package scen_test

// End-to-end acceptance for the scenario engine, exercised through the
// public API exactly as cmd/coyote-scen does: generated topologies are
// byte-deterministic, and topologies loaded from the real-format fixtures
// run through the full Compute pipeline.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	coyote "github.com/coyote-te/coyote"
)

// tinyOpts keeps the Compute runs fast; the point is pipeline acceptance,
// not optimization quality.
var tinyOpts = coyote.Options{
	OptimizerIters:   40,
	AdversarialIters: 1,
	Samples:          2,
	Eps:              0.3,
	Seed:             1,
}

// TestGenerateWaxman50Deterministic is the acceptance criterion verbatim:
// `coyote-scen generate -gen waxman -n 50 -seed 7` twice produces
// byte-identical topology text.
func TestGenerateWaxman50Deterministic(t *testing.T) {
	render := func() []byte {
		topo, err := coyote.GenerateTopology("waxman", coyote.GenParams{N: 50, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := topo.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	first, second := render(), render()
	if !bytes.Equal(first, second) {
		t.Fatal("waxman n=50 seed=7 is not byte-deterministic")
	}
	if len(first) == 0 {
		t.Fatal("empty topology text")
	}
}

// TestLoadedFixturesComputeEndToEnd loads the GraphML and SNDlib fixtures
// and runs each through Compute.
func TestLoadedFixturesComputeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("Compute runs in -short mode")
	}
	for _, fixture := range []string{"zoo5.graphml", "tiny.snd"} {
		t.Run(fixture, func(t *testing.T) {
			topo, err := coyote.ReadTopologyFile(filepath.Join("testdata", fixture))
			if err != nil {
				t.Fatal(err)
			}
			if err := topo.Validate(); err != nil {
				t.Fatal(err)
			}
			bounds := coyote.MarginBounds(coyote.GravityDemands(topo, 1), 2)
			cfg, err := coyote.New(topo, bounds, tinyOpts).Compute()
			if err != nil {
				t.Fatal(err)
			}
			if cfg.Perf < 1-1e-6 {
				t.Errorf("PERF %g below 1", cfg.Perf)
			}
		})
	}
	// The SNDlib demand matrix composes with MarginBounds too.
	f, err := os.Open(filepath.Join("testdata", "tiny.snd"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	topo, dm, err := coyote.ReadSNDlib(f)
	if err != nil {
		t.Fatal(err)
	}
	if dm == nil {
		t.Fatal("fixture demands missing")
	}
	if _, err := coyote.New(topo, coyote.MarginBounds(dm, 2), tinyOpts).Compute(); err != nil {
		t.Fatal(err)
	}
}

// TestGeneratedScenarioComputes runs a composed Scenario (generator +
// workload + failure suite) through Compute.
func TestGeneratedScenarioComputes(t *testing.T) {
	if testing.Short() {
		t.Skip("Compute runs in -short mode")
	}
	s, err := coyote.GenerateScenario("ring", coyote.GenParams{N: 8, M: 2, Seed: 5}, "hotspot", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Failures) != 10 { // 8 ring links + 2 chords
		t.Fatalf("%d failure sets, want 10", len(s.Failures))
	}
	cfg, err := s.Compute(tinyOpts)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Perf < 1-1e-6 || cfg.ECMPPerf < cfg.Perf-1e-6 {
		t.Errorf("PERF %g / ECMP %g out of range", cfg.Perf, cfg.ECMPPerf)
	}
}

func TestDemandModelsListed(t *testing.T) {
	models := coyote.DemandModels()
	if len(models) < 5 {
		t.Fatalf("models = %v", models)
	}
	topo, err := coyote.GenerateTopology("grid", coyote.GenParams{Rows: 3, Cols: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range models {
		if _, err := coyote.BuildDemands(topo, m, 1, 1); err != nil {
			t.Errorf("BuildDemands(%s): %v", m, err)
		}
	}
}
