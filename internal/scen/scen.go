// Package scen is the scenario engine: it manufactures evaluation
// scenarios — topologies, demand workloads, and failure patterns — beyond
// the fixed synthetic corpus of internal/topo.
//
// Three ingredient families compose a scenario:
//
//   - Parametric topology generators (Generate): Waxman and
//     Barabási–Albert random graphs, fat-tree/Clos datacenter fabrics,
//     and grid/ring WANs. Every generator consumes an explicit seed and
//     is deterministic: the same Params always yield the byte-identical
//     topology (see TestGeneratorsDeterministic).
//   - Loaders for real topology formats (ReadGraphML, ReadSNDlib):
//     Internet Topology Zoo GraphML and SNDlib native files parsed from
//     an io.Reader, with link capacities inferred from the file's
//     speed/module annotations and OSPF weights defaulted to the
//     inverse-capacity rule the paper cites [16].
//   - Demand workload suites (workload.go) beyond gravity/bimodal —
//     hotspot, flash-crowd, and time-of-day sequences sampled inside a
//     demand.Box — and failure-scenario enumeration (failures.go):
//     single-link, k-link, and shared-risk-link-group sets feeding
//     internal/failover.
//
// The public surface is re-exported through the coyote root package
// (coyote.GenerateTopology, coyote.ReadGraphML, ...) and driven from the
// command line by cmd/coyote-scen.
package scen

import (
	"fmt"
	"sort"

	"github.com/coyote-te/coyote/internal/graph"
)

// Params parameterizes a topology generator. Zero fields take
// generator-specific defaults (see each generator's description); Seed is
// always honored as-is, so the zero Params is itself a valid, reproducible
// input.
type Params struct {
	// N is the target node count (waxman, ba, ring). Default 20.
	N int
	// Seed drives every random choice the generator makes.
	Seed int64

	// Alpha and Beta are the Waxman edge-probability parameters
	// P(u,v) = Alpha·exp(-d(u,v)/(Beta·L)). Defaults 0.4 and 0.2.
	Alpha, Beta float64

	// M is the number of links each new node attaches with
	// (Barabási–Albert), or the number of random chord links added to a
	// ring. Default 2.
	M int

	// K is the fat-tree arity (port count per switch; must be even).
	// Default 4, giving the classic 20-switch fabric.
	K int

	// Rows and Cols size the grid generator. Defaults 4×5.
	Rows, Cols int
	// Wrap turns the grid into a torus (wraparound rows and columns).
	Wrap bool

	// CapClasses are the capacity values links sample from (uniformly).
	// Default {10, 2.5, 1}, the corpus's 10G/2.5G/1G mix. Fat-tree
	// fabrics ignore this and use uniform capacities per tier.
	CapClasses []float64
}

func (p Params) withDefaults() Params {
	if p.N <= 0 {
		p.N = 20
	}
	if p.Alpha == 0 {
		p.Alpha = 0.4
	}
	if p.Beta == 0 {
		p.Beta = 0.2
	}
	if p.M <= 0 {
		p.M = 2
	}
	if p.K <= 0 {
		p.K = 4
	}
	if p.Rows <= 0 {
		p.Rows = 4
	}
	if p.Cols <= 0 {
		p.Cols = 5
	}
	if len(p.CapClasses) == 0 {
		p.CapClasses = []float64{10, 2.5, 1}
	}
	return p
}

// Generator is one registered topology generator.
type Generator struct {
	Name string
	// Desc is a one-line description for -list output.
	Desc  string
	build func(p Params) (*graph.Graph, error)
}

var generators = map[string]Generator{
	"waxman": {
		Name: "waxman",
		Desc: "Waxman random WAN: geometric nodes, P(u,v)=α·exp(-d/βL) links (-n, -alpha, -beta)",
	},
	"ba": {
		Name: "ba",
		Desc: "Barabási–Albert preferential attachment: -m links per new node (-n, -m)",
	},
	"fattree": {
		Name: "fattree",
		Desc: "k-ary fat-tree/Clos fabric: k pods of edge+aggregation plus (k/2)² cores (-k, even)",
	},
	"grid": {
		Name: "grid",
		Desc: "rows×cols grid WAN, optionally wrapped into a torus (-rows, -cols, -wrap)",
	},
	"ring": {
		Name: "ring",
		Desc: "n-node ring plus m random chords (-n, -m)",
	},
}

func init() {
	// Wired here rather than in the literal so the table stays readable.
	reg := func(name string, f func(Params) (*graph.Graph, error)) {
		g := generators[name]
		g.build = f
		generators[name] = g
	}
	reg("waxman", genWaxman)
	reg("ba", genBarabasiAlbert)
	reg("fattree", genFatTree)
	reg("grid", genGrid)
	reg("ring", genRing)
}

// Names returns the registered generator names, sorted.
func Names() []string {
	out := make([]string, 0, len(generators))
	for name := range generators {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Describe returns the registered generators, sorted by name.
func Describe() []Generator {
	out := make([]Generator, 0, len(generators))
	for _, name := range Names() {
		out = append(out, generators[name])
	}
	return out
}

// Generate builds a topology with the named generator. The result is
// validated (strongly connected, positive capacities/weights) before being
// returned, and is a pure function of (name, Params).
func Generate(name string, p Params) (*graph.Graph, error) {
	gen, ok := generators[name]
	if !ok {
		return nil, fmt.Errorf("scen: unknown generator %q (have %v)", name, Names())
	}
	g, err := gen.build(p.withDefaults())
	if err != nil {
		return nil, fmt.Errorf("scen: %s: %w", name, err)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("scen: %s produced invalid graph: %w", name, err)
	}
	if !g.Connected() {
		return nil, fmt.Errorf("scen: %s produced a disconnected graph", name)
	}
	return g, nil
}
