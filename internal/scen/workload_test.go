package scen

import (
	"math"
	"testing"

	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/graph"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := Generate("ring", Params{N: 8, M: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func sameMatrix(a, b *demand.Matrix) bool {
	if a.N != b.N {
		return false
	}
	for i := range a.D {
		if a.D[i] != b.D[i] {
			return false
		}
	}
	return true
}

func TestBaseMatrixModels(t *testing.T) {
	g := testGraph(t)
	for _, model := range Models() {
		m, err := BaseMatrix(g, model, 1, 3)
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		if math.Abs(m.MaxEntry()-1) > 1e-12 {
			t.Errorf("%s: peak %g, want 1", model, m.MaxEntry())
		}
		m2, err := BaseMatrix(g, model, 1, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !sameMatrix(m, m2) {
			t.Errorf("%s: not deterministic in seed", model)
		}
	}
	if _, err := BaseMatrix(g, "nope", 1, 3); err == nil {
		t.Error("unknown model should fail")
	}
}

func TestHotspotBoostsDestinations(t *testing.T) {
	g := testGraph(t)
	grav := demand.Gravity(g, 1)
	hot := Hotspot(g, HotspotParams{Hotspots: 2, Boost: 8}, 1, 3)
	// Per-column hotspot/gravity ratios: normalization rescales all of
	// them uniformly, so exactly 2 destinations must sit 8× above the
	// smallest ratio.
	n := g.NumNodes()
	ratios := make([]float64, n)
	lo := math.Inf(1)
	for d := 0; d < n; d++ {
		var gsum, hsum float64
		for s := 0; s < n; s++ {
			if s == d {
				continue
			}
			gsum += grav.At(graph.NodeID(s), graph.NodeID(d))
			hsum += hot.At(graph.NodeID(s), graph.NodeID(d))
		}
		ratios[d] = hsum / gsum
		lo = math.Min(lo, ratios[d])
	}
	boosted := 0
	for _, r := range ratios {
		if r > 4*lo {
			boosted++
		}
	}
	if boosted != 2 {
		t.Errorf("%d boosted destinations, want 2", boosted)
	}
}

func TestFlashCrowdSingleDestination(t *testing.T) {
	g := testGraph(t)
	grav := demand.Gravity(g, 1)
	flash := FlashCrowd(g, FlashParams{}, 1, 3)
	n := g.NumNodes()
	// Entry-wise flash/gravity ratios take exactly two values (1 and
	// Surge, both times the normalization scale); only one destination
	// column may contain surged entries.
	lo := math.Inf(1)
	for i, v := range flash.D {
		if grav.D[i] > 0 {
			lo = math.Min(lo, v/grav.D[i])
		}
	}
	surgedCols := 0
	for d := 0; d < n; d++ {
		surged := false
		for s := 0; s < n; s++ {
			if s == d {
				continue
			}
			if flash.At(graph.NodeID(s), graph.NodeID(d))/grav.At(graph.NodeID(s), graph.NodeID(d)) > 10*lo {
				surged = true
			}
		}
		if surged {
			surgedCols++
		}
	}
	if surgedCols != 1 {
		t.Errorf("%d surged destination columns, want 1", surgedCols)
	}
}

func TestTimeOfDayStaysInsideBox(t *testing.T) {
	g := testGraph(t)
	box := demand.MarginBox(demand.Gravity(g, 1), 2)
	steps := TimeOfDay(box, 24, 0.2, 9)
	if len(steps) != 24 {
		t.Fatalf("%d steps, want 24", len(steps))
	}
	for i, m := range steps {
		if !box.Contains(m) {
			t.Errorf("step %d leaves the box", i)
		}
	}
	// Deterministic, and the diurnal swing is visible: the peak step
	// carries more total demand than the trough.
	again := TimeOfDay(box, 24, 0.2, 9)
	for i := range steps {
		if !sameMatrix(steps[i], again[i]) {
			t.Fatalf("step %d differs across runs", i)
		}
	}
	lo, hi := math.Inf(1), 0.0
	for _, m := range steps {
		tot := m.Total()
		lo = math.Min(lo, tot)
		hi = math.Max(hi, tot)
	}
	if hi <= lo*1.5 {
		t.Errorf("diurnal swing too flat: total range [%g, %g]", lo, hi)
	}
}

func TestSampleBoxInsideAndDeterministic(t *testing.T) {
	g := testGraph(t)
	box := demand.MarginBox(demand.Gravity(g, 1), 3)
	m := SampleBox(box, 11)
	if !box.Contains(m) {
		t.Error("sample leaves the box")
	}
	if !sameMatrix(m, SampleBox(box, 11)) {
		t.Error("not deterministic in seed")
	}
	if sameMatrix(m, SampleBox(box, 12)) {
		t.Error("different seeds should differ")
	}
}
