package scen

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/coyote-te/coyote/internal/graph"
)

func openFixture(t *testing.T, name string) *os.File {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func linkCap(t *testing.T, g *graph.Graph, a, b string) float64 {
	t.Helper()
	na, ok := g.NodeByName(a)
	if !ok {
		t.Fatalf("node %q missing", a)
	}
	nb, ok := g.NodeByName(b)
	if !ok {
		t.Fatalf("node %q missing", b)
	}
	id, ok := g.FindEdge(na, nb)
	if !ok {
		t.Fatalf("link %s–%s missing", a, b)
	}
	return g.Edge(id).Capacity
}

func TestReadGraphMLZooFixture(t *testing.T) {
	g, err := ReadGraphML(openFixture(t, "zoo5.graphml"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 5 {
		t.Fatalf("%d nodes, want 5", g.NumNodes())
	}
	// The unlabeled node falls back to its id.
	if _, ok := g.NodeByName("4"); !ok {
		t.Error("unlabeled node should be named by its id")
	}
	// 6 physical links: the parallel Seattle–Denver pair merged, the
	// self-loop dropped.
	if got := len(g.Links()); got != 6 {
		t.Fatalf("%d links, want 6", got)
	}
	cases := []struct {
		a, b string
		cap  float64
	}{
		{"Seattle", "Denver", 20},       // LinkSpeedRaw 10G, parallel edge merged: 10+10
		{"Denver", "Chicago", 2.5},      // LinkSpeed 2.5 + units G
		{"Chicago", "Houston", 2.48832}, // OC-48 = 48 × 51.84 Mbit/s
		{"Houston", "Seattle", 1},       // unannotated default
		{"Houston", "4", 0.622},         // "622 Mbps" label
		{"4", "Seattle", 1},             // LinkSpeedRaw 1e9
	}
	for _, tc := range cases {
		if got := linkCap(t, g, tc.a, tc.b); math.Abs(got-tc.cap) > 1e-9 {
			t.Errorf("capacity(%s–%s) = %g, want %g", tc.a, tc.b, got, tc.cap)
		}
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if !g.Connected() {
		t.Error("fixture should be strongly connected")
	}
}

func TestReadGraphMLErrors(t *testing.T) {
	cases := map[string]string{
		"not xml":      "node a\nnode b\n",
		"no graph":     `<?xml version="1.0"?><graphml></graphml>`,
		"no nodes":     `<graphml><graph edgedefault="undirected"></graph></graphml>`,
		"bad endpoint": `<graphml><graph><node id="0"/><edge source="0" target="9"/></graph></graphml>`,
		"no edges":     `<graphml><graph><node id="0"/><node id="1"/></graph></graphml>`,
	}
	for name, src := range cases {
		if _, err := ReadGraphML(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReadSNDlibFixture(t *testing.T) {
	g, dm, err := ReadSNDlib(openFixture(t, "tiny.snd"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 4 {
		t.Fatalf("%d nodes, want 4", g.NumNodes())
	}
	if got := len(g.Links()); got != 5 {
		t.Fatalf("%d links, want 5", got)
	}
	// L1: single 40-unit module. L2: larger of the two modules, with a
	// routing cost that becomes the OSPF weight. L3: pre-installed 2.5
	// with an empty module list.
	if got := linkCap(t, g, "Amsterdam", "Brussels"); got != 40 {
		t.Errorf("L1 capacity = %g, want 40", got)
	}
	if got := linkCap(t, g, "Brussels", "Paris"); got != 40 {
		t.Errorf("L2 capacity = %g, want 40", got)
	}
	bru, _ := g.NodeByName("Brussels")
	par, _ := g.NodeByName("Paris")
	if id, _ := g.FindEdge(bru, par); g.Edge(id).Weight != 3 {
		t.Errorf("L2 weight = %g, want routing cost 3", g.Edge(id).Weight)
	}
	if got := linkCap(t, g, "Paris", "Frankfurt"); got != 2.5 {
		t.Errorf("L3 capacity = %g, want pre-installed 2.5", got)
	}
	if dm == nil {
		t.Fatal("DEMANDS section should yield a matrix")
	}
	ams, _ := g.NodeByName("Amsterdam")
	fra, _ := g.NodeByName("Frankfurt")
	if got := dm.At(ams, par); got != 82 {
		t.Errorf("demand Amsterdam→Paris = %g, want 82", got)
	}
	if got := dm.At(bru, fra); got != 22 {
		t.Errorf("demand Brussels→Frankfurt = %g, want 22", got)
	}
	if got := dm.At(par, ams); got != 40 {
		t.Errorf("demand Paris→Amsterdam = %g, want 40", got)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if !g.Connected() {
		t.Error("fixture should be strongly connected")
	}
}

func TestReadSNDlibNoDemands(t *testing.T) {
	src := "?SNDlib native format\nNODES (\n a ( 0 0 )\n b ( 1 1 )\n)\nLINKS (\n L1 ( a b ) 0 0 0 0 ( 10 1 )\n)\n"
	g, dm, err := ReadSNDlib(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if dm != nil {
		t.Error("no DEMANDS section should yield a nil matrix")
	}
	if g.NumNodes() != 2 || len(g.Links()) != 1 {
		t.Errorf("got %v", g)
	}
}

func TestReadSNDlibErrors(t *testing.T) {
	cases := map[string]string{
		"no nodes":         "LINKS (\n L1 ( a b ) ( 1 1 )\n)\n",
		"no links":         "NODES (\n a ( 0 0 )\n)\n",
		"unknown endpoint": "NODES (\n a ( 0 0 )\n)\nLINKS (\n L1 ( a b ) ( 1 1 )\n)\n",
		"unterminated":     "NODES (\n a ( 0 0 )\n b ( 0 0 )\n)\nLINKS (\n L1 ( a b ",
		"bad demand node":  "NODES (\n a ( 0 0 )\n b ( 0 0 )\n)\nLINKS (\n L1 ( a b ) ( 1 1 )\n)\nDEMANDS (\n D1 ( a z ) 1 5 UNLIMITED\n)\n",
		"NaN capacity":     "NODES (\n a ( 0 0 )\n b ( 0 0 )\n)\nLINKS (\n L1 ( a b ) NaN 0 0 0 ( )\n)\n",
		"Inf module":       "NODES (\n a ( 0 0 )\n b ( 0 0 )\n)\nLINKS (\n L1 ( a b ) 0 0 0 0 ( +Inf 1 )\n)\n",
		"NaN routing cost": "NODES (\n a ( 0 0 )\n b ( 0 0 )\n)\nLINKS (\n L1 ( a b ) 0 0 NaN 0 ( 10 1 )\n)\n",
		"NaN demand":       "NODES (\n a ( 0 0 )\n b ( 0 0 )\n)\nLINKS (\n L1 ( a b ) ( 10 1 )\n)\nDEMANDS (\n D1 ( a b ) 1 NaN UNLIMITED\n)\n",
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("ReadSNDlib panicked: %v", r)
				}
			}()
			if _, _, err := ReadSNDlib(strings.NewReader(src)); err == nil {
				t.Errorf("expected error")
			}
		})
	}
}

func TestReadGraphMLDirected(t *testing.T) {
	// A directed GraphML file: antiparallel edges must stay two directed
	// edges (not merge into one double-capacity link).
	src := `<graphml>
	  <key attr.name="LinkSpeedRaw" for="edge" id="d1"/>
	  <graph edgedefault="directed">
	    <node id="a"/><node id="b"/><node id="c"/>
	    <edge source="a" target="b"><data key="d1">10000000000</data></edge>
	    <edge source="b" target="a"><data key="d1">10000000000</data></edge>
	    <edge source="b" target="c"/><edge source="c" target="a"/>
	  </graph>
	</graphml>`
	g, err := ReadGraphML(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 4 {
		t.Fatalf("%d directed edges, want 4", g.NumEdges())
	}
	if got := linkCap(t, g, "a", "b"); got != 10 {
		t.Errorf("a→b capacity = %g, want 10 (not merged to 20)", got)
	}
	if got := linkCap(t, g, "b", "a"); got != 10 {
		t.Errorf("b→a capacity = %g, want 10", got)
	}
}

func TestReadGraphMLRejectsInfiniteSpeed(t *testing.T) {
	// An Inf LinkSpeed annotation must fall back to the default capacity,
	// never produce an infinite-capacity link.
	src := `<graphml>
	  <key attr.name="LinkSpeed" for="edge" id="d1"/>
	  <graph edgedefault="undirected">
	    <node id="a"/><node id="b"/>
	    <edge source="a" target="b"><data key="d1">Infinity</data></edge>
	  </graph>
	</graphml>`
	g, err := ReadGraphML(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if got := linkCap(t, g, "a", "b"); got != 1 {
		t.Errorf("capacity = %g, want default 1", got)
	}
}

func TestSniffAndReadAuto(t *testing.T) {
	cases := []struct {
		fixture string
		format  Format
	}{
		{"zoo5.graphml", FormatGraphML},
		{"tiny.snd", FormatSNDlib},
	}
	for _, tc := range cases {
		data, err := os.ReadFile(filepath.Join("testdata", tc.fixture))
		if err != nil {
			t.Fatal(err)
		}
		if f := Sniff(data); f != tc.format {
			t.Errorf("Sniff(%s) = %s, want %s", tc.fixture, f, tc.format)
		}
		g, err := ReadFile(filepath.Join("testdata", tc.fixture))
		if err != nil {
			t.Fatalf("ReadFile(%s): %v", tc.fixture, err)
		}
		if g.NumNodes() == 0 {
			t.Errorf("ReadFile(%s): empty graph", tc.fixture)
		}
	}
	if f := Sniff([]byte("node a\nnode b\nlink a b 1 1\n")); f != FormatText {
		t.Errorf("text sniffed as %s", f)
	}
}
