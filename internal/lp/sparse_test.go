package lp

import (
	"math"
	"math/rand"
	"testing"
)

// randomModel generates a random bounded LP exercising every feature the
// sparse engine adds over the dense tableau: finite/infinite bounds on
// either side, negative lower bounds, free variables, fixed variables,
// ranged and equality rows, and duplicate terms.
func randomModel(rng *rand.Rand) *Model {
	sense := Minimize
	if rng.Intn(2) == 0 {
		sense = Maximize
	}
	m := NewModel(sense)
	n := 2 + rng.Intn(8)
	for j := 0; j < n; j++ {
		var lo, up float64
		switch rng.Intn(6) {
		case 0:
			lo, up = 0, Inf
		case 1:
			lo, up = -2-rng.Float64()*3, 2+rng.Float64()*3
		case 2:
			lo, up = math.Inf(-1), rng.Float64()*4
		case 3:
			lo, up = -rng.Float64()*2, Inf
		case 4:
			v := rng.Float64()*4 - 2
			lo, up = v, v // fixed
		default:
			lo, up = 0, 1+rng.Float64()*5
		}
		m.AddVar(lo, up, rng.Float64()*6-3)
	}
	nrows := 1 + rng.Intn(8)
	for i := 0; i < nrows; i++ {
		nt := 1 + rng.Intn(n)
		terms := make([]Term, 0, nt+1)
		for k := 0; k < nt; k++ {
			terms = append(terms, Term{rng.Intn(n), rng.Float64()*4 - 2})
		}
		if rng.Intn(4) == 0 {
			terms = append(terms, terms[0]) // duplicate term: must accumulate
		}
		b := rng.Float64()*8 - 2
		switch rng.Intn(4) {
		case 0:
			m.AddLE(terms, b)
		case 1:
			m.AddGE(terms, b-4)
		case 2:
			m.AddEQ(terms, b/2)
		default:
			m.AddRow(terms, b-3-rng.Float64()*2, b)
		}
	}
	return m
}

// TestSparseDenseParityRandom cross-validates the sparse revised simplex
// against the dense full-tableau oracle on randomized LPs: statuses must
// agree, and optima must match to tight tolerance. Unbounded models where
// the two engines agree are accepted as-is; mixed verdicts fail.
func TestSparseDenseParityRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	solved := 0
	for trial := 0; trial < 400; trial++ {
		mdl := randomModel(rng)
		ssol, err := mdl.Solve(nil)
		if err != nil {
			t.Fatalf("trial %d: sparse: %v", trial, err)
		}
		if ssol.Stats.DenseFallback {
			t.Fatalf("trial %d: sparse engine fell back to dense", trial)
		}
		dsol, err := mdl.SolveDense()
		if err != nil {
			t.Fatalf("trial %d: dense: %v", trial, err)
		}
		if ssol.Status != dsol.Status {
			t.Fatalf("trial %d: sparse status %v, dense %v", trial, ssol.Status, dsol.Status)
		}
		if ssol.Status != Optimal {
			continue
		}
		solved++
		tol := 1e-6 * (1 + math.Abs(dsol.Objective))
		if math.Abs(ssol.Objective-dsol.Objective) > tol {
			t.Fatalf("trial %d: sparse objective %.12g, dense %.12g", trial, ssol.Objective, dsol.Objective)
		}
		// The sparse X must be feasible for its own model.
		checkFeasible(t, mdl, ssol.X, trial)
	}
	if solved < 50 {
		t.Fatalf("only %d/400 random models optimal; generator broken?", solved)
	}
}

func checkFeasible(t *testing.T, m *Model, x []float64, trial int) {
	t.Helper()
	const tol = 1e-6
	for j := range m.vlo {
		if x[j] < m.vlo[j]-tol || x[j] > m.vup[j]+tol {
			t.Fatalf("trial %d: x[%d]=%g outside [%g, %g]", trial, j, x[j], m.vlo[j], m.vup[j])
		}
	}
	for i, r := range m.rows {
		act := 0.0
		for _, tm := range r.terms {
			act += tm.Coeff * x[tm.Var]
		}
		if act < r.lo-tol || act > r.up+tol {
			t.Fatalf("trial %d: row %d activity %g outside [%g, %g]", trial, i, act, r.lo, r.up)
		}
	}
}

// TestDualsKKT checks the sign convention and optimality conditions of the
// reported duals on random optimal models: reduced costs must vanish for
// in-between (basic) variables and point the right way at active bounds,
// and row duals must respect the activity bound they are pinned to.
func TestDualsKKT(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	checked := 0
	for trial := 0; trial < 200 && checked < 60; trial++ {
		mdl := randomModel(rng)
		sol, err := mdl.Solve(nil)
		if err != nil || sol.Status != Optimal {
			continue
		}
		checked++
		// Normalize to minimization for the sign checks.
		sign := 1.0
		if mdl.sense == Maximize {
			sign = -1
		}
		n := len(mdl.obj)
		// Reduced costs d_j = c_j − yᵀA_j (minimization convention).
		d := make([]float64, n)
		for j := 0; j < n; j++ {
			d[j] = sign * mdl.obj[j]
		}
		for i, r := range mdl.rows {
			y := sign * sol.Duals[i]
			for _, tm := range r.terms {
				d[tm.Var] -= y * tm.Coeff
			}
		}
		const tol = 1e-5
		for j := 0; j < n; j++ {
			atLo := sol.X[j] < mdl.vlo[j]+1e-7
			atUp := sol.X[j] > mdl.vup[j]-1e-7
			switch {
			case atLo && atUp: // fixed: any reduced cost is fine
			case atLo:
				if d[j] < -tol {
					t.Fatalf("trial %d: var %d at lower with reduced cost %g < 0", trial, j, d[j])
				}
			case atUp:
				if d[j] > tol {
					t.Fatalf("trial %d: var %d at upper with reduced cost %g > 0", trial, j, d[j])
				}
			default:
				if math.Abs(d[j]) > tol {
					t.Fatalf("trial %d: interior var %d has reduced cost %g ≠ 0", trial, j, d[j])
				}
			}
		}
		// Row duals: positive only when pushing against the lower activity
		// bound, negative only against the upper (minimization convention).
		for i, r := range mdl.rows {
			act := 0.0
			for _, tm := range r.terms {
				act += tm.Coeff * sol.X[tm.Var]
			}
			y := sign * sol.Duals[i]
			atLo := act < r.lo+1e-7
			atUp := act > r.up-1e-7
			if !atLo && y > tol {
				t.Fatalf("trial %d: row %d slack below upper yet dual %g > 0", trial, i, y)
			}
			if !atUp && y < -tol {
				t.Fatalf("trial %d: row %d slack above lower yet dual %g < 0", trial, i, y)
			}
		}
	}
	if checked < 30 {
		t.Fatalf("only %d optimal models checked", checked)
	}
}

// TestWarmStartSkipsPhase1 re-solves a feasible model with a changed
// objective from its previous optimal basis: the warm solve must accept
// the basis and spend zero iterations in phase 1.
func TestWarmStartSkipsPhase1(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tried := 0
	for trial := 0; trial < 100 && tried < 25; trial++ {
		mdl := randomModel(rng)
		sol, err := mdl.Solve(nil)
		if err != nil || sol.Status != Optimal {
			continue
		}
		tried++
		for j := 0; j < len(mdl.obj); j++ {
			mdl.SetObjective(j, mdl.obj[j]+rng.Float64()-0.5)
		}
		warm, err := mdl.Solve(&SolveOptions{Basis: sol.Basis})
		if err != nil {
			t.Fatalf("trial %d: warm solve: %v", trial, err)
		}
		if !warm.Stats.WarmUsed {
			t.Fatalf("trial %d: warm basis rejected", trial)
		}
		if warm.Stats.Phase1Iterations != 0 {
			t.Fatalf("trial %d: warm solve spent %d phase-1 iterations after an objective-only change",
				trial, warm.Stats.Phase1Iterations)
		}
		if warm.Status == Optimal {
			cold, err := mdl.Solve(nil)
			if err != nil {
				t.Fatal(err)
			}
			if cold.Status != Optimal {
				t.Fatalf("trial %d: warm optimal but cold %v", trial, cold.Status)
			}
			tol := 1e-6 * (1 + math.Abs(cold.Objective))
			if math.Abs(warm.Objective-cold.Objective) > tol {
				t.Fatalf("trial %d: warm objective %.12g, cold %.12g", trial, warm.Objective, cold.Objective)
			}
		}
	}
	if tried < 10 {
		t.Fatalf("only %d warm starts exercised", tried)
	}
}

// TestWarmStartRHSChange moves row bounds between warm-started solves (the
// session/UpdateBounds pattern): the warm basis must be accepted and reach
// the same optimum as a cold solve.
func TestWarmStartRHSChange(t *testing.T) {
	m := NewModel(Minimize)
	x := m.AddVar(0, Inf, 1)
	y := m.AddVar(0, Inf, 2)
	r1 := m.AddGE([]Term{{x, 1}, {y, 1}}, 10)
	m.AddEQ([]Term{{x, 1}, {y, -1}}, 2)
	sol, err := m.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective-14) > 1e-6 {
		t.Fatalf("cold: %v obj=%g, want optimal 14", sol.Status, sol.Objective)
	}
	m.SetRowBounds(r1, 20, Inf)
	warm, err := m.Solve(&SolveOptions{Basis: sol.Basis})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Stats.WarmUsed {
		t.Fatal("warm basis rejected after RHS change")
	}
	if warm.Status != Optimal || math.Abs(warm.Objective-29) > 1e-6 {
		t.Fatalf("warm: %v obj=%g, want optimal 29 (x=11, y=9)", warm.Status, warm.Objective)
	}
}

// TestWarmStartShapeMismatch verifies that a basis from a different model
// shape is rejected gracefully (cold start, not an error).
func TestWarmStartShapeMismatch(t *testing.T) {
	small := NewModel(Minimize)
	a := small.AddVar(0, Inf, 1)
	small.AddGE([]Term{{a, 1}}, 1)
	ssol, err := small.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	big := NewModel(Minimize)
	x := big.AddVar(0, Inf, 1)
	y := big.AddVar(0, Inf, 1)
	big.AddGE([]Term{{x, 1}, {y, 1}}, 4)
	bsol, err := big.Solve(&SolveOptions{Basis: ssol.Basis})
	if err != nil {
		t.Fatal(err)
	}
	if bsol.Stats.WarmUsed {
		t.Fatal("mismatched basis must not be used")
	}
	if !bsol.Stats.WarmAttempted {
		t.Fatal("warm attempt should be recorded")
	}
	if bsol.Status != Optimal || math.Abs(bsol.Objective-4) > 1e-6 {
		t.Fatalf("got %v obj=%g, want optimal 4", bsol.Status, bsol.Objective)
	}
}

// TestGlobalStatsAccumulate sanity-checks the -lp-stats counters.
func TestGlobalStatsAccumulate(t *testing.T) {
	ResetGlobalStats()
	m := NewModel(Maximize)
	x := m.AddVar(0, 4, 3)
	y := m.AddVar(0, 6, 5)
	m.AddLE([]Term{{x, 3}, {y, 2}}, 18)
	sol, err := m.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Solve(&SolveOptions{Basis: sol.Basis}); err != nil {
		t.Fatal(err)
	}
	st := GlobalStats()
	if st.Solves != 2 || st.WarmAttempts != 1 || st.WarmHits != 1 {
		t.Fatalf("stats = %+v, want 2 solves, 1 warm attempt, 1 hit", st)
	}
	if st.WarmHitRate() != 1 {
		t.Fatalf("hit rate = %g, want 1", st.WarmHitRate())
	}
	ResetGlobalStats()
	if GlobalStats().Solves != 0 {
		t.Fatal("reset did not clear counters")
	}
}

// BenchmarkSparseMedium mirrors BenchmarkSimplexMedium on the sparse
// engine (same random instance family, built through the Model API).
func BenchmarkSparseMedium(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	p, _, _, _ := randomLP(rng, 60, 80)
	m := NewModel(Maximize)
	for j := 0; j < p.nvars; j++ {
		m.AddVar(0, Inf, p.obj[j])
	}
	for _, r := range p.rows {
		m.AddLE(r.terms, r.rhs)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Solve(nil); err != nil {
			b.Fatal(err)
		}
	}
}

// TestWarmStartFreeVarGainsBounds mutates a free variable's bounds between
// warm-started solves: the import must pin the formerly-free nonbasic
// variable to a bound instead of holding it at 0 outside [lo, up].
func TestWarmStartFreeVarGainsBounds(t *testing.T) {
	m := NewModel(Minimize)
	x := m.AddVar(math.Inf(-1), Inf, 0) // free, zero cost: stays nonbasic at 0
	y := m.AddVar(0, Inf, 1)
	m.AddGE([]Term{{y, 1}}, 2)
	m.AddLE([]Term{{x, 1}, {y, 1}}, 100)
	sol, err := m.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("cold status %v", sol.Status)
	}
	if sol.Basis.Status[x] != BasisFree {
		t.Skipf("x not free-nonbasic in this basis (status %d); scenario needs it", sol.Basis.Status[x])
	}
	m.SetVarBounds(x, 1, 5)
	warm, err := m.Solve(&SolveOptions{Basis: sol.Basis})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status != Optimal {
		t.Fatalf("warm status %v", warm.Status)
	}
	if warm.X[x] < 1-1e-9 || warm.X[x] > 5+1e-9 {
		t.Fatalf("warm solution violates new bounds: x = %g ∉ [1, 5]", warm.X[x])
	}
	checkFeasible(t, m, warm.X, -1)
}
