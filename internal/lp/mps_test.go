package lp

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// mpsFeatureModel exercises every construct the writer can emit: both
// senses, an objective offset, free/fixed/boxed/MI variables, equality,
// ranged, one-sided, and free rows, negative bounds, and duplicate terms.
func mpsFeatureModel() *Model {
	m := NewModel(Maximize)
	a := m.AddVar(0, Inf, 3)        // default bounds
	b := m.AddVar(-2.5, 7, -1.25)   // boxed, negative lower
	c := m.AddVar(4, 4, 2)          // fixed
	d := m.AddVar(-Inf, Inf, 0.125) // free
	e := m.AddVar(-Inf, 3, 1)       // MI + UP
	f := m.AddVar(1.5, Inf, -2)     // LO only
	m.SetObjectiveOffset(-7.5)
	m.AddLE([]Term{{a, 1}, {b, 2}, {c, -1}}, 10)
	m.AddGE([]Term{{b, 1}, {d, 0.5}}, -4)
	m.AddEQ([]Term{{a, 1}, {e, -1}, {f, 2}}, 3)
	m.AddRow([]Term{{a, 0.25}, {d, 1}, {e, 1}}, -2, 6) // ranged
	m.AddRow([]Term{{b, 1}, {f, 1}}, -Inf, Inf)        // free row
	m.AddLE([]Term{{a, 1}, {a, 1}, {c, 0.5}}, 20)      // duplicate terms
	return m
}

// TestMPSRoundTrip pins the Write→Read→Write byte-stability contract and
// that the re-read model solves to the same optimum as the original.
func TestMPSRoundTrip(t *testing.T) {
	m := mpsFeatureModel()
	var b1 bytes.Buffer
	if err := WriteMPS(&b1, m); err != nil {
		t.Fatal(err)
	}
	m2, err := ReadMPS(bytes.NewReader(b1.Bytes()))
	if err != nil {
		t.Fatalf("read back: %v\n%s", err, b1.String())
	}
	var b2 bytes.Buffer
	if err := WriteMPS(&b2, m2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("round trip not byte-stable:\n--- first ---\n%s--- second ---\n%s", b1.String(), b2.String())
	}
	s1, err := m.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := m2.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Status != s2.Status {
		t.Fatalf("status drift through MPS: %v vs %v", s1.Status, s2.Status)
	}
	if s1.Status == Optimal {
		if math.Abs(s1.Objective-s2.Objective) > 1e-9*(1+math.Abs(s1.Objective)) {
			t.Fatalf("objective drift through MPS: %.15g vs %.15g", s1.Objective, s2.Objective)
		}
	}
}

// TestMPSReadErrors feeds structurally broken files and requires a clean
// error (never a panic, never silent acceptance).
func TestMPSReadErrors(t *testing.T) {
	cases := map[string]string{
		"unknown-section": "NAME X\nGARBAGE\n",
		"bad-row-type":    "ROWS\n Q  R0\n",
		"dup-row":         "ROWS\n N  COST\n L  R0\n L  R0\n",
		"ragged-columns":  "ROWS\n N  COST\n L  R0\nCOLUMNS\n    X  R0\n",
		"unknown-row":     "ROWS\n N  COST\nCOLUMNS\n    X  NOPE  1\n",
		"bad-number":      "ROWS\n N  COST\n L  R0\nCOLUMNS\n    X  R0  abc\n",
		"ranges-on-obj":   "ROWS\n N  COST\n L  R0\nCOLUMNS\n    X  R0  1\nRANGES\n    RNG  COST  1\n",
		"bound-no-col":    "ROWS\n N  COST\nBOUNDS\n    UP  BND  X  1\n",
		"bound-no-value":  "ROWS\n N  COST\n L  R0\nCOLUMNS\n    X  R0  1\nBOUNDS\n    UP  BND  X\n",
		"int-marker":      "ROWS\n N  COST\n L  R0\nCOLUMNS\n    M1  'MARKER'  'INTORG'\n",
		"int-bound":       "ROWS\n N  COST\n L  R0\nCOLUMNS\n    X  R0  1\nBOUNDS\n    BV  BND  X\n",
		"no-rows":         "NAME X\nENDATA\n",
		"data-no-section": "    X  R0  1\n",
	}
	for name, src := range cases {
		if _, err := ReadMPS(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted malformed input", name)
		}
	}
}

// TestMPSCorpus solves every checked-in stress instance to its known
// optimum under the full engine matrix: cold primal, forced dual, presolve,
// and the dense oracle — plus a Write→Read round trip of each instance.
func TestMPSCorpus(t *testing.T) {
	dir := filepath.Join("..", "..", "testdata", "mps")
	raw, err := os.ReadFile(filepath.Join(dir, "golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	var golden map[string]float64
	if err := json.Unmarshal(raw, &golden); err != nil {
		t.Fatal(err)
	}
	if len(golden) < 5 {
		t.Fatalf("stress corpus has only %d instances", len(golden))
	}
	for name, want := range golden {
		t.Run(name, func(t *testing.T) {
			f, err := os.Open(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			m, err := ReadMPS(f)
			if err != nil {
				t.Fatal(err)
			}
			tol := 1e-6 * (1 + math.Abs(want))
			check := func(label string, obj float64, status Status) {
				t.Helper()
				if status != Optimal {
					t.Fatalf("%s: status %v", label, status)
				}
				if math.Abs(obj-want) > tol {
					t.Fatalf("%s: objective %.12g, want %.12g", label, obj, want)
				}
			}
			sol, err := m.Solve(nil)
			if err != nil {
				t.Fatal(err)
			}
			check("primal", sol.Objective, sol.Status)
			dsol, err := m.Solve(&SolveOptions{Method: MethodDual})
			if err != nil {
				t.Fatal(err)
			}
			check("dual", dsol.Objective, dsol.Status)
			psol, err := m.Solve(&SolveOptions{Presolve: true})
			if err != nil {
				t.Fatal(err)
			}
			check("presolve", psol.Objective, psol.Status)
			osol, err := m.SolveDense()
			if err != nil {
				t.Fatal(err)
			}
			check("dense", osol.Objective, osol.Status)

			// Round trip through the canonical writer.
			var buf bytes.Buffer
			if err := WriteMPS(&buf, m); err != nil {
				t.Fatal(err)
			}
			m2, err := ReadMPS(&buf)
			if err != nil {
				t.Fatalf("re-read canonical form: %v", err)
			}
			rsol, err := m2.Solve(nil)
			if err != nil {
				t.Fatal(err)
			}
			check("roundtrip", rsol.Objective, rsol.Status)
		})
	}
}

// TestMPSCorpusExternal cross-validates the corpus against glpsol when it
// is installed; skipped otherwise. The canonical writer output is handed to
// glpsol as free MPS.
func TestMPSCorpusExternal(t *testing.T) {
	glpsol, err := exec.LookPath("glpsol")
	if err != nil {
		t.Skip("glpsol not installed; skipping external cross-validation")
	}
	dir := filepath.Join("..", "..", "testdata", "mps")
	raw, err := os.ReadFile(filepath.Join(dir, "golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	var golden map[string]float64
	if err := json.Unmarshal(raw, &golden); err != nil {
		t.Fatal(err)
	}
	objRe := regexp.MustCompile(`Objective:\s+\S+\s+=\s+(\S+)`)
	for name, want := range golden {
		out, err := exec.Command(glpsol, "--freemps", filepath.Join(dir, name), "-o", "/dev/stdout").Output()
		if err != nil {
			t.Fatalf("%s: glpsol: %v", name, err)
		}
		mobj := objRe.FindSubmatch(out)
		if mobj == nil {
			t.Fatalf("%s: no objective in glpsol output", name)
		}
		got, err := strconv.ParseFloat(string(mobj[1]), 64)
		if err != nil {
			t.Fatalf("%s: parse %q: %v", name, mobj[1], err)
		}
		if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
			t.Fatalf("%s: glpsol objective %.12g, golden %.12g", name, got, want)
		}
	}
}

// FuzzReadMPS hardens the parser: arbitrary input must never panic, and any
// input that parses must satisfy the canonical-writer fixpoint —
// Write(Read(input)) parses again and re-writes byte-identically.
func FuzzReadMPS(f *testing.F) {
	seeds := []string{
		"ROWS\n N  COST\n L  R0\nCOLUMNS\n    X0  COST  1\n    X0  R0  1\nRHS\n    RHS  R0  4\nENDATA\n",
		"NAME T\nOBJSENSE\n    MAX\nROWS\n N  COST\n G  R0\n E  R1\nCOLUMNS\n    X  COST  -2\n    X  R0  1\n    X  R1  3\nRHS\n    RHS  R1  1.5\nRANGES\n    RNG  R0  2\nBOUNDS\n    MI  BND  X\n    UP  BND  X  9\nENDATA\n",
		"ROWS\n N  COST\nCOLUMNS\n    X  COST  1\nBOUNDS\n    FR  BND  X\n",
		"* comment\n\nROWS\n N  COST\n N  FREE\n L  R0\nCOLUMNS\n    X  FREE  1\n    X  R0  2\nRHS\n    RHS  COST  -3\n",
		"ROWS\n L  R0\n", // no objective N row
		"ROWS\n N  COST\n L  R0\nCOLUMNS\n    X  R0  1  R0  2\n", // dup entry accumulates
		"ROWS\n N  COST\n L  R0\nCOLUMNS\n    X  R0  1e309\n",    // overflow float
		"BOUNDS\n    UP  BND  X  1\n",
		"ENDATA\n",
	}
	// Every corpus instance seeds the fuzzer too.
	if files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "mps", "*.mps")); err == nil {
		for _, fn := range files {
			if b, err := os.ReadFile(fn); err == nil {
				seeds = append(seeds, string(b))
			}
		}
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		m, err := ReadMPS(strings.NewReader(src))
		if err != nil {
			return
		}
		var b1 bytes.Buffer
		if err := WriteMPS(&b1, m); err != nil {
			t.Fatalf("write of parsed model failed: %v", err)
		}
		m2, err := ReadMPS(bytes.NewReader(b1.Bytes()))
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %v\n%s", err, b1.String())
		}
		var b2 bytes.Buffer
		if err := WriteMPS(&b2, m2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatalf("canonical form not a fixpoint:\n--- first ---\n%s--- second ---\n%s", b1.String(), b2.String())
		}
	})
}
