// Package lp is a self-contained linear-programming stack used wherever the
// paper relies on an external LP/convex solver (AMPL + MOSEK, §VI-A):
// computing demands-aware optima, the worst-case-demand "slave LP" of
// Appendix C, and the dual certificates of Theorem 5.
//
// Two engines share the package (DESIGN.md §7):
//
//   - Model (the production path) is a sparse revised simplex: CSC
//     constraint matrix, Gilbert–Peierls LU basis factorization with
//     product-form eta updates and periodic refactorization, bounded
//     variables and ranged rows (so simple bounds never become rows),
//     Dantzig pricing with a Bland's-rule anti-cycling fallback, row duals,
//     and warm starts from an exported Basis. Every solver client — OPTDAG
//     (internal/mcf), the slave LP (internal/oblivious), the dual
//     certificates (internal/gpopt) — builds against it.
//   - Problem is the original dense full-tableau two-phase simplex for
//     min/max cᵀx s.t. aᵢᵀx {≤,=,≥} bᵢ, x ≥ 0. It is retained as the
//     reference oracle: randomized and corpus parity tests cross-validate
//     every sparse optimum against it (Model.SolveDense bridges the two
//     forms), and Model.Solve falls back to it on a sparse numerical
//     failure.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Rel is a constraint relation.
type Rel int8

// Constraint relations.
const (
	LE Rel = iota // aᵀx ≤ b
	GE            // aᵀx ≥ b
	EQ            // aᵀx = b
)

func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return "?"
}

// Sense selects minimization or maximization.
type Sense int8

// Objective senses.
const (
	Minimize Sense = iota
	Maximize
)

// Status describes the outcome of Solve.
type Status int8

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return "unknown"
}

// Term is one coefficient of a sparse constraint or objective row.
type Term struct {
	Var   int
	Coeff float64
}

type row struct {
	terms []Term
	rel   Rel
	rhs   float64
}

// Problem accumulates variables, an objective, and constraints. The zero
// value is not usable; create problems with NewProblem.
type Problem struct {
	sense Sense
	nvars int
	obj   []float64
	rows  []row
}

// NewProblem returns an empty problem with the given objective sense.
func NewProblem(sense Sense) *Problem {
	return &Problem{sense: sense}
}

// AddVariable adds a non-negative variable and returns its index.
func (p *Problem) AddVariable() int {
	p.nvars++
	p.obj = append(p.obj, 0)
	return p.nvars - 1
}

// AddVariables adds n non-negative variables and returns the first index.
func (p *Problem) AddVariables(n int) int {
	first := p.nvars
	for i := 0; i < n; i++ {
		p.AddVariable()
	}
	return first
}

// NumVariables reports the number of variables added so far.
func (p *Problem) NumVariables() int { return p.nvars }

// SetObjective sets the objective coefficient of variable v.
func (p *Problem) SetObjective(v int, coeff float64) {
	p.obj[v] = coeff
}

// AddConstraint appends a constraint Σ terms {rel} rhs. Terms may repeat a
// variable; coefficients accumulate.
func (p *Problem) AddConstraint(terms []Term, rel Rel, rhs float64) {
	for _, t := range terms {
		if t.Var < 0 || t.Var >= p.nvars {
			panic(fmt.Sprintf("lp: constraint references variable %d of %d", t.Var, p.nvars))
		}
	}
	p.rows = append(p.rows, row{terms: append([]Term(nil), terms...), rel: rel, rhs: rhs})
}

// NumConstraints reports the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.rows) }

// Solution is the result of a solve — the dense Problem.Solve fills the
// first three fields; the sparse Model.Solve additionally reports duals,
// the final basis for warm starts, and per-solve statistics.
type Solution struct {
	Status    Status
	Objective float64   // objective value in the problem's own sense
	X         []float64 // primal values, one per variable (valid when Status == Optimal)

	// Duals holds one multiplier per model row (Model.Solve only), in the
	// model's own sense: for a minimization, yᵀ·rhs lower-bounds the
	// optimum; for a maximization it upper-bounds it.
	Duals []float64
	// Basis is the optimal basis (Model.Solve only); feed it back through
	// SolveOptions.Basis to warm-start a related solve.
	Basis *Basis
	// Stats describes the sparse engine's effort (Model.Solve only).
	Stats SolveStats
}

// ErrIterationLimit is returned when the simplex fails to converge within
// its iteration budget, which indicates severe degeneracy or numerical
// trouble.
var ErrIterationLimit = errors.New("lp: simplex iteration limit exceeded")

const (
	pivTol  = 1e-9  // minimum magnitude of an acceptable pivot element
	zeroTol = 1e-9  // reduced-cost optimality tolerance
	feasTol = 1e-7  // phase-1 feasibility tolerance
	blandAt = 200   // consecutive non-improving iterations before Bland's rule
	iterMul = 60    // iteration budget multiplier over (m + n)
	minIter = 20000 // iteration budget floor
)

// Solve runs the two-phase simplex and returns the solution.
func (p *Problem) Solve() (*Solution, error) {
	m := len(p.rows)
	n := p.nvars
	if n == 0 {
		return &Solution{Status: Optimal, Objective: 0, X: nil}, nil
	}

	// Count slack and artificial columns.
	nslack := 0
	for _, r := range p.rows {
		if r.rel != EQ {
			nslack++
		}
	}
	// Column layout: [0,n) structural, [n, n+nslack) slack/surplus,
	// [n+nslack, ncols) artificial (at most one per row).
	nart := 0
	artOf := make([]int, m) // artificial column for row i, or -1
	slackOf := make([]int, m)
	for i := range artOf {
		artOf[i] = -1
		slackOf[i] = -1
	}

	// Build dense rows with RHS normalized non-negative.
	a := make([][]float64, m)
	b := make([]float64, m)
	si := 0
	for i, r := range p.rows {
		rel := r.rel
		rhs := r.rhs
		sign := 1.0
		if rhs < 0 {
			sign = -1
			rhs = -rhs
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		arow := make([]float64, n) // structural part; extended later
		for _, t := range r.terms {
			arow[t.Var] += sign * t.Coeff
		}
		a[i] = arow
		b[i] = rhs
		switch rel {
		case LE:
			slackOf[i] = n + si
			si++
		case GE:
			slackOf[i] = n + si // surplus, coefficient -1
			si++
			artOf[i] = 1 // placeholder; assigned below
		case EQ:
			artOf[i] = 1
		}
		p.rows[i].rel = r.rel // untouched; we worked on copies
	}
	// Assign artificial columns.
	ai := 0
	for i := range p.rows {
		if artOf[i] == 1 {
			artOf[i] = n + nslack + ai
			ai++
		}
	}
	nart = ai
	ncols := n + nslack + nart

	// Extend rows to full width and set slack/artificial coefficients.
	tab := make([][]float64, m)
	for i := range tab {
		full := make([]float64, ncols)
		copy(full, a[i])
		if s := slackOf[i]; s >= 0 {
			rel := effectiveRel(p.rows[i].rel, p.rows[i].rhs)
			if rel == LE {
				full[s] = 1
			} else {
				full[s] = -1
			}
		}
		if art := artOf[i]; art >= 0 {
			full[art] = 1
		}
		tab[i] = full
	}

	// Initial basis: slack for ≤ rows, artificial otherwise.
	basis := make([]int, m)
	for i := range basis {
		if artOf[i] >= 0 {
			basis[i] = artOf[i]
		} else {
			basis[i] = slackOf[i]
		}
	}

	s := &simplex{tab: tab, b: b, basis: basis, ncols: ncols, nstruct: n}

	// Phase 1: minimize sum of artificials.
	if nart > 0 {
		c1 := make([]float64, ncols)
		for i := range p.rows {
			if artOf[i] >= 0 {
				c1[artOf[i]] = 1
			}
		}
		s.setObjective(c1)
		if err := s.iterate(); err != nil {
			return nil, err
		}
		if s.objValue(c1) > feasTol {
			return &Solution{Status: Infeasible}, nil
		}
		// Drive remaining artificials out of the basis.
		isArt := func(col int) bool { return col >= n+nslack }
		for r := 0; r < len(s.basis); r++ {
			if !isArt(s.basis[r]) {
				continue
			}
			pivoted := false
			for j := 0; j < n+nslack; j++ {
				if math.Abs(s.tab[r][j]) > pivTol {
					s.pivot(r, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row: harmless, leave the artificial basic at 0
				// but forbid it from ever re-entering with value > 0 by
				// zeroing its row RHS (it already is ~0).
				s.b[r] = 0
			}
		}
		// Remove artificial columns from pricing by truncating.
		s.ncols = n + nslack
		for i := range s.tab {
			s.tab[i] = s.tab[i][:s.ncols]
		}
		for r, col := range s.basis {
			if col >= s.ncols {
				// Still-basic artificial on a redundant zero row; replace by
				// a fictitious column index that prices as never-entering.
				// We keep it by extending the tableau with a unit column.
				s.tab[r] = append(s.tab[r], 0)
				for rr := range s.tab {
					for len(s.tab[rr]) < s.ncols+1 {
						s.tab[rr] = append(s.tab[rr], 0)
					}
				}
				s.tab[r][s.ncols] = 1
				s.basis[r] = s.ncols
				s.ncols++
				s.frozen = append(s.frozen, s.ncols-1)
			}
		}
	}

	// Phase 2: real objective (internally always minimize).
	c2 := make([]float64, s.ncols)
	for j := 0; j < n; j++ {
		if p.sense == Minimize {
			c2[j] = p.obj[j]
		} else {
			c2[j] = -p.obj[j]
		}
	}
	s.setObjective(c2)
	if err := s.iterate(); err != nil {
		return nil, err
	}
	if s.unbounded {
		return &Solution{Status: Unbounded}, nil
	}

	x := make([]float64, n)
	for r, col := range s.basis {
		if col < n {
			x[col] = s.b[r]
		}
	}
	objVal := 0.0
	for j := 0; j < n; j++ {
		objVal += p.obj[j] * x[j]
	}
	return &Solution{Status: Optimal, Objective: objVal, X: x}, nil
}

// effectiveRel returns the relation after RHS sign normalization.
func effectiveRel(rel Rel, rhs float64) Rel {
	if rhs >= 0 {
		return rel
	}
	switch rel {
	case LE:
		return GE
	case GE:
		return LE
	}
	return EQ
}

// simplex is the full-tableau state shared by both phases.
type simplex struct {
	tab       [][]float64
	b         []float64
	basis     []int
	ncols     int
	nstruct   int
	z         []float64 // reduced costs
	c         []float64 // current phase costs
	unbounded bool
	frozen    []int // columns that must never enter (residual artificials)
}

// setObjective recomputes the reduced-cost row for cost vector c given the
// current basis (the tableau is kept in canonical form at all times).
func (s *simplex) setObjective(c []float64) {
	s.c = c
	s.z = make([]float64, s.ncols)
	copy(s.z, c)
	for r, col := range s.basis {
		cb := 0.0
		if col < len(c) {
			cb = c[col]
		}
		if cb == 0 {
			continue
		}
		for j := 0; j < s.ncols; j++ {
			s.z[j] -= cb * s.tab[r][j]
		}
	}
	s.unbounded = false
}

// objValue returns cᵀx_B for the current basic solution.
func (s *simplex) objValue(c []float64) float64 {
	v := 0.0
	for r, col := range s.basis {
		if col < len(c) {
			v += c[col] * s.b[r]
		}
	}
	return v
}

func (s *simplex) isFrozen(j int) bool {
	for _, f := range s.frozen {
		if f == j {
			return true
		}
	}
	return false
}

// iterate runs simplex pivots until optimality or unboundedness.
func (s *simplex) iterate() error {
	maxIter := iterMul * (len(s.basis) + s.ncols)
	if maxIter < minIter {
		maxIter = minIter
	}
	stall := 0
	lastObj := math.Inf(1)
	for iter := 0; iter < maxIter; iter++ {
		bland := stall > blandAt
		enter := s.chooseEntering(bland)
		if enter < 0 {
			return nil // optimal
		}
		leave := s.chooseLeaving(enter, bland)
		if leave < 0 {
			s.unbounded = true
			return nil
		}
		s.pivot(leave, enter)
		obj := s.objValue(s.c)
		if obj < lastObj-1e-12 {
			stall = 0
			lastObj = obj
		} else {
			stall++
		}
	}
	return ErrIterationLimit
}

// chooseEntering picks the entering column: Dantzig's most-negative reduced
// cost, or the lowest-index negative column under Bland's rule.
func (s *simplex) chooseEntering(bland bool) int {
	best := -1
	bestVal := -zeroTol
	for j := 0; j < s.ncols; j++ {
		if s.z[j] < bestVal && !s.isFrozen(j) {
			if bland {
				return j
			}
			best = j
			bestVal = s.z[j]
		}
	}
	return best
}

// chooseLeaving runs the minimum-ratio test for entering column e, breaking
// ties by the largest pivot magnitude (or lowest basis index under Bland).
func (s *simplex) chooseLeaving(e int, bland bool) int {
	bestRow := -1
	bestRatio := math.Inf(1)
	bestPivot := 0.0
	for r := range s.tab {
		ar := s.tab[r][e]
		if ar <= pivTol {
			continue
		}
		ratio := s.b[r] / ar
		switch {
		case ratio < bestRatio-1e-12:
			bestRow, bestRatio, bestPivot = r, ratio, ar
		case ratio <= bestRatio+1e-12:
			if bland {
				if bestRow < 0 || s.basis[r] < s.basis[bestRow] {
					bestRow, bestRatio, bestPivot = r, ratio, ar
				}
			} else if ar > bestPivot {
				bestRow, bestRatio, bestPivot = r, ratio, ar
			}
		}
	}
	return bestRow
}

// pivot performs a Gauss-Jordan pivot at (r, c).
func (s *simplex) pivot(r, c int) {
	pr := s.tab[r]
	pv := pr[c]
	inv := 1 / pv
	for j := range pr {
		pr[j] *= inv
	}
	pr[c] = 1 // exact
	s.b[r] *= inv
	for rr := range s.tab {
		if rr == r {
			continue
		}
		f := s.tab[rr][c]
		if f == 0 {
			continue
		}
		row := s.tab[rr]
		for j := range row {
			row[j] -= f * pr[j]
		}
		row[c] = 0 // exact
		s.b[rr] -= f * s.b[r]
		if s.b[rr] < 0 && s.b[rr] > -1e-11 {
			s.b[rr] = 0
		}
	}
	f := s.z[c]
	if f != 0 {
		for j := range s.z {
			s.z[j] -= f * pr[j]
		}
		s.z[c] = 0
	}
	s.basis[r] = c
}
