// Presolve/postsolve pass for Model solves.
//
// Presolve shrinks a model before the simplex sees it — fixed variables are
// substituted out, empty and singleton rows disappear (a singleton row is
// just a variable bound wearing a row costume), empty columns are pinned to
// their best bound, free column singletons absorb their equality row, and
// rows that variable bounds already satisfy are dropped. Postsolve then maps
// the reduced solution back onto the original model, including the duals of
// the removed rows: a removed redundant/empty row is slack (dual 0), a
// singleton row that supplied the binding bound of its variable inherits the
// variable's leftover reduced cost (y = d/a), and a free column singleton's
// equality row has its dual pinned by stationarity of the eliminated column
// (y = c/a).
//
// The recovered solution is validated against the original model's KKT
// conditions; any violation triggers a transparent re-solve without
// presolve, so enabling presolve can never change results beyond round-off.
// Presolved solves return Basis == nil — a basis indexes the reduced model
// and would be meaningless (and dangerous) against the original.
package lp

import (
	"math"
)

const (
	psTol     = 1e-9 // exact-decision tolerance (bound crossings, zero coeffs)
	psFeasTol = 1e-7 // feasibility slack for redundancy/validation checks
	psKKTTol  = 1e-6 // postsolve KKT validation tolerance (scaled)
	psMaxPass = 8    // reduction fixpoint pass cap
)

type psOpKind int8

const (
	psFixVar           psOpKind = iota // x[v] := val (bounds met, substituted out)
	psEmptyCol                         // x[v] := val (no rows; fixed at best bound)
	psDropRow                          // row removed as empty or redundant; dual 0
	psSingletonRow                     // row a·x[v] ∈ [rlo,rup] became a bound on v
	psFreeColSingleton                 // free v in one equality row; both removed
)

// psOp is one reduction, replayed in reverse by postsolve.
type psOp struct {
	kind  psOpKind
	row   int     // original row index (−1 when variable-only)
	v     int     // original variable index (−1 when row-only)
	a     float64 // row coefficient of v (singleton kinds)
	val   float64 // fixed value / equality rhs after substitutions
	dualY float64 // precomputed row dual (psFreeColSingleton)
	terms []Term  // remaining row terms, original var indices (psFreeColSingleton)
}

// psState is the mutable reduction workspace over copies of the model data.
type psState struct {
	m        *Model
	lo, up   []float64 // variable bounds, tightened in place
	obj      []float64 // objective in the model's own sense, adjusted in place
	rows     []psRow
	varAlive []bool
	colCount []int // alive-row references per variable
	ops      []psOp
}

type psRow struct {
	terms  []Term // merged, original var indices; dead vars already removed
	lo, up float64
	alive  bool
}

// solvePresolved is Model.Solve's presolve path: reduce, solve the reduced
// model with the same method options, postsolve, validate.
func (m *Model) solvePresolved(sopts spxOpts) (*Solution, error) {
	st := newPSState(m)
	status := st.reduce()
	nRemRows, nRemCols := st.removedCounts()
	mPresolveSolves.Inc()
	mPresolveRows.Add(uint64(nRemRows))
	mPresolveCols.Add(uint64(nRemCols))
	if status != Optimal { // reduction proved Infeasible/Unbounded outright
		return &Solution{Status: status, Stats: SolveStats{PresolveRows: nRemRows, PresolveCols: nRemCols}}, nil
	}

	reduced, varMap, rowMap := st.buildReduced()
	rsol, err := reduced.Solve(&SolveOptions{Method: sopts.method, DualPricing: sopts.pricing})
	if err != nil {
		return nil, err
	}
	stats := rsol.Stats
	stats.PresolveRows = nRemRows
	stats.PresolveCols = nRemCols
	if rsol.Status != Optimal {
		// The reductions preserve feasibility and boundedness, so the
		// reduced verdict is the original's verdict.
		return &Solution{Status: rsol.Status, Stats: stats}, nil
	}

	x, duals := st.postsolve(rsol, varMap, rowMap)
	sol := &Solution{Status: Optimal, X: x, Duals: duals, Stats: stats}
	sol.Objective = m.objOffset
	for j, c := range m.obj {
		sol.Objective += c * x[j]
	}
	if !m.kktValid(x, duals) {
		// Postsolve lost the thread (a dual assignment the reductions could
		// not disambiguate). Fall back to the exact path, transparently.
		fsol, ferr := m.Solve(&SolveOptions{Method: sopts.method, DualPricing: sopts.pricing})
		if ferr != nil {
			return nil, ferr
		}
		fsol.Stats.PresolveRows = 0
		fsol.Stats.PresolveCols = 0
		return fsol, nil
	}
	return sol, nil
}

func newPSState(m *Model) *psState {
	n := len(m.obj)
	st := &psState{
		m:        m,
		lo:       append([]float64(nil), m.vlo...),
		up:       append([]float64(nil), m.vup...),
		obj:      append([]float64(nil), m.obj...),
		rows:     make([]psRow, len(m.rows)),
		varAlive: make([]bool, n),
		colCount: make([]int, n),
	}
	for j := range st.varAlive {
		st.varAlive[j] = true
	}
	for i, r := range m.rows {
		// Merge duplicate variables up front so singleton detection is exact.
		merged := make(map[int]float64, len(r.terms))
		var order []int
		for _, t := range r.terms {
			if _, seen := merged[t.Var]; !seen {
				order = append(order, t.Var)
			}
			merged[t.Var] += t.Coeff
		}
		terms := make([]Term, 0, len(order))
		for _, v := range order {
			if c := merged[v]; c != 0 {
				terms = append(terms, Term{Var: v, Coeff: c})
				st.colCount[v]++
			}
		}
		st.rows[i] = psRow{terms: terms, lo: r.lo, up: r.up, alive: true}
	}
	return st
}

func (st *psState) removedCounts() (rows, cols int) {
	for _, r := range st.rows {
		if !r.alive {
			rows++
		}
	}
	for _, a := range st.varAlive {
		if !a {
			cols++
		}
	}
	return
}

// reduce applies the reduction rules to fixpoint (capped) and returns
// Optimal when a reduced model remains to be solved, or a terminal verdict.
func (st *psState) reduce() Status {
	for pass := 0; pass < psMaxPass; pass++ {
		changed := false
		if s := st.rowPass(&changed); s != Optimal {
			return s
		}
		if s := st.colPass(&changed); s != Optimal {
			return s
		}
		if s := st.redundancyPass(&changed); s != Optimal {
			return s
		}
		if !changed {
			break
		}
	}
	return Optimal
}

// rowPass removes empty rows and converts singleton rows into variable
// bounds.
func (st *psState) rowPass(changed *bool) Status {
	for i := range st.rows {
		r := &st.rows[i]
		if !r.alive {
			continue
		}
		switch len(r.terms) {
		case 0:
			if r.lo > psFeasTol || r.up < -psFeasTol {
				return Infeasible
			}
			r.alive = false
			st.ops = append(st.ops, psOp{kind: psDropRow, row: i, v: -1})
			*changed = true
		case 1:
			t := r.terms[0]
			nlo, nup := -Inf, Inf
			if t.Coeff > 0 {
				if r.lo > -spxInf {
					nlo = r.lo / t.Coeff
				}
				if r.up < spxInf {
					nup = r.up / t.Coeff
				}
			} else {
				if r.up < spxInf {
					nlo = r.up / t.Coeff
				}
				if r.lo > -spxInf {
					nup = r.lo / t.Coeff
				}
			}
			if nlo > st.lo[t.Var] {
				st.lo[t.Var] = nlo
			}
			if nup < st.up[t.Var] {
				st.up[t.Var] = nup
			}
			if st.lo[t.Var] > st.up[t.Var] {
				if st.lo[t.Var]-st.up[t.Var] > psFeasTol*(1+math.Abs(st.lo[t.Var])) {
					return Infeasible
				}
				st.lo[t.Var] = st.up[t.Var] // round-off crossing: collapse
			}
			r.alive = false
			st.colCount[t.Var]--
			st.ops = append(st.ops, psOp{kind: psSingletonRow, row: i, v: t.Var, a: t.Coeff})
			*changed = true
		}
	}
	return Optimal
}

// colPass fixes variables with equal bounds, pins empty columns, and
// eliminates free column singletons on equality rows.
func (st *psState) colPass(changed *bool) Status {
	n := len(st.obj)
	for v := 0; v < n; v++ {
		if !st.varAlive[v] {
			continue
		}
		lo, up := st.lo[v], st.up[v]
		if lo == up {
			st.fixVar(v, lo, psFixVar)
			*changed = true
			continue
		}
		if st.colCount[v] == 0 {
			// Empty column: pin to the objective-improving bound. The cost
			// is in the model's own sense, so "improving" flips with it. An
			// infinite improving direction is NOT an Unbounded verdict here —
			// infeasibility elsewhere would trump it — so such columns stay
			// in the reduced model for the simplex to judge.
			c := st.obj[v]
			if st.m.sense == Maximize {
				c = -c
			}
			var val float64
			switch {
			case c > psTol: // minimize c·x → lower bound
				if lo <= -spxInf {
					continue
				}
				val = lo
			case c < -psTol:
				if up >= spxInf {
					continue
				}
				val = up
			case lo > -spxInf:
				val = lo
			case up < spxInf:
				val = up
			}
			st.fixVar(v, val, psEmptyCol)
			*changed = true
			continue
		}
		if st.colCount[v] == 1 && lo <= -spxInf && up >= spxInf {
			st.tryFreeColSingleton(v, changed)
		}
	}
	return Optimal
}

// fixVar records x[v] := val, substitutes it out of every alive row, and
// kills the column.
func (st *psState) fixVar(v int, val float64, kind psOpKind) {
	st.varAlive[v] = false
	st.ops = append(st.ops, psOp{kind: kind, row: -1, v: v, val: val})
	if st.colCount[v] == 0 {
		return
	}
	for i := range st.rows {
		r := &st.rows[i]
		if !r.alive {
			continue
		}
		for k, t := range r.terms {
			if t.Var != v {
				continue
			}
			shift := t.Coeff * val
			if r.lo > -spxInf {
				r.lo -= shift
			}
			if r.up < spxInf {
				r.up -= shift
			}
			r.terms = append(r.terms[:k], r.terms[k+1:]...)
			break
		}
	}
	st.colCount[v] = 0
}

// tryFreeColSingleton eliminates a free variable appearing in exactly one
// row when that row is an equality: the row determines the variable, the
// variable's stationarity pins the row's dual (y = c/a), and the objective
// substitution c·x = (c/a)·(b − Σ aₖxₖ) folds into the surviving columns.
func (st *psState) tryFreeColSingleton(v int, changed *bool) {
	ri := -1
	var coeff float64
	for i := range st.rows {
		r := &st.rows[i]
		if !r.alive {
			continue
		}
		for _, t := range r.terms {
			if t.Var == v {
				ri, coeff = i, t.Coeff
				break
			}
		}
		if ri >= 0 {
			break
		}
	}
	if ri < 0 || math.Abs(coeff) < 1e-8 {
		return
	}
	r := &st.rows[ri]
	if r.lo != r.up || r.lo <= -spxInf || r.up >= spxInf {
		return
	}
	b := r.lo
	rest := make([]Term, 0, len(r.terms)-1)
	for _, t := range r.terms {
		if t.Var != v {
			rest = append(rest, t)
		}
	}
	cv := st.obj[v]
	for _, t := range rest {
		st.obj[t.Var] -= cv * t.Coeff / coeff
		st.colCount[t.Var]--
	}
	y := cv / coeff
	r.alive = false
	st.varAlive[v] = false
	st.colCount[v] = 0
	st.ops = append(st.ops, psOp{
		kind: psFreeColSingleton, row: ri, v: v, a: coeff, val: b, dualY: y,
		terms: rest,
	})
	*changed = true
}

// redundancyPass drops rows whose activity range, implied by the variable
// bounds, cannot leave the row's bounds — and detects rows that cannot
// reach them.
func (st *psState) redundancyPass(changed *bool) Status {
	for i := range st.rows {
		r := &st.rows[i]
		if !r.alive || len(r.terms) < 2 {
			continue
		}
		minAct, maxAct := 0.0, 0.0
		for _, t := range r.terms {
			l, u := st.lo[t.Var], st.up[t.Var]
			if t.Coeff > 0 {
				minAct += t.Coeff * l
				maxAct += t.Coeff * u
			} else {
				minAct += t.Coeff * u
				maxAct += t.Coeff * l
			}
		}
		// An infinite activity bound disables the checks on that side below
		// (comparisons against ±Inf are safely false).
		scale := 1 + math.Abs(r.lo) + math.Abs(r.up)
		if (r.up < spxInf && minAct > r.up+psFeasTol*scale) ||
			(r.lo > -spxInf && maxAct < r.lo-psFeasTol*scale) {
			return Infeasible
		}
		loOK := r.lo <= -spxInf || (minAct > -spxInf && minAct >= r.lo-psTol*scale)
		upOK := r.up >= spxInf || (maxAct < spxInf && maxAct <= r.up+psTol*scale)
		if loOK && upOK {
			r.alive = false
			for _, t := range r.terms {
				st.colCount[t.Var]--
			}
			st.ops = append(st.ops, psOp{kind: psDropRow, row: i, v: -1})
			*changed = true
		}
	}
	return Optimal
}

// buildReduced materializes the surviving rows/columns as a fresh Model and
// returns the old→new index maps.
func (st *psState) buildReduced() (*Model, []int, []int) {
	n := len(st.obj)
	varMap := make([]int, n)
	reduced := NewModel(st.m.sense)
	for v := 0; v < n; v++ {
		varMap[v] = -1
		if st.varAlive[v] {
			varMap[v] = reduced.AddVar(st.lo[v], st.up[v], st.obj[v])
		}
	}
	rowMap := make([]int, len(st.rows))
	for i := range st.rows {
		rowMap[i] = -1
		r := &st.rows[i]
		if !r.alive {
			continue
		}
		terms := make([]Term, len(r.terms))
		for k, t := range r.terms {
			terms[k] = Term{Var: varMap[t.Var], Coeff: t.Coeff}
		}
		rowMap[i] = reduced.AddRow(terms, r.lo, r.up)
	}
	return reduced, varMap, rowMap
}

// postsolve maps the reduced solution back onto the original model,
// replaying the reduction ops in reverse to recover eliminated primal
// values and removed-row duals.
func (st *psState) postsolve(rsol *Solution, varMap, rowMap []int) (x, duals []float64) {
	m := st.m
	n := len(m.obj)
	x = make([]float64, n)
	duals = make([]float64, len(m.rows))
	for v := 0; v < n; v++ {
		if varMap[v] >= 0 {
			x[v] = rsol.X[varMap[v]]
		}
	}
	for i := range m.rows {
		if rowMap[i] >= 0 {
			duals[i] = rsol.Duals[rowMap[i]]
		}
	}
	// Prefill the constant-valued recoveries (fixed/pinned variables, the
	// precomputed free-column-singleton duals) so the order-dependent ones
	// below — full-row activities, singleton-row reduced costs — see every
	// value they reference regardless of when its op was recorded.
	for k := range st.ops {
		op := &st.ops[k]
		switch op.kind {
		case psFixVar, psEmptyCol:
			x[op.v] = op.val
		case psFreeColSingleton:
			duals[op.row] = op.dualY
		}
	}
	for k := len(st.ops) - 1; k >= 0; k-- {
		op := &st.ops[k]
		switch op.kind {
		case psFixVar, psEmptyCol:
			// prefilled above
		case psDropRow:
			// slack: dual stays 0
		case psFreeColSingleton:
			sum := 0.0
			for _, t := range op.terms {
				sum += t.Coeff * x[t.Var]
			}
			x[op.v] = (op.val - sum) / op.a
		case psSingletonRow:
			// The row was a·x[v] ∈ [rlo,rup]. If it is active at the final
			// point and the variable still carries reduced cost, the row —
			// not the variable bound — is what the multiplier prices.
			d := m.obj[op.v]
			for i, r := range m.rows {
				if duals[i] == 0 {
					continue
				}
				for _, t := range r.terms {
					if t.Var == op.v {
						d -= t.Coeff * duals[i]
					}
				}
			}
			// Activity over the FULL original row: variables substituted out
			// before this row was removed shifted its bounds, so only the
			// unreduced activity can be compared against the original bounds.
			r := m.rows[op.row]
			act := 0.0
			for _, t := range r.terms {
				act += t.Coeff * x[t.Var]
			}
			scale := 1 + math.Abs(act)
			active := (r.lo > -spxInf && math.Abs(act-r.lo) <= psFeasTol*scale) ||
				(r.up < spxInf && math.Abs(act-r.up) <= psFeasTol*scale)
			atOwnBound := (m.vlo[op.v] > -spxInf && math.Abs(x[op.v]-m.vlo[op.v]) <= psFeasTol*scale) ||
				(m.vup[op.v] < spxInf && math.Abs(x[op.v]-m.vup[op.v]) <= psFeasTol*scale)
			if active && !atOwnBound && math.Abs(d) > psTol {
				duals[op.row] = d / op.a
			}
		}
	}
	return x, duals
}

// kktValid checks the recovered (x, y) against the original model's
// optimality conditions: primal feasibility, stationarity with
// bound-respecting reduced-cost signs, and complementary slackness on
// inactive rows. Tolerances scale with the data so large-coefficient models
// are not spuriously rejected.
func (m *Model) kktValid(x, duals []float64) bool {
	n := len(m.obj)
	// Primal: variable bounds.
	for j := 0; j < n; j++ {
		scale := 1 + math.Abs(x[j])
		if m.vlo[j] > -spxInf && x[j] < m.vlo[j]-psKKTTol*scale {
			return false
		}
		if m.vup[j] < spxInf && x[j] > m.vup[j]+psKKTTol*scale {
			return false
		}
	}
	// Primal: row activities; dual sign + slackness per row.
	sgn := 1.0
	if m.sense == Maximize {
		sgn = -1
	}
	for i, r := range m.rows {
		act := 0.0
		maxTerm := 0.0
		for _, t := range r.terms {
			act += t.Coeff * x[t.Var]
			if a := math.Abs(t.Coeff * x[t.Var]); a > maxTerm {
				maxTerm = a
			}
		}
		scale := 1 + maxTerm
		if r.lo > -spxInf && act < r.lo-psKKTTol*scale {
			return false
		}
		if r.up < spxInf && act > r.up+psKKTTol*scale {
			return false
		}
		loActive := r.lo > -spxInf && act <= r.lo+psKKTTol*scale
		upActive := r.up < spxInf && act >= r.up-psKKTTol*scale
		y := sgn * duals[i] // internal minimization convention
		switch {
		case !loActive && !upActive:
			if math.Abs(y) > psKKTTol*scale {
				return false
			}
		case loActive && !upActive:
			if y < -psKKTTol*scale {
				return false
			}
		case upActive && !loActive:
			if y > psKKTTol*scale {
				return false
			}
		}
	}
	// Stationarity: reduced costs respect the active bounds.
	d := make([]float64, n)
	maxC := 1.0
	for j := 0; j < n; j++ {
		c := m.obj[j]
		if m.sense == Maximize {
			c = -c
		}
		d[j] = c
		if a := math.Abs(c); a > maxC {
			maxC = a
		}
	}
	for i, r := range m.rows {
		y := sgn * duals[i]
		if y == 0 {
			continue
		}
		for _, t := range r.terms {
			d[t.Var] -= t.Coeff * y
			if a := math.Abs(t.Coeff * y); a > maxC {
				maxC = a
			}
		}
	}
	tol := psKKTTol * maxC
	for j := 0; j < n; j++ {
		atLo := m.vlo[j] > -spxInf && x[j] <= m.vlo[j]+psKKTTol*(1+math.Abs(x[j]))
		atUp := m.vup[j] < spxInf && x[j] >= m.vup[j]-psKKTTol*(1+math.Abs(x[j]))
		switch {
		case atLo && atUp: // fixed: unconstrained
		case atLo:
			if d[j] < -tol {
				return false
			}
		case atUp:
			if d[j] > tol {
				return false
			}
		default:
			if math.Abs(d[j]) > tol {
				return false
			}
		}
	}
	return true
}
