// MPS reading and writing for Model.
//
// The dialect is free-format MPS: section headers start in column one, data
// lines are whitespace-separated fields, '*' begins a comment. Supported
// sections are NAME, OBJSENSE (MAX/MAXIMIZE or MIN/MINIMIZE), ROWS
// (N/L/G/E; the first N row is the objective, later N rows are kept as free
// rows), COLUMNS, RHS (an entry on the objective row becomes the negated
// objective offset, the usual convention), RANGES, BOUNDS
// (UP/LO/FX/FR/MI/PL — a negative UP value does not implicitly drop the
// lower bound; integer types are rejected), and ENDATA. Integer marker
// lines are rejected: the solver is a pure LP engine.
//
// WriteMPS emits a canonical form — variables named X<i>, constraint rows
// R<i>, objective COST, shortest round-trip float formatting, column-major
// COLUMNS in index order — so Write→Read→Write is byte-stable, which is
// what the fuzz corpus and the round-trip tests pin down.
package lp

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ReadMPS parses an MPS file into a Model. Names are resolved to dense
// indices (variables in first-appearance order in COLUMNS, rows in ROWS
// declaration order, objective excluded) and then discarded.
func ReadMPS(r io.Reader) (*Model, error) {
	p := &mpsParser{
		rowIdx: map[string]int{},
		colIdx: map[string]int{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || line[0] == '*' {
			continue
		}
		if trimmed := strings.TrimSpace(line); trimmed == "" {
			continue
		}
		isHeader := line[0] != ' ' && line[0] != '\t'
		fields := strings.Fields(line)
		if isHeader {
			if err := p.header(fields); err != nil {
				return nil, fmt.Errorf("mps line %d: %w", lineNo, err)
			}
			if p.done {
				break
			}
			continue
		}
		if err := p.data(fields); err != nil {
			return nil, fmt.Errorf("mps line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !p.sawRows {
		return nil, fmt.Errorf("mps: no ROWS section")
	}
	return p.build()
}

type mpsRow struct {
	name string
	typ  byte // 'N', 'L', 'G', 'E'
	rhs  float64
	rng  float64
	hasR bool // a RANGES entry was seen
	free bool // non-objective N row
}

type mpsCol struct {
	name   string
	obj    float64
	lo, up float64
	terms  []Term // (rowIndex, coeff) — Term.Var reused as index into p.rows
}

type mpsParser struct {
	section string
	sense   Sense
	objName string
	objSeen bool
	sawRows bool
	done    bool
	objOff  float64
	rows    []mpsRow
	cols    []mpsCol
	rowIdx  map[string]int // name → index into rows; objective → −1
	colIdx  map[string]int
}

func (p *mpsParser) header(fields []string) error {
	switch strings.ToUpper(fields[0]) {
	case "NAME":
		p.section = "NAME"
	case "OBJSENSE":
		p.section = "OBJSENSE"
		if len(fields) > 1 {
			return p.setSense(fields[1])
		}
	case "ROWS":
		p.section = "ROWS"
		p.sawRows = true
	case "COLUMNS":
		p.section = "COLUMNS"
	case "RHS":
		p.section = "RHS"
	case "RANGES":
		p.section = "RANGES"
	case "BOUNDS":
		p.section = "BOUNDS"
	case "ENDATA":
		p.done = true
	default:
		return fmt.Errorf("unknown section %q", fields[0])
	}
	return nil
}

func (p *mpsParser) setSense(s string) error {
	switch strings.ToUpper(s) {
	case "MAX", "MAXIMIZE":
		p.sense = Maximize
	case "MIN", "MINIMIZE":
		p.sense = Minimize
	default:
		return fmt.Errorf("bad OBJSENSE %q", s)
	}
	return nil
}

func (p *mpsParser) data(fields []string) error {
	switch p.section {
	case "NAME":
		return fmt.Errorf("data line outside any section")
	case "OBJSENSE":
		return p.setSense(fields[0])
	case "ROWS":
		return p.rowLine(fields)
	case "COLUMNS":
		return p.columnLine(fields)
	case "RHS":
		return p.rhsLine(fields)
	case "RANGES":
		return p.rangesLine(fields)
	case "BOUNDS":
		return p.boundLine(fields)
	}
	return fmt.Errorf("data line outside any section")
}

func (p *mpsParser) rowLine(fields []string) error {
	if len(fields) != 2 {
		return fmt.Errorf("ROWS line needs type and name, got %d fields", len(fields))
	}
	typ := strings.ToUpper(fields[0])
	name := fields[1]
	if _, dup := p.rowIdx[name]; dup {
		return fmt.Errorf("duplicate row %q", name)
	}
	switch typ {
	case "N":
		if !p.objSeen {
			p.objSeen = true
			p.objName = name
			p.rowIdx[name] = -1
			return nil
		}
		p.rowIdx[name] = len(p.rows)
		p.rows = append(p.rows, mpsRow{name: name, typ: 'N', free: true})
	case "L", "G", "E":
		p.rowIdx[name] = len(p.rows)
		p.rows = append(p.rows, mpsRow{name: name, typ: typ[0]})
	default:
		return fmt.Errorf("bad row type %q", fields[0])
	}
	return nil
}

func (p *mpsParser) columnLine(fields []string) error {
	for _, f := range fields {
		if strings.EqualFold(strings.Trim(f, "'\""), "MARKER") {
			return fmt.Errorf("integer markers are not supported")
		}
	}
	if len(fields) < 3 || len(fields)%2 == 0 {
		return fmt.Errorf("COLUMNS line needs col + (row, value) pairs, got %d fields", len(fields))
	}
	name := fields[0]
	ci, ok := p.colIdx[name]
	if !ok {
		ci = len(p.cols)
		p.colIdx[name] = ci
		p.cols = append(p.cols, mpsCol{name: name, lo: 0, up: Inf})
	}
	col := &p.cols[ci]
	for k := 1; k+1 < len(fields); k += 2 {
		v, err := strconv.ParseFloat(fields[k+1], 64)
		if err != nil {
			return fmt.Errorf("bad value %q: %v", fields[k+1], err)
		}
		ri, ok := p.rowIdx[fields[k]]
		if !ok {
			return fmt.Errorf("unknown row %q", fields[k])
		}
		if ri < 0 {
			col.obj += v
			continue
		}
		col.terms = append(col.terms, Term{Var: ri, Coeff: v}) // Var reused as row index
	}
	return nil
}

func (p *mpsParser) rhsLine(fields []string) error {
	// First field is the RHS vector name; entries follow as (row, value).
	if len(fields) < 3 || len(fields)%2 == 0 {
		return fmt.Errorf("RHS line needs name + (row, value) pairs, got %d fields", len(fields))
	}
	for k := 1; k+1 < len(fields); k += 2 {
		v, err := strconv.ParseFloat(fields[k+1], 64)
		if err != nil {
			return fmt.Errorf("bad value %q: %v", fields[k+1], err)
		}
		ri, ok := p.rowIdx[fields[k]]
		if !ok {
			return fmt.Errorf("unknown row %q", fields[k])
		}
		if ri < 0 {
			p.objOff = -v // objective-row RHS is the negated constant term
			continue
		}
		p.rows[ri].rhs = v
	}
	return nil
}

func (p *mpsParser) rangesLine(fields []string) error {
	if len(fields) < 3 || len(fields)%2 == 0 {
		return fmt.Errorf("RANGES line needs name + (row, value) pairs, got %d fields", len(fields))
	}
	for k := 1; k+1 < len(fields); k += 2 {
		v, err := strconv.ParseFloat(fields[k+1], 64)
		if err != nil {
			return fmt.Errorf("bad value %q: %v", fields[k+1], err)
		}
		ri, ok := p.rowIdx[fields[k]]
		if !ok || ri < 0 {
			return fmt.Errorf("RANGES references row %q", fields[k])
		}
		p.rows[ri].rng = v
		p.rows[ri].hasR = true
	}
	return nil
}

func (p *mpsParser) boundLine(fields []string) error {
	if len(fields) < 3 {
		return fmt.Errorf("BOUNDS line needs type, set name, column")
	}
	typ := strings.ToUpper(fields[0])
	ci, ok := p.colIdx[fields[2]]
	if !ok {
		return fmt.Errorf("unknown column %q", fields[2])
	}
	col := &p.cols[ci]
	needVal := typ == "UP" || typ == "LO" || typ == "FX"
	var v float64
	if needVal {
		if len(fields) < 4 {
			return fmt.Errorf("bound %s needs a value", typ)
		}
		var err error
		if v, err = strconv.ParseFloat(fields[3], 64); err != nil {
			return fmt.Errorf("bad value %q: %v", fields[3], err)
		}
	}
	switch typ {
	case "UP":
		col.up = v
	case "LO":
		col.lo = v
	case "FX":
		col.lo, col.up = v, v
	case "FR":
		col.lo, col.up = -Inf, Inf
	case "MI":
		col.lo = -Inf
	case "PL":
		col.up = Inf
	case "BV", "UI", "LI":
		return fmt.Errorf("integer bound type %s is not supported", typ)
	default:
		return fmt.Errorf("bad bound type %q", fields[0])
	}
	return nil
}

// build assembles the Model: columns in first-appearance order, rows in
// declaration order, RANGES resolved against the row types.
func (p *mpsParser) build() (*Model, error) {
	m := NewModel(p.sense)
	for _, c := range p.cols {
		// Crossed bounds are kept as-is: the solver reports Infeasible,
		// which is the correct reading of such a file.
		m.AddVar(c.lo, c.up, c.obj)
	}
	m.SetObjectiveOffset(p.objOff)
	// Row terms, gathered column-major then grouped per row.
	terms := make([][]Term, len(p.rows))
	for ci, c := range p.cols {
		for _, t := range c.terms {
			terms[t.Var] = append(terms[t.Var], Term{Var: ci, Coeff: t.Coeff})
		}
	}
	for ri, r := range p.rows {
		lo, up := -Inf, Inf
		switch r.typ {
		case 'N':
			// free row: keep unconstrained
		case 'L':
			up = r.rhs
			if r.hasR {
				lo = r.rhs - math.Abs(r.rng)
			}
		case 'G':
			lo = r.rhs
			if r.hasR {
				up = r.rhs + math.Abs(r.rng)
			}
		case 'E':
			lo, up = r.rhs, r.rhs
			if r.hasR {
				if r.rng >= 0 {
					up = r.rhs + r.rng
				} else {
					lo = r.rhs + r.rng
				}
			}
		}
		m.AddRow(terms[ri], lo, up)
	}
	return m, nil
}

// WriteMPS writes the model in canonical free-format MPS (see the package
// comment of this file for the exact dialect). The output is deterministic
// and Write→Read→Write is byte-stable.
func WriteMPS(w io.Writer, m *Model) error {
	bw := bufio.NewWriter(w)
	fmtF := func(v float64) string {
		switch {
		case v >= spxInf:
			return "1e308" // never emitted by row/bound selection below
		case v <= -spxInf:
			return "-1e308"
		}
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
	fmt.Fprintln(bw, "NAME COYOTE")
	if m.sense == Maximize {
		fmt.Fprintln(bw, "OBJSENSE")
		fmt.Fprintln(bw, "    MAX")
	}
	fmt.Fprintln(bw, "ROWS")
	fmt.Fprintln(bw, " N  COST")
	rowType := make([]byte, len(m.rows))
	for i, r := range m.rows {
		switch {
		case r.lo <= -spxInf && r.up >= spxInf:
			rowType[i] = 'N'
		case r.lo == r.up:
			rowType[i] = 'E'
		case r.lo > -spxInf && r.up >= spxInf:
			rowType[i] = 'G'
		default:
			// Plain ≤ and ranged rows are both written as L (+ RANGES).
			rowType[i] = 'L'
		}
		fmt.Fprintf(bw, " %c  R%d\n", rowType[i], i)
	}
	// Column-major coefficient lists with duplicates merged, in row order.
	n := len(m.obj)
	colTerms := make([][]Term, n) // Term.Var reused as row index
	for i, r := range m.rows {
		acc := map[int]float64{}
		var order []int
		for _, t := range r.terms {
			if _, seen := acc[t.Var]; !seen {
				order = append(order, t.Var)
			}
			acc[t.Var] += t.Coeff
		}
		for _, v := range order {
			if c := acc[v]; c != 0 {
				colTerms[v] = append(colTerms[v], Term{Var: i, Coeff: c})
			}
		}
	}
	fmt.Fprintln(bw, "COLUMNS")
	for j := 0; j < n; j++ {
		if m.obj[j] != 0 {
			fmt.Fprintf(bw, "    X%d  COST  %s\n", j, fmtF(m.obj[j]))
		} else if len(colTerms[j]) == 0 {
			// A column with no objective and no rows must still appear in
			// COLUMNS or it would vanish on re-read, shifting every later
			// variable index.
			fmt.Fprintf(bw, "    X%d  COST  0\n", j)
		}
		for _, t := range colTerms[j] {
			fmt.Fprintf(bw, "    X%d  R%d  %s\n", j, t.Var, fmtF(t.Coeff))
		}
	}
	fmt.Fprintln(bw, "RHS")
	if m.objOffset != 0 {
		fmt.Fprintf(bw, "    RHS  COST  %s\n", fmtF(-m.objOffset))
	}
	for i, r := range m.rows {
		switch rowType[i] {
		case 'E', 'G':
			if r.lo != 0 {
				fmt.Fprintf(bw, "    RHS  R%d  %s\n", i, fmtF(r.lo))
			}
		case 'L':
			if r.up != 0 {
				fmt.Fprintf(bw, "    RHS  R%d  %s\n", i, fmtF(r.up))
			}
		}
	}
	ranged := false
	for i, r := range m.rows {
		if rowType[i] == 'L' && r.lo > -spxInf {
			if !ranged {
				fmt.Fprintln(bw, "RANGES")
				ranged = true
			}
			fmt.Fprintf(bw, "    RNG  R%d  %s\n", i, fmtF(r.up-r.lo))
		}
	}
	// Bounds: the MPS default is [0, +inf); only deviations are written.
	hdr := false
	bound := func(format string, args ...interface{}) {
		if !hdr {
			fmt.Fprintln(bw, "BOUNDS")
			hdr = true
		}
		fmt.Fprintf(bw, format, args...)
	}
	for j := 0; j < n; j++ {
		lo, up := m.vlo[j], m.vup[j]
		switch {
		case lo == up:
			bound("    FX  BND  X%d  %s\n", j, fmtF(lo))
		case lo <= -spxInf && up >= spxInf:
			bound("    FR  BND  X%d\n", j)
		default:
			if lo <= -spxInf {
				bound("    MI  BND  X%d\n", j)
			} else if lo != 0 {
				bound("    LO  BND  X%d  %s\n", j, fmtF(lo))
			}
			if up < spxInf {
				bound("    UP  BND  X%d  %s\n", j, fmtF(up))
			}
		}
	}
	fmt.Fprintln(bw, "ENDATA")
	return bw.Flush()
}
