package lp

import (
	"math"
	"testing"
)

// engineFunc solves a model on one of the two engines.
type engineFunc func(*Model) (*Solution, error)

var engines = map[string]engineFunc{
	"sparse": func(m *Model) (*Solution, error) { return m.Solve(nil) },
	"dense":  func(m *Model) (*Solution, error) { return m.SolveDense() },
}

// matrixCase is one instance of the pathological-LP test matrix. Objective
// and X are checked only when Status == Optimal (X entries set to NaN are
// skipped: degenerate optima may have multiple vertices).
type matrixCase struct {
	name      string
	build     func() *Model
	status    Status
	objective float64
	x         []float64
}

func matrixCases() []matrixCase {
	inf := math.Inf(1)
	nan := math.NaN()
	return []matrixCase{
		{
			// Beale's classic cycling example: full-tableau simplex with
			// naive Dantzig pricing cycles forever without anti-cycling.
			name: "beale-cycling",
			build: func() *Model {
				m := NewModel(Minimize)
				v0 := m.AddVar(0, inf, -0.75)
				v1 := m.AddVar(0, inf, 150)
				v2 := m.AddVar(0, inf, -0.02)
				v3 := m.AddVar(0, inf, 6)
				m.AddLE([]Term{{v0, 0.25}, {v1, -60}, {v2, -0.04}, {v3, 9}}, 0)
				m.AddLE([]Term{{v0, 0.5}, {v1, -90}, {v2, -0.02}, {v3, 3}}, 0)
				m.AddLE([]Term{{v2, 1}}, 1)
				return m
			},
			status:    Optimal,
			objective: -0.05,
			x:         []float64{nan, nan, 1, nan},
		},
		{
			// Kuhn's degenerate vertex: three constraints meet at the
			// optimum; the simplex must pass through degenerate pivots.
			name: "degenerate-vertex",
			build: func() *Model {
				m := NewModel(Maximize)
				x := m.AddVar(0, inf, 2)
				y := m.AddVar(0, inf, 3)
				m.AddLE([]Term{{x, 1}, {y, 1}}, 4)
				m.AddLE([]Term{{x, 1}, {y, 2}}, 6)
				m.AddLE([]Term{{x, 2}, {y, 1}}, 6)
				m.AddLE([]Term{{x, 1}, {y, 1}}, 4) // duplicate active row
				return m
			},
			status:    Optimal,
			objective: 10,
			x:         []float64{2, 2},
		},
		{
			name: "infeasible-rows",
			build: func() *Model {
				m := NewModel(Minimize)
				x := m.AddVar(0, inf, 1)
				m.AddLE([]Term{{x, 1}}, 1)
				m.AddGE([]Term{{x, 1}}, 2)
				return m
			},
			status: Infeasible,
		},
		{
			name: "infeasible-bounds-vs-row",
			build: func() *Model {
				m := NewModel(Minimize)
				x := m.AddVar(0, 3, 1)
				y := m.AddVar(0, 3, 1)
				m.AddEQ([]Term{{x, 1}, {y, 1}}, 10)
				return m
			},
			status: Infeasible,
		},
		{
			name: "infeasible-crossed-bounds",
			build: func() *Model {
				m := NewModel(Minimize)
				m.AddVar(5, 2, 1)
				return m
			},
			status: Infeasible,
		},
		{
			name: "unbounded-above",
			build: func() *Model {
				m := NewModel(Maximize)
				x := m.AddVar(0, inf, 1)
				m.AddGE([]Term{{x, 1}}, 0)
				return m
			},
			status: Unbounded,
		},
		{
			name: "unbounded-free-variable",
			build: func() *Model {
				m := NewModel(Minimize)
				x := m.AddVar(-inf, inf, 1)
				y := m.AddVar(0, inf, 0)
				m.AddLE([]Term{{x, 1}, {y, 1}}, 5)
				return m
			},
			status: Unbounded,
		},
		{
			// Degenerate AND bounded: every variable boxed, optimum at a
			// bound-flip-only vertex.
			name: "bound-flip-optimum",
			build: func() *Model {
				m := NewModel(Maximize)
				x := m.AddVar(1, 2, 1)
				y := m.AddVar(-1, 1, 1)
				m.AddLE([]Term{{x, 1}, {y, 1}}, 10) // slack: never binds
				return m
			},
			status:    Optimal,
			objective: 3,
			x:         []float64{2, 1},
		},
		{
			// Negative lower bounds and an equality chain.
			name: "negative-bounds-equality",
			build: func() *Model {
				m := NewModel(Minimize)
				x := m.AddVar(-5, 5, 1)
				y := m.AddVar(-5, 5, 2)
				m.AddEQ([]Term{{x, 1}, {y, 1}}, -3)
				return m
			},
			status:    Optimal,
			objective: -8, // x = -3-y ⇒ obj = -3+y, minimized at y = -5
			x:         []float64{2, -5},
		},
		{
			// Ranged row active at its lower end.
			name: "ranged-row",
			build: func() *Model {
				m := NewModel(Minimize)
				x := m.AddVar(0, inf, 1)
				y := m.AddVar(0, inf, 1)
				m.AddRow([]Term{{x, 1}, {y, 2}}, 4, 9)
				return m
			},
			status:    Optimal,
			objective: 2,
			x:         []float64{0, 2},
		},
		{
			// Fixed variables must be honored, not optimized away.
			name: "fixed-variable",
			build: func() *Model {
				m := NewModel(Maximize)
				x := m.AddVar(3, 3, 5)
				y := m.AddVar(0, inf, 1)
				m.AddLE([]Term{{x, 1}, {y, 1}}, 7)
				return m
			},
			status:    Optimal,
			objective: 19,
			x:         []float64{3, 4},
		},
	}
}

// TestMatrixBothEngines runs every pathological instance on both the
// sparse revised-simplex engine and the dense full-tableau oracle.
func TestMatrixBothEngines(t *testing.T) {
	for _, tc := range matrixCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for name, solve := range engines {
				sol, err := solve(tc.build())
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if sol.Status != tc.status {
					t.Fatalf("%s: status = %v, want %v", name, sol.Status, tc.status)
				}
				if tc.status != Optimal {
					continue
				}
				if math.Abs(sol.Objective-tc.objective) > 1e-6 {
					t.Fatalf("%s: objective = %g, want %g", name, sol.Objective, tc.objective)
				}
				for j, want := range tc.x {
					if math.IsNaN(want) {
						continue
					}
					if math.Abs(sol.X[j]-want) > 1e-6 {
						t.Fatalf("%s: x[%d] = %g, want %g (x=%v)", name, j, sol.X[j], want, sol.X)
					}
				}
			}
		})
	}
}
