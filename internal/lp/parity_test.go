package lp

import (
	"math"
	"math/rand"
	"testing"
)

// TestCrossEngineParityRandom is the randomized cross-engine parity matrix:
// for seeded random models, primal-sparse, dual-sparse, dense, and
// presolve-on solves must agree on status and objective, every optimal
// point must be feasible, and every engine's duals must satisfy the
// original model's KKT conditions (duals themselves may differ between
// engines at degenerate optima, so KKT membership is the meaningful
// equality).
func TestCrossEngineParityRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	solved := 0
	for trial := 0; trial < 300; trial++ {
		mdl := randomModel(rng)

		ref, err := mdl.SolveDense()
		if err != nil {
			t.Fatalf("trial %d: dense: %v", trial, err)
		}
		type variant struct {
			name string
			opts *SolveOptions
		}
		variants := []variant{
			{"primal", &SolveOptions{Method: MethodPrimal}},
			{"dual-devex", &SolveOptions{Method: MethodDual}},
			{"dual-dantzig", &SolveOptions{Method: MethodDual, DualPricing: DualDantzig}},
			{"presolve", &SolveOptions{Presolve: true}},
			{"presolve-dual", &SolveOptions{Presolve: true, Method: MethodDual}},
		}
		for _, v := range variants {
			sol, err := mdl.Solve(v.opts)
			if err != nil {
				t.Fatalf("trial %d: %s: %v", trial, v.name, err)
			}
			if sol.Stats.DenseFallback {
				t.Fatalf("trial %d: %s fell back to dense", trial, v.name)
			}
			if sol.Status != ref.Status {
				t.Fatalf("trial %d: %s status %v, dense %v", trial, v.name, sol.Status, ref.Status)
			}
			if sol.Status != Optimal {
				continue
			}
			tol := 1e-6 * (1 + math.Abs(ref.Objective))
			if math.Abs(sol.Objective-ref.Objective) > tol {
				t.Fatalf("trial %d: %s objective %.12g, dense %.12g",
					trial, v.name, sol.Objective, ref.Objective)
			}
			checkFeasible(t, mdl, sol.X, trial)
			if !mdl.kktValid(sol.X, sol.Duals) {
				t.Fatalf("trial %d: %s solution fails KKT validation", trial, v.name)
			}
		}
		if ref.Status == Optimal {
			solved++
		}
	}
	if solved < 50 {
		t.Fatalf("only %d/300 random models optimal; generator broken?", solved)
	}
}

// TestPresolveMatchesPlain pins the presolve-on ≡ presolve-off contract on
// the deterministic pathological matrix (which includes infeasible,
// unbounded, degenerate, and ranged-row cases) — status, objective, and
// KKT-valid duals after postsolve.
func TestPresolveMatchesPlain(t *testing.T) {
	for _, tc := range matrixCases() {
		t.Run(tc.name, func(t *testing.T) {
			plain, err := tc.build().Solve(nil)
			if err != nil {
				t.Fatalf("plain: %v", err)
			}
			mdl := tc.build()
			ps, err := mdl.Solve(&SolveOptions{Presolve: true})
			if err != nil {
				t.Fatalf("presolve: %v", err)
			}
			if ps.Status != plain.Status {
				t.Fatalf("presolve status %v, plain %v", ps.Status, plain.Status)
			}
			if ps.Status != Optimal {
				return
			}
			tol := 1e-6 * (1 + math.Abs(plain.Objective))
			if math.Abs(ps.Objective-plain.Objective) > tol {
				t.Fatalf("presolve objective %.12g, plain %.12g", ps.Objective, plain.Objective)
			}
			if !mdl.kktValid(ps.X, ps.Duals) {
				t.Fatalf("presolved solution fails KKT validation")
			}
			if ps.Basis != nil {
				t.Fatalf("presolved solve returned a basis (indexes the reduced model)")
			}
		})
	}
}

// TestPresolveReduces asserts the pass actually removes structure on a
// model built to contain every reduction: fixed variables, singleton and
// empty and redundant rows, empty columns, and a free column singleton.
func TestPresolveReduces(t *testing.T) {
	m := NewModel(Minimize)
	x := m.AddVar(0, 10, 1)
	f := m.AddVar(3, 3, 2)                // fixed
	e := m.AddVar(0, 5, 4)                // empty column: no rows
	free := m.AddVar(-Inf, Inf, 1)        // free column singleton
	m.AddGE([]Term{{x, 1}}, 2)            // singleton row → bound
	m.AddLE([]Term{{x, 1}, {f, 1}}, 100)  // redundant: max activity 13
	m.AddRow(nil, -1, 1)                  // empty row, satisfiable
	m.AddEQ([]Term{{free, 2}, {x, 1}}, 8) // free col singleton row
	sol, err := m.Solve(&SolveOptions{Presolve: true})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if sol.Stats.PresolveRows == 0 || sol.Stats.PresolveCols == 0 {
		t.Fatalf("presolve removed nothing: rows=%d cols=%d",
			sol.Stats.PresolveRows, sol.Stats.PresolveCols)
	}
	// min x + 2f + 4e + free: x=2 (singleton bound), f=3, e=0,
	// free=(8−x)/2=3 → 2 + 6 + 0 + 3 = 11.
	if math.Abs(sol.Objective-11) > 1e-9 {
		t.Fatalf("objective %.12g, want 11", sol.Objective)
	}
	if math.Abs(sol.X[free]-3) > 1e-9 || math.Abs(sol.X[f]-3) > 1e-9 || sol.X[e] != 0 {
		t.Fatalf("postsolved X = %v", sol.X)
	}
}

// TestDualAutoAfterBoundEdit is the dual-restart smoke test: a warm basis
// made primal infeasible by a bound edit must be repaired by the dual
// simplex under MethodAuto, matching the cold optimum.
func TestDualAutoAfterBoundEdit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	activations := 0
	for trial := 0; trial < 200; trial++ {
		mdl := randomModel(rng)
		base, err := mdl.Solve(nil)
		if err != nil || base.Status != Optimal {
			continue
		}
		// Shrink a row range or variable bound near the optimum to knock the
		// carried basis primal infeasible.
		if len(mdl.rows) > 0 && rng.Intn(2) == 0 {
			r := rng.Intn(len(mdl.rows))
			lo, up := mdl.rows[r].lo, mdl.rows[r].up
			act := 0.0
			for _, tm := range mdl.rows[r].terms {
				act += tm.Coeff * base.X[tm.Var]
			}
			shift := 0.5 + rng.Float64()
			if up < spxInf {
				up = act - shift // force the activity down
			}
			if lo > -spxInf && lo > up {
				lo = up - 1
			}
			mdl.SetRowBounds(r, lo, up)
		} else {
			j := rng.Intn(mdl.NumVars())
			lo, up := mdl.vlo[j], mdl.vup[j]
			if lo == up {
				continue
			}
			up = base.X[j] - (0.25 + rng.Float64())
			if lo > up {
				lo = up
			}
			mdl.SetVarBounds(j, lo, up)
		}

		warm, err := mdl.Solve(&SolveOptions{Basis: base.Basis})
		if err != nil {
			t.Fatalf("trial %d: warm: %v", trial, err)
		}
		cold, err := mdl.Solve(&SolveOptions{Method: MethodPrimal})
		if err != nil {
			t.Fatalf("trial %d: cold: %v", trial, err)
		}
		if warm.Status != cold.Status {
			t.Fatalf("trial %d: warm status %v, cold %v", trial, warm.Status, cold.Status)
		}
		if warm.Stats.DualUsed {
			activations++
		}
		if warm.Status != Optimal {
			continue
		}
		tol := 1e-6 * (1 + math.Abs(cold.Objective))
		if math.Abs(warm.Objective-cold.Objective) > tol {
			t.Fatalf("trial %d: warm objective %.12g, cold %.12g (dual used: %v)",
				trial, warm.Objective, cold.Objective, warm.Stats.DualUsed)
		}
	}
	if activations == 0 {
		t.Fatalf("dual simplex never activated across 200 bound-edit trials")
	}
	t.Logf("dual simplex repaired %d/200 bound-edited warm starts", activations)
}
