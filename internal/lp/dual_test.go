package lp

import (
	"math"
	"math/rand"
	"testing"
)

// dualCase is one instance of the pathological dual-simplex matrix — the
// dual counterpart of matrixCases. Each model is solved with MethodDual
// under both pricing rules and checked against the dense oracle; cases
// tagged warmEdit additionally solve once, apply the edit, and require the
// dual phase to repair the carried basis.
type dualCase struct {
	name     string
	build    func() *Model
	edit     func(*Model, *Solution) // optional bound/RHS edit after first solve
	wantDual bool                    // the edited re-solve must actually run the dual phase
}

// shrinkBasics clamps the upper bound of up to count structural variables
// that are BASIC in sol's basis to X[j]−delta. Only a basic variable's
// bound edit leaves the carried basis primal infeasible (a nonbasic one
// just slides along with its bound), so this is the canonical dual-restart
// trigger.
func shrinkBasics(m *Model, sol *Solution, count int, delta float64) {
	shrunk := 0
	for j := 0; j < m.NumVars() && shrunk < count; j++ {
		if sol.Basis.Status[j] != BasisBasic {
			continue
		}
		lo, up := m.vlo[j], m.vup[j]
		up = sol.X[j] - delta
		if lo > up {
			lo = up
		}
		m.SetVarBounds(j, lo, up)
		shrunk++
	}
}

func dualCases() []dualCase {
	inf := math.Inf(1)
	return []dualCase{
		{
			// Dual-degenerate: two disjoint components whose basic
			// variables violate by exactly the same amount, so the
			// leaving-row pricing ties everywhere.
			name: "dual-degenerate-ties",
			build: func() *Model {
				m := NewModel(Minimize)
				w := m.AddVar(0, 4, 1)
				x := m.AddVar(0, 4, 1)
				y := m.AddVar(0, 4, 1)
				z := m.AddVar(0, 4, 1)
				m.AddGE([]Term{{w, 1}, {x, 1}}, 2)
				m.AddGE([]Term{{y, 1}, {z, 1}}, 2)
				return m
			},
			edit: func(m *Model, sol *Solution) {
				shrinkBasics(m, sol, 2, 1.5)
			},
			wantDual: true,
		},
		{
			// Dual-infeasible cold start: a free variable carries nonzero
			// reduced cost at the crash basis and no bound flip can repair
			// it, so MethodDual must phase-switch to primal and still win.
			name: "dual-infeasible-phase-switch",
			build: func() *Model {
				m := NewModel(Minimize)
				x := m.AddVar(-inf, inf, 1)
				y := m.AddVar(0, inf, 2)
				m.AddGE([]Term{{x, 1}, {y, 1}}, 3)
				m.AddGE([]Term{{x, -1}, {y, 1}}, -1)
				return m
			},
		},
		{
			// Beale's cycling LP under the dual after an RHS edit: the
			// anti-cycling stall counter must keep the dual phase finite.
			name: "beale-dual-restart",
			build: func() *Model {
				m := NewModel(Minimize)
				v0 := m.AddVar(0, inf, -0.75)
				v1 := m.AddVar(0, inf, 150)
				v2 := m.AddVar(0, inf, -0.02)
				v3 := m.AddVar(0, inf, 6)
				m.AddLE([]Term{{v0, 0.25}, {v1, -60}, {v2, -0.04}, {v3, 9}}, 0)
				m.AddLE([]Term{{v0, 0.5}, {v1, -90}, {v2, -0.02}, {v3, 3}}, 0)
				m.AddLE([]Term{{v2, 1}}, 1)
				return m
			},
			edit: func(m *Model, sol *Solution) {
				shrinkBasics(m, sol, 1, 0.5) // v2, basic at 1, capped to 0.5
			},
			wantDual: true,
		},
		{
			// Ranged rows: the violated basic can leave at either end of its
			// range; both sides get exercised by shrinking the range around
			// the previous activity.
			name: "ranged-rows",
			build: func() *Model {
				m := NewModel(Maximize)
				x := m.AddVar(0, 10, 3)
				y := m.AddVar(0, 10, 2)
				m.AddRow([]Term{{x, 1}, {y, 1}}, 2, 12)
				m.AddRow([]Term{{x, 1}, {y, -1}}, -4, 4)
				return m
			},
			edit: func(m *Model, sol *Solution) {
				shrinkBasics(m, sol, 1, 3) // x, basic at 8, capped to 5
			},
			wantDual: true,
		},
		{
			// Boxed variables at their upper bounds: the dual ratio test
			// must consider entering columns sitting at either bound.
			name: "boxed-at-upper",
			build: func() *Model {
				m := NewModel(Maximize)
				x := m.AddVar(-2, 2, 5)
				y := m.AddVar(-2, 2, 4)
				z := m.AddVar(-2, 2, 1)
				m.AddLE([]Term{{x, 1}, {y, 1}, {z, 1}}, 3)
				m.AddLE([]Term{{x, 1}, {y, -1}}, 3)
				return m
			},
			edit: func(m *Model, sol *Solution) {
				shrinkBasics(m, sol, 1, 0.5) // z, basic at −1, capped to −1.5
			},
			wantDual: true,
		},
		{
			// Infeasible after the edit: the dual phase prices the violation
			// but no entering column exists; the verdict must come out
			// Infeasible (re-derived by primal phase 1, not trusted from the
			// dual ratio test).
			name: "edit-to-infeasible",
			build: func() *Model {
				m := NewModel(Minimize)
				x := m.AddVar(0, 4, 1)
				y := m.AddVar(0, 4, 1)
				m.AddGE([]Term{{x, 1}, {y, 1}}, 2)
				return m
			},
			edit: func(m *Model, sol *Solution) {
				m.SetRowBounds(0, 9, Inf) // beyond the variables' reach
			},
			wantDual: true,
		},
	}
}

// TestDualMatrix runs every pathological dual instance cold under
// MethodDual with both pricing rules, cross-checked against the dense
// oracle.
func TestDualMatrix(t *testing.T) {
	pricings := map[string]DualPricing{"devex": DualDevex, "dantzig": DualDantzig}
	for _, tc := range dualCases() {
		for pname, pricing := range pricings {
			t.Run(tc.name+"/"+pname, func(t *testing.T) {
				mdl := tc.build()
				ref, err := mdl.SolveDense()
				if err != nil {
					t.Fatalf("dense: %v", err)
				}
				sol, err := mdl.Solve(&SolveOptions{Method: MethodDual, DualPricing: pricing})
				if err != nil {
					t.Fatalf("dual: %v", err)
				}
				if sol.Status != ref.Status {
					t.Fatalf("dual status %v, dense %v", sol.Status, ref.Status)
				}
				if sol.Status != Optimal {
					return
				}
				tol := 1e-6 * (1 + math.Abs(ref.Objective))
				if math.Abs(sol.Objective-ref.Objective) > tol {
					t.Fatalf("dual objective %.12g, dense %.12g", sol.Objective, ref.Objective)
				}
				checkFeasible(t, mdl, sol.X, 0)
			})
		}
	}
}

// TestDualMatrixWarmEdit replays each case with an edit: solve, apply the
// bound/RHS change, warm re-solve under MethodAuto. The dual phase must
// engage where the case demands it, and the result must match a cold solve.
func TestDualMatrixWarmEdit(t *testing.T) {
	pricings := map[string]DualPricing{"devex": DualDevex, "dantzig": DualDantzig}
	for _, tc := range dualCases() {
		if tc.edit == nil {
			continue
		}
		for pname, pricing := range pricings {
			t.Run(tc.name+"/"+pname, func(t *testing.T) {
				mdl := tc.build()
				base, err := mdl.Solve(nil)
				if err != nil {
					t.Fatalf("base: %v", err)
				}
				if base.Status != Optimal {
					t.Fatalf("base status %v", base.Status)
				}
				tc.edit(mdl, base)
				warm, err := mdl.Solve(&SolveOptions{Basis: base.Basis, DualPricing: pricing})
				if err != nil {
					t.Fatalf("warm: %v", err)
				}
				cold, err := tcRebuildWithEdit(tc).Solve(&SolveOptions{Method: MethodPrimal})
				if err != nil {
					t.Fatalf("cold: %v", err)
				}
				if warm.Status != cold.Status {
					t.Fatalf("warm status %v, cold %v", warm.Status, cold.Status)
				}
				if tc.wantDual && !warm.Stats.DualUsed {
					t.Fatalf("dual phase did not run (attempted=%v, iterations=%d)",
						warm.Stats.DualAttempted, warm.Stats.Iterations)
				}
				if warm.Status != Optimal {
					return
				}
				tol := 1e-6 * (1 + math.Abs(cold.Objective))
				if math.Abs(warm.Objective-cold.Objective) > tol {
					t.Fatalf("warm objective %.12g, cold %.12g", warm.Objective, cold.Objective)
				}
			})
		}
	}
}

// TestDualStallRouting covers the auto router's bail memory
// (Basis.DualStall): a warm basis marked stalled is never routed into
// the dual phase but still solves correctly via the primal phases, and
// a dual phase that runs to completion leaves the mark cleared on the
// returned basis.
func TestDualStallRouting(t *testing.T) {
	var tc dualCase
	for _, c := range dualCases() {
		if c.edit != nil && c.wantDual {
			tc = c
			break
		}
	}
	if tc.build == nil {
		t.Fatal("no warm-edit dual case available")
	}

	mdl := tc.build()
	base, err := mdl.Solve(nil)
	if err != nil || base.Status != Optimal {
		t.Fatalf("base: status=%v err=%v", base.Status, err)
	}
	tc.edit(mdl, base)
	cold, err := tcRebuildWithEdit(tc).Solve(&SolveOptions{Method: MethodPrimal})
	if err != nil {
		t.Fatalf("cold: %v", err)
	}

	// A stalled chain must skip the dual phase entirely and keep the
	// mark on the basis it hands back.
	marked := base.Basis.Clone()
	marked.DualStall = 1
	skip, err := mdl.Solve(&SolveOptions{Basis: marked})
	if err != nil {
		t.Fatalf("marked warm: %v", err)
	}
	if skip.Stats.DualAttempted {
		t.Fatal("DualStall basis was routed into the dual phase")
	}
	if skip.Status != cold.Status {
		t.Fatalf("marked warm status %v, cold %v", skip.Status, cold.Status)
	}
	if skip.Status == Optimal {
		tol := 1e-6 * (1 + math.Abs(cold.Objective))
		if math.Abs(skip.Objective-cold.Objective) > tol {
			t.Fatalf("marked warm objective %.12g, cold %.12g", skip.Objective, cold.Objective)
		}
		if skip.Basis.DualStall == 0 {
			t.Fatal("skipped solve dropped the DualStall mark")
		}
	}

	// The unmarked chain routes to dual, completes, and the returned
	// basis stays clear.
	warm, err := mdl.Solve(&SolveOptions{Basis: base.Basis})
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	if !warm.Stats.DualUsed {
		t.Fatalf("dual phase did not complete (attempted=%v)", warm.Stats.DualAttempted)
	}
	if warm.Basis != nil && warm.Basis.DualStall != 0 {
		t.Fatal("completed dual phase left DualStall set")
	}
}

func tcRebuildWithEdit(tc dualCase) *Model {
	m := tc.build()
	sol, err := m.Solve(nil)
	if err != nil {
		panic(err)
	}
	tc.edit(m, sol)
	return m
}

// TestDualForcedRandom hammers MethodDual from cold starts on random
// models: whatever path the engine takes (dual, flip-repair, or phase
// switch), the verdict must match the dense oracle.
func TestDualForcedRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	dualRan := 0
	for trial := 0; trial < 250; trial++ {
		mdl := randomModel(rng)
		ref, err := mdl.SolveDense()
		if err != nil {
			t.Fatalf("trial %d: dense: %v", trial, err)
		}
		pricing := DualDevex
		if trial%2 == 1 {
			pricing = DualDantzig
		}
		sol, err := mdl.Solve(&SolveOptions{Method: MethodDual, DualPricing: pricing})
		if err != nil {
			t.Fatalf("trial %d: dual: %v", trial, err)
		}
		if sol.Stats.DualUsed {
			dualRan++
		}
		if sol.Status != ref.Status {
			t.Fatalf("trial %d: dual status %v, dense %v", trial, sol.Status, ref.Status)
		}
		if sol.Status != Optimal {
			continue
		}
		tol := 1e-6 * (1 + math.Abs(ref.Objective))
		if math.Abs(sol.Objective-ref.Objective) > tol {
			t.Fatalf("trial %d: dual objective %.12g, dense %.12g", trial, sol.Objective, ref.Objective)
		}
	}
	if dualRan == 0 {
		t.Fatal("forced dual never ran to a verdict on any random model")
	}
	t.Logf("dual phase reached a verdict on %d/250 forced cold starts", dualRan)
}
