package lp

import (
	"sync"
	"testing"

	"github.com/coyote-te/coyote/internal/obs"
)

// TestGlobalStatsConcurrentSolves hammers the process-wide solver counters
// from three directions at once — goroutines running solves, readers
// polling GlobalStats and the obs registry snapshot, and a resetter zeroing
// the counters mid-flight — so `go test -race` proves the registry-backed
// stats path is data-race-free. Values are only sanity-checked (counters
// are process-global and resets interleave arbitrarily); the race detector
// is the real assertion.
func TestGlobalStatsConcurrentSolves(t *testing.T) {
	build := func() *Model {
		m := NewModel(Minimize)
		x := m.AddVar(0, 4, 1)
		y := m.AddVar(0, 4, 2)
		z := m.AddVar(0, 4, 1)
		m.AddGE([]Term{{x, 1}, {y, 1}}, 2)
		m.AddGE([]Term{{y, 1}, {z, 1}}, 2)
		m.AddLE([]Term{{x, 1}, {z, 1}}, 5)
		return m
	}

	const (
		solvers        = 4
		solvesPerG     = 40
		readsPerReader = 200
	)
	var wg sync.WaitGroup

	for g := 0; g < solvers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < solvesPerG; i++ {
				m := build()
				sol, err := m.Solve(nil)
				if err != nil {
					t.Error(err)
					return
				}
				if sol.Status != Optimal {
					t.Errorf("status %v, want optimal", sol.Status)
					return
				}
			}
		}()
	}

	// Readers: the legacy snapshot API and the registry exposition path.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < readsPerReader; i++ {
				st := GlobalStats()
				if st.Iterations > 0 && st.Solves == 0 && st.DenseFallbacks == 0 {
					// Not exact across a concurrent reset, but iterations
					// without any solve ever recorded would mean torn
					// accounting rather than an interleaved reset.
					_ = st
				}
				for _, fam := range obs.Default.Snapshot() {
					_ = fam.Name
				}
			}
		}()
	}

	// Resetter: zero the counters while solves are in flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			ResetGlobalStats()
		}
	}()

	wg.Wait()

	// Quiesced: one more solve must be visible in a fresh snapshot.
	ResetGlobalStats()
	m := build()
	if _, err := m.Solve(nil); err != nil {
		t.Fatal(err)
	}
	if st := GlobalStats(); st.Solves != 1 {
		t.Fatalf("after reset + one solve: Solves = %d, want 1", st.Solves)
	}
}
