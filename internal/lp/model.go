package lp

import (
	"context"
	"fmt"
	"math"

	"github.com/coyote-te/coyote/internal/obs"
)

// Inf is the bound value meaning "unbounded in this direction". Any
// magnitude at or beyond it is treated as infinite.
var Inf = math.Inf(1)

// Model is the shared LP builder the solver clients (OPTDAG, the slave LP,
// the dual certificates) construct against. Unlike the legacy Problem it
// supports bounded variables (lo ≤ x ≤ up, so demand-box and capacity
// bounds need not become explicit rows), ranged rows (rlo ≤ aᵀx ≤ rup),
// objective/bound mutation between solves, and warm starts from an
// exported Basis — the sparse revised-simplex engine behind Solve resumes
// from the previous vertex, which is what makes the adversary loop's
// near-identical successive LPs and the online controller's repeated
// normalizations cheap.
//
// The zero value is not usable; create models with NewModel. Models are
// not safe for concurrent use.
type Model struct {
	sense     Sense
	obj       []float64
	objOffset float64 // constant added to every objective value
	vlo       []float64
	vup       []float64
	rows      []mrow

	built *spxProb // cached engine form; invalidated by AddRow/AddVar
}

type mrow struct {
	terms []Term
	lo    float64
	up    float64
}

// NewModel returns an empty model with the given objective sense.
func NewModel(sense Sense) *Model {
	return &Model{sense: sense}
}

// AddVar adds a variable with bounds [lo, up] and the given objective
// coefficient, returning its index. Use lp.Inf / -lp.Inf for unbounded
// directions.
func (m *Model) AddVar(lo, up, obj float64) int {
	m.vlo = append(m.vlo, lo)
	m.vup = append(m.vup, up)
	m.obj = append(m.obj, obj)
	m.built = nil
	return len(m.obj) - 1
}

// AddVars adds n non-negative variables with zero objective and returns
// the first index.
func (m *Model) AddVars(n int) int {
	first := len(m.obj)
	for i := 0; i < n; i++ {
		m.AddVar(0, Inf, 0)
	}
	return first
}

// NumVars reports the number of variables added so far.
func (m *Model) NumVars() int { return len(m.obj) }

// NumRows reports the number of rows added so far.
func (m *Model) NumRows() int { return len(m.rows) }

// SetObjective sets the objective coefficient of variable v. Changing the
// objective does not invalidate a warm-start basis: the previous optimal
// vertex stays primal feasible, so re-solving skips phase 1 entirely.
func (m *Model) SetObjective(v int, c float64) { m.obj[v] = c }

// SetObjectiveOffset sets the constant term added to every objective value
// (MPS files express it as an RHS entry on the objective row). It does not
// affect the optimizer's choices, only the reported Objective.
func (m *Model) SetObjectiveOffset(c float64) { m.objOffset = c }

// ObjectiveOffset returns the constant objective term.
func (m *Model) ObjectiveOffset() float64 { return m.objOffset }

// SetVarBounds replaces the bounds of variable v.
func (m *Model) SetVarBounds(v int, lo, up float64) {
	m.vlo[v] = lo
	m.vup[v] = up
	if m.built != nil {
		m.built.lo[v] = lo
		m.built.up[v] = up
	}
}

// AddRow appends the ranged constraint rlo ≤ Σ terms ≤ rup and returns its
// row index. Terms may repeat a variable; coefficients accumulate.
func (m *Model) AddRow(terms []Term, rlo, rup float64) int {
	for _, t := range terms {
		if t.Var < 0 || t.Var >= len(m.obj) {
			panic(fmt.Sprintf("lp: row references variable %d of %d", t.Var, len(m.obj)))
		}
	}
	m.rows = append(m.rows, mrow{terms: append([]Term(nil), terms...), lo: rlo, up: rup})
	m.built = nil
	return len(m.rows) - 1
}

// AddLE appends Σ terms ≤ b.
func (m *Model) AddLE(terms []Term, b float64) int { return m.AddRow(terms, -Inf, b) }

// AddGE appends Σ terms ≥ b.
func (m *Model) AddGE(terms []Term, b float64) int { return m.AddRow(terms, b, Inf) }

// AddEQ appends Σ terms = b.
func (m *Model) AddEQ(terms []Term, b float64) int { return m.AddRow(terms, b, b) }

// SetRowBounds replaces the bounds of row r — the cheap way to move an RHS
// between warm-started solves without rebuilding the model.
func (m *Model) SetRowBounds(r int, rlo, rup float64) {
	m.rows[r].lo = rlo
	m.rows[r].up = rup
	if m.built != nil {
		m.built.lo[len(m.obj)+r] = rlo
		m.built.up[len(m.obj)+r] = rup
	}
}

// SolveOptions tunes a Model solve.
type SolveOptions struct {
	// Basis warm-starts the solve from a previously returned Basis. A basis
	// whose shape no longer matches the model (or that has become singular)
	// is ignored and the solve starts cold; Solution.Stats reports which
	// happened.
	Basis *Basis
	// Method selects the simplex algorithm. The default, MethodAuto, runs
	// the dual simplex exactly when it dominates: an accepted warm basis
	// that bound/RHS edits have made primal infeasible while leaving it
	// dual feasible. MethodDual forces a dual attempt (with an automatic
	// switch to the primal phases when dual feasibility is unreachable);
	// MethodPrimal forces the primal two-phase path.
	Method Method
	// DualPricing selects the dual simplex leaving-row rule (Devex by
	// default, Dantzig as the simple alternative). Both share the Bland
	// anti-cycling fallback.
	DualPricing DualPricing
	// Presolve runs the reduction pass (singleton rows/columns, fixed and
	// empty removal, bound tightening) before the simplex and maps the
	// solution — including row duals — back through postsolve. It is
	// skipped when a warm Basis is supplied: a basis indexes the unreduced
	// model. A postsolve whose recovered solution fails the KKT check
	// triggers a transparent re-solve without presolve, so enabling it
	// never changes results beyond round-off.
	Presolve bool
	// Ctx, when it carries an obs.Tracer, records one lp.solve span per
	// call with the phase breakdown (iterations, warm/dual verdicts) as
	// attributes. Purely observational: it never affects the solve and is
	// ignored (zero cost) when no tracer is attached.
	Ctx context.Context
}

// SolveStats describes one sparse solve.
type SolveStats struct {
	Iterations       int  // total simplex iterations (all phases)
	Phase1Iterations int  // iterations spent restoring feasibility (primal phase 1)
	DualIterations   int  // iterations spent in the dual simplex phase
	Refactorizations int  // LU (re)factorizations, including the initial one
	WarmAttempted    bool // a warm basis was supplied
	WarmUsed         bool // ... and it was accepted
	DualAttempted    bool // the dual simplex phase was entered
	DualUsed         bool // ... and it ran to a verdict (no budget bailout)
	DenseFallback    bool // the sparse engine failed and the dense oracle answered
	PresolveRows     int  // rows removed by presolve
	PresolveCols     int  // columns removed by presolve
}

// build materializes the engine form (CSC structural matrix, bound arrays,
// minimization costs).
func (m *Model) build() *spxProb {
	if m.built != nil {
		// Bounds are kept in sync by the setters; refresh costs, which are
		// cheap and may have been edited via SetObjective.
		m.syncCosts(m.built)
		return m.built
	}
	n := len(m.obj)
	nr := len(m.rows)
	p := &spxProb{
		a:    csc{m: nr, n: n},
		lo:   make([]float64, n+nr),
		up:   make([]float64, n+nr),
		cost: make([]float64, n),
	}
	copy(p.lo, m.vlo)
	copy(p.up, m.vup)
	for i, r := range m.rows {
		p.lo[n+i] = r.lo
		p.up[n+i] = r.up
	}
	m.syncCosts(p)
	// Accumulate per-column entries (rows may repeat variables).
	counts := make([]int32, n+1)
	for _, r := range m.rows {
		for _, t := range r.terms {
			counts[t.Var+1]++
		}
	}
	for j := 0; j < n; j++ {
		counts[j+1] += counts[j]
	}
	p.a.colPtr = counts
	nnz := counts[n]
	p.a.rowIdx = make([]int32, nnz)
	p.a.val = make([]float64, nnz)
	next := make([]int32, n)
	for j := range next {
		next[j] = counts[j]
	}
	for i, r := range m.rows {
		for _, t := range r.terms {
			p.a.rowIdx[next[t.Var]] = int32(i)
			p.a.val[next[t.Var]] = t.Coeff
			next[t.Var]++
		}
	}
	// Merge duplicate (row, col) entries within each column so the engine
	// sees each coefficient once.
	m.mergeDuplicates(p)
	m.built = p
	return p
}

func (m *Model) syncCosts(p *spxProb) {
	if m.sense == Minimize {
		copy(p.cost, m.obj)
	} else {
		for j, c := range m.obj {
			p.cost[j] = -c
		}
	}
}

// mergeDuplicates collapses repeated row indices inside each CSC column
// (entries are grouped by construction since rows were appended in order).
func (m *Model) mergeDuplicates(p *spxProb) {
	a := &p.a
	w := int32(0)
	newPtr := make([]int32, a.n+1)
	for j := 0; j < a.n; j++ {
		newPtr[j] = w
		start := a.colPtr[j]
		end := a.colPtr[j+1]
		for i := start; i < end; i++ {
			if w > newPtr[j] && a.rowIdx[w-1] == a.rowIdx[i] {
				a.val[w-1] += a.val[i]
				continue
			}
			a.rowIdx[w] = a.rowIdx[i]
			a.val[w] = a.val[i]
			w++
		}
	}
	newPtr[a.n] = w
	a.colPtr = newPtr
	a.rowIdx = a.rowIdx[:w]
	a.val = a.val[:w]
}

// Solve runs the sparse revised simplex and returns the solution, falling
// back to the dense reference solver if the sparse engine reports a
// numerical failure (which is counted in the global stats and the returned
// Stats — it should never happen on the formulations in this repository).
func (m *Model) Solve(opts *SolveOptions) (*Solution, error) {
	var warm *Basis
	var sopts spxOpts
	var span *obs.Span
	if opts != nil && opts.Ctx != nil {
		_, span = obs.StartSpan(opts.Ctx, "lp.solve")
	}
	if opts != nil {
		warm = opts.Basis
		sopts = spxOpts{method: opts.Method, pricing: opts.DualPricing}
		if opts.Presolve && warm == nil {
			sol, err := m.solvePresolved(sopts)
			if span != nil {
				span.Attr("presolve", true)
				if sol != nil {
					span.Attr("status", sol.Status.String()).
						Attr("iterations", sol.Stats.Iterations).
						Attr("rows_removed", sol.Stats.PresolveRows).
						Attr("cols_removed", sol.Stats.PresolveCols)
				}
				span.End()
			}
			return sol, err
		}
	}
	defer span.End()
	// A variable with crossed bounds makes the model trivially infeasible;
	// the engine's bound logic assumes lo ≤ up everywhere.
	for j := range m.vlo {
		if m.vlo[j] > m.vup[j] {
			return &Solution{Status: Infeasible}, nil
		}
	}
	for _, r := range m.rows {
		if r.lo > r.up {
			return &Solution{Status: Infeasible}, nil
		}
	}
	p := m.build()
	res, stats, err := spxSolve(p, warm, sopts)
	recordGlobalStats(stats)
	if span != nil {
		span.Attr("iterations", stats.Iterations).
			Attr("phase1_iterations", stats.Phase1Iterations).
			Attr("dual_iterations", stats.DualIterations).
			Attr("refactorizations", stats.Refactorizations).
			Attr("warm_attempted", stats.WarmAttempted).
			Attr("warm_used", stats.WarmUsed).
			Attr("dual_used", stats.DualUsed)
	}
	if err != nil {
		// Numerical failure: answer from the dense oracle instead.
		sol, derr := m.SolveDense()
		if derr != nil {
			lpLog.Error("sparse solve failed and dense fallback failed",
				"sparse_err", err, "dense_err", derr)
			return nil, err
		}
		sol.Stats = stats
		sol.Stats.DenseFallback = true
		mDenseFallbacks.Inc()
		lpLog.Warn("sparse solve failed; dense fallback answered",
			"err", err, "iterations", stats.Iterations)
		span.Attr("dense_fallback", true)
		return sol, nil
	}
	if stats.DualAttempted && !stats.DualUsed {
		// The dual phase hit its budget (anti-cycling bail) and the solve
		// restarted from the primal path — worth a trace when hunting
		// warm-start regressions, not worth a warning.
		lpLog.Debug("dual simplex bailed to primal",
			"dual_iterations", stats.DualIterations, "iterations", stats.Iterations)
	}
	span.Attr("status", res.status.String())
	sol := &Solution{Status: res.status, Stats: stats}
	if res.status == Optimal {
		sol.X = res.x[:len(m.obj):len(m.obj)]
		obj := m.objOffset
		for j, c := range m.obj {
			obj += c * sol.X[j]
		}
		sol.Objective = obj
		sol.Basis = res.basis
		// Duals are reported in the model's own sense: for Maximize the
		// internal minimization multipliers are negated so weak duality
		// reads the standard way.
		sol.Duals = res.y
		if m.sense == Maximize {
			for i := range sol.Duals {
				sol.Duals[i] = -sol.Duals[i]
			}
		}
	}
	return sol, nil
}

// SolveDense solves the model with the dense full-tableau reference solver
// (package lp's original two-phase simplex). It exists as the parity
// oracle for the sparse engine — randomized tests cross-validate every
// optimum — and as Solve's fallback. Bounded variables are rewritten into
// the dense solver's x ≥ 0 form (shifts, sign flips, and free-variable
// splits); ranged rows become constraint pairs.
func (m *Model) SolveDense() (*Solution, error) {
	n := len(m.obj)
	p := NewProblem(m.sense)
	// Per-variable mapping into dense variables: x = shift + sign·x' with
	// x' ≥ 0, or a free split x = x⁺ − x⁻.
	type vmap struct {
		pos, neg int // dense indices (neg = −1 unless split)
		shift    float64
		sign     float64
		fixed    bool
	}
	maps := make([]vmap, n)
	constant := 0.0
	for j := 0; j < n; j++ {
		lo, up := m.vlo[j], m.vup[j]
		switch {
		case lo > up:
			return &Solution{Status: Infeasible}, nil
		case lo == up:
			maps[j] = vmap{pos: -1, neg: -1, shift: lo, fixed: true}
			constant += m.obj[j] * lo
		case lo > -spxInf:
			v := p.AddVariable()
			maps[j] = vmap{pos: v, neg: -1, shift: lo, sign: 1}
			p.SetObjective(v, m.obj[j])
			constant += m.obj[j] * lo
			if up < spxInf {
				p.AddConstraint([]Term{{v, 1}}, LE, up-lo)
			}
		case up < spxInf:
			v := p.AddVariable()
			maps[j] = vmap{pos: v, neg: -1, shift: up, sign: -1}
			p.SetObjective(v, -m.obj[j])
			constant += m.obj[j] * up
		default:
			vp := p.AddVariable()
			vn := p.AddVariable()
			maps[j] = vmap{pos: vp, neg: vn, sign: 1}
			p.SetObjective(vp, m.obj[j])
			p.SetObjective(vn, -m.obj[j])
		}
	}
	// addRow reports false when the row reduces to an unsatisfiable
	// constant (every referenced variable fixed): Problem.Solve would not
	// see such rows at all once it has zero variables.
	addRow := func(r mrow, rel Rel, rhs float64) bool {
		var terms []Term
		shift := 0.0
		for _, t := range r.terms {
			mp := maps[t.Var]
			if mp.fixed {
				shift += t.Coeff * mp.shift
				continue
			}
			terms = append(terms, Term{mp.pos, t.Coeff * mp.sign})
			if mp.neg >= 0 {
				terms = append(terms, Term{mp.neg, -t.Coeff})
			}
			shift += t.Coeff * mp.shift
		}
		if len(terms) == 0 {
			b := rhs - shift
			switch rel {
			case LE:
				return b >= -spxFeasTol
			case GE:
				return b <= spxFeasTol
			}
			return math.Abs(b) <= spxFeasTol
		}
		p.AddConstraint(terms, rel, rhs-shift)
		return true
	}
	for _, r := range m.rows {
		ok := true
		switch {
		case r.lo > r.up:
			return &Solution{Status: Infeasible}, nil
		case r.lo == r.up:
			ok = addRow(r, EQ, r.lo)
		default:
			if r.up < spxInf {
				ok = addRow(r, LE, r.up)
			}
			if ok && r.lo > -spxInf {
				ok = addRow(r, GE, r.lo)
			}
		}
		if !ok {
			return &Solution{Status: Infeasible}, nil
		}
	}
	dsol, err := p.Solve()
	if err != nil {
		return nil, err
	}
	sol := &Solution{Status: dsol.Status}
	if dsol.Status == Optimal {
		sol.X = make([]float64, n)
		for j, mp := range maps {
			switch {
			case mp.fixed:
				sol.X[j] = mp.shift
			case mp.neg >= 0:
				sol.X[j] = dsol.X[mp.pos] - dsol.X[mp.neg]
			default:
				sol.X[j] = mp.shift + mp.sign*dsol.X[mp.pos]
			}
		}
		sol.Objective = dsol.Objective + constant + m.objOffset
	}
	return sol, nil
}
