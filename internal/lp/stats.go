package lp

import "sync/atomic"

// StatsSnapshot aggregates solver activity across every Model.Solve in the
// process since the last ResetGlobalStats — the source for
// `coyote-eval -lp-stats`. Counters are monotone and safe to read
// concurrently; they are diagnostics only and never part of the
// determinism contract.
type StatsSnapshot struct {
	Solves           uint64 // sparse solves attempted
	Iterations       uint64 // total simplex iterations
	Phase1Iterations uint64 // iterations spent restoring feasibility
	DualIterations   uint64 // iterations spent in the dual simplex phase
	Refactorizations uint64 // LU (re)factorizations
	WarmAttempts     uint64 // solves offered a warm basis
	WarmHits         uint64 // ... that accepted it
	DualAttempts     uint64 // solves that entered the dual simplex phase
	DualHits         uint64 // ... where it ran to a verdict
	PresolveSolves   uint64 // solves routed through presolve
	PresolveRows     uint64 // rows removed by presolve, summed over solves
	PresolveCols     uint64 // columns removed by presolve, summed over solves
	DenseFallbacks   uint64 // sparse failures answered by the dense oracle
}

// WarmHitRate is WarmHits/WarmAttempts, or 0 when no warm start was tried.
func (s StatsSnapshot) WarmHitRate() float64 {
	if s.WarmAttempts == 0 {
		return 0
	}
	return float64(s.WarmHits) / float64(s.WarmAttempts)
}

// DualHitRate is DualHits/DualAttempts, or 0 when the dual phase never ran.
func (s StatsSnapshot) DualHitRate() float64 {
	if s.DualAttempts == 0 {
		return 0
	}
	return float64(s.DualHits) / float64(s.DualAttempts)
}

type statsCounters struct {
	solves           uint64
	iterations       uint64
	phase1           uint64
	dualIterations   uint64
	refactorizations uint64
	warmAttempts     uint64
	warmHits         uint64
	dualAttempts     uint64
	dualHits         uint64
	presolveSolves   uint64
	presolveRows     uint64
	presolveCols     uint64
	denseFallbacks   uint64
}

var globalStats statsCounters

func (c *statsCounters) record(s SolveStats) {
	atomic.AddUint64(&c.solves, 1)
	atomic.AddUint64(&c.iterations, uint64(s.Iterations))
	atomic.AddUint64(&c.phase1, uint64(s.Phase1Iterations))
	atomic.AddUint64(&c.dualIterations, uint64(s.DualIterations))
	atomic.AddUint64(&c.refactorizations, uint64(s.Refactorizations))
	if s.WarmAttempted {
		atomic.AddUint64(&c.warmAttempts, 1)
	}
	if s.WarmUsed {
		atomic.AddUint64(&c.warmHits, 1)
	}
	if s.DualAttempted {
		atomic.AddUint64(&c.dualAttempts, 1)
	}
	if s.DualUsed {
		atomic.AddUint64(&c.dualHits, 1)
	}
	if s.PresolveRows > 0 || s.PresolveCols > 0 {
		atomic.AddUint64(&c.presolveRows, uint64(s.PresolveRows))
		atomic.AddUint64(&c.presolveCols, uint64(s.PresolveCols))
	}
}

// GlobalStats returns a snapshot of the process-wide solver counters.
func GlobalStats() StatsSnapshot {
	return StatsSnapshot{
		Solves:           atomic.LoadUint64(&globalStats.solves),
		Iterations:       atomic.LoadUint64(&globalStats.iterations),
		Phase1Iterations: atomic.LoadUint64(&globalStats.phase1),
		DualIterations:   atomic.LoadUint64(&globalStats.dualIterations),
		Refactorizations: atomic.LoadUint64(&globalStats.refactorizations),
		WarmAttempts:     atomic.LoadUint64(&globalStats.warmAttempts),
		WarmHits:         atomic.LoadUint64(&globalStats.warmHits),
		DualAttempts:     atomic.LoadUint64(&globalStats.dualAttempts),
		DualHits:         atomic.LoadUint64(&globalStats.dualHits),
		PresolveSolves:   atomic.LoadUint64(&globalStats.presolveSolves),
		PresolveRows:     atomic.LoadUint64(&globalStats.presolveRows),
		PresolveCols:     atomic.LoadUint64(&globalStats.presolveCols),
		DenseFallbacks:   atomic.LoadUint64(&globalStats.denseFallbacks),
	}
}

// ResetGlobalStats zeroes the process-wide solver counters (per-run
// accounting for -lp-stats).
func ResetGlobalStats() {
	atomic.StoreUint64(&globalStats.solves, 0)
	atomic.StoreUint64(&globalStats.iterations, 0)
	atomic.StoreUint64(&globalStats.phase1, 0)
	atomic.StoreUint64(&globalStats.dualIterations, 0)
	atomic.StoreUint64(&globalStats.refactorizations, 0)
	atomic.StoreUint64(&globalStats.warmAttempts, 0)
	atomic.StoreUint64(&globalStats.warmHits, 0)
	atomic.StoreUint64(&globalStats.dualAttempts, 0)
	atomic.StoreUint64(&globalStats.dualHits, 0)
	atomic.StoreUint64(&globalStats.presolveSolves, 0)
	atomic.StoreUint64(&globalStats.presolveRows, 0)
	atomic.StoreUint64(&globalStats.presolveCols, 0)
	atomic.StoreUint64(&globalStats.denseFallbacks, 0)
}
