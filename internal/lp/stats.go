package lp

import "github.com/coyote-te/coyote/internal/obs"

// StatsSnapshot aggregates solver activity across every Model.Solve in the
// process since the last ResetGlobalStats — the source for
// `coyote-eval -lp-stats`. Counters are monotone and safe to read
// concurrently; they are diagnostics only and never part of the
// determinism contract.
type StatsSnapshot struct {
	Solves           uint64 // sparse solves attempted
	Iterations       uint64 // total simplex iterations
	Phase1Iterations uint64 // iterations spent restoring feasibility
	DualIterations   uint64 // iterations spent in the dual simplex phase
	Refactorizations uint64 // LU (re)factorizations
	WarmAttempts     uint64 // solves offered a warm basis
	WarmHits         uint64 // ... that accepted it
	DualAttempts     uint64 // solves that entered the dual simplex phase
	DualHits         uint64 // ... where it ran to a verdict
	PresolveSolves   uint64 // solves routed through presolve
	PresolveRows     uint64 // rows removed by presolve, summed over solves
	PresolveCols     uint64 // columns removed by presolve, summed over solves
	DenseFallbacks   uint64 // sparse failures answered by the dense oracle
}

// WarmHitRate is WarmHits/WarmAttempts, or 0 when no warm start was tried.
func (s StatsSnapshot) WarmHitRate() float64 {
	if s.WarmAttempts == 0 {
		return 0
	}
	return float64(s.WarmHits) / float64(s.WarmAttempts)
}

// DualHitRate is DualHits/DualAttempts, or 0 when the dual phase never ran.
func (s StatsSnapshot) DualHitRate() float64 {
	if s.DualAttempts == 0 {
		return 0
	}
	return float64(s.DualHits) / float64(s.DualAttempts)
}

// The process-wide solver counters now live in the obs.Default metrics
// registry (DESIGN.md §10) and are exported on GET /metrics as the
// coyote_lp_* family; GlobalStats/ResetGlobalStats keep their historical
// semantics by delegating to them.
var (
	mSolves = obs.Default.NewCounter("coyote_lp_solves_total",
		"Sparse simplex solves attempted.")
	mIterations = obs.Default.NewCounter("coyote_lp_iterations_total",
		"Simplex iterations across all phases.")
	mPhase1 = obs.Default.NewCounter("coyote_lp_phase1_iterations_total",
		"Iterations spent restoring primal feasibility (phase 1).")
	mDualIterations = obs.Default.NewCounter("coyote_lp_dual_iterations_total",
		"Iterations spent in the dual simplex phase.")
	mRefactorizations = obs.Default.NewCounter("coyote_lp_refactorizations_total",
		"LU (re)factorizations of the basis matrix.")
	mWarmAttempts = obs.Default.NewCounter("coyote_lp_warm_attempts_total",
		"Solves offered a warm-start basis.")
	mWarmHits = obs.Default.NewCounter("coyote_lp_warm_hits_total",
		"Solves that accepted the offered warm-start basis.")
	mDualAttempts = obs.Default.NewCounter("coyote_lp_dual_attempts_total",
		"Solves that entered the dual simplex phase.")
	mDualHits = obs.Default.NewCounter("coyote_lp_dual_hits_total",
		"Dual simplex attempts that ran to a verdict.")
	mPresolveSolves = obs.Default.NewCounter("coyote_lp_presolve_solves_total",
		"Solves routed through the presolve/postsolve pass.")
	mPresolveRows = obs.Default.NewCounter("coyote_lp_presolve_rows_removed_total",
		"Rows removed by presolve, summed over solves.")
	mPresolveCols = obs.Default.NewCounter("coyote_lp_presolve_cols_removed_total",
		"Columns removed by presolve, summed over solves.")
	mDenseFallbacks = obs.Default.NewCounter("coyote_lp_dense_fallbacks_total",
		"Sparse-engine failures answered by the dense oracle.")
)

// lpLog records the solver's exceptional paths — dense fallbacks at warn,
// dual-phase bailouts at debug. Ordinary solves stay silent; the counters
// above carry the volume.
var lpLog = obs.Scope("lp")

func recordGlobalStats(s SolveStats) {
	mSolves.Inc()
	mIterations.Add(uint64(s.Iterations))
	mPhase1.Add(uint64(s.Phase1Iterations))
	mDualIterations.Add(uint64(s.DualIterations))
	mRefactorizations.Add(uint64(s.Refactorizations))
	if s.WarmAttempted {
		mWarmAttempts.Inc()
	}
	if s.WarmUsed {
		mWarmHits.Inc()
	}
	if s.DualAttempted {
		mDualAttempts.Inc()
	}
	if s.DualUsed {
		mDualHits.Inc()
	}
	if s.PresolveRows > 0 || s.PresolveCols > 0 {
		mPresolveRows.Add(uint64(s.PresolveRows))
		mPresolveCols.Add(uint64(s.PresolveCols))
	}
}

// GlobalStats returns a snapshot of the process-wide solver counters.
func GlobalStats() StatsSnapshot {
	return StatsSnapshot{
		Solves:           mSolves.Value(),
		Iterations:       mIterations.Value(),
		Phase1Iterations: mPhase1.Value(),
		DualIterations:   mDualIterations.Value(),
		Refactorizations: mRefactorizations.Value(),
		WarmAttempts:     mWarmAttempts.Value(),
		WarmHits:         mWarmHits.Value(),
		DualAttempts:     mDualAttempts.Value(),
		DualHits:         mDualHits.Value(),
		PresolveSolves:   mPresolveSolves.Value(),
		PresolveRows:     mPresolveRows.Value(),
		PresolveCols:     mPresolveCols.Value(),
		DenseFallbacks:   mDenseFallbacks.Value(),
	}
}

// ResetGlobalStats zeroes the process-wide solver counters (per-run
// accounting for -lp-stats). A Prometheus scraper sees this as a counter
// restart, which its rate functions already handle.
func ResetGlobalStats() {
	for _, c := range []*obs.Counter{
		mSolves, mIterations, mPhase1, mDualIterations, mRefactorizations,
		mWarmAttempts, mWarmHits, mDualAttempts, mDualHits,
		mPresolveSolves, mPresolveRows, mPresolveCols, mDenseFallbacks,
	} {
		c.Reset()
	}
}
