package lp

import "math"

// luFactors is a sparse LU factorization of a basis matrix B with partial
// pivoting: P·B = L·U, computed column by column with the Gilbert–Peierls
// left-looking algorithm (each column is a sparse triangular solve against
// the L built so far, with the nonzero pattern discovered by depth-first
// reachability).
//
// Storage conventions:
//   - L is unit lower triangular. Column k holds the below-diagonal
//     multipliers, indexed by ORIGINAL row number (their pivot indices are
//     assigned later than k).
//   - U is upper triangular, stored column-wise in PIVOT-index space with
//     the diagonal split into uDiag.
//   - prow[k] is the original row chosen as the k-th pivot; pinv is its
//     inverse (original row → pivot index).
//
// Columns are factorized in a fill-reducing order (ascending nonzero
// count, so the logical ±e_i singletons eliminate first with zero fill);
// cperm maps factorization column k back to the basis position it came
// from.
type luFactors struct {
	m       int
	lColPtr []int32
	lRowIdx []int32 // original row numbers
	lVal    []float64
	uColPtr []int32
	uRowIdx []int32 // pivot indices < k
	uVal    []float64
	uDiag   []float64
	prow    []int32
	pinv    []int32
	cperm   []int32   // factorization column → basis position
	cwork   []float64 // btran scratch (engine is single-threaded per solve)
	lPivIdx []int32   // pinv[lRowIdx[p]] precomputed: btranLU's Lᵀ gather index
}

// luScratch holds the work arrays shared by factorization and solves, so a
// simplex run allocates them once.
type luScratch struct {
	work  []float64 // dense accumulator, original-row space
	pivs  []float64 // dense accumulator, pivot-index space
	mark  []int32   // DFS visit marks (stamped)
	stamp int32
	stack []int32 // DFS stack: original row numbers
	estck []int32 // DFS edge-position stack
	topo  []int32 // raw column-pattern scratch
	order []int32 // reach set scratch (postorder)

	// Gathered-basis scratch for the fill-reducing column ordering.
	gColPtr []int32
	gRowIdx []int32
	gVal    []float64
	corder  []int32
}

// bumpStamp advances the visit stamp, resetting the mark array on the
// (astronomically rare) int32 wraparound.
func (sc *luScratch) bumpStamp() {
	if sc.stamp == math.MaxInt32 {
		for i := range sc.mark {
			sc.mark[i] = 0
		}
		sc.stamp = 0
	}
	sc.stamp++
}

func newLUScratch(m int) *luScratch {
	return &luScratch{
		work: make([]float64, m),
		pivs: make([]float64, m),
		mark: make([]int32, m),
	}
}

// basisColumn is a callback producing the sparse entries of the j-th basis
// column: it must invoke emit(originalRow, value) for every nonzero.
type basisColumn func(j int, emit func(row int32, v float64))

// luFactorize computes P·(B·Q) = L·U for the m×m basis whose columns are
// produced by col, with Q a fill-reducing column order (ascending nonzero
// count; ties by basis position, so the order — and with it every numeric
// result downstream — is deterministic). It returns false if the basis is
// numerically singular.
func luFactorize(m int, col basisColumn, sc *luScratch) (*luFactors, bool) {
	f := &luFactors{
		m:       m,
		lColPtr: make([]int32, 1, m+1),
		uColPtr: make([]int32, 1, m+1),
		uDiag:   make([]float64, m),
		prow:    make([]int32, m),
		pinv:    make([]int32, m),
		cperm:   make([]int32, m),
		cwork:   make([]float64, m),
	}
	for i := range f.pinv {
		f.pinv[i] = -1
	}
	// Gather the basis columns once and bucket-sort positions by nonzero
	// count (counts are ≤ m, so counting sort keeps this O(m + nnz)).
	colPtr := sc.gColPtr[:0]
	rowIdx := sc.gRowIdx[:0]
	val := sc.gVal[:0]
	colPtr = append(colPtr, 0)
	for k := 0; k < m; k++ {
		col(k, func(row int32, v float64) {
			rowIdx = append(rowIdx, row)
			val = append(val, v)
		})
		colPtr = append(colPtr, int32(len(rowIdx)))
	}
	sc.gColPtr, sc.gRowIdx, sc.gVal = colPtr, rowIdx, val
	order := sc.corder[:0]
	maxNNZ := 0
	for k := 0; k < m; k++ {
		if nz := int(colPtr[k+1] - colPtr[k]); nz > maxNNZ {
			maxNNZ = nz
		}
	}
	counts := make([]int32, maxNNZ+2)
	for k := 0; k < m; k++ {
		counts[colPtr[k+1]-colPtr[k]+1]++
	}
	for i := 1; i < len(counts); i++ {
		counts[i] += counts[i-1]
	}
	order = append(order, make([]int32, m)...)
	for k := 0; k < m; k++ {
		nz := colPtr[k+1] - colPtr[k]
		order[counts[nz]] = int32(k)
		counts[nz]++
	}
	sc.corder = order[:0]

	for fk := 0; fk < m; fk++ {
		bp := order[fk] // basis position of this factorization column
		f.cperm[fk] = bp
		// Scatter the column into the work array and collect its pattern.
		sc.bumpStamp()
		pattern := sc.topo[:0]
		for p := colPtr[bp]; p < colPtr[bp+1]; p++ {
			row, v := rowIdx[p], val[p]
			if sc.mark[row] != sc.stamp {
				sc.mark[row] = sc.stamp
				pattern = append(pattern, row)
				sc.work[row] = v
			} else {
				sc.work[row] += v
			}
		}
		sc.topo = pattern[:0]
		// DFS from the raw pattern through L's columns to find the full
		// nonzero pattern of L⁻¹(Pb) in reverse topological order.
		sc.bumpStamp()
		reach := luReach(f, pattern, sc)
		// Numeric left-looking solve in topological order.
		for i := len(reach) - 1; i >= 0; i-- {
			r := reach[i]
			pj := f.pinv[r]
			if pj < 0 {
				continue // not yet pivotal: no L column to apply
			}
			t := sc.work[r]
			if t == 0 {
				continue
			}
			for p := f.lColPtr[pj]; p < f.lColPtr[pj+1]; p++ {
				sc.work[f.lRowIdx[p]] -= f.lVal[p] * t
			}
		}
		// Partial pivoting: the largest magnitude among non-pivotal rows.
		var pivRow int32 = -1
		pivAbs := 0.0
		for _, r := range reach {
			if f.pinv[r] >= 0 {
				continue
			}
			if a := math.Abs(sc.work[r]); a > pivAbs {
				pivAbs = a
				pivRow = r
			}
		}
		if pivRow < 0 || pivAbs < luPivTol {
			// Singular (or numerically so); clear the work entries touched.
			for _, r := range reach {
				sc.work[r] = 0
			}
			return nil, false
		}
		pv := sc.work[pivRow]
		f.prow[fk] = pivRow
		f.pinv[pivRow] = int32(fk)
		f.uDiag[fk] = pv
		// Split the solved column into U (pivotal rows) and L (the rest).
		for _, r := range reach {
			v := sc.work[r]
			sc.work[r] = 0
			if r == pivRow || v == 0 {
				continue
			}
			if pj := f.pinv[r]; pj >= 0 && pj < int32(fk) {
				f.uRowIdx = append(f.uRowIdx, pj)
				f.uVal = append(f.uVal, v)
			} else if pj < 0 {
				f.lRowIdx = append(f.lRowIdx, r)
				f.lVal = append(f.lVal, v/pv)
			}
		}
		f.lColPtr = append(f.lColPtr, int32(len(f.lRowIdx)))
		f.uColPtr = append(f.uColPtr, int32(len(f.uVal)))
	}
	// Resolve L's row indices to pivot space once: every btranLU otherwise
	// pays the pinv indirection per entry per solve.
	f.lPivIdx = make([]int32, len(f.lRowIdx))
	for p, r := range f.lRowIdx {
		f.lPivIdx[p] = f.pinv[r]
	}
	return f, true
}

// luReach returns the reach of the given pattern rows through L's columns
// (following each pivotal row's L column), as original row numbers in
// reverse topological order (dependencies last). Uses sc.stack/estck for an
// iterative DFS and sc.mark stamped with the CURRENT sc.stamp.
func luReach(f *luFactors, pattern []int32, sc *luScratch) []int32 {
	order := sc.order[:0]
	for _, root := range pattern {
		if sc.mark[root] == sc.stamp {
			continue
		}
		// Iterative DFS.
		sc.stack = append(sc.stack[:0], root)
		sc.estck = append(sc.estck[:0], 0)
		sc.mark[root] = sc.stamp
		for len(sc.stack) > 0 {
			r := sc.stack[len(sc.stack)-1]
			pj := f.pinv[r]
			done := true
			if pj >= 0 {
				p := sc.estck[len(sc.estck)-1]
				for f.lColPtr[pj]+p < f.lColPtr[pj+1] {
					child := f.lRowIdx[f.lColPtr[pj]+p]
					p++
					if sc.mark[child] != sc.stamp {
						sc.mark[child] = sc.stamp
						sc.estck[len(sc.estck)-1] = p
						sc.stack = append(sc.stack, child)
						sc.estck = append(sc.estck, 0)
						done = false
						break
					}
				}
			}
			if done {
				order = append(order, r)
				sc.stack = sc.stack[:len(sc.stack)-1]
				sc.estck = sc.estck[:len(sc.estck)-1]
			}
		}
	}
	// order is in DFS postorder: downstream rows first. The numeric pass
	// iterates it in reverse, which applies each pivotal row's column before
	// any row whose value it updates.
	sc.order = order[:0]
	return order
}

// ftranLU solves B·x = b: b enters in original-row space (dense, length m,
// zeroed on return) and x lands in out indexed by BASIS position (the
// column permutation is undone via cperm).
func (f *luFactors) ftranLU(b, out []float64) {
	// Forward: L z = P b, processed in pivot order.
	for k := 0; k < f.m; k++ {
		t := b[f.prow[k]]
		if t == 0 {
			continue
		}
		lo, hi := f.lColPtr[k], f.lColPtr[k+1]
		idx := f.lRowIdx[lo:hi]
		val := f.lVal[lo:hi:hi]
		for i, r := range idx {
			b[r] -= val[i] * t
		}
	}
	// Gather z into pivot space.
	w := f.cwork
	for k := 0; k < f.m; k++ {
		w[k] = b[f.prow[k]]
		b[f.prow[k]] = 0
	}
	// Back substitution: U x' = z (column-oriented), x' in factorization
	// column space.
	for k := f.m - 1; k >= 0; k-- {
		x := w[k] / f.uDiag[k]
		w[k] = x
		if x == 0 {
			continue
		}
		lo, hi := f.uColPtr[k], f.uColPtr[k+1]
		idx := f.uRowIdx[lo:hi]
		val := f.uVal[lo:hi:hi]
		for i, j := range idx {
			w[j] -= val[i] * x
		}
	}
	for k := 0; k < f.m; k++ {
		out[f.cperm[k]] = w[k]
	}
}

// btranLU solves Bᵀ·y = c: c enters indexed by BASIS position (dense,
// length m, clobbered) and the result is written into out in original-row
// space.
func (f *luFactors) btranLU(c, out []float64) {
	// Permute into factorization column space: c'[k] = c[cperm[k]].
	w := f.cwork
	for k := 0; k < f.m; k++ {
		w[k] = c[f.cperm[k]]
	}
	// Forward: Uᵀ w = c', in increasing pivot order (U's columns are rows
	// of Uᵀ).
	for k := 0; k < f.m; k++ {
		s := w[k]
		lo, hi := f.uColPtr[k], f.uColPtr[k+1]
		idx := f.uRowIdx[lo:hi]
		val := f.uVal[lo:hi:hi]
		for i, j := range idx {
			s -= val[i] * w[j]
		}
		w[k] = s / f.uDiag[k]
	}
	// Backward: Lᵀ v = w, in decreasing pivot order; L column entries sit at
	// original rows whose pivot indices are all larger than k (gathered via
	// the precomputed lPivIdx).
	for k := f.m - 1; k >= 0; k-- {
		s := w[k]
		lo, hi := f.lColPtr[k], f.lColPtr[k+1]
		idx := f.lPivIdx[lo:hi]
		val := f.lVal[lo:hi:hi]
		for i, q := range idx {
			s -= val[i] * w[q]
		}
		w[k] = s
	}
	// Un-permute rows: y[prow[k]] = v[k].
	for k := 0; k < f.m; k++ {
		out[f.prow[k]] = w[k]
	}
}
