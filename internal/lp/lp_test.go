package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func solveOrFail(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return sol
}

func TestTextbookMaximize(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 → x=2, y=6, obj=36.
	p := NewProblem(Maximize)
	x := p.AddVariable()
	y := p.AddVariable()
	p.SetObjective(x, 3)
	p.SetObjective(y, 5)
	p.AddConstraint([]Term{{x, 1}}, LE, 4)
	p.AddConstraint([]Term{{y, 2}}, LE, 12)
	p.AddConstraint([]Term{{x, 3}, {y, 2}}, LE, 18)
	sol := solveOrFail(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-36) > 1e-6 {
		t.Fatalf("objective = %g, want 36", sol.Objective)
	}
	if math.Abs(sol.X[x]-2) > 1e-6 || math.Abs(sol.X[y]-6) > 1e-6 {
		t.Fatalf("x=%g y=%g, want 2, 6", sol.X[x], sol.X[y])
	}
}

func TestMinimizeWithGEAndEQ(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 10, x - y = 2 → x=6, y=4, obj=24.
	p := NewProblem(Minimize)
	x := p.AddVariable()
	y := p.AddVariable()
	p.SetObjective(x, 2)
	p.SetObjective(y, 3)
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, GE, 10)
	p.AddConstraint([]Term{{x, 1}, {y, -1}}, EQ, 2)
	sol := solveOrFail(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-24) > 1e-6 {
		t.Fatalf("objective = %g, want 24", sol.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.AddVariable()
	p.SetObjective(x, 1)
	p.AddConstraint([]Term{{x, 1}}, LE, 1)
	p.AddConstraint([]Term{{x, 1}}, GE, 2)
	sol := solveOrFail(t, p)
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVariable()
	p.SetObjective(x, 1)
	p.AddConstraint([]Term{{x, -1}}, LE, 0) // -x <= 0, i.e. x >= 0: no upper bound
	sol := solveOrFail(t, p)
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// min x s.t. -x <= -5 (i.e. x >= 5).
	p := NewProblem(Minimize)
	x := p.AddVariable()
	p.SetObjective(x, 1)
	p.AddConstraint([]Term{{x, -1}}, LE, -5)
	sol := solveOrFail(t, p)
	if sol.Status != Optimal || math.Abs(sol.X[x]-5) > 1e-6 {
		t.Fatalf("got %v x=%v, want optimal x=5", sol.Status, sol.X)
	}
}

func TestEqualityNegativeRHS(t *testing.T) {
	// min x+y s.t. -x - y = -7.
	p := NewProblem(Minimize)
	x := p.AddVariable()
	y := p.AddVariable()
	p.SetObjective(x, 1)
	p.SetObjective(y, 1)
	p.AddConstraint([]Term{{x, -1}, {y, -1}}, EQ, -7)
	sol := solveOrFail(t, p)
	if sol.Status != Optimal || math.Abs(sol.Objective-7) > 1e-6 {
		t.Fatalf("got %v obj=%g, want optimal 7", sol.Status, sol.Objective)
	}
}

func TestDegenerate(t *testing.T) {
	// A classically degenerate instance (Beale-like); must not cycle.
	p := NewProblem(Minimize)
	v := make([]int, 4)
	for i := range v {
		v[i] = p.AddVariable()
	}
	obj := []float64{-0.75, 150, -0.02, 6}
	for i, c := range obj {
		p.SetObjective(v[i], c)
	}
	p.AddConstraint([]Term{{v[0], 0.25}, {v[1], -60}, {v[2], -0.04}, {v[3], 9}}, LE, 0)
	p.AddConstraint([]Term{{v[0], 0.5}, {v[1], -90}, {v[2], -0.02}, {v[3], 3}}, LE, 0)
	p.AddConstraint([]Term{{v[2], 1}}, LE, 1)
	sol := solveOrFail(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-(-0.05)) > 1e-6 {
		t.Fatalf("objective = %g, want -0.05", sol.Objective)
	}
}

func TestRedundantRows(t *testing.T) {
	// Duplicate equality rows force a residual artificial on a redundant row.
	p := NewProblem(Minimize)
	x := p.AddVariable()
	y := p.AddVariable()
	p.SetObjective(x, 1)
	p.SetObjective(y, 2)
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, EQ, 4)
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, EQ, 4)
	p.AddConstraint([]Term{{x, 2}, {y, 2}}, EQ, 8)
	sol := solveOrFail(t, p)
	if sol.Status != Optimal || math.Abs(sol.Objective-4) > 1e-6 {
		t.Fatalf("got %v obj=%g, want optimal 4 (x=4,y=0)", sol.Status, sol.Objective)
	}
}

func TestEmptyProblem(t *testing.T) {
	p := NewProblem(Minimize)
	sol := solveOrFail(t, p)
	if sol.Status != Optimal || sol.Objective != 0 {
		t.Fatalf("empty problem should be trivially optimal, got %v", sol)
	}
}

func TestZeroObjectiveFeasibility(t *testing.T) {
	// Pure feasibility problem.
	p := NewProblem(Minimize)
	x := p.AddVariable()
	y := p.AddVariable()
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, EQ, 3)
	p.AddConstraint([]Term{{x, 1}, {y, -1}}, EQ, 1)
	sol := solveOrFail(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.X[x]-2) > 1e-6 || math.Abs(sol.X[y]-1) > 1e-6 {
		t.Fatalf("x=%g y=%g, want 2, 1", sol.X[x], sol.X[y])
	}
}

func TestRepeatedTermsAccumulate(t *testing.T) {
	// x + x <= 4  ⟹  x <= 2.
	p := NewProblem(Maximize)
	x := p.AddVariable()
	p.SetObjective(x, 1)
	p.AddConstraint([]Term{{x, 1}, {x, 1}}, LE, 4)
	sol := solveOrFail(t, p)
	if math.Abs(sol.X[x]-2) > 1e-6 {
		t.Fatalf("x = %g, want 2", sol.X[x])
	}
}

// randomLP generates a bounded, feasible random LP:
// max cᵀx  s.t.  Ax ≤ b with A ≥ 0 (row sums positive), b > 0, c ≥ 0.
// Feasible at x = 0 and bounded because every variable appears in some row
// with positive coefficient.
func randomLP(rng *rand.Rand, n, m int) (*Problem, [][]float64, []float64, []float64) {
	p := NewProblem(Maximize)
	c := make([]float64, n)
	for j := 0; j < n; j++ {
		p.AddVariable()
		c[j] = rng.Float64() * 5
		p.SetObjective(j, c[j])
	}
	A := make([][]float64, m)
	b := make([]float64, m)
	for i := 0; i < m; i++ {
		A[i] = make([]float64, n)
		terms := make([]Term, 0, n)
		for j := 0; j < n; j++ {
			v := rng.Float64() * 3
			A[i][j] = v
			terms = append(terms, Term{j, v})
		}
		// Guarantee coverage of variable i%n so the LP is bounded.
		if A[i][i%n] < 0.5 {
			A[i][i%n] += 1
			terms = append(terms, Term{i % n, 1})
		}
		b[i] = 1 + rng.Float64()*9
		p.AddConstraint(terms, LE, b[i])
	}
	// Ensure every variable is covered by at least one row.
	for j := 0; j < n; j++ {
		covered := false
		for i := 0; i < m; i++ {
			if A[i][j] > 0.4 {
				covered = true
				break
			}
		}
		if !covered {
			p.AddConstraint([]Term{{j, 1}}, LE, 10)
			rowA := make([]float64, n)
			rowA[j] = 1
			A = append(A, rowA)
			b = append(b, 10)
		}
	}
	return p, A, b, c
}

// Property: solutions of random LPs are feasible, and no random feasible
// point beats the reported optimum.
func TestPropertyRandomLPFeasibleAndOptimalish(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		m := 2 + rng.Intn(6)
		p, A, b, c := randomLP(rng, n, m)
		sol, err := p.Solve()
		if err != nil || sol.Status != Optimal {
			return false
		}
		// Feasibility.
		for i := range A {
			lhs := 0.0
			for j := range A[i] {
				lhs += A[i][j] * sol.X[j]
			}
			if lhs > b[i]+1e-6 {
				return false
			}
		}
		for j := range sol.X {
			if sol.X[j] < -1e-9 {
				return false
			}
		}
		// Random feasible points never beat the optimum.
		for trial := 0; trial < 200; trial++ {
			x := make([]float64, n)
			for j := range x {
				x[j] = rng.Float64() * 4
			}
			// Scale into the feasible region.
			scale := 1.0
			for i := range A {
				lhs := 0.0
				for j := range A[i] {
					lhs += A[i][j] * x[j]
				}
				if lhs > b[i] {
					s := b[i] / lhs
					if s < scale {
						scale = s
					}
				}
			}
			obj := 0.0
			for j := range x {
				obj += c[j] * x[j] * scale
			}
			if obj > sol.Objective+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: strong duality. For max cᵀx s.t. Ax ≤ b, x ≥ 0, the dual is
// min bᵀy s.t. Aᵀy ≥ c, y ≥ 0; both optima must agree.
func TestPropertyStrongDuality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		m := 2 + rng.Intn(5)
		primal, A, b, c := randomLP(rng, n, m)
		psol, err := primal.Solve()
		if err != nil || psol.Status != Optimal {
			return false
		}
		dual := NewProblem(Minimize)
		for i := range A {
			dual.AddVariable()
			dual.SetObjective(i, b[i])
		}
		for j := 0; j < n; j++ {
			terms := make([]Term, 0, len(A))
			for i := range A {
				terms = append(terms, Term{i, A[i][j]})
			}
			dual.AddConstraint(terms, GE, c[j])
		}
		dsol, err := dual.Solve()
		if err != nil || dsol.Status != Optimal {
			return false
		}
		gap := math.Abs(psol.Objective - dsol.Objective)
		return gap <= 1e-5*(1+math.Abs(psol.Objective))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSimplexMedium(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	p, _, _, _ := randomLP(rng, 60, 80)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}
