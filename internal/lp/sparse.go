// Sparse revised-simplex engine: CSC constraint matrix, LU basis
// factorization with product-form (eta) updates and periodic
// refactorization, bounded variables, Dantzig pricing with a Bland's-rule
// anti-cycling fallback, and warm starts from an exported Basis.
//
// The engine solves problems in computational standard form
//
//	min cᵀx    s.t.  A·x − s = 0,   lo ≤ (x, s) ≤ up
//
// where s are the row activities ("logical" variables, one per row, column
// −e_i). Constraint relations become logical bounds — a ≤ row is
// s ∈ (−∞, b], an equality is s ∈ [b, b] — so no slack or artificial
// columns are ever materialized: phase 1 drives bound violations of the
// basic variables to zero directly (the classic composite-objective
// phase 1), and simple variable bounds never become rows at all.
package lp

import (
	"errors"
	"math"
)

// Column statuses of a Basis. Values are stable across releases: bases may
// be persisted by callers.
const (
	BasisLower int8 = iota // nonbasic at lower bound
	BasisBasic             // basic
	BasisUpper             // nonbasic at upper bound
	BasisFree              // nonbasic free variable, held at 0
)

// Basis is a warm-start snapshot of a sparse solve: one status per column,
// structural variables first, then one logical per row. Pass it back via
// SolveOptions.Basis on a model with the same shape (same variable and row
// counts) to resume from the previous vertex; the engine validates it and
// silently falls back to a cold start if it no longer applies.
type Basis struct {
	NumVars int    // structural variables the basis was built for
	NumRows int    // rows the basis was built for
	Status  []int8 // len NumVars+NumRows

	// DualStall is the auto router's memory of the dual phase giving up
	// on this warm chain: set when a MethodAuto dual attempt hits the
	// degenerate-plateau bail-out, and cleared by an attempt that runs
	// to completion. While set, the router stops attempting the dual
	// phase for this chain — on models where warm restarts plateau
	// (many zero-reduced-cost nonbasics at scale), every attempt pays
	// the full bail budget before the primal phases finish the solve
	// anyway, and chains where the dual phase wins never bail at all.
	// Explicit MethodDual ignores it. Zero value = keep trying.
	DualStall uint8
}

// Clone returns a deep copy.
func (b *Basis) Clone() *Basis {
	if b == nil {
		return nil
	}
	return &Basis{NumVars: b.NumVars, NumRows: b.NumRows, Status: append([]int8(nil), b.Status...), DualStall: b.DualStall}
}

// csc is a compressed-sparse-column matrix.
type csc struct {
	m, n   int
	colPtr []int32
	rowIdx []int32
	val    []float64
}

// spxProb is the built form a Model hands to the engine. Costs are already
// normalized to minimization.
type spxProb struct {
	a    csc       // m×n structural columns
	lo   []float64 // len n+m: structural bounds then row (logical) bounds
	up   []float64
	cost []float64 // len n (logicals cost 0)
}

type spxResult struct {
	status Status
	x      []float64 // len n+m: values of every column
	y      []float64 // len m: simplex multipliers of the final basis
	basis  *Basis
}

var errSingularBasis = errors.New("lp: basis matrix is numerically singular")

const (
	luPivTol      = 1e-11 // LU singularity threshold
	spxPivTol     = 1e-9  // minimum magnitude of an acceptable pivot
	spxDualTol    = 1e-9  // reduced-cost optimality tolerance
	spxFeasTol    = 1e-7  // primal bound-violation tolerance
	spxBlandAt    = 200   // non-improving iterations before Bland's rule
	refactorEvery = 64    // eta updates between refactorizations
	spxInf        = math.MaxFloat64 / 4
)

// spx is the engine state for one solve.
type spx struct {
	p          *spxProb
	m, n, ncol int

	status     []int8 // per column
	basic      []int32
	inBasisPos []int32   // column → basis position, or -1
	xB         []float64 // basic values by position

	lu    *luFactors
	luSc  *luScratch
	etas  []eta
	stats SolveStats
	// etaIdx/etaVal back every live eta's idx/val segments (three-index
	// sliced so a segment can never be overwritten by later appends).
	// Recycled wholesale at each refactorization, so steady-state pivots
	// stop allocating per-eta slices.
	etaIdx []int32
	etaVal []float64

	// scratch
	work  []float64 // dense m
	alpha []float64 // pivot column B⁻¹A_q, by basis position
	y     []float64 // duals, original-row space
	cB    []float64 // basic costs by position
	d     []float64 // reduced costs per column (pricing scratch)
}

type eta struct {
	r   int32 // basis position replaced
	idx []int32 // off-diagonal rows of the pivot column (excludes r)
	val []float64
	pv  float64 // alpha[r], the diagonal
}

// colLo/colUp and colVal read the bounds and current nonbasic value of a
// column.
func (s *spx) colVal(j int32) float64 {
	switch s.status[j] {
	case BasisLower:
		return s.p.lo[j]
	case BasisUpper:
		return s.p.up[j]
	case BasisBasic:
		return s.xB[s.inBasisPos[j]]
	}
	return 0 // free nonbasic
}

// scatterColumn adds coefficient*Aj into the dense original-row vector out.
func (s *spx) scatterColumn(j int32, coeff float64, out []float64) {
	if int(j) < s.n {
		a := &s.p.a
		for p := a.colPtr[j]; p < a.colPtr[j+1]; p++ {
			out[a.rowIdx[p]] += coeff * a.val[p]
		}
	} else {
		out[int(j)-s.n] -= coeff // logical column is −e_i
	}
}

// dotColumn returns yᵀA_j for the dense original-row vector y.
func (s *spx) dotColumn(j int32, y []float64) float64 {
	if int(j) < s.n {
		a := &s.p.a
		sum := 0.0
		for p := a.colPtr[j]; p < a.colPtr[j+1]; p++ {
			sum += y[a.rowIdx[p]] * a.val[p]
		}
		return sum
	}
	return -y[int(j)-s.n]
}

// spxOpts selects the algorithm and its pricing for one engine run.
type spxOpts struct {
	method  Method
	pricing DualPricing
}

// spxSolve runs the bounded-variable revised simplex: a dual phase when
// the method (or MethodAuto's warm-edit detection) calls for it, then the
// primal two-phase loop, which doubles as the dual phase's cleanup and
// verification pass (it terminates immediately on an already-optimal
// basis).
func spxSolve(p *spxProb, warm *Basis, opts spxOpts) (*spxResult, SolveStats, error) {
	m, n := p.a.m, p.a.n
	s := &spx{
		p: p, m: m, n: n, ncol: n + m,
		status:     make([]int8, n+m),
		basic:      make([]int32, m),
		inBasisPos: make([]int32, n+m),
		xB:         make([]float64, m),
		luSc:       newLUScratch(m),
		work:       make([]float64, m),
		alpha:      make([]float64, m),
		y:          make([]float64, m),
		cB:         make([]float64, m),
		d:          make([]float64, n+m),
	}
	var warmDualStall uint8
	if warm != nil {
		s.stats.WarmAttempted = true
		warmDualStall = warm.DualStall
	}
	if warm != nil && s.tryWarmStart(warm) {
		s.stats.WarmUsed = true
	} else {
		s.coldStart()
	}
	s.computeXB()

	useDual := false
	if m > 0 {
		switch opts.method {
		case MethodDual:
			// Explicit request: flip nonbasic bounded columns onto their
			// sign-correct bounds first; switch to the primal phases when
			// that cannot reach dual feasibility.
			useDual = s.flipToDualFeasible()
		case MethodAuto:
			// The bound/RHS-edit signature: an accepted warm basis whose
			// basic values violate the edited bounds but whose reduced
			// costs still price optimal — unless this chain's dual
			// attempts keep hitting the plateau bail (Basis.DualStall).
			useDual = s.stats.WarmUsed && warmDualStall == 0 &&
				s.infeasibility() > spxFeasTol && s.dualFeasible()
		}
	}
	if useDual {
		s.stats.DualAttempted = true
		if _, ok := s.dualIterate(opts.pricing); ok {
			s.stats.DualUsed = true
			// An Infeasible verdict (dual unbounded) is NOT returned
			// directly: the primal phase-1 pass below re-derives it from
			// first principles, so a tolerance artifact in the dual ratio
			// test can never misreport a feasible model.
		}
	}

	status, err := s.iterate()
	if err != nil {
		return nil, s.stats, err
	}

	res := &spxResult{status: status}
	if status == Optimal {
		x := make([]float64, s.ncol)
		for j := int32(0); int(j) < s.ncol; j++ {
			x[j] = s.colVal(j)
		}
		res.x = x
		// Final duals from the real costs and final basis.
		for k := 0; k < m; k++ {
			s.cB[k] = s.costOf(s.basic[k])
		}
		s.btran(s.cB, s.y)
		res.y = append([]float64(nil), s.y...)
		// Carry the dual-bail memory forward: an attempt that bailed
		// bumps the counter (saturating), a completed dual phase clears
		// it, and a solve that never attempted (cold, or already shut
		// off) passes the inherited value through.
		ds := warmDualStall
		if s.stats.DualAttempted {
			if s.stats.DualUsed {
				ds = 0
			} else {
				ds = 1
			}
		}
		res.basis = &Basis{NumVars: n, NumRows: m, Status: append([]int8(nil), s.status...), DualStall: ds}
	}
	return res, s.stats, nil
}

func (s *spx) costOf(j int32) float64 {
	if int(j) < s.n {
		return s.p.cost[j]
	}
	return 0
}

// coldStart installs the all-logical basis with structural variables at a
// finite bound (lower preferred) or free at zero.
func (s *spx) coldStart() {
	for j := 0; j < s.n; j++ {
		switch {
		case s.p.lo[j] > -spxInf:
			s.status[j] = BasisLower
		case s.p.up[j] < spxInf:
			s.status[j] = BasisUpper
		default:
			s.status[j] = BasisFree
		}
	}
	for i := 0; i < s.m; i++ {
		s.status[s.n+i] = BasisBasic
		s.basic[i] = int32(s.n + i)
	}
	s.rebuildPositions()
	s.factorize() // logical basis is −I: trivially nonsingular
}

// tryWarmStart validates and factorizes the supplied basis; it reports
// false (leaving the state untouched for coldStart) when the basis does not
// fit the problem or is singular.
func (s *spx) tryWarmStart(b *Basis) bool {
	if b == nil || b.NumVars != s.n || b.NumRows != s.m || len(b.Status) != s.ncol {
		return false
	}
	nb := 0
	for _, st := range b.Status {
		if st == BasisBasic {
			nb++
		}
	}
	if nb != s.m {
		return false
	}
	copy(s.status, b.Status)
	k := 0
	for j := int32(0); int(j) < s.ncol; j++ {
		switch s.status[j] {
		case BasisBasic:
			s.basic[k] = j
			k++
		case BasisLower:
			// Bounds may have moved since the basis was exported; repair
			// statuses that now point at an infinite bound.
			if s.p.lo[j] <= -spxInf {
				if s.p.up[j] < spxInf {
					s.status[j] = BasisUpper
				} else {
					s.status[j] = BasisFree
				}
			}
		case BasisUpper:
			if s.p.up[j] >= spxInf {
				if s.p.lo[j] > -spxInf {
					s.status[j] = BasisLower
				} else {
					s.status[j] = BasisFree
				}
			}
		case BasisFree:
			// A variable that was free when the basis was exported may have
			// gained finite bounds since (SetVarBounds between solves);
			// holding it at 0 could silently violate them, and phase 1 only
			// repairs BASIC variables. Pin it to a bound instead.
			if s.p.lo[j] > -spxInf {
				s.status[j] = BasisLower
			} else if s.p.up[j] < spxInf {
				s.status[j] = BasisUpper
			}
		}
	}
	s.rebuildPositions()
	if !s.factorize() {
		// Singular warm basis: reset statuses for coldStart.
		for j := range s.status {
			s.status[j] = 0
		}
		return false
	}
	return true
}

func (s *spx) rebuildPositions() {
	for j := range s.inBasisPos {
		s.inBasisPos[j] = -1
	}
	for k, j := range s.basic {
		s.inBasisPos[j] = int32(k)
	}
}

// factorize rebuilds the LU factors of the current basis and clears the eta
// file. It reports false on a singular basis.
func (s *spx) factorize() bool {
	f, ok := luFactorize(s.m, func(k int, emit func(int32, float64)) {
		j := s.basic[k]
		if int(j) < s.n {
			a := &s.p.a
			for p := a.colPtr[j]; p < a.colPtr[j+1]; p++ {
				emit(a.rowIdx[p], a.val[p])
			}
		} else {
			emit(int32(int(j)-s.n), -1)
		}
	}, s.luSc)
	if !ok {
		return false
	}
	s.lu = f
	s.etas = s.etas[:0]
	s.etaIdx = s.etaIdx[:0]
	s.etaVal = s.etaVal[:0]
	s.stats.Refactorizations++
	return true
}

// computeXB recomputes the basic values from scratch: x_B = B⁻¹(−N·x_N).
func (s *spx) computeXB() {
	for i := range s.work {
		s.work[i] = 0
	}
	for j := int32(0); int(j) < s.ncol; j++ {
		if s.status[j] == BasisBasic {
			continue
		}
		v := s.colVal(j)
		if v != 0 {
			s.scatterColumn(j, -v, s.work)
		}
	}
	s.ftran(s.work, s.xB)
}

// ftran solves B·x = b. b is dense original-row space and is clobbered;
// the result lands in out indexed by basis position.
func (s *spx) ftran(b, out []float64) {
	s.lu.ftranLU(b, out)
	for e := range s.etas {
		et := &s.etas[e]
		t := out[et.r] / et.pv
		if t != 0 {
			for i, r := range et.idx {
				out[r] -= et.val[i] * t
			}
		}
		out[et.r] = t
	}
}

// btran solves Bᵀ·y = c. c is indexed by basis position and is clobbered;
// the result lands in out in original-row space.
func (s *spx) btran(c, out []float64) {
	for e := len(s.etas) - 1; e >= 0; e-- {
		et := &s.etas[e]
		t := c[et.r]
		for i, r := range et.idx {
			t -= et.val[i] * c[r]
		}
		c[et.r] = t / et.pv
	}
	s.lu.btranLU(c, out)
}

// infeasibility returns the total bound violation of the basic variables.
func (s *spx) infeasibility() float64 {
	sum := 0.0
	for k, j := range s.basic {
		v := s.xB[k]
		if lo := s.p.lo[j]; v < lo {
			sum += lo - v
		} else if up := s.p.up[j]; v > up {
			sum += v - up
		}
	}
	return sum
}

// objective returns cᵀx for the current iterate.
func (s *spx) objective() float64 {
	v := 0.0
	for j := int32(0); int(j) < s.n; j++ {
		if c := s.p.cost[j]; c != 0 {
			v += c * s.colVal(j)
		}
	}
	return v
}

// iterate runs phase 1 (if needed) then phase 2 to completion.
func (s *spx) iterate() (Status, error) {
	maxIter := iterMul * (s.m + s.ncol)
	if maxIter < minIter {
		maxIter = minIter
	}
	phase1 := s.infeasibility() > spxFeasTol
	stall := 0
	lastMerit := math.Inf(1)
	for iter := 0; iter < maxIter; iter++ {
		if phase1 && s.infeasibility() <= spxFeasTol {
			phase1 = false
			stall = 0
			lastMerit = math.Inf(1)
		}
		// Basic cost row for the current phase.
		if phase1 {
			for k, j := range s.basic {
				v := s.xB[k]
				switch {
				case v < s.p.lo[j]-spxFeasTol:
					s.cB[k] = -1
				case v > s.p.up[j]+spxFeasTol:
					s.cB[k] = 1
				default:
					s.cB[k] = 0
				}
			}
		} else {
			for k, j := range s.basic {
				s.cB[k] = s.costOf(j)
			}
		}
		copy(s.work, s.cB) // btran clobbers its input
		s.btran(s.work, s.y)

		bland := stall > spxBlandAt
		enter, dir := s.price(phase1, bland)
		if enter < 0 {
			if phase1 {
				return Infeasible, nil
			}
			return Optimal, nil
		}

		// Pivot column α = B⁻¹A_enter.
		for i := range s.work {
			s.work[i] = 0
		}
		s.scatterColumn(enter, 1, s.work)
		s.ftran(s.work, s.alpha)

		leave, t, leaveAt := s.ratioTest(enter, dir, phase1, bland)
		if leave == -2 {
			if phase1 {
				// Unbounded phase-1 descent cannot happen on a well-posed
				// problem; treat as numerical failure.
				return 0, ErrIterationLimit
			}
			return Unbounded, nil
		}
		if phase1 {
			s.stats.Phase1Iterations++
		}
		s.stats.Iterations++

		merit := 0.0
		if leave == -1 {
			// Bound flip: the entering variable traverses to its opposite
			// bound; the basis is unchanged.
			for k := range s.xB {
				s.xB[k] -= dir * t * s.alpha[k]
			}
			if s.status[enter] == BasisLower {
				s.status[enter] = BasisUpper
			} else {
				s.status[enter] = BasisLower
			}
		} else {
			s.pivot(enter, dir, t, leave, leaveAt)
		}
		if phase1 {
			merit = s.infeasibility()
		} else {
			merit = s.objective()
		}
		if merit < lastMerit-1e-12 {
			stall = 0
			lastMerit = merit
		} else {
			stall++
		}
	}
	return 0, ErrIterationLimit
}

// price chooses the entering column and its direction (+1 increasing, −1
// decreasing): Dantzig's largest reduced-cost violation, or the
// lowest-index violation under Bland's rule. Returns enter = −1 at
// optimality.
func (s *spx) price(phase1, bland bool) (int32, float64) {
	best := int32(-1)
	bestDir := 1.0
	bestVal := spxDualTol
	for j := int32(0); int(j) < s.ncol; j++ {
		st := s.status[j]
		if st == BasisBasic {
			continue
		}
		if s.p.lo[j] == s.p.up[j] {
			continue // fixed variable can never profitably enter
		}
		c := 0.0
		if !phase1 {
			c = s.costOf(j)
		}
		d := c - s.dotColumn(j, s.y)
		var score, dir float64
		switch st {
		case BasisLower:
			score, dir = -d, 1
		case BasisUpper:
			score, dir = d, -1
		case BasisFree:
			if d < 0 {
				score, dir = -d, 1
			} else {
				score, dir = d, -1
			}
		}
		if score > bestVal {
			if bland {
				return j, dir
			}
			best, bestDir, bestVal = j, dir, score
		}
	}
	return best, bestDir
}

// ratioTest finds the blocking limit of an entering step. It returns:
//
//	leave ≥ 0:  basis position that leaves, t = step, leaveAt = the bound
//	            status the leaving variable is pinned to;
//	leave = −1: bound flip of the entering variable (t = bound distance);
//	leave = −2: no finite limit (unbounded in phase 2).
//
// In phase 1, basic variables that are currently infeasible block at their
// nearest violated bound (becoming feasible there), which keeps the
// infeasibility monotonically decreasing — the short-step composite rule.
func (s *spx) ratioTest(enter int32, dir float64, phase1, bland bool) (int32, float64, int8) {
	bestT := math.Inf(1)
	leave := int32(-2)
	var leaveAt int8
	bestPiv := 0.0
	// The entering variable's own travel distance between its bounds.
	if lo, up := s.p.lo[enter], s.p.up[enter]; lo > -spxInf && up < spxInf {
		bestT = up - lo
		leave = -1
	}
	for k := range s.alpha {
		ak := s.alpha[k]
		if ak > -spxPivTol && ak < spxPivTol {
			continue
		}
		delta := -dir * ak // rate of change of xB[k] per unit entering step
		j := s.basic[k]
		v := s.xB[k]
		lo, up := s.p.lo[j], s.p.up[j]
		var t float64 = math.Inf(1)
		var at int8
		switch {
		case phase1 && v < lo-spxFeasTol:
			if delta > 0 {
				t, at = (lo-v)/delta, BasisLower
			}
		case phase1 && v > up+spxFeasTol:
			if delta < 0 {
				t, at = (v-up)/(-delta), BasisUpper
			}
		case delta > 0:
			if up < spxInf {
				t, at = (up-v)/delta, BasisUpper
			}
		case delta < 0:
			if lo > -spxInf {
				t, at = (v-lo)/(-delta), BasisLower
			}
		}
		if math.IsInf(t, 1) {
			continue
		}
		if t < 0 {
			t = 0 // numerical: already (just past) its bound
		}
		switch {
		case t < bestT-1e-12:
			leave, bestT, leaveAt, bestPiv = int32(k), t, at, math.Abs(ak)
		case t <= bestT+1e-12 && leave >= 0:
			if bland {
				if s.basic[k] < s.basic[leave] {
					leave, bestT, leaveAt, bestPiv = int32(k), t, at, math.Abs(ak)
				}
			} else if math.Abs(ak) > bestPiv {
				leave, bestT, leaveAt, bestPiv = int32(k), t, at, math.Abs(ak)
			}
		}
	}
	return leave, bestT, leaveAt
}

// pivot applies a basis change: entering column moves t along dir, basic
// position r leaves pinned at leaveAt.
func (s *spx) pivot(enter int32, dir, t float64, r int32, leaveAt int8) {
	enterVal := s.colVal(enter) + dir*t
	for k := range s.xB {
		s.xB[k] -= dir * t * s.alpha[k]
	}
	old := s.basic[r]
	s.status[old] = leaveAt
	// Snap the leaving variable exactly onto its bound (it is within
	// tolerance of it by construction).
	s.inBasisPos[old] = -1
	s.status[enter] = BasisBasic
	s.basic[r] = enter
	s.inBasisPos[enter] = r
	s.xB[r] = enterVal

	// Record the eta for this basis change. The diagonal entry lives in pv
	// only; idx/val hold the off-diagonal rows, carved out of the shared
	// arenas so steady-state pivots allocate nothing.
	start := len(s.etaIdx)
	for k, v := range s.alpha {
		if v != 0 && int32(k) != r {
			s.etaIdx = append(s.etaIdx, int32(k))
			s.etaVal = append(s.etaVal, v)
		}
	}
	end := len(s.etaIdx)
	s.etas = append(s.etas, eta{
		r:   r,
		pv:  s.alpha[r],
		idx: s.etaIdx[start:end:end],
		val: s.etaVal[start:end:end],
	})
	if len(s.etas) >= refactorEvery {
		if !s.factorize() {
			// Should not happen for a basis reached by valid pivots; fall
			// back to continuing on the eta file (factorize cleared it only
			// on success).
			return
		}
		s.computeXB()
	}
}
