// Dual simplex phase of the sparse revised-simplex engine.
//
// The primal simplex walks primal-feasible vertices toward dual
// feasibility; the dual simplex walks dual-feasible bases toward primal
// feasibility. That orientation is exactly right for the online
// controller's workload (DESIGN.md §9): after a SetVarBounds/SetRowBounds
// edit — a demand drift moving conservation-row RHS values, a capacity
// bound moving a logical's range — the carried optimal basis keeps its
// reduced-cost signs (dual feasibility depends only on costs and the basis,
// not on bounds) while the basic values may now violate the edited bounds.
// A primal warm restart must re-run phase 1 to repair them; the dual
// simplex instead pivots the violated basics out directly, each iteration
// strictly reducing primal infeasibility, and typically needs a handful of
// pivots where primal phase 1 needs a fresh pass over the whole basis.
//
// Two leaving-row pricing rules are provided: dual Devex (reference-weight
// steepest-edge approximation, the default) and Dantzig (largest bound
// violation). Both fall back to Bland's rule — lowest basic variable index
// among the violated, lowest entering index among ratio ties — after a
// stall, which guarantees termination on dual-degenerate instances. A
// basis that is not dual feasible (more precisely: cannot be made dual
// feasible by flipping nonbasic bounded variables onto their sign-correct
// bounds) causes a phase switch: the engine falls back to the primal
// two-phase path, so MethodDual is always safe to request.
package lp

import "math"

// Method selects the simplex algorithm for a Model solve.
type Method int8

// Solve methods.
const (
	// MethodAuto picks the algorithm from the warm-start state: an accepted
	// warm basis that is primal infeasible but dual feasible (the
	// bound/RHS-edit signature) is repaired by the dual simplex; everything
	// else runs the primal two-phase path.
	MethodAuto Method = iota
	// MethodPrimal forces the primal two-phase simplex.
	MethodPrimal
	// MethodDual requests the dual simplex. If the starting basis cannot be
	// made dual feasible the engine switches to the primal phases (the
	// solve never fails on account of the method choice).
	MethodDual
)

// DualPricing selects the dual simplex leaving-row rule.
type DualPricing int8

// Dual pricing rules.
const (
	// DualDevex scores rows by violation²/weight with Devex reference
	// weights — an inexpensive steepest-edge approximation.
	DualDevex DualPricing = iota
	// DualDantzig scores rows by raw bound violation.
	DualDantzig
)

const (
	devexReset = 1e12 // reset reference weights when any grows past this
	dualPivTol = spxPivTol
)

// dualFeasible reports whether the current basis is dual feasible within
// tolerance: reduced costs d_j = c_j − yᵀA_j must be ≥ −tol for nonbasic
// columns at lower bound, ≤ tol at upper bound, and ≈ 0 for free nonbasic
// columns. Fixed columns are unconstrained. The duals y are recomputed
// from the real costs of the current basis.
func (s *spx) dualFeasible() bool {
	for k, j := range s.basic {
		s.cB[k] = s.costOf(j)
	}
	copy(s.work, s.cB)
	s.btran(s.work, s.y)
	for j := int32(0); int(j) < s.ncol; j++ {
		st := s.status[j]
		if st == BasisBasic || s.p.lo[j] == s.p.up[j] {
			continue
		}
		d := s.costOf(j) - s.dotColumn(j, s.y)
		switch st {
		case BasisLower:
			if d < -spxDualTol {
				return false
			}
		case BasisUpper:
			if d > spxDualTol {
				return false
			}
		case BasisFree:
			if d < -spxDualTol || d > spxDualTol {
				return false
			}
		}
	}
	return true
}

// flipToDualFeasible flips nonbasic bounded columns whose reduced-cost sign
// is wrong for their current bound onto the opposite bound, which makes any
// basis of a box-bounded problem dual feasible without changing it. It
// reports whether full dual feasibility was reached (columns with only one
// finite bound, or free, cannot be repaired this way). Basic values are
// recomputed when any column moved.
func (s *spx) flipToDualFeasible() bool {
	for k, j := range s.basic {
		s.cB[k] = s.costOf(j)
	}
	copy(s.work, s.cB)
	s.btran(s.work, s.y)
	flipped := false
	ok := true
	for j := int32(0); int(j) < s.ncol; j++ {
		st := s.status[j]
		if st == BasisBasic || s.p.lo[j] == s.p.up[j] {
			continue
		}
		d := s.costOf(j) - s.dotColumn(j, s.y)
		switch st {
		case BasisLower:
			if d < -spxDualTol {
				if s.p.up[j] < spxInf {
					s.status[j] = BasisUpper
					flipped = true
				} else {
					ok = false
				}
			}
		case BasisUpper:
			if d > spxDualTol {
				if s.p.lo[j] > -spxInf {
					s.status[j] = BasisLower
					flipped = true
				} else {
					ok = false
				}
			}
		case BasisFree:
			if d < -spxDualTol || d > spxDualTol {
				ok = false
			}
		}
	}
	if flipped {
		s.computeXB()
	}
	return ok
}

// dualCand is one entering candidate of the dual ratio test: a nonbasic
// column with the right reduced-cost/pivot-sign combination, its dual
// ratio, and its sgn-normalized pivot-row coefficient.
type dualCand struct {
	j     int32
	ratio float64
	aj    float64
}

// dualCandLess is the dual ratio-test order: ascending ratio, ties broken
// by larger |ᾱ| (pivot stability) then lower column index (determinism).
// It is a strict total order, so popping a min-heap built on it yields
// candidates in exactly sorted order.
func dualCandLess(a, b dualCand) bool {
	if a.ratio != b.ratio {
		return a.ratio < b.ratio
	}
	aa, ab := math.Abs(a.aj), math.Abs(b.aj)
	if aa != ab {
		return aa > ab
	}
	return a.j < b.j
}

// dualCandSift restores the min-heap property below position i.
func dualCandSift(h []dualCand, i int) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		m := l
		if r := l + 1; r < len(h) && dualCandLess(h[r], h[l]) {
			m = r
		}
		if !dualCandLess(h[m], h[i]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// dualIterate runs dual simplex pivots until primal feasibility (optimal),
// primal infeasibility (dual unbounded), or the iteration budget. It
// assumes the starting basis is dual feasible. On budget exhaustion it
// returns ok=false and the caller falls through to the primal phases from
// the current (still valid, still dual-feasible-ish) basis — the dual
// phase is an accelerator, never a correctness gate.
//
// The ratio test is the bound-flipping ("long step") variant: walking the
// candidates in ascending dual-ratio order, every boxed column whose full
// lower↔upper flip the leaving row's violation can absorb is flipped in
// place — no pivot, no basis change, dual feasibility preserved because
// the dual step passes its ratio anyway — and only the candidate that
// would overshoot enters the basis. On box-heavy TE models (every flow
// variable and capacity logical is bounded) the short-step test instead
// pushed each entering variable past its own opposite bound, manufacturing
// a fresh violation per pivot and cascading ~50 pivots per repaired basic;
// bound flipping retires whole groups of box constraints per iteration.
func (s *spx) dualIterate(pricing DualPricing) (Status, bool) {
	maxIter := iterMul * (s.m + s.ncol)
	if maxIter < minIter {
		maxIter = minIter
	}
	// Devex reference weights, one per basis position.
	w := make([]float64, s.m)
	for i := range w {
		w[i] = 1
	}
	rho := make([]float64, s.m)       // row of B⁻ᵀ, original-row space
	unit := make([]float64, s.m)      // btran input scratch
	flipDelta := make([]float64, s.m) // basic-value correction after flips
	var cands []dualCand
	stall := 0 // consecutive objective-flat iterations
	flat := 0  // cumulative objective-flat iterations, never reset
	rises := 0 // objective improvements seen (excluding the baseline)
	lastObj := s.objective()

	for iter := 0; iter < maxIter; iter++ {
		bland := stall > spxBlandAt

		// Duals and reduced costs of the current basis (real costs).
		for k, j := range s.basic {
			s.cB[k] = s.costOf(j)
		}
		copy(s.work, s.cB)
		s.btran(s.work, s.y)

		// Leaving row: the violated basic with the best pricing score.
		r := int32(-1)
		above := false // violation side of the chosen row
		best := 0.0
		for k, j := range s.basic {
			v := s.xB[k]
			var viol float64
			var up bool
			if lo := s.p.lo[j]; v < lo-spxFeasTol {
				viol, up = lo-v, false
			} else if hi := s.p.up[j]; v > hi+spxFeasTol {
				viol, up = v-hi, true
			} else {
				continue
			}
			if bland {
				if r < 0 || j < s.basic[r] {
					r, above = int32(k), up
				}
				continue
			}
			score := viol
			if pricing == DualDevex {
				score = viol * viol / w[k]
			}
			if score > best {
				best, r, above = score, int32(k), up
			}
		}
		if r < 0 {
			return Optimal, true
		}
		// Stall detection must watch the DUAL objective — the quantity the
		// dual simplex increases monotonically (each pivot adds
		// ratio·violation ≥ 0). The primal infeasibility sum is NOT
		// monotone here: a pivot snaps one basic onto its bound while
		// legally pushing others out, so gating Bland's rule on it locks
		// the solve into the slow rule for the rest of the run.
		if obj := s.objective(); obj > lastObj+1e-12 {
			stall = 0
			rises++
			lastObj = obj
		} else {
			stall++
			flat++
		}
		// Warm restarts from a previous optimum carry many zero-reduced-
		// cost nonbasics, so every dual ratio can be zero and the objective
		// sits on a degenerate plateau for thousands of pivots. A phase
		// whose objective has never moved off its starting value is
		// cut quickly; one that stops moving gets a bounded Bland window
		// to break the tie cycle, then — or past a cumulative flat budget
		// scaled to the basis size — the phase is not converging and the
		// primal phases finish cheaper from the current (still valid)
		// basis.
		if rises == 0 && iter >= 48+s.m/8 {
			return 0, false
		}
		if stall > spxBlandAt+spxBlandAt/2 || flat > s.m/2+2*spxBlandAt {
			return 0, false
		}

		// ρ = B⁻ᵀ e_r: the r-th row of B⁻¹ in original-row space.
		for i := range unit {
			unit[i] = 0
		}
		unit[r] = 1
		s.btran(unit, rho)

		// Dual ratio test over the nonbasic columns. sgn normalizes the
		// leaving direction so eligibility and ratios read identically for
		// both violation sides: ᾱ_j = sgn·(ρᵀA_j).
		sgn := 1.0
		if !above {
			sgn = -1
		}
		leaveVar := s.basic[r]
		cands = cands[:0]
		for j := int32(0); int(j) < s.ncol; j++ {
			st := s.status[j]
			if st == BasisBasic || s.p.lo[j] == s.p.up[j] {
				continue
			}
			aj := sgn * s.dotColumn(j, rho)
			var ratio float64
			switch st {
			case BasisLower:
				if aj <= dualPivTol {
					continue
				}
				ratio = (s.costOf(j) - s.dotColumn(j, s.y)) / aj
			case BasisUpper:
				if aj >= -dualPivTol {
					continue
				}
				ratio = (s.costOf(j) - s.dotColumn(j, s.y)) / aj
			case BasisFree:
				if aj > -dualPivTol && aj < dualPivTol {
					continue
				}
				ratio = math.Abs(s.costOf(j)-s.dotColumn(j, s.y)) / math.Abs(aj)
			}
			if ratio < 0 {
				ratio = 0 // tolerance round-off: treat as degenerate
			}
			cands = append(cands, dualCand{j: j, ratio: ratio, aj: aj})
		}
		if len(cands) == 0 {
			// Dual unbounded: no entering column can absorb the violation,
			// so the primal problem is infeasible.
			return Infeasible, true
		}

		var enter int32
		if bland {
			// Bland's rule: minimum ratio, lowest column index among ties,
			// no bound flips — the termination guarantee needs pure pivots.
			best := cands[0]
			for _, c := range cands[1:] {
				if c.ratio < best.ratio-1e-12 {
					best = c
				}
			}
			enter = best.j
		} else {
			// Bound-flipping walk in ascending ratio order (ties: larger
			// |ᾱ| first for pivot stability, then index for determinism).
			// The walk usually stops after a handful of candidates, so a
			// heap with lazy pops beats fully sorting the list; the
			// comparator is a strict total order, so the pop sequence is
			// exactly the sorted order and the flips (and their scatter
			// accumulation into s.work) happen in the same order as before.
			for i := len(cands)/2 - 1; i >= 0; i-- {
				dualCandSift(cands, i)
			}
			viol := s.xB[r] - s.p.up[leaveVar]
			if !above {
				viol = s.p.lo[leaveVar] - s.xB[r]
			}
			h := cands
			flipped := false
			for {
				c := h[0]
				rng := s.p.up[c.j] - s.p.lo[c.j]
				gain := math.Abs(c.aj) * rng
				if len(h) == 1 || rng >= spxInf || gain >= viol-1e-12 {
					enter = c.j
					break
				}
				viol -= gain
				// Flip everything cheaper than the entering ratio and fold
				// the basic-value change in with one ftran below:
				// Δx_B = −B⁻¹·Σ Δx_j·A_j.
				if !flipped {
					flipped = true
					for i := range s.work {
						s.work[i] = 0
					}
				}
				if s.status[c.j] == BasisLower {
					s.status[c.j] = BasisUpper
					s.scatterColumn(c.j, -rng, s.work)
				} else {
					s.status[c.j] = BasisLower
					s.scatterColumn(c.j, rng, s.work)
				}
				h[0] = h[len(h)-1]
				h = h[:len(h)-1]
				dualCandSift(h, 0)
			}
			if flipped {
				s.ftran(s.work, flipDelta)
				for k := range s.xB {
					s.xB[k] += flipDelta[k]
				}
			}
		}

		// Pivot column α = B⁻¹A_enter for the basis update, and the step
		// moving the leaving variable exactly onto its violated bound.
		for i := range s.work {
			s.work[i] = 0
		}
		s.scatterColumn(enter, 1, s.work)
		s.ftran(s.work, s.alpha)
		arq := s.alpha[r]
		if math.Abs(arq) < dualPivTol {
			// ρᵀA_q and (B⁻¹A_q)_r disagree: the eta file has gone stale
			// numerically. Refactorize and retry the iteration.
			if !s.factorize() {
				return 0, false
			}
			s.computeXB()
			continue
		}
		target := s.p.up[leaveVar]
		leaveAt := BasisUpper
		if !above {
			target = s.p.lo[leaveVar]
			leaveAt = BasisLower
		}
		delta := (s.xB[r] - target) / arq
		dir := 1.0
		if delta < 0 {
			dir, delta = -1, -delta
		}

		// Devex weight update before the pivot overwrites alpha's meaning:
		// w_k ← max(w_k, (α_k/α_r)²·w_r); the entering position inherits
		// max(w_r/α_r², 1).
		if pricing == DualDevex {
			wr := w[r]
			reset := false
			for k := range s.alpha {
				if int32(k) == r || s.alpha[k] == 0 {
					continue
				}
				g := s.alpha[k] / arq
				if cand := g * g * wr; cand > w[k] {
					w[k] = cand
					if cand > devexReset {
						reset = true
					}
				}
			}
			if nw := wr / (arq * arq); nw > 1 {
				w[r] = nw
			} else {
				w[r] = 1
			}
			if reset {
				for i := range w {
					w[i] = 1
				}
			}
		}

		s.pivot(enter, dir, delta, r, leaveAt)
		s.stats.Iterations++
		s.stats.DualIterations++
	}
	return 0, false
}
