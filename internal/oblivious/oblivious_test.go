package oblivious

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/coyote-te/coyote/internal/dagx"
	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/gpopt"
	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/maxflow"
	"github.com/coyote-te/coyote/internal/pdrouting"
)

// fig1Graph builds the running example (Fig. 1a, unit capacities/weights).
func fig1Graph() (*graph.Graph, map[string]graph.NodeID) {
	g := graph.New()
	ids := map[string]graph.NodeID{
		"s1": g.AddNode("s1"),
		"s2": g.AddNode("s2"),
		"v":  g.AddNode("v"),
		"t":  g.AddNode("t"),
	}
	g.AddLink(ids["s1"], ids["s2"], 1, 1)
	g.AddLink(ids["s1"], ids["v"], 1, 1)
	g.AddLink(ids["s2"], ids["v"], 1, 1)
	g.AddLink(ids["s2"], ids["t"], 1, 1)
	g.AddLink(ids["v"], ids["t"], 1, 1)
	return g, ids
}

// fig1cDAGs returns DAGs where destination t uses the Fig. 1c DAG.
func fig1cDAGs(t *testing.T, g *graph.Graph, ids map[string]graph.NodeID) []*dagx.DAG {
	t.Helper()
	member := make([]bool, g.NumEdges())
	for _, pair := range [][2]string{{"s1", "s2"}, {"s1", "v"}, {"s2", "v"}, {"s2", "t"}, {"v", "t"}} {
		id, ok := g.FindEdge(ids[pair[0]], ids[pair[1]])
		if !ok {
			t.Fatalf("missing edge %v", pair)
		}
		member[id] = true
	}
	fig1c, err := dagx.FromEdges(g, ids["t"], member)
	if err != nil {
		t.Fatal(err)
	}
	dags := dagx.BuildAll(g, dagx.Augmented)
	dags[ids["t"]] = fig1c
	return dags
}

// goldenRouting installs the Appendix B optimum on the Fig. 1c DAG.
func goldenRouting(t *testing.T, g *graph.Graph, ids map[string]graph.NodeID, dags []*dagx.DAG) *pdrouting.Routing {
	t.Helper()
	golden := (math.Sqrt(5) - 1) / 2
	r := pdrouting.Uniform(g, dags)
	es1s2, _ := g.FindEdge(ids["s1"], ids["s2"])
	es1v, _ := g.FindEdge(ids["s1"], ids["v"])
	es2t, _ := g.FindEdge(ids["s2"], ids["t"])
	es2v, _ := g.FindEdge(ids["s2"], ids["v"])
	evt, _ := g.FindEdge(ids["v"], ids["t"])
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(r.SetRatios(ids["t"], ids["s1"], map[graph.EdgeID]float64{es1s2: golden, es1v: 1 - golden}))
	must(r.SetRatios(ids["t"], ids["s2"], map[graph.EdgeID]float64{es2t: golden, es2v: 1 - golden}))
	must(r.SetRatios(ids["t"], ids["v"], map[graph.EdgeID]float64{evt: 1}))
	return r
}

// box02 is the running example's uncertainty set: each user sends 0–2 units.
func box02(g *graph.Graph, ids map[string]graph.NodeID) *demand.Box {
	min := demand.NewMatrix(g.NumNodes())
	max := demand.NewMatrix(g.NumNodes())
	max.Set(ids["s1"], ids["t"], 2)
	max.Set(ids["s2"], ids["t"], 2)
	return demand.NewBox(min, max)
}

// TestGoldenRoutingPerf verifies Appendix B end to end: the golden-ratio
// routing's worst-case normalized utilization over the box is √5−1 ≈ 1.236.
func TestGoldenRoutingPerf(t *testing.T) {
	g, ids := fig1Graph()
	dags := fig1cDAGs(t, g, ids)
	r := goldenRouting(t, g, ids, dags)
	ev := NewEvaluator(g, dags, box02(g, ids), EvalConfig{Samples: 16, Seed: 1})
	res := ev.Perf(r)
	want := math.Sqrt(5) - 1
	if math.Abs(res.Ratio-want) > 0.01 {
		t.Fatalf("Perf = %g, want %g", res.Ratio, want)
	}
}

// TestPerfExactMatchesSampling on the running example: the slave LP must
// agree with the corner adversary here (the worst case sits at a corner).
func TestPerfExactMatchesSampling(t *testing.T) {
	g, ids := fig1Graph()
	dags := fig1cDAGs(t, g, ids)
	r := goldenRouting(t, g, ids, dags)
	ev := NewEvaluator(g, dags, box02(g, ids), EvalConfig{Samples: 16, Seed: 1})
	approx := ev.Perf(r)
	exact, err := ev.PerfExact(r)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(5) - 1
	if math.Abs(exact.Ratio-want) > 1e-6 {
		t.Fatalf("PerfExact = %g, want %g", exact.Ratio, want)
	}
	if approx.Ratio > exact.Ratio+1e-6 {
		t.Fatalf("sampling adversary %g exceeds exact %g", approx.Ratio, exact.Ratio)
	}
}

// Property: the sampling adversary never exceeds the exact slave-LP value
// (it is a lower bound on PERF).
func TestPropertySamplingBelowExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(3)
		g := graph.New()
		g.AddNodes(n)
		for i := 0; i < n; i++ {
			g.AddLink(graph.NodeID(i), graph.NodeID((i+1)%n), 1+rng.Float64()*4, 1+float64(rng.Intn(3)))
		}
		g.AddLink(0, graph.NodeID(n/2), 1+rng.Float64()*4, 1+float64(rng.Intn(3)))
		dags := dagx.BuildAll(g, dagx.Augmented)
		base := demand.NewMatrix(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && rng.Float64() < 0.6 {
					base.Set(graph.NodeID(i), graph.NodeID(j), 0.2+rng.Float64()*2)
				}
			}
		}
		if base.Total() == 0 {
			return true
		}
		box := demand.MarginBox(base, 1+rng.Float64()*2)
		ev := NewEvaluator(g, dags, box, EvalConfig{Samples: 6, Seed: seed})
		r := pdrouting.Uniform(g, dags)
		approx := ev.Perf(r)
		exact, err := ev.PerfExact(r)
		if err != nil {
			return false
		}
		return approx.Ratio <= exact.Ratio+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestCoyoteBeatsECMPRunningExample: on the running example with the
// augmented DAGs, COYOTE's optimized splitting must strictly beat
// traditional ECMP (whose PERF is 1.5 via the (2,2) corner).
func TestCoyoteBeatsECMPRunningExample(t *testing.T) {
	g, ids := fig1Graph()
	dags := dagx.BuildAll(g, dagx.Augmented)
	box := box02(g, ids)
	ev := NewEvaluator(g, dags, box, EvalConfig{Samples: 16, Seed: 7})

	ecmp := ECMPOnDAGs(g, dags)
	ecmpPerf := ev.Perf(ecmp)
	if ecmpPerf.Ratio < 1.49 {
		t.Fatalf("ECMP PERF = %g, expected ≥ 1.5 on this instance", ecmpPerf.Ratio)
	}

	r, rep := OptimizeWithEvaluator(g, dags, ev, Options{
		Optimizer: gpopt.Config{Iters: 600},
		AdvIters:  4,
	})
	if err := r.Validate(); err != nil {
		t.Fatalf("COYOTE routing invalid: %v", err)
	}
	if rep.Perf.Ratio > ecmpPerf.Ratio+1e-9 {
		t.Fatalf("COYOTE PERF %g worse than ECMP %g", rep.Perf.Ratio, ecmpPerf.Ratio)
	}
	if rep.Perf.Ratio > 1.35 {
		t.Fatalf("COYOTE PERF = %g, want ≤ ~4/3 on the running example", rep.Perf.Ratio)
	}
}

// TestTheorem4PathLowerBound reproduces the Ω(n) negative result: on the
// n-source path with unit edges into t, any per-destination routing leaves
// some x_i whose traffic rides only (x_i, t); demand n from that source
// then drives utilization n while the unrestricted optimum is 1.
func TestTheorem4PathLowerBound(t *testing.T) {
	n := 6
	g := graph.New()
	xs := make([]graph.NodeID, n)
	for i := 0; i < n; i++ {
		xs[i] = g.AddNodes(1)
	}
	tt := g.AddNodes(1)
	for i := 0; i+1 < n; i++ {
		g.AddLink(xs[i], xs[i+1], 1e9, 1)
	}
	for i := 0; i < n; i++ {
		g.AddEdge(xs[i], tt, 1, 1)
	}
	dags := dagx.BuildAll(g, dagx.Augmented)
	r := pdrouting.Uniform(g, dags)

	worst := 0.0
	for i := 0; i < n; i++ {
		D := demand.SinglePair(g.NumNodes(), xs[i], tt, float64(n))
		mxlu := r.MaxUtilization(D)
		// Unrestricted optimum: d / maxflow over the whole graph.
		opt := float64(n) / maxflow.MinCutValue(g, []graph.NodeID{xs[i]}, tt)
		if ratio := mxlu / opt; ratio > worst {
			worst = ratio
		}
	}
	if worst < float64(n)-1e-6 {
		t.Fatalf("path lower bound: worst ratio %g, want ≥ %d", worst, n)
	}
}

// TestECMPOnDAGsValidates checks that the baseline routing is a valid PD
// routing over augmented DAGs.
func TestECMPOnDAGsValidates(t *testing.T) {
	g, _ := fig1Graph()
	dags := dagx.BuildAll(g, dagx.Augmented)
	r := ECMPOnDAGs(g, dags)
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestBaseRoutingOptimalAtBase: the Base routing must be optimal for its
// own base matrix (ratio 1 at margin 1), the anchor every Table I row
// exhibits.
func TestBaseRoutingOptimalAtBase(t *testing.T) {
	g, ids := fig1Graph()
	dags := dagx.BuildAll(g, dagx.Augmented)
	base := demand.NewMatrix(g.NumNodes())
	base.Set(ids["s1"], ids["t"], 1)
	base.Set(ids["s2"], ids["t"], 0.5)
	r, err := BaseRouting(g, dags, base, 18, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(g, dags, demand.MarginBox(base, 1), EvalConfig{Samples: 4, Seed: 3})
	res := ev.Perf(r)
	if math.Abs(res.Ratio-1) > 0.02 {
		t.Fatalf("Base routing at margin 1: PERF = %g, want 1", res.Ratio)
	}
}

// TestBaseDegradesWithMargin: the Base routing's PERF grows with the
// uncertainty margin (Figures 6–8's central observation).
func TestBaseDegradesWithMargin(t *testing.T) {
	g, ids := fig1Graph()
	dags := dagx.BuildAll(g, dagx.Augmented)
	base := demand.NewMatrix(g.NumNodes())
	base.Set(ids["s1"], ids["t"], 1)
	base.Set(ids["s2"], ids["t"], 1)
	base.Set(ids["s1"], ids["s2"], 0.3)
	r, err := BaseRouting(g, dags, base, 18, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	var prev float64
	for i, margin := range []float64{1, 2, 3} {
		ev := NewEvaluator(g, dags, demand.MarginBox(base, margin), EvalConfig{Samples: 8, Seed: 3})
		res := ev.Perf(r)
		if i > 0 && res.Ratio < prev-1e-9 {
			t.Fatalf("Base PERF decreased with margin: %g → %g", prev, res.Ratio)
		}
		prev = res.Ratio
	}
	if prev < 1.05 {
		t.Fatalf("Base PERF at margin 3 = %g; expected visible degradation", prev)
	}
}

// TestOptDAGCaching ensures repeated OptDAG calls hit the cache.
func TestOptDAGCaching(t *testing.T) {
	g, ids := fig1Graph()
	dags := dagx.BuildAll(g, dagx.Augmented)
	ev := NewEvaluator(g, dags, box02(g, ids), EvalConfig{})
	D := demand.SinglePair(g.NumNodes(), ids["s1"], ids["t"], 2)
	a := ev.OptDAG(D)
	b := ev.OptDAG(D)
	if a != b {
		t.Fatalf("cache miss changed value: %g vs %g", a, b)
	}
	if len(ev.cache.opt) != 1 {
		t.Fatalf("cache has %d entries, want 1", len(ev.cache.opt))
	}
}
