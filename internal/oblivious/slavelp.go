package oblivious

import (
	"math"

	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/lp"
	"github.com/coyote-te/coyote/internal/pdrouting"
)

// PerfExact computes the exact worst-case performance ratio of routing r
// over the evaluator's uncertainty set by solving, for every link, the
// "slave LP" of Appendix C: maximize the link's utilization over all
// demand matrices D in the cone of the box that are routable within the
// DAGs without exceeding capacities (i.e. OPTDAG(D) ≤ 1). The maximum over
// links is PERF(r, Box).
//
// The LP has Θ(n² + n·|E|) variables, so PerfExact is intended for small
// instances, tests, and the adversary ablation; the sampling adversary
// (Perf) is the production path.
func (ev *Evaluator) PerfExact(r *pdrouting.Routing) (Result, error) {
	g := ev.G
	n := g.NumNodes()
	nE := g.NumEdges()

	coeff := make([][][]float64, n)
	actives := make([]bool, n) // destinations that can receive demand
	for t := 0; t < n; t++ {
		coeff[t] = r.LoadCoeffs(graph.NodeID(t))
		for s := 0; s < n; s++ {
			if s != t && ev.Box.Max.At(graph.NodeID(s), graph.NodeID(t)) > 0 {
				actives[t] = true
			}
		}
	}

	best := Result{Ratio: math.Inf(-1)}
	for targetEdge := 0; targetEdge < nE; targetEdge++ {
		prob := lp.NewProblem(lp.Maximize)
		lambda := prob.AddVariable()

		// Demand variables.
		dVar := make([][]int, n)
		for s := 0; s < n; s++ {
			dVar[s] = make([]int, n)
			for t := 0; t < n; t++ {
				dVar[s][t] = -1
				if s != t && ev.Box.Max.At(graph.NodeID(s), graph.NodeID(t)) > 0 {
					dVar[s][t] = prob.AddVariable()
				}
			}
		}
		// In-DAG flow variables per active destination.
		gVar := make([][]int, n)
		for t := 0; t < n; t++ {
			if !actives[t] {
				continue
			}
			gVar[t] = make([]int, nE)
			for e := 0; e < nE; e++ {
				gVar[t][e] = -1
				if ev.DAGs[t].Member[e] {
					gVar[t][e] = prob.AddVariable()
				}
			}
		}
		// Conservation: out - in = d_vt at every v ≠ t.
		for t := 0; t < n; t++ {
			if !actives[t] {
				continue
			}
			for v := 0; v < n; v++ {
				if v == t {
					continue
				}
				var terms []lp.Term
				for _, id := range g.Out(graph.NodeID(v)) {
					if gVar[t][id] >= 0 {
						terms = append(terms, lp.Term{Var: gVar[t][id], Coeff: 1})
					}
				}
				for _, id := range g.In(graph.NodeID(v)) {
					if gVar[t][id] >= 0 {
						terms = append(terms, lp.Term{Var: gVar[t][id], Coeff: -1})
					}
				}
				if dVar[v][t] >= 0 {
					terms = append(terms, lp.Term{Var: dVar[v][t], Coeff: -1})
				}
				prob.AddConstraint(terms, lp.EQ, 0)
			}
		}
		// Capacities.
		for e := 0; e < nE; e++ {
			var terms []lp.Term
			for t := 0; t < n; t++ {
				if actives[t] && gVar[t] != nil && gVar[t][e] >= 0 {
					terms = append(terms, lp.Term{Var: gVar[t][e], Coeff: 1})
				}
			}
			if len(terms) > 0 {
				prob.AddConstraint(terms, lp.LE, g.Edge(graph.EdgeID(e)).Capacity)
			}
		}
		// Box cone: λ·min ≤ d ≤ λ·max.
		for s := 0; s < n; s++ {
			for t := 0; t < n; t++ {
				if dVar[s][t] < 0 {
					continue
				}
				lo := ev.Box.Min.At(graph.NodeID(s), graph.NodeID(t))
				hi := ev.Box.Max.At(graph.NodeID(s), graph.NodeID(t))
				if lo > 0 {
					prob.AddConstraint([]lp.Term{{Var: dVar[s][t], Coeff: 1}, {Var: lambda, Coeff: -lo}}, lp.GE, 0)
				}
				prob.AddConstraint([]lp.Term{{Var: dVar[s][t], Coeff: 1}, {Var: lambda, Coeff: -hi}}, lp.LE, 0)
			}
		}
		// Objective: utilization of targetEdge.
		ce := g.Edge(graph.EdgeID(targetEdge)).Capacity
		for s := 0; s < n; s++ {
			for t := 0; t < n; t++ {
				if dVar[s][t] >= 0 && coeff[t][s][targetEdge] > 0 {
					prob.SetObjective(dVar[s][t], coeff[t][s][targetEdge]/ce)
				}
			}
		}
		sol, err := prob.Solve()
		if err != nil {
			return Result{}, err
		}
		if sol.Status != lp.Optimal {
			continue
		}
		if sol.Objective > best.Ratio {
			D := demand.NewMatrix(n)
			for s := 0; s < n; s++ {
				for t := 0; t < n; t++ {
					if dVar[s][t] >= 0 {
						D.D[s*n+t] = sol.X[dVar[s][t]]
					}
				}
			}
			best = Result{Ratio: sol.Objective, WorstDM: D, MxLU: sol.Objective, Norm: 1}
		}
	}
	return best, nil
}
