package oblivious

import (
	"context"
	"math"

	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/lp"
	"github.com/coyote-te/coyote/internal/obs"
	"github.com/coyote-te/coyote/internal/pdrouting"
)

// slaveLP is the Appendix-C worst-case-demand LP, built ONCE per routing
// evaluation on the shared lp.Model builder: the constraint rows (flow
// conservation, capacities, box cone) are identical for every target link;
// only the objective row changes. The per-link loop therefore mutates the
// objective in place and warm-starts each solve from the previous link's
// optimal basis — the previous vertex stays primal feasible under an
// objective-only change, so successive solves skip phase 1 entirely.
type slaveLP struct {
	model  *lp.Model
	lambda int
	dVar   [][]int
	objSet []int // variables with a nonzero objective, for cheap resets
}

// buildSlaveLP constructs the rows shared by every target link: demands d
// routable within the DAGs without exceeding capacities (OPTDAG(D) ≤ 1),
// d in the cone of the uncertainty box.
func (ev *Evaluator) buildSlaveLP(actives []bool) *slaveLP {
	g := ev.G
	n := g.NumNodes()
	nE := g.NumEdges()
	prob := lp.NewModel(lp.Maximize)
	lambda := prob.AddVars(1)

	// Demand variables.
	dVar := make([][]int, n)
	for s := 0; s < n; s++ {
		dVar[s] = make([]int, n)
		for t := 0; t < n; t++ {
			dVar[s][t] = -1
			if s != t && ev.Box.Max.At(graph.NodeID(s), graph.NodeID(t)) > 0 {
				dVar[s][t] = prob.AddVars(1)
			}
		}
	}
	// In-DAG flow variables per active destination.
	gVar := make([][]int, n)
	for t := 0; t < n; t++ {
		if !actives[t] {
			continue
		}
		gVar[t] = make([]int, nE)
		for e := 0; e < nE; e++ {
			gVar[t][e] = -1
			if ev.DAGs[t].Member[e] {
				gVar[t][e] = prob.AddVars(1)
			}
		}
	}
	// Conservation: out - in = d_vt at every v ≠ t.
	for t := 0; t < n; t++ {
		if !actives[t] {
			continue
		}
		for v := 0; v < n; v++ {
			if v == t {
				continue
			}
			var terms []lp.Term
			for _, id := range g.Out(graph.NodeID(v)) {
				if gVar[t][id] >= 0 {
					terms = append(terms, lp.Term{Var: gVar[t][id], Coeff: 1})
				}
			}
			for _, id := range g.In(graph.NodeID(v)) {
				if gVar[t][id] >= 0 {
					terms = append(terms, lp.Term{Var: gVar[t][id], Coeff: -1})
				}
			}
			if dVar[v][t] >= 0 {
				terms = append(terms, lp.Term{Var: dVar[v][t], Coeff: -1})
			}
			prob.AddEQ(terms, 0)
		}
	}
	// Capacities.
	for e := 0; e < nE; e++ {
		var terms []lp.Term
		for t := 0; t < n; t++ {
			if actives[t] && gVar[t] != nil && gVar[t][e] >= 0 {
				terms = append(terms, lp.Term{Var: gVar[t][e], Coeff: 1})
			}
		}
		if len(terms) > 0 {
			prob.AddLE(terms, g.Edge(graph.EdgeID(e)).Capacity)
		}
	}
	// Box cone: λ·min ≤ d ≤ λ·max.
	for s := 0; s < n; s++ {
		for t := 0; t < n; t++ {
			if dVar[s][t] < 0 {
				continue
			}
			lo := ev.Box.Min.At(graph.NodeID(s), graph.NodeID(t))
			hi := ev.Box.Max.At(graph.NodeID(s), graph.NodeID(t))
			if lo > 0 {
				prob.AddGE([]lp.Term{{Var: dVar[s][t], Coeff: 1}, {Var: lambda, Coeff: -lo}}, 0)
			}
			prob.AddLE([]lp.Term{{Var: dVar[s][t], Coeff: 1}, {Var: lambda, Coeff: -hi}}, 0)
		}
	}
	return &slaveLP{model: prob, lambda: lambda, dVar: dVar}
}

// setObjective points the LP at one target link: maximize that link's
// utilization under the routing's load coefficients. The previous
// objective is zeroed first (the row set never changes).
func (sl *slaveLP) setObjective(ev *Evaluator, coeff [][][]float64, targetEdge int) {
	for _, v := range sl.objSet {
		sl.model.SetObjective(v, 0)
	}
	sl.objSet = sl.objSet[:0]
	n := ev.G.NumNodes()
	ce := ev.G.Edge(graph.EdgeID(targetEdge)).Capacity
	for s := 0; s < n; s++ {
		for t := 0; t < n; t++ {
			if sl.dVar[s][t] >= 0 && coeff[t][s][targetEdge] > 0 {
				sl.model.SetObjective(sl.dVar[s][t], coeff[t][s][targetEdge]/ce)
				sl.objSet = append(sl.objSet, sl.dVar[s][t])
			}
		}
	}
}

// PerfExact computes the exact worst-case performance ratio of routing r
// over the evaluator's uncertainty set by solving, for every link, the
// "slave LP" of Appendix C: maximize the link's utilization over all
// demand matrices D in the cone of the box that are routable within the
// DAGs without exceeding capacities (i.e. OPTDAG(D) ≤ 1). The maximum over
// links is PERF(r, Box).
//
// The LP has Θ(n² + n·|E|) variables; the sparse core plus the
// basis chain across the per-link solves (the rows are shared — only the
// objective moves) keep it viable well beyond the old dense limits, but
// the sampling adversary (Perf) remains the production path.
func (ev *Evaluator) PerfExact(r *pdrouting.Routing) (Result, error) {
	return ev.perfExact(context.Background(), r, true)
}

// PerfExactCtx is PerfExact with tracing: when ctx carries an obs.Tracer it
// records one oblivious.perf_exact span for the whole per-link sweep plus
// one nested lp.solve span per slave LP (the per-link solves run serially
// on the warm-start chain, so the spans nest cleanly). Observational only.
func (ev *Evaluator) PerfExactCtx(ctx context.Context, r *pdrouting.Routing) (Result, error) {
	return ev.perfExact(ctx, r, true)
}

// PerfExactNoWarm is PerfExact with the per-link warm-start chain
// disabled: every slave LP is solved from a cold basis. It exists for the
// adversary ablation and BenchmarkSlaveLP; results are identical to
// PerfExact up to round-off.
func (ev *Evaluator) PerfExactNoWarm(r *pdrouting.Routing) (Result, error) {
	return ev.perfExact(context.Background(), r, false)
}

func (ev *Evaluator) perfExact(ctx context.Context, r *pdrouting.Routing, warmChain bool) (Result, error) {
	ctx, span := obs.StartSpan(ctx, "oblivious.perf_exact")
	defer span.End()
	g := ev.G
	n := g.NumNodes()
	nE := g.NumEdges()

	coeff := make([][][]float64, n)
	actives := make([]bool, n) // destinations that can receive demand
	for t := 0; t < n; t++ {
		coeff[t] = r.LoadCoeffs(graph.NodeID(t))
		for s := 0; s < n; s++ {
			if s != t && ev.Box.Max.At(graph.NodeID(s), graph.NodeID(t)) > 0 {
				actives[t] = true
			}
		}
	}

	sl := ev.buildSlaveLP(actives)
	best := Result{Ratio: math.Inf(-1)}
	var basis *lp.Basis
	for targetEdge := 0; targetEdge < nE; targetEdge++ {
		sl.setObjective(ev, coeff, targetEdge)
		sol, err := sl.model.Solve(&lp.SolveOptions{Basis: basis, Ctx: ctx})
		if err != nil {
			return Result{}, err
		}
		if sol.Status != lp.Optimal {
			continue
		}
		if warmChain {
			basis = sol.Basis
		}
		if sol.Objective > best.Ratio {
			D := demand.NewMatrix(n)
			for s := 0; s < n; s++ {
				for t := 0; t < n; t++ {
					if sl.dVar[s][t] >= 0 {
						D.D[s*n+t] = sol.X[sl.dVar[s][t]]
					}
				}
			}
			best = Result{Ratio: sol.Objective, WorstDM: D, MxLU: sol.Objective, Norm: 1}
		}
	}
	span.Attr("links", nE).Attr("warm_chain", warmChain).Attr("ratio", best.Ratio)
	return best, nil
}
