// Package oblivious implements the oblivious-performance machinery of the
// paper: evaluating PERF(φ, D) — the worst-case ratio between a routing's
// maximum link utilization and the demands-aware optimum within the same
// DAGs (§III, §VI) — and COYOTE's adversarial optimization loop that
// couples the worst-case-demand finder with the GP-style splitting-ratio
// optimizer (§V-C, Appendix C).
//
// Two adversaries are provided. The exact one solves, per link, the "slave
// LP" of Appendix C (maximize the link's utilization over all demand
// matrices in the uncertainty set that are routable within the DAGs'
// capacities). The fast one exploits that for a fixed routing the load on a
// link is linear in the demand matrix, so a box-constrained maximum is
// attained at a corner readable from the coefficient signs; corners are
// then normalized by OPTDAG via the mcf solvers. Single-pair demand
// matrices (the adversaries behind Theorem 4) are additionally screened in
// closed form through DAG-restricted max-flow.
//
// The evaluator is concurrent end-to-end (DESIGN.md §4): coefficient
// extraction, the single-pair screen, corner-adversary sampling, candidate
// normalization, and per-destination DAG flow propagation all fan out
// across a worker pool sized by EvalConfig.Workers, with flow buffers
// recycled through sync.Pool. Every parallel stage writes index-addressed
// slots and reduces serially in index order, and corner sampling derives
// each corner from (Seed, call sequence, sample index) rather than from a
// shared RNG stream, so results for a fixed Seed are bit-identical for any
// worker count.
package oblivious

import (
	"context"
	"hash/fnv"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/coyote-te/coyote/internal/dagx"
	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/lp"
	"github.com/coyote-te/coyote/internal/maxflow"
	"github.com/coyote-te/coyote/internal/mcf"
	"github.com/coyote-te/coyote/internal/obs"
	"github.com/coyote-te/coyote/internal/par"
	"github.com/coyote-te/coyote/internal/pdrouting"
)

// DefaultExactNodeLimit is the exact/FPTAS crossover: OPTDAG uses the
// sparse revised-simplex LP up to this many nodes and the Garg–Könemann
// FPTAS beyond it. The value was set by benchmark (EXPERIMENTS.md,
// "Exact vs FPTAS crossover"): with the sparse core the exact LP beats the
// eps=0.1 FPTAS on every corpus topology (≤ 33 nodes) and on ~40-node
// generated WANs, and loses from ~48 nodes up. The dense-tableau core this
// replaced capped the limit at 18.
const DefaultExactNodeLimit = 40

// EvalConfig tunes the evaluator.
type EvalConfig struct {
	Eps            float64 // FPTAS accuracy for OPTDAG on large instances (default 0.1)
	Samples        int     // random box corners per evaluation (default 8)
	Seed           int64   // seed for corner sampling
	ExactNodeLimit int     // use the exact LP for OPTDAG when NumNodes ≤ this (default DefaultExactNodeLimit)
	Workers        int     // worker-pool size (≤ 0 = GOMAXPROCS); never changes results
}

func (c EvalConfig) withDefaults() EvalConfig {
	if c.Eps <= 0 {
		c.Eps = 0.1
	}
	if c.Samples <= 0 {
		c.Samples = 8
	}
	if c.ExactNodeLimit <= 0 {
		c.ExactNodeLimit = DefaultExactNodeLimit
	}
	return c
}

// Evaluator computes worst-case performance ratios of routings over a fixed
// uncertainty set and fixed per-destination DAGs. It caches OPTDAG values
// (which depend only on the demand matrix and DAGs, not the routing) and
// per-pair DAG max-flows, so repeated evaluations inside the adversarial
// loop are cheap. Evaluator is safe for concurrent use; a serialized
// sequence of calls is reproducible for a fixed Seed regardless of
// EvalConfig.Workers.
type Evaluator struct {
	G    *graph.Graph
	DAGs []*dagx.DAG
	Box  *demand.Box
	cfg  EvalConfig

	cache *evalCache // OPTDAG and max-flow caches, shareable across boxes

	seq     atomic.Uint64 // PerfTop call sequence; varies corner samples across calls
	edgeBuf *par.Pool     // pooled per-edge flow buffers (len NumEdges)
	nodeBuf *par.Pool     // pooled per-node inflow buffers (len NumNodes)
}

// evalCache holds the values that depend only on (graph, DAGs) — OPTDAG
// normalizations, per-pair DAG max-flows, and the latest exact-LP optimal
// basis — so evaluators over the same topology but different uncertainty
// boxes (the online controller's demand updates) can share them. The basis
// rides the same carry-through as the gpopt warm state: delta.Session's
// UpdateBounds and Recover derive their evaluator via WithBox, which keeps
// this cache, so exact normalizations after a demand drift warm-start from
// the vertex of the previous epoch.
type evalCache struct {
	mu    sync.Mutex
	opt   map[uint64]float64
	mf    map[[2]graph.NodeID]float64
	basis *lp.Basis
}

// warmBasis snapshots the shared warm-start basis.
func (c *evalCache) warmBasis() *lp.Basis {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.basis
}

// setWarmBasis publishes a new warm-start basis (nil is ignored).
func (c *evalCache) setWarmBasis(b *lp.Basis) {
	if b == nil {
		return
	}
	c.mu.Lock()
	c.basis = b
	c.mu.Unlock()
}

// NewEvaluator builds an evaluator for the given DAGs and uncertainty box.
func NewEvaluator(g *graph.Graph, dags []*dagx.DAG, box *demand.Box, cfg EvalConfig) *Evaluator {
	cfg = cfg.withDefaults()
	return &Evaluator{
		G:    g,
		DAGs: dags,
		Box:  box,
		cfg:  cfg,
		cache: &evalCache{
			opt: make(map[uint64]float64),
			mf:  make(map[[2]graph.NodeID]float64),
		},
		edgeBuf: par.NewPool(g.NumEdges()),
		nodeBuf: par.NewPool(g.NumNodes()),
	}
}

// WithBox derives an evaluator for a different uncertainty box over the
// same graph and DAGs. The OPTDAG and max-flow caches — which are
// box-independent — and the flow-buffer pools are shared with the
// receiver, so a session that drifts its demand bounds keeps every
// normalization it already paid for. The derived evaluator starts a fresh
// corner-sampling sequence.
func (ev *Evaluator) WithBox(box *demand.Box) *Evaluator {
	return &Evaluator{
		G:       ev.G,
		DAGs:    ev.DAGs,
		Box:     box,
		cfg:     ev.cfg,
		cache:   ev.cache,
		edgeBuf: ev.edgeBuf,
		nodeBuf: ev.nodeBuf,
	}
}

// OptDAG returns the demands-aware optimal utilization of D within the
// evaluator's DAGs (cached; exact LP up to ExactNodeLimit nodes, FPTAS
// otherwise). Exact solves warm-start from — and refresh — the shared
// basis cache; use it from serialized contexts (the adversarial loop's
// scenario accumulation, sessions). PerfTop's internal parallel
// normalization goes through optDAGWarm with a fixed basis snapshot
// instead, so its results never depend on goroutine scheduling.
func (ev *Evaluator) OptDAG(D *demand.Matrix) float64 {
	v, basis, _ := ev.optDAGWarm(D, ev.cache.warmBasis())
	ev.cache.setWarmBasis(basis)
	return v
}

// optDAGWarm is OptDAG against an explicit warm basis. It returns the
// (possibly cached) value, the optimal basis when a fresh exact solve
// happened (nil otherwise), and whether a solve happened at all.
func (ev *Evaluator) optDAGWarm(D *demand.Matrix, warm *lp.Basis) (float64, *lp.Basis, bool) {
	h := hashMatrix(D)
	c := ev.cache
	c.mu.Lock()
	if v, ok := c.opt[h]; ok {
		c.mu.Unlock()
		return v, nil, false
	}
	c.mu.Unlock()
	var v float64
	var basis *lp.Basis
	var err error
	if ev.G.NumNodes() <= ev.cfg.ExactNodeLimit {
		v, _, basis, err = mcf.MinMLUExactBasis(ev.G, ev.DAGs, D, warm)
	} else {
		v, _, err = mcf.MinMLUApprox(ev.G, ev.DAGs, D, ev.cfg.Eps)
	}
	if err != nil {
		v = math.Inf(1)
		basis = nil
	}
	c.mu.Lock()
	c.opt[h] = v
	c.mu.Unlock()
	return v, basis, true
}

// pairMaxFlow returns the maximum s→t flow within DAG_t (cached). The
// optimal utilization of the single-pair demand (s,t,d) within the DAGs is
// exactly d/pairMaxFlow(s,t).
func (ev *Evaluator) pairMaxFlow(s, t graph.NodeID) float64 {
	key := [2]graph.NodeID{s, t}
	c := ev.cache
	c.mu.Lock()
	if v, ok := c.mf[key]; ok {
		c.mu.Unlock()
		return v
	}
	c.mu.Unlock()
	net := maxflow.NewNetwork(ev.G.NumNodes())
	for _, e := range ev.G.Edges() {
		if ev.DAGs[t].Member[e.ID] {
			net.AddArc(int(e.From), int(e.To), e.Capacity)
		}
	}
	v := net.MaxFlow(int(s), int(t))
	c.mu.Lock()
	c.mf[key] = v
	c.mu.Unlock()
	return v
}

// MaxUtilization is MxLU(r, D) computed with the per-destination DAG flow
// propagation fanned across the evaluator's worker pool and its pooled
// flow buffers; bit-identical to r.MaxUtilization for any worker count.
func (ev *Evaluator) MaxUtilization(r *pdrouting.Routing, D *demand.Matrix) float64 {
	return r.ParallelMaxUtilization(D, ev.cfg.Workers, ev.edgeBuf, ev.nodeBuf)
}

// Result reports a worst-case evaluation.
type Result struct {
	Ratio   float64        // PERF estimate: max over adversarial DMs of MxLU/OPTDAG
	WorstDM *demand.Matrix // a demand matrix attaining Ratio
	MxLU    float64        // the routing's utilization on WorstDM
	Norm    float64        // OPTDAG(WorstDM)
}

// Perf estimates PERF(r, Box): the worst normalized utilization of the
// routing across the uncertainty set. The adversary combines per-link box
// corners, random corners, the box extremes, and all single-pair demand
// matrices (evaluated in closed form).
func (ev *Evaluator) Perf(r *pdrouting.Routing) Result {
	top := ev.PerfTop(r, 1)
	return top[0]
}

// PerfTop runs the same adversary as Perf but returns the k worst distinct
// demand scenarios found (best first). The adversarial optimization loop
// feeds several of them into the finite scenario set at once, which
// converges in far fewer outer rounds than one-at-a-time accumulation.
func (ev *Evaluator) PerfTop(r *pdrouting.Routing, k int) []Result {
	return ev.PerfTopCtx(context.Background(), r, k)
}

// PerfTopCtx is PerfTop with tracing: when ctx carries an obs.Tracer the
// adversary records one oblivious.adversary span covering the whole
// candidate fan-out (corner generation, parallel OPTDAG normalization,
// utilization propagation). The candidates themselves are evaluated in
// parallel, so the span is deliberately one per call, not one per
// candidate; nothing observed changes the verdict.
func (ev *Evaluator) PerfTopCtx(ctx context.Context, r *pdrouting.Routing, k int) []Result {
	_, span := obs.StartSpan(ctx, "oblivious.adversary")
	defer span.End()
	n := ev.G.NumNodes()
	nE := ev.G.NumEdges()
	workers := ev.cfg.Workers
	seq := ev.seq.Add(1)

	// Load coefficients coeff[t][s][e], one independent propagation per
	// destination.
	coeff := make([][][]float64, n)
	par.For(workers, n, func(t int) {
		coeff[t] = r.LoadCoeffs(graph.NodeID(t))
	})

	// Single-pair adversary, exact and closed-form: for demand d on (s,t),
	// MxLU = d·max_e coeff[t][s][e]/c_e and OPTDAG = d/maxflow(s,t), so the
	// ratio is maxflow(s,t)·max_e coeff/c — independent of d. Single-pair
	// matrices belong to the box only when its lower bounds are all zero
	// (the oblivious sets); skip them otherwise.
	var singles []Result
	if ev.Box.Min.Total() == 0 {
		perSource := make([][]Result, n)
		par.For(workers, n, func(s int) {
			for t := 0; t < n; t++ {
				if s == t || ev.Box.Max.At(graph.NodeID(s), graph.NodeID(t)) <= 0 {
					continue
				}
				peak := 0.0
				for e := 0; e < nE; e++ {
					u := coeff[t][s][e] / ev.G.Edge(graph.EdgeID(e)).Capacity
					if u > peak {
						peak = u
					}
				}
				mf := ev.pairMaxFlow(graph.NodeID(s), graph.NodeID(t))
				if mf <= 0 {
					continue
				}
				d := ev.Box.Max.At(graph.NodeID(s), graph.NodeID(t))
				perSource[s] = append(perSource[s], Result{
					Ratio:   peak * mf,
					WorstDM: demand.SinglePair(n, graph.NodeID(s), graph.NodeID(t), d),
					MxLU:    peak * d,
					Norm:    d / mf,
				})
			}
		})
		for _, rs := range perSource {
			singles = append(singles, rs...)
		}
		// Keep the strongest few; they are candidates for the top-k set.
		sort.SliceStable(singles, func(i, j int) bool { return singles[i].Ratio > singles[j].Ratio })
		if len(singles) > 8 {
			singles = singles[:8]
		}
	}

	// Corner candidates: the box maximum, the geometric midpoint (≈ the
	// base matrix of a margin box), one corner per link maximizing that
	// link's load, and the random corners. Corners are generated into
	// index-addressed slots in parallel, then deduplicated serially in a
	// fixed order.
	corners := make([]*demand.Matrix, 2+nE+ev.cfg.Samples)
	corners[0] = ev.Box.Max.Clone()
	mid := demand.NewMatrix(n)
	for i := range mid.D {
		mid.D[i] = math.Sqrt(ev.Box.Min.D[i] * ev.Box.Max.D[i])
	}
	corners[1] = mid
	par.For(workers, nE, func(e int) {
		corners[2+e] = ev.Box.Corner(func(s, t graph.NodeID) bool {
			return coeff[t][s][e] > 1e-12
		})
	})
	par.For(workers, ev.cfg.Samples, func(i int) {
		corners[2+nE+i] = ev.randomCorner(seq, i)
	})
	candidates := make([]*demand.Matrix, 0, len(corners))
	seen := make(map[uint64]bool)
	for _, D := range corners {
		if D.Total() <= 0 {
			continue
		}
		h := hashMatrix(D)
		if !seen[h] {
			seen[h] = true
			candidates = append(candidates, D)
		}
	}

	// Normalize and evaluate candidates in parallel. Every exact OPTDAG
	// solve warm-starts from the same basis snapshot (taken before the
	// fan-out) and the refreshed basis is published afterwards from the
	// highest-indexed fresh solve — never from whichever goroutine finished
	// last — so the numbers cannot depend on scheduling or worker count.
	type cand struct {
		ratio, mxlu, norm float64
		D                 *demand.Matrix
	}
	results := make([]cand, len(candidates))
	warmSnapshot := ev.cache.warmBasis()
	bases := make([]*lp.Basis, len(candidates))
	par.For(workers, len(candidates), func(i int) {
		D := candidates[i]
		norm, basis, _ := ev.optDAGWarm(D, warmSnapshot)
		bases[i] = basis
		if norm <= 0 || math.IsInf(norm, 1) {
			results[i] = cand{ratio: math.Inf(-1)}
			return
		}
		// The candidate fan-out already saturates the pool; a full-width
		// inner fan-out here would square the goroutine count for no
		// throughput. The serial propagation still reuses pooled buffers
		// and is bit-identical at any width.
		mxlu := r.ParallelMaxUtilization(D, 1, ev.edgeBuf, ev.nodeBuf)
		results[i] = cand{ratio: mxlu / norm, mxlu: mxlu, norm: norm, D: D}
	})
	for i := len(bases) - 1; i >= 0; i-- {
		if bases[i] != nil {
			ev.cache.setWarmBasis(bases[i])
			break
		}
	}
	span.Attr("k", k).Attr("candidates", len(candidates)).Attr("singles", len(singles))
	all := make([]Result, 0, len(results)+len(singles))
	all = append(all, singles...)
	for _, c := range results {
		if c.D != nil && !math.IsInf(c.ratio, -1) {
			all = append(all, Result{Ratio: c.ratio, WorstDM: c.D, MxLU: c.mxlu, Norm: c.norm})
		}
	}
	if len(all) == 0 {
		return []Result{{Ratio: math.Inf(-1)}}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Ratio > all[j].Ratio })
	if k < 1 {
		k = 1
	}
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// randomCorner materializes the sample-th random box corner of the seq-th
// PerfTop call. Corner bits come from a counter-mode splitmix64 stream
// keyed on (Seed, seq, sample), so every (call, sample) pair sees an
// independent corner and the choice is independent of which worker runs it.
func (ev *Evaluator) randomCorner(seq uint64, sample int) *demand.Matrix {
	state := splitmix64(uint64(ev.cfg.Seed)) ^ splitmix64(seq<<20^uint64(sample))
	var word uint64
	bits := 0
	ctr := uint64(0)
	return ev.Box.Corner(func(s, t graph.NodeID) bool {
		if bits == 0 {
			ctr++
			word = splitmix64(state + ctr)
			bits = 64
		}
		b := word&1 == 1
		word >>= 1
		bits--
		return b
	})
}

// splitmix64 is the SplitMix64 finalizer — a fast, well-mixed hash used as
// a counter-mode PRNG for deterministic corner sampling.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashMatrix fingerprints a demand matrix for caching.
func hashMatrix(D *demand.Matrix) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range D.D {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}
