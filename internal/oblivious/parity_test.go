package oblivious

import (
	"sync"
	"testing"

	"github.com/coyote-te/coyote/internal/dagx"
	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/gpopt"
	"github.com/coyote-te/coyote/internal/topo"
)

// evalAt runs a fixed serialized call sequence — ECMP Perf, PerfTop, and a
// short adversarial optimization — against a fresh evaluator with the given
// worker count, returning every ratio it produced.
func evalAt(t *testing.T, name string, workers int) []float64 {
	t.Helper()
	g, err := topo.Load(name)
	if err != nil {
		t.Fatal(err)
	}
	base := demand.Gravity(g, 1)
	box := demand.MarginBox(base, 2)
	dags := dagx.BuildAll(g, dagx.Augmented)
	cfg := EvalConfig{Samples: 4, Seed: 7, Workers: workers}
	ev := NewEvaluator(g, dags, box, cfg)

	var out []float64
	ecmp := ECMPOnDAGs(g, dags)
	out = append(out, ev.Perf(ecmp).Ratio)
	for _, res := range ev.PerfTop(ecmp, 3) {
		out = append(out, res.Ratio, res.MxLU, res.Norm)
	}
	routing, rep := OptimizeWithEvaluator(g, dags, ev, Options{
		Optimizer: gpopt.Config{Iters: 40},
		AdvIters:  2,
	})
	out = append(out, rep.Perf.Ratio)
	for t := range routing.Phi {
		out = append(out, routing.Phi[t]...)
	}
	return out
}

// TestEvaluatorWorkerParity asserts the tentpole's determinism contract at
// the evaluator level: the full adversarial evaluation pipeline produces
// bit-identical ratios and splitting vectors for any worker count, across
// several corpus topologies.
func TestEvaluatorWorkerParity(t *testing.T) {
	if testing.Short() {
		t.Skip("parity sweep in -short mode")
	}
	// Two topologies here; the public-API parity test at the repo root
	// covers three (the documented acceptance bar) end-to-end.
	for _, name := range []string{"NSF", "Abilene"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			serial := evalAt(t, name, 1)
			for _, workers := range []int{2, 4} {
				parallel := evalAt(t, name, workers)
				if len(parallel) != len(serial) {
					t.Fatalf("workers=%d: %d values, serial produced %d", workers, len(parallel), len(serial))
				}
				for i := range serial {
					if parallel[i] != serial[i] {
						t.Fatalf("workers=%d: value %d = %v, serial %v (must be bit-identical)", workers, i, parallel[i], serial[i])
					}
				}
			}
		})
	}
}

// TestEvaluatorConcurrentSmoke hammers one shared evaluator from many
// goroutines; run under -race it proves the caches, pools, and the
// per-destination fan-out are data-race free.
func TestEvaluatorConcurrentSmoke(t *testing.T) {
	g, err := topo.Load("NSF")
	if err != nil {
		t.Fatal(err)
	}
	base := demand.Gravity(g, 1)
	box := demand.MarginBox(base, 2)
	dags := dagx.BuildAll(g, dagx.Augmented)
	ev := NewEvaluator(g, dags, box, EvalConfig{Samples: 3, Seed: 1, Workers: 4})
	ecmp := ECMPOnDAGs(g, dags)

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			switch i % 3 {
			case 0:
				if r := ev.Perf(ecmp); r.Ratio < 1-1e-6 {
					t.Errorf("Perf ratio %v < 1", r.Ratio)
				}
			case 1:
				if u := ev.MaxUtilization(ecmp, box.Max); u <= 0 {
					t.Errorf("MaxUtilization = %v", u)
				}
			case 2:
				if v := ev.OptDAG(box.Max); v <= 0 {
					t.Errorf("OptDAG = %v", v)
				}
			}
		}(i)
	}
	wg.Wait()
}
