package oblivious

import (
	"math"
	"testing"

	"github.com/coyote-te/coyote/internal/dagx"
	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/lp"
	"github.com/coyote-te/coyote/internal/topo"
)

// slaveEvaluator builds an evaluator whose uncertainty box keeps only
// demand pairs into a handful of destinations, so the dense oracle stays
// tractable on the 30+ node corpus topologies while the slave-LP rows keep
// their full structure.
func slaveEvaluator(t *testing.T, name string, nDests int) *Evaluator {
	t.Helper()
	g, err := topo.Load(name)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumNodes()
	base := demand.Gravity(g, 1)
	keep := make(map[int]bool, nDests)
	for i := 0; i < nDests; i++ {
		keep[i*n/nDests] = true
	}
	for s := 0; s < n; s++ {
		for tt := 0; tt < n; tt++ {
			if !keep[tt] {
				base.D[s*n+tt] = 0
			}
		}
	}
	box := demand.MarginBox(base, 2)
	dags := dagx.BuildAll(g, dagx.Augmented)
	return NewEvaluator(g, dags, box, EvalConfig{Samples: 2, Seed: 3})
}

// TestSlaveLPSparseDenseParityCorpus runs the Appendix-C slave-LP
// formulation of every corpus topology through both engines — the shared
// Model solved sparse (with the per-link warm-start chain) and the dense
// full-tableau oracle — and requires identical per-link optima.
func TestSlaveLPSparseDenseParityCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus sweep in -short mode")
	}
	for _, name := range topo.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			ev := slaveEvaluator(t, name, 3)
			g := ev.G
			n := g.NumNodes()
			r := ECMPOnDAGs(g, ev.DAGs)
			coeff := make([][][]float64, n)
			actives := make([]bool, n)
			for tt := 0; tt < n; tt++ {
				coeff[tt] = r.LoadCoeffs(graph.NodeID(tt))
				for s := 0; s < n; s++ {
					if s != tt && ev.Box.Max.At(graph.NodeID(s), graph.NodeID(tt)) > 0 {
						actives[tt] = true
					}
				}
			}
			sl := ev.buildSlaveLP(actives)
			var basis *lp.Basis
			// Every 7th link bounds the dense-oracle cost; the rows are
			// identical across links, so coverage is not reduced.
			for e := 0; e < g.NumEdges(); e += 7 {
				sl.setObjective(ev, coeff, e)
				sparse, err := sl.model.Solve(&lp.SolveOptions{Basis: basis})
				if err != nil {
					t.Fatalf("edge %d sparse: %v", e, err)
				}
				basis = sparse.Basis
				dense, err := sl.model.SolveDense()
				if err != nil {
					t.Fatalf("edge %d dense: %v", e, err)
				}
				if sparse.Status != dense.Status {
					t.Fatalf("edge %d: sparse %v, dense %v", e, sparse.Status, dense.Status)
				}
				if sparse.Status != lp.Optimal {
					continue
				}
				tol := 1e-6 * (1 + math.Abs(dense.Objective))
				if math.Abs(sparse.Objective-dense.Objective) > tol {
					t.Fatalf("edge %d: sparse %.12g, dense %.12g", e, sparse.Objective, dense.Objective)
				}
			}
		})
	}
}

// TestPerfExactWarmMatchesCold proves the warm-start chain changes only
// the pivot paths, never the answer: PerfExact and PerfExactNoWarm agree
// on the worst-case ratio to solver tolerance.
func TestPerfExactWarmMatchesCold(t *testing.T) {
	for _, name := range []string{"Abilene", "NSF"} {
		ev := slaveEvaluator(t, name, 4)
		r := ECMPOnDAGs(ev.G, ev.DAGs)
		warm, err := ev.PerfExact(r)
		if err != nil {
			t.Fatalf("%s warm: %v", name, err)
		}
		cold, err := ev.PerfExactNoWarm(r)
		if err != nil {
			t.Fatalf("%s cold: %v", name, err)
		}
		if math.Abs(warm.Ratio-cold.Ratio) > 1e-7*(1+cold.Ratio) {
			t.Fatalf("%s: warm ratio %.12g, cold %.12g", name, warm.Ratio, cold.Ratio)
		}
	}
}

// TestPerfExactWarmChainHits asserts the basis chain actually fires: after
// the first link, warm starts must be accepted at a high rate.
func TestPerfExactWarmChainHits(t *testing.T) {
	ev := slaveEvaluator(t, "Abilene", 4)
	r := ECMPOnDAGs(ev.G, ev.DAGs)
	lp.ResetGlobalStats()
	if _, err := ev.PerfExact(r); err != nil {
		t.Fatal(err)
	}
	st := lp.GlobalStats()
	if st.WarmAttempts == 0 {
		t.Fatal("no warm starts attempted across the per-link chain")
	}
	if st.WarmHitRate() < 0.9 {
		t.Fatalf("warm hit rate %.2f (attempts %d, hits %d); expected ≥ 0.9 — the rows never change",
			st.WarmHitRate(), st.WarmAttempts, st.WarmHits)
	}
	if st.DenseFallbacks != 0 {
		t.Fatalf("%d dense fallbacks on the slave LP", st.DenseFallbacks)
	}
}
