package oblivious

import (
	"context"
	"math"

	"github.com/coyote-te/coyote/internal/dagx"
	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/gpopt"
	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/mcf"
	"github.com/coyote-te/coyote/internal/obs"
	"github.com/coyote-te/coyote/internal/pdrouting"
	"github.com/coyote-te/coyote/internal/spf"
)

// Options configures COYOTE's splitting-ratio computation.
type Options struct {
	Optimizer gpopt.Config // inner GP-style optimizer settings
	Eval      EvalConfig   // adversary settings
	AdvIters  int          // outer adversarial iterations (default 6)
	// Ctx, when it carries an obs.Tracer (obs.WithTracer), records one span
	// per pipeline stage of the adversarial loop — scenario seeding, each
	// optimize/adversary round, the final ECMP guarantee — plus the nested
	// gpopt and evaluator spans. Purely observational: results are
	// bit-identical with or without it. nil means no tracing.
	Ctx context.Context
	// Workers seeds Optimizer.Workers and Eval.Workers when they are
	// unset (≤ 0 = GOMAXPROCS; never changes results). Note that
	// OptimizeWithEvaluator's adversary is the caller-supplied evaluator,
	// which keeps its own EvalConfig.Workers — there the optimizer
	// inherits the evaluator's worker count instead, so one knob (set at
	// NewEvaluator) still governs the whole loop.
	Workers int
	// Warm, when non-nil and built for exactly the (graph, DAGs) being
	// optimized, is reused as the splitting optimizer: θ and the Adam
	// moments carry over from the previous recompute, so the loop refines
	// the prior solution instead of restarting from the near-ECMP init.
	// Its tuning is replaced by Optimizer. A non-matching Warm is ignored.
	Warm *gpopt.Optimizer
	// Carry seeds the finite scenario set with critical demand matrices
	// discovered by earlier recomputes (Report.Critical). Each is
	// re-normalized against the evaluator's OPTDAG; matrices that became
	// unroutable (e.g. after a failure) are silently dropped. This is the
	// Algorithm 1 critical-matrix accumulation extended across recomputes:
	// adversarial corners that still bind need not be re-discovered.
	Carry []*demand.Matrix
}

func (o Options) withDefaults() Options {
	if o.AdvIters <= 0 {
		o.AdvIters = 6
	}
	if o.Workers > 0 {
		if o.Eval.Workers == 0 {
			o.Eval.Workers = o.Workers
		}
		if o.Optimizer.Workers == 0 {
			o.Optimizer.Workers = o.Workers
		}
	}
	return o
}

// Report summarizes an OptimizeSplitting run.
type Report struct {
	Perf          Result // final worst-case evaluation of the returned routing
	OuterIters    int    // adversarial iterations executed
	ScenarioCount int    // scenarios accumulated in the finite optimization set
	ECMPFallback  bool   // true if plain ECMP evaluated no worse and was returned
	// ECMPPerf is the worst-case ratio of traditional ECMP over the same
	// DAGs and uncertainty set, evaluated as part of the no-worse-than-ECMP
	// guarantee (so callers need not re-run the adversary for it).
	ECMPPerf float64
	// Critical lists the demand matrices of the finite scenario set in
	// accumulation order — the critical matrices of Algorithm 1. Feed them
	// back through Options.Carry to warm-start the next recompute's
	// adversary.
	Critical []*demand.Matrix
	// Warm is the optimizer holding the final log-ratio/Adam state. Pass
	// it back through Options.Warm (with the same graph and DAGs) to
	// warm-start the next recompute.
	Warm *gpopt.Optimizer
}

// OptimizeSplitting runs COYOTE's in-DAG traffic-splitting optimization
// (§V-C): it alternates between optimizing the splitting ratios against a
// finite set of demand scenarios (gpopt) and growing that set with the
// current worst-case demand matrix (the Evaluator's adversary), mirroring
// the critical-matrix accumulation of Algorithm 1 and the finite-set
// handling of the geometric program in Appendix C.
//
// The returned routing is never worse (under the same evaluator) than
// traditional ECMP on the embedded shortest-path DAGs, fulfilling the
// paper's "no worse than standard OSPF/ECMP" guarantee.
func OptimizeSplitting(g *graph.Graph, dags []*dagx.DAG, box *demand.Box, opts Options) (*pdrouting.Routing, *Report) {
	opts = opts.withDefaults()
	ev := NewEvaluator(g, dags, box, opts.Eval)
	return optimizeWithEvaluator(g, dags, ev, opts)
}

// OptimizeWithEvaluator is OptimizeSplitting with a caller-supplied
// evaluator, letting experiment sweeps share OPTDAG caches.
func OptimizeWithEvaluator(g *graph.Graph, dags []*dagx.DAG, ev *Evaluator, opts Options) (*pdrouting.Routing, *Report) {
	opts = opts.withDefaults()
	return optimizeWithEvaluator(g, dags, ev, opts)
}

func optimizeWithEvaluator(g *graph.Graph, dags []*dagx.DAG, ev *Evaluator, opts Options) (*pdrouting.Routing, *Report) {
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, span := obs.StartSpan(ctx, "oblivious.optimize")
	defer span.End()

	n := g.NumNodes()
	report := &Report{}
	// The optimizer inherits the evaluator's worker pool size unless the
	// caller configured one explicitly, so a single Workers knob controls
	// the whole adversarial loop.
	if opts.Optimizer.Workers == 0 {
		opts.Optimizer.Workers = ev.cfg.Workers
	}

	var scenarios []gpopt.Scenario
	seen := make(map[uint64]bool)
	addScenario := func(D *demand.Matrix, norm float64) bool {
		if D == nil || D.Total() <= 0 || norm <= 0 || math.IsInf(norm, 1) {
			return false
		}
		h := hashMatrix(D)
		if seen[h] {
			return false
		}
		seen[h] = true
		scenarios = append(scenarios, gpopt.NewScenario(g, D, norm))
		report.Critical = append(report.Critical, D)
		return true
	}

	// Seed scenarios: the box extremes and the geometric midpoint (the
	// base matrix of a margin box).
	seedCtx, seedSpan := obs.StartSpan(ctx, "oblivious.seed")
	maxCorner := ev.Box.Max.Clone()
	addScenario(maxCorner, ev.OptDAG(maxCorner))
	mid := demand.NewMatrix(n)
	for i := range mid.D {
		mid.D[i] = math.Sqrt(ev.Box.Min.D[i] * ev.Box.Max.D[i])
	}
	addScenario(mid, ev.OptDAG(mid))

	// Carry-over: critical matrices from earlier recomputes enter the
	// finite set immediately (re-normalized for these DAGs), so adversarial
	// corners that still bind are not re-discovered over several rounds.
	for _, D := range opts.Carry {
		if D != nil && D.N == n {
			addScenario(D, ev.OptDAG(D))
		}
	}

	opt := opts.Warm
	if opt != nil && opt.Matches(g, dags) {
		opt.SetConfig(opts.Optimizer)
	} else {
		opt = gpopt.New(g, dags, opts.Optimizer)
	}
	report.Warm = opt

	// Seed the scenario set with the adversary's verdict on the initial
	// (near-ECMP) routing so the first optimization round already sees the
	// demand patterns that hurt traditional splitting.
	const topK = 4
	for _, res := range ev.PerfTopCtx(seedCtx, opt.Routing(), topK) {
		addScenario(res.WorstDM, res.Norm)
	}
	seedSpan.Attr("scenarios", len(scenarios)).End()

	var bestRouting *pdrouting.Routing
	bestRes := Result{Ratio: math.Inf(1)}
	for iter := 0; iter < opts.AdvIters; iter++ {
		report.OuterIters++
		roundCtx, roundSpan := obs.StartSpan(ctx, "oblivious.round")
		roundSpan.Attr("iter", iter).Attr("scenarios", len(scenarios))
		opt.RunCtx(roundCtx, scenarios)
		r := opt.Routing()
		top := ev.PerfTopCtx(roundCtx, r, topK)
		res := top[0]
		if res.Ratio < bestRes.Ratio {
			bestRes = res
			bestRouting = r
		}
		anyNew := false
		for _, cand := range top {
			if addScenario(cand.WorstDM, cand.Norm) {
				anyNew = true
			}
		}
		roundSpan.Attr("ratio", res.Ratio).Attr("new_scenarios", anyNew).End()
		if !anyNew {
			break // adversary found nothing new
		}
	}
	report.ScenarioCount = len(scenarios)

	// ECMP guarantee: traditional equal splitting over the embedded
	// shortest-path DAGs is a point of the solution space; never return
	// anything that evaluates worse.
	ecmpCtx, ecmpSpan := obs.StartSpan(ctx, "oblivious.ecmp_guarantee")
	ecmp := ECMPOnDAGs(g, dags)
	ecmpRes := ev.PerfTopCtx(ecmpCtx, ecmp, 1)[0]
	ecmpSpan.Attr("ratio", ecmpRes.Ratio).End()
	report.ECMPPerf = ecmpRes.Ratio
	if ecmpRes.Ratio < bestRes.Ratio {
		bestRes = ecmpRes
		bestRouting = ecmp
		report.ECMPFallback = true
	}
	if bestRouting == nil {
		bestRouting = ecmp
		bestRes = ecmpRes
		report.ECMPFallback = true
	}
	report.Perf = bestRes
	return bestRouting, report
}

// ECMPOnDAGs builds traditional ECMP — equal splitting over shortest-path
// next-hops under the graph's current weights — expressed over the given
// (typically augmented) DAGs so it can be evaluated and compared in the
// same normalization. Augmentation-only edges carry ratio zero.
func ECMPOnDAGs(g *graph.Graph, dags []*dagx.DAG) *pdrouting.Routing {
	r := pdrouting.NewZero(g, dags)
	for t := range dags {
		// Reuse the DAG's cached construction-time distance field when
		// present; only operator-supplied DAGs (FromEdges) pay a Dijkstra.
		tree := dags[t].Tree()
		if tree == nil {
			tree = spf.ToDestination(g, graph.NodeID(t))
		}
		spMember := tree.ShortestPathEdges(g)
		for u := 0; u < g.NumNodes(); u++ {
			if u == t {
				continue
			}
			var hops []graph.EdgeID
			for _, id := range dags[t].OutEdges(g, graph.NodeID(u)) {
				if spMember[id] {
					hops = append(hops, id)
				}
			}
			if len(hops) == 0 {
				// The augmented DAG contains the SP DAG, so this only
				// happens for nodes that cannot reach t at all; fall back
				// to uniform over whatever DAG edges exist.
				hops = dags[t].OutEdges(g, graph.NodeID(u))
				if len(hops) == 0 {
					continue
				}
			}
			share := 1 / float64(len(hops))
			for _, id := range hops {
				r.Phi[t][id] = share
			}
		}
	}
	return r
}

// BaseRouting computes the paper's "Base" baseline: the demands-aware
// optimal routing for a single base matrix (no uncertainty), realized as
// splitting ratios within the given DAGs. Figures 6–8 show how quickly it
// degrades as actual demands drift from the base.
func BaseRouting(g *graph.Graph, dags []*dagx.DAG, base *demand.Matrix, exactNodeLimit int, eps float64) (*pdrouting.Routing, error) {
	if exactNodeLimit <= 0 {
		exactNodeLimit = DefaultExactNodeLimit
	}
	if eps <= 0 {
		eps = 0.1
	}
	var flows [][]float64
	var err error
	if g.NumNodes() <= exactNodeLimit {
		_, flows, err = mcf.MinMLUExact(g, dags, base)
	} else {
		_, flows, err = mcf.MinMLUApprox(g, dags, base, eps)
	}
	if err != nil {
		return nil, err
	}
	r := pdrouting.NewZero(g, dags)
	uniform := pdrouting.Uniform(g, dags)
	for t := 0; t < g.NumNodes(); t++ {
		if flows[t] == nil {
			r.Phi[t] = uniform.Phi[t]
			continue
		}
		phi, err := pdrouting.FromFlows(g, dags[t], flows[t])
		if err != nil {
			return nil, err
		}
		r.Phi[t] = phi
	}
	return r, nil
}
