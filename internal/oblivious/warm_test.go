package oblivious

import (
	"testing"

	"github.com/coyote-te/coyote/internal/dagx"
	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/gpopt"
	"github.com/coyote-te/coyote/internal/topo"
)

// TestWithBoxSharesCaches checks that a box-swapped evaluator reuses the
// receiver's OPTDAG cache and evaluates correctly under the new box.
func TestWithBoxSharesCaches(t *testing.T) {
	g, err := topo.Load("NSF")
	if err != nil {
		t.Fatal(err)
	}
	dags := dagx.BuildAll(g, dagx.Augmented)
	base := demand.Gravity(g, 1)
	box1 := demand.MarginBox(base, 2)
	ev1 := NewEvaluator(g, dags, box1, EvalConfig{Samples: 2, Seed: 1})

	D := base.Clone()
	norm := ev1.OptDAG(D)

	box2 := demand.MarginBox(base.Clone().Scale(1.3), 2)
	ev2 := ev1.WithBox(box2)
	if ev2.cache != ev1.cache {
		t.Fatal("WithBox must share the OPTDAG/max-flow cache")
	}
	if got := ev2.OptDAG(D); got != norm {
		t.Fatalf("shared cache returned %v, want %v", got, norm)
	}
	if ev2.Box != box2 {
		t.Fatal("WithBox must install the new box")
	}

	// The derived evaluator must produce a finite, sane evaluation.
	r := ECMPOnDAGs(g, dags)
	res := ev2.Perf(r)
	if !(res.Ratio >= 1-1e-9) {
		t.Fatalf("PERF under the swapped box = %v, want ≥ 1", res.Ratio)
	}
}

// TestWarmCarryRecompute exercises Options.Warm and Options.Carry: a
// recompute on a perturbed box that reuses the previous optimizer state and
// critical matrices must stay within 1% of a cold recompute on the same
// inputs while running fewer optimizer iterations.
func TestWarmCarryRecompute(t *testing.T) {
	g, err := topo.Load("NSF")
	if err != nil {
		t.Fatal(err)
	}
	dags := dagx.BuildAll(g, dagx.Augmented)
	base := demand.Gravity(g, 1)
	evalCfg := EvalConfig{Samples: 4, Seed: 7}
	coldOpts := Options{
		Optimizer: gpopt.Config{Iters: 250},
		AdvIters:  4,
	}

	// Initial cold optimization.
	ev := NewEvaluator(g, dags, demand.MarginBox(base, 2), evalCfg)
	_, rep := OptimizeWithEvaluator(g, dags, ev, coldOpts)
	if rep.Warm == nil {
		t.Fatal("Report.Warm is nil")
	}
	if len(rep.Critical) == 0 {
		t.Fatal("Report.Critical is empty")
	}

	// Perturb the demand box and recompute warm (fewer iterations, carried
	// state) and cold (full effort, from scratch).
	perturbed := demand.MarginBox(base.Clone().Scale(1.2), 2.2)
	warmEv := ev.WithBox(perturbed)
	warmOpts := Options{
		Optimizer: gpopt.Config{Iters: 80},
		AdvIters:  2,
		Warm:      rep.Warm,
		Carry:     rep.Critical,
	}
	_, warmRep := OptimizeWithEvaluator(g, dags, warmEv, warmOpts)

	coldEv := NewEvaluator(g, dags, perturbed, evalCfg)
	_, coldRep := OptimizeWithEvaluator(g, dags, coldEv, coldOpts)

	if warmRep.Perf.Ratio > coldRep.Perf.Ratio*1.01 {
		t.Fatalf("warm recompute PERF %v worse than 1%% over cold %v",
			warmRep.Perf.Ratio, coldRep.Perf.Ratio)
	}
}

// TestWarmMismatchedOptimizerIgnored: a Warm optimizer built for different
// DAGs must be ignored, not crash or corrupt the run.
func TestWarmMismatchedOptimizerIgnored(t *testing.T) {
	g, err := topo.Load("NSF")
	if err != nil {
		t.Fatal(err)
	}
	dags := dagx.BuildAll(g, dagx.Augmented)
	otherDags := dagx.BuildAll(g, dagx.Augmented)
	stale := gpopt.New(g, otherDags, gpopt.Config{Iters: 10})

	box := demand.MarginBox(demand.Gravity(g, 1), 2)
	ev := NewEvaluator(g, dags, box, EvalConfig{Samples: 2, Seed: 1})
	_, rep := OptimizeWithEvaluator(g, dags, ev, Options{
		Optimizer: gpopt.Config{Iters: 40},
		AdvIters:  1,
		Warm:      stale,
	})
	if rep.Warm == stale {
		t.Fatal("mismatched warm optimizer should have been replaced")
	}
	if !(rep.Perf.Ratio >= 1-1e-9) {
		t.Fatalf("PERF = %v, want ≥ 1", rep.Perf.Ratio)
	}
}
