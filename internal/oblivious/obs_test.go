package oblivious

import (
	"context"
	"math"
	"testing"

	"github.com/coyote-te/coyote/internal/obs"
)

// TestPerfExactSpans covers the serial slave-LP chain's tracing: with a
// tracer in the context, PerfExactCtx must record one perf_exact span with
// an lp.solve child per link, and must return exactly the value of an
// untraced PerfExact on the same routing (tracing never touches the
// numeric path).
func TestPerfExactSpans(t *testing.T) {
	g, ids := fig1Graph()
	dags := fig1cDAGs(t, g, ids)
	r := goldenRouting(t, g, ids, dags)
	ev := NewEvaluator(g, dags, box02(g, ids), EvalConfig{Samples: 16, Seed: 1})

	plain, err := ev.PerfExact(r)
	if err != nil {
		t.Fatal(err)
	}

	tracer := obs.NewTracer()
	ctx := obs.WithTracer(context.Background(), tracer)
	traced, err := ev.PerfExactCtx(ctx, r)
	if err != nil {
		t.Fatal(err)
	}
	if traced.Ratio != plain.Ratio {
		t.Fatalf("traced PerfExact = %g, untraced = %g", traced.Ratio, plain.Ratio)
	}
	if math.Abs(traced.Ratio-(math.Sqrt(5)-1)) > 1e-6 {
		t.Fatalf("PerfExact = %g, want %g", traced.Ratio, math.Sqrt(5)-1)
	}

	var roots, solves int
	for _, rec := range tracer.Records() {
		switch rec.Name {
		case "oblivious.perf_exact":
			roots++
		case "lp.solve":
			solves++
		}
	}
	if roots != 1 {
		t.Fatalf("recorded %d perf_exact spans, want 1", roots)
	}
	if want := g.NumEdges(); solves != want {
		t.Fatalf("recorded %d lp.solve spans, want one per link (%d)", solves, want)
	}
}
