// Package wcmp approximates COYOTE's arbitrary traffic-splitting ratios
// with the equal-split ECMP mechanism by replicating next-hops through
// virtual links, the technique of Németh et al. [18] that §V-D and Fig. 10
// of the paper evaluate: with K additional virtual links per interface a
// next-hop may appear up to K+1 times in the FIB, so a node's realized
// split is m_i/Σm for integer multiplicities m_i ≤ K+1.
package wcmp

import (
	"fmt"
	"math"

	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/pdrouting"
)

// Quantize finds integer multiplicities m_i ≤ maxMult approximating the
// given ratios (non-negative, summing to ~1): it minimizes the maximum
// absolute ratio error over all achievable total sums. Ratios below a
// negligible mass may round to multiplicity zero (the next-hop is dropped);
// at least one multiplicity is always positive (the largest ratio).
func Quantize(ratios []float64, maxMult int) ([]int, error) {
	if maxMult < 1 {
		return nil, fmt.Errorf("wcmp: maxMult %d < 1", maxMult)
	}
	k := len(ratios)
	if k == 0 {
		return nil, nil
	}
	sum := 0.0
	argmax := 0
	for i, r := range ratios {
		if r < -1e-9 {
			return nil, fmt.Errorf("wcmp: negative ratio %g", r)
		}
		sum += r
		if r > ratios[argmax] {
			argmax = i
		}
	}
	if math.Abs(sum-1) > 1e-6 {
		return nil, fmt.Errorf("wcmp: ratios sum to %g", sum)
	}
	best := make([]int, k)
	best[argmax] = 1
	bestErr := math.Inf(1)
	cand := make([]int, k)
	// Sweep over total FIB entries S; round each ratio to the nearest
	// multiplicity, clamped to [0, maxMult], then repair the total by
	// largest-remainder adjustments.
	for S := 1; S <= k*maxMult; S++ {
		total := 0
		for i, r := range ratios {
			m := int(math.Round(r * float64(S)))
			if m > maxMult {
				m = maxMult
			}
			cand[i] = m
			total += m
		}
		if total == 0 {
			cand[argmax] = 1
			total = 1
		}
		e := maxErr(ratios, cand, total)
		if e < bestErr {
			bestErr = e
			copy(best, cand)
		}
	}
	return best, nil
}

func maxErr(ratios []float64, m []int, total int) float64 {
	worst := 0.0
	for i, r := range ratios {
		got := float64(m[i]) / float64(total)
		if d := math.Abs(got - r); d > worst {
			worst = d
		}
	}
	return worst
}

// QuantizedRouting holds a routing realized with integer multiplicities.
type QuantizedRouting struct {
	Routing *pdrouting.Routing
	// Mult[t][e] is edge e's FIB multiplicity toward destination t.
	Mult [][]int
	// VirtualLinks counts the additional (fake) next-hop replicas needed:
	// Σ max(m_i − 1, 0) over all (destination, node) FIB entries.
	VirtualLinks int
}

// Apply quantizes every node's splitting ratios in r with at most
// extraPerInterface additional virtual links per interface (multiplicity
// cap extraPerInterface + 1), returning the realizable routing. Fig. 10
// evaluates extraPerInterface ∈ {3, 5, 10}.
func Apply(r *pdrouting.Routing, extraPerInterface int) (*QuantizedRouting, error) {
	if extraPerInterface < 0 {
		return nil, fmt.Errorf("wcmp: negative extraPerInterface %d", extraPerInterface)
	}
	maxMult := extraPerInterface + 1
	g := r.G
	out := &QuantizedRouting{
		Routing: pdrouting.NewZero(g, r.DAGs),
		Mult:    make([][]int, len(r.DAGs)),
	}
	for t := range r.DAGs {
		out.Mult[t] = make([]int, g.NumEdges())
		d := r.DAGs[t]
		for u := 0; u < g.NumNodes(); u++ {
			if u == t {
				continue
			}
			edges := d.OutEdges(g, graph.NodeID(u))
			if len(edges) == 0 {
				continue
			}
			ratios := make([]float64, len(edges))
			sum := 0.0
			for i, id := range edges {
				ratios[i] = r.Phi[t][id]
				sum += ratios[i]
			}
			if sum <= 0 {
				continue
			}
			for i := range ratios {
				ratios[i] /= sum
			}
			mult, err := Quantize(ratios, maxMult)
			if err != nil {
				return nil, fmt.Errorf("wcmp: node %d toward %d: %w", u, t, err)
			}
			total := 0
			for _, m := range mult {
				total += m
			}
			for i, id := range edges {
				out.Mult[t][id] = mult[i]
				out.Routing.Phi[t][id] = float64(mult[i]) / float64(total)
				if mult[i] > 1 {
					out.VirtualLinks += mult[i] - 1
				}
			}
		}
	}
	return out, nil
}
