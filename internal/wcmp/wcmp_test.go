package wcmp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/coyote-te/coyote/internal/dagx"
	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/pdrouting"
)

func TestQuantizeFig1d(t *testing.T) {
	// The paper's Fig. 1d: ratios 2/3 and 1/3 realized with multiplicities
	// 2 and 1 (one extra virtual link).
	m, err := Quantize([]float64{2.0 / 3, 1.0 / 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	total := m[0] + m[1]
	if float64(m[0])/float64(total) != 2.0/3 {
		t.Fatalf("multiplicities %v do not realize 2/3:1/3", m)
	}
}

func TestQuantizeExactWhenRepresentable(t *testing.T) {
	m, err := Quantize([]float64{0.5, 0.25, 0.25}, 4)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, x := range m {
		total += x
	}
	for i, r := range []float64{0.5, 0.25, 0.25} {
		if math.Abs(float64(m[i])/float64(total)-r) > 1e-12 {
			t.Fatalf("m=%v total=%d does not realize %v exactly", m, total, r)
		}
	}
}

func TestQuantizeSingleNextHop(t *testing.T) {
	m, err := Quantize([]float64{1}, 1)
	if err != nil || len(m) != 1 || m[0] != 1 {
		t.Fatalf("m=%v err=%v, want [1]", m, err)
	}
}

func TestQuantizeRejectsBadInput(t *testing.T) {
	if _, err := Quantize([]float64{0.5, 0.5}, 0); err == nil {
		t.Fatal("maxMult 0 should fail")
	}
	if _, err := Quantize([]float64{0.9, 0.3}, 3); err == nil {
		t.Fatal("ratios summing to 1.2 should fail")
	}
	if _, err := Quantize([]float64{-0.1, 1.1}, 3); err == nil {
		t.Fatal("negative ratio should fail")
	}
}

// Property: quantization error shrinks (weakly) as the multiplicity budget
// grows, and at least one multiplicity is positive.
func TestPropertyQuantizeConverges(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(4)
		ratios := make([]float64, k)
		sum := 0.0
		for i := range ratios {
			ratios[i] = rng.Float64() + 0.01
			sum += ratios[i]
		}
		for i := range ratios {
			ratios[i] /= sum
		}
		prevErr := math.Inf(1)
		for _, mm := range []int{2, 4, 8, 16} {
			m, err := Quantize(ratios, mm)
			if err != nil {
				return false
			}
			total, any := 0, false
			for _, x := range m {
				total += x
				if x > 0 {
					any = true
				}
			}
			if !any {
				return false
			}
			e := maxErr(ratios, m, total)
			if e > prevErr+1e-12 {
				return false
			}
			prevErr = e
		}
		return prevErr <= 0.04 // 16 slots per hop: fine-grained
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func buildRouting(t *testing.T) (*graph.Graph, *pdrouting.Routing) {
	t.Helper()
	g := graph.New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	d := g.AddNode("d")
	g.AddLink(a, b, 1, 1)
	g.AddLink(a, c, 1, 1)
	g.AddLink(b, d, 1, 1)
	g.AddLink(c, d, 1, 1)
	dags := dagx.BuildAll(g, dagx.Augmented)
	r := pdrouting.Uniform(g, dags)
	// Skew a's split toward b: 0.7 / 0.3.
	ab, _ := g.FindEdge(a, b)
	ac, _ := g.FindEdge(a, c)
	if err := r.SetRatios(d, a, map[graph.EdgeID]float64{ab: 0.7, ac: 0.3}); err != nil {
		t.Fatal(err)
	}
	return g, r
}

func TestApplyProducesValidRouting(t *testing.T) {
	_, r := buildRouting(t)
	q, err := Apply(r, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Routing.Validate(); err != nil {
		t.Fatalf("quantized routing invalid: %v", err)
	}
	if q.VirtualLinks == 0 {
		t.Fatal("skewed ratios should need at least one virtual link")
	}
}

func TestApplyAccuracyImprovesWithBudget(t *testing.T) {
	g, r := buildRouting(t)
	a, _ := g.NodeByName("a")
	d, _ := g.NodeByName("d")
	ab, _ := g.FindEdge(a, graph.NodeID(1))
	var prev float64 = math.Inf(1)
	for _, k := range []int{1, 3, 10} {
		q, err := Apply(r, k)
		if err != nil {
			t.Fatal(err)
		}
		diff := math.Abs(q.Routing.Phi[d][ab] - 0.7)
		if diff > prev+1e-12 {
			t.Fatalf("error grew with budget %d: %g → %g", k, prev, diff)
		}
		prev = diff
	}
	if prev > 0.05 {
		t.Fatalf("10 virtual links should approximate 0.7 closely, err %g", prev)
	}
}

func TestApplyZeroBudgetDegradesToSinglePath(t *testing.T) {
	_, r := buildRouting(t)
	q, err := Apply(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	if q.VirtualLinks != 0 {
		t.Fatalf("budget 0 used %d virtual links", q.VirtualLinks)
	}
	if err := q.Routing.Validate(); err != nil {
		t.Fatal(err)
	}
}
