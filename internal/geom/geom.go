// Package geom provides the geometric-programming toolkit of Appendix C of
// the paper: posynomials, monomials, the condensation (monomial
// approximation) step used to turn signomial splitting-ratio constraints
// into GP-compatible ones, and numerically stable log-sum-exp utilities.
//
// The in-DAG optimizer (package gpopt) works in log space, where a
// posynomial constraint becomes a log-sum-exp of affine functions — "a
// logarithm of a sum of exponentials of linear functions and so is convex"
// (§V-C). geom keeps the symbolic side: it is used by tests that reproduce
// the paper's closed-form derivations (the golden-ratio solution of
// Appendix B) and by the condensation identities of Appendix C.
package geom

import (
	"fmt"
	"math"
)

// Monomial is c·Π x_j^{a_j} with c > 0.
type Monomial struct {
	Coeff float64
	Exp   map[int]float64 // variable index → exponent
}

// NewMonomial builds a monomial; the coefficient must be positive.
func NewMonomial(coeff float64, exp map[int]float64) Monomial {
	if coeff <= 0 {
		panic(fmt.Sprintf("geom: non-positive monomial coefficient %v", coeff))
	}
	cp := make(map[int]float64, len(exp))
	for k, v := range exp {
		if v != 0 {
			cp[k] = v
		}
	}
	return Monomial{Coeff: coeff, Exp: cp}
}

// Eval evaluates the monomial at a positive point x.
func (m Monomial) Eval(x []float64) float64 {
	v := m.Coeff
	for j, a := range m.Exp {
		v *= math.Pow(x[j], a)
	}
	return v
}

// Mul returns the product of two monomials.
func (m Monomial) Mul(o Monomial) Monomial {
	exp := make(map[int]float64, len(m.Exp)+len(o.Exp))
	for k, v := range m.Exp {
		exp[k] = v
	}
	for k, v := range o.Exp {
		exp[k] += v
	}
	return NewMonomial(m.Coeff*o.Coeff, exp)
}

// Posynomial is a sum of monomials.
type Posynomial struct {
	Terms []Monomial
}

// NewPosynomial builds a posynomial from monomials.
func NewPosynomial(terms ...Monomial) Posynomial {
	return Posynomial{Terms: append([]Monomial(nil), terms...)}
}

// Eval evaluates the posynomial at a positive point x.
func (p Posynomial) Eval(x []float64) float64 {
	s := 0.0
	for _, t := range p.Terms {
		s += t.Eval(x)
	}
	return s
}

// Add returns the posynomial sum.
func (p Posynomial) Add(o Posynomial) Posynomial {
	return Posynomial{Terms: append(append([]Monomial(nil), p.Terms...), o.Terms...)}
}

// MulMonomial multiplies every term by m.
func (p Posynomial) MulMonomial(m Monomial) Posynomial {
	out := Posynomial{Terms: make([]Monomial, len(p.Terms))}
	for i, t := range p.Terms {
		out.Terms[i] = t.Mul(m)
	}
	return out
}

// Condense computes the monomial approximation ("condensation") of the
// posynomial at the positive point x0, the key step of the paper's
// iterative MLGP (Appendix C): with weights θ_i = u_i(x0)/f(x0), the
// best local monomial approximation is f̂(x) = Π (u_i(x)/θ_i)^{θ_i}. The
// approximation is exact at x0 and underestimates f everywhere (AM–GM), so
// constraints 1 ≤ f condense into valid monomial constraints.
func (p Posynomial) Condense(x0 []float64) Monomial {
	f0 := p.Eval(x0)
	if f0 <= 0 {
		panic("geom: condensation at a point where the posynomial vanishes")
	}
	exp := make(map[int]float64)
	logCoeff := 0.0
	for _, t := range p.Terms {
		u := t.Eval(x0)
		theta := u / f0
		if theta == 0 {
			continue
		}
		// (u_i(x)/θ_i)^θ_i = (c_i/θ_i)^θ_i · Π x^{a_ij·θ_i}.
		logCoeff += theta * math.Log(t.Coeff/theta)
		for j, a := range t.Exp {
			exp[j] += a * theta
		}
	}
	return NewMonomial(math.Exp(logCoeff), exp)
}

// LogSumExp computes log(Σ exp(v_i)) stably.
func LogSumExp(v []float64) float64 {
	if len(v) == 0 {
		return math.Inf(-1)
	}
	mx := v[0]
	for _, x := range v[1:] {
		if x > mx {
			mx = x
		}
	}
	if math.IsInf(mx, -1) {
		return mx
	}
	s := 0.0
	for _, x := range v {
		s += math.Exp(x - mx)
	}
	return mx + math.Log(s)
}

// SmoothMax computes the temperature-τ soft maximum τ·log Σ exp(v_i/τ),
// which upper-bounds max(v) and converges to it as τ → 0.
func SmoothMax(v []float64, tau float64) float64 {
	if tau <= 0 {
		panic("geom: non-positive temperature")
	}
	scaled := make([]float64, len(v))
	for i, x := range v {
		scaled[i] = x / tau
	}
	return tau * LogSumExp(scaled)
}

// Softmax writes exp(v_i − max)/Σ into out (allocating if nil) and returns
// it. It is the gradient of LogSumExp and the reparameterization the
// splitting-ratio optimizer uses to keep Σφ = 1 exactly — the normalized
// monomial family produced by the paper's condensation of the
// splitting-ratio constraint.
func Softmax(v []float64, out []float64) []float64 {
	if out == nil {
		out = make([]float64, len(v))
	}
	if len(v) == 0 {
		return out
	}
	mx := v[0]
	for _, x := range v[1:] {
		if x > mx {
			mx = x
		}
	}
	s := 0.0
	for i, x := range v {
		out[i] = math.Exp(x - mx)
		s += out[i]
	}
	inv := 1 / s
	for i := range out {
		out[i] *= inv
	}
	return out
}
