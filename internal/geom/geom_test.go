package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMonomialEval(t *testing.T) {
	m := NewMonomial(2, map[int]float64{0: 1, 1: -1})
	x := []float64{3, 4}
	if got := m.Eval(x); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("Eval = %g, want 1.5", got)
	}
}

func TestMonomialMul(t *testing.T) {
	a := NewMonomial(2, map[int]float64{0: 1})
	b := NewMonomial(3, map[int]float64{0: 2, 1: 1})
	c := a.Mul(b)
	x := []float64{2, 5}
	want := a.Eval(x) * b.Eval(x)
	if got := c.Eval(x); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Mul eval = %g, want %g", got, want)
	}
}

func TestPosynomialEvalAdd(t *testing.T) {
	p := NewPosynomial(
		NewMonomial(1, map[int]float64{0: 1}),
		NewMonomial(2, map[int]float64{1: 1}),
	)
	x := []float64{3, 4}
	if got := p.Eval(x); math.Abs(got-11) > 1e-12 {
		t.Fatalf("Eval = %g, want 11", got)
	}
	q := p.Add(NewPosynomial(NewMonomial(5, nil)))
	if got := q.Eval(x); math.Abs(got-16) > 1e-12 {
		t.Fatalf("Add eval = %g, want 16", got)
	}
}

func TestCondenseExactAtPoint(t *testing.T) {
	p := NewPosynomial(
		NewMonomial(1, map[int]float64{0: 1}),
		NewMonomial(1, map[int]float64{1: 1}),
		NewMonomial(0.5, map[int]float64{0: 1, 1: 1}),
	)
	x0 := []float64{0.6, 0.4}
	m := p.Condense(x0)
	if math.Abs(m.Eval(x0)-p.Eval(x0)) > 1e-9 {
		t.Fatalf("condensation not exact at x0: %g vs %g", m.Eval(x0), p.Eval(x0))
	}
}

// The paper's Appendix C formula: condensing S(φ) = Σφ_i at φ0 gives
// exponents a_i = φ0_i/Σφ0 and coefficient k = Σφ0 / Π φ0^{a_i}.
func TestCondenseMatchesPaperFormula(t *testing.T) {
	phi0 := []float64{0.3, 0.7}
	sum := NewPosynomial(
		NewMonomial(1, map[int]float64{0: 1}),
		NewMonomial(1, map[int]float64{1: 1}),
	)
	m := sum.Condense(phi0)
	total := phi0[0] + phi0[1]
	wantA0 := phi0[0] / total
	wantA1 := phi0[1] / total
	if math.Abs(m.Exp[0]-wantA0) > 1e-12 || math.Abs(m.Exp[1]-wantA1) > 1e-12 {
		t.Fatalf("exponents (%g, %g), want (%g, %g)", m.Exp[0], m.Exp[1], wantA0, wantA1)
	}
	wantK := total / (math.Pow(phi0[0], wantA0) * math.Pow(phi0[1], wantA1))
	if math.Abs(m.Coeff-wantK) > 1e-9 {
		t.Fatalf("coefficient %g, want %g", m.Coeff, wantK)
	}
}

// Property: condensation underestimates the posynomial everywhere (AM–GM),
// and is exact at the expansion point.
func TestPropertyCondenseUnderestimates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nvars := 1 + rng.Intn(4)
		nterms := 1 + rng.Intn(4)
		terms := make([]Monomial, nterms)
		for i := range terms {
			exp := map[int]float64{}
			for j := 0; j < nvars; j++ {
				if rng.Intn(2) == 0 {
					exp[j] = float64(rng.Intn(5)) - 2
				}
			}
			terms[i] = NewMonomial(0.1+rng.Float64()*3, exp)
		}
		p := NewPosynomial(terms...)
		x0 := make([]float64, nvars)
		for j := range x0 {
			x0[j] = 0.1 + rng.Float64()*3
		}
		m := p.Condense(x0)
		if math.Abs(m.Eval(x0)-p.Eval(x0)) > 1e-6*p.Eval(x0) {
			return false
		}
		for trial := 0; trial < 20; trial++ {
			x := make([]float64, nvars)
			for j := range x {
				x[j] = 0.1 + rng.Float64()*3
			}
			if m.Eval(x) > p.Eval(x)*(1+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLogSumExpStable(t *testing.T) {
	// Large values must not overflow.
	v := []float64{1000, 1000}
	if got := LogSumExp(v); math.Abs(got-(1000+math.Log(2))) > 1e-9 {
		t.Fatalf("LogSumExp = %g, want %g", got, 1000+math.Log(2))
	}
	if got := LogSumExp(nil); !math.IsInf(got, -1) {
		t.Fatalf("LogSumExp(nil) = %g, want -Inf", got)
	}
}

func TestSmoothMaxBounds(t *testing.T) {
	v := []float64{1, 2, 3}
	for _, tau := range []float64{1, 0.1, 0.01} {
		sm := SmoothMax(v, tau)
		if sm < 3 {
			t.Fatalf("SmoothMax(τ=%g) = %g < max", tau, sm)
		}
		if sm > 3+tau*math.Log(3)+1e-12 {
			t.Fatalf("SmoothMax(τ=%g) = %g exceeds max + τ·log n", tau, sm)
		}
	}
}

func TestSoftmaxNormalized(t *testing.T) {
	v := []float64{0.5, -1, 2}
	p := Softmax(v, nil)
	sum := 0.0
	for _, x := range p {
		sum += x
		if x <= 0 {
			t.Fatalf("softmax produced non-positive mass %g", x)
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("softmax sums to %g", sum)
	}
	if !(p[2] > p[0] && p[0] > p[1]) {
		t.Fatalf("softmax not order preserving: %v", p)
	}
}

// Property: softmax is invariant to constant shifts and sums to 1.
func TestPropertySoftmaxShiftInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		v := make([]float64, n)
		shifted := make([]float64, n)
		c := rng.NormFloat64() * 10
		for i := range v {
			v[i] = rng.NormFloat64() * 5
			shifted[i] = v[i] + c
		}
		a := Softmax(v, nil)
		b := Softmax(shifted, nil)
		sum := 0.0
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-9 {
				return false
			}
			sum += a[i]
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
