package exp

import (
	"fmt"

	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/par"
	"github.com/coyote-te/coyote/internal/scen"
	"github.com/coyote-te/coyote/internal/strategy"
	"github.com/coyote-te/coyote/internal/topo"
)

// The portfolio experiments are the ROADMAP's strategy head-to-head: every
// registered TE strategy (internal/strategy) built once per scenario cell
// and replayed against the same demand sequence. A cell's number is the
// worst ratio, over the sequence, of the strategy's max link utilization to
// the per-matrix OPT oracle's (exact min-MLU within the augmented DAGs) —
// 1.00 means demands-aware-optimal on every step, bigger is worse. Adaptive
// strategies (semi-oblivious, opt) re-solve rates per step via Apply.

// portfolioSteps is the length of each cell's diurnal demand sequence.
const portfolioSteps = 4

// portfolioCell is one scenario: a topology (possibly degraded by a
// failure set), its uncertainty box, and the demand sequence to replay.
type portfolioCell struct {
	name string
	g    *graph.Graph
	box  *demand.Box
	dms  []*demand.Matrix
}

// newPortfolioCell assembles a cell: margin-2 box around the base matrix,
// diurnal sequence sampled inside it.
func newPortfolioCell(name string, g *graph.Graph, model string, cfg Config) (portfolioCell, error) {
	base, err := baseMatrix(g, model, cfg.Seed)
	if err != nil {
		return portfolioCell{}, err
	}
	box := demand.MarginBox(base, 2)
	return portfolioCell{
		name: name,
		g:    g,
		box:  box,
		dms:  scen.TimeOfDay(box, portfolioSteps, 0.1, cfg.Seed),
	}, nil
}

// portfolioStrategies resolves cfg.Strategies (default: every registered
// strategy, sorted — so "opt" is always a column of the default table).
func portfolioStrategies(cfg Config) []string {
	if len(cfg.Strategies) > 0 {
		return cfg.Strategies
	}
	return strategy.Names()
}

func (c Config) strategyConfig() strategy.Config {
	return strategy.Config{
		Seed:     c.Seed,
		Workers:  c.Workers,
		OptIters: c.OptIters,
		AdvIters: c.AdvIters,
		Samples:  c.Samples,
		Eps:      c.Eps,
	}
}

// portfolioTable evaluates every strategy on every cell: rows are cells,
// columns are strategies, values are worst-over-sequence MLU ratios vs the
// OPT oracle.
func portfolioTable(title string, cells []portfolioCell, cfg Config) (*Table, error) {
	names := portfolioStrategies(cfg)
	// Stage 1: the per-step OPT oracle MLUs, one unit per cell.
	optMLU := make([][]float64, len(cells))
	errs := make([]error, len(cells))
	par.For(cfg.Workers, len(cells), func(i int) {
		oracle, err := strategy.New("opt", cfg.strategyConfig())
		if err != nil {
			errs[i] = err
			return
		}
		plan, err := strategy.Build(oracle, cells[i].g, cells[i].box)
		if err != nil {
			errs[i] = fmt.Errorf("cell %s: opt oracle: %w", cells[i].name, err)
			return
		}
		mlus := make([]float64, len(cells[i].dms))
		for k, dm := range cells[i].dms {
			r, err := plan.Route(dm)
			if err != nil {
				errs[i] = fmt.Errorf("cell %s step %d: opt oracle: %w", cells[i].name, k, err)
				return
			}
			mlus[k] = r.MaxUtilization(dm)
		}
		optMLU[i] = mlus
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Stage 2: one unit per (cell, strategy); each builds its plan and
	// replays the cell's sequence, keeping the worst ratio.
	type unit struct{ cell, strat int }
	units := make([]unit, 0, len(cells)*len(names))
	for ci := range cells {
		for si := range names {
			units = append(units, unit{ci, si})
		}
	}
	vals := make([]float64, len(units))
	uerrs := make([]error, len(units))
	par.For(cfg.Workers, len(units), func(u int) {
		ci, si := units[u].cell, units[u].strat
		cell := cells[ci]
		s, err := strategy.New(names[si], cfg.strategyConfig())
		if err != nil {
			uerrs[u] = err
			return
		}
		plan, err := strategy.Build(s, cell.g, cell.box)
		if err != nil {
			uerrs[u] = fmt.Errorf("cell %s: %s: %w", cell.name, names[si], err)
			return
		}
		worst := 0.0
		for k, dm := range cell.dms {
			r, err := strategy.Apply(names[si], plan, dm)
			if err != nil {
				uerrs[u] = fmt.Errorf("cell %s step %d: %s: %w", cell.name, k, names[si], err)
				return
			}
			if ratio := r.MaxUtilization(dm) / optMLU[ci][k]; ratio > worst {
				worst = ratio
			}
		}
		vals[u] = worst
	})
	for _, err := range uerrs {
		if err != nil {
			return nil, err
		}
	}

	out := &Table{
		Title:   title,
		Columns: append([]string{"scenario"}, names...),
	}
	for ci, cell := range cells {
		row := []string{cell.name}
		for si := range names {
			row = append(row, f2(vals[ci*len(names)+si]))
		}
		out.AddRow(row...)
	}
	return out, nil
}

// Portfolio is the baseline head-to-head: real backbone × generated WAN,
// gravity × hotspot demand regimes, no failures.
func Portfolio(cfg Config) (*Table, error) {
	abilene, err := topo.Load("Abilene")
	if err != nil {
		return nil, err
	}
	// Barabási–Albert with m=2 is bridgeless at this size: a tree-like
	// topology (e.g. small Waxman draws) admits essentially one routing
	// and would flatten every column to 1.00.
	ba, err := scen.Generate("ba", scen.Params{N: 12, M: 2, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	var cells []portfolioCell
	for _, spec := range []struct {
		name  string
		g     *graph.Graph
		model string
	}{
		{"Abilene/gravity", abilene, "gravity"},
		{"ba-12/hotspot", ba, "hotspot"},
	} {
		cell, err := newPortfolioCell(spec.name, spec.g, spec.model, cfg)
		if err != nil {
			return nil, err
		}
		cells = append(cells, cell)
	}
	return portfolioTable(
		fmt.Sprintf("Portfolio head-to-head — worst MLU ratio vs OPT over %d diurnal steps, margin-2 box", portfolioSteps),
		cells, cfg)
}

// PortfolioFailures replays the head-to-head on failure-degraded
// survivors: links of a generated WAN are failed one at a time, every
// strategy is rebuilt on each survivor, and the sequence replayed there.
// Failures that partition the network are skipped — a partitioned survivor
// has no routing to compare — and the suite is capped at two survivor
// cells so the campaign stays golden-corpus fast.
func PortfolioFailures(cfg Config) (*Table, error) {
	g, err := scen.Generate("ba", scen.Params{N: 12, M: 2, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	suite, err := scen.KLinkFailures(g, 1)
	if err != nil {
		return nil, err
	}
	var cells []portfolioCell
	for _, fs := range suite {
		if len(cells) >= 2 {
			break
		}
		survivor := g.WithoutLinks(fs.Links)
		if !survivor.Connected() {
			continue
		}
		cell, err := newPortfolioCell(
			fmt.Sprintf("ba-12/%s", fs.Name),
			survivor, "gravity", cfg)
		if err != nil {
			return nil, err
		}
		cells = append(cells, cell)
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("exp: every single-link failure partitions the network (seed %d)", cfg.Seed)
	}
	return portfolioTable(
		fmt.Sprintf("Portfolio under failure — single-link survivors, worst MLU ratio vs OPT over %d diurnal steps", portfolioSteps),
		cells, cfg)
}
