package exp

import (
	"fmt"
	"time"

	"github.com/coyote-te/coyote/internal/dagx"
	"github.com/coyote-te/coyote/internal/delta"
	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/oblivious"
	"github.com/coyote-te/coyote/internal/scen"
)

// ServeDrift replays a time-of-day demand sequence from the scenario
// engine through an online-controller Session (internal/delta): at each
// step, the operator's uncertainty box re-centers on the observed demand
// and the session recomputes warm — previous log-ratio/Adam state,
// carried critical matrices, shared OPTDAG cache — while a cold batch
// recompute on the same box provides the reference. The table records the
// warm-vs-cold PERF and wall-clock cost, and the LSA churn of realizing
// each step's configuration (fibbing.Diff against the previous step).
//
// PERF columns are deterministic for a fixed seed and worker count; the
// ms columns are wall-clock measurements and vary run to run.
func ServeDrift(p scen.Params, steps int, cfg Config) (*Table, error) {
	p.Seed = cfg.Seed
	g, err := scen.Generate("grid", p)
	if err != nil {
		return nil, err
	}
	base, err := baseMatrix(g, "gravity", cfg.Seed)
	if err != nil {
		return nil, err
	}
	dayBox := demand.MarginBox(base, 2)

	ses, err := delta.NewSession(g, dayBox, delta.Config{
		OptIters: cfg.OptIters,
		AdvIters: cfg.AdvIters,
		Samples:  cfg.Samples,
		Eps:      cfg.Eps,
		Seed:     cfg.Seed,
		Workers:  cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	if _, err := ses.Lies(3); err != nil { // baseline lie set for churn diffs
		return nil, err
	}

	out := &Table{
		Title: fmt.Sprintf("serve-drift — grid %dx%d, %d time-of-day steps (warm session vs cold recompute)",
			p.Rows, p.Cols, steps),
		Columns: []string{"step", "warm-PERF", "cold-PERF", "warm-ms", "cold-ms", "churn", "LSAs"},
	}

	// The drifting operator view: at each step the box narrows to ±25%
	// around the observed demand matrix.
	const stepMargin = 1.25
	dags := dagx.BuildAll(g, dagx.Augmented)
	for i, D := range scen.TimeOfDay(dayBox, steps, 0.1, cfg.Seed) {
		stepBox := demand.MarginBox(D, stepMargin)

		warmStart := time.Now()
		ev, err := ses.UpdateBounds(stepBox)
		if err != nil {
			return nil, err
		}
		warmMs := time.Since(warmStart)

		coldStart := time.Now()
		coldEv := oblivious.NewEvaluator(g, dags, stepBox, cfg.evalConfig())
		_, coldRep := oblivious.OptimizeWithEvaluator(g, dags, coldEv, cfg.options())
		coldMs := time.Since(coldStart)

		lies, err := ses.Lies(3)
		if err != nil {
			return nil, err
		}
		out.AddRow(
			fmt.Sprintf("t%02d", i),
			f2(ev.Perf),
			f2(coldRep.Perf.Ratio),
			fmt.Sprintf("%d", warmMs.Milliseconds()),
			fmt.Sprintf("%d", coldMs.Milliseconds()),
			fmt.Sprint(lies.Diff.Churn()),
			fmt.Sprint(lies.FakeNodes),
		)
	}
	return out, nil
}
