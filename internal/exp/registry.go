package exp

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"github.com/coyote-te/coyote/internal/scen"
)

// Runner produces one experiment's table under a configuration.
type Runner func(cfg Config) (*Table, error)

// registry maps experiment IDs (DESIGN.md §3) to runners.
var registry = map[string]Runner{
	"running": RunningExample,
	"fig6":    Fig6,
	"fig7":    Fig7,
	"fig8":    Fig8,
	"fig9": func(cfg Config) (*Table, error) {
		// Fig. 9 spans margins 1–5.
		cfg.Margins = []float64{1, 1.5, 2, 2.5, 3, 3.5, 4, 4.5, 5}
		return Fig9(cfg)
	},
	"fig10": func(cfg Config) (*Table, error) { return Fig10(cfg, nil) },
	"fig11": func(cfg Config) (*Table, error) { return Fig11(cfg, nil) },
	"fig12": Fig12,
	"table1": func(cfg Config) (*Table, error) {
		// Table I spans margins 1–5 in 0.5 increments.
		cfg.Margins = []float64{1, 1.5, 2, 2.5, 3, 3.5, 4, 4.5, 5}
		return Table1(cfg, nil)
	},
	"ablation-dag": func(cfg Config) (*Table, error) {
		return AblationDAG("Geant", cfg)
	},
	"ablation-adv": AblationAdversary,
	"failover": func(cfg Config) (*Table, error) {
		return Failover("NSF", cfg)
	},
	"negative-np": func(cfg Config) (*Table, error) {
		// W = {3,5,8}: positive BIPARTITION instance (8 = 3+5).
		return NPGadget([]float64{3, 5, 8}, map[int]bool{2: true})
	},
	"negative-path": func(cfg Config) (*Table, error) {
		return PathLowerBound(6)
	},
	// Scenario-engine sweeps (internal/scen): generated topologies and
	// workload suites through the same parallel evaluator. Sizes are kept
	// modest so `-all` stays tractable; cmd/coyote-scen sweeps arbitrary
	// parameters.
	"scen-waxman": func(cfg Config) (*Table, error) {
		return ScenSweep("waxman", scen.Params{N: 16}, "gravity", cfg)
	},
	"scen-ba": func(cfg Config) (*Table, error) {
		return ScenSweep("ba", scen.Params{N: 16, M: 2}, "gravity", cfg)
	},
	"scen-fattree": func(cfg Config) (*Table, error) {
		return ScenSweep("fattree", scen.Params{K: 4}, "hotspot", cfg)
	},
	"scen-grid-day": func(cfg Config) (*Table, error) {
		return ScenTimeOfDay(scen.Params{Rows: 4, Cols: 4}, 12, cfg)
	},
	"scen-srlg": func(cfg Config) (*Table, error) {
		return ScenSRLG(scen.Params{N: 10, M: 4}, 5, cfg)
	},
	// Online-controller drift replay (internal/delta): warm incremental
	// recomputation vs cold batch recomputation over a day of demand.
	"serve-drift": func(cfg Config) (*Table, error) {
		return ServeDrift(scen.Params{Rows: 3, Cols: 4}, 8, cfg)
	},
	// TE strategy portfolio (internal/strategy): every registered strategy
	// head-to-head, normalized by the per-matrix OPT oracle.
	"portfolio":          Portfolio,
	"portfolio-failures": PortfolioFailures,
}

// IDs returns the registered experiment IDs, sorted.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// ErrUnknownID is returned (wrapped) by Run when asked for an experiment ID
// that is not in the registry. Callers can detect it with errors.Is; the
// wrapped message lists every valid ID.
var ErrUnknownID = errors.New("unknown experiment ID")

// Run executes the experiment with the given ID under cfg. The registered
// IDs (see EXPERIMENTS.md for what each reproduces) are:
//
//	running        — Fig. 1 / Appendix B running example
//	fig6           — Fig. 6: Geant, gravity model, PERF vs margin
//	fig7           — Fig. 7: Digex, gravity model, PERF vs margin
//	fig8           — Fig. 8: AS1755, bimodal model, PERF vs margin
//	fig9           — Fig. 9: Abilene, local-search heuristic, margins 1–5
//	fig10          — Fig. 10: virtual next-hop quantization on AS1755
//	fig11          — Fig. 11: average path stretch vs ECMP
//	fig12          — Fig. 12: §VII prototype emulation
//	table1         — Table I: corpus × margin sweep, margins 1–5
//	ablation-dag   — DAG-augmentation ablation (Geant)
//	ablation-adv   — sampled vs exact slave-LP adversary (Abilene)
//	failover       — per-link failure configurations (NSF)
//	negative-np    — Theorem 1 NP-hardness gadget
//	negative-path  — Theorem 4 path lower bound
//	scen-waxman    — margin sweep on a generated Waxman WAN
//	scen-ba        — margin sweep on a Barabási–Albert graph
//	scen-fattree   — hotspot-demand sweep on a k=4 fat-tree fabric
//	scen-grid-day  — time-of-day sequence vs one static config (grid WAN)
//	scen-srlg      — shared-risk link-group failures on a ring WAN
//	serve-drift    — online controller: warm vs cold recompute over a
//	                 time-of-day drift, with LSA churn per step
//	portfolio      — strategy × scenario head-to-head, MLU ratios vs OPT
//	portfolio-failures — the same head-to-head on link-failure survivors
//
// An unregistered ID yields an error wrapping ErrUnknownID that lists the
// valid IDs.
func Run(id string, cfg Config) (*Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("exp: %w %q (valid IDs: %s)", ErrUnknownID, id, strings.Join(IDs(), ", "))
	}
	return r(cfg)
}
