package exp

import (
	"fmt"
	"sort"
)

// Runner produces one experiment's table under a configuration.
type Runner func(cfg Config) (*Table, error)

// registry maps experiment IDs (DESIGN.md §3) to runners.
var registry = map[string]Runner{
	"running": RunningExample,
	"fig6":    Fig6,
	"fig7":    Fig7,
	"fig8":    Fig8,
	"fig9": func(cfg Config) (*Table, error) {
		// Fig. 9 spans margins 1–5.
		cfg.Margins = []float64{1, 1.5, 2, 2.5, 3, 3.5, 4, 4.5, 5}
		return Fig9(cfg)
	},
	"fig10": func(cfg Config) (*Table, error) { return Fig10(cfg, nil) },
	"fig11": func(cfg Config) (*Table, error) { return Fig11(cfg, nil) },
	"fig12": Fig12,
	"table1": func(cfg Config) (*Table, error) {
		// Table I spans margins 1–5 in 0.5 increments.
		cfg.Margins = []float64{1, 1.5, 2, 2.5, 3, 3.5, 4, 4.5, 5}
		return Table1(cfg, nil)
	},
	"ablation-dag": func(cfg Config) (*Table, error) {
		return AblationDAG("Geant", cfg)
	},
	"ablation-adv": AblationAdversary,
	"failover": func(cfg Config) (*Table, error) {
		return Failover("NSF", cfg)
	},
	"negative-np": func(cfg Config) (*Table, error) {
		// W = {3,5,8}: positive BIPARTITION instance (8 = 3+5).
		return NPGadget([]float64{3, 5, 8}, map[int]bool{2: true})
	},
	"negative-path": func(cfg Config) (*Table, error) {
		return PathLowerBound(6)
	},
}

// IDs returns the registered experiment IDs, sorted.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes the experiment with the given ID.
func Run(id string, cfg Config) (*Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("exp: unknown experiment %q (have %v)", id, IDs())
	}
	return r(cfg)
}
