package exp

import (
	"time"

	"github.com/coyote-te/coyote/internal/dagx"
	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/oblivious"
	"github.com/coyote-te/coyote/internal/topo"
)

// AblationAdversary compares the production corner-sampling adversary
// against the exact per-link slave LP of Appendix C on a small topology:
// the estimated PERF (a lower bound) versus the exact value, and their
// runtimes. This quantifies the accuracy cost of the substitution
// documented in DESIGN.md §2.5.
func AblationAdversary(cfg Config) (*Table, error) {
	g, err := topo.Load("Abilene")
	if err != nil {
		return nil, err
	}
	base, err := baseMatrix(g, "gravity", cfg.Seed)
	if err != nil {
		return nil, err
	}
	dags := dagx.BuildAll(g, dagx.Augmented)
	ecmp := oblivious.ECMPOnDAGs(g, dags)
	out := &Table{
		Title:   "Ablation — corner-sampling adversary vs exact slave LP (Abilene, ECMP)",
		Columns: []string{"margin", "sampled PERF", "exact PERF", "gap", "t(sample)", "t(LP)"},
	}
	// Rows stay serial on purpose: this experiment reports wall-clock
	// timings, and overlapping rows would contaminate them. The evaluator
	// itself still uses the configured worker pool.
	for _, margin := range cfg.Margins {
		box := demand.MarginBox(base, margin)
		ev := oblivious.NewEvaluator(g, dags, box, cfg.evalConfig())
		t0 := time.Now()
		sampled := ev.Perf(ecmp)
		tSample := time.Since(t0)
		t1 := time.Now()
		exact, err := ev.PerfExact(ecmp)
		if err != nil {
			return nil, err
		}
		tLP := time.Since(t1)
		gap := 0.0
		if exact.Ratio > 0 {
			gap = 1 - sampled.Ratio/exact.Ratio
		}
		out.AddRow(f1(margin), f2(sampled.Ratio), f2(exact.Ratio), f2(gap),
			tSample.Round(time.Millisecond).String(), tLP.Round(time.Millisecond).String())
	}
	return out, nil
}
