package exp

import (
	"math"

	"github.com/coyote-te/coyote/internal/dagx"
	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/gpopt"
	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/oblivious"
	"github.com/coyote-te/coyote/internal/pdrouting"
)

// RunningExample reproduces the paper's running example end to end
// (Fig. 1, §II, Appendix B): ECMP's worst case, the hand-crafted Fig. 1c
// ratios, the analytic golden-ratio optimum, and what the optimizer finds.
func RunningExample(cfg Config) (*Table, error) {
	g := graph.New()
	s1 := g.AddNode("s1")
	s2 := g.AddNode("s2")
	v := g.AddNode("v")
	t := g.AddNode("t")
	g.AddLink(s1, s2, 1, 1)
	g.AddLink(s1, v, 1, 1)
	g.AddLink(s2, v, 1, 1)
	g.AddLink(s2, t, 1, 1)
	g.AddLink(v, t, 1, 1)

	// The Fig. 1c DAG toward t.
	member := make([]bool, g.NumEdges())
	for _, pair := range [][2]graph.NodeID{{s1, s2}, {s1, v}, {s2, v}, {s2, t}, {v, t}} {
		id, _ := g.FindEdge(pair[0], pair[1])
		member[id] = true
	}
	fig1c, err := dagx.FromEdges(g, t, member)
	if err != nil {
		return nil, err
	}
	dags := dagx.BuildAll(g, dagx.Augmented)
	dags[t] = fig1c

	min := demand.NewMatrix(g.NumNodes())
	max := demand.NewMatrix(g.NumNodes())
	max.Set(s1, t, 2)
	max.Set(s2, t, 2)
	box := demand.NewBox(min, max)
	ev := oblivious.NewEvaluator(g, dags, box, cfg.evalConfig())

	out := &Table{
		Title:   "Running example (Fig. 1) — oblivious performance over demands [0,2]²",
		Columns: []string{"routing", "PERF", "paper"},
	}

	// ECMP on the Fig. 1c DAG's shortest-path subset.
	ecmp := oblivious.ECMPOnDAGs(g, dags)
	out.AddRow("ECMP (unit weights)", f2(ev.Perf(ecmp).Ratio), "2.00")

	// Fig. 1c hand-tuned ratios (2/3, 1/3).
	fig1cRouting := pdrouting.Uniform(g, dags)
	es1s2, _ := g.FindEdge(s1, s2)
	es1v, _ := g.FindEdge(s1, v)
	es2t, _ := g.FindEdge(s2, t)
	es2v, _ := g.FindEdge(s2, v)
	evt, _ := g.FindEdge(v, t)
	if err := fig1cRouting.SetRatios(t, s1, map[graph.EdgeID]float64{es1s2: 0.5, es1v: 0.5}); err != nil {
		return nil, err
	}
	if err := fig1cRouting.SetRatios(t, s2, map[graph.EdgeID]float64{es2t: 2.0 / 3, es2v: 1.0 / 3}); err != nil {
		return nil, err
	}
	if err := fig1cRouting.SetRatios(t, v, map[graph.EdgeID]float64{evt: 1}); err != nil {
		return nil, err
	}
	out.AddRow("Fig. 1c ratios", f2(ev.Perf(fig1cRouting).Ratio), "1.33")

	// Appendix B analytic optimum.
	golden := (math.Sqrt(5) - 1) / 2
	goldenRouting := fig1cRouting.Clone()
	if err := goldenRouting.SetRatios(t, s1, map[graph.EdgeID]float64{es1s2: golden, es1v: 1 - golden}); err != nil {
		return nil, err
	}
	if err := goldenRouting.SetRatios(t, s2, map[graph.EdgeID]float64{es2t: golden, es2v: 1 - golden}); err != nil {
		return nil, err
	}
	out.AddRow("golden ratio (App. B)", f2(ev.Perf(goldenRouting).Ratio), "1.24")

	// What COYOTE's optimizer finds on the same DAGs.
	_, rep := oblivious.OptimizeWithEvaluator(g, dags, ev, oblivious.Options{
		Optimizer: gpopt.Config{Iters: cfg.OptIters * 4},
		AdvIters:  cfg.AdvIters + 2,
		Workers:   cfg.Workers,
	})
	out.AddRow("COYOTE optimizer", f2(rep.Perf.Ratio), "≤1.24")
	return out, nil
}
