package exp

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestTableWriteMatrix drives WriteTo, WriteJSON, and WriteJSONLine over
// the degenerate-shape matrix: empty tables, nil slices, ragged rows
// (shorter and longer than the header), and rows with empty cells. Every
// combination must render without panicking, and the JSON forms must stay
// well-formed (decodable, no nulls for columns/rows).
func TestTableWriteMatrix(t *testing.T) {
	cases := []struct {
		name string
		tab  Table
		text []string // substrings the text rendering must contain
	}{
		{name: "zero table", tab: Table{}},
		{name: "title only", tab: Table{Title: "empty sweep"}, text: []string{"empty sweep"}},
		{
			name: "columns no rows",
			tab:  Table{Title: "t", Columns: []string{"margin", "PERF"}},
			text: []string{"margin  PERF", "------  ----"},
		},
		{
			name: "rows no columns",
			tab:  Table{Title: "t", Rows: [][]string{{"1.0", "2.00"}}},
			text: []string{"1.0  2.00"},
		},
		{
			name: "nil row",
			tab:  Table{Title: "t", Columns: []string{"a"}, Rows: [][]string{nil, {"x"}}},
			text: []string{"x"},
		},
		{
			name: "empty row",
			tab:  Table{Title: "t", Columns: []string{"a"}, Rows: [][]string{{}}},
		},
		{
			name: "short row",
			tab:  Table{Title: "t", Columns: []string{"a", "b", "c"}, Rows: [][]string{{"1"}}},
			text: []string{"a  b  c", "1"},
		},
		{
			name: "long row",
			tab:  Table{Title: "t", Columns: []string{"a"}, Rows: [][]string{{"1", "2", "3"}}},
			text: []string{"1  2  3"},
		},
		{
			name: "mixed ragged",
			tab: Table{Title: "t", Columns: []string{"a", "b"},
				Rows: [][]string{{"1"}, {"1", "2", "3", "4"}, {}, {"x", "y"}}},
			text: []string{"1  2  3  4", "x  y"},
		},
		{
			name: "empty cells widen nothing",
			tab:  Table{Title: "t", Columns: []string{"", ""}, Rows: [][]string{{"", ""}}},
		},
		{
			name: "cells wider than header",
			tab:  Table{Title: "t", Columns: []string{"a"}, Rows: [][]string{{"longer-cell"}}},
			text: []string{"longer-cell", "-----------"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var text bytes.Buffer
			if _, err := tc.tab.WriteTo(&text); err != nil {
				t.Fatalf("WriteTo: %v", err)
			}
			if !strings.HasSuffix(text.String(), "\n") {
				t.Errorf("WriteTo output does not end in newline: %q", text.String())
			}
			for _, want := range tc.text {
				if !strings.Contains(text.String(), want) {
					t.Errorf("WriteTo output missing %q:\n%s", want, text.String())
				}
			}

			for _, form := range []struct {
				name  string
				write func(*Table, *bytes.Buffer) error
			}{
				{"WriteJSON", func(tab *Table, b *bytes.Buffer) error { return tab.WriteJSON(b) }},
				{"WriteJSONLine", func(tab *Table, b *bytes.Buffer) error { return tab.WriteJSONLine(b) }},
			} {
				var buf bytes.Buffer
				if err := form.write(&tc.tab, &buf); err != nil {
					t.Fatalf("%s: %v", form.name, err)
				}
				if strings.Contains(buf.String(), "null") {
					t.Errorf("%s emitted null: %s", form.name, buf.String())
				}
				var back Table
				if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
					t.Fatalf("%s produced undecodable JSON: %v\n%s", form.name, err, buf.String())
				}
				if len(back.Columns) != len(tc.tab.Columns) || len(back.Rows) != len(tc.tab.Rows) {
					t.Errorf("%s round-trip changed shape: %d cols %d rows -> %d cols %d rows",
						form.name, len(tc.tab.Columns), len(tc.tab.Rows), len(back.Columns), len(back.Rows))
				}
			}

			var line bytes.Buffer
			if err := tc.tab.WriteJSONLine(&line); err != nil {
				t.Fatalf("WriteJSONLine: %v", err)
			}
			if n := strings.Count(line.String(), "\n"); n != 1 || !strings.HasSuffix(line.String(), "\n") {
				t.Errorf("WriteJSONLine is not one line: %d newlines in %q", n, line.String())
			}
		})
	}
}

// TestTableNormalizeDoesNotMutate pins the copy-on-write contract: writing
// a table with nil rows must not overwrite the caller's slices.
func TestTableNormalizeDoesNotMutate(t *testing.T) {
	tab := Table{Columns: []string{"a"}, Rows: [][]string{nil, {"x"}}}
	var buf bytes.Buffer
	if err := tab.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if tab.Rows[0] != nil {
		t.Error("WriteJSON mutated the caller's nil row")
	}
}
