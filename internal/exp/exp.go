// Package exp is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (§VI, §VII) plus the negative-result
// demonstrations (§IV) and the design-choice ablations called out in
// DESIGN.md. Each experiment is registered by ID and runnable from
// cmd/coyote-eval or from the benchmark suite.
package exp

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"

	"github.com/coyote-te/coyote/internal/gpopt"
	"github.com/coyote-te/coyote/internal/oblivious"
)

// Table is the uniform output shape of every experiment: a titled grid.
// The JSON tags define the machine-readable form WriteJSON (and the -json
// flag of cmd/coyote-scen) emits.
type Table struct {
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// WriteTo renders the table as aligned text. It is total over the whole
// Table value space: a zero Table, nil Columns/Rows, and ragged rows
// (shorter or longer than the header) all render without panicking — extra
// cells get their own trailing columns, missing cells render empty.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var sb strings.Builder
	sb.WriteString(t.Title)
	sb.WriteByte('\n')
	ncol := len(t.Columns)
	for _, row := range t.Rows {
		if len(row) > ncol {
			ncol = len(row)
		}
	}
	widths := make([]int, ncol)
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if i < len(widths) {
				for p := len(cell); p < widths[i]; p++ {
					sb.WriteByte(' ')
				}
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// normalized returns a copy of t whose nil slices are replaced by empty
// ones, so the JSON encodings always carry "columns":[] / "rows":[] (never
// null) and an empty table round-trips to an empty table. Ragged rows are
// preserved as-is: raggedness is data, and both JSON forms and WriteTo
// represent it faithfully.
func (t *Table) normalized() *Table {
	out := &Table{Title: t.Title, Columns: t.Columns, Rows: t.Rows}
	if out.Columns == nil {
		out.Columns = []string{}
	}
	if out.Rows == nil {
		out.Rows = [][]string{}
	}
	copied := false
	for i, row := range t.Rows {
		if row != nil {
			continue
		}
		if !copied { // copy-on-write: don't mutate the caller's rows
			rows := make([][]string, len(t.Rows))
			copy(rows, t.Rows)
			out.Rows = rows
			copied = true
		}
		out.Rows[i] = []string{}
	}
	return out
}

// WriteJSON renders the table as indented JSON — the same shape as the
// struct ({"title", "columns", "rows"}), for machine consumption of sweep
// results. nil Columns/Rows encode as empty arrays, never null.
func (t *Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.normalized())
}

// WriteJSONLine renders the table as one compact JSON line (no internal
// newlines, one trailing '\n') — the JSONL building block the sweep
// harness streams campaign results through. Like WriteJSON it never emits
// null for missing Columns/Rows.
func (t *Table) WriteJSONLine(w io.Writer) error {
	return json.NewEncoder(w).Encode(t.normalized())
}

// f2 formats a ratio the way the paper's tables do (two decimals).
func f2(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	return fmt.Sprintf("%.2f", v)
}

// f1 formats with one decimal (margins).
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

// Config scales every experiment between a quick smoke run and the full
// paper-fidelity sweep.
type Config struct {
	Margins   []float64 // uncertainty margins for sweeps
	Samples   int       // adversary random corners
	OptIters  int       // inner optimizer gradient steps
	AdvIters  int       // outer adversarial iterations
	Eps       float64   // FPTAS accuracy for OPTDAG normalization
	Seed      int64
	Oblivious bool // also compute the COYOTE-oblivious column (costlier)
	// Workers bounds the harness's worker pool: experiments spread
	// topologies and data points (margins, failure scenarios) across it,
	// and it is threaded through to the evaluation engine (DESIGN.md §4).
	// Zero or negative means one worker per available CPU. Tables are
	// bit-identical for any value given the same Seed.
	Workers int
	// Strategies restricts the portfolio experiments' strategy columns
	// (nil/empty = every registered strategy). omitempty keeps the JSON
	// encoding — and therefore every existing sweep cache key — unchanged
	// when the field is unset.
	Strategies []string `json:",omitempty"`
	// Ctx, when it carries an obs.Tracer, threads tracing spans through the
	// adversarial loop beneath the experiment. Excluded from JSON (and thus
	// from sweep cache keys): tracing never changes results.
	Ctx context.Context `json:"-"`
}

// evalConfig is the oblivious.EvalConfig every experiment derives from its
// Config, so the Workers and Seed knobs reach the evaluation engine.
func (c Config) evalConfig() oblivious.EvalConfig {
	return oblivious.EvalConfig{Eps: c.Eps, Samples: c.Samples, Seed: c.Seed, Workers: c.Workers}
}

// options is the oblivious.Options every experiment derives from its
// Config.
func (c Config) options() oblivious.Options {
	return oblivious.Options{
		Optimizer: gpopt.Config{Iters: c.OptIters},
		Eval:      c.evalConfig(),
		AdvIters:  c.AdvIters,
		Workers:   c.Workers,
		Ctx:       c.Ctx,
	}
}

// Default is the configuration used for the recorded results in
// EXPERIMENTS.md.
func Default() Config {
	return Config{
		Margins:   []float64{1, 1.5, 2, 2.5, 3},
		Samples:   6,
		OptIters:  500,
		AdvIters:  5,
		Eps:       0.15,
		Seed:      1,
		Oblivious: true,
	}
}

// Quick is a reduced configuration for benchmarks and smoke tests.
func Quick() Config {
	return Config{
		Margins:   []float64{1, 2},
		Samples:   3,
		OptIters:  120,
		AdvIters:  2,
		Eps:       0.2,
		Seed:      1,
		Oblivious: false,
	}
}
