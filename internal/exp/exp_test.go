package exp

import (
	"bytes"
	"encoding/json"
	"math"
	"strconv"
	"strings"
	"testing"

	"github.com/coyote-te/coyote/internal/scen"
)

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "demo", Columns: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	var buf bytes.Buffer
	if _, err := tab.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "a  bb") {
		t.Fatalf("bad rendering:\n%s", s)
	}
}

func TestTableWriteJSON(t *testing.T) {
	tab := &Table{Title: "demo", Columns: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	var buf bytes.Buffer
	if err := tab.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded Table
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if decoded.Title != "demo" || len(decoded.Columns) != 2 || len(decoded.Rows) != 1 {
		t.Fatalf("round trip lost data: %+v", decoded)
	}
	if !strings.Contains(buf.String(), `"title"`) {
		t.Fatalf("expected lowercase JSON keys:\n%s", buf.String())
	}
}

func TestServeDriftSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("drift replay in -short mode")
	}
	cfg := Quick()
	tab, err := ServeDrift(scen.Params{Rows: 3, Cols: 3}, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("%d rows, want 3", len(tab.Rows))
	}
	for i, row := range tab.Rows {
		warm := cell(t, tab, i, 1)
		cold := cell(t, tab, i, 2)
		// Warm incremental recompute must stay within a few percent of the
		// cold batch recompute on the same box (acceptance bound is 1% at
		// full effort; quick effort gets slack).
		if warm > cold*1.05 {
			t.Errorf("step %s: warm PERF %g much worse than cold %g", row[0], warm, cold)
		}
	}
}

func TestRegistryIDs(t *testing.T) {
	want := []string{"ablation-adv", "ablation-dag", "failover", "fig10", "fig11", "fig12", "fig6", "fig7", "fig8", "fig9", "negative-np", "negative-path", "portfolio", "portfolio-failures", "running", "scen-ba", "scen-fattree", "scen-grid-day", "scen-srlg", "scen-waxman", "serve-drift", "table1"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	if _, err := Run("nope", Quick()); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

func cell(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tab.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric: %v", row, col, tab.Rows[row][col], err)
	}
	return v
}

func TestRunningExampleAnchors(t *testing.T) {
	tab, err := RunningExample(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("expected 4 rows, got %d", len(tab.Rows))
	}
	// ECMP = 2.00, Fig1c = 1.33, golden = 1.24 (√5−1).
	if v := cell(t, tab, 0, 1); math.Abs(v-2.0) > 0.02 {
		t.Errorf("ECMP PERF = %g, want 2.00", v)
	}
	if v := cell(t, tab, 1, 1); math.Abs(v-4.0/3) > 0.02 {
		t.Errorf("Fig1c PERF = %g, want 1.33", v)
	}
	if v := cell(t, tab, 2, 1); math.Abs(v-(math.Sqrt(5)-1)) > 0.02 {
		t.Errorf("golden PERF = %g, want 1.24", v)
	}
	// The optimizer should not be (much) worse than the hand-crafted 4/3.
	if v := cell(t, tab, 3, 1); v > 4.0/3+0.05 {
		t.Errorf("optimizer PERF = %g, want ≤ ~1.33", v)
	}
}

func TestNPGadgetTable(t *testing.T) {
	tab, err := NPGadget([]float64{3, 5, 8}, map[int]bool{2: true})
	if err != nil {
		t.Fatal(err)
	}
	// Balanced: both extreme DMs at exactly 4/3.
	if v := cell(t, tab, 0, 1); math.Abs(v-4.0/3) > 0.01 {
		t.Errorf("balanced MxLU(D1) = %g, want 4/3", v)
	}
	if v := cell(t, tab, 0, 2); math.Abs(v-4.0/3) > 0.01 {
		t.Errorf("balanced MxLU(D2) = %g, want 4/3", v)
	}
	// Unbalanced: strictly worse oblivious ratio.
	balanced := cell(t, tab, 0, 3)
	unbalanced := cell(t, tab, 1, 3)
	if unbalanced <= balanced {
		t.Errorf("unbalanced ratio %g should exceed balanced %g", unbalanced, balanced)
	}
	// Min-cut = 2·SUM = 32.
	if v := cell(t, tab, 0, 4); math.Abs(v-32) > 1e-6 {
		t.Errorf("min-cut = %g, want 32", v)
	}
}

func TestPathLowerBoundTable(t *testing.T) {
	n := 5
	tab, err := PathLowerBound(n)
	if err != nil {
		t.Fatal(err)
	}
	worst := cell(t, tab, len(tab.Rows)-1, 3)
	if worst < float64(n) {
		t.Errorf("worst ratio %g below the Theorem 4 bound %d", worst, n)
	}
}

func TestFig12Table(t *testing.T) {
	tab, err := Fig12(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("3 schemes expected, got %d", len(tab.Rows))
	}
	// COYOTE row: all-zero drops, 2 fake nodes.
	coyote := tab.Rows[2]
	for _, c := range coyote[1:5] {
		if c != "0%" {
			t.Errorf("COYOTE cell %q, want 0%%", c)
		}
	}
	if coyote[5] != "2" {
		t.Errorf("COYOTE fake nodes = %s, want 2", coyote[5])
	}
	// TE1 drops 50% in phases 1 and 3.
	if tab.Rows[0][1] != "50%" || tab.Rows[0][3] != "50%" {
		t.Errorf("TE1 phases = %v, want 50%% / 0%% / 50%%", tab.Rows[0][1:4])
	}
	if tab.Rows[1][2] != "25%" {
		t.Errorf("TE2 phase 2 = %s, want 25%%", tab.Rows[1][2])
	}
}

func TestMarginSweepSmallTopology(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	cfg := Quick()
	cfg.Oblivious = true
	rows, err := MarginSweep("NSF", "gravity", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(cfg.Margins) {
		t.Fatalf("%d rows, want %d", len(rows), len(cfg.Margins))
	}
	for _, r := range rows {
		// The partial-knowledge COYOTE is never worse than ECMP (both
		// evaluated with the same adversary).
		if r.CoyotePartial > r.ECMP+1e-6 {
			t.Errorf("margin %g: COYOTE-pk %g worse than ECMP %g", r.Margin, r.CoyotePartial, r.ECMP)
		}
		if r.ECMP < 1-0.05 || r.CoyotePartial < 1-0.05 {
			t.Errorf("margin %g: PERF below 1: ECMP %g, pk %g", r.Margin, r.ECMP, r.CoyotePartial)
		}
	}
	// At margin 1 the Base routing is optimal.
	if math.Abs(rows[0].Base-1) > 0.05 {
		t.Errorf("Base at margin 1 = %g, want 1", rows[0].Base)
	}
}

func TestFig12ViaRegistry(t *testing.T) {
	tab, err := Run("fig12", Quick())
	if err != nil {
		t.Fatal(err)
	}
	if tab.Title == "" || len(tab.Rows) == 0 {
		t.Fatal("empty table from registry")
	}
}
