package exp

import (
	"fmt"
	"math"

	"github.com/coyote-te/coyote/internal/dagx"
	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/maxflow"
	"github.com/coyote-te/coyote/internal/pdrouting"
)

// GadgetInstance is a constructed OBLIVIOUS IP ROUTING instance from the
// Theorem 1 reduction: one INTEGER gadget (Fig. 2) per element of W.
type GadgetInstance struct {
	G      *graph.Graph
	S1, S2 graph.NodeID
	T      graph.NodeID
	X1, X2 []graph.NodeID // per-gadget entry vertices
	M      []graph.NodeID // per-gadget middle vertices
	W      []float64
	Sum    float64
}

// BuildGadget constructs the reduction instance for weight set W.
func BuildGadget(W []float64) *GadgetInstance {
	g := graph.New()
	inst := &GadgetInstance{G: g, W: append([]float64(nil), W...)}
	inst.S1 = g.AddNode("s1")
	inst.S2 = g.AddNode("s2")
	inst.T = g.AddNode("t")
	for i, w := range W {
		x1 := g.AddNode(fmt.Sprintf("x1_%d", i))
		x2 := g.AddNode(fmt.Sprintf("x2_%d", i))
		m := g.AddNode(fmt.Sprintf("m_%d", i))
		g.AddLink(x1, x2, w, 1)
		g.AddLink(x1, m, w, 1)
		g.AddLink(x2, m, w, 1)
		g.AddEdge(inst.S1, x1, 2*w, 1)
		g.AddEdge(inst.S2, x2, 2*w, 1)
		g.AddEdge(m, inst.T, 2*w, 1)
		inst.X1 = append(inst.X1, x1)
		inst.X2 = append(inst.X2, x2)
		inst.M = append(inst.M, m)
		inst.Sum += w
	}
	return inst
}

// Lemma2Routing builds the explicit oblivious routing of Lemma 2 for a
// bipartition P1 (indices into W whose gadget edge x1→x2 is used; the rest
// orient x2→x1). When P1 is an even bipartition the routing has oblivious
// performance exactly 4/3.
func (inst *GadgetInstance) Lemma2Routing(P1 map[int]bool) (*pdrouting.Routing, error) {
	g := inst.G
	member := make([]bool, g.NumEdges())
	on := func(a, b graph.NodeID) graph.EdgeID {
		id, ok := g.FindEdge(a, b)
		if !ok {
			panic("gadget edge missing")
		}
		member[id] = true
		return id
	}
	type gadgetEdges struct {
		s1x1, s2x2, x1x2, x1m, x2m, mt graph.EdgeID
	}
	edges := make([]gadgetEdges, len(inst.W))
	for i := range inst.W {
		ge := &edges[i]
		ge.s1x1 = on(inst.S1, inst.X1[i])
		ge.s2x2 = on(inst.S2, inst.X2[i])
		ge.x1m = on(inst.X1[i], inst.M[i])
		ge.x2m = on(inst.X2[i], inst.M[i])
		ge.mt = on(inst.M[i], inst.T)
		if P1[i] {
			ge.x1x2 = on(inst.X1[i], inst.X2[i])
		} else {
			ge.x1x2 = on(inst.X2[i], inst.X1[i])
		}
	}
	d, err := dagx.FromEdges(g, inst.T, member)
	if err != nil {
		return nil, err
	}
	dags := make([]*dagx.DAG, g.NumNodes())
	for t := 0; t < g.NumNodes(); t++ {
		if graph.NodeID(t) == inst.T {
			dags[t] = d
		} else {
			dags[t] = dagx.Augmented(g, graph.NodeID(t))
		}
	}
	r := pdrouting.Uniform(g, dags)
	// Splitting ratios of Lemma 2: at s1, gadget i receives 4w/(3SUM) if
	// i ∈ P1 else 2w/(3SUM); symmetric at s2 with the complement. Inside
	// a gadget, the entry on the "open" side splits 1/2 toward the middle
	// and 1/2 across; the other entry forwards everything to the middle.
	s1Ratios := make(map[graph.EdgeID]float64)
	s2Ratios := make(map[graph.EdgeID]float64)
	for i, w := range inst.W {
		if P1[i] {
			s1Ratios[edges[i].s1x1] = 4 * w / (3 * inst.Sum)
			s2Ratios[edges[i].s2x2] = 2 * w / (3 * inst.Sum)
		} else {
			s1Ratios[edges[i].s1x1] = 2 * w / (3 * inst.Sum)
			s2Ratios[edges[i].s2x2] = 4 * w / (3 * inst.Sum)
		}
	}
	// Lemma 2's ratios sum to 1 exactly when P1 is an even bipartition;
	// normalize so unbalanced orientations remain valid routings (the
	// normalization is a no-op in the balanced case).
	for _, ratios := range []map[graph.EdgeID]float64{s1Ratios, s2Ratios} {
		sum := 0.0
		for _, v := range ratios {
			sum += v
		}
		for k := range ratios {
			ratios[k] /= sum
		}
	}
	if err := r.SetRatios(inst.T, inst.S1, s1Ratios); err != nil {
		return nil, err
	}
	if err := r.SetRatios(inst.T, inst.S2, s2Ratios); err != nil {
		return nil, err
	}
	for i := range inst.W {
		ge := edges[i]
		var open, x1Out, x2Out map[graph.EdgeID]float64
		if P1[i] {
			open = map[graph.EdgeID]float64{ge.x1m: 0.5, ge.x1x2: 0.5}
			x1Out = open
			x2Out = map[graph.EdgeID]float64{ge.x2m: 1}
		} else {
			x1Out = map[graph.EdgeID]float64{ge.x1m: 1}
			x2Out = map[graph.EdgeID]float64{ge.x2m: 0.5, ge.x1x2: 0.5}
		}
		if err := r.SetRatios(inst.T, inst.X1[i], x1Out); err != nil {
			return nil, err
		}
		if err := r.SetRatios(inst.T, inst.X2[i], x2Out); err != nil {
			return nil, err
		}
		if err := r.SetRatios(inst.T, inst.M[i], map[graph.EdgeID]float64{ge.mt: 1}); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// NPGadget demonstrates Theorem 1's reduction numerically: for a positive
// BIPARTITION instance, the Lemma 2 routing achieves utilization exactly
// 4/3 on both extreme demand matrices (whose optimum is 1), while an
// unbalanced orientation does strictly worse.
func NPGadget(W []float64, P1 map[int]bool) (*Table, error) {
	inst := BuildGadget(W)
	out := &Table{
		Title:   "Theorem 1 gadget — BIPARTITION → OBLIVIOUS IP ROUTING",
		Columns: []string{"orientation", "MxLU(D1)", "MxLU(D2)", "oblivious ratio", "min-cut"},
	}
	n := inst.G.NumNodes()
	D1 := demand.SinglePair(n, inst.S1, inst.T, 2*inst.Sum)
	D2 := demand.SinglePair(n, inst.S2, inst.T, 2*inst.Sum)
	cut := maxflow.MinCutValue(inst.G, []graph.NodeID{inst.S1, inst.S2}, inst.T)

	addRow := func(label string, part map[int]bool) error {
		r, err := inst.Lemma2Routing(part)
		if err != nil {
			return err
		}
		u1 := r.MaxUtilization(D1)
		u2 := r.MaxUtilization(D2)
		out.AddRow(label, f2(u1), f2(u2), f2(math.Max(u1, u2)), f2(cut))
		return nil
	}
	if err := addRow("balanced (Lemma 2)", P1); err != nil {
		return nil, err
	}
	// All gadgets oriented the same way: maximally unbalanced.
	all := make(map[int]bool, len(W))
	for i := range W {
		all[i] = true
	}
	if err := addRow("unbalanced (all P1)", all); err != nil {
		return nil, err
	}
	return out, nil
}

// PathLowerBound demonstrates Theorem 4: on the n-source path with unit
// links into t, every per-destination routing suffers PERF ≥ n against the
// unrestricted optimum.
func PathLowerBound(n int) (*Table, error) {
	g := graph.New()
	xs := make([]graph.NodeID, n)
	for i := 0; i < n; i++ {
		xs[i] = g.AddNode(fmt.Sprintf("x%d", i))
	}
	t := g.AddNode("t")
	for i := 0; i+1 < n; i++ {
		g.AddLink(xs[i], xs[i+1], 1e9, 1)
	}
	for i := 0; i < n; i++ {
		g.AddEdge(xs[i], t, 1, 1)
	}
	dags := dagx.BuildAll(g, dagx.Augmented)
	r := pdrouting.Uniform(g, dags)
	out := &Table{
		Title:   fmt.Sprintf("Theorem 4 — path lower bound (n = %d)", n),
		Columns: []string{"source", "MxLU(Di)", "OPTU(Di)", "ratio"},
	}
	worst := 0.0
	for i := 0; i < n; i++ {
		D := demand.SinglePair(g.NumNodes(), xs[i], t, float64(n))
		mxlu := r.MaxUtilization(D)
		opt := float64(n) / maxflow.MinCutValue(g, []graph.NodeID{xs[i]}, t)
		ratio := mxlu / opt
		if ratio > worst {
			worst = ratio
		}
		out.AddRow(g.Name(xs[i]), f2(mxlu), f2(opt), f2(ratio))
	}
	out.AddRow("worst", "", "", f2(worst))
	return out, nil
}
