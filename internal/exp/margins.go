package exp

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/coyote-te/coyote/internal/dagx"
	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/oblivious"
	"github.com/coyote-te/coyote/internal/par"
	"github.com/coyote-te/coyote/internal/pdrouting"
	"github.com/coyote-te/coyote/internal/scen"
	"github.com/coyote-te/coyote/internal/topo"
)

// baseMatrix builds a base demand model for a topology: the §VI-B pair
// (gravity, bimodal) exactly as recorded in EXPERIMENTS.md, plus the
// scenario-engine workloads (hotspot, flash, uniform) of internal/scen.
func baseMatrix(g *graph.Graph, model string, seed int64) (*demand.Matrix, error) {
	switch model {
	case "gravity":
		return demand.Gravity(g, 1), nil
	case "bimodal":
		return demand.Bimodal(g, demand.DefaultBimodal(), rand.New(rand.NewSource(seed))), nil
	default:
		return scen.BaseMatrix(g, model, 1, seed)
	}
}

// SweepRow is one margin's outcome for one topology.
type SweepRow struct {
	Margin          float64
	ECMP            float64 // PERF of traditional ECMP
	Base            float64 // PERF of the demands-aware routing for the base matrix
	CoyoteOblivious float64 // PERF of COYOTE optimized with no demand knowledge
	CoyotePartial   float64 // PERF of COYOTE optimized within the margin box
}

// MarginSweep reproduces the Fig. 6/7/8 measurement for one topology and
// demand model: PERF of ECMP, Base, COYOTE-oblivious and
// COYOTE-partial-knowledge as the uncertainty margin grows, all normalized
// by the demands-aware optimum within the same augmented DAGs.
func MarginSweep(topoName, model string, cfg Config) ([]SweepRow, error) {
	g, err := topo.Load(topoName)
	if err != nil {
		return nil, err
	}
	base, err := baseMatrix(g, model, cfg.Seed)
	if err != nil {
		return nil, err
	}
	dags := dagx.BuildAll(g, dagx.Augmented)
	return marginSweep(g, dags, base, cfg)
}

func marginSweep(g *graph.Graph, dags []*dagx.DAG, base *demand.Matrix, cfg Config) ([]SweepRow, error) {
	ecmp := oblivious.ECMPOnDAGs(g, dags)
	baseRouting, err := oblivious.BaseRouting(g, dags, base, 0, cfg.Eps)
	if err != nil {
		return nil, err
	}

	// COYOTE-oblivious: optimized once, with no knowledge of the demands
	// (uncertainty set = all matrices up to an arbitrary cap; the
	// performance ratio is scale-invariant).
	var coyoteObl *pdrouting.Routing
	if cfg.Oblivious {
		oblBox := demand.ObliviousBox(g.NumNodes(), math.Max(base.MaxEntry(), 1))
		oblEv := oblivious.NewEvaluator(g, dags, oblBox, cfg.evalConfig())
		coyoteObl, _ = oblivious.OptimizeWithEvaluator(g, dags, oblEv, cfg.options())
	}

	// Margins are independent data points: fan them across the worker
	// pool, each writing its own row (every margin builds its own seeded
	// evaluator, so rows are reproducible for any worker count).
	rows := make([]SweepRow, len(cfg.Margins))
	par.For(cfg.Workers, len(cfg.Margins), func(i int) {
		margin := cfg.Margins[i]
		box := demand.MarginBox(base, margin)
		ev := oblivious.NewEvaluator(g, dags, box, cfg.evalConfig())
		row := SweepRow{Margin: margin}
		row.ECMP = ev.Perf(ecmp).Ratio
		row.Base = ev.Perf(baseRouting).Ratio
		if coyoteObl != nil {
			row.CoyoteOblivious = ev.Perf(coyoteObl).Ratio
		}
		_, rep := oblivious.OptimizeWithEvaluator(g, dags, ev, cfg.options())
		row.CoyotePartial = rep.Perf.Ratio
		rows[i] = row
	})
	return rows, nil
}

// sweepTable renders sweep rows in the paper's format.
func sweepTable(title string, rows []SweepRow, withObl bool) *Table {
	t := &Table{Title: title}
	if withObl {
		t.Columns = []string{"margin", "ECMP", "Base", "COYOTE-obl", "COYOTE-pk"}
	} else {
		t.Columns = []string{"margin", "ECMP", "Base", "COYOTE-pk"}
	}
	for _, r := range rows {
		if withObl {
			t.AddRow(f1(r.Margin), f2(r.ECMP), f2(r.Base), f2(r.CoyoteOblivious), f2(r.CoyotePartial))
		} else {
			t.AddRow(f1(r.Margin), f2(r.ECMP), f2(r.Base), f2(r.CoyotePartial))
		}
	}
	return t
}

// Fig6 reproduces Fig. 6: Geant, gravity model.
func Fig6(cfg Config) (*Table, error) {
	rows, err := MarginSweep("Geant", "gravity", cfg)
	if err != nil {
		return nil, err
	}
	return sweepTable("Fig. 6 — Geant, gravity model (PERF vs margin)", rows, cfg.Oblivious), nil
}

// Fig7 reproduces Fig. 7: Digex, gravity model.
func Fig7(cfg Config) (*Table, error) {
	rows, err := MarginSweep("Digex", "gravity", cfg)
	if err != nil {
		return nil, err
	}
	return sweepTable("Fig. 7 — Digex, gravity model (PERF vs margin)", rows, cfg.Oblivious), nil
}

// Fig8 reproduces Fig. 8: AS1755, bimodal model.
func Fig8(cfg Config) (*Table, error) {
	rows, err := MarginSweep("AS1755", "bimodal", cfg)
	if err != nil {
		return nil, err
	}
	return sweepTable("Fig. 8 — AS1755, bimodal model (PERF vs margin)", rows, cfg.Oblivious), nil
}

// Table1 reproduces Table I: the full corpus × margin sweep under the
// gravity model, reporting ECMP, Base, COYOTE-oblivious and
// COYOTE-partial-knowledge.
func Table1(cfg Config, names []string) (*Table, error) {
	if names == nil {
		names = topo.TableNames()
	}
	out := &Table{
		Title:   "Table I — PERF vs margin, gravity base model",
		Columns: []string{"network", "margin", "ECMP", "Base", "COYOTE-obl", "COYOTE-pk"},
	}
	type result struct {
		name string
		rows []SweepRow
		err  error
	}
	results := make([]result, len(names))
	par.For(cfg.Workers, len(names), func(i int) {
		rows, err := MarginSweep(names[i], "gravity", cfg)
		results[i] = result{name: names[i], rows: rows, err: err}
	})
	for _, res := range results {
		if res.err != nil {
			return nil, fmt.Errorf("exp: %s: %w", res.name, res.err)
		}
		for _, r := range res.rows {
			out.AddRow(res.name, f1(r.Margin), f2(r.ECMP), f2(r.Base), f2(r.CoyoteOblivious), f2(r.CoyotePartial))
		}
	}
	return out, nil
}
