package exp

import (
	"github.com/coyote-te/coyote/internal/dagx"
	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/localsearch"
	"github.com/coyote-te/coyote/internal/oblivious"
	"github.com/coyote-te/coyote/internal/par"
	"github.com/coyote-te/coyote/internal/pdrouting"
	"github.com/coyote-te/coyote/internal/topo"
	"github.com/coyote-te/coyote/internal/wcmp"
)

// Fig9 reproduces Fig. 9: Abilene under the local-search DAG-construction
// heuristic with the bimodal base model — ECMP vs COYOTE-partial-knowledge,
// both using the DAGs derived from the locally-searched weights.
func Fig9(cfg Config) (*Table, error) {
	g, err := topo.Load("Abilene")
	if err != nil {
		return nil, err
	}
	base, err := baseMatrix(g, "bimodal", cfg.Seed)
	if err != nil {
		return nil, err
	}
	out := &Table{
		Title:   "Fig. 9 — Abilene, local-search heuristic, bimodal model",
		Columns: []string{"margin", "ECMP", "COYOTE-pk"},
	}
	rows := make([][]string, len(cfg.Margins))
	errs := make([]error, len(cfg.Margins))
	par.For(cfg.Workers, len(cfg.Margins), func(i int) {
		margin := cfg.Margins[i]
		box := demand.MarginBox(base, margin)
		ls, err := localsearch.Optimize(g, box, localsearch.Config{
			OuterIters: cfg.AdvIters, InnerMoves: 10 * g.NumEdges(), Seed: cfg.Seed,
		})
		if err != nil {
			errs[i] = err
			return
		}
		tuned := g.Clone()
		tuned.SetWeights(ls.Weights)
		dags := dagx.BuildAll(tuned, dagx.Augmented)
		ev := oblivious.NewEvaluator(tuned, dags, box, cfg.evalConfig())
		ecmp := ev.Perf(oblivious.ECMPOnDAGs(tuned, dags))
		_, rep := oblivious.OptimizeWithEvaluator(tuned, dags, ev, cfg.options())
		rows[i] = []string{f1(margin), f2(ecmp.Ratio), f2(rep.Perf.Ratio)}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out.Rows = rows
	return out, nil
}

// Fig10 reproduces Fig. 10: how closely quantized splitting (3, 5, 10
// virtual next-hops per interface, per [18]) approximates ideal COYOTE on
// AS1755, and how both compare to ECMP.
func Fig10(cfg Config, budgets []int) (*Table, error) {
	if budgets == nil {
		budgets = []int{3, 5, 10}
	}
	g, err := topo.Load("AS1755")
	if err != nil {
		return nil, err
	}
	base, err := baseMatrix(g, "gravity", cfg.Seed)
	if err != nil {
		return nil, err
	}
	dags := dagx.BuildAll(g, dagx.Augmented)
	out := &Table{
		Title:   "Fig. 10 — AS1755: splitting-ratio approximation via virtual next-hops",
		Columns: []string{"margin", "ECMP", "COYOTE-ideal", "3 NHs", "5 NHs", "10 NHs"},
	}
	rows := make([][]string, len(cfg.Margins))
	errs := make([]error, len(cfg.Margins))
	par.For(cfg.Workers, len(cfg.Margins), func(i int) {
		margin := cfg.Margins[i]
		box := demand.MarginBox(base, margin)
		ev := oblivious.NewEvaluator(g, dags, box, cfg.evalConfig())
		ideal, rep := oblivious.OptimizeWithEvaluator(g, dags, ev, cfg.options())
		row := []string{f1(margin), f2(ev.Perf(oblivious.ECMPOnDAGs(g, dags)).Ratio), f2(rep.Perf.Ratio)}
		for _, k := range budgets {
			q, err := wcmp.Apply(ideal, k)
			if err != nil {
				errs[i] = err
				return
			}
			row = append(row, f2(ev.Perf(q.Routing).Ratio))
		}
		rows[i] = row
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out.Rows = rows
	return out, nil
}

// Fig11 reproduces Fig. 11: the average path stretch (expected hop count
// relative to ECMP on shortest paths) of COYOTE's routings at margin 2.5.
func Fig11(cfg Config, names []string) (*Table, error) {
	if names == nil {
		names = topo.TableNames()
	}
	out := &Table{
		Title:   "Fig. 11 — average path stretch vs ECMP (margin 2.5)",
		Columns: []string{"network", "COYOTE-oblivious", "COYOTE-pk"},
	}
	const margin = 2.5
	rows := make([][]string, len(names))
	errs := make([]error, len(names))
	par.For(cfg.Workers, len(names), func(i int) {
		name := names[i]
		g, err := topo.Load(name)
		if err != nil {
			errs[i] = err
			return
		}
		base, err := baseMatrix(g, "gravity", cfg.Seed)
		if err != nil {
			errs[i] = err
			return
		}
		dags := dagx.BuildAll(g, dagx.Augmented)
		box := demand.MarginBox(base, margin)
		ev := oblivious.NewEvaluator(g, dags, box, cfg.evalConfig())
		pk, _ := oblivious.OptimizeWithEvaluator(g, dags, ev, cfg.options())
		oblBox := demand.ObliviousBox(g.NumNodes(), 1)
		oblEv := oblivious.NewEvaluator(g, dags, oblBox, cfg.evalConfig())
		obl, _ := oblivious.OptimizeWithEvaluator(g, dags, oblEv, cfg.options())
		ecmp := oblivious.ECMPOnDAGs(g, dags)
		rows[i] = []string{name, f2(stretch(obl, ecmp)), f2(stretch(pk, ecmp))}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out.Rows = rows
	return out, nil
}

// stretch computes the mean over all ordered pairs of the ratio between a
// routing's expected hop count and ECMP's.
func stretch(r, ecmp *pdrouting.Routing) float64 {
	var sum float64
	var count int
	n := r.G.NumNodes()
	for s := 0; s < n; s++ {
		for t := 0; t < n; t++ {
			if s == t {
				continue
			}
			base := ecmp.ExpectedHops(graph.NodeID(s), graph.NodeID(t))
			if base <= 0 {
				continue
			}
			sum += r.ExpectedHops(graph.NodeID(s), graph.NodeID(t)) / base
			count++
		}
	}
	if count == 0 {
		return 1
	}
	return sum / float64(count)
}

// AblationDAG quantifies the value of Step II DAG augmentation (§V-B): the
// PERF of COYOTE with and without augmented DAGs on one topology.
func AblationDAG(topoName string, cfg Config) (*Table, error) {
	g, err := topo.Load(topoName)
	if err != nil {
		return nil, err
	}
	base, err := baseMatrix(g, "gravity", cfg.Seed)
	if err != nil {
		return nil, err
	}
	out := &Table{
		Title:   "Ablation — DAG augmentation (" + topoName + ", gravity)",
		Columns: []string{"margin", "COYOTE-augmented", "COYOTE-sp-only"},
	}
	augment := dagx.BuildAll(g, dagx.Augmented)
	spOnly := dagx.BuildAll(g, dagx.ShortestPath)
	rows := make([][]string, len(cfg.Margins))
	par.For(cfg.Workers, len(cfg.Margins), func(i int) {
		margin := cfg.Margins[i]
		box := demand.MarginBox(base, margin)
		// Both variants are normalized within the augmented DAGs so the
		// numbers are comparable.
		ev := oblivious.NewEvaluator(g, augment, box, cfg.evalConfig())
		_, repAug := oblivious.OptimizeWithEvaluator(g, augment, ev, cfg.options())
		spRouting, _ := oblivious.OptimizeWithEvaluator(g, spOnly, oblivious.NewEvaluator(g, spOnly, box, cfg.evalConfig()), cfg.options())
		// Re-express the SP-only routing over the augmented DAG membership
		// for apples-to-apples evaluation (zero ratios on extra edges; the
		// augmented DAGs contain the shortest-path DAGs, so the ratio
		// vectors carry over unchanged).
		spOnAug := pdrouting.NewZero(g, augment)
		for t := range spOnAug.Phi {
			copy(spOnAug.Phi[t], spRouting.Phi[t])
		}
		rows[i] = []string{f1(margin), f2(repAug.Perf.Ratio), f2(ev.Perf(spOnAug).Ratio)}
	})
	out.Rows = rows
	return out, nil
}
