package exp

import (
	"fmt"

	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/netsim"
	"github.com/coyote-te/coyote/internal/ospf"
)

// Fig12 reproduces the prototype evaluation of §VII: the three-node
// topology of Fig. 12a with two IP prefixes at t, the three 15-second
// traffic phases (0,2), (1,1), (2,0) Mb/s, and the packet-drop rates of
// the ECMP-achievable schemes TE1/TE2 versus COYOTE's per-prefix DAGs
// (realized with a single Fibbing lie per prefix).
func Fig12(cfg Config) (*Table, error) {
	g := graph.New()
	s1 := g.AddNode("s1")
	s2 := g.AddNode("s2")
	t := g.AddNode("t")
	g.AddLink(s1, t, 1, 1)
	g.AddLink(s2, t, 1, 1)
	g.AddLink(s1, s2, 1, 1)

	direct := func(from graph.NodeID) map[graph.EdgeID]float64 {
		id, _ := g.FindEdge(from, t)
		return map[graph.EdgeID]float64{id: 1}
	}
	half := func(from, via graph.NodeID) map[graph.EdgeID]float64 {
		d, _ := g.FindEdge(from, t)
		v, _ := g.FindEdge(from, via)
		return map[graph.EdgeID]float64{d: 0.5, v: 0.5}
	}

	type scheme struct {
		name   string
		splits map[string]map[graph.NodeID]map[graph.EdgeID]float64
	}
	schemes := []scheme{
		{
			// TE1: both sources route everything on the direct link.
			name: "TE1",
			splits: map[string]map[graph.NodeID]map[graph.EdgeID]float64{
				"t1": {s1: direct(s1), s2: direct(s2)},
				"t2": {s1: direct(s1), s2: direct(s2)},
			},
		},
		{
			// TE2: s1 splits (same DAG for both prefixes), s2 direct.
			name: "TE2",
			splits: map[string]map[graph.NodeID]map[graph.EdgeID]float64{
				"t1": {s1: half(s1, s2), s2: direct(s2)},
				"t2": {s1: half(s1, s2), s2: direct(s2)},
			},
		},
		{
			// COYOTE: per-prefix DAGs — t1 splits at s1, t2 splits at s2.
			name: "COYOTE",
			splits: map[string]map[graph.NodeID]map[graph.EdgeID]float64{
				"t1": {s1: half(s1, s2), s2: direct(s2)},
				"t2": {s2: half(s2, s1), s1: direct(s1)},
			},
		},
	}

	out := &Table{
		Title:   "Fig. 12 — prototype emulation: packet drop rate per 15 s phase",
		Columns: []string{"scheme", "phase(0,2)", "phase(1,1)", "phase(2,0)", "cumulative", "fake nodes"},
	}
	for _, sc := range schemes {
		sim := netsim.New(g)
		for prefix, split := range sc.splits {
			if err := sim.AddPrefix(&netsim.PrefixRouting{Prefix: prefix, Owner: t, Split: split}); err != nil {
				return nil, err
			}
		}
		if err := sim.AddFlow(&netsim.Flow{Name: "s1-t1", Src: s1, Prefix: "t1", Rate: netsim.PhaseRate(15, 0, 1, 2)}); err != nil {
			return nil, err
		}
		if err := sim.AddFlow(&netsim.Flow{Name: "s2-t2", Src: s2, Prefix: "t2", Rate: netsim.PhaseRate(15, 2, 1, 0)}); err != nil {
			return nil, err
		}
		stats, err := sim.Run(45, 1)
		if err != nil {
			return nil, err
		}
		var phases [3]string
		for p := 0; p < 3; p++ {
			var sent, dropped float64
			for _, st := range stats {
				if st.Time >= float64(p*15) && st.Time < float64((p+1)*15) {
					sent += st.Sent
					dropped += st.Dropped
				}
			}
			rate := 0.0
			if sent > 0 {
				rate = dropped / sent
			}
			phases[p] = fmt.Sprintf("%.0f%%", 100*rate)
		}
		fakes := 0
		if sc.name == "COYOTE" {
			fakes = coyoteFig12Lies(g, s1, s2, t)
		}
		out.AddRow(sc.name, phases[0], phases[1], phases[2],
			fmt.Sprintf("%.0f%%", 100*netsim.CumulativeDropRate(stats)), fmt.Sprintf("%d", fakes))
	}
	return out, nil
}

// coyoteFig12Lies builds the actual lie set of §VII — one fake node per
// prefix attracting half of the splitting source's traffic to the detour —
// and returns how many fake nodes the LSDB needs (verifying the realized
// splits along the way; it panics on a modeling bug, as this is a fixed
// tiny instance).
func coyoteFig12Lies(g *graph.Graph, s1, s2, t graph.NodeID) int {
	db := ospf.NewLSDB(g)
	// Prefix t1: s1 must split between its two equal-cost paths (direct
	// cost 1, via s2 cost 2): tie them by lying that t1 is reachable via a
	// fake neighbor mapping to s2 at total cost 1.
	if err := db.Inject(ospf.FakeNode{Name: "lie-t1", Attached: s1, MapsTo: s2, Dest: t, CostUp: 0.5, CostDown: 0.5}); err != nil {
		panic(err)
	}
	fibs := db.SPF(t)
	r := fibs[s1].Ratios()
	if r[s2] != 0.5 || r[t] != 0.5 {
		panic(fmt.Sprintf("fig12 lie did not realize a half split: %v", r))
	}
	// The t2 lie is symmetric (attached at s2, mapping to s1); per-prefix
	// scoping means the two lies live in distinct prefix LSAs.
	return 2
}
