package exp

import (
	"fmt"

	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/failover"
	"github.com/coyote-te/coyote/internal/topo"
)

// Failover exercises the precomputed failure configurations that §VI-A of
// the paper describes: for every single-link failure of a topology, the
// re-optimized COYOTE configuration versus ECMP on the surviving network
// (gravity base demands, margin 2).
func Failover(topoName string, cfg Config) (*Table, error) {
	g, err := topo.Load(topoName)
	if err != nil {
		return nil, err
	}
	base, err := baseMatrix(g, "gravity", cfg.Seed)
	if err != nil {
		return nil, err
	}
	box := demand.MarginBox(base, 2)
	plan, err := failover.Precompute(g, box, failover.Config{
		OptIters: cfg.OptIters,
		AdvIters: cfg.AdvIters,
		Samples:  cfg.Samples,
		Eps:      cfg.Eps,
		Seed:     cfg.Seed,
		Workers:  cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	out := &Table{
		Title:   fmt.Sprintf("Failure scenarios — %s, gravity, margin 2 (precomputed per-link configs)", topoName),
		Columns: []string{"failed link", "COYOTE", "ECMP", "status"},
	}
	out.AddRow("(none)", f2(plan.NormalPerf), "", "normal")
	for _, sc := range plan.Scenarios {
		e := g.Edge(sc.Failed)
		label := g.Name(e.From) + "–" + g.Name(e.To)
		if sc.Disconnected {
			out.AddRow(label, "", "", "partitions network")
			continue
		}
		out.AddRow(label, f2(sc.Perf), f2(sc.ECMPPerf), "ok")
	}
	if w := plan.WorstScenario(); w != nil {
		e := g.Edge(w.Failed)
		out.AddRow("worst: "+g.Name(e.From)+"–"+g.Name(e.To), f2(w.Perf), f2(w.ECMPPerf), "")
	}
	return out, nil
}
