package exp

import (
	"fmt"

	"github.com/coyote-te/coyote/internal/dagx"
	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/failover"
	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/oblivious"
	"github.com/coyote-te/coyote/internal/scen"
)

// The scen-* experiments sweep generated scenarios — rather than the fixed
// synthetic corpus — through the parallel evaluator, demonstrating the
// scenario engine end to end: every experiment derives its topology from
// cfg.Seed, so the suite is reproducible yet unbounded (change the seed,
// get a fresh scenario).

// SweepGraph runs the Fig. 6-style margin sweep on an arbitrary topology
// under a named demand model. It backs the scen-* experiments and the
// -topo-file flag of cmd/coyote-eval.
func SweepGraph(title string, g *graph.Graph, model string, cfg Config) (*Table, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if !g.Connected() {
		return nil, fmt.Errorf("exp: topology %q is not strongly connected", title)
	}
	base, err := baseMatrix(g, model, cfg.Seed)
	if err != nil {
		return nil, err
	}
	dags := dagx.BuildAll(g, dagx.Augmented)
	rows, err := marginSweep(g, dags, base, cfg)
	if err != nil {
		return nil, err
	}
	return sweepTable(fmt.Sprintf("%s, %s model (PERF vs margin)", title, model), rows, cfg.Oblivious), nil
}

// ScenSweep generates a topology with the named generator and margin-sweeps
// it under a demand model.
func ScenSweep(gen string, p scen.Params, model string, cfg Config) (*Table, error) {
	p.Seed = cfg.Seed
	g, err := scen.Generate(gen, p)
	if err != nil {
		return nil, err
	}
	title := fmt.Sprintf("Scenario sweep — %s (n=%d, seed %d)", gen, g.NumNodes(), cfg.Seed)
	return SweepGraph(title, g, model, cfg)
}

// ScenTimeOfDay optimizes one static COYOTE configuration on a generated
// grid WAN, then plays a seeded diurnal demand sequence sampled inside the
// uncertainty box against it: per step, the normalized utilization of the
// static COYOTE routing vs ECMP. The point of the paper made measurable:
// one robust configuration serves the whole day.
func ScenTimeOfDay(p scen.Params, steps int, cfg Config) (*Table, error) {
	p.Seed = cfg.Seed
	g, err := scen.Generate("grid", p)
	if err != nil {
		return nil, err
	}
	base, err := baseMatrix(g, "gravity", cfg.Seed)
	if err != nil {
		return nil, err
	}
	box := demand.MarginBox(base, 2)
	dags := dagx.BuildAll(g, dagx.Augmented)
	ev := oblivious.NewEvaluator(g, dags, box, cfg.evalConfig())
	routing, _ := oblivious.OptimizeWithEvaluator(g, dags, ev, cfg.options())
	ecmp := oblivious.ECMPOnDAGs(g, dags)

	out := &Table{
		Title: fmt.Sprintf("Time-of-day sequence — grid %dx%d, %d steps inside the margin-2 box (normalized utilization)",
			p.Rows, p.Cols, steps),
		Columns: []string{"step", "COYOTE", "ECMP"},
	}
	for i, D := range scen.TimeOfDay(box, steps, 0.1, cfg.Seed) {
		norm := ev.OptDAG(D)
		out.AddRow(fmt.Sprintf("t%02d", i),
			f2(ev.MaxUtilization(routing, D)/norm),
			f2(ev.MaxUtilization(ecmp, D)/norm))
	}
	return out, nil
}

// ScenSRLG enumerates shared-risk link groups on a generated ring WAN and
// precomputes a re-optimized configuration per group failure via
// failover.PrecomputeGroups — the multi-link extension of the failover
// experiment.
func ScenSRLG(p scen.Params, groups int, cfg Config) (*Table, error) {
	p.Seed = cfg.Seed
	g, err := scen.Generate("ring", p)
	if err != nil {
		return nil, err
	}
	base, err := baseMatrix(g, "gravity", cfg.Seed)
	if err != nil {
		return nil, err
	}
	box := demand.MarginBox(base, 2)
	suite := scen.SRLGPartition(g, groups, cfg.Seed)
	scenarios, err := failover.PrecomputeGroups(g, box, scen.LinkSets(suite), failover.Config{
		OptIters: cfg.OptIters,
		AdvIters: cfg.AdvIters,
		Samples:  cfg.Samples,
		Eps:      cfg.Eps,
		Seed:     cfg.Seed,
		Workers:  cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	out := &Table{
		Title:   fmt.Sprintf("SRLG failures — ring n=%d, %d risk groups, gravity, margin 2", g.NumNodes(), len(suite)),
		Columns: []string{"group", "links", "COYOTE", "ECMP", "status"},
	}
	for i, sc := range scenarios {
		links := fmt.Sprint(len(sc.Failed))
		if sc.Disconnected {
			out.AddRow(suite[i].Name, links, "", "", "partitions network")
			continue
		}
		out.AddRow(suite[i].Name, links, f2(sc.Perf), f2(sc.ECMPPerf), "ok")
	}
	return out, nil
}
