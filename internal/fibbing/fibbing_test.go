package fibbing

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/coyote-te/coyote/internal/dagx"
	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/pdrouting"
	"github.com/coyote-te/coyote/internal/topo"
	"github.com/coyote-te/coyote/internal/wcmp"
)

func fig1(t *testing.T) (*graph.Graph, map[string]graph.NodeID) {
	t.Helper()
	g := graph.New()
	ids := map[string]graph.NodeID{
		"s1": g.AddNode("s1"),
		"s2": g.AddNode("s2"),
		"v":  g.AddNode("v"),
		"t":  g.AddNode("t"),
	}
	g.AddLink(ids["s1"], ids["s2"], 1, 1)
	g.AddLink(ids["s1"], ids["v"], 1, 1)
	g.AddLink(ids["s2"], ids["v"], 1, 1)
	g.AddLink(ids["s2"], ids["t"], 1, 1)
	g.AddLink(ids["v"], ids["t"], 1, 1)
	return g, ids
}

// skewedRouting builds a COYOTE-like routing with uneven ratios at s1.
func skewedRouting(t *testing.T, g *graph.Graph, ids map[string]graph.NodeID) *pdrouting.Routing {
	t.Helper()
	dags := dagx.BuildAll(g, dagx.Augmented)
	r := pdrouting.Uniform(g, dags)
	es1s2, _ := g.FindEdge(ids["s1"], ids["s2"])
	es1v, _ := g.FindEdge(ids["s1"], ids["v"])
	if err := r.SetRatios(ids["t"], ids["s1"], map[graph.EdgeID]float64{es1s2: 2.0 / 3, es1v: 1.0 / 3}); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSynthesizeAndVerifyFig1(t *testing.T) {
	g, ids := fig1(t)
	r := skewedRouting(t, g, ids)
	q, err := wcmp.Apply(r, 3)
	if err != nil {
		t.Fatal(err)
	}
	syn, err := Synthesize(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, q, syn); err != nil {
		t.Fatalf("verification failed: %v", err)
	}
	if syn.FakeNodes == 0 {
		t.Fatal("skewed ratios must require lies")
	}
	// Realized ratios at s1 toward t must be 2/3, 1/3.
	fibs := syn.LSDB.SPF(ids["t"])
	ratios := fibs[ids["s1"]].Ratios()
	if math.Abs(ratios[ids["s2"]]-2.0/3) > 1e-9 {
		t.Fatalf("realized ratio toward s2 = %g, want 2/3", ratios[ids["s2"]])
	}
}

func TestNoLiesForPlainECMP(t *testing.T) {
	g, ids := fig1(t)
	_ = ids
	// ECMP on shortest-path DAGs: quantization is all-1 multiplicities on
	// SP next-hops, so no destination needs lies.
	dags := dagx.BuildAll(g, dagx.ShortestPath)
	r := pdrouting.Uniform(g, dags)
	q, err := wcmp.Apply(r, 3)
	if err != nil {
		t.Fatal(err)
	}
	syn, err := Synthesize(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if syn.FakeNodes != 0 {
		t.Fatalf("plain ECMP needed %d fake nodes, want 0", syn.FakeNodes)
	}
	if err := Verify(g, q, syn); err != nil {
		t.Fatalf("verification failed: %v", err)
	}
}

func TestForwardingIsLoopFree(t *testing.T) {
	g, ids := fig1(t)
	r := skewedRouting(t, g, ids)
	q, err := wcmp.Apply(r, 3)
	if err != nil {
		t.Fatal(err)
	}
	syn, err := Synthesize(g, q)
	if err != nil {
		t.Fatal(err)
	}
	// Walk the realized FIBs from every source greedily through every
	// possible next-hop; must reach t within n hops.
	for t2 := 0; t2 < g.NumNodes(); t2++ {
		dest := graph.NodeID(t2)
		fibs := syn.LSDB.SPF(dest)
		for s := 0; s < g.NumNodes(); s++ {
			if s == t2 {
				continue
			}
			// BFS through FIB next-hops.
			seen := map[graph.NodeID]bool{graph.NodeID(s): true}
			frontier := []graph.NodeID{graph.NodeID(s)}
			for hop := 0; hop < g.NumNodes()+1 && len(frontier) > 0; hop++ {
				var next []graph.NodeID
				for _, u := range frontier {
					if u == dest {
						continue
					}
					if fibs[u] == nil {
						t.Fatalf("router %d has no FIB toward %d", u, dest)
					}
					for nh := range fibs[u] {
						if seen[nh] {
							continue
						}
						seen[nh] = true
						next = append(next, nh)
					}
				}
				frontier = next
			}
			if !seen[dest] {
				t.Fatalf("traffic from %d never reaches %d", s, t2)
			}
		}
	}
}

func TestSynthesizeOnCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus synthesis in -short mode")
	}
	g := topo.MustLoad("Abilene")
	dags := dagx.BuildAll(g, dagx.Augmented)
	r := pdrouting.Uniform(g, dags)
	q, err := wcmp.Apply(r, 3)
	if err != nil {
		t.Fatal(err)
	}
	syn, err := Synthesize(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, q, syn); err != nil {
		t.Fatalf("Abilene verification failed: %v", err)
	}
	rr, err := RealizedRouting(g, dags, syn)
	if err != nil {
		t.Fatal(err)
	}
	if len(rr) != g.NumNodes() {
		t.Fatalf("RealizedRouting returned %d destinations", len(rr))
	}
}

// Property: synthesis + verification succeeds for random skewed routings on
// random graphs, and realized ratios match the quantized targets.
func TestPropertySynthesisRealizesQuantizedRatios(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(5)
		g := graph.New()
		g.AddNodes(n)
		for i := 0; i < n; i++ {
			g.AddLink(graph.NodeID(i), graph.NodeID((i+1)%n), 1+rng.Float64()*4, 1+float64(rng.Intn(3)))
		}
		g.AddLink(0, graph.NodeID(n/2), 1+rng.Float64()*4, 1+float64(rng.Intn(3)))
		dags := dagx.BuildAll(g, dagx.Augmented)
		r := pdrouting.Uniform(g, dags)
		// Randomly skew a few nodes.
		for trial := 0; trial < 3; trial++ {
			tdst := graph.NodeID(rng.Intn(n))
			u := graph.NodeID(rng.Intn(n))
			if u == tdst {
				continue
			}
			out := dags[tdst].OutEdges(g, u)
			if len(out) < 2 {
				continue
			}
			ratios := make(map[graph.EdgeID]float64, len(out))
			sum := 0.0
			vals := make([]float64, len(out))
			for i := range out {
				vals[i] = 0.1 + rng.Float64()
				sum += vals[i]
			}
			for i, id := range out {
				ratios[id] = vals[i] / sum
			}
			if err := r.SetRatios(tdst, u, ratios); err != nil {
				return false
			}
		}
		q, err := wcmp.Apply(r, 4)
		if err != nil {
			return false
		}
		syn, err := Synthesize(g, q)
		if err != nil {
			return false
		}
		return Verify(g, q, syn) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMessagesDeterministicAndComplete(t *testing.T) {
	g, ids := fig1(t)
	r := skewedRouting(t, g, ids)
	q, err := wcmp.Apply(r, 3)
	if err != nil {
		t.Fatal(err)
	}
	syn, err := Synthesize(g, q)
	if err != nil {
		t.Fatal(err)
	}
	m1 := syn.Messages(g)
	m2 := syn.Messages(g)
	if len(m1) != syn.FakeNodes {
		t.Fatalf("%d messages, want %d", len(m1), syn.FakeNodes)
	}
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatal("Messages not deterministic")
		}
	}
	var buf bytes.Buffer
	if err := syn.WriteJSON(&buf, g); err != nil {
		t.Fatal(err)
	}
	var decoded []Message
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(decoded) != len(m1) {
		t.Fatalf("round-trip lost messages: %d vs %d", len(decoded), len(m1))
	}
}
