package fibbing

import (
	"fmt"
	"sort"

	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/ospf"
)

// LSA diffing: when the online controller recomputes a configuration, the
// routers should not be asked to flush and re-learn the whole lie set —
// only the LSAs that actually changed. Diff computes the minimal
// add/remove/update set between two syntheses, VerifyDiff proves that
// applying the diff to the previous LSDB reproduces the next forwarding
// exactly, and Churn (the number of LSAs touched) is the reconfiguration
// cost metric the operational literature cares about.

// LSADiff is the minimal set of fake-node LSAs that must be injected,
// withdrawn, or re-advertised to move a network from one synthesized lie
// configuration to another. Fake nodes are identified by Name, which
// encodes (destination, lied-to router, forwarding adjacency, replica
// index) — the natural identity of a Fibbing LSA.
type LSADiff struct {
	// Add lists LSAs present only in the next synthesis.
	Add []ospf.FakeNode
	// Remove lists LSAs present only in the previous synthesis.
	Remove []ospf.FakeNode
	// Update lists LSAs present in both whose advertised costs (or
	// forwarding adjacency) changed; entries carry the next values.
	Update []ospf.FakeNode
}

// Churn is the number of LSAs touched: additions + withdrawals + updates.
// This is the reconfiguration cost of moving between the two lie sets.
func (d *LSADiff) Churn() int { return len(d.Add) + len(d.Remove) + len(d.Update) }

// Empty reports whether the diff is a no-op.
func (d *LSADiff) Empty() bool { return d.Churn() == 0 }

// fakesByName flattens a synthesis's lie set into a name-keyed map. A nil
// synthesis means "no lies" (the state before any synthesis was applied).
func fakesByName(s *Synthesis) map[string]ospf.FakeNode {
	out := make(map[string]ospf.FakeNode)
	if s == nil {
		return out
	}
	for _, fakes := range s.LSDB.Fakes {
		for _, f := range fakes {
			out[f.Name] = f
		}
	}
	return out
}

// sortFakes orders fake nodes deterministically (by destination, then
// name), matching the ordering of Synthesis.Messages.
func sortFakes(fs []ospf.FakeNode) {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].Dest != fs[j].Dest {
			return fs[i].Dest < fs[j].Dest
		}
		return fs[i].Name < fs[j].Name
	})
}

// Diff computes the minimal add/remove/update LSA set transforming prev's
// lie configuration into next's. Either synthesis may be nil (treated as
// the empty lie set, so Diff(nil, s) is the full injection of s). The
// result is deterministic: entries are sorted by destination then name.
func Diff(prev, next *Synthesis) *LSADiff {
	pm := fakesByName(prev)
	nm := fakesByName(next)
	d := &LSADiff{}
	for name, nf := range nm {
		pf, ok := pm[name]
		if !ok {
			d.Add = append(d.Add, nf)
			continue
		}
		if pf != nf {
			d.Update = append(d.Update, nf)
		}
	}
	for name, pf := range pm {
		if _, ok := nm[name]; !ok {
			d.Remove = append(d.Remove, pf)
		}
	}
	sortFakes(d.Add)
	sortFakes(d.Remove)
	sortFakes(d.Update)
	return d
}

// ApplyDiff replays a diff on top of prev's lie set and materializes the
// result as a synthesis over graph g (the topology of the *next*
// configuration — node IDs must be consistent between the two, which
// WithoutLinks-derived survivor graphs guarantee). It errors if the diff
// does not fit prev (removing or updating an LSA that is not present,
// adding one that is).
func ApplyDiff(g *graph.Graph, prev *Synthesis, d *LSADiff) (*Synthesis, error) {
	set := fakesByName(prev)
	for _, f := range d.Remove {
		if _, ok := set[f.Name]; !ok {
			return nil, fmt.Errorf("fibbing: diff removes unknown LSA %q", f.Name)
		}
		delete(set, f.Name)
	}
	for _, f := range d.Update {
		if _, ok := set[f.Name]; !ok {
			return nil, fmt.Errorf("fibbing: diff updates unknown LSA %q", f.Name)
		}
		set[f.Name] = f
	}
	for _, f := range d.Add {
		if _, ok := set[f.Name]; ok {
			return nil, fmt.Errorf("fibbing: diff adds duplicate LSA %q", f.Name)
		}
		set[f.Name] = f
	}

	db := ospf.NewLSDB(g)
	out := &Synthesis{LSDB: db}
	all := make([]ospf.FakeNode, 0, len(set))
	for _, f := range set {
		all = append(all, f)
	}
	sortFakes(all)
	lied := make(map[graph.NodeID]bool)
	for _, f := range all {
		if err := db.Inject(f); err != nil {
			return nil, err
		}
		out.FakeNodes++
		lied[f.Dest] = true
	}
	for dest := range lied {
		out.LiedDestinations = append(out.LiedDestinations, dest)
	}
	sort.Slice(out.LiedDestinations, func(i, j int) bool {
		return out.LiedDestinations[i] < out.LiedDestinations[j]
	})
	return out, nil
}

// VerifyDiff proves that prev ⊕ d reproduces next's forwarding exactly:
// it applies the diff to prev's lie set over next's topology g and checks
// that, for every destination, every router's realized FIB multiset under
// the reconstructed LSDB equals the one under next's LSDB. It returns the
// first discrepancy found.
func VerifyDiff(g *graph.Graph, prev *Synthesis, d *LSADiff, next *Synthesis) error {
	applied, err := ApplyDiff(g, prev, d)
	if err != nil {
		return err
	}
	for t := 0; t < g.NumNodes(); t++ {
		dest := graph.NodeID(t)
		want := next.LSDB.SPF(dest)
		got := applied.LSDB.SPF(dest)
		for u := 0; u < g.NumNodes(); u++ {
			if graph.NodeID(u) == dest {
				continue
			}
			if (want[u] == nil) != (got[u] == nil) {
				return fmt.Errorf("fibbing: diff verification: router %d toward %d: fib presence mismatch (want %v, got %v)",
					u, dest, want[u], got[u])
			}
			if len(want[u]) != len(got[u]) {
				return fmt.Errorf("fibbing: diff verification: router %d toward %d: %d next-hops, want %d",
					u, dest, len(got[u]), len(want[u]))
			}
			for nh, m := range want[u] {
				if got[u][nh] != m {
					return fmt.Errorf("fibbing: diff verification: router %d toward %d: next-hop %d multiplicity %d, want %d",
						u, dest, nh, got[u][nh], m)
				}
			}
		}
	}
	return nil
}

// TouchedDestinations lists the destinations whose LSA set the diff
// touches, sorted — the locality of a reconfiguration (a single-ratio
// change should touch a single destination).
func (d *LSADiff) TouchedDestinations() []graph.NodeID {
	seen := make(map[graph.NodeID]bool)
	for _, fs := range [][]ospf.FakeNode{d.Add, d.Remove, d.Update} {
		for _, f := range fs {
			seen[f.Dest] = true
		}
	}
	out := make([]graph.NodeID, 0, len(seen))
	for dst := range seen {
		out = append(out, dst)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
