// Package fibbing synthesizes the "lies" — fake nodes and links injected
// into the OSPF link-state database — that make unmodified routers realize
// COYOTE's per-destination DAGs and (quantized) splitting ratios, following
// the Fibbing technique ([8], [9]) described in §V-D of the paper.
//
// The synthesizer uses the per-destination potential construction: every
// router u that needs a non-default forwarding entry toward destination t
// receives one fake node per desired FIB slot, all advertising t at total
// cost c·L(u), where L is a potential strictly decreasing along the target
// DAG and c is small enough that fake paths always beat real ones. The
// equal-cost fake adjacencies then tie, ECMP splits across them with the
// desired multiplicities, and data-plane forwarding follows the DAG (so it
// is loop-free by construction). Destinations whose target equals plain
// shortest-path ECMP need no lies at all.
package fibbing

import (
	"fmt"
	"math"

	"github.com/coyote-te/coyote/internal/dagx"
	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/ospf"
	"github.com/coyote-te/coyote/internal/spf"
	"github.com/coyote-te/coyote/internal/wcmp"
)

// Synthesis is the output of Synthesize: an augmented LSDB and bookkeeping.
type Synthesis struct {
	LSDB *ospf.LSDB
	// LiedDestinations lists destinations that required lies.
	LiedDestinations []graph.NodeID
	// FakeNodes is the total number of injected fake nodes.
	FakeNodes int
}

// Synthesize computes the lie set realizing the quantized routing q over
// graph g. The input graph's weights are the real OSPF weights routers
// already use.
func Synthesize(g *graph.Graph, q *wcmp.QuantizedRouting) (*Synthesis, error) {
	db := ospf.NewLSDB(g)
	out := &Synthesis{LSDB: db}

	// c < wmin/n makes every fake path shorter than any real alternative.
	wmin := math.Inf(1)
	for _, e := range g.Edges() {
		if e.Weight < wmin {
			wmin = e.Weight
		}
	}
	n := g.NumNodes()
	c := wmin / (2 * float64(n+1))

	for t := range q.Routing.DAGs {
		dest := graph.NodeID(t)
		// One shortest-path tree serves this destination's whole synthesis
		// (target FIB derivation and the needs-lies check); when the DAG
		// carries its construction-time distance field no Dijkstra runs at
		// all.
		tree := spTree(g, q.Routing.DAGs[t])
		targets, err := targetFIBs(g, q, dest, tree)
		if err != nil {
			return nil, err
		}
		if !needsLies(g, dest, targets, tree) {
			continue
		}
		out.LiedDestinations = append(out.LiedDestinations, dest)
		// Potential: position from the destination in reverse topological
		// order of the target DAG (t gets 0).
		d := q.Routing.DAGs[t]
		L := make([]int, n)
		rank := 1
		for i := len(d.Order) - 1; i >= 0; i-- {
			u := d.Order[i]
			if u == dest {
				L[u] = 0
				continue
			}
			L[u] = rank
			rank++
		}
		for u := 0; u < n; u++ {
			if graph.NodeID(u) == dest || targets[u] == nil {
				continue
			}
			total := c * float64(L[u])
			for nh, mult := range targets[u] {
				for k := 0; k < mult; k++ {
					f := ospf.FakeNode{
						Name:     fmt.Sprintf("fake-t%d-u%d-v%d-%d", t, u, nh, k),
						Attached: graph.NodeID(u),
						MapsTo:   nh,
						Dest:     dest,
						CostUp:   total / 2,
						CostDown: total / 2,
					}
					if err := db.Inject(f); err != nil {
						return nil, err
					}
					out.FakeNodes++
				}
			}
		}
	}
	return out, nil
}

// spTree returns a shortest-path tree for d.Dst over g: the DAG's cached
// construction-time distance field when present (zero Dijkstras — the DAGs
// of the standard pipeline and of incremental sessions always carry one),
// falling back to a cold spf.ToDestination for operator-supplied DAGs.
func spTree(g *graph.Graph, d *dagx.DAG) *spf.Tree {
	if t := d.Tree(); t != nil {
		return t
	}
	return spf.ToDestination(g, d.Dst)
}

// targetFIBs derives, per router, the desired next-hop multiplicity map
// toward dest. Routers whose quantized multiplicities are all zero (no
// traffic shaped through them) fall back to their shortest-path next-hops
// so that they still forward deterministically. The caller provides the
// destination's shortest-path tree so it is computed (at most) once per
// destination and shared across the synthesis passes.
func targetFIBs(g *graph.Graph, q *wcmp.QuantizedRouting, dest graph.NodeID, tree *spf.Tree) ([]ospf.FIB, error) {
	n := g.NumNodes()
	d := q.Routing.DAGs[dest]
	fibs := make([]ospf.FIB, n)
	var hopBuf []graph.EdgeID
	for u := 0; u < n; u++ {
		if graph.NodeID(u) == dest {
			continue
		}
		fib := make(ospf.FIB)
		for _, id := range d.OutEdges(g, graph.NodeID(u)) {
			if m := q.Mult[dest][id]; m > 0 {
				fib[g.Edge(id).To] += m
			}
		}
		if len(fib) == 0 {
			hopBuf = tree.AppendNextHops(hopBuf[:0], g, graph.NodeID(u))
			for _, id := range hopBuf {
				fib[g.Edge(id).To]++
			}
		}
		if len(fib) == 0 {
			if tree.Dist[u] == spf.Inf {
				continue // genuinely unreachable
			}
			return nil, fmt.Errorf("fibbing: router %d has no forwarding entry toward %d", u, dest)
		}
		fibs[u] = fib
	}
	return fibs, nil
}

// needsLies reports whether the target differs from plain shortest-path
// ECMP (equal multiplicity 1 on every SP next-hop), reusing the caller's
// shortest-path tree for the destination.
func needsLies(g *graph.Graph, dest graph.NodeID, targets []ospf.FIB, tree *spf.Tree) bool {
	var hopBuf []graph.EdgeID
	for u := 0; u < g.NumNodes(); u++ {
		if graph.NodeID(u) == dest || targets[u] == nil {
			continue
		}
		hopBuf = tree.AppendNextHops(hopBuf[:0], g, graph.NodeID(u))
		if len(hopBuf) != len(targets[u]) {
			return true
		}
		for _, id := range hopBuf {
			if targets[u][g.Edge(id).To] != 1 {
				return true
			}
		}
	}
	return false
}

// Verify checks that running SPF over the synthesized LSDB reproduces the
// quantized routing exactly: every router's realized FIB multiset equals
// the target derived from q. It returns the first discrepancy found.
func Verify(g *graph.Graph, q *wcmp.QuantizedRouting, syn *Synthesis) error {
	for t := range q.Routing.DAGs {
		dest := graph.NodeID(t)
		targets, err := targetFIBs(g, q, dest, spTree(g, q.Routing.DAGs[t]))
		if err != nil {
			return err
		}
		realized := syn.LSDB.SPF(dest)
		for u := 0; u < g.NumNodes(); u++ {
			if graph.NodeID(u) == dest {
				continue
			}
			want := targets[u]
			got := realized[u]
			if want == nil && got == nil {
				continue
			}
			if (want == nil) != (got == nil) {
				return fmt.Errorf("fibbing: router %d toward %d: fib presence mismatch (want %v, got %v)", u, dest, want, got)
			}
			if len(want) != len(got) {
				return fmt.Errorf("fibbing: router %d toward %d: %d next-hops realized, want %d", u, dest, len(got), len(want))
			}
			for nh, m := range want {
				if got[nh] != m {
					return fmt.Errorf("fibbing: router %d toward %d: next-hop %d multiplicity %d, want %d", u, dest, nh, got[nh], m)
				}
			}
		}
	}
	return nil
}

// RealizedRouting reconstructs the PD routing that the augmented LSDB
// induces (for end-to-end verification and for feeding the emulator): each
// router's splitting ratios are its realized FIB ratios.
func RealizedRouting(g *graph.Graph, dags []*dagx.DAG, syn *Synthesis) ([]map[graph.NodeID]map[graph.NodeID]float64, error) {
	out := make([]map[graph.NodeID]map[graph.NodeID]float64, g.NumNodes())
	for t := 0; t < g.NumNodes(); t++ {
		dest := graph.NodeID(t)
		fibs := syn.LSDB.SPF(dest)
		m := make(map[graph.NodeID]map[graph.NodeID]float64)
		for u := 0; u < g.NumNodes(); u++ {
			if fibs[u] == nil {
				continue
			}
			m[graph.NodeID(u)] = fibs[u].Ratios()
		}
		out[t] = m
	}
	return out, nil
}
