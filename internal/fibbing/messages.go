package fibbing

import (
	"encoding/json"
	"io"
	"sort"

	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/ospf"
)

// Message is the wire-friendly form of one fake-node LSA, the "OSPF
// messages" output of the COYOTE architecture (Fig. 5 of the paper). The
// encoding is JSON rather than RFC 2328 binary: the Fibbing controller
// this models speaks to routers through its own LSA-injection channel, and
// JSON keeps the artifacts inspectable.
type Message struct {
	Name     string  `json:"name"`
	Dest     string  `json:"destination"`
	Attached string  `json:"attached_router"`
	MapsTo   string  `json:"forwarding_adjacency"`
	CostUp   float64 `json:"cost_to_fake"`
	CostDown float64 `json:"cost_fake_to_dest"`
}

// Messages flattens the synthesized lie set into deterministic (sorted)
// wire messages, with router names resolved against g.
func (s *Synthesis) Messages(g *graph.Graph) []Message {
	var out []Message
	dests := make([]graph.NodeID, 0, len(s.LSDB.Fakes))
	for d := range s.LSDB.Fakes {
		dests = append(dests, d)
	}
	sort.Slice(dests, func(i, j int) bool { return dests[i] < dests[j] })
	for _, d := range dests {
		fakes := append([]ospf.FakeNode(nil), s.LSDB.Fakes[d]...)
		sort.Slice(fakes, func(i, j int) bool { return fakes[i].Name < fakes[j].Name })
		for _, f := range fakes {
			out = append(out, Message{
				Name:     f.Name,
				Dest:     g.Name(f.Dest),
				Attached: g.Name(f.Attached),
				MapsTo:   g.Name(f.MapsTo),
				CostUp:   f.CostUp,
				CostDown: f.CostDown,
			})
		}
	}
	return out
}

// WriteJSON emits the message stream as indented JSON.
func (s *Synthesis) WriteJSON(w io.Writer, g *graph.Graph) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.Messages(g))
}
