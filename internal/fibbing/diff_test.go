package fibbing

import (
	"testing"

	"github.com/coyote-te/coyote/internal/dagx"
	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/pdrouting"
	"github.com/coyote-te/coyote/internal/topo"
	"github.com/coyote-te/coyote/internal/wcmp"
)

// synth quantizes and synthesizes a routing, failing the test on error.
func synth(t *testing.T, g *graph.Graph, r *pdrouting.Routing) *Synthesis {
	t.Helper()
	q, err := wcmp.Apply(r, 3)
	if err != nil {
		t.Fatal(err)
	}
	syn, err := Synthesize(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, q, syn); err != nil {
		t.Fatal(err)
	}
	return syn
}

func TestDiffNoOpIsEmpty(t *testing.T) {
	g, ids := fig1(t)
	r := skewedRouting(t, g, ids)
	a := synth(t, g, r)
	b := synth(t, g, r)
	d := Diff(a, b)
	if !d.Empty() {
		t.Fatalf("identical syntheses produced non-empty diff (churn %d)", d.Churn())
	}
	if err := VerifyDiff(g, a, d, b); err != nil {
		t.Fatalf("no-op diff failed verification: %v", err)
	}
}

func TestDiffFromNilIsFullInjection(t *testing.T) {
	g, ids := fig1(t)
	r := skewedRouting(t, g, ids)
	s := synth(t, g, r)
	d := Diff(nil, s)
	if len(d.Add) != s.FakeNodes || len(d.Remove) != 0 || len(d.Update) != 0 {
		t.Fatalf("diff from empty = %d adds %d removes %d updates, want %d/0/0",
			len(d.Add), len(d.Remove), len(d.Update), s.FakeNodes)
	}
	if err := VerifyDiff(g, nil, d, s); err != nil {
		t.Fatalf("full-injection diff failed verification: %v", err)
	}
}

// TestDiffSingleRatioChangeIsLocal: changing one node's splitting ratios
// toward one destination must only touch that destination's LSAs.
func TestDiffSingleRatioChangeIsLocal(t *testing.T) {
	g, ids := fig1(t)
	r1 := skewedRouting(t, g, ids) // s1 → t split 2/3, 1/3
	a := synth(t, g, r1)

	r2 := r1.Clone()
	es1s2, _ := g.FindEdge(ids["s1"], ids["s2"])
	es1v, _ := g.FindEdge(ids["s1"], ids["v"])
	if err := r2.SetRatios(ids["t"], ids["s1"], map[graph.EdgeID]float64{es1s2: 3.0 / 4, es1v: 1.0 / 4}); err != nil {
		t.Fatal(err)
	}
	b := synth(t, g, r2)

	d := Diff(a, b)
	if d.Empty() {
		t.Fatal("ratio change produced an empty diff")
	}
	touched := d.TouchedDestinations()
	if len(touched) != 1 || touched[0] != ids["t"] {
		t.Fatalf("diff touched destinations %v, want exactly [%d]", touched, ids["t"])
	}
	if err := VerifyDiff(g, a, d, b); err != nil {
		t.Fatalf("single-ratio diff failed verification: %v", err)
	}
	// The diff must be strictly smaller than a full re-injection.
	if d.Churn() >= a.FakeNodes+b.FakeNodes {
		t.Fatalf("churn %d not better than flush-and-reload %d", d.Churn(), a.FakeNodes+b.FakeNodes)
	}
}

// TestDiffFailureRecoveryRoundTrip: failing a link and recovering it must
// round-trip back to the original synthesis with an empty final diff, and
// every intermediate diff must verify.
func TestDiffFailureRecoveryRoundTrip(t *testing.T) {
	g, ids := fig1(t)
	r := skewedRouting(t, g, ids)
	normal := synth(t, g, r)

	// Fail the s2–t link: survivor keeps node IDs, re-derive a routing.
	link, _ := g.FindEdge(ids["s2"], ids["t"])
	survivor := g.WithoutLink(link)
	sdags := dagx.BuildAll(survivor, dagx.Augmented)
	failedSyn := synth(t, survivor, pdrouting.Uniform(survivor, sdags))

	dFail := Diff(normal, failedSyn)
	if err := VerifyDiff(survivor, normal, dFail, failedSyn); err != nil {
		t.Fatalf("failure diff failed verification: %v", err)
	}

	// Recover: synthesize the original routing again on the original graph.
	recovered := synth(t, g, r)
	dRecover := Diff(failedSyn, recovered)
	if err := VerifyDiff(g, failedSyn, dRecover, recovered); err != nil {
		t.Fatalf("recovery diff failed verification: %v", err)
	}
	if d := Diff(normal, recovered); !d.Empty() {
		t.Fatalf("failure→recovery did not round-trip: residual churn %d", d.Churn())
	}
}

// TestDiffVerifierOnCorpus exercises the verifier on every corpus topology
// the synthesis tests use: perturb one destination's ratios and prove
// prev ⊕ diff ≡ next.
func TestDiffVerifierOnCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus diff sweep in -short mode")
	}
	for _, name := range []string{"NSF", "Abilene", "Geant"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			g := topo.MustLoad(name)
			dags := dagx.BuildAll(g, dagx.Augmented)
			r1 := pdrouting.Uniform(g, dags)
			a := synth(t, g, r1)

			// Skew the first node with ≥ 2 DAG out-edges toward destination 0.
			r2 := r1.Clone()
			dst := graph.NodeID(0)
			skewed := false
			for u := 0; u < g.NumNodes() && !skewed; u++ {
				if graph.NodeID(u) == dst {
					continue
				}
				out := dags[dst].OutEdges(g, graph.NodeID(u))
				if len(out) < 2 {
					continue
				}
				ratios := make(map[graph.EdgeID]float64, len(out))
				rest := 0.25 / float64(len(out)-1)
				for i, id := range out {
					if i == 0 {
						ratios[id] = 0.75
					} else {
						ratios[id] = rest
					}
				}
				if err := r2.SetRatios(dst, graph.NodeID(u), ratios); err != nil {
					t.Fatal(err)
				}
				skewed = true
			}
			if !skewed {
				t.Skip("no multi-out-edge node found")
			}
			b := synth(t, g, r2)
			d := Diff(a, b)
			if err := VerifyDiff(g, a, d, b); err != nil {
				t.Fatalf("%s: diff failed verification: %v", name, err)
			}
			for _, dst := range d.TouchedDestinations() {
				if dst != 0 {
					t.Fatalf("%s: diff touched destination %d, want only 0", name, dst)
				}
			}
		})
	}
}

// TestApplyDiffRejectsMismatch: a diff that does not fit the base lie set
// must be rejected rather than silently mis-applied.
func TestApplyDiffRejectsMismatch(t *testing.T) {
	g, ids := fig1(t)
	r := skewedRouting(t, g, ids)
	s := synth(t, g, r)
	d := Diff(nil, s)
	// Applying a pure-add diff on top of s itself duplicates every LSA.
	if _, err := ApplyDiff(g, s, d); err == nil {
		t.Fatal("expected duplicate-add rejection")
	}
	// Removing from an empty set must fail too.
	d2 := Diff(s, nil)
	if _, err := ApplyDiff(g, nil, d2); err == nil {
		t.Fatal("expected unknown-remove rejection")
	}
}
