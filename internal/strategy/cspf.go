package strategy

import (
	"fmt"
	"math"

	"github.com/coyote-te/coyote/internal/dagx"
	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/pdrouting"
)

// cspfStrategy is the MPLS-TE comparison baseline: per destination, every
// source pins a single explicit widest-shortest path — among the paths of
// minimum OSPF cost, the one maximizing the bottleneck capacity (the
// classic CSPF tie-break), with node IDs breaking residual ties so the
// result is deterministic. No splitting, no adaptation: the strategy shows
// what explicit single-path tunnels buy (and lose) against ratio-based
// splitting under the same uncertainty.
type cspfStrategy struct{ cfg Config }

func (s *cspfStrategy) Name() string { return "cspf" }

func (s *cspfStrategy) Build(g *graph.Graph, box *demand.Box) (Plan, error) {
	n := g.NumNodes()
	dags := make([]*dagx.DAG, n)
	phi := make([][]float64, n)
	for t := 0; t < n; t++ {
		parent := widestShortestTree(g, graph.NodeID(t))
		member := make([]bool, g.NumEdges())
		phiT := make([]float64, g.NumEdges())
		for u := 0; u < n; u++ {
			if parent[u] >= 0 {
				member[parent[u]] = true
				phiT[parent[u]] = 1
			}
		}
		d, err := dagx.FromEdges(g, graph.NodeID(t), member)
		if err != nil {
			return nil, fmt.Errorf("strategy: cspf tree for %d: %w", t, err)
		}
		dags[t] = d
		phi[t] = phiT
	}
	r := &pdrouting.Routing{G: g, DAGs: dags, Phi: phi}
	return &staticPlan{r: r, cost: Cost{DAGEdges: dagEdges(r)}}, nil
}

// widestShortestTree runs a reverse Dijkstra toward t with the
// lexicographic label (cost, −width): minimize path cost first, then
// maximize the bottleneck capacity, then prefer the lower-ID upstream edge.
// parent[u] is the first edge of u's chosen path (−1 for t and unreachable
// nodes). Both label components are monotone along a path (cost only grows,
// width only shrinks), so label-setting extraction stays correct.
func widestShortestTree(g *graph.Graph, t graph.NodeID) []graph.EdgeID {
	n := g.NumNodes()
	dist := make([]float64, n)
	width := make([]float64, n)
	parent := make([]graph.EdgeID, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		parent[i] = -1
	}
	dist[t] = 0
	width[t] = math.Inf(1)
	for {
		// O(n²) extraction keeps the lexicographic comparison simple; CSPF
		// builds run once per (topology, box), never on a hot path.
		u := graph.NodeID(-1)
		for v := 0; v < n; v++ {
			if done[v] || math.IsInf(dist[v], 1) {
				continue
			}
			if u < 0 || dist[v] < dist[u] || (dist[v] == dist[u] && width[v] > width[u]) {
				u = graph.NodeID(v)
			}
		}
		if u < 0 {
			break
		}
		done[u] = true
		for _, id := range g.In(u) {
			e := g.Edge(id)
			v := e.From
			if done[v] {
				continue
			}
			nd := dist[u] + e.Weight
			nw := math.Min(width[u], e.Capacity)
			if nd < dist[v] || (nd == dist[v] && nw > width[v]) ||
				(nd == dist[v] && nw == width[v] && parent[v] >= 0 && id < parent[v]) {
				dist[v] = nd
				width[v] = nw
				parent[v] = id
			}
		}
	}
	return parent
}
