// Package strategy puts every traffic-engineering algorithm in the repo —
// and three new competitors — behind one interface, so the portfolio
// head-to-head the ROADMAP calls for (strategy × topology × demand regime ×
// failure suite) is a single loop instead of N ad-hoc entry points.
//
// A Strategy is built once per (topology, uncertainty box) and produces a
// Plan. A Plan answers Route(dm) for any demand matrix; static plans (ECMP,
// COYOTE oblivious, weight search) return the same routing for every matrix,
// while per-matrix plans (the OPT oracle) re-solve. Plans that additionally
// implement Adapter re-solve only the *rates* online while keeping their
// path sets fixed — the semi-oblivious model of Kulfi — and are driven
// through Apply, which prefers Adapt when present.
//
// Every strategy is seed-deterministic and bit-identical at any Workers
// count (see the parity suite); build latency and online adaptation counts
// are exported as obs metrics, never baked into results.
package strategy

import (
	"fmt"
	"sort"
	"time"

	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/oblivious"
	"github.com/coyote-te/coyote/internal/obs"
	"github.com/coyote-te/coyote/internal/pdrouting"
)

// Cost is deterministic plan metadata: what the plan costs a network to
// hold and to run, independent of wall clock (timings go to obs metrics so
// golden results stay byte-stable).
type Cost struct {
	// DAGEdges is the total member-edge count across all destination DAGs —
	// the forwarding state a router fleet must install.
	DAGEdges int
	// Adaptive reports whether the plan re-solves per observed matrix
	// (either a per-matrix Route or an online Adapt).
	Adaptive bool
	// Scenarios counts the adversarial demand scenarios accumulated while
	// building (0 for closed-form strategies).
	Scenarios int
}

// Plan is a built routing policy for one (topology, box).
type Plan interface {
	// Route returns the routing the plan uses for dm. Static plans ignore
	// dm; per-matrix plans (the OPT oracle) solve for it.
	Route(dm *demand.Matrix) (*pdrouting.Routing, error)
	// Cost reports deterministic plan metadata.
	Cost() Cost
}

// Adapter is the optional online-rate interface: Adapt keeps the plan's
// path sets fixed and re-solves only the splitting rates for dm. Plans
// implementing Adapter guarantee Adapt is never worse (in max link
// utilization on dm) than their static Route.
type Adapter interface {
	Adapt(dm *demand.Matrix) (*pdrouting.Routing, error)
}

// Strategy builds Plans.
type Strategy interface {
	Name() string
	Build(g *graph.Graph, box *demand.Box) (Plan, error)
}

// Config tunes strategy construction. The zero value uses each underlying
// algorithm's defaults.
type Config struct {
	Seed     int64
	Workers  int     // worker-pool size (≤ 0 = GOMAXPROCS); never changes results
	OptIters int     // gpopt gradient steps per inner optimization
	AdvIters int     // adversarial refinement rounds (COYOTE strategies)
	Samples  int     // random corner adversaries per evaluation
	Eps      float64 // FPTAS accuracy for large-instance normalization
	// ExactNodeLimit overrides the exact/FPTAS OPTDAG crossover
	// (oblivious.DefaultExactNodeLimit when 0; 1 forces the FPTAS).
	ExactNodeLimit int
}

func (c Config) evalConfig() oblivious.EvalConfig {
	return oblivious.EvalConfig{
		Eps:            c.Eps,
		Samples:        c.Samples,
		Seed:           c.Seed,
		ExactNodeLimit: c.ExactNodeLimit,
		Workers:        c.Workers,
	}
}

func (c Config) options() oblivious.Options {
	opts := oblivious.Options{
		Eval:     c.evalConfig(),
		AdvIters: c.AdvIters,
		Workers:  c.Workers,
	}
	opts.Optimizer.Iters = c.OptIters
	return opts
}

// Per-strategy build latency and online adaptation counters, exported on
// /metrics. Purely observational: results never depend on them.
var (
	buildSeconds = obs.Default.NewHistogramVec(
		"coyote_strategy_build_seconds",
		"Wall time of Strategy.Build per strategy.",
		obs.ExpBuckets(0.001, 2, 18), "strategy")
	adaptTotal = obs.Default.NewCounterVec(
		"coyote_strategy_adapt_total",
		"Online rate re-solves (Plan.Adapt calls) per strategy.",
		"strategy")
)

// builders is the registry: name → constructor. Names double as the
// `-strategy` flag values and the portfolio table's column headers.
var builders = map[string]func(Config) Strategy{
	"ecmp":           func(c Config) Strategy { return &ecmpStrategy{cfg: c} },
	"localsearch":    func(c Config) Strategy { return &localsearchStrategy{cfg: c} },
	"gpopt":          func(c Config) Strategy { return &gpoptStrategy{cfg: c} },
	"coyote":         func(c Config) Strategy { return &coyoteStrategy{cfg: c} },
	"coyote-fptas":   func(c Config) Strategy { return &coyoteStrategy{cfg: c, forceFPTAS: true} },
	"opt":            func(c Config) Strategy { return &optStrategy{cfg: c} },
	"semi-oblivious": func(c Config) Strategy { return &semiObliviousStrategy{cfg: c} },
	"cspf":           func(c Config) Strategy { return &cspfStrategy{cfg: c} },
	"omw":            func(c Config) Strategy { return &omwStrategy{cfg: c} },
}

// Names lists every registered strategy, sorted.
func Names() []string {
	out := make([]string, 0, len(builders))
	for name := range builders {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// New constructs a strategy by registry name.
func New(name string, cfg Config) (Strategy, error) {
	b, ok := builders[name]
	if !ok {
		return nil, fmt.Errorf("strategy: unknown strategy %q (have %v)", name, Names())
	}
	return b(cfg), nil
}

// Build runs s.Build and records its latency under the strategy's name.
// Callers that loop over a portfolio should prefer this over calling
// s.Build directly so the build histogram stays populated.
func Build(s Strategy, g *graph.Graph, box *demand.Box) (Plan, error) {
	t0 := time.Now()
	p, err := s.Build(g, box)
	buildSeconds.With(s.Name()).ObserveSince(t0)
	return p, err
}

// Apply routes dm through the plan, preferring the online Adapt path when
// the plan implements it (and counting the adaptation).
func Apply(name string, p Plan, dm *demand.Matrix) (*pdrouting.Routing, error) {
	if a, ok := p.(Adapter); ok {
		adaptTotal.With(name).Inc()
		return a.Adapt(dm)
	}
	return p.Route(dm)
}

// dagEdges sums member edges across a routing's destination DAGs.
func dagEdges(r *pdrouting.Routing) int {
	n := 0
	for _, d := range r.DAGs {
		n += d.NumEdges()
	}
	return n
}

// staticPlan wraps a fixed routing.
type staticPlan struct {
	r    *pdrouting.Routing
	cost Cost
}

func (p *staticPlan) Route(*demand.Matrix) (*pdrouting.Routing, error) { return p.r, nil }
func (p *staticPlan) Cost() Cost                                       { return p.cost }
