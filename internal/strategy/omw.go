package strategy

import (
	"fmt"

	"github.com/coyote-te/coyote/internal/dagx"
	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/localsearch"
	"github.com/coyote-te/coyote/internal/pdrouting"
	"github.com/coyote-te/coyote/internal/spf"
)

// omwStrategy is "one more weight is enough" (Xu et al.): routers keep two
// weight sets — the INVERSECAPACITY default and one extra set tuned against
// the box by the local search — and ECMP-hash across the union of the two
// shortest-path graphs. Here the union is expressed as one per-destination
// DAG: plane-1 SP edges enter as-is, plane-2 SP edges enter when they are
// downhill with respect to plane 1's (dist, id) potential (the same
// orientation rule dagx augmentation uses), which keeps the union acyclic
// at the cost of dropping plane-2 edges that would climb back uphill.
// Splitting is proportional to plane multiplicity: an edge on both planes'
// shortest paths carries twice the share of a single-plane edge.
type omwStrategy struct{ cfg Config }

func (s *omwStrategy) Name() string { return "omw" }

func (s *omwStrategy) Build(g *graph.Graph, box *demand.Box) (Plan, error) {
	plane1 := g.Clone()
	plane1.SetWeights(inverseCapacityWeights(g))
	ls, err := localsearch.Optimize(g, box, localsearch.Config{
		OuterIters: s.cfg.AdvIters,
		InnerMoves: 10 * g.NumEdges(),
		Seed:       s.cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	plane2 := g.Clone()
	plane2.SetWeights(ls.Weights)

	n := g.NumNodes()
	dags := make([]*dagx.DAG, n)
	phi := make([][]float64, n)
	for t := 0; t < n; t++ {
		tree1 := spf.ToDestination(plane1, graph.NodeID(t))
		sp1 := tree1.ShortestPathEdges(plane1)
		sp2 := spf.ToDestination(plane2, graph.NodeID(t)).ShortestPathEdges(plane2)
		member := make([]bool, g.NumEdges())
		mult := make([]int, g.NumEdges())
		for _, e := range g.Edges() {
			if sp1[e.ID] {
				member[e.ID] = true
				mult[e.ID]++
			}
			if sp2[e.ID] && downhill(tree1.Dist, e) {
				member[e.ID] = true
				mult[e.ID]++
			}
		}
		d, err := dagx.FromEdges(g, graph.NodeID(t), member)
		if err != nil {
			return nil, fmt.Errorf("strategy: omw union DAG for %d: %w", t, err)
		}
		phiT := make([]float64, g.NumEdges())
		for u := 0; u < n; u++ {
			if u == t {
				continue
			}
			out := d.OutEdges(g, graph.NodeID(u))
			total := 0
			for _, id := range out {
				total += mult[id]
			}
			if total == 0 {
				continue
			}
			for _, id := range out {
				phiT[id] = float64(mult[id]) / float64(total)
			}
		}
		dags[t] = d
		phi[t] = phiT
	}
	r := &pdrouting.Routing{G: g, DAGs: dags, Phi: phi}
	return &staticPlan{r: r, cost: Cost{DAGEdges: dagEdges(r), Scenarios: len(ls.CriticalDMs)}}, nil
}

// downhill reports whether edge e strictly decreases the (dist, id)
// potential of plane 1 — the acyclicity-preserving admission test for
// plane-2 shortest-path edges.
func downhill(dist []float64, e graph.Edge) bool {
	if dist[e.From] == spf.Inf || dist[e.To] == spf.Inf {
		return false
	}
	if dist[e.To] != dist[e.From] {
		return dist[e.To] < dist[e.From]
	}
	return e.To < e.From
}
