// Tests for the strategy portfolio: registry sanity, the repo-wide
// determinism contract (seed-deterministic, bit-identical at any Workers
// count) extended to every registered strategy, the semi-oblivious
// never-worse guarantee, and the warm-LP contract its Adapt path rides on
// (RHS-edit re-solves finish with zero phase-1 iterations).
package strategy

import (
	"testing"

	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/lp"
	"github.com/coyote-te/coyote/internal/pdrouting"
	"github.com/coyote-te/coyote/internal/topo"
)

// testConfig keeps strategy builds sub-second while exercising the full
// adversarial loop of the COYOTE strategies.
func testConfig(workers int) Config {
	return Config{
		Seed:     7,
		Workers:  workers,
		OptIters: 40,
		AdvIters: 1,
		Samples:  2,
		Eps:      0.25,
	}
}

// fixture is the shared scenario: Abilene under a margin-2 gravity box,
// with three matrices spanning the box (min, midpoint, max).
func fixture(t testing.TB) (*graph.Graph, *demand.Box, []*demand.Matrix) {
	g, err := topo.Load("Abilene")
	if err != nil {
		t.Fatal(err)
	}
	box := demand.MarginBox(demand.Gravity(g, 1), 2)
	mid := box.Min.Clone()
	for i := range mid.D {
		mid.D[i] = (box.Min.D[i] + box.Max.D[i]) / 2
	}
	return g, box, []*demand.Matrix{box.Min, mid, box.Max}
}

func TestNames(t *testing.T) {
	names := Names()
	want := []string{
		"coyote", "coyote-fptas", "cspf", "ecmp", "gpopt",
		"localsearch", "omw", "opt", "semi-oblivious",
	}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names()[%d] = %q, want %q (full list %v)", i, names[i], want[i], names)
		}
	}
	if _, err := New("no-such-strategy", Config{}); err == nil {
		t.Fatal("New accepted an unknown strategy name")
	}
}

// routings builds the named strategy under cfg and collects the routing it
// produces (via Apply, so adaptive plans take their adaptive path) for each
// matrix in dms.
func routings(t *testing.T, name string, workers int, g *graph.Graph, box *demand.Box, dms []*demand.Matrix) []*pdrouting.Routing {
	t.Helper()
	s, err := New(name, testConfig(workers))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Build(s, g, box)
	if err != nil {
		t.Fatalf("%s: Build: %v", name, err)
	}
	out := make([]*pdrouting.Routing, len(dms))
	for i, dm := range dms {
		r, err := Apply(name, plan, dm)
		if err != nil {
			t.Fatalf("%s: Apply matrix %d: %v", name, i, err)
		}
		out[i] = r
	}
	return out
}

func samePhi(t *testing.T, name string, a, b *pdrouting.Routing) {
	t.Helper()
	if len(a.Phi) != len(b.Phi) {
		t.Fatalf("%s: Phi destination counts differ: %d vs %d", name, len(a.Phi), len(b.Phi))
	}
	for dst := range a.Phi {
		if len(a.Phi[dst]) != len(b.Phi[dst]) {
			t.Fatalf("%s: Phi[%d] lengths differ", name, dst)
		}
		for e := range a.Phi[dst] {
			if a.Phi[dst][e] != b.Phi[dst][e] {
				t.Fatalf("%s: Phi[%d][%d] = %v vs %v — not bit-identical", name,
					dst, e, a.Phi[dst][e], b.Phi[dst][e])
			}
		}
	}
}

// TestStrategyParity extends the root parity suite to the whole portfolio:
// every registered strategy must produce bit-identical splitting ratios for
// Workers=1 and Workers=4 (and therefore be seed-deterministic), on every
// matrix it is asked to route or adapt to.
func TestStrategyParity(t *testing.T) {
	if testing.Short() {
		t.Skip("portfolio parity sweep in -short mode")
	}
	g, box, dms := fixture(t)
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			serial := routings(t, name, 1, g, box, dms)
			parallel := routings(t, name, 4, g, box, dms)
			for i := range dms {
				samePhi(t, name, serial[i], parallel[i])
			}
		})
	}
}

// TestCostMetadata pins the deterministic plan metadata the portfolio
// reports: every plan installs at least one DAG edge, and the adaptive bit
// matches the plan's actual interface.
func TestCostMetadata(t *testing.T) {
	g, box, _ := fixture(t)
	for _, name := range Names() {
		s, err := New(name, testConfig(0))
		if err != nil {
			t.Fatal(err)
		}
		plan, err := Build(s, g, box)
		if err != nil {
			t.Fatalf("%s: Build: %v", name, err)
		}
		cost := plan.Cost()
		if cost.DAGEdges <= 0 {
			t.Errorf("%s: Cost().DAGEdges = %d, want > 0", name, cost.DAGEdges)
		}
		_, isAdapter := plan.(Adapter)
		if isAdapter && !cost.Adaptive {
			t.Errorf("%s: implements Adapter but Cost().Adaptive is false", name)
		}
	}
}

// TestSemiObliviousNeverWorse checks the Adapter contract on matrices across
// the box: the adapted routing's max utilization never exceeds the static
// oblivious routing's on the same matrix.
func TestSemiObliviousNeverWorse(t *testing.T) {
	g, box, dms := fixture(t)
	s, err := New("semi-oblivious", testConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Build(s, g, box)
	if err != nil {
		t.Fatal(err)
	}
	for i, dm := range dms {
		static, err := plan.Route(dm)
		if err != nil {
			t.Fatal(err)
		}
		adapted, err := plan.(Adapter).Adapt(dm)
		if err != nil {
			t.Fatalf("matrix %d: Adapt: %v", i, err)
		}
		if a, s := adapted.MaxUtilization(dm), static.MaxUtilization(dm); a > s {
			t.Errorf("matrix %d: adapted MLU %v > static MLU %v — Adapt made things worse", i, a, s)
		}
	}
}

// TestSemiObliviousWarmRestart pins the LP-layer contract the Adapt path is
// built on: after the cold build solve, every per-matrix re-solve is a pure
// RHS edit repaired by the dual simplex from the carried basis — zero
// phase-1 iterations. Reads process-wide lp counters, so no t.Parallel.
func TestSemiObliviousWarmRestart(t *testing.T) {
	g, box, dms := fixture(t)
	s, err := New("semi-oblivious", testConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Build(s, g, box)
	if err != nil {
		t.Fatal(err)
	}
	adapter := plan.(Adapter)
	lp.ResetGlobalStats()
	for i, dm := range dms {
		if _, err := adapter.Adapt(dm); err != nil {
			t.Fatalf("matrix %d: Adapt: %v", i, err)
		}
	}
	st := lp.GlobalStats()
	if st.Solves == 0 {
		t.Fatal("Adapt triggered no LP solves — warm-restart path not exercised")
	}
	if st.Phase1Iterations != 0 {
		t.Errorf("RHS-edit re-solves ran %d phase-1 iterations, want 0 (warm dual restart)",
			st.Phase1Iterations)
	}
}

func BenchmarkStrategyBuild(b *testing.B) {
	g, box, _ := fixture(b)
	for _, name := range Names() {
		name := name
		b.Run(name, func(b *testing.B) {
			cfg := testConfig(0)
			for i := 0; i < b.N; i++ {
				s, err := New(name, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := Build(s, g, box); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSemiObliviousAdapt(b *testing.B) {
	g, box, dms := fixture(b)
	s, err := New("semi-oblivious", testConfig(0))
	if err != nil {
		b.Fatal(err)
	}
	plan, err := Build(s, g, box)
	if err != nil {
		b.Fatal(err)
	}
	adapter := plan.(Adapter)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := adapter.Adapt(dms[i%len(dms)]); err != nil {
			b.Fatal(err)
		}
	}
}
