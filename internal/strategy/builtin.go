package strategy

import (
	"math"

	"github.com/coyote-te/coyote/internal/dagx"
	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/gpopt"
	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/localsearch"
	"github.com/coyote-te/coyote/internal/oblivious"
	"github.com/coyote-te/coyote/internal/pdrouting"
)

// inverseCapacityWeights returns the Cisco-recommended INVERSECAPACITY
// weight assignment the paper cites [16]: w_e = max(1, round(maxCap/c_e)).
func inverseCapacityWeights(g *graph.Graph) []float64 {
	maxCap := 0.0
	for _, e := range g.Edges() {
		if e.Capacity > maxCap {
			maxCap = e.Capacity
		}
	}
	w := make([]float64, g.NumEdges())
	for _, e := range g.Edges() {
		w[e.ID] = math.Max(1, math.Round(maxCap/e.Capacity))
	}
	return w
}

// ecmpStrategy is traditional OSPF/ECMP under INVERSECAPACITY weights:
// equal splitting over shortest-path DAGs, oblivious to the box.
type ecmpStrategy struct{ cfg Config }

func (s *ecmpStrategy) Name() string { return "ecmp" }

func (s *ecmpStrategy) Build(g *graph.Graph, box *demand.Box) (Plan, error) {
	work := g.Clone()
	work.SetWeights(inverseCapacityWeights(g))
	dags := dagx.BuildAll(work, dagx.ShortestPath)
	r := pdrouting.Uniform(work, dags)
	return &staticPlan{r: r, cost: Cost{DAGEdges: dagEdges(r)}}, nil
}

// localsearchStrategy runs the §V-B/Appendix A weight search against the
// box and deploys plain ECMP on the tuned weights — the strongest routing
// reachable without any lies.
type localsearchStrategy struct{ cfg Config }

func (s *localsearchStrategy) Name() string { return "localsearch" }

func (s *localsearchStrategy) Build(g *graph.Graph, box *demand.Box) (Plan, error) {
	ls, err := localsearch.Optimize(g, box, localsearch.Config{
		OuterIters: s.cfg.AdvIters,
		InnerMoves: 10 * g.NumEdges(),
		Seed:       s.cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	work := g.Clone()
	work.SetWeights(ls.Weights)
	dags := dagx.BuildAll(work, dagx.ShortestPath)
	r := pdrouting.Uniform(work, dags)
	return &staticPlan{r: r, cost: Cost{DAGEdges: dagEdges(r), Scenarios: len(ls.CriticalDMs)}}, nil
}

// gpoptStrategy runs the GP-style splitting optimizer alone — no
// adversarial loop — against the two seed scenarios every COYOTE run starts
// from (the box maximum and its geometric midpoint). It isolates how much
// of COYOTE's win comes from the optimizer versus the adversary.
type gpoptStrategy struct{ cfg Config }

func (s *gpoptStrategy) Name() string { return "gpopt" }

func (s *gpoptStrategy) Build(g *graph.Graph, box *demand.Box) (Plan, error) {
	dags := dagx.BuildAll(g, dagx.Augmented)
	ev := oblivious.NewEvaluator(g, dags, box, s.cfg.evalConfig())
	var scenarios []gpopt.Scenario
	add := func(D *demand.Matrix) {
		if D.Total() <= 0 {
			return
		}
		if norm := ev.OptDAG(D); norm > 0 && !math.IsInf(norm, 1) {
			scenarios = append(scenarios, gpopt.NewScenario(g, D, norm))
		}
	}
	add(box.Max.Clone())
	mid := demand.NewMatrix(g.NumNodes())
	for i := range mid.D {
		mid.D[i] = math.Sqrt(box.Min.D[i] * box.Max.D[i])
	}
	add(mid)
	opt := gpopt.New(g, dags, gpopt.Config{Iters: s.cfg.OptIters, Workers: s.cfg.Workers})
	opt.Run(scenarios)
	r := opt.Routing()
	return &staticPlan{r: r, cost: Cost{DAGEdges: dagEdges(r), Scenarios: len(scenarios)}}, nil
}

// coyoteStrategy is the full COYOTE pipeline: augmented DAGs plus the
// adversarial splitting optimization of §V-C. forceFPTAS pins the OPTDAG
// normalizer to the Garg–Könemann FPTAS regardless of instance size (the
// "coyote-fptas" registry entry), exercising the approximation path the
// paper relies on beyond the exact-LP crossover.
type coyoteStrategy struct {
	cfg        Config
	forceFPTAS bool
}

func (s *coyoteStrategy) Name() string {
	if s.forceFPTAS {
		return "coyote-fptas"
	}
	return "coyote"
}

func (s *coyoteStrategy) Build(g *graph.Graph, box *demand.Box) (Plan, error) {
	opts := s.cfg.options()
	if s.forceFPTAS {
		opts.Eval.ExactNodeLimit = 1
	}
	dags := dagx.BuildAll(g, dagx.Augmented)
	r, rep := oblivious.OptimizeSplitting(g, dags, box, opts)
	return &staticPlan{r: r, cost: Cost{DAGEdges: dagEdges(r), Scenarios: rep.ScenarioCount}}, nil
}

// optStrategy is the OPT oracle: per-matrix exact min-MLU multicommodity
// flow within the augmented DAGs — the demands-aware optimum OPTDAG that
// normalizes every figure in the paper (§VI). It is the denominator of the
// portfolio table, and by construction the best any DAG-respecting
// strategy can do on each individual matrix.
type optStrategy struct{ cfg Config }

func (s *optStrategy) Name() string { return "opt" }

func (s *optStrategy) Build(g *graph.Graph, box *demand.Box) (Plan, error) {
	return &optPlan{
		g:    g,
		dags: dagx.BuildAll(g, dagx.Augmented),
		cfg:  s.cfg,
	}, nil
}

type optPlan struct {
	g    *graph.Graph
	dags []*dagx.DAG
	cfg  Config
}

func (p *optPlan) Route(dm *demand.Matrix) (*pdrouting.Routing, error) {
	return oblivious.BaseRouting(p.g, p.dags, dm, p.cfg.ExactNodeLimit, p.cfg.Eps)
}

func (p *optPlan) Cost() Cost {
	n := 0
	for _, d := range p.dags {
		n += d.NumEdges()
	}
	return Cost{DAGEdges: n, Adaptive: true}
}
