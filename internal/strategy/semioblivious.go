package strategy

import (
	"fmt"
	"sync"

	"github.com/coyote-te/coyote/internal/dagx"
	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/lp"
	"github.com/coyote-te/coyote/internal/mcf"
	"github.com/coyote-te/coyote/internal/oblivious"
	"github.com/coyote-te/coyote/internal/pdrouting"
	"github.com/coyote-te/coyote/internal/spf"
)

// supportTol prunes splitting ratios below this from the semi-oblivious
// path set: edges COYOTE barely uses are dropped, edges it leans on stay.
const supportTol = 1e-3

// semiObliviousStrategy is the Kulfi-style middle ground: path sets come
// from the COYOTE oblivious solution (robust to anything in the box), but
// the *rates* on those paths are re-solved per observed matrix through the
// warm MinMLUModel SetDemand/dual-restart path (~0.02× cold pivots, zero
// phase-1 iterations on RHS-edit re-solves). Adapt is never worse than the
// static oblivious routing on the same matrix: the adapted solution is
// kept only when it evaluates at least as well.
type semiObliviousStrategy struct{ cfg Config }

func (s *semiObliviousStrategy) Name() string { return "semi-oblivious" }

func (s *semiObliviousStrategy) Build(g *graph.Graph, box *demand.Box) (Plan, error) {
	dags := dagx.BuildAll(g, dagx.Augmented)
	static, rep := oblivious.OptimizeSplitting(g, dags, box, s.cfg.options())

	// The support DAGs: edges the oblivious routing actually uses, plus the
	// full shortest-path DAG so every pair stays routable after pruning.
	// Both parts lie within the augmented DAG, so acyclicity is inherited.
	support := make([]*dagx.DAG, g.NumNodes())
	for t := range support {
		member := spf.ToDestination(g, graph.NodeID(t)).ShortestPathEdges(g)
		for e, phi := range static.Phi[t] {
			if phi >= supportTol && dags[t].Member[e] {
				member[e] = true
			}
		}
		d, err := dagx.FromEdges(g, graph.NodeID(t), member)
		if err != nil {
			return nil, fmt.Errorf("strategy: semi-oblivious support DAG for %d: %w", t, err)
		}
		support[t] = d
	}

	// The rate LP is shaped on the box maximum so every destination that can
	// ever see demand has its conservation rows; Adapt then only edits RHS
	// values, which is exactly the bound-only change the dual-simplex warm
	// restart repairs without any phase-1 work.
	model := mcf.NewMinMLUModel(g, support, box.Max)
	_, _, basis, err := model.Solve(nil)
	if err != nil {
		return nil, fmt.Errorf("strategy: semi-oblivious rate LP infeasible at box max: %w", err)
	}

	p := &semiObliviousPlan{
		g:       g,
		support: support,
		static:  static,
		model:   model,
		basis:   basis,
		cost: Cost{
			DAGEdges:  0,
			Adaptive:  true,
			Scenarios: rep.ScenarioCount,
		},
	}
	for _, d := range support {
		p.cost.DAGEdges += d.NumEdges()
	}
	return p, nil
}

type semiObliviousPlan struct {
	g       *graph.Graph
	support []*dagx.DAG
	static  *pdrouting.Routing
	cost    Cost

	mu    sync.Mutex
	model *mcf.MinMLUModel
	basis *lp.Basis
}

func (p *semiObliviousPlan) Route(*demand.Matrix) (*pdrouting.Routing, error) {
	return p.static, nil
}

func (p *semiObliviousPlan) Cost() Cost { return p.cost }

// Adapt re-solves the rates on the fixed oblivious path sets for dm and
// returns whichever of (adapted, static) has the lower max utilization on
// dm — so adaptation can only help, never hurt.
func (p *semiObliviousPlan) Adapt(dm *demand.Matrix) (*pdrouting.Routing, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := p.g.NumNodes()
	if dm.N != n {
		return nil, fmt.Errorf("strategy: semi-oblivious Adapt got a %d-node matrix over a %d-node graph", dm.N, n)
	}
	for t := 0; t < n; t++ {
		for s := 0; s < n; s++ {
			if s == t {
				continue
			}
			d := dm.At(graph.NodeID(s), graph.NodeID(t))
			if err := p.model.SetDemand(graph.NodeID(s), graph.NodeID(t), d); err != nil {
				// Destination inactive at build time: only an error if the
				// matrix actually sends traffic there (outside the box).
				if d > 0 {
					return nil, fmt.Errorf("strategy: semi-oblivious Adapt: %w", err)
				}
			}
		}
	}
	_, flows, basis, err := p.model.Solve(&lp.SolveOptions{Basis: p.basis})
	if err != nil {
		return nil, fmt.Errorf("strategy: semi-oblivious rate re-solve: %w", err)
	}
	p.basis = basis

	adapted := pdrouting.NewZero(p.g, p.support)
	uniform := pdrouting.Uniform(p.g, p.support)
	for t := 0; t < n; t++ {
		if flows[t] == nil {
			adapted.Phi[t] = uniform.Phi[t]
			continue
		}
		phi, err := pdrouting.FromFlows(p.g, p.support[t], flows[t])
		if err != nil {
			return nil, fmt.Errorf("strategy: semi-oblivious flow decomposition: %w", err)
		}
		adapted.Phi[t] = phi
	}
	if adapted.MaxUtilization(dm) <= p.static.MaxUtilization(dm) {
		return adapted, nil
	}
	return p.static, nil
}
