package spf

import (
	"math/rand"
	"testing"

	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/scen"
	"github.com/coyote-te/coyote/internal/topo"
)

// TestHeapOrdering exercises the indexed heap against a brute-force oracle:
// random interleavings of insert, decrease-key, bidirectional update, and
// pop must always pop the (key, id)-minimal queued node.
func TestHeapOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 32
	for trial := 0; trial < 200; trial++ {
		h := NewHeap(n)
		oracle := make(map[graph.NodeID]float64)
		for op := 0; op < 120; op++ {
			switch rng.Intn(4) {
			case 0, 1: // insert-or-decrease
				v := graph.NodeID(rng.Intn(n))
				k := rng.Float64() * 100
				if old, ok := oracle[v]; !ok || k < old {
					oracle[v] = k
				}
				h.DecreaseTo(v, k)
			case 2: // bidirectional update
				v := graph.NodeID(rng.Intn(n))
				k := rng.Float64() * 100
				oracle[v] = k
				h.Update(v, k)
			case 3: // pop
				if len(oracle) == 0 {
					continue
				}
				wantV, wantK := graph.NodeID(-1), 0.0
				for v, k := range oracle {
					if wantV < 0 || k < wantK || (k == wantK && v < wantV) {
						wantV, wantK = v, k
					}
				}
				gotV, gotK := h.Pop()
				if gotV != wantV || gotK != wantK {
					t.Fatalf("trial %d op %d: popped (%d, %g), want (%d, %g)", trial, op, gotV, gotK, wantV, wantK)
				}
				delete(oracle, wantV)
			}
			if h.Len() != len(oracle) {
				t.Fatalf("trial %d op %d: heap len %d, oracle %d", trial, op, h.Len(), len(oracle))
			}
		}
	}
}

// activeGraph reconstructs the plain graph an Incremental currently models:
// only active edges, at the Incremental's weights. It returns the graph and
// the base-edge → new-edge ID mapping (-1 for inactive edges).
func activeGraph(g *graph.Graph, inc *Incremental) (*graph.Graph, []graph.EdgeID) {
	ng := graph.New()
	for i := 0; i < g.NumNodes(); i++ {
		ng.AddNode(g.Name(graph.NodeID(i)))
	}
	mapping := make([]graph.EdgeID, g.NumEdges())
	for _, e := range g.Edges() {
		if !inc.Active(e.ID) {
			mapping[e.ID] = -1
			continue
		}
		mapping[e.ID] = ng.AddEdge(e.From, e.To, e.Capacity, inc.Weight(e.ID))
	}
	return ng, mapping
}

// checkAgainstCold asserts the incremental field is bit-identical to a cold
// ToDestination on the equivalent reconstructed topology — distances and
// shortest-path DAG membership both.
func checkAgainstCold(t *testing.T, g *graph.Graph, inc *Incremental, step int) {
	t.Helper()
	ng, mapping := activeGraph(g, inc)
	cold := ToDestination(ng, inc.Dst())
	for u := range cold.Dist {
		if got := inc.Dist()[u]; got != cold.Dist[u] {
			t.Fatalf("step %d: dist[%d] = %v, cold Dijkstra %v", step, u, got, cold.Dist[u])
		}
	}
	coldMember := cold.ShortestPathEdges(ng)
	incTree := inc.Tree()
	for _, e := range g.Edges() {
		nid := mapping[e.ID]
		if nid < 0 {
			continue
		}
		// Evaluate membership with the Incremental's weights (== ng's).
		ne := ng.Edge(nid)
		if got := incTree.OnShortestPath(ne); got != coldMember[nid] {
			t.Fatalf("step %d: edge %d (%d→%d) membership %v, cold %v", step, e.ID, e.From, e.To, got, coldMember[nid])
		}
	}
}

// propertyTopologies returns the corpus + generated topologies the
// randomized fail/recover/weight-edit parity property runs over.
func propertyTopologies(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	out := map[string]*graph.Graph{}
	corpus := []string{"NSF", "Abilene", "Geant"}
	if testing.Short() {
		corpus = []string{"NSF"}
	}
	for _, name := range corpus {
		g, err := topo.Load(name)
		if err != nil {
			t.Fatalf("load %s: %v", name, err)
		}
		out[name] = g
	}
	for _, gen := range []struct {
		name string
		p    scen.Params
	}{
		{"waxman", scen.Params{N: 24, Seed: 5}},
		{"ba", scen.Params{N: 30, Seed: 9, M: 2}},
	} {
		g, err := scen.Generate(gen.name, gen.p)
		if err != nil {
			t.Fatalf("generate %s: %v", gen.name, err)
		}
		out[gen.name] = g
	}
	return out
}

// TestIncrementalMatchesCold is the dynamic-SPF parity property: over
// randomized sequences of link failures, recoveries, and weight edits, the
// incrementally repaired field must stay bit-identical — distances and
// ShortestPathEdges — to a cold Dijkstra on the equivalent topology.
func TestIncrementalMatchesCold(t *testing.T) {
	steps := 90
	if testing.Short() {
		steps = 25
	}
	for name, g := range propertyTopologies(t) {
		g := g
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(len(name)) * 1237))
			n := g.NumNodes()
			links := g.Links()
			for _, dst := range []graph.NodeID{0, graph.NodeID(n / 2), graph.NodeID(n - 1)} {
				inc := NewIncremental(g, dst)
				checkAgainstCold(t, g, inc, -1)
				failed := map[graph.EdgeID]bool{}
				for step := 0; step < steps; step++ {
					switch r := rng.Intn(10); {
					case r < 4: // weight edit on a random active directed edge
						id := graph.EdgeID(rng.Intn(g.NumEdges()))
						if !inc.Active(id) {
							continue
						}
						inc.UpdateEdge(id, 0.5+rng.Float64()*9.5)
					case r < 7: // fail a random link (disconnection is fine for SPF)
						id := links[rng.Intn(len(links))]
						if failed[id] {
							continue
						}
						failed[id] = true
						inc.FailLink(id)
					case r < 9: // recover a random failed link
						var pick graph.EdgeID = -1
						for id := range failed {
							if pick < 0 || id < pick {
								pick = id
							}
						}
						if pick < 0 {
							continue
						}
						delete(failed, pick)
						inc.RecoverLink(pick)
					default: // single directed edge fail/recover round-trip
						id := graph.EdgeID(rng.Intn(g.NumEdges()))
						if !inc.Active(id) {
							inc.RecoverEdge(id)
						} else if rng.Intn(2) == 0 {
							inc.FailEdge(id)
							inc.RecoverEdge(id)
						}
					}
					checkAgainstCold(t, g, inc, step)
				}
			}
		})
	}
}

// TestIncrementalAffectedCounts sanity-checks the O(affected) claim: on the
// running example, failing a leaf-adjacent link must repair only the
// vertices whose labels actually change (plus their tight dependents),
// never the whole graph repeatedly for untouched edges.
func TestIncrementalNoOpRepairs(t *testing.T) {
	g, err := topo.Load("NSF")
	if err != nil {
		t.Fatal(err)
	}
	inc := NewIncremental(g, 0)
	// Editing a non-tight edge's weight upward touches nothing.
	for _, e := range g.Edges() {
		tree := inc.Tree()
		if tree.OnShortestPath(e) || inc.Dist()[e.From] == Inf {
			continue
		}
		if n := inc.UpdateEdge(e.ID, e.Weight*1.01); n != 0 {
			t.Fatalf("raising non-tight edge %d repaired %d vertices, want 0", e.ID, n)
		}
		inc.UpdateEdge(e.ID, e.Weight) // restore
	}
	// A fail immediately followed by recover restores the exact field.
	before := append([]float64(nil), inc.Dist()...)
	link := g.Links()[3]
	inc.FailLink(link)
	inc.RecoverLink(link)
	for u, d := range inc.Dist() {
		if d != before[u] {
			t.Fatalf("fail/recover round-trip changed dist[%d]: %v → %v", u, before[u], d)
		}
	}
}

// TestIncrementalRepairAllocs is the alloc-regression guard for the dynamic
// SPF repair path (tier-1, run in CI): once the structure is warmed up,
// fail/recover/weight-edit repairs must not allocate at all.
func TestIncrementalRepairAllocs(t *testing.T) {
	g, err := topo.Load("Geant")
	if err != nil {
		t.Fatal(err)
	}
	inc := NewIncremental(g, 0)
	links := g.Links()
	// Warm the scratch: every link fails and recovers once.
	for _, id := range links {
		inc.FailLink(id)
		inc.RecoverLink(id)
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		id := links[i%len(links)]
		inc.FailLink(id)
		inc.RecoverLink(id)
		eid := graph.EdgeID(i % g.NumEdges())
		w := inc.Weight(eid)
		inc.UpdateEdge(eid, w*1.5)
		inc.UpdateEdge(eid, w)
		i++
	})
	if allocs != 0 {
		t.Fatalf("incremental repair allocated %v times per op, want 0", allocs)
	}
}
