package spf

import (
	"fmt"

	"github.com/coyote-te/coyote/internal/graph"
)

// Incremental is a dynamic single-destination shortest-path structure: it
// maintains the distance field dist[u] = length of the shortest u→Dst path
// under edge weight updates, link failures, and link recoveries, repairing
// only the affected vertices instead of re-running Dijkstra from scratch
// (Ramalingam–Reps-style dynamic SPF, DESIGN.md §12).
//
// The structure owns a private copy of the edge weights plus an active mask
// (failed edges are inactive), so the underlying graph is never mutated and
// one graph can back many Incrementals. After every operation the field
// satisfies the same fixpoint cold Dijkstra computes —
//
//	dist[u] = min over active out-edges (u,v) of fl(w(u,v) + dist[v])
//
// in float64 arithmetic — so distances (and therefore shortest-path DAG
// membership) are bit-identical to a cold ToDestination on the equivalent
// topology. The parity property tests in incremental_test.go pin this.
//
// All repair scratch (the indexed heap, the affected mask, the work stack)
// is preallocated at construction and reused, so steady-state operations
// allocate nothing (see TestIncrementalRepairAllocs).
//
// An Incremental is not safe for concurrent use.
type Incremental struct {
	g   *graph.Graph
	dst graph.NodeID

	weight []float64 // current weight per edge (may diverge from g)
	active []bool    // false = failed
	dist   []float64

	h        *Heap          // repair frontier, reused across operations
	affected []bool         // increase-phase: vertex awaits re-labeling
	stack    []graph.NodeID // increase-phase: closure work stack
	marked   []graph.NodeID // increase-phase: members of the affected set
}

// NewIncremental builds the structure for destination dst with an initial
// cold Dijkstra over g's current weights (all edges active).
func NewIncremental(g *graph.Graph, dst graph.NodeID) *Incremental {
	n, nE := g.NumNodes(), g.NumEdges()
	inc := &Incremental{
		g:        g,
		dst:      dst,
		weight:   make([]float64, nE),
		active:   make([]bool, nE),
		dist:     make([]float64, n),
		h:        NewHeap(n),
		affected: make([]bool, n),
		stack:    make([]graph.NodeID, 0, n),
		marked:   make([]graph.NodeID, 0, n),
	}
	for i := 0; i < nE; i++ {
		inc.weight[i] = g.Edge(graph.EdgeID(i)).Weight
		inc.active[i] = true
	}
	inc.recomputeAll()
	return inc
}

// Dst returns the destination the field is rooted at.
func (inc *Incremental) Dst() graph.NodeID { return inc.dst }

// Dist returns the live distance field (indexed by NodeID). It must be
// treated read-only and is invalidated by the next mutating call.
func (inc *Incremental) Dist() []float64 { return inc.dist }

// Tree wraps the live distance field as a Tree (sharing storage); the same
// read-only/staleness caveat as Dist applies. Note OnShortestPath on the
// returned tree consults the graph's weights — callers that diverge the
// Incremental's weights from the graph's (UpdateEdge without SetWeight)
// should compare against a graph carrying the same weights.
func (inc *Incremental) Tree() *Tree { return &Tree{Dst: inc.dst, Dist: inc.dist} }

// TreeCopy returns a Tree over a snapshot copy of the current distance
// field — for consumers that retain the tree past the next mutating call
// (dagx DAGs keep their Dist slice for the epoch's lifetime).
func (inc *Incremental) TreeCopy() *Tree {
	return &Tree{Dst: inc.dst, Dist: append([]float64(nil), inc.dist...)}
}

// Weight returns the structure's current weight for edge id.
func (inc *Incremental) Weight(id graph.EdgeID) float64 { return inc.weight[id] }

// Active reports whether edge id is currently active (not failed).
func (inc *Incremental) Active(id graph.EdgeID) bool { return inc.active[id] }

// recomputeAll runs the masked cold Dijkstra over the active edges — the
// initial build (and a test oracle via RecomputeAll).
func (inc *Incremental) recomputeAll() {
	dist := inc.dist
	for i := range dist {
		dist[i] = Inf
	}
	dist[inc.dst] = 0
	h := inc.h
	h.Reset()
	h.DecreaseTo(inc.dst, 0)
	for h.Len() > 0 {
		v, d := h.Pop()
		for _, id := range inc.g.In(v) {
			if !inc.active[id] {
				continue
			}
			u := inc.g.Edge(id).From
			nd := inc.weight[id] + d
			if nd < dist[u] {
				dist[u] = nd
				h.DecreaseTo(u, nd)
			}
		}
	}
}

// RecomputeAll discards the maintained field and rebuilds it cold — the
// escape hatch (and the oracle the property tests compare against).
func (inc *Incremental) RecomputeAll() { inc.recomputeAll() }

// UpdateEdge sets the weight of directed edge id to w and repairs the
// field. It returns the number of vertices whose label was re-derived (0
// when the change does not touch the shortest-path field). Non-positive or
// NaN weights panic, mirroring graph.SetWeight.
func (inc *Incremental) UpdateEdge(id graph.EdgeID, w float64) int {
	if !(w > 0) { // catches NaN too
		panic(fmt.Sprintf("spf: non-positive weight %v on edge %d", w, id))
	}
	old := inc.weight[id]
	inc.weight[id] = w
	if !inc.active[id] || w == old {
		return 0
	}
	if w < old {
		return inc.decreased(id)
	}
	return inc.increased(id, old)
}

// FailEdge deactivates directed edge id (an infinite-weight update) and
// repairs the field, returning the number of re-derived vertices. Failing
// an already-failed edge is a no-op.
func (inc *Incremental) FailEdge(id graph.EdgeID) int {
	if !inc.active[id] {
		return 0
	}
	inc.active[id] = false
	return inc.increased(id, inc.weight[id])
}

// RecoverEdge reactivates directed edge id at its current stored weight and
// repairs the field. Recovering an active edge is a no-op.
func (inc *Incremental) RecoverEdge(id graph.EdgeID) int {
	if inc.active[id] {
		return 0
	}
	inc.active[id] = true
	return inc.decreased(id)
}

// FailLink fails directed edge id and its reverse (if any).
func (inc *Incremental) FailLink(id graph.EdgeID) int {
	n := inc.FailEdge(id)
	if r := inc.g.Edge(id).Reverse; r >= 0 {
		n += inc.FailEdge(r)
	}
	return n
}

// RecoverLink recovers directed edge id and its reverse (if any).
func (inc *Incremental) RecoverLink(id graph.EdgeID) int {
	n := inc.RecoverEdge(id)
	if r := inc.g.Edge(id).Reverse; r >= 0 {
		n += inc.RecoverEdge(r)
	}
	return n
}

// decreased handles a weight decrease / recovery of edge id = (u,v): seed u
// with the new candidate and run a decrease-only Dijkstra from there. Each
// relaxation can only lower labels, and pops happen in increasing key
// order, so every popped label is final (the standard Dijkstra argument).
func (inc *Incremental) decreased(id graph.EdgeID) int {
	g := inc.g
	e := g.Edge(id)
	dv := inc.dist[e.To]
	if dv == Inf {
		return 0
	}
	nd := inc.weight[id] + dv
	if nd >= inc.dist[e.From] {
		return 0
	}
	dist := inc.dist
	h := inc.h
	dist[e.From] = nd
	h.DecreaseTo(e.From, nd)
	repaired := 0
	for h.Len() > 0 {
		x, d := h.Pop()
		repaired++
		for _, eid := range g.In(x) {
			if !inc.active[eid] {
				continue
			}
			y := g.Edge(eid).From
			cand := inc.weight[eid] + d
			if cand < dist[y] {
				dist[y] = cand
				h.DecreaseTo(y, cand)
			}
		}
	}
	return repaired
}

// supportOf returns min over x's active out-edges of fl(w + dist[to]),
// skipping endpoints that are unreachable or (when skipAffected) currently
// awaiting re-labeling. Inf when no usable support exists.
func (inc *Incremental) supportOf(x graph.NodeID, skipAffected bool) float64 {
	g := inc.g
	best := Inf
	for _, eid := range g.Out(x) {
		if !inc.active[eid] {
			continue
		}
		to := g.Edge(eid).To
		if skipAffected && inc.affected[to] {
			continue
		}
		dz := inc.dist[to]
		if dz == Inf {
			continue
		}
		if cand := inc.weight[eid] + dz; cand < best {
			best = cand
		}
	}
	return best
}

// increased handles a weight increase / failure of edge id = (u,v), where
// oldW is the weight the field may still depend on. Two phases:
//
// Phase 1 marks the affected closure: u, if its label was supported by the
// changed edge and no surviving edge re-derives it, then transitively every
// vertex whose label was tight through an affected vertex. The closure may
// over-approximate (a vertex with an equal-cost alternative support is still
// visited); that costs only wasted re-derivation, never correctness, because
// phase 2 re-derives every member from the unaffected boundary.
//
// Phase 2 is a Dijkstra restricted to the affected set: members are keyed by
// their best support outside the set, popped in increasing order, and
// re-labeled; members never popped are unreachable and stay at Inf.
func (inc *Incremental) increased(id graph.EdgeID, oldW float64) int {
	g := inc.g
	e := g.Edge(id)
	u, v := e.From, e.To
	dist := inc.dist
	if dist[u] == Inf || dist[v] == Inf {
		return 0 // the edge cannot have supported any finite label
	}
	if oldW+dist[v] != dist[u] {
		return 0 // the edge was not tight: no label depended on it
	}
	if inc.supportOf(u, false) == dist[u] {
		return 0 // an equal-cost alternative still supports u exactly
	}

	// Phase 1: affected closure over tight in-edges.
	inc.marked = inc.marked[:0]
	inc.stack = inc.stack[:0]
	inc.affected[u] = true
	inc.marked = append(inc.marked, u)
	inc.stack = append(inc.stack, u)
	for len(inc.stack) > 0 {
		x := inc.stack[len(inc.stack)-1]
		inc.stack = inc.stack[:len(inc.stack)-1]
		for _, eid := range g.In(x) {
			if !inc.active[eid] {
				continue
			}
			y := g.Edge(eid).From
			if inc.affected[y] || dist[y] == Inf {
				continue
			}
			if inc.weight[eid]+dist[x] == dist[y] { // y's label was tight through x
				inc.affected[y] = true
				inc.marked = append(inc.marked, y)
				inc.stack = append(inc.stack, y)
			}
		}
	}

	// Phase 2: re-derive the set from its unaffected boundary.
	h := inc.h
	h.Reset()
	for _, x := range inc.marked {
		if key := inc.supportOf(x, true); key != Inf {
			h.DecreaseTo(x, key)
		}
	}
	for _, x := range inc.marked {
		dist[x] = Inf
	}
	for h.Len() > 0 {
		x, d := h.Pop()
		dist[x] = d
		inc.affected[x] = false
		for _, eid := range g.In(x) {
			if !inc.active[eid] {
				continue
			}
			y := g.Edge(eid).From
			if !inc.affected[y] {
				continue
			}
			h.DecreaseTo(y, inc.weight[eid]+d)
		}
	}
	for _, x := range inc.marked {
		inc.affected[x] = false // the unreachable remainder stays at Inf
	}
	return len(inc.marked)
}
