package spf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/coyote-te/coyote/internal/graph"
)

// paperExample builds the running example of Fig. 1a: sources s1, s2, relay
// v, target t, unit capacities, unit weights.
func paperExample() (*graph.Graph, map[string]graph.NodeID) {
	g := graph.New()
	ids := map[string]graph.NodeID{
		"s1": g.AddNode("s1"),
		"s2": g.AddNode("s2"),
		"v":  g.AddNode("v"),
		"t":  g.AddNode("t"),
	}
	g.AddLink(ids["s1"], ids["s2"], 1, 1)
	g.AddLink(ids["s1"], ids["v"], 1, 1)
	g.AddLink(ids["s2"], ids["v"], 1, 1)
	g.AddLink(ids["s2"], ids["t"], 1, 1)
	g.AddLink(ids["v"], ids["t"], 1, 1)
	return g, ids
}

func TestDistancesRunningExample(t *testing.T) {
	g, ids := paperExample()
	tree := ToDestination(g, ids["t"])
	want := map[string]float64{"s1": 2, "s2": 1, "v": 1, "t": 0}
	for name, d := range want {
		if got := tree.Dist[ids[name]]; got != d {
			t.Errorf("dist[%s] = %g, want %g", name, got, d)
		}
	}
}

func TestNextHopsRunningExample(t *testing.T) {
	g, ids := paperExample()
	tree := ToDestination(g, ids["t"])
	hops := tree.NextHops(g, ids["s1"])
	if len(hops) != 2 {
		t.Fatalf("s1 should have 2 ECMP next-hops (via s2 and v), got %d", len(hops))
	}
	targets := map[graph.NodeID]bool{}
	for _, id := range hops {
		targets[g.Edge(id).To] = true
	}
	if !targets[ids["s2"]] || !targets[ids["v"]] {
		t.Fatalf("s1 next-hops should be s2 and v, got %v", targets)
	}
	if hops := tree.NextHops(g, ids["t"]); hops != nil {
		t.Fatalf("destination should have no next-hops, got %v", hops)
	}
}

func TestShortestPathEdgesMatchFig1b(t *testing.T) {
	g, ids := paperExample()
	tree := ToDestination(g, ids["t"])
	member := tree.ShortestPathEdges(g)
	// The SP DAG of Fig. 1b: s1->s2, s1->v, s2->t, v->t. Link (s2,v) is not
	// on any shortest path (both endpoints at distance 1 from t).
	onPath := 0
	for _, e := range g.Edges() {
		if member[e.ID] {
			onPath++
		}
	}
	if onPath != 4 {
		t.Fatalf("SP DAG should have 4 edges, got %d", onPath)
	}
	if e, ok := g.FindEdge(ids["s2"], ids["v"]); !ok || member[e] {
		t.Fatal("edge s2->v must not be on a shortest path to t")
	}
}

func TestUnreachable(t *testing.T) {
	g := graph.New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	g.AddEdge(a, b, 1, 1) // one-way; c isolated
	tree := ToDestination(g, b)
	if tree.Dist[a] != 1 {
		t.Fatalf("dist[a] = %g, want 1", tree.Dist[a])
	}
	if tree.Dist[c] != Inf {
		t.Fatalf("dist[c] should be Inf, got %g", tree.Dist[c])
	}
	if hops := tree.NextHops(g, c); hops != nil {
		t.Fatalf("unreachable node should have no next-hops, got %v", hops)
	}
}

func TestHopDistance(t *testing.T) {
	g, ids := paperExample()
	hd := HopDistance(g, ids["t"])
	if hd[ids["s1"]] != 2 || hd[ids["s2"]] != 1 || hd[ids["v"]] != 1 || hd[ids["t"]] != 0 {
		t.Fatalf("hop distances wrong: %v", hd)
	}
}

func TestAllDestinations(t *testing.T) {
	g, _ := paperExample()
	trees := AllDestinations(g)
	if len(trees) != g.NumNodes() {
		t.Fatalf("got %d trees, want %d", len(trees), g.NumNodes())
	}
	for i, tr := range trees {
		if tr.Dst != graph.NodeID(i) {
			t.Fatalf("tree %d has Dst %d", i, tr.Dst)
		}
		if tr.Dist[i] != 0 {
			t.Fatalf("tree %d: self distance %g", i, tr.Dist[i])
		}
	}
}

func randomGraph(rng *rand.Rand, n int) *graph.Graph {
	g := graph.New()
	g.AddNodes(n)
	for i := 0; i < n; i++ {
		g.AddLink(graph.NodeID(i), graph.NodeID((i+1)%n), 1+rng.Float64()*9, 1+float64(rng.Intn(5)))
	}
	for i := 0; i < n; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			g.AddLink(graph.NodeID(a), graph.NodeID(b), 1+rng.Float64()*9, 1+float64(rng.Intn(5)))
		}
	}
	return g
}

// Property: Dijkstra distances match Bellman-Ford distances.
func TestPropertyDijkstraMatchesBellmanFord(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := 3 + int(sz%12)
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, n)
		dst := graph.NodeID(rng.Intn(n))
		tree := ToDestination(g, dst)
		// Bellman-Ford on reversed graph.
		bf := make([]float64, n)
		for i := range bf {
			bf[i] = Inf
		}
		bf[dst] = 0
		for iter := 0; iter < n; iter++ {
			for _, e := range g.Edges() {
				if bf[e.To] != Inf && e.Weight+bf[e.To] < bf[e.From] {
					bf[e.From] = e.Weight + bf[e.To]
				}
			}
		}
		for i := range bf {
			if math.Abs(bf[i]-tree.Dist[i]) > 1e-9 && !(bf[i] == Inf && tree.Dist[i] == Inf) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: every non-destination reachable node has at least one next-hop,
// and following next-hops strictly decreases distance.
func TestPropertyNextHopsDecreaseDistance(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := 3 + int(sz%12)
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, n)
		dst := graph.NodeID(rng.Intn(n))
		tree := ToDestination(g, dst)
		for u := 0; u < n; u++ {
			uid := graph.NodeID(u)
			if uid == dst || tree.Dist[u] == Inf {
				continue
			}
			hops := tree.NextHops(g, uid)
			if len(hops) == 0 {
				return false
			}
			for _, id := range hops {
				e := g.Edge(id)
				if tree.Dist[e.To] >= tree.Dist[u] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
