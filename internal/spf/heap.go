package spf

import "github.com/coyote-te/coyote/internal/graph"

// Heap is a value-typed indexed binary min-heap of nodes keyed by distance,
// with decrease-key. It replaces the container/heap-based nodeHeap: the old
// implementation boxed one nodeItem per Push through interface{} (one heap
// allocation per edge relaxation) and held duplicate entries per node; this
// one stores plain int32/float64 arrays sized once per graph and is reused
// across runs, so a relaxation is a few array writes and sift swaps with no
// allocation at all. It is shared by the cold Dijkstra (ToDestination), the
// incremental repair queues (Incremental), and the LSDB SPF of package ospf.
//
// Keys are node IDs in [0, n); each node appears at most once. DecreaseTo
// is a no-op unless the new key is strictly smaller, so Push-style usage
// ("insert or decrease") is a single call.
type Heap struct {
	nodes []graph.NodeID // heap order
	pos   []int32        // pos[node] = index into nodes, or -1 if absent
	key   []float64      // key[node], valid while the node is queued
}

// NewHeap returns an empty heap over nodes [0, n).
func NewHeap(n int) *Heap {
	h := &Heap{
		nodes: make([]graph.NodeID, 0, n),
		pos:   make([]int32, n),
		key:   make([]float64, n),
	}
	for i := range h.pos {
		h.pos[i] = -1
	}
	return h
}

// Len reports the number of queued nodes.
func (h *Heap) Len() int { return len(h.nodes) }

// Reset empties the heap. It is O(len) — only queued nodes are touched — so
// a mostly-idle heap (the incremental repair case) resets in O(affected).
func (h *Heap) Reset() {
	for _, v := range h.nodes {
		h.pos[v] = -1
	}
	h.nodes = h.nodes[:0]
}

// Grow re-sizes the heap's node universe to n (for graphs that changed node
// count); the heap must be empty.
func (h *Heap) Grow(n int) {
	if n <= len(h.pos) {
		return
	}
	old := len(h.pos)
	h.pos = append(h.pos, make([]int32, n-old)...)
	h.key = append(h.key, make([]float64, n-old)...)
	for i := old; i < n; i++ {
		h.pos[i] = -1
	}
}

// DecreaseTo inserts v with key k, or lowers its key to k if it is already
// queued with a larger one. It reports whether the heap changed.
func (h *Heap) DecreaseTo(v graph.NodeID, k float64) bool {
	if p := h.pos[v]; p >= 0 {
		if k >= h.key[v] {
			return false
		}
		h.key[v] = k
		h.up(int(p))
		return true
	}
	h.key[v] = k
	h.pos[v] = int32(len(h.nodes))
	h.nodes = append(h.nodes, v)
	h.up(len(h.nodes) - 1)
	return true
}

// Update inserts v with key k or moves its key to k (up or down); used by
// repair queues whose keys can be re-estimated in either direction.
func (h *Heap) Update(v graph.NodeID, k float64) {
	if p := h.pos[v]; p >= 0 {
		old := h.key[v]
		h.key[v] = k
		if k < old {
			h.up(int(p))
		} else if k > old {
			h.down(int(p))
		}
		return
	}
	h.key[v] = k
	h.pos[v] = int32(len(h.nodes))
	h.nodes = append(h.nodes, v)
	h.up(len(h.nodes) - 1)
}

// Key returns the queued key of v; only meaningful while Contains(v).
func (h *Heap) Key(v graph.NodeID) float64 { return h.key[v] }

// Contains reports whether v is queued.
func (h *Heap) Contains(v graph.NodeID) bool { return h.pos[v] >= 0 }

// Pop removes and returns the minimum-key node and its key. Ties break
// toward the smaller node ID so the pop order — and therefore any
// float-order-sensitive caller — is deterministic.
func (h *Heap) Pop() (graph.NodeID, float64) {
	v := h.nodes[0]
	k := h.key[v]
	last := len(h.nodes) - 1
	h.nodes[0] = h.nodes[last]
	h.pos[h.nodes[0]] = 0
	h.nodes = h.nodes[:last]
	h.pos[v] = -1
	if last > 0 {
		h.down(0)
	}
	return v, k
}

// less orders heap entries by (key, node ID).
func (h *Heap) less(a, b graph.NodeID) bool {
	ka, kb := h.key[a], h.key[b]
	if ka != kb {
		return ka < kb
	}
	return a < b
}

func (h *Heap) up(i int) {
	v := h.nodes[i]
	for i > 0 {
		parent := (i - 1) / 2
		p := h.nodes[parent]
		if !h.less(v, p) {
			break
		}
		h.nodes[i] = p
		h.pos[p] = int32(i)
		i = parent
	}
	h.nodes[i] = v
	h.pos[v] = int32(i)
}

func (h *Heap) down(i int) {
	n := len(h.nodes)
	v := h.nodes[i]
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && h.less(h.nodes[r], h.nodes[c]) {
			c = r
		}
		if !h.less(h.nodes[c], v) {
			break
		}
		h.nodes[i] = h.nodes[c]
		h.pos[h.nodes[i]] = int32(i)
		i = c
	}
	h.nodes[i] = v
	h.pos[v] = int32(i)
}
