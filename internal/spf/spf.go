// Package spf implements OSPF-style shortest-path-first computations:
// per-destination distance fields, equal-cost next-hop sets, and
// shortest-path DAGs (the dashed DAGs of Fig. 1b in the paper).
//
// Distances are computed toward a destination t over the reversed graph, so
// that dist[u] is the length of the shortest u→t path; an edge e = (u,v)
// lies on a shortest path to t iff dist[u] = w(e) + dist[v].
//
// Two computation modes share one arithmetic contract. ToDestination is the
// cold Dijkstra over an indexed value-typed heap (no allocation per
// relaxation); Incremental maintains the same distance field under edge
// weight changes, failures, and recoveries, repairing only the affected
// vertices (Ramalingam–Reps style). Both converge to the unique least
// fixpoint of dist[u] = min over out-edges (u,v) of fl(w + dist[v]) in
// float64 arithmetic, so their outputs are bit-identical — the property the
// online controller's parity suite pins down.
package spf

import (
	"math"

	"github.com/coyote-te/coyote/internal/graph"
)

// Inf is the distance assigned to nodes that cannot reach the destination.
const Inf = math.MaxFloat64

// relTol is the relative tolerance used when testing whether an edge lies on
// a shortest path; OSPF costs are integral in practice but our heuristics
// produce floats.
const relTol = 1e-9

// Tree holds the result of a shortest-path computation toward one
// destination.
type Tree struct {
	Dst  graph.NodeID
	Dist []float64 // Dist[u] = length of shortest u→Dst path, Inf if unreachable
}

// FromDist wraps an existing distance field (for example a forwarding DAG's
// cached Dist, or an Incremental's repaired field) as a Tree, sharing the
// slice. It lets consumers reuse distances that are already known instead of
// re-running Dijkstra.
func FromDist(dst graph.NodeID, dist []float64) *Tree {
	return &Tree{Dst: dst, Dist: dist}
}

// ToDestination computes shortest-path distances from every node toward dst
// using Dijkstra's algorithm over the reversed graph.
func ToDestination(g *graph.Graph, dst graph.NodeID) *Tree {
	n := g.NumNodes()
	t := &Tree{Dst: dst, Dist: make([]float64, n)}
	dijkstraInto(g, dst, t.Dist, NewHeap(n))
	return t
}

// ToDestinationInto is ToDestination writing into caller-owned storage: dist
// (length NumNodes, fully overwritten) and a heap over at least NumNodes
// nodes (must be empty; left empty). It performs no allocation.
func ToDestinationInto(g *graph.Graph, dst graph.NodeID, dist []float64, h *Heap) *Tree {
	dijkstraInto(g, dst, dist, h)
	return &Tree{Dst: dst, Dist: dist}
}

// dijkstraInto runs Dijkstra toward dst over the reversed graph, writing
// into dist using h as the frontier queue.
func dijkstraInto(g *graph.Graph, dst graph.NodeID, dist []float64, h *Heap) {
	for i := range dist {
		dist[i] = Inf
	}
	dist[dst] = 0
	h.DecreaseTo(dst, 0)
	for h.Len() > 0 {
		v, d := h.Pop()
		dist[v] = d
		// Relax reversed edges: for edge e=(u,v) entering v, a path u→t via
		// v costs w(e) + d.
		for _, id := range g.In(v) {
			e := g.Edge(id)
			nd := e.Weight + d
			if nd < dist[e.From] {
				dist[e.From] = nd
				h.DecreaseTo(e.From, nd)
			}
		}
	}
}

// OnShortestPath reports whether directed edge e lies on some shortest path
// toward the tree's destination.
func (t *Tree) OnShortestPath(e graph.Edge) bool {
	du, dv := t.Dist[e.From], t.Dist[e.To]
	if du == Inf || dv == Inf {
		return false
	}
	return math.Abs(du-(e.Weight+dv)) <= relTol*math.Max(1, du)
}

// NextHops returns the ECMP next-hop edge set of node u toward the tree's
// destination: all outgoing edges on shortest paths.
func (t *Tree) NextHops(g *graph.Graph, u graph.NodeID) []graph.EdgeID {
	return t.AppendNextHops(nil, g, u)
}

// AppendNextHops appends u's ECMP next-hop edges toward the tree's
// destination to buf and returns the extended slice — the allocation-free
// variant of NextHops for callers that own a reusable buffer.
func (t *Tree) AppendNextHops(buf []graph.EdgeID, g *graph.Graph, u graph.NodeID) []graph.EdgeID {
	if u == t.Dst || t.Dist[u] == Inf {
		return buf
	}
	for _, id := range g.Out(u) {
		if t.OnShortestPath(g.Edge(id)) {
			buf = append(buf, id)
		}
	}
	return buf
}

// ShortestPathEdges returns a boolean membership vector (indexed by EdgeID)
// of the shortest-path DAG rooted at the tree's destination.
func (t *Tree) ShortestPathEdges(g *graph.Graph) []bool {
	return t.ShortestPathEdgesInto(make([]bool, g.NumEdges()), g)
}

// ShortestPathEdgesInto writes the shortest-path DAG membership vector into
// member (length NumEdges, fully overwritten) and returns it — the
// allocation-free variant of ShortestPathEdges.
func (t *Tree) ShortestPathEdgesInto(member []bool, g *graph.Graph) []bool {
	for _, e := range g.Edges() {
		member[e.ID] = t.OnShortestPath(e)
	}
	return member
}

// AllDestinations computes a Tree for every node of g.
func AllDestinations(g *graph.Graph) []*Tree {
	trees := make([]*Tree, g.NumNodes())
	h := NewHeap(g.NumNodes())
	for t := 0; t < g.NumNodes(); t++ {
		dist := make([]float64, g.NumNodes())
		trees[t] = ToDestinationInto(g, graph.NodeID(t), dist, h)
	}
	return trees
}

// HopDistance computes hop-count distances (unit weights) toward dst; used
// for the path-stretch metric of Fig. 11, which measures hops rather than
// OSPF cost.
func HopDistance(g *graph.Graph, dst graph.NodeID) []float64 {
	n := g.NumNodes()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = Inf
	}
	dist[dst] = 0
	queue := []graph.NodeID{dst}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, id := range g.In(v) {
			u := g.Edge(id).From
			if dist[u] == Inf {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}
