// Package spf implements OSPF-style shortest-path-first computations:
// per-destination distance fields, equal-cost next-hop sets, and
// shortest-path DAGs (the dashed DAGs of Fig. 1b in the paper).
//
// Distances are computed toward a destination t over the reversed graph, so
// that dist[u] is the length of the shortest u→t path; an edge e = (u,v)
// lies on a shortest path to t iff dist[u] = w(e) + dist[v].
package spf

import (
	"container/heap"
	"math"

	"github.com/coyote-te/coyote/internal/graph"
)

// Inf is the distance assigned to nodes that cannot reach the destination.
const Inf = math.MaxFloat64

// relTol is the relative tolerance used when testing whether an edge lies on
// a shortest path; OSPF costs are integral in practice but our heuristics
// produce floats.
const relTol = 1e-9

// Tree holds the result of a shortest-path computation toward one
// destination.
type Tree struct {
	Dst  graph.NodeID
	Dist []float64 // Dist[u] = length of shortest u→Dst path, Inf if unreachable
}

// ToDestination computes shortest-path distances from every node toward dst
// using Dijkstra's algorithm over the reversed graph.
func ToDestination(g *graph.Graph, dst graph.NodeID) *Tree {
	n := g.NumNodes()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = Inf
	}
	dist[dst] = 0
	pq := &nodeHeap{{node: dst, dist: 0}}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(nodeItem)
		if item.dist > dist[item.node] {
			continue
		}
		// Relax reversed edges: for edge e=(u,v) entering item.node (v),
		// a path u→t via v costs w(e) + dist[v].
		for _, id := range g.In(item.node) {
			e := g.Edge(id)
			nd := e.Weight + item.dist
			if nd < dist[e.From] {
				dist[e.From] = nd
				heap.Push(pq, nodeItem{node: e.From, dist: nd})
			}
		}
	}
	return &Tree{Dst: dst, Dist: dist}
}

// OnShortestPath reports whether directed edge e lies on some shortest path
// toward the tree's destination.
func (t *Tree) OnShortestPath(e graph.Edge) bool {
	du, dv := t.Dist[e.From], t.Dist[e.To]
	if du == Inf || dv == Inf {
		return false
	}
	return math.Abs(du-(e.Weight+dv)) <= relTol*math.Max(1, du)
}

// NextHops returns the ECMP next-hop edge set of node u toward the tree's
// destination: all outgoing edges on shortest paths.
func (t *Tree) NextHops(g *graph.Graph, u graph.NodeID) []graph.EdgeID {
	if u == t.Dst || t.Dist[u] == Inf {
		return nil
	}
	var hops []graph.EdgeID
	for _, id := range g.Out(u) {
		if t.OnShortestPath(g.Edge(id)) {
			hops = append(hops, id)
		}
	}
	return hops
}

// ShortestPathEdges returns a boolean membership vector (indexed by EdgeID)
// of the shortest-path DAG rooted at the tree's destination.
func (t *Tree) ShortestPathEdges(g *graph.Graph) []bool {
	member := make([]bool, g.NumEdges())
	for _, e := range g.Edges() {
		if t.OnShortestPath(e) {
			member[e.ID] = true
		}
	}
	return member
}

// AllDestinations computes a Tree for every node of g.
func AllDestinations(g *graph.Graph) []*Tree {
	trees := make([]*Tree, g.NumNodes())
	for t := 0; t < g.NumNodes(); t++ {
		trees[t] = ToDestination(g, graph.NodeID(t))
	}
	return trees
}

// HopDistance computes hop-count distances (unit weights) toward dst; used
// for the path-stretch metric of Fig. 11, which measures hops rather than
// OSPF cost.
func HopDistance(g *graph.Graph, dst graph.NodeID) []float64 {
	n := g.NumNodes()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = Inf
	}
	dist[dst] = 0
	queue := []graph.NodeID{dst}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, id := range g.In(v) {
			u := g.Edge(id).From
			if dist[u] == Inf {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

type nodeItem struct {
	node graph.NodeID
	dist float64
}

type nodeHeap []nodeItem

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(nodeItem)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
