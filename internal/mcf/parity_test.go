package mcf

import (
	"math"
	"testing"

	"github.com/coyote-te/coyote/internal/dagx"
	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/lp"
	"github.com/coyote-te/coyote/internal/topo"
)

// restrictDestinations zeroes every demand column except the given
// destinations, keeping the OPTDAG formulation representative while
// bounding the dense oracle's cost on the big corpus topologies.
func restrictDestinations(D *demand.Matrix, dests ...graph.NodeID) *demand.Matrix {
	keep := make(map[graph.NodeID]bool, len(dests))
	for _, t := range dests {
		keep[t] = true
	}
	out := demand.NewMatrix(D.N)
	for s := 0; s < D.N; s++ {
		for t := 0; t < D.N; t++ {
			if keep[graph.NodeID(t)] {
				out.D[s*D.N+t] = D.D[s*D.N+t]
			}
		}
	}
	return out
}

// TestExactSparseDenseParityCorpus proves the sparse revised simplex and
// the dense tableau oracle agree on the OPTDAG formulation of every corpus
// topology — both unrestricted (full multicommodity) and DAG-restricted —
// and that a warm-started re-solve reproduces the optimum bit-for-bit
// deterministically.
func TestExactSparseDenseParityCorpus(t *testing.T) {
	for _, name := range topo.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			g, err := topo.Load(name)
			if err != nil {
				t.Fatal(err)
			}
			n := g.NumNodes()
			// Four spread-out destinations keep the dense oracle tractable
			// on the 30+ node topologies while exercising the same row and
			// column structure.
			D := restrictDestinations(demand.Gravity(g, 1),
				0, graph.NodeID(n/3), graph.NodeID(2*n/3), graph.NodeID(n-1))
			dags := dagx.BuildAll(g, dagx.Augmented)
			for _, tc := range []struct {
				label string
				dags  []*dagx.DAG
			}{{"free", nil}, {"in-dag", dags}} {
				sparseMLU, _, basis, err := MinMLUExactBasis(g, tc.dags, D, nil)
				if err != nil {
					t.Fatalf("%s sparse: %v", tc.label, err)
				}
				denseMLU, _, err := MinMLUExactDense(g, tc.dags, D)
				if err != nil {
					t.Fatalf("%s dense: %v", tc.label, err)
				}
				tol := 1e-6 * (1 + denseMLU)
				if math.Abs(sparseMLU-denseMLU) > tol {
					t.Fatalf("%s: sparse MLU %.12g, dense %.12g", tc.label, sparseMLU, denseMLU)
				}
				// Warm re-solve of the identical instance: must accept the
				// basis and land on the same optimum (same vertex, so only
				// round-off separates the two values).
				warmMLU, _, _, err := MinMLUExactBasis(g, tc.dags, D, basis)
				if err != nil {
					t.Fatalf("%s warm: %v", tc.label, err)
				}
				if math.Abs(warmMLU-sparseMLU) > 1e-9*(1+sparseMLU) {
					t.Fatalf("%s: warm MLU %.17g differs from cold %.17g", tc.label, warmMLU, sparseMLU)
				}
			}
		})
	}
}

// TestExactWarmBasisAcrossDemands re-solves the same topology under a
// drifting demand matrix with the previous basis: the optima must match a
// cold solve exactly in value.
func TestExactWarmBasisAcrossDemands(t *testing.T) {
	g, err := topo.Load("NSF")
	if err != nil {
		t.Fatal(err)
	}
	dags := dagx.BuildAll(g, dagx.Augmented)
	base := demand.Gravity(g, 1)
	scales := []float64{1, 1.15, 0.9, 1.3}
	var carriedBasis *lp.Basis
	for _, s := range scales {
		D := base.Clone().Scale(s)
		coldMLU, _, _, err := MinMLUExactBasis(g, dags, D, nil)
		if err != nil {
			t.Fatal(err)
		}
		warmMLU, _, nb, err := MinMLUExactBasis(g, dags, D, carriedBasis)
		if err != nil {
			t.Fatal(err)
		}
		tol := 1e-9 * (1 + coldMLU)
		if math.Abs(warmMLU-coldMLU) > tol {
			t.Fatalf("scale %g: warm MLU %.12g, cold %.12g", s, warmMLU, coldMLU)
		}
		carriedBasis = nb
	}
}
