package mcf

import (
	"math"
	"math/rand"
	"testing"

	"github.com/coyote-te/coyote/internal/dagx"
	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/lp"
	"github.com/coyote-te/coyote/internal/topo"
)

// TestDualRestartBoundEditsProperty drives the online-controller contract
// end to end on corpus-derived OPTDAG models: a random sequence of demand
// (RHS) edits applied to a carried MinMLUModel must, after every edit,
// reach the same optimum as a cold solve of the edited instance — and the
// warm path, repaired by the dual simplex where the carried basis went
// primal infeasible, must spend well under the ROADMAP target of 0.6× the
// cold pivot count in aggregate.
func TestDualRestartBoundEditsProperty(t *testing.T) {
	for _, name := range []string{"NSF", "Abilene"} {
		name := name
		t.Run(name, func(t *testing.T) {
			g, err := topo.Load(name)
			if err != nil {
				t.Fatal(err)
			}
			n := g.NumNodes()
			dests := []graph.NodeID{0, graph.NodeID(n / 3), graph.NodeID(2 * n / 3), graph.NodeID(n - 1)}
			D := restrictDestinations(demand.Gravity(g, 1), dests...)
			dags := dagx.BuildAll(g, dagx.Augmented)

			mm := NewMinMLUModel(g, dags, D)
			_, _, basis, err := mm.Solve(nil)
			if err != nil {
				t.Fatal(err)
			}

			rng := rand.New(rand.NewSource(0x5eed + int64(n)))
			cur := D.Clone()
			const edits = 30
			var warmIters, coldIters uint64
			var dualHits uint64
			for i := 0; i < edits; i++ {
				// Edit 1–3 demand entries toward active destinations. Demands
				// stay strictly positive so a cold rebuild of the edited
				// matrix has the identical active-destination shape.
				for k := rng.Intn(3) + 1; k > 0; k-- {
					tt := dests[rng.Intn(len(dests))]
					s := graph.NodeID(rng.Intn(n))
					if s == tt {
						continue
					}
					old := cur.D[int(s)*n+int(tt)]
					if old <= 0 {
						continue
					}
					d := old * (0.25 + 3*rng.Float64())
					cur.D[int(s)*n+int(tt)] = d
					if err := mm.SetDemand(s, tt, d); err != nil {
						t.Fatal(err)
					}
				}

				lp.ResetGlobalStats()
				warmMLU, _, nb, err := mm.Solve(&lp.SolveOptions{Basis: basis})
				if err != nil {
					t.Fatalf("edit %d warm: %v", i, err)
				}
				ws := lp.GlobalStats()
				warmIters += ws.Iterations
				dualHits += ws.DualHits
				basis = nb

				lp.ResetGlobalStats()
				coldMLU, _, _, err := MinMLUExactBasis(g, dags, cur, nil)
				if err != nil {
					t.Fatalf("edit %d cold: %v", i, err)
				}
				coldIters += lp.GlobalStats().Iterations

				if math.Abs(warmMLU-coldMLU) > 1e-6*(1+coldMLU) {
					t.Fatalf("edit %d: warm MLU %.12g, cold %.12g", i, warmMLU, coldMLU)
				}
			}
			if dualHits == 0 {
				t.Fatalf("dual simplex never activated across %d random edits", edits)
			}
			ratio := float64(warmIters) / float64(coldIters)
			t.Logf("%s: warm %d pivots vs cold %d over %d edits (ratio %.3f, dual hits %d)",
				name, warmIters, coldIters, edits, ratio, dualHits)
			if ratio >= 0.6 {
				t.Fatalf("warm/cold pivot ratio %.3f; regression guard requires < 0.6", ratio)
			}
		})
	}
}
