package mcf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/coyote-te/coyote/internal/dagx"
	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/graph"
)

func paperExample() (*graph.Graph, map[string]graph.NodeID) {
	g := graph.New()
	ids := map[string]graph.NodeID{
		"s1": g.AddNode("s1"),
		"s2": g.AddNode("s2"),
		"v":  g.AddNode("v"),
		"t":  g.AddNode("t"),
	}
	g.AddLink(ids["s1"], ids["s2"], 1, 1)
	g.AddLink(ids["s1"], ids["v"], 1, 1)
	g.AddLink(ids["s2"], ids["v"], 1, 1)
	g.AddLink(ids["s2"], ids["t"], 1, 1)
	g.AddLink(ids["v"], ids["t"], 1, 1)
	return g, ids
}

// The running example: demand (2,0) routes optimally at MLU 1 by splitting
// between (s1 s2 t) and (s1 v t) — §II of the paper.
func TestExactRunningExampleD1(t *testing.T) {
	g, ids := paperExample()
	D := demand.NewMatrix(g.NumNodes())
	D.Set(ids["s1"], ids["t"], 2)
	mlu, flows, err := MinMLUExact(g, nil, D)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mlu-1) > 1e-6 {
		t.Fatalf("OPTU = %g, want 1", mlu)
	}
	// Conservation at s1: net outflow = 2.
	out := 0.0
	for _, id := range g.Out(ids["s1"]) {
		out += flows[ids["t"]][id]
	}
	for _, id := range g.In(ids["s1"]) {
		out -= flows[ids["t"]][id]
	}
	if math.Abs(out-2) > 1e-6 {
		t.Fatalf("net outflow at s1 = %g, want 2", out)
	}
}

// Both users at full demand: total 4 must cross the cut {(s2,t),(v,t)} of
// capacity 2, so OPTU = 2.
func TestExactCutBound(t *testing.T) {
	g, ids := paperExample()
	D := demand.NewMatrix(g.NumNodes())
	D.Set(ids["s1"], ids["t"], 2)
	D.Set(ids["s2"], ids["t"], 2)
	mlu, _, err := MinMLUExact(g, nil, D)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mlu-2) > 1e-6 {
		t.Fatalf("OPTU = %g, want 2 (cut bound)", mlu)
	}
}

func TestExactDAGRestricted(t *testing.T) {
	g, ids := paperExample()
	// Under the plain SP DAG toward t (s2 has only the direct edge),
	// demand (0,2) cannot use the detour: MLU 2. The augmented DAG with
	// the v->s2 orientation doesn't help s2 either (the link points the
	// wrong way), still 2. But the unrestricted optimum is 1.
	D := demand.NewMatrix(g.NumNodes())
	D.Set(ids["s2"], ids["t"], 2)
	spDags := dagx.BuildAll(g, dagx.ShortestPath)
	mluDAG, _, err := MinMLUExact(g, spDags, D)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mluDAG-2) > 1e-6 {
		t.Fatalf("OPTDAG = %g, want 2", mluDAG)
	}
	mluFree, _, err := MinMLUExact(g, nil, D)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mluFree-1) > 1e-6 {
		t.Fatalf("OPTU = %g, want 1", mluFree)
	}
}

func TestExactUnroutable(t *testing.T) {
	g := graph.New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	g.AddEdge(b, a, 1, 1) // only b->a; a cannot reach b
	D := demand.NewMatrix(2)
	D.Set(a, b, 1)
	mlu, _, err := MinMLUExact(g, nil, D)
	if err == nil || !math.IsInf(mlu, 1) {
		t.Fatalf("want unroutable, got mlu=%g err=%v", mlu, err)
	}
}

func TestApproxUnroutable(t *testing.T) {
	g := graph.New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	g.AddEdge(b, a, 1, 1)
	D := demand.NewMatrix(2)
	D.Set(a, b, 1)
	if _, _, err := MinMLUApprox(g, nil, D, 0.1); err == nil {
		t.Fatal("want unroutable error")
	}
}

func TestZeroDemand(t *testing.T) {
	g, _ := paperExample()
	D := demand.NewMatrix(g.NumNodes())
	mlu, _, err := MinMLUExact(g, nil, D)
	if err != nil || mlu != 0 {
		t.Fatalf("zero demand: mlu=%g err=%v", mlu, err)
	}
	mlu, _, err = MinMLUApprox(g, nil, D, 0.1)
	if err != nil || mlu != 0 {
		t.Fatalf("zero demand approx: mlu=%g err=%v", mlu, err)
	}
}

func TestApproxEpsValidation(t *testing.T) {
	g, ids := paperExample()
	D := demand.NewMatrix(g.NumNodes())
	D.Set(ids["s1"], ids["t"], 1)
	if _, _, err := MinMLUApprox(g, nil, D, 0); err == nil {
		t.Fatal("eps=0 should be rejected")
	}
	if _, _, err := MinMLUApprox(g, nil, D, 0.9); err == nil {
		t.Fatal("eps=0.9 should be rejected")
	}
}

func TestApproxMatchesExactRunningExample(t *testing.T) {
	g, ids := paperExample()
	D := demand.NewMatrix(g.NumNodes())
	D.Set(ids["s1"], ids["t"], 2)
	D.Set(ids["s2"], ids["t"], 1)
	exact, _, err := MinMLUExact(g, nil, D)
	if err != nil {
		t.Fatal(err)
	}
	approx, flows, err := MinMLUApprox(g, nil, D, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if approx < exact-1e-6 {
		t.Fatalf("approx %g below exact optimum %g", approx, exact)
	}
	if approx > exact*1.25 {
		t.Fatalf("approx %g too far above exact %g", approx, exact)
	}
	// The returned flow must route the demand: conservation at s1 toward t.
	out := 0.0
	for _, id := range g.Out(ids["s1"]) {
		out += flows[ids["t"]][id]
	}
	for _, id := range g.In(ids["s1"]) {
		out -= flows[ids["t"]][id]
	}
	if math.Abs(out-2) > 1e-6 {
		t.Fatalf("approx flow: net outflow at s1 = %g, want 2", out)
	}
}

func randomInstance(seed int64, maxN int) (*graph.Graph, *demand.Matrix) {
	rng := rand.New(rand.NewSource(seed))
	n := 4 + rng.Intn(maxN-3)
	g := graph.New()
	g.AddNodes(n)
	for i := 0; i < n; i++ {
		g.AddLink(graph.NodeID(i), graph.NodeID((i+1)%n), 1+rng.Float64()*9, 1+float64(rng.Intn(4)))
	}
	for i := 0; i < n/2; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			g.AddLink(graph.NodeID(a), graph.NodeID(b), 1+rng.Float64()*9, 1+float64(rng.Intn(4)))
		}
	}
	D := demand.NewMatrix(n)
	pairs := 2 + rng.Intn(2*n)
	for i := 0; i < pairs; i++ {
		s, t := rng.Intn(n), rng.Intn(n)
		if s != t {
			D.Set(graph.NodeID(s), graph.NodeID(t), rng.Float64()*4)
		}
	}
	return g, D
}

// Property: the FPTAS never beats the exact optimum and stays within its
// guarantee band; restricted to DAGs its flows stay inside the DAGs.
func TestPropertyApproxVsExact(t *testing.T) {
	f := func(seed int64) bool {
		g, D := randomInstance(seed, 8)
		if D.Total() == 0 {
			return true
		}
		exact, _, err := MinMLUExact(g, nil, D)
		if err != nil {
			return true // skip pathological
		}
		approx, _, err := MinMLUApprox(g, nil, D, 0.05)
		if err != nil {
			return false
		}
		if exact == 0 {
			return approx < 1e-9
		}
		return approx >= exact-1e-6 && approx <= exact*1.3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: DAG-restricted optimum is never better than the unrestricted
// optimum, and flows stay within the DAGs.
func TestPropertyDAGRestrictionMonotone(t *testing.T) {
	f := func(seed int64) bool {
		g, D := randomInstance(seed, 8)
		if D.Total() == 0 {
			return true
		}
		dags := dagx.BuildAll(g, dagx.Augmented)
		free, _, err1 := MinMLUExact(g, nil, D)
		restr, flows, err2 := MinMLUExact(g, dags, D)
		if err1 != nil || err2 != nil {
			return true
		}
		if restr < free-1e-6 {
			return false
		}
		for tt := range flows {
			if flows[tt] == nil {
				continue
			}
			for e, fl := range flows[tt] {
				if fl > 1e-9 && !dags[tt].Member[e] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkApproxMedium(b *testing.B) {
	g, D := randomInstance(42, 16)
	dags := dagx.BuildAll(g, dagx.Augmented)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := MinMLUApprox(g, dags, D, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactMedium(b *testing.B) {
	g, D := randomInstance(42, 16)
	dags := dagx.BuildAll(g, dagx.Augmented)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := MinMLUExact(g, dags, D); err != nil {
			b.Fatal(err)
		}
	}
}
