// Package mcf computes demands-aware optimal routings: the minimum maximum
// link utilization (min-MLU) multicommodity flow that the paper denotes
// OPTU(D) (§III), optionally restricted to a given set of per-destination
// DAGs (the "demands-aware optimum within the same DAGs" that normalizes
// every figure in §VI).
//
// Destination-based min-MLU equals the destination-aggregated
// multicommodity optimum: flows toward a common destination can be merged,
// and any cycles in the aggregate can be cancelled without increasing link
// loads, leaving an in-DAG flow realizable by splitting ratios.
//
// Two solvers are provided: an exact LP formulation (package lp) and a
// Garg–Könemann/Fleischer-style fully polynomial approximation scheme. The
// FPTAS replaces the paper's external LP solver on the hot evaluation path;
// tests cross-validate the two on small instances.
package mcf

import (
	"container/heap"
	"errors"
	"fmt"
	"io"
	"math"

	"github.com/coyote-te/coyote/internal/dagx"
	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/lp"
)

// ErrUnroutable indicates some positive demand has no path to its
// destination within the allowed edges.
var ErrUnroutable = errors.New("mcf: demand has no path within the allowed edge set")

// allowedEdges returns the usable-edge membership vector for destination t:
// the DAG's member set if dags is non-nil, every edge otherwise.
func allowedEdges(g *graph.Graph, dags []*dagx.DAG, t graph.NodeID) []bool {
	if dags != nil {
		return dags[t].Member
	}
	all := make([]bool, g.NumEdges())
	for i := range all {
		all[i] = true
	}
	return all
}

// MinMLUExact solves min-MLU exactly with the sparse revised-simplex
// solver. It returns the optimal utilization and the per-destination edge
// flows (flows[t][e]; nil rows for destinations without demand). When dags
// is non-nil, flows are restricted to each destination's DAG.
func MinMLUExact(g *graph.Graph, dags []*dagx.DAG, D *demand.Matrix) (float64, [][]float64, error) {
	mlu, flows, _, err := MinMLUExactBasis(g, dags, D, nil)
	return mlu, flows, err
}

// MinMLUExactBasis is MinMLUExact with an optional warm-start basis from a
// previous solve of the same formulation shape — same graph, DAGs, and set
// of active destinations (demand columns with traffic). The returned basis
// is the optimal one of this solve; carrying it across the online
// controller's repeated normalizations (demand matrices drifting inside a
// box) typically skips phase 1 entirely, and a bound/RHS-only drift is
// repaired by the dual simplex (lp.MethodAuto). A basis that no longer
// fits is ignored. The optimum itself never depends on the warm basis;
// only the pivot path does.
func MinMLUExactBasis(g *graph.Graph, dags []*dagx.DAG, D *demand.Matrix, warm *lp.Basis) (float64, [][]float64, *lp.Basis, error) {
	if D.Total() == 0 {
		return 0, make([][]float64, g.NumNodes()), nil, nil
	}
	mm := NewMinMLUModel(g, dags, D)
	return mm.Solve(&lp.SolveOptions{Basis: warm})
}

// MinMLUModel is the exact min-MLU LP kept mutable between solves: the
// online controller edits demand RHS values in place (SetDemand) and
// re-solves from the carried basis, which routes through the dual simplex
// when the edit left the basis primal infeasible. The row/variable maps
// are exported so tests and tools can address the formulation directly,
// and DumpMPS writes the instance in MPS form for external solvers.
type MinMLUModel struct {
	Model *lp.Model
	// Alpha is the MLU variable (the objective).
	Alpha int
	// VarOf[t][e] is the LP variable carrying flow toward destination t on
	// edge e, or −1 (destination inactive or edge outside its DAG).
	VarOf [][]int
	// DemandRow[t][v] is the conservation row "out − in = d_vt" at node
	// v ≠ t for active destination t, or −1.
	DemandRow [][]int
	// CapRow[e] is edge e's capacity row "Σ_t flow − α·c_e ≤ 0", or −1
	// when no destination may use the edge.
	CapRow []int

	g      *graph.Graph
	active []bool
}

// NewMinMLUModel builds the min-MLU LP for the demands D. The active
// destination set (columns of D with traffic) fixes the formulation shape;
// SetDemand may later move demand only toward destinations active here.
func NewMinMLUModel(g *graph.Graph, dags []*dagx.DAG, D *demand.Matrix) *MinMLUModel {
	n := g.NumNodes()
	prob := lp.NewModel(lp.Minimize)
	mm := &MinMLUModel{
		Model:     prob,
		Alpha:     prob.AddVar(0, lp.Inf, 1),
		VarOf:     make([][]int, n),
		DemandRow: make([][]int, n),
		CapRow:    make([]int, g.NumEdges()),
		g:         g,
		active:    make([]bool, n),
	}
	for t := 0; t < n; t++ {
		col := D.ToDestination(graph.NodeID(t))
		for _, d := range col {
			if d > 0 {
				mm.active[t] = true
				break
			}
		}
		if !mm.active[t] {
			continue
		}
		allowed := allowedEdges(g, dags, graph.NodeID(t))
		mm.VarOf[t] = make([]int, g.NumEdges())
		for e := range mm.VarOf[t] {
			if allowed[e] {
				mm.VarOf[t][e] = prob.AddVars(1)
			} else {
				mm.VarOf[t][e] = -1
			}
		}
		// Flow conservation at every v != t: out - in = d_vt.
		mm.DemandRow[t] = make([]int, n)
		for v := range mm.DemandRow[t] {
			mm.DemandRow[t][v] = -1
		}
		for v := 0; v < n; v++ {
			if v == t {
				continue
			}
			var terms []lp.Term
			for _, id := range g.Out(graph.NodeID(v)) {
				if mm.VarOf[t][id] >= 0 {
					terms = append(terms, lp.Term{Var: mm.VarOf[t][id], Coeff: 1})
				}
			}
			for _, id := range g.In(graph.NodeID(v)) {
				if mm.VarOf[t][id] >= 0 {
					terms = append(terms, lp.Term{Var: mm.VarOf[t][id], Coeff: -1})
				}
			}
			mm.DemandRow[t][v] = prob.AddEQ(terms, col[v])
		}
	}
	// Capacity: sum_t flow_t(e) <= alpha * c_e.
	for _, e := range g.Edges() {
		mm.CapRow[e.ID] = -1
		terms := []lp.Term{{Var: mm.Alpha, Coeff: -e.Capacity}}
		for t := 0; t < n; t++ {
			if mm.active[t] && mm.VarOf[t][e.ID] >= 0 {
				terms = append(terms, lp.Term{Var: mm.VarOf[t][e.ID], Coeff: 1})
			}
		}
		if len(terms) > 1 {
			mm.CapRow[e.ID] = prob.AddLE(terms, 0)
		}
	}
	return mm
}

// SetDemand moves the demand from s toward t to d by editing the
// conservation row's RHS in place — the bound-only edit the dual simplex
// warm restart is built for. The destination must have been active at
// construction time.
func (mm *MinMLUModel) SetDemand(s, t graph.NodeID, d float64) error {
	if int(t) >= len(mm.DemandRow) || mm.DemandRow[t] == nil {
		return fmt.Errorf("mcf: destination %d inactive in this formulation", t)
	}
	r := mm.DemandRow[t][s]
	if r < 0 {
		return fmt.Errorf("mcf: no conservation row for %d→%d", s, t)
	}
	mm.Model.SetRowBounds(r, d, d)
	return nil
}

// Solve runs the LP with the given options (typically a carried Basis) and
// unpacks the solution into MLU and per-destination edge flows.
func (mm *MinMLUModel) Solve(opts *lp.SolveOptions) (float64, [][]float64, *lp.Basis, error) {
	sol, err := mm.Model.Solve(opts)
	if err != nil {
		return 0, nil, nil, fmt.Errorf("mcf: %w", err)
	}
	if sol.Status != lp.Optimal {
		return math.Inf(1), nil, nil, ErrUnroutable
	}
	n := mm.g.NumNodes()
	flows := make([][]float64, n)
	for t := 0; t < n; t++ {
		if !mm.active[t] {
			continue
		}
		flows[t] = make([]float64, mm.g.NumEdges())
		for e := range flows[t] {
			if mm.VarOf[t][e] >= 0 {
				flows[t][e] = sol.X[mm.VarOf[t][e]]
			}
		}
	}
	return sol.Objective, flows, sol.Basis, nil
}

// DumpMPS writes the instance in canonical MPS form, so any min-MLU LP can
// be handed to an external solver or added to the stress corpus.
func (mm *MinMLUModel) DumpMPS(w io.Writer) error {
	return lp.WriteMPS(w, mm.Model)
}

// MinMLUExactDense solves the identical formulation on the dense
// full-tableau reference solver. It is the parity oracle for the sparse
// engine (see mcf parity tests and BenchmarkExactOPT) and is not used on
// any production path.
func MinMLUExactDense(g *graph.Graph, dags []*dagx.DAG, D *demand.Matrix) (float64, [][]float64, error) {
	n := g.NumNodes()
	if D.Total() == 0 {
		return 0, make([][]float64, n), nil
	}
	prob := lp.NewProblem(lp.Minimize)
	alpha := prob.AddVariable()
	prob.SetObjective(alpha, 1)

	varOf := make([][]int, n)
	active := make([]bool, n)
	for t := 0; t < n; t++ {
		col := D.ToDestination(graph.NodeID(t))
		for _, d := range col {
			if d > 0 {
				active[t] = true
				break
			}
		}
		if !active[t] {
			continue
		}
		allowed := allowedEdges(g, dags, graph.NodeID(t))
		varOf[t] = make([]int, g.NumEdges())
		for e := range varOf[t] {
			if allowed[e] {
				varOf[t][e] = prob.AddVariable()
			} else {
				varOf[t][e] = -1
			}
		}
		for v := 0; v < n; v++ {
			if v == t {
				continue
			}
			var terms []lp.Term
			for _, id := range g.Out(graph.NodeID(v)) {
				if varOf[t][id] >= 0 {
					terms = append(terms, lp.Term{Var: varOf[t][id], Coeff: 1})
				}
			}
			for _, id := range g.In(graph.NodeID(v)) {
				if varOf[t][id] >= 0 {
					terms = append(terms, lp.Term{Var: varOf[t][id], Coeff: -1})
				}
			}
			prob.AddConstraint(terms, lp.EQ, col[v])
		}
	}
	for _, e := range g.Edges() {
		terms := []lp.Term{{Var: alpha, Coeff: -e.Capacity}}
		for t := 0; t < n; t++ {
			if active[t] && varOf[t][e.ID] >= 0 {
				terms = append(terms, lp.Term{Var: varOf[t][e.ID], Coeff: 1})
			}
		}
		if len(terms) > 1 {
			prob.AddConstraint(terms, lp.LE, 0)
		}
	}
	sol, err := prob.Solve()
	if err != nil {
		return 0, nil, fmt.Errorf("mcf: %w", err)
	}
	if sol.Status != lp.Optimal {
		return math.Inf(1), nil, ErrUnroutable
	}
	flows := make([][]float64, n)
	for t := 0; t < n; t++ {
		if !active[t] {
			continue
		}
		flows[t] = make([]float64, g.NumEdges())
		for e := range flows[t] {
			if varOf[t][e] >= 0 {
				flows[t][e] = sol.X[varOf[t][e]]
			}
		}
	}
	return sol.Objective, flows, nil
}

// MinMLUApprox approximates min-MLU with a Garg–Könemann/Fleischer
// multiplicative-weights scheme, aggregating commodities per destination
// (one shortest-path tree per destination per phase). The returned flow
// routes D exactly; its utilization lies in [OPT, (1+O(eps))·OPT].
//
// When dags is non-nil the flow is restricted to the DAGs and is therefore
// acyclic per destination (convertible to splitting ratios).
func MinMLUApprox(g *graph.Graph, dags []*dagx.DAG, D *demand.Matrix, eps float64) (float64, [][]float64, error) {
	if eps <= 0 || eps >= 0.5 {
		return 0, nil, fmt.Errorf("mcf: eps %g out of range (0, 0.5)", eps)
	}
	n := g.NumNodes()
	if D.Total() == 0 {
		return 0, make([][]float64, n), nil
	}
	// Scale demands so a single-shortest-path routing has MLU 1; this keeps
	// the concurrency β = 1/OPT within a small constant and bounds the
	// number of phases.
	refMLU, err := singlePathMLU(g, dags, D)
	if err != nil {
		return math.Inf(1), nil, err
	}
	for attempt := 0; attempt < 8; attempt++ {
		scale := 1 / refMLU
		scaled := D.Clone().Scale(scale)
		mlu, flows, ok := gkRun(g, dags, scaled, eps)
		if !ok {
			// Zero full phases completed: demands too large relative to the
			// length budget; shrink and retry.
			refMLU *= 2
			continue
		}
		// Undo scaling: flow/scale routes D with utilization mlu/scale.
		for t := range flows {
			if flows[t] == nil {
				continue
			}
			for e := range flows[t] {
				flows[t][e] /= scale
			}
		}
		return mlu / scale, flows, nil
	}
	return 0, nil, errors.New("mcf: approximation failed to complete a phase")
}

// gkRun executes the core multiplicative-weights loop. It reports ok=false
// if no full phase completed.
func gkRun(g *graph.Graph, dags []*dagx.DAG, D *demand.Matrix, eps float64) (float64, [][]float64, bool) {
	n := g.NumNodes()
	m := g.NumEdges()
	delta := (1 + eps) * math.Pow((1+eps)*float64(m), -1/eps)
	length := make([]float64, m)
	sumLC := 0.0 // Σ l(e)·c(e)
	for _, e := range g.Edges() {
		length[e.ID] = delta / e.Capacity
		sumLC += delta
	}
	done := make([][]float64, n)  // flows from completed phases
	phase := make([][]float64, n) // flows from the in-progress phase
	var dests []int
	for t := 0; t < n; t++ {
		col := D.ToDestination(graph.NodeID(t))
		for _, d := range col {
			if d > 0 {
				dests = append(dests, t)
				done[t] = make([]float64, m)
				phase[t] = make([]float64, m)
				break
			}
		}
	}
	phases := 0
	maxPhases := 200000
	for sumLC < 1 && phases < maxPhases {
		for _, t := range dests {
			allowed := allowedEdges(g, dags, graph.NodeID(t))
			parent := spTree(g, graph.NodeID(t), length, allowed)
			col := D.ToDestination(graph.NodeID(t))
			for s := 0; s < n; s++ {
				if col[s] <= 0 || s == t {
					continue
				}
				if parent[s] < 0 {
					return 0, nil, false // unreachable (caller validated, so defensive)
				}
				rem := col[s]
				for rem > 1e-15 {
					// Walk the tree path, find the bottleneck capacity.
					bottleneck := math.Inf(1)
					for u := graph.NodeID(s); u != graph.NodeID(t); {
						e := g.Edge(parent[u])
						if e.Capacity < bottleneck {
							bottleneck = e.Capacity
						}
						u = e.To
					}
					f := math.Min(rem, bottleneck)
					for u := graph.NodeID(s); u != graph.NodeID(t); {
						e := g.Edge(parent[u])
						phase[t][e.ID] += f
						dl := length[e.ID] * eps * f / e.Capacity
						length[e.ID] += dl
						sumLC += dl * e.Capacity
						u = e.To
					}
					rem -= f
				}
			}
		}
		phases++
		for _, t := range dests {
			for e := 0; e < m; e++ {
				done[t][e] += phase[t][e]
				phase[t][e] = 0
			}
		}
	}
	if phases == 0 {
		return 0, nil, false
	}
	inv := 1 / float64(phases)
	mlu := 0.0
	for _, t := range dests {
		for e := 0; e < m; e++ {
			done[t][e] *= inv
		}
	}
	for _, ed := range g.Edges() {
		load := 0.0
		for _, t := range dests {
			load += done[t][ed.ID]
		}
		if u := load / ed.Capacity; u > mlu {
			mlu = u
		}
	}
	return mlu, done, true
}

// spTree computes a shortest-path tree toward t under the given edge
// lengths, restricted to allowed edges. parent[u] is the first edge of u's
// shortest path (or -1 if unreachable / u == t).
func spTree(g *graph.Graph, t graph.NodeID, length []float64, allowed []bool) []graph.EdgeID {
	n := g.NumNodes()
	dist := make([]float64, n)
	parent := make([]graph.EdgeID, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		parent[i] = -1
	}
	dist[t] = 0
	pq := &distHeap{{node: t, dist: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(distItem)
		if it.dist > dist[it.node] {
			continue
		}
		for _, id := range g.In(it.node) {
			if !allowed[id] {
				continue
			}
			e := g.Edge(id)
			nd := it.dist + length[id]
			if nd < dist[e.From] {
				dist[e.From] = nd
				parent[e.From] = id
				heap.Push(pq, distItem{node: e.From, dist: nd})
			}
		}
	}
	return parent
}

// singlePathMLU routes every demand along one shortest path (by OSPF
// weight) and returns the resulting utilization — a cheap upper bound on
// OPT used only for demand scaling.
func singlePathMLU(g *graph.Graph, dags []*dagx.DAG, D *demand.Matrix) (float64, error) {
	n := g.NumNodes()
	loads := make([]float64, g.NumEdges())
	weights := make([]float64, g.NumEdges())
	for _, e := range g.Edges() {
		weights[e.ID] = e.Weight
	}
	for t := 0; t < n; t++ {
		col := D.ToDestination(graph.NodeID(t))
		any := false
		for _, d := range col {
			if d > 0 {
				any = true
				break
			}
		}
		if !any {
			continue
		}
		allowed := allowedEdges(g, dags, graph.NodeID(t))
		parent := spTree(g, graph.NodeID(t), weights, allowed)
		for s := 0; s < n; s++ {
			if col[s] <= 0 || s == t {
				continue
			}
			if parent[s] < 0 {
				return 0, ErrUnroutable
			}
			for u := graph.NodeID(s); u != graph.NodeID(t); {
				e := g.Edge(parent[u])
				loads[e.ID] += col[s]
				u = e.To
			}
		}
	}
	mlu := 0.0
	for _, e := range g.Edges() {
		if u := loads[e.ID] / e.Capacity; u > mlu {
			mlu = u
		}
	}
	return mlu, nil
}

type distItem struct {
	node graph.NodeID
	dist float64
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
