package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func buildDiamond(t *testing.T) *Graph {
	t.Helper()
	g := New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	d := g.AddNode("d")
	g.AddLink(a, b, 10, 1)
	g.AddLink(a, c, 10, 1)
	g.AddLink(b, d, 10, 1)
	g.AddLink(c, d, 10, 1)
	return g
}

func TestAddNodeIdempotent(t *testing.T) {
	g := New()
	id1 := g.AddNode("x")
	id2 := g.AddNode("x")
	if id1 != id2 {
		t.Fatalf("AddNode not idempotent: %d vs %d", id1, id2)
	}
	if g.NumNodes() != 1 {
		t.Fatalf("NumNodes = %d, want 1", g.NumNodes())
	}
}

func TestAddLinkReverse(t *testing.T) {
	g := buildDiamond(t)
	for _, e := range g.Edges() {
		if e.Reverse < 0 {
			t.Fatalf("edge %d has no reverse", e.ID)
		}
		r := g.Edge(e.Reverse)
		if r.From != e.To || r.To != e.From {
			t.Fatalf("edge %d reverse mismatch", e.ID)
		}
		if r.Reverse != e.ID {
			t.Fatalf("reverse of reverse of %d is %d", e.ID, r.Reverse)
		}
	}
}

func TestOutInDegrees(t *testing.T) {
	g := buildDiamond(t)
	a, _ := g.NodeByName("a")
	d, _ := g.NodeByName("d")
	if len(g.Out(a)) != 2 || len(g.In(a)) != 2 {
		t.Fatalf("node a degrees out=%d in=%d, want 2/2", len(g.Out(a)), len(g.In(a)))
	}
	if len(g.Out(d)) != 2 || len(g.In(d)) != 2 {
		t.Fatalf("node d degrees out=%d in=%d, want 2/2", len(g.Out(d)), len(g.In(d)))
	}
}

func TestValidate(t *testing.T) {
	g := buildDiamond(t)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestConnected(t *testing.T) {
	g := buildDiamond(t)
	if !g.Connected() {
		t.Fatal("diamond should be strongly connected")
	}
	h := New()
	h.AddNode("x")
	h.AddNode("y")
	if h.Connected() {
		t.Fatal("two isolated nodes should not be connected")
	}
	// One-way edge only: not strongly connected.
	x, _ := h.NodeByName("x")
	y, _ := h.NodeByName("y")
	h.AddEdge(x, y, 1, 1)
	if h.Connected() {
		t.Fatal("one-way pair should not be strongly connected")
	}
}

func TestSetWeightPanicsOnNonPositive(t *testing.T) {
	g := buildDiamond(t)
	defer func() {
		if recover() == nil {
			t.Fatal("SetWeight(0) should panic")
		}
	}()
	g.SetWeight(0, 0)
}

func TestAddEdgePanicsOnSelfLoop(t *testing.T) {
	g := New()
	a := g.AddNode("a")
	defer func() {
		if recover() == nil {
			t.Fatal("self loop should panic")
		}
	}()
	g.AddEdge(a, a, 1, 1)
}

func TestClone(t *testing.T) {
	g := buildDiamond(t)
	c := g.Clone()
	c.SetWeight(0, 99)
	if g.Edge(0).Weight == 99 {
		t.Fatal("Clone should not share edge storage")
	}
	if c.NumNodes() != g.NumNodes() || c.NumEdges() != g.NumEdges() {
		t.Fatal("Clone size mismatch")
	}
	if _, ok := c.NodeByName("a"); !ok {
		t.Fatal("Clone lost name index")
	}
}

func TestWeightsRoundTrip(t *testing.T) {
	g := buildDiamond(t)
	w := g.Weights()
	for i := range w {
		w[i] = float64(i + 1)
	}
	g.SetWeights(w)
	got := g.Weights()
	for i := range got {
		if got[i] != float64(i+1) {
			t.Fatalf("weight %d = %g, want %d", i, got[i], i+1)
		}
	}
}

func TestFindEdge(t *testing.T) {
	g := buildDiamond(t)
	a, _ := g.NodeByName("a")
	b, _ := g.NodeByName("b")
	d, _ := g.NodeByName("d")
	if _, ok := g.FindEdge(a, b); !ok {
		t.Fatal("edge a->b should exist")
	}
	if _, ok := g.FindEdge(a, d); ok {
		t.Fatal("edge a->d should not exist")
	}
}

func TestTextCodecRoundTrip(t *testing.T) {
	g := buildDiamond(t)
	var buf bytes.Buffer
	if err := g.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	g2, err := ReadText(&buf)
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: %v vs %v", g2, g)
	}
	for i, e := range g.Edges() {
		e2 := g2.Edge(EdgeID(i))
		if e2.From != e.From || e2.To != e.To || e2.Capacity != e.Capacity || e2.Weight != e.Weight {
			t.Fatalf("edge %d differs after round trip: %+v vs %+v", i, e2, e)
		}
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []string{
		"frob a b",
		"link a b 1 1",                 // unknown nodes
		"node a\nnode b\nlink a b x 1", // bad capacity
		"node a\nnode b\nlink a b 1",   // missing weight
		"node a\nnode b\nlink a b 0 1", // zero capacity
	}
	for _, src := range cases {
		if _, err := ReadText(strings.NewReader(src)); err == nil {
			t.Errorf("ReadText(%q) should fail", src)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	g := buildDiamond(t)
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	s := buf.String()
	if !strings.Contains(s, `"a" -- "b"`) {
		t.Fatalf("DOT output missing edge: %s", s)
	}
}

// randomConnectedGraph builds a random strongly connected graph for property
// tests: a ring plus random chords.
func randomConnectedGraph(rng *rand.Rand, n int) *Graph {
	g := New()
	g.AddNodes(n)
	for i := 0; i < n; i++ {
		g.AddLink(NodeID(i), NodeID((i+1)%n), 1+rng.Float64()*9, 1+rng.Float64()*4)
	}
	extra := rng.Intn(2 * n)
	for i := 0; i < extra; i++ {
		a := NodeID(rng.Intn(n))
		b := NodeID(rng.Intn(n))
		if a == b {
			continue
		}
		g.AddLink(a, b, 1+rng.Float64()*9, 1+rng.Float64()*4)
	}
	return g
}

func TestPropertyRandomGraphsValidAndConnected(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := 3 + int(sz%20)
		g := randomConnectedGraph(rand.New(rand.NewSource(seed)), n)
		return g.Validate() == nil && g.Connected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyTextCodecRoundTrip(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := 3 + int(sz%15)
		g := randomConnectedGraph(rand.New(rand.NewSource(seed)), n)
		var buf bytes.Buffer
		if err := g.WriteText(&buf); err != nil {
			return false
		}
		g2, err := ReadText(&buf)
		if err != nil {
			return false
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
			return false
		}
		for i := range g.Edges() {
			a, b := g.Edge(EdgeID(i)), g2.Edge(EdgeID(i))
			if a.From != b.From || a.To != b.To || a.Capacity != b.Capacity || a.Weight != b.Weight {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestWithoutLink(t *testing.T) {
	g := buildDiamond(t)
	links := g.Links()
	if len(links) != 4 {
		t.Fatalf("diamond has %d links, want 4", len(links))
	}
	h := g.WithoutLink(links[0])
	if h.NumEdges() != g.NumEdges()-2 {
		t.Fatalf("WithoutLink left %d edges, want %d", h.NumEdges(), g.NumEdges()-2)
	}
	if h.NumNodes() != g.NumNodes() {
		t.Fatal("WithoutLink must preserve nodes")
	}
	if err := h.Validate(); err != nil {
		t.Fatalf("Validate after removal: %v", err)
	}
	// Removing one diamond link keeps the graph connected.
	if !h.Connected() {
		t.Fatal("diamond minus one link should stay connected")
	}
}

func TestWithoutLinkDirected(t *testing.T) {
	g := New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	e := g.AddEdge(a, b, 1, 1) // one-way
	g.AddEdge(b, a, 2, 3)      // independent one-way
	h := g.WithoutLink(e)
	if h.NumEdges() != 1 {
		t.Fatalf("%d edges left, want 1", h.NumEdges())
	}
	if h.Edge(0).Capacity != 2 {
		t.Fatal("wrong edge removed")
	}
}

// TestAddNodesAppends verifies AddNodes adds exactly n fresh vertices on
// any graph — including non-empty graphs whose existing names collide with
// the generated "v<k>" scheme, where the old implementation silently
// deduplicated against them and added fewer nodes.
func TestAddNodesAppends(t *testing.T) {
	// Empty graph: classic behavior.
	g := New()
	if first := g.AddNodes(3); first != 0 || g.NumNodes() != 3 {
		t.Fatalf("empty: first=%d nodes=%d, want 0 and 3", first, g.NumNodes())
	}
	if g.Name(0) != "v0" || g.Name(2) != "v2" {
		t.Fatalf("empty: names %q..%q", g.Name(0), g.Name(2))
	}

	// Non-empty graph without name collisions.
	g2 := New()
	g2.AddNode("a")
	g2.AddNode("b")
	if first := g2.AddNodes(2); first != 2 || g2.NumNodes() != 4 {
		t.Fatalf("non-empty: first=%d nodes=%d, want 2 and 4", first, g2.NumNodes())
	}

	// Colliding names: "v3" already exists where the generator would land.
	g3 := New()
	g3.AddNode("v3")
	g3.AddNode("x")
	first := g3.AddNodes(4)
	if first != 2 {
		t.Fatalf("collision: first=%d, want 2", first)
	}
	if g3.NumNodes() != 6 {
		t.Fatalf("collision: %d nodes, want 6 (exactly 4 added)", g3.NumNodes())
	}
	// Every ID from first on must be a genuinely new vertex.
	seen := map[string]bool{}
	for i := 0; i < g3.NumNodes(); i++ {
		name := g3.Name(NodeID(i))
		if seen[name] {
			t.Fatalf("duplicate node name %q", name)
		}
		seen[name] = true
	}
	// And IDs keep working for edges.
	g3.AddLink(first, first+3, 1, 1)
	if _, ok := g3.FindEdge(first, first+3); !ok {
		t.Fatal("edge between appended nodes not found")
	}
}
