package graph

import (
	"bytes"
	"strings"
	"testing"
)

// TestReadTextMalformed exercises every malformed-input class: each must
// surface as an error from ReadText, never as a panic from the graph
// constructors underneath.
func TestReadTextMalformed(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"bad directive", "frobnicate a b c"},
		{"node arity", "node a b"},
		{"link arity short", "node a\nnode b\nlink a b 1"},
		{"link arity long", "node a\nnode b\nlink a b 1 1 1"},
		{"dangling from", "node b\nlink a b 1 1"},
		{"dangling to", "node a\nlink a b 1 1"},
		{"dangling edge from", "node b\nedge a b 1 1"},
		{"dangling edge to", "node a\nedge a b 1 1"},
		{"self-loop link", "node a\nlink a a 1 1"},
		{"self-loop edge", "node a\nedge a a 1 1"},
		{"negative capacity", "node a\nnode b\nlink a b -2 1"},
		{"zero capacity", "node a\nnode b\nlink a b 0 1"},
		{"NaN capacity", "node a\nnode b\nlink a b NaN 1"},
		{"Inf capacity", "node a\nnode b\nlink a b +Inf 1"},
		{"unparsable capacity", "node a\nnode b\nlink a b ten 1"},
		{"negative weight", "node a\nnode b\nlink a b 1 -3"},
		{"zero weight", "node a\nnode b\nedge a b 1 0"},
		{"NaN weight", "node a\nnode b\nedge a b 1 NaN"},
		{"Inf weight", "node a\nnode b\nedge a b 1 Inf"},
		{"unparsable weight", "node a\nnode b\nedge a b 1 heavy"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("ReadText(%q) panicked: %v", tc.src, r)
				}
			}()
			if _, err := ReadText(strings.NewReader(tc.src)); err == nil {
				t.Errorf("ReadText(%q) = nil error, want failure", tc.src)
			}
		})
	}
}

// TestReadTextCommentsAndBlanks verifies that comments and blank lines are
// skipped and line numbers in errors still count them.
func TestReadTextCommentsAndBlanks(t *testing.T) {
	src := "# header\n\nnode a\n  # indented comment\nnode b\n\nlink a b 2.5 4\n"
	g, err := ReadText(strings.NewReader(src))
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 2 {
		t.Fatalf("got %v, want 2 nodes / 2 edges", g)
	}
	bad := "# one\n# two\nnode a\nnode b\nlink a b bogus 1\n"
	_, err = ReadText(strings.NewReader(bad))
	if err == nil || !strings.Contains(err.Error(), "line 5") {
		t.Fatalf("error %v should name line 5", err)
	}
}

// TestTextRoundTripPreservesStructure writes and re-reads a graph mixing
// bidirectional links, one-way edges, and an asymmetric pair (differing
// capacity per direction), checking names and reverse pairing survive.
func TestTextRoundTripPreservesStructure(t *testing.T) {
	g := New()
	a := g.AddNode("alpha")
	b := g.AddNode("beta-7")
	c := g.AddNode("gamma.3")
	g.AddLink(a, b, 10, 1)
	g.AddEdge(b, c, 2.5, 4) // one-way
	// Asymmetric "link": two directed edges with different capacities must
	// serialize as two edge directives, not collapse into one link.
	g.AddEdge(c, a, 5, 2)
	g.AddEdge(a, c, 1, 2)

	var buf bytes.Buffer
	if err := g.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	text := buf.String()
	g2, err := ReadText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	if g2.NumNodes() != 3 || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: %v vs %v", g2, g)
	}
	for _, name := range []string{"alpha", "beta-7", "gamma.3"} {
		if _, ok := g2.NodeByName(name); !ok {
			t.Errorf("node %q lost in round trip", name)
		}
	}
	// The bidirectional link must come back reverse-paired.
	a2, _ := g2.NodeByName("alpha")
	b2, _ := g2.NodeByName("beta-7")
	id, ok := g2.FindEdge(a2, b2)
	if !ok {
		t.Fatal("alpha->beta-7 missing")
	}
	if rev := g2.Edge(id).Reverse; rev < 0 || g2.Edge(rev).From != b2 {
		t.Errorf("alpha--beta-7 not reverse-paired after round trip")
	}
	// A second write must be byte-identical (stable serialization).
	var buf2 bytes.Buffer
	if err := g2.WriteText(&buf2); err != nil {
		t.Fatalf("WriteText #2: %v", err)
	}
	if buf2.String() != text {
		t.Errorf("serialization not stable:\n%s\nvs\n%s", buf2.String(), text)
	}
	if err := g2.Validate(); err != nil {
		t.Errorf("round-tripped graph invalid: %v", err)
	}
}
