package graph

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// The text codec serializes a graph in a minimal line-oriented format:
//
//	node <name>
//	link <from> <to> <capacity> <weight>     # bidirectional
//	edge <from> <to> <capacity> <weight>     # directed
//
// Blank lines and lines starting with '#' are ignored. The format exists so
// that topologies can be stored as testdata and exported by cmd/coyote-topo.

// WriteText serializes g to w in the text format.
func (g *Graph) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, name := range g.names {
		fmt.Fprintf(bw, "node %s\n", name)
	}
	done := make(map[EdgeID]bool)
	for _, e := range g.edges {
		if done[e.ID] {
			continue
		}
		if e.Reverse >= 0 {
			r := g.edges[e.Reverse]
			if r.Capacity == e.Capacity && r.Weight == e.Weight {
				fmt.Fprintf(bw, "link %s %s %g %g\n", g.names[e.From], g.names[e.To], e.Capacity, e.Weight)
				done[e.ID], done[e.Reverse] = true, true
				continue
			}
		}
		fmt.Fprintf(bw, "edge %s %s %g %g\n", g.names[e.From], g.names[e.To], e.Capacity, e.Weight)
		done[e.ID] = true
	}
	return bw.Flush()
}

// ReadText parses a graph in the text format.
func ReadText(r io.Reader) (*Graph, error) {
	g := New()
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "node":
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: node wants 1 arg", lineno)
			}
			g.AddNode(fields[1])
		case "link", "edge":
			if len(fields) != 5 {
				return nil, fmt.Errorf("graph: line %d: %s wants 4 args", lineno, fields[0])
			}
			from, ok := g.NodeByName(fields[1])
			if !ok {
				return nil, fmt.Errorf("graph: line %d: unknown node %q", lineno, fields[1])
			}
			to, ok := g.NodeByName(fields[2])
			if !ok {
				return nil, fmt.Errorf("graph: line %d: unknown node %q", lineno, fields[2])
			}
			if from == to {
				return nil, fmt.Errorf("graph: line %d: self-loop at %q", lineno, fields[1])
			}
			capacity, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad capacity: %v", lineno, err)
			}
			weight, err := strconv.ParseFloat(fields[4], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight: %v", lineno, err)
			}
			// Reject non-positive, NaN and infinite values here so malformed
			// input surfaces as an error instead of an AddEdge panic.
			if !(capacity > 0) || math.IsInf(capacity, 1) {
				return nil, fmt.Errorf("graph: line %d: capacity must be positive and finite, got %q", lineno, fields[3])
			}
			if !(weight > 0) || math.IsInf(weight, 1) {
				return nil, fmt.Errorf("graph: line %d: weight must be positive and finite, got %q", lineno, fields[4])
			}
			if fields[0] == "link" {
				g.AddLink(from, to, capacity, weight)
			} else {
				g.AddEdge(from, to, capacity, weight)
			}
		default:
			return nil, fmt.Errorf("graph: line %d: unknown directive %q", lineno, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return g, nil
}

// WriteDOT emits a Graphviz representation, collapsing bidirectional links
// into undirected edges labelled "capacity/weight".
func (g *Graph) WriteDOT(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "graph G {")
	type key struct{ a, b NodeID }
	seen := make(map[key]bool)
	edges := append([]Edge(nil), g.edges...)
	sort.Slice(edges, func(i, j int) bool { return edges[i].ID < edges[j].ID })
	for _, e := range edges {
		a, b := e.From, e.To
		if a > b {
			a, b = b, a
		}
		k := key{a, b}
		if seen[k] && e.Reverse >= 0 {
			continue
		}
		seen[k] = true
		fmt.Fprintf(bw, "  %q -- %q [label=\"%g/%g\"];\n", g.names[e.From], g.names[e.To], e.Capacity, e.Weight)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
