// Package graph provides the directed, capacitated network model used by
// every COYOTE subsystem. A network is a multigraph of directed edges, each
// carrying a capacity (for utilization accounting) and a weight (the OSPF
// link cost used by shortest-path computations).
//
// The model follows §III of the paper: the network is a directed graph
// G = (V, E) with c_e the capacity of edge e. Physical links are typically
// bidirectional and are modeled as two directed edges.
package graph

import (
	"fmt"
	"math"
	"sort"
)

// NodeID identifies a vertex. IDs are dense, starting at 0, and double as
// the lexicographic tie-break order required by the paper's DAG-augmentation
// step ("breaking ties lexicographically (suppose that the nodes are
// numbered)").
type NodeID int32

// EdgeID identifies a directed edge. IDs are dense, starting at 0.
type EdgeID int32

// Edge is a directed link with a capacity and an OSPF weight.
type Edge struct {
	ID       EdgeID
	From, To NodeID
	Capacity float64 // in abstract bandwidth units; must be > 0
	Weight   float64 // OSPF cost; must be > 0 for SPF
	Reverse  EdgeID  // the opposite directed edge if the link is bidirectional, else -1
}

// Graph is a directed multigraph. The zero value is an empty graph ready to
// use. Graph is not safe for concurrent mutation; concurrent reads are safe.
type Graph struct {
	names   []string
	nameIdx map[string]NodeID
	edges   []Edge
	out     [][]EdgeID
	in      [][]EdgeID
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{nameIdx: make(map[string]NodeID)}
}

// AddNode adds a vertex with the given name and returns its ID. Adding a
// name that already exists returns the existing ID.
func (g *Graph) AddNode(name string) NodeID {
	if g.nameIdx == nil {
		g.nameIdx = make(map[string]NodeID)
	}
	if id, ok := g.nameIdx[name]; ok {
		return id
	}
	id := NodeID(len(g.names))
	g.names = append(g.names, name)
	g.nameIdx[name] = id
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return id
}

// AddNodes appends n anonymous vertices and returns the ID of the first
// one. Names follow the "v<k>" scheme, skipping any that already exist, so
// the call adds exactly n fresh vertices on any graph. (It previously
// documented itself as empty-graph-only: on a graph that already contained
// a colliding "v<k>" name, AddNode's dedup-by-name silently returned the
// existing vertex and fewer than n nodes were added.)
func (g *Graph) AddNodes(n int) NodeID {
	first := NodeID(len(g.names))
	k := len(g.names)
	for i := 0; i < n; i++ {
		for {
			name := fmt.Sprintf("v%d", k)
			k++
			if _, exists := g.nameIdx[name]; !exists {
				g.AddNode(name)
				break
			}
		}
	}
	return first
}

// AddEdge adds a directed edge and returns its ID. Capacity and weight must
// be positive; AddEdge panics otherwise, since a non-positive capacity or
// weight indicates a construction bug rather than a runtime condition.
func (g *Graph) AddEdge(from, to NodeID, capacity, weight float64) EdgeID {
	if from == to {
		panic(fmt.Sprintf("graph: self-loop at node %d", from))
	}
	if capacity <= 0 || math.IsNaN(capacity) {
		panic(fmt.Sprintf("graph: non-positive capacity %v on edge %d->%d", capacity, from, to))
	}
	if weight <= 0 || math.IsNaN(weight) {
		panic(fmt.Sprintf("graph: non-positive weight %v on edge %d->%d", weight, from, to))
	}
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, Edge{ID: id, From: from, To: to, Capacity: capacity, Weight: weight, Reverse: -1})
	g.out[from] = append(g.out[from], id)
	g.in[to] = append(g.in[to], id)
	return id
}

// AddLink adds a bidirectional link as two directed edges with identical
// capacity and weight, linking them via the Reverse field. It returns the
// forward edge ID (the reverse is the returned ID's Reverse).
func (g *Graph) AddLink(a, b NodeID, capacity, weight float64) EdgeID {
	e1 := g.AddEdge(a, b, capacity, weight)
	e2 := g.AddEdge(b, a, capacity, weight)
	g.edges[e1].Reverse = e2
	g.edges[e2].Reverse = e1
	return e1
}

// NumNodes reports the number of vertices.
func (g *Graph) NumNodes() int { return len(g.names) }

// NumEdges reports the number of directed edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id EdgeID) Edge { return g.edges[id] }

// Edges returns all edges. The returned slice must not be modified.
func (g *Graph) Edges() []Edge { return g.edges }

// Out returns the IDs of edges leaving u. The returned slice must not be
// modified.
func (g *Graph) Out(u NodeID) []EdgeID { return g.out[u] }

// In returns the IDs of edges entering v. The returned slice must not be
// modified.
func (g *Graph) In(v NodeID) []EdgeID { return g.in[v] }

// Name returns the name of a node.
func (g *Graph) Name(id NodeID) string { return g.names[id] }

// NodeByName returns the ID of the named node.
func (g *Graph) NodeByName(name string) (NodeID, bool) {
	id, ok := g.nameIdx[name]
	return id, ok
}

// SetWeight updates the OSPF weight of a directed edge.
func (g *Graph) SetWeight(id EdgeID, w float64) {
	if w <= 0 || math.IsNaN(w) {
		panic(fmt.Sprintf("graph: non-positive weight %v", w))
	}
	g.edges[id].Weight = w
}

// SetLinkWeight updates the weight of a directed edge and its reverse, if any.
func (g *Graph) SetLinkWeight(id EdgeID, w float64) {
	g.SetWeight(id, w)
	if r := g.edges[id].Reverse; r >= 0 {
		g.SetWeight(r, w)
	}
}

// Weights returns a copy of all edge weights indexed by EdgeID.
func (g *Graph) Weights() []float64 {
	w := make([]float64, len(g.edges))
	for i := range g.edges {
		w[i] = g.edges[i].Weight
	}
	return w
}

// SetWeights replaces all edge weights from a slice indexed by EdgeID.
func (g *Graph) SetWeights(w []float64) {
	if len(w) != len(g.edges) {
		panic("graph: SetWeights length mismatch")
	}
	for i := range g.edges {
		g.SetWeight(EdgeID(i), w[i])
	}
}

// Capacities returns a copy of all edge capacities indexed by EdgeID.
func (g *Graph) Capacities() []float64 {
	c := make([]float64, len(g.edges))
	for i := range g.edges {
		c[i] = g.edges[i].Capacity
	}
	return c
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		names:   append([]string(nil), g.names...),
		nameIdx: make(map[string]NodeID, len(g.nameIdx)),
		edges:   append([]Edge(nil), g.edges...),
		out:     make([][]EdgeID, len(g.out)),
		in:      make([][]EdgeID, len(g.in)),
	}
	for k, v := range g.nameIdx {
		c.nameIdx[k] = v
	}
	for i := range g.out {
		c.out[i] = append([]EdgeID(nil), g.out[i]...)
	}
	for i := range g.in {
		c.in[i] = append([]EdgeID(nil), g.in[i]...)
	}
	return c
}

// FindEdge returns the ID of the first edge from u to v, if one exists.
func (g *Graph) FindEdge(u, v NodeID) (EdgeID, bool) {
	for _, id := range g.out[u] {
		if g.edges[id].To == v {
			return id, true
		}
	}
	return -1, false
}

// Connected reports whether every node can reach every other node following
// directed edges (strong connectivity via two BFS passes from node 0).
func (g *Graph) Connected() bool {
	n := g.NumNodes()
	if n <= 1 {
		return true
	}
	reach := func(forward bool) int {
		seen := make([]bool, n)
		seen[0] = true
		stack := []NodeID{0}
		count := 1
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			var next []EdgeID
			if forward {
				next = g.out[u]
			} else {
				next = g.in[u]
			}
			for _, id := range next {
				var v NodeID
				if forward {
					v = g.edges[id].To
				} else {
					v = g.edges[id].From
				}
				if !seen[v] {
					seen[v] = true
					count++
					stack = append(stack, v)
				}
			}
		}
		return count
	}
	return reach(true) == n && reach(false) == n
}

// Validate checks structural invariants and returns an error describing the
// first violation found, if any.
func (g *Graph) Validate() error {
	for i, e := range g.edges {
		if EdgeID(i) != e.ID {
			return fmt.Errorf("graph: edge %d has mismatched ID %d", i, e.ID)
		}
		if int(e.From) >= len(g.names) || int(e.To) >= len(g.names) {
			return fmt.Errorf("graph: edge %d references unknown node", i)
		}
		if e.Reverse >= 0 {
			r := g.edges[e.Reverse]
			if r.From != e.To || r.To != e.From {
				return fmt.Errorf("graph: edge %d reverse mismatch", i)
			}
		}
	}
	return nil
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("graph(%d nodes, %d directed edges)", g.NumNodes(), g.NumEdges())
}

// SortedNodeNames returns node names in lexicographic order (for stable output).
func (g *Graph) SortedNodeNames() []string {
	out := append([]string(nil), g.names...)
	sort.Strings(out)
	return out
}

// WithoutLink returns a copy of g with the given directed edge and its
// reverse (if any) removed. Edge IDs are re-assigned densely in the new
// graph; node IDs are preserved. Failure analysis uses this to model
// single-link outages.
func (g *Graph) WithoutLink(id EdgeID) *Graph {
	return g.WithoutLinks([]EdgeID{id})
}

// WithoutLinks returns a copy of g with every listed directed edge and its
// reverse (if any) removed — the multi-link generalization of WithoutLink
// used for shared-risk-link-group and k-link failure scenarios. Edge IDs
// are re-assigned densely; node IDs are preserved.
func (g *Graph) WithoutLinks(ids []EdgeID) *Graph {
	skip := make(map[EdgeID]bool, 2*len(ids))
	for _, id := range ids {
		skip[id] = true
		if r := g.edges[id].Reverse; r >= 0 {
			skip[r] = true
		}
	}
	c := New()
	for _, name := range g.names {
		c.AddNode(name)
	}
	// Preserve link pairing by emitting forward edges with AddLink when
	// their reverse exists and follows them; otherwise AddEdge.
	done := make(map[EdgeID]bool)
	for _, e := range g.edges {
		if skip[e.ID] || done[e.ID] {
			continue
		}
		if e.Reverse >= 0 && !skip[e.Reverse] {
			r := g.edges[e.Reverse]
			if r.Capacity == e.Capacity && r.Weight == e.Weight {
				c.AddLink(e.From, e.To, e.Capacity, e.Weight)
				done[e.ID], done[e.Reverse] = true, true
				continue
			}
		}
		c.AddEdge(e.From, e.To, e.Capacity, e.Weight)
		done[e.ID] = true
	}
	return c
}

// Links returns one representative EdgeID per physical link: the
// lower-numbered direction of each bidirectional pair plus every one-way
// edge.
func (g *Graph) Links() []EdgeID {
	var out []EdgeID
	for _, e := range g.edges {
		if e.Reverse < 0 || e.ID < e.Reverse {
			out = append(out, e.ID)
		}
	}
	return out
}
