// Package delta is the incremental recomputation engine of the online TE
// controller: a long-lived Session over one topology whose configuration
// evolves as the network does, without paying the full adversarial-loop
// cost on every change.
//
// Three mechanisms make recomputation cheap (DESIGN.md §6):
//
//   - Warm-started optimization: the gpopt log-ratio parameters and Adam
//     moments survive across recomputes (gpopt.State), so a demand-box
//     update refines the previous solution instead of restarting from the
//     near-ECMP initialization.
//   - Critical-matrix carry-over: the worst-case demand matrices the
//     adversary accumulated (oblivious.Report.Critical) seed the next
//     recompute's finite scenario set, so adversarial corners that still
//     bind are not re-discovered round by round. OPTDAG normalizations are
//     shared across demand updates via oblivious.Evaluator.WithBox — and
//     so is the exact solver's warm-start state: the evaluator cache
//     carries the last optimal simplex basis (lp.Basis), so the sparse
//     LP behind every fresh normalization after UpdateBounds or Recover
//     resumes from the previous epoch's vertex instead of re-running
//     phase 1, exactly as the gpopt log-ratio/Adam state carries through
//     Options.Warm.
//   - Failover swap-then-refine: single-link failures swap in the
//     precomputed configuration (failover.PrecomputeGroups), re-seed the
//     optimizer from its ratios (gpopt.NewFromRouting), and refine with a
//     short warm run.
//
// Every Session mutation synthesizes nothing by itself; Lies produces the
// fake-node LSAs for the current configuration and — via fibbing.Diff —
// the minimal LSA add/remove/update set against the previously emitted
// lie set, making reconfiguration churn a first-class measured metric.
//
// The Session preserves the repo's determinism contract: for a fixed Seed
// and a fixed sequence of mutations, results are bit-identical for any
// Workers value.
package delta

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"github.com/coyote-te/coyote/internal/dagx"
	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/failover"
	"github.com/coyote-te/coyote/internal/fibbing"
	"github.com/coyote-te/coyote/internal/gpopt"
	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/oblivious"
	"github.com/coyote-te/coyote/internal/obs"
	"github.com/coyote-te/coyote/internal/pdrouting"
	"github.com/coyote-te/coyote/internal/spf"
	"github.com/coyote-te/coyote/internal/wcmp"
)

// Session activity metrics (obs.Default, DESIGN.md §10). All updates happen
// under the session mutex on the mutation path — far from any inner loop —
// and nothing is ever read back, so the determinism contract holds.
var (
	mEvents = obs.Default.NewCounterVec("coyote_session_events_total",
		"Session state transitions recorded, by event kind.", "kind")
	mRecomputes = obs.Default.NewCounterVec("coyote_session_recomputes_total",
		"Adversarial-loop recomputes, by warm (reused optimizer state) vs cold.", "warm")
	mRecomputeSeconds = obs.Default.NewHistogram("coyote_session_recompute_seconds",
		"Wall-clock latency of one adversarial-loop recompute.",
		obs.ExpBuckets(0.001, 4, 10)) // 1ms .. ~260s
	mLSAChurn = obs.Default.NewCounter("coyote_session_lsa_churn_total",
		"LSAs added, removed, or updated across lie-diff emissions.")
	mDroppedEvents = obs.Default.NewCounter("coyote_session_dropped_events_total",
		"Events dropped because a subscriber's channel was full.")
	mSPFAffected = obs.Default.NewHistogram("coyote_spf_affected_nodes",
		"Nodes touched per dynamic-SPF repair (one observation per destination tree per topology event).",
		obs.ExpBuckets(1, 2, 12)) // 1 .. 2048 nodes
)

// sessionLog records every state transition as a structured event —
// the narrative the dashboard's event tail renders alongside the metrics.
var sessionLog = obs.Scope("session")

// maxCarriedCritical bounds the critical-matrix set carried across
// recomputes; the oldest matrices are dropped first (the adversary will
// re-discover them if they still bind). The bound also caps the per-step
// cost of the warm optimizer, whose gradient passes are linear in the
// scenario count.
const maxCarriedCritical = 32

// Config tunes a Session. The zero value uses the cold defaults of the
// batch pipeline and derives reduced warm settings from them.
type Config struct {
	// OptIters / AdvIters / Samples / Eps / Seed mirror the batch
	// pipeline's knobs (coyote.Options) and govern the initial cold
	// computation and any cold restarts.
	OptIters int     // optimizer gradient steps, cold (default 400)
	AdvIters int     // adversarial rounds, cold (default 6)
	Samples  int     // adversary corner samples (default 8)
	Eps      float64 // FPTAS accuracy (default 0.1)
	Seed     int64
	// WarmOptIters / WarmAdvIters govern warm recomputes (demand updates,
	// post-failover refinement). Defaults: OptIters/2 and max(2,
	// AdvIters/3).
	WarmOptIters int
	WarmAdvIters int
	// Workers bounds the evaluation engine's worker pool (≤ 0 =
	// GOMAXPROCS); never changes results.
	Workers int
	// PrecomputeFailover, when true, precomputes a configuration for every
	// single-link failure at session start (§VI-A: "routing configurations
	// for failure scenarios can be precomputed"), so Fail swaps it in and
	// merely refines.
	PrecomputeFailover bool
	// coldSPF disables the session's incremental shortest-path maintenance
	// and rebuilds every epoch's DAGs with cold per-destination Dijkstras
	// instead. Results are bit-identical either way (the parity tests pin
	// this); the toggle exists for those tests and as a kill switch.
	coldSPF bool
	// Tracer, when non-nil, records one span tree per session transition
	// (session.init/update/fail/recover/lies) with the nested adversarial
	// loop, gpopt, and LP spans beneath it. Purely observational — results
	// are bit-identical with or without it.
	Tracer *obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.OptIters <= 0 {
		c.OptIters = 400
	}
	if c.AdvIters <= 0 {
		c.AdvIters = 6
	}
	if c.WarmOptIters <= 0 {
		c.WarmOptIters = c.OptIters / 2
	}
	if c.WarmAdvIters <= 0 {
		c.WarmAdvIters = c.AdvIters / 3
		if c.WarmAdvIters < 2 {
			c.WarmAdvIters = 2
		}
	}
	return c
}

// EventKind labels a Session state transition.
type EventKind string

const (
	EventInit    EventKind = "init"    // initial cold computation
	EventUpdate  EventKind = "update"  // demand-box update
	EventFail    EventKind = "fail"    // link failure
	EventRecover EventKind = "recover" // link recovery
	EventLies    EventKind = "lies"    // lie synthesis + diff emission
)

// Event records one Session transition — the controller's stats stream.
type Event struct {
	Seq    int       `json:"seq"`
	Kind   EventKind `json:"kind"`
	Detail string    `json:"detail,omitempty"`
	// Warm reports whether the recompute reused previous optimizer state
	// (as opposed to a cold restart).
	Warm bool `json:"warm"`
	// Perf / ECMPPerf are the post-transition worst-case normalized
	// utilizations (unset for lies events).
	Perf     float64 `json:"perf,omitempty"`
	ECMPPerf float64 `json:"ecmp_perf,omitempty"`
	// OuterIters and Scenarios describe the adversarial loop's effort.
	OuterIters int `json:"outer_iters,omitempty"`
	Scenarios  int `json:"scenarios,omitempty"`
	// Churn counts LSAs touched (lies events): adds + removes + updates.
	Churn int `json:"churn"`
	// FakeNodes is the total lie count after a lies event.
	FakeNodes int `json:"fake_nodes,omitempty"`
	// Elapsed is the wall-clock cost of the transition (not part of the
	// determinism contract).
	Elapsed time.Duration `json:"elapsed_ns"`
}

// LieResult is the outcome of Session.Lies: the verified synthesis for the
// current configuration plus the minimal diff against the previously
// emitted lie set.
type LieResult struct {
	// Quantized is the routing the lies actually realize.
	Quantized *pdrouting.Routing
	// VirtualLinks counts next-hop replicas beyond the first.
	VirtualLinks int
	// FakeNodes counts fake-node LSAs in the full synthesis.
	FakeNodes int
	// LiedDestinations counts destinations that needed lies.
	LiedDestinations int
	// Synthesis is the verified full LSDB augmentation.
	Synthesis *fibbing.Synthesis
	// Diff is the minimal LSA set transforming the previously emitted
	// synthesis into this one (a full injection on first call), verified
	// against the current topology.
	Diff *fibbing.LSADiff
}

// Session is a live controller state over one topology. All methods are
// safe for concurrent use; mutations are serialized.
type Session struct {
	mu  sync.Mutex
	cfg Config

	base     *graph.Graph // the intact topology
	baseDags []*dagx.DAG
	box      *demand.Box
	failed   map[graph.EdgeID]bool // failed links, by base representative edge ID

	// incs holds one dynamic SPF structure per destination over the base
	// topology, kept in lockstep with the failed-link set. Fail/Recover
	// repair only the affected vertices (near-O(affected) instead of n
	// Dijkstras) and every epoch's augmented DAGs are rebuilt from the
	// repaired distance fields — bit-identical to the cold construction,
	// since spf.Incremental maintains the exact Dijkstra fixpoint. nil when
	// Config.coldSPF is set.
	incs []*spf.Incremental

	// Current epoch (base or survivor topology).
	cur       *graph.Graph
	dags      []*dagx.DAG
	ev        *oblivious.Evaluator
	opt       *gpopt.Optimizer
	critical  []*demand.Matrix
	routing   *pdrouting.Routing
	perf      float64
	ecmpPerf  float64
	lastOuter int // outer iterations of the most recent reoptimize

	// normalState snapshots the optimizer parameters of the latest
	// base-topology recompute, so a recovery back to the intact network
	// warm-starts from them (gpopt's exported state handoff).
	normalState *gpopt.State
	// baseEv is the most recent base-epoch evaluator; recovering to the
	// intact topology derives the new evaluator from it (WithBox), so the
	// OPTDAG/max-flow caches paid for before the failure are kept.
	baseEv *oblivious.Evaluator

	// plan holds precomputed single-link failover configurations keyed by
	// the failed base link.
	plan map[graph.EdgeID]*failover.GroupScenario

	prevSyn *fibbing.Synthesis // last emitted lie set, diff baseline
	events  []Event
	subs    map[int]*subscriber
	nextSub int
	dropped uint64 // lifetime count of events dropped on full subscriber channels
}

// subscriber is one Subscribe registration: its delivery channel plus the
// count of events it missed because the channel was full when the
// controller tried to notify it.
type subscriber struct {
	ch      chan Event
	dropped uint64
}

// NewSession validates the topology and bounds, runs the initial cold
// computation, and (optionally) precomputes the single-link failover plan.
func NewSession(g *graph.Graph, box *demand.Box, cfg Config) (*Session, error) {
	cfg = cfg.withDefaults()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if !g.Connected() {
		return nil, fmt.Errorf("delta: topology is not strongly connected")
	}
	if box == nil {
		return nil, fmt.Errorf("delta: nil uncertainty bounds")
	}
	if box.Min.N != g.NumNodes() {
		return nil, fmt.Errorf("delta: bounds are %d×%d but topology has %d nodes",
			box.Min.N, box.Min.N, g.NumNodes())
	}
	s := &Session{
		cfg:    cfg,
		base:   g,
		box:    box,
		failed: make(map[graph.EdgeID]bool),
		subs:   make(map[int]*subscriber),
	}
	ctx, span := obs.StartSpan(s.traceCtx(), "session.init")
	defer span.End()
	start := time.Now()
	if cfg.coldSPF {
		s.baseDags = dagx.BuildAll(g, dagx.Augmented)
	} else {
		// One cold Dijkstra per destination seeds the dynamic SPF
		// structures, and the base DAGs are derived from the same distance
		// fields — the session never pays for a destination's shortest
		// paths twice.
		n := g.NumNodes()
		s.incs = make([]*spf.Incremental, n)
		s.baseDags = make([]*dagx.DAG, n)
		for t := 0; t < n; t++ {
			s.incs[t] = spf.NewIncremental(g, graph.NodeID(t))
			s.baseDags[t] = dagx.AugmentedFromTree(g, s.incs[t].TreeCopy())
		}
	}
	s.cur = g
	s.dags = s.baseDags
	s.ev = oblivious.NewEvaluator(g, s.dags, box, s.evalConfig())
	s.baseEv = s.ev
	s.reoptimize(ctx, false, nil)
	s.record(Event{
		Kind:       EventInit,
		Perf:       s.perf,
		ECMPPerf:   s.ecmpPerf,
		OuterIters: s.lastOuter,
		Scenarios:  len(s.critical),
		Elapsed:    time.Since(start),
	})

	if cfg.PrecomputeFailover {
		_, planSpan := obs.StartSpan(ctx, "session.failover_plan")
		links := g.Links()
		groups := make([][]graph.EdgeID, len(links))
		for i, id := range links {
			groups[i] = []graph.EdgeID{id}
		}
		scens, err := failover.PrecomputeGroups(g, box, groups, failover.Config{
			OptIters: cfg.WarmOptIters,
			AdvIters: cfg.WarmAdvIters,
			Samples:  cfg.Samples,
			Eps:      cfg.Eps,
			Seed:     cfg.Seed,
			Workers:  cfg.Workers,
		})
		if err != nil {
			planSpan.End()
			return nil, err
		}
		s.plan = make(map[graph.EdgeID]*failover.GroupScenario, len(links))
		for i := range scens {
			s.plan[links[i]] = &scens[i]
		}
		planSpan.Attr("links", len(links)).End()
	}
	return s, nil
}

// traceCtx returns a background context carrying the session's tracer, or
// a plain background context when tracing is off.
func (s *Session) traceCtx() context.Context {
	if s.cfg.Tracer == nil {
		return context.Background()
	}
	return obs.WithTracer(context.Background(), s.cfg.Tracer)
}

func (s *Session) evalConfig() oblivious.EvalConfig {
	return oblivious.EvalConfig{
		Eps:     s.cfg.Eps,
		Samples: s.cfg.Samples,
		Seed:    s.cfg.Seed,
		Workers: s.cfg.Workers,
	}
}

// reoptimize runs the adversarial loop on the current epoch. warm selects
// the reduced warm effort; seed, when non-nil, replaces the optimizer (the
// failover swap path). It updates routing/perf/critical/opt and, on the
// base topology, snapshots normalState.
func (s *Session) reoptimize(ctx context.Context, warm bool, seed *gpopt.Optimizer) {
	recomputeStart := time.Now()
	iters, adv := s.cfg.OptIters, s.cfg.AdvIters
	if warm {
		iters, adv = s.cfg.WarmOptIters, s.cfg.WarmAdvIters
	}
	opts := oblivious.Options{
		Optimizer: gpopt.Config{Iters: iters},
		AdvIters:  adv,
		Workers:   s.cfg.Workers,
		Carry:     projectOntoBox(s.critical, s.box),
		Ctx:       ctx,
	}
	if seed != nil {
		opts.Warm = seed
	} else if s.opt != nil {
		opts.Warm = s.opt
	}
	routing, rep := oblivious.OptimizeWithEvaluator(s.cur, s.dags, s.ev, opts)
	s.routing = routing
	s.perf = rep.Perf.Ratio
	s.ecmpPerf = rep.ECMPPerf
	s.opt = rep.Warm
	s.critical = rep.Critical
	if len(s.critical) > maxCarriedCritical {
		s.critical = append([]*demand.Matrix(nil), s.critical[len(s.critical)-maxCarriedCritical:]...)
	}
	s.lastOuter = rep.OuterIters
	if s.cur == s.base {
		s.normalState = s.opt.ExportState()
	}
	mRecomputes.With(strconv.FormatBool(warm)).Inc()
	mRecomputeSeconds.ObserveSince(recomputeStart)
}

// projectOntoBox clamps each carried critical matrix onto the current
// uncertainty box, entry by entry. Critical matrices discovered under an
// earlier box are typically its corners; after a demand drift they may lie
// outside the new box, and seeding the optimizer with infeasible demands
// would make it hedge against traffic that can no longer occur. The
// projection of an old adversarial corner is usually still adversarial —
// exactly the "corners that still bind" the carry-over exists for.
// Matrices already inside the box pass through unchanged (no copy).
func projectOntoBox(critical []*demand.Matrix, box *demand.Box) []*demand.Matrix {
	out := make([]*demand.Matrix, 0, len(critical))
	for _, D := range critical {
		if D.N != box.Min.N {
			continue
		}
		var proj *demand.Matrix
		for i, v := range D.D {
			lo, hi := box.Min.D[i], box.Max.D[i]
			if v >= lo && v <= hi {
				continue
			}
			if proj == nil {
				proj = D.Clone()
			}
			if v < lo {
				proj.D[i] = lo
			} else {
				proj.D[i] = hi
			}
		}
		if proj != nil {
			out = append(out, proj)
		} else {
			out = append(out, D)
		}
	}
	return out
}

// record appends an event (stamping its sequence number) and notifies
// subscribers without blocking. A subscriber whose channel is full misses
// the event rather than stalling the controller — but the loss is no longer
// silent: it is counted per subscriber, in the session lifetime total
// (Dropped, surfaced on GET /state), and in the
// coyote_session_dropped_events_total metric.
func (s *Session) record(e Event) Event {
	e.Seq = len(s.events)
	s.events = append(s.events, e)
	mEvents.With(string(e.Kind)).Inc()
	sessionLog.Info("session transition",
		"seq", e.Seq, "kind", string(e.Kind), "detail", e.Detail, "warm", e.Warm,
		"perf", e.Perf, "churn", e.Churn, "elapsed", e.Elapsed)
	if e.Kind == EventLies {
		mLSAChurn.Add(uint64(e.Churn))
	}
	for _, sub := range s.subs {
		select {
		case sub.ch <- e:
		default: // slow subscriber: drop rather than stall the controller
			sub.dropped++
			s.dropped++
			mDroppedEvents.Inc()
		}
	}
	return e
}

// UpdateBounds replaces the demand uncertainty set and recomputes the
// configuration with a warm start: the optimizer's log-ratio/Adam state
// and the accumulated critical matrices carry over, and the new evaluator
// shares the previous OPTDAG cache (the normalizations depend only on the
// topology and DAGs, not the box).
func (s *Session) UpdateBounds(box *demand.Box) (Event, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if box == nil {
		return Event{}, fmt.Errorf("delta: nil uncertainty bounds")
	}
	if box.Min.N != s.base.NumNodes() {
		return Event{}, fmt.Errorf("delta: bounds are %d×%d but topology has %d nodes",
			box.Min.N, box.Min.N, s.base.NumNodes())
	}
	ctx, span := obs.StartSpan(s.traceCtx(), "session.update")
	defer span.End()
	start := time.Now()
	s.box = box
	s.ev = s.ev.WithBox(box)
	if s.cur == s.base {
		s.baseEv = s.ev
	}
	s.reoptimize(ctx, true, nil)
	return s.record(Event{
		Kind:       EventUpdate,
		Warm:       true,
		Perf:       s.perf,
		ECMPPerf:   s.ecmpPerf,
		OuterIters: s.lastOuter,
		Scenarios:  len(s.critical),
		Elapsed:    time.Since(start),
	}), nil
}

// representative normalizes a directed edge ID of the base topology to its
// physical-link representative (the lower-numbered direction).
func (s *Session) representative(id graph.EdgeID) (graph.EdgeID, error) {
	if int(id) < 0 || int(id) >= s.base.NumEdges() {
		return 0, fmt.Errorf("delta: unknown link %d", id)
	}
	e := s.base.Edge(id)
	if e.Reverse >= 0 && e.Reverse < id {
		return e.Reverse, nil
	}
	return id, nil
}

// Fail marks a base-topology link as failed and recomputes on the
// surviving topology. With a precomputed failover plan the planned
// configuration is swapped in and refined warm; otherwise the survivor is
// re-optimized cold (with carried critical matrices). Failing a link whose
// removal partitions the network is rejected and leaves the session
// unchanged.
func (s *Session) Fail(link graph.EdgeID) (Event, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rep, err := s.representative(link)
	if err != nil {
		return Event{}, err
	}
	if s.failed[rep] {
		return Event{}, fmt.Errorf("delta: link %d already failed", rep)
	}
	s.failed[rep] = true
	ev, err := s.rebuildEpoch(EventFail, rep)
	if err != nil {
		delete(s.failed, rep)
		return Event{}, err
	}
	return ev, nil
}

// Recover clears a failed link and recomputes. Recovering back to the
// intact topology warm-starts from the last base-epoch optimizer state.
func (s *Session) Recover(link graph.EdgeID) (Event, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rep, err := s.representative(link)
	if err != nil {
		return Event{}, err
	}
	if !s.failed[rep] {
		return Event{}, fmt.Errorf("delta: link %d is not failed", rep)
	}
	delete(s.failed, rep)
	ev, err := s.rebuildEpoch(EventRecover, rep)
	if err != nil {
		s.failed[rep] = true
		return Event{}, err
	}
	return ev, nil
}

// failedList returns the failed links in deterministic (ascending) order.
func (s *Session) failedList() []graph.EdgeID {
	out := make([]graph.EdgeID, 0, len(s.failed))
	for id := range s.failed {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// rebuildEpoch recomputes after the failed-link set changed. The link
// argument is the edge that changed state (for the event detail).
func (s *Session) rebuildEpoch(kind EventKind, link graph.EdgeID) (Event, error) {
	ctx, span := obs.StartSpan(s.traceCtx(), "session."+string(kind))
	defer span.End()
	start := time.Now()
	e := s.base.Edge(link)
	detail := fmt.Sprintf("%s–%s", s.base.Name(e.From), s.base.Name(e.To))
	span.Attr("link", detail)

	if len(s.failed) == 0 {
		// Back to the intact topology: reuse the base DAGs and warm-start
		// from the snapshot of the last base-epoch parameters. The dynamic
		// SPF structures still repair (cheaply) so they track the topology.
		if s.incs != nil {
			for _, inc := range s.incs {
				mSPFAffected.Observe(float64(inc.RecoverLink(link)))
			}
		}
		s.cur = s.base
		s.dags = s.baseDags
		// Derive the evaluator from the last base-epoch one: the OPTDAG
		// and max-flow caches depend only on (graph, DAGs), so everything
		// paid for before the failure is still valid.
		s.ev = s.baseEv.WithBox(s.box)
		s.baseEv = s.ev
		var seed *gpopt.Optimizer
		if s.normalState != nil {
			seed = gpopt.New(s.base, s.dags, gpopt.Config{Iters: s.cfg.WarmOptIters})
			if err := seed.ImportState(s.normalState); err != nil {
				seed = nil
			}
		}
		s.opt = nil // epoch changed: the failure-epoch optimizer cannot carry
		s.reoptimize(ctx, seed != nil, seed)
		return s.record(Event{
			Kind: kind, Detail: detail, Warm: seed != nil,
			Perf: s.perf, ECMPPerf: s.ecmpPerf,
			OuterIters: s.lastOuter, Scenarios: len(s.critical),
			Elapsed: time.Since(start),
		}), nil
	}

	survivor := s.base.WithoutLinks(s.failedList())
	if !survivor.Connected() {
		// Session state (including the dynamic SPF structures, untouched so
		// far) is unchanged; the caller rolls back the failed-set entry.
		return Event{}, fmt.Errorf("delta: failing %s would partition the network", detail)
	}
	// Keep the dynamic SPF fields in lockstep with the failed set no
	// matter where this epoch's DAGs come from — each event is an
	// O(affected) repair, and later multi-failure epochs depend on the
	// fields being current.
	if s.incs != nil {
		for _, inc := range s.incs {
			var touched int
			if kind == EventFail {
				touched = inc.FailLink(link)
			} else {
				touched = inc.RecoverLink(link)
			}
			mSPFAffected.Observe(float64(touched))
		}
	}

	// Failover swap: a precomputed single-link scenario provides the
	// post-failure configuration to refine from, together with the DAGs it
	// was optimized over and the evaluator whose OPTDAG/max-flow caches
	// were filled while precomputing it. Reusing all three makes the
	// reaction warm end to end — no Dijkstra, no DAG rebuild, and no
	// exact-LP re-normalization on the critical path. The scenario's
	// survivor graph is the deterministic WithoutLinks reconstruction, so
	// edge IDs align with this epoch's.
	if kind == EventFail && len(s.failed) == 1 {
		if sc, ok := s.plan[link]; ok && !sc.Disconnected && sc.Routing != nil && sc.Ev != nil {
			seed := gpopt.NewFromRouting(sc.Survivor, sc.DAGs, gpopt.Config{Iters: s.cfg.WarmOptIters}, sc.Routing)
			s.cur = sc.Survivor
			s.dags = sc.DAGs
			s.ev = sc.Ev.WithBox(s.box)
			s.opt = nil // fresh epoch: previous optimizer indexes the old edge IDs
			s.reoptimize(ctx, true, seed)
			return s.record(Event{
				Kind: kind, Detail: detail, Warm: true,
				Perf: s.perf, ECMPPerf: s.ecmpPerf,
				OuterIters: s.lastOuter, Scenarios: len(s.critical),
				Elapsed: time.Since(start),
			}), nil
		}
	}

	var dags []*dagx.DAG
	if s.incs != nil {
		// Rebuild the survivor DAGs from the repaired distance fields — no
		// cold Dijkstra anywhere, and bit-identical to one (parity tests).
		dags = make([]*dagx.DAG, len(s.incs))
		for t, inc := range s.incs {
			dags[t] = dagx.AugmentedFromTree(survivor, inc.TreeCopy())
		}
	} else {
		dags = dagx.BuildAll(survivor, dagx.Augmented)
	}

	s.cur = survivor
	s.dags = dags
	s.ev = oblivious.NewEvaluator(survivor, dags, s.box, s.evalConfig())
	s.opt = nil // fresh epoch: previous optimizer indexes the old edge IDs
	s.reoptimize(ctx, false, nil)
	return s.record(Event{
		Kind: kind, Detail: detail, Warm: false,
		Perf: s.perf, ECMPPerf: s.ecmpPerf,
		OuterIters: s.lastOuter, Scenarios: len(s.critical),
		Elapsed: time.Since(start),
	}), nil
}

// Lies synthesizes the fake-node LSAs realizing the current configuration
// (quantized to extraPerInterface virtual next-hops per interface),
// verifies them, and computes the minimal LSA diff against the previously
// emitted lie set. The diff itself is verified: applying it to the
// previous synthesis must reproduce the new forwarding exactly. The new
// synthesis becomes the next diff baseline.
func (s *Session) Lies(extraPerInterface int) (*LieResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ctx, span := obs.StartSpan(s.traceCtx(), "session.lies")
	defer span.End()
	start := time.Now()
	_, wspan := obs.StartSpan(ctx, "session.wcmp")
	q, err := wcmp.Apply(s.routing, extraPerInterface)
	wspan.End()
	if err != nil {
		return nil, err
	}
	_, fspan := obs.StartSpan(ctx, "session.fibbing")
	syn, err := fibbing.Synthesize(s.cur, q)
	if err != nil {
		fspan.End()
		return nil, err
	}
	if err := fibbing.Verify(s.cur, q, syn); err != nil {
		fspan.End()
		return nil, fmt.Errorf("delta: lie verification failed: %w", err)
	}
	diff := fibbing.Diff(s.prevSyn, syn)
	if err := fibbing.VerifyDiff(s.cur, s.prevSyn, diff, syn); err != nil {
		fspan.End()
		return nil, fmt.Errorf("delta: diff verification failed: %w", err)
	}
	fspan.Attr("fake_nodes", syn.FakeNodes).Attr("churn", diff.Churn()).End()
	s.prevSyn = syn
	s.record(Event{
		Kind:      EventLies,
		Churn:     diff.Churn(),
		FakeNodes: syn.FakeNodes,
		Elapsed:   time.Since(start),
	})
	return &LieResult{
		Quantized:        q.Routing,
		VirtualLinks:     q.VirtualLinks,
		FakeNodes:        syn.FakeNodes,
		LiedDestinations: len(syn.LiedDestinations),
		Synthesis:        syn,
		Diff:             diff,
	}, nil
}

// Routing returns the current per-destination routing. The returned value
// must be treated as read-only.
func (s *Session) Routing() *pdrouting.Routing {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.routing
}

// Perf returns the current worst-case normalized utilization.
func (s *Session) Perf() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.perf
}

// ECMPPerf returns traditional ECMP's worst-case normalized utilization on
// the current epoch (same DAGs and uncertainty set).
func (s *Session) ECMPPerf() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ecmpPerf
}

// Graph returns the current (possibly degraded) topology.
func (s *Session) Graph() *graph.Graph {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cur
}

// Base returns the intact topology the session was created with.
func (s *Session) Base() *graph.Graph { return s.base }

// Bounds returns the current uncertainty set.
func (s *Session) Bounds() *demand.Box {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.box
}

// FailedLinks lists the currently failed links (base representative edge
// IDs, ascending).
func (s *Session) FailedLinks() []graph.EdgeID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failedList()
}

// Events returns a copy of the full event log.
func (s *Session) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// Subscribe registers a listener for future events. The returned cancel
// function must be called to release the subscription. Events are
// delivered best-effort: a subscriber that falls behind misses events
// rather than stalling the controller. Missed deliveries are counted —
// per subscriber and in the session total reported by Dropped — so the
// loss is observable instead of silent.
func (s *Session) Subscribe() (<-chan Event, func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.nextSub
	s.nextSub++
	sub := &subscriber{ch: make(chan Event, 16)}
	s.subs[id] = sub
	return sub.ch, func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if _, ok := s.subs[id]; ok {
			delete(s.subs, id)
			close(sub.ch)
		}
	}
}

// Dropped returns the number of events that were not delivered to some
// subscriber because its channel was full, summed over the session's
// lifetime (cancelled subscribers included).
func (s *Session) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}
