package delta

import (
	"testing"

	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/topo"
)

// sessionTrace runs a fixed fail/recover/update mutation sequence and
// returns the Perf/ECMPPerf observed after every transition plus the final
// routing, so two configurations can be compared bit-for-bit.
func sessionTrace(t *testing.T, cfg Config) ([]float64, [][]float64) {
	t.Helper()
	g, err := topo.Load("NSF")
	if err != nil {
		t.Fatal(err)
	}
	base := demand.Gravity(g, 1)
	s, err := NewSession(g, demand.MarginBox(base, 2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var perfs []float64
	push := func() { perfs = append(perfs, s.Perf(), s.ECMPPerf()) }
	push()

	links := g.Links()
	// Two overlapping failures, a demand drift mid-outage, then recovery
	// back to the intact topology — exercising the survivor-epoch rebuild,
	// the warm UpdateBounds path, and the recover-to-base path.
	steps := []func() error{
		func() error { _, err := s.Fail(links[1]); return err },
		func() error { _, err := s.Fail(links[4]); return err },
		func() error {
			_, err := s.UpdateBounds(demand.MarginBox(base.Clone().Scale(1.2), 2.2))
			return err
		},
		func() error { _, err := s.Recover(links[1]); return err },
		func() error { _, err := s.Recover(links[4]); return err },
		func() error { _, err := s.Fail(links[0]); return err },
		func() error { _, err := s.Recover(links[0]); return err },
	}
	for i, step := range steps {
		if err := step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		push()
	}
	r := s.Routing()
	phi := make([][]float64, len(r.Phi))
	for t := range r.Phi {
		phi[t] = append([]float64(nil), r.Phi[t]...)
	}
	return perfs, phi
}

// TestSessionIncrementalSPFParity pins the dynamic-SPF tentpole's safety
// property end to end: a session driving its epoch rebuilds from
// incrementally repaired distance fields must produce bit-identical results
// — every Perf/ECMPPerf along a mutation sequence and the final routing —
// to one rebuilding with cold per-destination Dijkstras, at one worker and
// at four.
func TestSessionIncrementalSPFParity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-session parity sweep is slow")
	}
	cfg := Config{OptIters: 40, AdvIters: 2, Samples: 4, Seed: 11}
	for _, workers := range []int{1, 4} {
		cfg.Workers = workers
		cold := cfg
		cold.coldSPF = true

		incPerfs, incPhi := sessionTrace(t, cfg)
		coldPerfs, coldPhi := sessionTrace(t, cold)

		if len(incPerfs) != len(coldPerfs) {
			t.Fatalf("workers=%d: trace lengths differ: %d vs %d", workers, len(incPerfs), len(coldPerfs))
		}
		for i := range incPerfs {
			if incPerfs[i] != coldPerfs[i] {
				t.Fatalf("workers=%d: perf trace diverges at %d: incremental %v, cold %v",
					workers, i, incPerfs[i], coldPerfs[i])
			}
		}
		for dst := range incPhi {
			for e := range incPhi[dst] {
				if incPhi[dst][e] != coldPhi[dst][e] {
					t.Fatalf("workers=%d: Phi[%d][%d] = %v incremental, %v cold",
						workers, dst, e, incPhi[dst][e], coldPhi[dst][e])
				}
			}
		}
	}
}

// TestSessionIncrementalStateTracksFailures checks the dynamic SPF
// structures stay in lockstep with the failed-link set across rejected
// mutations: a partitioning failure must leave them untouched.
func TestSessionIncrementalStateTracksFailures(t *testing.T) {
	g := graph.New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	ab := g.AddLink(a, b, 10, 1)
	g.AddLink(b, c, 10, 1)
	bc2 := g.AddLink(b, c, 10, 3)
	_ = bc2
	base := demand.Gravity(g, 1)
	s, err := NewSession(g, demand.MarginBox(base, 2), Config{OptIters: 20, AdvIters: 2, Samples: 2, Seed: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Failing a–b partitions the network; the session must reject it and
	// keep the incremental fields equal to the intact topology's.
	if _, err := s.Fail(ab); err == nil {
		t.Fatal("partitioning failure was accepted")
	}
	for _, inc := range s.incs {
		for _, e := range g.Edges() {
			if !inc.Active(e.ID) {
				t.Fatalf("edge %d inactive after rejected failure", e.ID)
			}
		}
		before := append([]float64(nil), inc.Dist()...)
		inc.RecomputeAll()
		for u, d := range inc.Dist() {
			if d != before[u] {
				t.Fatalf("dist[%d] drifted after rejected failure: %v vs recomputed %v", u, before[u], d)
			}
		}
	}
}
