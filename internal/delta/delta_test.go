package delta

import (
	"testing"

	"github.com/coyote-te/coyote/internal/dagx"
	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/gpopt"
	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/lp"
	"github.com/coyote-te/coyote/internal/oblivious"
	"github.com/coyote-te/coyote/internal/topo"
)

// testCfg is a reduced-effort configuration that still exercises every
// incremental mechanism.
func testCfg() Config {
	return Config{
		OptIters: 200,
		AdvIters: 3,
		Samples:  3,
		Seed:     1,
	}
}

func newNSFSession(t *testing.T, cfg Config) (*Session, *demand.Matrix) {
	t.Helper()
	g, err := topo.Load("NSF")
	if err != nil {
		t.Fatal(err)
	}
	base := demand.Gravity(g, 1)
	s, err := NewSession(g, demand.MarginBox(base, 2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, base
}

func TestSessionInit(t *testing.T) {
	s, _ := newNSFSession(t, testCfg())
	if !(s.Perf() >= 1-1e-9) {
		t.Fatalf("initial PERF %v, want ≥ 1", s.Perf())
	}
	if s.Perf() > s.ECMPPerf()+1e-9 {
		t.Fatalf("initial PERF %v worse than ECMP %v", s.Perf(), s.ECMPPerf())
	}
	events := s.Events()
	if len(events) != 1 || events[0].Kind != EventInit {
		t.Fatalf("events after init: %+v", events)
	}
	if err := s.Routing().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestWarmUpdateWithinOnePercentOfCold is the acceptance criterion: for a
// perturbed demand box, Session.UpdateBounds (warm, reduced effort) must
// reach a PERF within 1% of a cold full-effort Compute on the same inputs.
func TestWarmUpdateWithinOnePercentOfCold(t *testing.T) {
	cfg := testCfg()
	s, base := newNSFSession(t, cfg)

	perturbed := demand.MarginBox(base.Clone().Scale(1.25), 2.4)
	ev, err := s.UpdateBounds(perturbed)
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Warm {
		t.Fatal("UpdateBounds did not take the warm path")
	}

	// Cold reference: the batch pipeline at full (cold) session effort on
	// the same topology, DAGs, and box.
	g := s.Base()
	dags := dagx.BuildAll(g, dagx.Augmented)
	coldEv := oblivious.NewEvaluator(g, dags, perturbed, oblivious.EvalConfig{
		Samples: cfg.Samples, Seed: cfg.Seed,
	})
	_, coldRep := oblivious.OptimizeWithEvaluator(g, dags, coldEv, oblivious.Options{
		Optimizer: gpopt.Config{Iters: cfg.OptIters},
		AdvIters:  cfg.AdvIters,
	})

	cold := coldRep.Perf.Ratio
	warm := s.Perf()
	if warm > cold*1.01 {
		t.Fatalf("warm PERF %v not within 1%% of cold %v", warm, cold)
	}
}

func TestFailRecoverRoundTrip(t *testing.T) {
	s, _ := newNSFSession(t, testCfg())
	initial := s.Perf()

	link := s.Base().Links()[0]
	evFail, err := s.Fail(link)
	if err != nil {
		t.Fatal(err)
	}
	if evFail.Kind != EventFail {
		t.Fatalf("event kind %q, want fail", evFail.Kind)
	}
	if s.Graph().NumEdges() != s.Base().NumEdges()-2 {
		t.Fatalf("survivor has %d edges, want %d", s.Graph().NumEdges(), s.Base().NumEdges()-2)
	}
	if got := s.FailedLinks(); len(got) != 1 || got[0] != link {
		t.Fatalf("FailedLinks = %v, want [%d]", got, link)
	}
	if !(s.Perf() >= 1-1e-9) {
		t.Fatalf("post-failure PERF %v, want ≥ 1", s.Perf())
	}

	evRec, err := s.Recover(link)
	if err != nil {
		t.Fatal(err)
	}
	if evRec.Kind != EventRecover || !evRec.Warm {
		t.Fatalf("recovery event %+v, want warm recover", evRec)
	}
	if s.Graph() != s.Base() {
		t.Fatal("recovery did not restore the base topology")
	}
	if len(s.FailedLinks()) != 0 {
		t.Fatal("failed set not empty after recovery")
	}
	// The recovered configuration must be in the same quality regime as
	// the initial one (warm restart from the base-epoch state).
	if s.Perf() > initial*1.05 {
		t.Fatalf("recovered PERF %v much worse than initial %v", s.Perf(), initial)
	}

	// Double-fail and double-recover are rejected.
	if _, err := s.Recover(link); err == nil {
		t.Fatal("recovering a healthy link must fail")
	}
	if _, err := s.Fail(link); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Fail(link); err == nil {
		t.Fatal("failing a failed link must fail")
	}
}

func TestFailoverPlanSwap(t *testing.T) {
	cfg := testCfg()
	cfg.PrecomputeFailover = true
	s, _ := newNSFSession(t, cfg)
	link := s.Base().Links()[0]
	ev, err := s.Fail(link)
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Warm {
		t.Fatal("planned failover should refine warm from the precomputed configuration")
	}
	if !(s.Perf() >= 1-1e-9) {
		t.Fatalf("post-failover PERF %v, want ≥ 1", s.Perf())
	}
}

func TestPartitioningFailureRejected(t *testing.T) {
	// A 3-node line: failing either link partitions the network.
	g := graph.New()
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	g.AddLink(a, b, 1, 1)
	g.AddLink(b, c, 1, 1)
	base := demand.Gravity(g, 1)
	s, err := NewSession(g, demand.MarginBox(base, 2), testCfg())
	if err != nil {
		t.Fatal(err)
	}
	before := s.Perf()
	if _, err := s.Fail(g.Links()[0]); err == nil {
		t.Fatal("partitioning failure must be rejected")
	}
	if s.Perf() != before || len(s.FailedLinks()) != 0 {
		t.Fatal("rejected failure mutated the session")
	}
}

func TestLiesAndChurn(t *testing.T) {
	s, base := newNSFSession(t, testCfg())

	first, err := s.Lies(3)
	if err != nil {
		t.Fatal(err)
	}
	if first.Diff.Churn() != first.FakeNodes {
		t.Fatalf("first diff churn %d, want full injection %d", first.Diff.Churn(), first.FakeNodes)
	}

	// Unchanged configuration → empty diff.
	second, err := s.Lies(3)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Diff.Empty() {
		t.Fatalf("unchanged configuration produced churn %d", second.Diff.Churn())
	}

	// A demand drift should reconfigure some — but not all — LSAs.
	if _, err := s.UpdateBounds(demand.MarginBox(base.Clone().Scale(1.5), 3)); err != nil {
		t.Fatal(err)
	}
	third, err := s.Lies(3)
	if err != nil {
		t.Fatal(err)
	}
	if third.Diff.Churn() > third.FakeNodes+first.FakeNodes {
		t.Fatalf("churn %d exceeds flush-and-reload bound", third.Diff.Churn())
	}

	// The event log recorded the churn metric.
	var liesEvents int
	for _, e := range s.Events() {
		if e.Kind == EventLies {
			liesEvents++
		}
	}
	if liesEvents != 3 {
		t.Fatalf("%d lies events recorded, want 3", liesEvents)
	}
}

// TestSessionWorkerParity: a fixed mutation sequence must produce
// bit-identical results for any worker count (the repo's determinism
// contract extended to the online controller).
func TestSessionWorkerParity(t *testing.T) {
	if testing.Short() {
		t.Skip("parity sweep in -short mode")
	}
	run := func(workers int) (float64, *Session) {
		cfg := testCfg()
		cfg.OptIters = 80
		cfg.AdvIters = 2
		cfg.Workers = workers
		s, base := newNSFSession(t, cfg)
		if _, err := s.UpdateBounds(demand.MarginBox(base.Clone().Scale(1.2), 2.5)); err != nil {
			t.Fatal(err)
		}
		link := s.Base().Links()[2]
		if _, err := s.Fail(link); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Recover(link); err != nil {
			t.Fatal(err)
		}
		return s.Perf(), s
	}
	perf1, s1 := run(1)
	perf4, s4 := run(4)
	if perf1 != perf4 {
		t.Fatalf("PERF differs across worker counts: %v vs %v", perf1, perf4)
	}
	r1, r4 := s1.Routing(), s4.Routing()
	for dst := range r1.Phi {
		for e := range r1.Phi[dst] {
			if r1.Phi[dst][e] != r4.Phi[dst][e] {
				t.Fatalf("Phi[%d][%d] differs: %v vs %v", dst, e, r1.Phi[dst][e], r4.Phi[dst][e])
			}
		}
	}
}

func TestSubscribe(t *testing.T) {
	s, base := newNSFSession(t, testCfg())
	ch, cancel := s.Subscribe()
	defer cancel()
	if _, err := s.UpdateBounds(demand.MarginBox(base.Clone().Scale(1.1), 2)); err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-ch:
		if e.Kind != EventUpdate {
			t.Fatalf("subscriber got %q, want update", e.Kind)
		}
	default:
		t.Fatal("subscriber received no event")
	}
	cancel() // double-cancel must be safe
}

func TestBadInputs(t *testing.T) {
	s, _ := newNSFSession(t, testCfg())
	if _, err := s.UpdateBounds(nil); err == nil {
		t.Fatal("nil bounds accepted")
	}
	if _, err := s.UpdateBounds(demand.MarginBox(demand.NewMatrix(3), 2)); err == nil {
		t.Fatal("mis-sized bounds accepted")
	}
	if _, err := s.Fail(-1); err == nil {
		t.Fatal("negative link accepted")
	}
	if _, err := s.Fail(10_000); err == nil {
		t.Fatal("out-of-range link accepted")
	}
}

// TestBasisCarriesThroughUpdateBounds asserts the tentpole's third warm
// channel: the exact OPTDAG solver's optimal basis lives in the shared
// evaluator cache and rides WithBox through demand updates, so the fresh
// normalizations of an updated box warm-start from the previous epoch's
// vertex. The counters are process-global, so this test must not run in
// parallel with others that reset them.
func TestBasisCarriesThroughUpdateBounds(t *testing.T) {
	s, base := newNSFSession(t, testCfg())
	lp.ResetGlobalStats()
	if _, err := s.UpdateBounds(demand.MarginBox(base.Clone().Scale(1.2), 2.1)); err != nil {
		t.Fatal(err)
	}
	st := lp.GlobalStats()
	if st.Solves == 0 {
		t.Fatal("no exact LP solves during UpdateBounds; is NSF above ExactNodeLimit?")
	}
	if st.WarmAttempts == 0 {
		t.Fatal("no warm-start attempts: the basis did not carry through WithBox")
	}
	if st.WarmHits == 0 {
		t.Fatalf("basis carried but never accepted (attempts %d)", st.WarmAttempts)
	}
	if st.DenseFallbacks != 0 {
		t.Fatalf("%d dense fallbacks during a session update", st.DenseFallbacks)
	}
	// Dual-restart accounting must stay coherent with the warm channel: the
	// dual phase only ever runs on an accepted warm basis, and a verdict
	// implies an attempt. (Whether it fires at all depends on how far the
	// box moved the carried vertex.)
	if st.DualAttempts > st.WarmHits {
		t.Fatalf("dual attempts %d exceed warm hits %d", st.DualAttempts, st.WarmHits)
	}
	if st.DualHits > st.DualAttempts {
		t.Fatalf("dual hits %d exceed attempts %d", st.DualHits, st.DualAttempts)
	}
	if st.DualIterations > 0 && st.DualAttempts == 0 {
		t.Fatalf("%d dual iterations recorded without a dual attempt", st.DualIterations)
	}
	t.Logf("update: %d solves, warm %d/%d, dual %d/%d (%d pivots)",
		st.Solves, st.WarmHits, st.WarmAttempts, st.DualHits, st.DualAttempts, st.DualIterations)
}

// TestDualRepairsScaledBoxUpdate forces the dual channel inside a session:
// a pure demand rescale is a bound/RHS-only drift, so carrying the basis
// into the scaled box must repair primal infeasibility via the dual
// simplex rather than re-running phase 1 from scratch.
func TestDualRepairsScaledBoxUpdate(t *testing.T) {
	s, base := newNSFSession(t, testCfg())
	var totalDualHits uint64
	for i, scale := range []float64{1.6, 0.55, 2.2} {
		lp.ResetGlobalStats()
		if _, err := s.UpdateBounds(demand.MarginBox(base.Clone().Scale(scale), 2)); err != nil {
			t.Fatalf("scale %g: %v", scale, err)
		}
		st := lp.GlobalStats()
		if i > 0 && st.WarmHits == 0 {
			t.Fatalf("scale %g: warm basis not carried", scale)
		}
		if st.Phase1Iterations > 0 && st.DualAttempts == 0 && st.WarmHits > 0 {
			t.Logf("scale %g: phase 1 ran on a warm solve without a dual attempt "+
				"(%d iters) — auto trigger declined the basis", scale, st.Phase1Iterations)
		}
		totalDualHits += st.DualHits
		t.Logf("scale %g: warm %d/%d, dual %d/%d (%d dual pivots, %d phase-1)",
			scale, st.WarmHits, st.WarmAttempts, st.DualHits, st.DualAttempts,
			st.DualIterations, st.Phase1Iterations)
	}
	if totalDualHits == 0 {
		t.Fatal("dual simplex never repaired a scaled-box update; the MethodAuto trigger is dead in sessions")
	}
}
