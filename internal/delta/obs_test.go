package delta

import (
	"testing"

	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/obs"
)

// TestStalledSubscriberDropsCounted pins the fix for the silent-event-loss
// bug: a subscriber that never drains its channel misses events once the
// buffer fills, and every miss must now be counted — the controller still
// never blocks, other subscribers still get every event, and the loss is
// visible through Session.Dropped.
func TestStalledSubscriberDropsCounted(t *testing.T) {
	cfg := testCfg()
	cfg.OptIters = 60
	cfg.AdvIters = 2
	s, _ := newNSFSession(t, cfg)

	stalled, cancelStalled := s.Subscribe() // never drained
	defer cancelStalled()
	live, cancelLive := s.Subscribe()
	defer cancelLive()

	// The subscriber buffer is 16; drive 20 events so the stalled channel
	// overflows by exactly 4. Lies events are cheap (no re-optimization).
	const total = 20
	for i := 0; i < total; i++ {
		if _, err := s.Lies(1); err != nil {
			t.Fatal(err)
		}
		// The live subscriber drains as it goes and must see everything.
		select {
		case e := <-live:
			if e.Kind != EventLies {
				t.Fatalf("live subscriber got %q, want lies", e.Kind)
			}
		default:
			t.Fatalf("live subscriber missed event %d", i)
		}
	}

	wantDropped := uint64(total - cap(stalled))
	if got := s.Dropped(); got != wantDropped {
		t.Fatalf("Dropped() = %d, want %d (buffer %d, events %d)", got, wantDropped, cap(stalled), total)
	}
	// The stalled channel still holds the first buffer-full of events in
	// order — loss is tail-drop, not corruption.
	first := <-stalled
	if first.Kind != EventLies || len(stalled) != cap(stalled)-1 {
		t.Fatalf("stalled channel head %q, %d buffered", first.Kind, len(stalled)+1)
	}
}

// TestTracingParity is the tentpole's determinism acceptance test: with a
// Tracer attached (spans recorded through session → oblivious → gpopt →
// lp) the session must produce bit-identical results to an untraced run,
// at every worker count.
func TestTracingParity(t *testing.T) {
	if testing.Short() {
		t.Skip("parity sweep in -short mode")
	}
	run := func(workers int, tracer *obs.Tracer) *Session {
		cfg := testCfg()
		cfg.OptIters = 80
		cfg.AdvIters = 2
		cfg.Workers = workers
		cfg.Tracer = tracer
		s, base := newNSFSession(t, cfg)
		if _, err := s.UpdateBounds(demand.MarginBox(base.Clone().Scale(1.2), 2.5)); err != nil {
			t.Fatal(err)
		}
		link := s.Base().Links()[2]
		if _, err := s.Fail(link); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Recover(link); err != nil {
			t.Fatal(err)
		}
		return s
	}

	plain := run(1, nil)
	tracer := obs.NewTracer()
	traced := run(1, tracer)
	tracer4 := obs.NewTracer()
	traced4 := run(4, tracer4)

	for name, other := range map[string]*Session{"traced w=1": traced, "traced w=4": traced4} {
		if plain.Perf() != other.Perf() {
			t.Fatalf("%s: PERF %v differs from untraced %v", name, other.Perf(), plain.Perf())
		}
		a, b := plain.Routing(), other.Routing()
		for dst := range a.Phi {
			for e := range a.Phi[dst] {
				if a.Phi[dst][e] != b.Phi[dst][e] {
					t.Fatalf("%s: Phi[%d][%d] differs: %v vs %v", name, dst, e, a.Phi[dst][e], b.Phi[dst][e])
				}
			}
		}
	}

	// The traced runs must actually have recorded the pipeline stages.
	names := make(map[string]bool)
	parents := make(map[uint64]uint64)
	byID := make(map[uint64]obs.SpanRecord)
	for _, r := range tracer.Records() {
		names[r.Name] = true
		parents[r.ID] = r.Parent
		byID[r.ID] = r
	}
	// lp.solve spans are absent here on purpose: the session's adversary
	// runs through the parallel PerfTop path, and per-LP spans only flow
	// through the serial PerfExact chain (see oblivious.TestPerfExactSpans).
	for _, want := range []string{
		"session.init", "session.update", "session.fail", "session.recover",
		"oblivious.optimize", "oblivious.round", "oblivious.adversary",
		"gpopt.run",
	} {
		if !names[want] {
			t.Errorf("traced run recorded no %q span", want)
		}
	}
	// Span tree sanity: every non-root parent exists and contains its child.
	for id, parent := range parents {
		if parent == 0 {
			continue
		}
		p, ok := byID[parent]
		if !ok {
			t.Fatalf("span %d has unknown parent %d", id, parent)
		}
		c := byID[id]
		if c.Start < p.Start || c.Start+c.Dur > p.Start+p.Dur {
			t.Errorf("span %s [%d,%d) escapes parent %s [%d,%d)",
				c.Name, c.Start, c.Start+c.Dur, p.Name, p.Start, p.Start+p.Dur)
		}
	}
	if tracer.Len() == 0 || tracer4.Len() == 0 {
		t.Fatal("tracer recorded nothing")
	}
}
