// Package dagx builds and manipulates the per-destination forwarding DAGs at
// the heart of COYOTE (§V-B of the paper).
//
// Construction has two steps. Step I computes the shortest-path DAG rooted
// at each destination for a given link-weight assignment (package spf).
// Step II augments each DAG with every link that does not appear in it,
// oriented "towards the incident node that is closer to the destination,
// breaking ties lexicographically". Because positive weights make
// shortest-path edges strictly decrease the potential (dist_t(u), u) as
// well, every edge of the augmented DAG strictly decreases that potential,
// so the result is acyclic by construction.
package dagx

import (
	"fmt"

	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/spf"
)

// DAG is a per-destination forwarding DAG over a graph's directed edges.
type DAG struct {
	Dst    graph.NodeID
	Member []bool         // Member[e] reports whether directed edge e belongs to the DAG
	Order  []graph.NodeID // topological order: every DAG edge goes from an earlier to a later node; Dst is last
	Dist   []float64      // the SPF distance field used to build the DAG (for diagnostics/stretch)
}

// Edges returns the IDs of the DAG's member edges.
func (d *DAG) Edges() []graph.EdgeID {
	var out []graph.EdgeID
	for id, in := range d.Member {
		if in {
			out = append(out, graph.EdgeID(id))
		}
	}
	return out
}

// OutEdges returns u's DAG out-edges.
func (d *DAG) OutEdges(g *graph.Graph, u graph.NodeID) []graph.EdgeID {
	var out []graph.EdgeID
	for _, id := range g.Out(u) {
		if d.Member[id] {
			out = append(out, id)
		}
	}
	return out
}

// InEdges returns v's DAG in-edges.
func (d *DAG) InEdges(g *graph.Graph, v graph.NodeID) []graph.EdgeID {
	var in []graph.EdgeID
	for _, id := range g.In(v) {
		if d.Member[id] {
			in = append(in, id)
		}
	}
	return in
}

// NumEdges counts member edges.
func (d *DAG) NumEdges() int {
	n := 0
	for _, in := range d.Member {
		if in {
			n++
		}
	}
	return n
}

// potentialLess reports whether node a has strictly smaller potential than
// node b under the lexicographic order (dist, id) used for augmentation.
func potentialLess(dist []float64, a, b graph.NodeID) bool {
	if dist[a] != dist[b] {
		return dist[a] < dist[b]
	}
	return a < b
}

// ShortestPath builds the plain shortest-path DAG rooted at dst (Step I
// only): this is the DAG traditional ECMP uses.
func ShortestPath(g *graph.Graph, dst graph.NodeID) *DAG {
	return ShortestPathFromTree(g, spf.ToDestination(g, dst))
}

// ShortestPathFromTree is ShortestPath over an already-computed distance
// field — the entry point for callers that maintain distances
// incrementally (spf.Incremental) or already hold a tree for dst. The
// tree's Dist slice is retained (not copied) as the DAG's Dist.
func ShortestPathFromTree(g *graph.Graph, tree *spf.Tree) *DAG {
	d := &DAG{Dst: tree.Dst, Member: tree.ShortestPathEdges(g), Dist: tree.Dist}
	d.Order = topoOrder(g, d)
	return d
}

// Tree wraps the DAG's cached distance field as an spf.Tree (sharing
// storage), or nil when the DAG carries no distances (FromEdges). Consumers
// use it to answer shortest-path queries without re-running Dijkstra.
func (d *DAG) Tree() *spf.Tree {
	if d.Dist == nil {
		return nil
	}
	return spf.FromDist(d.Dst, d.Dist)
}

// Augmented builds the COYOTE forwarding DAG rooted at dst: the
// shortest-path DAG plus every remaining link oriented downhill with respect
// to (dist, id). Edges incident to unreachable nodes are excluded.
func Augmented(g *graph.Graph, dst graph.NodeID) *DAG {
	return AugmentedFromTree(g, spf.ToDestination(g, dst))
}

// AugmentedFromTree is Augmented over an already-computed distance field
// for tree.Dst — what the online controller uses to rebuild survivor-epoch
// DAGs from incrementally repaired distances instead of cold Dijkstra. The
// distances must be consistent with g's weights (bit-identical to what
// spf.ToDestination(g, dst) would produce) for the membership tolerance
// checks to behave identically; spf.Incremental guarantees exactly that.
// The tree's Dist slice is retained (not copied) as the DAG's Dist.
func AugmentedFromTree(g *graph.Graph, tree *spf.Tree) *DAG {
	dst := tree.Dst
	member := tree.ShortestPathEdges(g)
	for _, e := range g.Edges() {
		if member[e.ID] {
			continue
		}
		if tree.Dist[e.From] == spf.Inf || tree.Dist[e.To] == spf.Inf {
			continue
		}
		// Orient towards the endpoint closer to dst: keep e=(u,v) iff v has
		// strictly smaller potential than u.
		if potentialLess(tree.Dist, e.To, e.From) {
			member[e.ID] = true
		}
	}
	d := &DAG{Dst: dst, Member: member, Dist: tree.Dist}
	d.Order = topoOrder(g, d)
	return d
}

// FromEdges builds a DAG from an explicit membership vector, verifying
// acyclicity. It allows operators (or tests) to supply arbitrary DAGs, per
// §V-B: "DAGs rooted in different destinations are not coupled in any way,
// allowing network operators to specify any set of DAGs."
func FromEdges(g *graph.Graph, dst graph.NodeID, member []bool) (*DAG, error) {
	if len(member) != g.NumEdges() {
		return nil, fmt.Errorf("dagx: membership vector has %d entries, want %d", len(member), g.NumEdges())
	}
	d := &DAG{Dst: dst, Member: append([]bool(nil), member...)}
	order, ok := topoOrderChecked(g, d)
	if !ok {
		return nil, fmt.Errorf("dagx: edge set for destination %d contains a cycle", dst)
	}
	d.Order = order
	return d, nil
}

// topoOrder computes a topological order of the DAG's nodes and panics on a
// cycle; internal constructors guarantee acyclicity.
func topoOrder(g *graph.Graph, d *DAG) []graph.NodeID {
	order, ok := topoOrderChecked(g, d)
	if !ok {
		panic("dagx: internal constructor produced a cyclic DAG")
	}
	return order
}

// topoOrderChecked returns a topological order (sources first, destination
// last among reachable nodes) using Kahn's algorithm restricted to member
// edges, and reports whether the edge set is acyclic.
func topoOrderChecked(g *graph.Graph, d *DAG) ([]graph.NodeID, bool) {
	n := g.NumNodes()
	indeg := make([]int, n)
	for _, e := range g.Edges() {
		if d.Member[e.ID] {
			indeg[e.To]++
		}
	}
	queue := make([]graph.NodeID, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, graph.NodeID(i))
		}
	}
	order := make([]graph.NodeID, 0, n)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, id := range g.Out(u) {
			if !d.Member[id] {
				continue
			}
			v := g.Edge(id).To
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if len(order) != n {
		return nil, false
	}
	return order, true
}

// ContainsShortestPathDAG reports whether d contains every edge of the
// shortest-path DAG toward d.Dst under the graph's current weights. COYOTE's
// guarantee that it is "no worse than standard OSPF/ECMP" rests on this
// containment (§V-B).
func (d *DAG) ContainsShortestPathDAG(g *graph.Graph) bool {
	sp := spf.ToDestination(g, d.Dst).ShortestPathEdges(g)
	for id, in := range sp {
		if in && !d.Member[id] {
			return false
		}
	}
	return true
}

// BuildAll constructs a DAG per destination using the given constructor
// (ShortestPath or Augmented).
func BuildAll(g *graph.Graph, build func(*graph.Graph, graph.NodeID) *DAG) []*DAG {
	dags := make([]*DAG, g.NumNodes())
	for t := 0; t < g.NumNodes(); t++ {
		dags[t] = build(g, graph.NodeID(t))
	}
	return dags
}
