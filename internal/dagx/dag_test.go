package dagx

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/coyote-te/coyote/internal/graph"
)

func paperExample() (*graph.Graph, map[string]graph.NodeID) {
	g := graph.New()
	ids := map[string]graph.NodeID{
		"s1": g.AddNode("s1"),
		"s2": g.AddNode("s2"),
		"v":  g.AddNode("v"),
		"t":  g.AddNode("t"),
	}
	g.AddLink(ids["s1"], ids["s2"], 1, 1)
	g.AddLink(ids["s1"], ids["v"], 1, 1)
	g.AddLink(ids["s2"], ids["v"], 1, 1)
	g.AddLink(ids["s2"], ids["t"], 1, 1)
	g.AddLink(ids["v"], ids["t"], 1, 1)
	return g, ids
}

func TestShortestPathDAGRunningExample(t *testing.T) {
	g, ids := paperExample()
	d := ShortestPath(g, ids["t"])
	if d.NumEdges() != 4 {
		t.Fatalf("SP DAG should have 4 edges, got %d", d.NumEdges())
	}
}

// The paper's running example: augmenting the DAG rooted at t adds link
// (s2,v) in one direction. s2 and v are both at distance 1, so the tie
// breaks lexicographically: s2 (id 1) < v (id 2), hence v -> s2... the edge
// is oriented toward the smaller (dist, id), i.e. from v to s2.
func TestAugmentedDAGAddsTiedLink(t *testing.T) {
	g, ids := paperExample()
	d := Augmented(g, ids["t"])
	if d.NumEdges() != 5 {
		t.Fatalf("augmented DAG should have 5 edges, got %d", d.NumEdges())
	}
	vs2, ok := g.FindEdge(ids["v"], ids["s2"])
	if !ok {
		t.Fatal("edge v->s2 must exist")
	}
	s2v, _ := g.FindEdge(ids["s2"], ids["v"])
	if !d.Member[vs2] {
		t.Fatal("augmentation should orient the tied link from v (id 2) to s2 (id 1)")
	}
	if d.Member[s2v] {
		t.Fatal("augmentation must not include both directions of a link")
	}
}

func TestAugmentedContainsShortestPath(t *testing.T) {
	g, ids := paperExample()
	d := Augmented(g, ids["t"])
	if !d.ContainsShortestPathDAG(g) {
		t.Fatal("augmented DAG must contain the SP DAG (COYOTE's no-worse-than-ECMP guarantee)")
	}
}

func TestTopologicalOrderValid(t *testing.T) {
	g, ids := paperExample()
	d := Augmented(g, ids["t"])
	pos := make(map[graph.NodeID]int)
	for i, u := range d.Order {
		pos[u] = i
	}
	for _, e := range g.Edges() {
		if d.Member[e.ID] && pos[e.From] >= pos[e.To] {
			t.Fatalf("edge %d->%d violates topological order", e.From, e.To)
		}
	}
	if d.Order[len(d.Order)-1] != ids["t"] && d.Dist[d.Order[len(d.Order)-1]] != 0 {
		// t must be last among nodes that have DAG edges into them; with all
		// nodes reachable t is a sink.
		t.Fatalf("destination should be the final sink, order = %v", d.Order)
	}
}

func TestFromEdgesRejectsCycle(t *testing.T) {
	g, ids := paperExample()
	member := make([]bool, g.NumEdges())
	e1, _ := g.FindEdge(ids["s1"], ids["s2"])
	e2, _ := g.FindEdge(ids["s2"], ids["s1"])
	member[e1], member[e2] = true, true
	if _, err := FromEdges(g, ids["t"], member); err == nil {
		t.Fatal("FromEdges should reject a 2-cycle")
	}
}

func TestFromEdgesAcceptsValidDAG(t *testing.T) {
	g, ids := paperExample()
	d := Augmented(g, ids["t"])
	d2, err := FromEdges(g, ids["t"], d.Member)
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	if d2.NumEdges() != d.NumEdges() {
		t.Fatal("FromEdges changed edge count")
	}
}

func TestFromEdgesLengthMismatch(t *testing.T) {
	g, ids := paperExample()
	if _, err := FromEdges(g, ids["t"], make([]bool, 3)); err == nil {
		t.Fatal("FromEdges should reject wrong-length membership")
	}
}

func TestOutInEdges(t *testing.T) {
	g, ids := paperExample()
	d := Augmented(g, ids["t"])
	outS1 := d.OutEdges(g, ids["s1"])
	if len(outS1) != 2 {
		t.Fatalf("s1 should have 2 DAG out-edges, got %d", len(outS1))
	}
	inT := d.InEdges(g, ids["t"])
	if len(inT) != 2 {
		t.Fatalf("t should have 2 DAG in-edges, got %d", len(inT))
	}
	if len(d.OutEdges(g, ids["t"])) != 0 {
		t.Fatal("destination must have no DAG out-edges")
	}
}

func randomGraph(rng *rand.Rand, n int) *graph.Graph {
	g := graph.New()
	g.AddNodes(n)
	for i := 0; i < n; i++ {
		g.AddLink(graph.NodeID(i), graph.NodeID((i+1)%n), 1+rng.Float64()*9, 1+float64(rng.Intn(4)))
	}
	for i := 0; i < n; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			g.AddLink(graph.NodeID(a), graph.NodeID(b), 1+rng.Float64()*9, 1+float64(rng.Intn(4)))
		}
	}
	return g
}

// Property: augmented DAGs are always acyclic, contain the SP DAG, and use
// every link between reachable nodes in exactly one direction.
func TestPropertyAugmentedDAGInvariants(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := 3 + int(sz%12)
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, n)
		dst := graph.NodeID(rng.Intn(n))
		d := Augmented(g, dst)
		// Acyclicity is implied by topoOrder not panicking, but verify the
		// order is consistent anyway.
		pos := make([]int, n)
		for i, u := range d.Order {
			pos[u] = i
		}
		for _, e := range g.Edges() {
			if d.Member[e.ID] && pos[e.From] >= pos[e.To] {
				return false
			}
		}
		if !d.ContainsShortestPathDAG(g) {
			return false
		}
		// Each bidirectional link used in at most one direction, and at
		// least one if both endpoints are reachable.
		for _, e := range g.Edges() {
			if e.Reverse < 0 || e.ID > e.Reverse {
				continue
			}
			fwd, bwd := d.Member[e.ID], d.Member[e.Reverse]
			if fwd && bwd {
				return false
			}
			if !fwd && !bwd {
				return false // ring construction keeps everything reachable
			}
		}
		// Destination has no out-edges.
		if len(d.OutEdges(g, dst)) != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: every non-destination node has at least one out-edge in the
// augmented DAG (traffic never gets stuck).
func TestPropertyEveryNodeHasOutEdge(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := 3 + int(sz%12)
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, n)
		dst := graph.NodeID(rng.Intn(n))
		d := Augmented(g, dst)
		for u := 0; u < n; u++ {
			if graph.NodeID(u) == dst {
				continue
			}
			if len(d.OutEdges(g, graph.NodeID(u))) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
