package localsearch

import (
	"errors"
	"math"
	"testing"

	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/topo"
)

// bottleneckGraph: two parallel routes between a and d; the direct route
// has a thin link, the detour is fat. Inverse-capacity weights already
// prefer the fat path, so we craft demands that overload whichever single
// path ECMP picks; local search should spread weights to improve.
func bottleneckGraph() *graph.Graph {
	g := graph.New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	d := g.AddNode("d")
	g.AddLink(a, b, 1, 1)
	g.AddLink(b, d, 1, 1)
	g.AddLink(a, c, 1, 1)
	g.AddLink(c, d, 1, 1)
	return g
}

func TestOptimizeImprovesOrMatchesInitial(t *testing.T) {
	g := bottleneckGraph()
	base := demand.NewMatrix(g.NumNodes())
	a, _ := g.NodeByName("a")
	d, _ := g.NodeByName("d")
	base.Set(a, d, 2)
	box := demand.MarginBox(base, 2)

	res, err := Optimize(g, box, Config{OuterIters: 3, InnerMoves: 30, Seed: 1})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if len(res.Weights) != g.NumEdges() {
		t.Fatalf("got %d weights, want %d", len(res.Weights), g.NumEdges())
	}
	for _, w := range res.Weights {
		if w < 1 {
			t.Fatalf("weight %g below 1", w)
		}
	}
	if res.Rounds < 1 {
		t.Fatal("no rounds executed")
	}
	if len(res.CriticalDMs) == 0 {
		t.Fatal("no critical demand matrices accumulated")
	}
	// With symmetric unit capacities the optimum splits a→d evenly: worst
	// utilization 4/2/1 = 2 (max demand 4 split over two unit paths).
	if res.WorstUtil > 4.0+1e-9 {
		t.Fatalf("worst utilization %g should not exceed single-path 4", res.WorstUtil)
	}
}

func TestOptimizeDoesNotMutateInput(t *testing.T) {
	g := bottleneckGraph()
	before := g.Weights()
	base := demand.NewMatrix(g.NumNodes())
	a, _ := g.NodeByName("a")
	d, _ := g.NodeByName("d")
	base.Set(a, d, 1)
	if _, err := Optimize(g, demand.MarginBox(base, 2), Config{OuterIters: 2, InnerMoves: 10, Seed: 2}); err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	after := g.Weights()
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("Optimize mutated the input graph's weights")
		}
	}
}

func TestOptimizeOnCorpusTopology(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus local search in -short mode")
	}
	g := topo.MustLoad("NSF")
	base := demand.Gravity(g, 1)
	box := demand.MarginBox(base, 2)
	res, err := Optimize(g, box, Config{OuterIters: 3, InnerMoves: 25, Seed: 3})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if res.WorstUtil <= 0 {
		t.Fatalf("worst utilization %g should be positive", res.WorstUtil)
	}
	// Critical set accumulates at most one DM per round.
	if len(res.CriticalDMs) > res.Rounds {
		t.Fatalf("%d critical DMs exceed %d rounds", len(res.CriticalDMs), res.Rounds)
	}
}

// TestOptimizeRejectsDegenerateInputs is the regression matrix for the
// crash class fixed in PR 10: a single-node graph, an edgeless graph
// (rng.Intn(0) panic in the move loop), a non-finite capacity (the
// INVERSECAPACITY weight maxCap/c_e becomes NaN and poisons every SPF),
// a nil box, and a box of the wrong dimension. graph.AddEdge forbids
// zero and NaN capacities at construction time, so the capacity row uses
// +Inf — the only non-finite value constructible through the public API,
// and it hits the same maxCap/c_e division.
func TestOptimizeRejectsDegenerateInputs(t *testing.T) {
	box2 := func(n int) *demand.Box {
		return demand.MarginBox(demand.NewMatrix(n), 2)
	}

	singleNode := graph.New()
	singleNode.AddNode("only")

	edgeless := graph.New()
	edgeless.AddNode("a")
	edgeless.AddNode("b")

	infCap := graph.New()
	ia := infCap.AddNode("a")
	ib := infCap.AddNode("b")
	infCap.AddLink(ia, ib, 1, 1)
	infCap.AddEdge(ia, ib, math.Inf(1), 1)

	ok := graph.New()
	oa := ok.AddNode("a")
	ob := ok.AddNode("b")
	ok.AddLink(oa, ob, 1, 1)

	cases := []struct {
		name string
		g    *graph.Graph
		box  *demand.Box
	}{
		{"single-node graph", singleNode, box2(1)},
		{"edgeless graph", edgeless, box2(2)},
		{"infinite capacity", infCap, box2(2)},
		{"nil box", ok, nil},
		{"mismatched box dimension", ok, box2(5)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Optimize(tc.g, tc.box, Config{OuterIters: 2, InnerMoves: 5, Seed: 1})
			if err == nil {
				t.Fatalf("Optimize accepted degenerate input, got %+v", res)
			}
			if !errors.Is(err, ErrInvalidInput) {
				t.Fatalf("error %v is not ErrInvalidInput", err)
			}
		})
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	g := bottleneckGraph()
	base := demand.NewMatrix(g.NumNodes())
	a, _ := g.NodeByName("a")
	d, _ := g.NodeByName("d")
	base.Set(a, d, 2)
	box := demand.MarginBox(base, 2)
	r1, err1 := Optimize(g, box, Config{OuterIters: 3, InnerMoves: 20, Seed: 9})
	r2, err2 := Optimize(g, box, Config{OuterIters: 3, InnerMoves: 20, Seed: 9})
	if err1 != nil || err2 != nil {
		t.Fatalf("Optimize: %v / %v", err1, err2)
	}
	for i := range r1.Weights {
		if r1.Weights[i] != r2.Weights[i] {
			t.Fatal("same seed produced different weights")
		}
	}
}
