package localsearch

import (
	"testing"

	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/topo"
)

// bottleneckGraph: two parallel routes between a and d; the direct route
// has a thin link, the detour is fat. Inverse-capacity weights already
// prefer the fat path, so we craft demands that overload whichever single
// path ECMP picks; local search should spread weights to improve.
func bottleneckGraph() *graph.Graph {
	g := graph.New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	d := g.AddNode("d")
	g.AddLink(a, b, 1, 1)
	g.AddLink(b, d, 1, 1)
	g.AddLink(a, c, 1, 1)
	g.AddLink(c, d, 1, 1)
	return g
}

func TestOptimizeImprovesOrMatchesInitial(t *testing.T) {
	g := bottleneckGraph()
	base := demand.NewMatrix(g.NumNodes())
	a, _ := g.NodeByName("a")
	d, _ := g.NodeByName("d")
	base.Set(a, d, 2)
	box := demand.MarginBox(base, 2)

	res := Optimize(g, box, Config{OuterIters: 3, InnerMoves: 30, Seed: 1})
	if len(res.Weights) != g.NumEdges() {
		t.Fatalf("got %d weights, want %d", len(res.Weights), g.NumEdges())
	}
	for _, w := range res.Weights {
		if w < 1 {
			t.Fatalf("weight %g below 1", w)
		}
	}
	if res.Rounds < 1 {
		t.Fatal("no rounds executed")
	}
	if len(res.CriticalDMs) == 0 {
		t.Fatal("no critical demand matrices accumulated")
	}
	// With symmetric unit capacities the optimum splits a→d evenly: worst
	// utilization 4/2/1 = 2 (max demand 4 split over two unit paths).
	if res.WorstUtil > 4.0+1e-9 {
		t.Fatalf("worst utilization %g should not exceed single-path 4", res.WorstUtil)
	}
}

func TestOptimizeDoesNotMutateInput(t *testing.T) {
	g := bottleneckGraph()
	before := g.Weights()
	base := demand.NewMatrix(g.NumNodes())
	a, _ := g.NodeByName("a")
	d, _ := g.NodeByName("d")
	base.Set(a, d, 1)
	Optimize(g, demand.MarginBox(base, 2), Config{OuterIters: 2, InnerMoves: 10, Seed: 2})
	after := g.Weights()
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("Optimize mutated the input graph's weights")
		}
	}
}

func TestOptimizeOnCorpusTopology(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus local search in -short mode")
	}
	g := topo.MustLoad("NSF")
	base := demand.Gravity(g, 1)
	box := demand.MarginBox(base, 2)
	res := Optimize(g, box, Config{OuterIters: 3, InnerMoves: 25, Seed: 3})
	if res.WorstUtil <= 0 {
		t.Fatalf("worst utilization %g should be positive", res.WorstUtil)
	}
	// Critical set accumulates at most one DM per round.
	if len(res.CriticalDMs) > res.Rounds {
		t.Fatalf("%d critical DMs exceed %d rounds", len(res.CriticalDMs), res.Rounds)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	g := bottleneckGraph()
	base := demand.NewMatrix(g.NumNodes())
	a, _ := g.NodeByName("a")
	d, _ := g.NodeByName("d")
	base.Set(a, d, 2)
	box := demand.MarginBox(base, 2)
	r1 := Optimize(g, box, Config{OuterIters: 3, InnerMoves: 20, Seed: 9})
	r2 := Optimize(g, box, Config{OuterIters: 3, InnerMoves: 20, Seed: 9})
	for i := range r1.Weights {
		if r1.Weights[i] != r2.Weights[i] {
			t.Fatal("same seed produced different weights")
		}
	}
}
